/// \file table4_stream_noncontiguous.cpp
/// Reproduces paper Table IV: the Table III sweep with non-contiguous
/// accesses — each batch proceeds down the Y dimension so successive DRAM
/// requests stride by a full row (the access pattern of the tiled Jacobi
/// kernel, which reads 34 non-contiguous 68-byte chunks per batch).

#include "bench_util.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {

using namespace ttsim;

struct PaperRow {
  std::uint32_t batch;
  double read_nosync, read_sync, write_nosync, write_sync;
};

constexpr PaperRow kPaper[] = {
    {16384, 0.011, 0.011, 0.011, 0.011}, {8192, 0.011, 0.011, 0.011, 0.014},
    {4096, 0.012, 0.012, 0.011, 0.020},  {2048, 0.013, 0.021, 0.011, 0.021},
    {1024, 0.016, 0.042, 0.012, 0.029},  {512, 0.031, 0.077, 0.017, 0.032},
    {256, 0.042, 0.201, 0.022, 0.052},   {128, 0.082, 0.340, 0.040, 0.095},
    {64, 0.148, 0.809, 0.074, 0.182},    {32, 0.275, 1.597, 0.143, 0.361},
    {16, 0.544, 3.219, 0.280, 0.721},    {8, 1.081, 6.491, 0.556, 1.441},
    {4, 1.969, 13.013, 0.715, 2.882},
};

double run_cell(const bench::BenchOptions& opts, std::uint32_t batch, bool is_read,
                bool sync) {
  stream::StreamParams p;
  p.rows = opts.stream_rows;
  p.verify = false;
  p.contiguous = false;
  if (is_read) {
    p.read_batch = batch;
    p.read_sync_each = sync;
  } else {
    p.write_batch = batch;
    p.write_sync_each = sync;
  }
  return stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Table IV: non-contiguous streaming, 4096x4096 int32, batch size sweep", opts);

  Table t{"Batch size (bytes)", "Requests/row", "Read no-sync (s)", "Read sync (s)",
          "Write no-sync (s)", "Write sync (s)"};
  ComparisonReport read_ns("Table IV", "non-contiguous read, no sync", true);
  ComparisonReport read_s("Table IV", "non-contiguous read, per-access sync", true);
  ComparisonReport write_ns("Table IV", "non-contiguous write, no sync", true);
  ComparisonReport write_s("Table IV", "non-contiguous write, per-access sync", true);

  for (const auto& row : kPaper) {
    const double rn = run_cell(opts, row.batch, true, false);
    const double rs = run_cell(opts, row.batch, true, true);
    const double wn = run_cell(opts, row.batch, false, false);
    const double ws = run_cell(opts, row.batch, false, true);
    t.add_row(static_cast<unsigned>(row.batch), 16384u / row.batch, Table::fmt(rn, 3),
              Table::fmt(rs, 3), Table::fmt(wn, 3), Table::fmt(ws, 3));
    const std::string label = std::to_string(row.batch) + "B";
    read_ns.add(label, row.read_nosync, rn, "s");
    read_s.add(label, row.read_sync, rs, "s");
    write_ns.add(label, row.write_nosync, wn, "s");
    write_s.add(label, row.write_sync, ws, "s");
  }
  t.print(std::cout);
  std::cout << '\n'
            << read_ns.to_string() << '\n'
            << read_s.to_string() << '\n'
            << write_ns.to_string() << '\n'
            << write_s.to_string() << '\n';
  return 0;
}
