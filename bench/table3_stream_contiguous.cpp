/// \file table3_stream_contiguous.cpp
/// Reproduces paper Table III: contiguous streaming benchmark over a
/// 4096x4096 int32 problem, sweeping the DRAM access batch size from 16 KiB
/// down to 4 B, reads and writes, with and without per-access
/// synchronisation. Also reproduces the Section V inline finding that
/// reading into a local buffer and memcpy'ing into the CB is ~10x slower
/// than receiving into the CB directly.

#include "bench_util.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {

using namespace ttsim;

struct PaperRow {
  std::uint32_t batch;
  double read_nosync, read_sync, write_nosync, write_sync;
};

// Table III as printed in the paper (seconds).
constexpr PaperRow kPaper[] = {
    {16384, 0.011, 0.011, 0.011, 0.011}, {8192, 0.011, 0.011, 0.011, 0.016},
    {4096, 0.012, 0.013, 0.011, 0.020},  {2048, 0.012, 0.020, 0.011, 0.023},
    {1024, 0.016, 0.034, 0.011, 0.031},  {512, 0.031, 0.074, 0.011, 0.038},
    {256, 0.039, 0.201, 0.011, 0.053},   {128, 0.067, 0.327, 0.014, 0.093},
    {64, 0.122, 0.802, 0.027, 0.182},    {32, 0.238, 1.571, 0.052, 0.360},
    {16, 0.470, 3.150, 0.104, 0.718},    {8, 0.916, 6.331, 0.206, 1.436},
    {4, 1.761, 12.659, 0.411, 2.873},
};

double run_cell(const bench::BenchOptions& opts, std::uint32_t batch, bool is_read,
                bool sync) {
  stream::StreamParams p;
  p.rows = opts.stream_rows;
  p.verify = false;
  if (is_read) {
    p.read_batch = batch;
    p.read_sync_each = sync;
  } else {
    p.write_batch = batch;
    p.write_sync_each = sync;
  }
  return stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Table III: contiguous streaming, 4096x4096 int32, batch size sweep", opts);

  Table t{"Batch size (bytes)", "Requests/row", "Read no-sync (s)", "Read sync (s)",
          "Write no-sync (s)", "Write sync (s)"};
  ComparisonReport read_ns("Table III", "contiguous read, no sync", true);
  ComparisonReport read_s("Table III", "contiguous read, per-access sync", true);
  ComparisonReport write_ns("Table III", "contiguous write, no sync", true);
  ComparisonReport write_s("Table III", "contiguous write, per-access sync", true);

  for (const auto& row : kPaper) {
    const double rn = run_cell(opts, row.batch, true, false);
    const double rs = run_cell(opts, row.batch, true, true);
    const double wn = run_cell(opts, row.batch, false, false);
    const double ws = run_cell(opts, row.batch, false, true);
    t.add_row(static_cast<unsigned>(row.batch), 16384u / row.batch, Table::fmt(rn, 3),
              Table::fmt(rs, 3), Table::fmt(wn, 3), Table::fmt(ws, 3));
    const std::string label = std::to_string(row.batch) + "B";
    read_ns.add(label, row.read_nosync, rn, "s");
    read_s.add(label, row.read_sync, rs, "s");
    write_ns.add(label, row.write_nosync, wn, "s");
    write_s.add(label, row.write_sync, ws, "s");
  }
  t.print(std::cout);
  std::cout << '\n'
            << read_ns.to_string() << '\n'
            << read_s.to_string() << '\n'
            << write_ns.to_string() << '\n'
            << write_s.to_string() << '\n';

  // Section V inline experiment: direct-to-CB vs local-buffer + memcpy.
  stream::StreamParams p;
  p.rows = opts.stream_rows;
  p.verify = false;
  const double direct = stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
  p.via_local_buffer = true;
  const double copied = stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
  ComparisonReport memcpy_rep("Section V inline", "local-buffer memcpy overhead", true);
  memcpy_rep.add("direct to CB", 0.011, direct, "s");
  memcpy_rep.add("via local buffer + memcpy", 0.106, copied, "s");
  std::cout << memcpy_rep.to_string() << '\n';
  return 0;
}
