/// \file table7_multicore_stream.cpp
/// Reproduces paper Table VII: streaming across 1-8 Tensix cores decomposed
/// vertically in Y, for each interleave page size. The paper's surprise:
/// scaling stops at two cores regardless of page size — the NoC/DDR
/// bandwidth wall that later limits the multi-core Jacobi solver.

#include "bench_util.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {
using namespace ttsim;

struct PaperRow {
  std::uint64_t page;
  double c1, c2, c4, c8;
};

constexpr PaperRow kPaper[] = {
    {0, 0.010, 0.005, 0.005, 0.005},         {64 * 1024, 0.011, 0.006, 0.007, 0.007},
    {32 * 1024, 0.012, 0.005, 0.007, 0.007}, {16 * 1024, 0.013, 0.006, 0.007, 0.007},
    {8 * 1024, 0.015, 0.010, 0.007, 0.007},  {4 * 1024, 0.015, 0.008, 0.005, 0.005},
    {2 * 1024, 0.021, 0.010, 0.006, 0.007},
};

std::string page_name(std::uint64_t page) {
  return page == 0 ? "none" : std::to_string(page / 1024) + "K";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Table VII: streaming scaling over Tensix cores", opts);

  Table t{"Page size", "1 core (s)", "2 cores (s)", "4 cores (s)", "8 cores (s)"};
  ComparisonReport rep("Table VII", "page size x core count grid", true);
  const int core_counts[] = {1, 2, 4, 8};
  for (const auto& row : kPaper) {
    const double paper_vals[] = {row.c1, row.c2, row.c4, row.c8};
    std::vector<std::string> cells{page_name(row.page)};
    for (int ci = 0; ci < 4; ++ci) {
      stream::StreamParams p;
      p.rows = opts.stream_rows;
      p.verify = false;
      p.num_cores = core_counts[ci];
      p.interleave_page = row.page;
      const double s =
          stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
      cells.push_back(Table::fmt(s, 3));
      rep.add(page_name(row.page) + "/" + std::to_string(core_counts[ci]) + "c",
              paper_vals[ci], s, "s");
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  std::cout << '\n' << rep.to_string() << '\n';
  return 0;
}
