/// \file ablation_temporal.cpp
/// Temporal-tiling depth ablation on the Table VIII workload (9216-wide BF16,
/// striped buffers, Y-only strips): sweeps DeviceRunConfig::temporal_depth
/// (k = 1/2/4/8 iterations chained through SRAM per DRAM pass) across core
/// counts and reports the steady-state rate plus the measured per-iteration
/// DRAM traffic. Per-iteration bytes are isolated with a two-length
/// subtraction — (bytes at 2n iterations - bytes at n) / n — which cancels
/// the PCIe staging and initial-load constants that a single run folds in.
///
///   ablation_temporal [--full | --quick]   # the k x cores sweep
///   ablation_temporal --smoke              # CI: 16 cores, k = 1/2/4/8,
///                                          # verified + bit-exact across k,
///                                          # DRAM bytes monotone dropping,
///                                          # >= 3x reduction at k = 4;
///                                          # exits non-zero on regression
///
/// The depth-1 column is the row-chunk data path's traffic shape (one grid
/// read + one grid write per iteration); DESIGN.md "Temporal tiling" derives
/// the expected ~(2B + 2k)/(kB) rows-per-row scaling the deeper columns
/// should follow.

#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/ttmetal/device.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Temporal tiling ablation: 9216-wide BF16 Jacobi (Table VIII workload)",
      opts);

  core::JacobiProblem p;
  p.width = 9216;
  p.height = smoke ? 512 : 1024;

  const std::vector<int> depths = {1, 2, 4, 8};
  const std::vector<int> core_rows =
      smoke ? std::vector<int>{16} : std::vector<int>{1, 2, 4, 8, 16};

  // One run on a freshly opened device: the DRAM byte delta across the run
  // is exact (the simulator's stats are, like the trace, deterministic).
  struct Sample {
    core::DeviceRunResult result;
    std::uint64_t dram_bytes = 0;
  };
  auto run = [&](int cores_y, int depth, int iters, bool verify) {
    core::JacobiProblem q = p;
    q.iterations = iters;
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kTemporal;
    cfg.cores_y = cores_y;
    cfg.temporal_depth = depth;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    cfg.verify = verify;
    auto dev = ttmetal::Device::open({}, {});
    Sample s;
    s.result = core::run_jacobi_on_device(*dev, q, cfg);
    const auto& st = dev->hw().dram().stats();
    s.dram_bytes = st.bytes_read + st.bytes_written;
    return s;
  };

  const int n = smoke ? 8 : (opts.quick ? 8 : 16);

  Table t{"Cores", "k", "GPt/s", "DRAM MB/iter", "reduction", "bit-exact"};
  bool ok = true;
  for (const int cores_y : core_rows) {
    double base_bytes = 0;
    std::uint64_t prev_bytes = ~0ull;
    std::vector<float> base_solution;
    for (const int k : depths) {
      const Sample a = run(cores_y, k, n, /*verify=*/smoke);
      const Sample b = run(cores_y, k, 2 * n, /*verify=*/false);
      const double per_iter =
          static_cast<double>(b.dram_bytes - a.dram_bytes) / n;
      core::JacobiProblem q = p;
      q.iterations = n;
      const double g = a.result.gpts(q, /*kernel_only=*/true);
      if (k == 1) {
        base_bytes = per_iter;
        base_solution = a.result.solution;
      }
      const bool exact = a.result.solution == base_solution;
      t.add_row(cores_y, k, Table::fmt(g, 2),
                Table::fmt(per_iter / (1024.0 * 1024.0), 2),
                Table::fmt(base_bytes / per_iter, 2) + "x",
                exact ? "yes" : "NO");
      ok = ok && exact && (!smoke || a.result.verified_ok);
      // Chaining more generations per pass must never *add* DRAM traffic.
      if (static_cast<std::uint64_t>(per_iter) > prev_bytes) {
        std::cout << "REGRESSION: k=" << k << " moves more DRAM bytes/iter "
                  << "than the previous depth at " << cores_y << " cores\n";
        ok = false;
      }
      prev_bytes = static_cast<std::uint64_t>(per_iter);
      // The acceptance bar: k=4 must cut DRAM traffic at least 3x.
      if (k == 4 && base_bytes / per_iter < 3.0) {
        std::cout << "REGRESSION: k=4 DRAM reduction "
                  << Table::fmt(base_bytes / per_iter, 2) << "x < 3x at "
                  << cores_y << " cores\n";
        ok = false;
      }
    }
  }

  t.print(std::cout);
  if (smoke) {
    std::cout << (ok ? "\nsmoke OK: verified, bit-exact across k, DRAM "
                       "bytes/iter monotone, k=4 >= 3x\n"
                     : "\nsmoke FAILED\n");
    return ok ? 0 : 1;
  }
  return ok ? 0 : 1;
}
