/// \file ablation_design_choices.cpp
/// Ablation studies of the design choices DESIGN.md calls out — the
/// quantified "why" behind the paper's final kernel:
///   1. cb_set_rd_ptr aliasing vs memcpy (Section VI's key idea);
///   2. row-chunk width (FPU tile-granularity waste below 1024 elements);
///   3. grid-buffer placement under core scaling (single bank vs tt-metal
///      interleave vs per-core slab striping);
///   4. circular-buffer pipelining depth between the data movers.

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/stream/stream_bench.hpp"

using namespace ttsim;

namespace {

void ablate_alias_vs_memcpy(const bench::BenchOptions& opts) {
  std::cout << "--- ablation 1: cb_set_rd_ptr aliasing vs data-mover memcpy ---\n";
  Table t{"domain", "memcpy design (GPt/s)", "aliasing design (GPt/s)", "speedup"};
  for (std::uint32_t size : {128u, 256u, 512u}) {
    core::JacobiProblem p;
    p.width = size;
    p.height = size;
    p.iterations = opts.quick ? 4 : 12;
    core::DeviceRunConfig copy_cfg;
    copy_cfg.strategy = core::DeviceStrategy::kDoubleBuffered;
    core::DeviceRunConfig alias_cfg;
    alias_cfg.strategy = core::DeviceStrategy::kRowChunk;
    const double copy_g = core::run_jacobi_on_device(p, copy_cfg).gpts(p, true);
    const double alias_g = core::run_jacobi_on_device(p, alias_cfg).gpts(p, true);
    t.add_row(std::to_string(size) + "^2", Table::fmt(copy_g, 4),
              Table::fmt(alias_g, 3), Table::fmt(alias_g / copy_g, 1) + "x");
  }
  t.print(std::cout);
  std::cout << '\n';
}

void ablate_chunk_width(const bench::BenchOptions& opts) {
  std::cout << "--- ablation 2: row-chunk width (FPU works in 1024-lane tiles) ---\n";
  Table t{"chunk (elems)", "GPt/s", "FPU lane utilisation"};
  core::JacobiProblem p;
  p.width = 1024;
  p.height = 1024;
  p.iterations = opts.quick ? 4 : 12;
  for (std::uint32_t chunk : {128u, 256u, 512u, 1024u}) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.chunk_elems = chunk;
    const double g = core::run_jacobi_on_device(p, cfg).gpts(p, true);
    t.add_row(static_cast<unsigned>(chunk), Table::fmt(g, 3),
              Table::fmt(100.0 * chunk / 1024.0, 0) + "%");
  }
  t.print(std::cout);
  std::cout << "narrow chunks waste FPU lanes and multiply per-batch overheads —\n"
               "why the paper reads 1024-element rows.\n\n";
}

void ablate_buffer_placement(const bench::BenchOptions& opts) {
  std::cout << "--- ablation 3: grid placement under core scaling ---\n";
  Table t{"cores", "single bank (GPt/s)", "interleaved 32K (GPt/s)",
          "striped slabs (GPt/s)"};
  core::JacobiProblem p;
  p.width = 2048;
  p.height = 512;
  p.iterations = opts.quick ? 4 : 10;
  for (int cores_y : {1, 4, 16}) {
    std::vector<std::string> cells{std::to_string(cores_y * 2)};
    for (auto layout : {ttmetal::BufferLayout::kSingleBank,
                        ttmetal::BufferLayout::kInterleaved,
                        ttmetal::BufferLayout::kStriped}) {
      core::DeviceRunConfig cfg;
      cfg.strategy = core::DeviceStrategy::kRowChunk;
      cfg.cores_x = 2;
      cfg.cores_y = cores_y;
      cfg.buffer_layout = layout;
      cells.push_back(Table::fmt(core::run_jacobi_on_device(p, cfg).gpts(p, true), 3));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  std::cout << "single banks wall at low core counts; tt-metal pages pay per-page\n"
               "DMA dispatch; coarse slab striping spreads banks for free.\n\n";
}

void ablate_cb_depth(const bench::BenchOptions& opts) {
  std::cout << "--- ablation 4: conveyor CB pipelining depth (streaming) ---\n";
  Table t{"CB pages", "runtime (ms)"};
  for (std::uint32_t pages : {1u, 2u, 4u, 8u}) {
    stream::StreamParams sp;
    sp.rows = opts.quick ? 64 : 256;
    sp.verify = false;
    sp.read_batch = 2048;  // enough per-row work for overlap to matter
    sp.cb_pages = pages;
    const auto r = stream::run_streaming_benchmark(sp);
    t.add_row(static_cast<unsigned>(pages), Table::fmt(r.seconds() * 1e3, 2));
  }
  t.print(std::cout);
  std::cout << "one page serialises the movers; two pages recover most of the\n"
               "overlap; the paper's four pages leave margin for jitter.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Ablations: the design choices behind the optimised kernel",
                      opts);
  ablate_alias_vs_memcpy(opts);
  ablate_chunk_width(opts);
  ablate_buffer_placement(opts);
  ablate_cb_depth(opts);
  return 0;
}
