/// \file future_sram_resident.cpp
/// Quantifies the paper's concluding future-work proposal: "We might also be
/// able to obtain improved scaling across the Tensix cores by first copying
/// the domain into local SRAM and operating from there, although this would
/// limit the size of the domain and require direct neighbour to neighbour
/// communications."
///
/// This bench runs the Table VIII problem (1024x9216 BF16) with the
/// SRAM-resident solver (domain held in core SRAM, per-iteration halo rows
/// exchanged core-to-core over the NoC, DRAM touched only at load/writeback)
/// against the paper's optimised DRAM-streaming kernel, reporting
/// steady-state per-iteration rates (the one-time load amortises over the
/// paper's 5000 iterations).

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/xeon_model.hpp"
#include "ttsim/energy/energy.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Future work: SRAM-resident Jacobi vs the Section VI DRAM kernel", opts);

  core::JacobiProblem p;
  p.width = 9216;
  p.height = 1024;

  const int short_iters = opts.quick ? 4 : 8;
  const int long_iters = opts.quick ? 12 : 24;

  auto steady_gpts = [&](core::DeviceRunConfig cfg) {
    p.iterations = short_iters;
    const auto a = core::run_jacobi_on_device(p, cfg).kernel_time;
    p.iterations = long_iters;
    const auto b = core::run_jacobi_on_device(p, cfg).kernel_time;
    const double per_iter = to_seconds(b - a) / (long_iters - short_iters);
    return static_cast<double>(p.points()) / 1e9 / per_iter;
  };

  sim::GrayskullSpec spec;
  energy::CardEnergyModel card(spec);
  cpu::XeonModel xeon;

  Table t{"Configuration", "Cores", "Steady GPt/s", "vs 24-core CPU",
          "Energy/5k iters (J)"};
  auto add_row = [&](const std::string& name, int cores, double gpts) {
    const double secs_5k =
        static_cast<double>(p.points()) * 5000.0 / 1e9 / gpts;
    t.add_row(name, cores, Table::fmt(gpts, 2), Table::fmt(gpts / xeon.gpts(24), 2) + "x",
              Table::fmt(secs_5k * card.power_w(cores), 0));
  };

  // Baseline: the paper's Section VI kernel at full card.
  {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = 12;
    cfg.cores_x = 9;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    add_row("DRAM row-chunk (paper Sec. VI)", 108, steady_gpts(cfg));
  }
  // SRAM-resident at increasing core counts (slabs must fit 1 MB).
  for (int cy : {54, 72, 108}) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kSramResident;
    cfg.cores_y = cy;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    add_row("SRAM-resident, " + std::to_string(cy) + " cores", cy, steady_gpts(cfg));
  }
  t.print(std::cout);

  std::cout <<
      "\nThe SRAM-resident design removes the per-iteration DRAM traffic that\n"
      "bounds the Section VI kernel (~90 GB/s wall), leaving the solver\n"
      "compute-bound: scaling across cores is near-linear and the full card\n"
      "runs several times faster than both the DRAM kernel and the 24-core\n"
      "CPU — at the same ~50 W card power. The costs the paper anticipated\n"
      "are real and enforced: the domain must fit the cores' SRAM (two slabs\n"
      "per core; oversized runs fail with an SRAM budget error) and the\n"
      "kernels need direct core-to-core transfers plus CB write-pointer\n"
      "aliasing (both provided as SDK extensions in this reproduction).\n";
  return 0;
}
