/// \file gallery_baselines.cpp
/// Throughput of the generic-frontend gallery workloads against the
/// hand-written 5-point Jacobi row-chunk baseline at the same geometry and
/// core grid. The generic lowering streams one CB per field and runs one
/// FPU pipeline per pass, so per-cell cost grows with fields x passes x
/// taps — this table quantifies that overhead (see EXPERIMENTS.md).
///
///   $ ./bench/gallery_baselines [--full | --quick]

#include <vector>

#include "bench_util.hpp"
#include "ttsim/core/gallery.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Gallery workloads vs the Jacobi row-chunk baseline, 256x256, 1x4 cores",
      opts);

  const std::uint32_t w = 256, h = 256;
  const int iters = opts.jacobi_iters > 0 ? opts.jacobi_iters : 100;
  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  cfg.cores_y = 4;

  // The 5-point baseline every gallery row is normalized against.
  core::JacobiProblem jp;
  jp.width = w;
  jp.height = h;
  jp.iterations = iters;
  const auto jr = core::run_jacobi_on_device(jp, cfg);
  const double jacobi_gpts = jr.gpts(jp, /*kernel_only=*/true);

  Table t{"Workload", "Fields", "Passes", "Taps", "GPt/s", "vs Jacobi"};
  t.add_row("jacobi (baseline)", "1", "1", "5", Table::fmt(jacobi_gpts, 3),
            "1.00x");
  for (const auto& named : core::gallery::suite(w, h, iters)) {
    std::size_t taps = 0;
    for (const auto& pass : named.problem.passes) taps += pass.terms.size();
    const auto r = core::run_general_stencil_on_device(named.problem, cfg);
    const double updates =
        static_cast<double>(w) * h * static_cast<double>(iters);
    const double gpts = r.kernel_time > 0
        ? updates / 1e9 / to_seconds(r.kernel_time)
        : 0.0;
    t.add_row(named.name, std::to_string(named.problem.fields.size()),
              std::to_string(named.problem.passes.size()), std::to_string(taps),
              Table::fmt(gpts, 3),
              Table::fmt(jacobi_gpts > 0 ? gpts / jacobi_gpts : 0.0, 2) + "x");
  }
  t.print(std::cout);
  std::cout << "\n(GPt/s counts primary-grid cell updates per second; "
               "multi-pass workloads do proportionally more FPU work per "
               "update.)\n";
  return 0;
}
