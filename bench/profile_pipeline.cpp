/// \file profile_pipeline.cpp
/// Pipeline utilisation analysis: for each Jacobi design, how busy each baby
/// core actually is. This is the quantitative form of the paper's
/// bottleneck narrative — the initial design's reading mover is saturated by
/// memcpy while everything else idles; the optimised design shifts the
/// bottleneck to the compute cores; the SRAM-resident future-work design
/// keeps compute near fully busy.

#include <map>

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"

using namespace ttsim;

namespace {

void profile(const char* title, const core::JacobiProblem& p,
             const core::DeviceRunConfig& cfg) {
  auto device = ttmetal::Device::open();
  const auto r = core::run_jacobi_on_device(*device, p, cfg);
  std::cout << "--- " << title << " (" << Table::fmt(r.gpts(p, true), 3)
            << " GPt/s) ---\n";
  // Aggregate per kernel role across cores.
  struct Agg {
    SimTime active = 0, lifetime = 0;
    int n = 0;
  };
  std::map<std::string, Agg> by_role;
  for (const auto& k : device->last_profile()) {
    auto& a = by_role[k.name];
    a.active += k.active;
    a.lifetime += k.lifetime;
    ++a.n;
  }
  Table t{"Kernel", "Cores", "Active (ms)", "Stalled (ms)", "Utilisation"};
  for (const auto& [name, a] : by_role) {
    t.add_row(name, a.n, Table::fmt(to_seconds(a.active) * 1e3 / a.n, 3),
              Table::fmt(to_seconds(a.lifetime - a.active) * 1e3 / a.n, 3),
              Table::fmt(100.0 * static_cast<double>(a.active) /
                             static_cast<double>(a.lifetime),
                         1) +
                  "%");
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Pipeline utilisation per design", opts);

  core::JacobiProblem p;
  p.width = 512;
  p.height = 512;
  p.iterations = opts.quick ? 3 : 8;

  {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kInitial;
    profile("Section IV initial (memcpy-bound reader)", p, cfg);
  }
  {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kDoubleBuffered;
    profile("Section IV double-buffered", p, cfg);
  }
  {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    profile("Section VI row-chunk (compute-bound)", p, cfg);
  }
  {
    core::JacobiProblem q = p;
    q.width = 1024;
    q.height = 256;
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kSramResident;
    cfg.cores_y = 4;
    profile("Future work: SRAM-resident, 4 cores", q, cfg);
  }
  std::cout << "Reading: the paper's Table II located the bottleneck in the\n"
               "reading mover's memcpy; these profiles show the same story as\n"
               "per-kernel utilisation, and how each redesign moves the\n"
               "bottleneck until compute dominates.\n";
  return 0;
}
