/// \file table1_initial_jacobi.cpp
/// Reproduces paper Table I: the Section IV tiled Jacobi versions on one
/// Tensix core, 512x512 BF16 elements over 10000 iterations, in GPt/s
/// against a single Xeon Platinum core. GPt/s is steady-state, so scaled
/// runs use fewer iterations (--full runs the paper's 10000).

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/cpu/xeon_model.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Table I: tiled Jacobi versions, 512x512, one Tensix core", opts);

  core::JacobiProblem p;
  p.width = 512;
  p.height = 512;
  p.iterations = opts.jacobi_iters > 0 ? opts.jacobi_iters : 10000;

  Table t{"Version", "Performance (GPt/s)"};
  ComparisonReport rep("Table I", "tiled Jacobi versions (GPt/s)", false);

  cpu::XeonModel xeon;
  t.add_row("CPU single core", Table::fmt(xeon.gpts(1), 3));
  rep.add("CPU single core", 1.41, xeon.gpts(1), "GPt/s");

  const struct {
    core::DeviceStrategy strategy;
    const char* name;
    double paper;
  } rows[] = {
      {core::DeviceStrategy::kInitial, "Initial", 0.0065},
      {core::DeviceStrategy::kWriteOptimised, "Data write optimised", 0.0072},
      {core::DeviceStrategy::kDoubleBuffered, "Double buffering", 0.0140},
  };
  for (const auto& row : rows) {
    core::DeviceRunConfig cfg;
    cfg.strategy = row.strategy;
    const auto r = core::run_jacobi_on_device(p, cfg);
    const double g = r.gpts(p);
    t.add_row(row.name, Table::fmt(g, 4));
    rep.add(row.name, row.paper, g, "GPt/s");
  }
  t.print(std::cout);
  std::cout << '\n' << rep.to_string() << '\n';

  // Live host baseline for context (not the paper's Xeon).
  core::JacobiProblem host_p = p;
  host_p.iterations = opts.quick ? 20 : 100;
  const auto host = cpu::measure_host_jacobi(host_p, 1);
  std::cout << "(this host, 1 thread, FP32: " << Table::fmt(host.gpts, 3)
            << " GPt/s — reported for context only; paper rows use the "
               "calibrated Xeon 8260M model)\n";
  return 0;
}
