/// \file table8_perf_energy.cpp
/// Reproduces paper Table VIII: the optimised (Section VI) Jacobi solver on
/// a 1024x9216 BF16 domain over 5000 iterations — performance and energy
/// for the Xeon Platinum CPU (1 and 24 cores), 1..108 Tensix cores on one
/// e150, and two/four e150 cards. Headline results to reproduce: a full
/// e150 roughly matches the 24-core CPU at ~5x less energy; four cards give
/// ~4x the CPU performance at similar total energy.
///
/// The paper stores the domain with 9216 elements contiguous; cores are
/// arranged "cores in Y x cores in X" with X strips of 1024 elements at the
/// full decomposition (12 x 9 over 108 workers).

#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/cpu/xeon_model.hpp"
#include "ttsim/energy/energy.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Table VIII: performance and energy, 1024x9216 BF16, 5000 iterations", opts);

  core::JacobiProblem p;
  p.width = 9216;   // contiguous dimension
  p.height = 1024;
  p.iterations = opts.jacobi_iters > 0 ? opts.jacobi_iters : 5000;
  // Energy figures below are quoted for the paper's full 5000 iterations:
  // GPt/s is steady-state, so joules scale as (paper iters / run iters).
  core::JacobiProblem full = p;
  full.iterations = 5000;

  Table t{"Type", "Total cores", "Cores Y", "Cores X", "Performance (GPt/s)",
          "Energy (J)"};
  ComparisonReport perf("Table VIII", "performance (GPt/s)", false);
  ComparisonReport joules("Table VIII", "energy to solution (J)", true);

  // --- CPU rows (calibrated Xeon 8260M model) ---
  cpu::XeonModel xeon;
  for (const auto& [cores, paper_g, paper_j] :
       {std::tuple{1, 1.41, 1657.0}, std::tuple{24, 21.61, 588.0}}) {
    t.add_row("CPU", cores, "-", "-", Table::fmt(xeon.gpts(cores), 2),
              Table::fmt(xeon.joules(full, cores), 0));
    perf.add("CPU " + std::to_string(cores), paper_g, xeon.gpts(cores), "GPt/s");
    joules.add("CPU " + std::to_string(cores), paper_j, xeon.joules(full, cores), "J");
  }

  // --- e150 rows ---
  sim::GrayskullSpec spec;
  energy::CardEnergyModel card(spec);
  const struct {
    int cores_y, cores_x;
    double paper_gpts, paper_j;
  } rows[] = {
      {1, 1, 1.06, 2094},  {1, 2, 2.48, 893},   {1, 4, 2.92, 744},
      {2, 4, 7.99, 276},   {8, 4, 9.20, 240},   {8, 8, 12.96, 170},
      {8, 9, 17.26, 128},  {12, 9, 22.06, 110},
  };
  // Baselines kept for the deep-pipelining supplement below (ncores -> GPt/s).
  std::vector<std::pair<int, double>> plateau;
  for (const auto& row : rows) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = row.cores_y;
    cfg.cores_x = row.cores_x;
    // Per-core slab placement across banks (the systolic decomposition's
    // natural allocation — Section V's interleaving lesson at slab grain).
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    const auto r = core::run_jacobi_on_device(p, cfg, spec);
    // Kernel-only rate: at the paper's 5000 iterations the PCIe transfers are
    // ~0.2% of the runtime, so the steady-state kernel rate is the comparable
    // figure for scaled runs.
    const double g = r.gpts(p, /*kernel_only=*/true);
    const int ncores = row.cores_y * row.cores_x;
    const double scale = static_cast<double>(full.iterations) / p.iterations;
    const double j = card.joules(static_cast<SimTime>(
                                     static_cast<double>(r.kernel_time) * scale),
                                 ncores);
    t.add_row("e150", ncores, row.cores_y, row.cores_x, Table::fmt(g, 2),
              Table::fmt(j, 0));
    const std::string label = "e150 " + std::to_string(ncores);
    perf.add(label, row.paper_gpts, g, "GPt/s");
    joules.add(label, row.paper_j, j, "J");
    if (ncores >= 64) plateau.emplace_back(ncores, g);
  }

  // --- deep pipelining supplement (not part of the paper comparison) ---
  // Above ~64 cores the paper-faithful two-batch scheme saturates on the
  // DRAM bank queues (EXPERIMENTS.md known deviation (b)). Re-run the
  // plateau rows over read_ahead = 2/4/8 with the pipelined bank service
  // (and, for depths > 2, balanced stripe placement: draining the queues
  // exposes the hashed placement's 3-stripe hot bank as the next wall) and
  // report the best depth per row — the strip geometry shifts the optimum
  // (narrow multi-column strips pay column-boundary drains at depth > 2);
  // bench/ablation_read_ahead has the full depth x cores sweep.
  Table deep{"Type", "Total cores", "depth 2 (GPt/s)", "best piped (GPt/s)",
             "best depth", "speedup", "paper (GPt/s)"};
  for (const auto& row : rows) {
    const int ncores = row.cores_y * row.cores_x;
    if (ncores < 64) continue;
    double best_g = 0;
    int best_depth = 0;
    for (const int depth : {2, 4, 8}) {
      core::DeviceRunConfig cfg;
      cfg.strategy = core::DeviceStrategy::kRowChunk;
      cfg.cores_y = row.cores_y;
      cfg.cores_x = row.cores_x;
      cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
      cfg.read_ahead = depth;
      cfg.balanced_stripes = depth > 2;
      sim::GrayskullSpec deep_spec;
      deep_spec.dram_bank_pipeline = true;
      const auto r = core::run_jacobi_on_device(p, cfg, deep_spec);
      const double g = r.gpts(p, /*kernel_only=*/true);
      if (g > best_g) {
        best_g = g;
        best_depth = depth;
      }
    }
    double base = 0;
    for (const auto& [n, b] : plateau) {
      if (n == ncores) base = b;
    }
    deep.add_row("e150", ncores, Table::fmt(base, 2), Table::fmt(best_g, 2),
                 best_depth, Table::fmt(best_g / base, 2) + "x",
                 Table::fmt(row.paper_gpts, 2));
  }

  // --- temporal tiling supplement (not part of the paper comparison) ---
  // The paper's own Table VII attribution blames the DRAM bank queues, yet
  // every row-chunk sweep round-trips the grid through DRAM. Chaining k
  // iterations through SRAM per pass (DeviceRunConfig::temporal_depth) cuts
  // that traffic ~k-fold; bench/ablation_temporal has the full k x cores
  // sweep with measured per-iteration DRAM bytes. Temporal tiling
  // decomposes in Y only, so rows re-run at cores_x = 1.
  Table temporal{"Type", "Total cores", "row-chunk (GPt/s)", "k=4 (GPt/s)",
                 "speedup"};
  for (const int cores_y : {8, 16}) {
    double base_g = 0;
    double temp_g = 0;
    for (const bool tiled : {false, true}) {
      core::DeviceRunConfig cfg;
      cfg.strategy = tiled ? core::DeviceStrategy::kTemporal
                           : core::DeviceStrategy::kRowChunk;
      cfg.cores_y = cores_y;
      cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
      if (tiled) cfg.temporal_depth = 4;
      const auto r = core::run_jacobi_on_device(p, cfg, spec);
      (tiled ? temp_g : base_g) = r.gpts(p, /*kernel_only=*/true);
    }
    temporal.add_row("e150", cores_y, Table::fmt(base_g, 2),
                     Table::fmt(temp_g, 2),
                     Table::fmt(temp_g / base_g, 2) + "x");
  }

  // --- multi-card rows ---
  const struct {
    int cards;
    double paper_gpts, paper_j;
  } card_rows[] = {{2, 44.12, 102}, {4, 86.75, 108}};
  for (const auto& row : card_rows) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = 12;
    cfg.cores_x = 9;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    const auto r = core::run_jacobi_multicard(p, row.cards, cfg, spec);
    const double g = r.gpts(p, /*kernel_only=*/true);
    const double scale = static_cast<double>(full.iterations) / p.iterations;
    const double j = card.joules_multicard(
        static_cast<SimTime>(static_cast<double>(r.kernel_time) * scale), 108,
        row.cards);
    t.add_row("e150 x " + std::to_string(row.cards), 108 * row.cards, "-", "-",
              Table::fmt(g, 2), Table::fmt(j, 0));
    const std::string label = "e150 x" + std::to_string(row.cards);
    perf.add(label, row.paper_gpts, g, "GPt/s");
    joules.add(label, row.paper_j, j, "J");
  }

  t.print(std::cout);
  std::cout << "\nDeep memory pipelining (best read_ahead depth per row, "
               "pipelined banks, balanced stripes at depth > 2; supplement, "
               "not part of the paper comparison):\n";
  deep.print(std::cout);
  std::cout << "\nTemporal tiling (k = 4 iterations chained through SRAM per "
               "DRAM pass, Y-only strips; supplement, not part of the paper "
               "comparison — see bench/ablation_temporal for the DRAM-byte "
               "sweep):\n";
  temporal.print(std::cout);
  std::cout << '\n' << perf.to_string() << '\n' << joules.to_string() << '\n';

  // The paper's headline claims, checked explicitly.
  const double cpu24 = xeon.gpts(24);
  const double e150_full = perf.rows()[perf.rows().size() - 3].measured;
  const double e150_j = joules.rows()[joules.rows().size() - 3].measured;
  const double cpu_j = xeon.joules(full, 24);
  std::cout << "headline: full e150 vs 24-core CPU: " << Table::fmt(e150_full / cpu24, 2)
            << "x performance at " << Table::fmt(cpu_j / e150_j, 1)
            << "x less energy (paper: ~1.0x performance, ~5x less energy)\n";
  return 0;
}
