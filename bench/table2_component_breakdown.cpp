/// \file table2_component_breakdown.cpp
/// Reproduces paper Table II: selectively disabling the read / memcpy /
/// compute / write components of the tiled Jacobi design (keeping the CB
/// structure and synchronisation) to locate the bottleneck — the data
/// mover's memcpy from the local halo buffer into the four CBs.

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Table II: component on/off breakdown, 512x512, one Tensix core", opts);

  core::JacobiProblem p;
  p.width = 512;
  p.height = 512;
  p.iterations = opts.jacobi_iters > 0 ? opts.jacobi_iters : 10000;

  const struct {
    bool read, memcpy_, compute, write;
    double paper;
  } rows[] = {
      {false, false, false, false, 7.574},
      {false, false, true, false, 1.387},
      {false, false, false, true, 0.278},
      {true, false, false, false, 0.205},
      {false, true, false, false, 0.014},
      {true, true, false, false, 0.013},
  };

  Table t{"Read", "Memcpy", "Compute", "Write", "Performance (GPt/s)"};
  ComparisonReport rep("Table II", "component breakdown (GPt/s)", false);
  auto yn = [](bool b) { return b ? "Y" : "N"; };
  for (const auto& row : rows) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kDoubleBuffered;
    cfg.toggles = core::ComponentToggles{row.read, row.memcpy_, row.compute, row.write};
    const auto r = core::run_jacobi_on_device(p, cfg);
    const double g = r.gpts(p, /*kernel_only=*/true);
    t.add_row(yn(row.read), yn(row.memcpy_), yn(row.compute), yn(row.write),
              Table::fmt(g, 3));
    const std::string label = std::string("R") + yn(row.read) + " M" + yn(row.memcpy_) +
                              " C" + yn(row.compute) + " W" + yn(row.write);
    rep.add(label, row.paper, g, "GPt/s");
  }
  t.print(std::cout);
  std::cout << '\n' << rep.to_string() << '\n';
  std::cout << "Paper conclusion reproduced: the memcpy from the local buffer\n"
               "into the CBs dominates — motivating the Section VI redesign\n"
               "(contiguous row reads + cb_set_rd_ptr aliasing, no copies).\n";
  return 0;
}
