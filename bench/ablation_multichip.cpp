/// \file ablation_multichip.cpp
/// Multi-chip scaling ablation: the deep-halo sharded Jacobi solver
/// (core/sharded.hpp) across 1-8 cabled cards, against the single-card
/// optimised solver as the baseline. Reports strong scaling (fixed domain,
/// more cards), the epoch-length (exchange_every = k) trade — more frequent
/// exchanges pay more link latency, deeper halos pay redundant compute —
/// and the measured chip-to-chip link traffic per exchange. The sharded
/// protocol is bit-exact, so every row also cross-checks the assembled
/// solution against the 1-card run.
///
///   ablation_multichip [--full | --quick]   # cards x k sweep + weak scaling
///   ablation_multichip --smoke              # CI: 2 cards must beat 1 card
///                                           # by > 1.5x on a bandwidth-bound
///                                           # shape, bit-exactly; exits
///                                           # non-zero on regression
///
/// DESIGN.md "Multi-chip" derives the protocol; EXPERIMENTS.md records the
/// scaling table this prints.

#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/ttmetal/device.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Multi-chip scaling: deep-halo sharded Jacobi across cabled cards",
      opts);

  // Bandwidth-bound shape: wide rows (striped over the banks), enough owned
  // rows per card that the k-1 redundant extension rows stay in the noise.
  core::JacobiProblem p;
  p.width = 2048;
  p.height = smoke ? 2048 : 2048;
  p.iterations = smoke ? 32 : (opts.quick ? 12 : 24);

  core::DeviceRunConfig run;
  run.strategy = core::DeviceStrategy::kRowChunk;
  run.cores_x = 2;
  run.cores_y = 8;
  run.buffer_layout = ttmetal::BufferLayout::kStriped;

  // 1-card baseline: the same run config through the single-card solver.
  const auto base = core::run_jacobi_on_device(p, run);
  const double base_gpts = base.gpts(p);

  const std::vector<int> card_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{2, 4, 8};
  const std::vector<int> epoch_lengths =
      smoke ? std::vector<int>{16} : std::vector<int>{1, 4, 8};

  Table t{"cards", "k", "GPt/s", "speedup", "exchange us", "link MB",
          "bit-exact"};
  t.add_row(1, "-", Table::fmt(base_gpts, 2), "1.00x", "-", "-", "yes");

  bool ok = true;
  double smoke_speedup = 0.0;
  for (const int cards : card_counts) {
    for (const int k : epoch_lengths) {
      core::ShardedRunConfig scfg;
      scfg.run = run;
      scfg.exchange_every = k;
      const auto r = core::run_jacobi_sharded(p, cards, scfg);
      const double g = r.gpts(p);
      const double speedup = g / base_gpts;
      const bool exact = r.solution == base.solution;
      ok = ok && exact;
      if (smoke && cards == 2) smoke_speedup = speedup;
      t.add_row(cards, k, Table::fmt(g, 2), Table::fmt(speedup, 2) + "x",
                Table::fmt(to_seconds(r.exchange_time) * 1e6, 1),
                Table::fmt(static_cast<double>(r.link_bytes) / (1024.0 * 1024.0),
                           2),
                exact ? "yes" : "NO");
    }
  }
  t.print(std::cout);

  if (!smoke) {
    // Weak scaling: the per-card slab stays fixed while the domain grows
    // with the pool — the regime the Wormhole galaxy boxes target.
    Table w{"cards", "rows", "GPt/s", "efficiency", "link MB"};
    core::JacobiProblem q = p;
    const std::uint32_t rows_per_card = p.height;
    double solo_gpts = 0.0;
    for (const int cards : {1, 2, 4, 8}) {
      q.height = rows_per_card * static_cast<std::uint32_t>(cards);
      double g = 0.0;
      double link_mb = 0.0;
      if (cards == 1) {
        const auto r = core::run_jacobi_on_device(q, run);
        g = r.gpts(q);
        solo_gpts = g;
      } else {
        core::ShardedRunConfig scfg;
        scfg.run = run;
        scfg.exchange_every = 8;
        const auto r = core::run_jacobi_sharded(q, cards, scfg);
        g = r.gpts(q);
        link_mb = static_cast<double>(r.link_bytes) / (1024.0 * 1024.0);
      }
      w.add_row(cards, q.height, Table::fmt(g, 2),
                Table::fmt(g / (solo_gpts * cards) * 100.0, 1) + "%",
                cards == 1 ? std::string("-") : Table::fmt(link_mb, 2));
    }
    w.print(std::cout);
  }

  if (smoke) {
    if (smoke_speedup <= 1.5) {
      std::cout << "REGRESSION: 2-card speedup " << Table::fmt(smoke_speedup, 2)
                << "x <= 1.5x\n";
      ok = false;
    }
    std::cout << (ok ? "\nsmoke OK: 2 cards > 1.5x over 1 card, bit-exact\n"
                     : "\nsmoke FAILED\n");
    return ok ? 0 : 1;
  }
  return ok ? 0 : 1;
}
