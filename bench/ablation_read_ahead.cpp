/// \file ablation_read_ahead.cpp
/// Read-ahead depth ablation on the Table VIII workload (1024x9216 BF16,
/// row-chunk solver, striped buffers): sweeps the reading mover's in-flight
/// batch depth (DeviceRunConfig::read_ahead = 2/4/8) across core counts
/// 1..108, with the pipelined DRAM bank service
/// (GrayskullSpec::dram_bank_pipeline) enabled for the deep columns. The
/// depth-2 serialised column is the paper's scheme and must match
/// table8_perf_energy bit-for-bit; the deep columns show the 64-108-core
/// saturation lifting off the bank-queueing wall (EXPERIMENTS.md known
/// deviation (b)).
///
///   ablation_read_ahead [--full | --quick]   # the sweep
///   ablation_read_ahead --smoke              # CI: depth 2 vs 8, few cores,
///                                            # verified, exits non-zero on
///                                            # regression

#include <cstring>

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Read-ahead ablation: 1024x9216 BF16 Jacobi (Table VIII workload)", opts);

  core::JacobiProblem p;
  p.width = 9216;
  p.height = smoke ? 256 : 1024;
  p.iterations = smoke ? 10 : (opts.jacobi_iters > 0 ? opts.jacobi_iters : 5000);

  struct Row {
    int cores_y, cores_x;
  };
  const std::vector<Row> rows =
      smoke ? std::vector<Row>{{1, 2}, {2, 4}}
            : std::vector<Row>{{1, 1}, {1, 2}, {1, 4}, {2, 4},
                               {8, 4}, {8, 8}, {8, 9}, {12, 9}};
  const std::vector<int> depths = smoke ? std::vector<int>{2, 8}
                                        : std::vector<int>{2, 4, 8};

  auto run = [&](const Row& row, int depth, bool pipelined) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.cores_y = row.cores_y;
    cfg.cores_x = row.cores_x;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    cfg.read_ahead = depth;
    // Deep piped columns are the full deep-pipelining configuration: once
    // the bank queues drain, the hashed stripe placement's 3-stripe hot
    // bank becomes the wall, so they also balance the stripes. At depth 2
    // balancing is left off — shallow queues make lockstep cores camp on
    // round-robin banks (the behaviour the hash exists to break), so the
    // depth-2 piped column isolates the bank pipeline alone.
    cfg.balanced_stripes = pipelined && depth > 2;
    cfg.verify = smoke;  // bit-exact vs the CPU reference in CI
    sim::GrayskullSpec spec;
    spec.dram_bank_pipeline = pipelined;
    return core::run_jacobi_on_device(p, cfg, spec);
  };

  Table t;
  {
    std::vector<std::string> cols = {"Cores", "Y x X",
                                     "depth 2 serial (GPt/s)"};
    for (int d : depths) {
      cols.push_back("depth " + std::to_string(d) + " piped (GPt/s)");
    }
    cols.push_back("best speedup");
    t.set_headers(std::move(cols));
  }

  bool ok = true;
  for (const Row& row : rows) {
    const int ncores = row.cores_y * row.cores_x;
    std::vector<std::string> cells = {
        std::to_string(ncores),
        std::to_string(row.cores_y) + " x " + std::to_string(row.cores_x)};
    // Baseline: the paper's two-batch scheme on the serialised bank model —
    // the exact configuration every table bench and golden trace pins.
    const auto base = run(row, 2, /*pipelined=*/false);
    const double base_g = base.gpts(p, /*kernel_only=*/true);
    cells.push_back(Table::fmt(base_g, 2));
    ok = ok && base.verified_ok;

    double best = base_g;
    SimTime prev_time = 0;
    for (std::size_t i = 0; i < depths.size(); ++i) {
      const auto r = run(row, depths[i], /*pipelined=*/true);
      const double g = r.gpts(p, /*kernel_only=*/true);
      cells.push_back(Table::fmt(g, 2));
      best = std::max(best, g);
      ok = ok && r.verified_ok;
      // Monotonicity: deeper read-ahead must never slow the pipelined run.
      if (i > 0 && r.kernel_time > prev_time) {
        std::cout << "REGRESSION: depth " << depths[i] << " slower than depth "
                  << depths[i - 1] << " at " << ncores << " cores\n";
        ok = false;
      }
      prev_time = r.kernel_time;
    }
    cells.push_back(Table::fmt(best / base_g, 2) + "x");
    t.add_row(std::move(cells));
  }

  t.print(std::cout);
  if (smoke) {
    std::cout << (ok ? "\nsmoke OK: results verified, depth monotone\n"
                     : "\nsmoke FAILED\n");
    return ok ? 0 : 1;
  }
  return 0;
}
