/// \file ablation_fault_overhead.cpp
/// Zero-fault overhead of the resilience machinery on the Table VIII
/// problem: the resilient driver (checksummed PCIe transfers, per-launch
/// watchdog, periodic checkpointing to the host) versus the plain solver,
/// with no faults injected. The machinery's cost is a handful of extra PCIe
/// transfers against a kernel-dominated solve, so the target is <= 5%
/// end-to-end overhead — the paper's performance story must survive turning
/// resilience on.

#include "bench_util.hpp"
#include "ttsim/core/resilience.hpp"

int main(int argc, char** argv) {
  using namespace ttsim;
  const auto opts = bench::BenchOptions::parse(argc, argv);
  // Not print_header(): this bench always runs the full Table VIII geometry
  // (checkpoint cost scales with grid size, so shrinking it would flatter the
  // overhead) and scales only the iteration count.
  std::cout << "\n=== Ablation: zero-fault overhead of resilience, 1024x9216 "
               "BF16 ===\n";
  if (!opts.full) {
    std::cout << "(full geometry, 120 of the paper's 5000 iterations; --full "
                 "for the exact count)\n";
  }
  std::cout << '\n';

  core::JacobiProblem p;
  p.width = 9216;  // contiguous dimension
  p.height = 1024;
  // Unlike the steady-state rate tables, checkpoint amortisation depends on
  // the run length: the usual 40-iteration scaled run would overstate the
  // per-checkpoint cost ~60x against the paper's 5000-iteration solve, so
  // run at least two full checkpoint intervals of realistic length.
  p.iterations = opts.full ? 5000 : 120;

  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  cfg.cores_y = 12;
  cfg.cores_x = 9;
  cfg.buffer_layout = ttmetal::BufferLayout::kStriped;

  const auto plain = core::run_jacobi_on_device(p, cfg);

  core::ResilienceOptions ropts;
  ropts.checkpoint_every = std::max(1, p.iterations / 2);
  const auto resilient =
      core::run_jacobi_resilient(p, cfg, ropts, /*fault_plan=*/nullptr);

  Table t{"Driver", "Total time (ms)", "Performance (GPt/s)", "Checkpoints",
          "Restarts"};
  const auto ms = [](SimTime time) { return Table::fmt(to_seconds(time) * 1e3, 3); };
  const double plain_g = plain.gpts(p);
  const double res_g =
      to_seconds(resilient.total_time) > 0
          ? static_cast<double>(p.total_updates()) / 1e9 /
                to_seconds(resilient.total_time)
          : 0.0;
  t.add_row("plain", ms(plain.total_time), Table::fmt(plain_g, 2), "-", "-");
  t.add_row("resilient", ms(resilient.total_time), Table::fmt(res_g, 2),
            (p.iterations + ropts.checkpoint_every - 1) / ropts.checkpoint_every,
            resilient.restarts);
  t.print(std::cout);

  const double overhead =
      (to_seconds(resilient.total_time) - to_seconds(plain.total_time)) /
      to_seconds(plain.total_time) * 100.0;
  std::cout << "\nzero-fault overhead: " << Table::fmt(overhead, 2)
            << "% (target <= 5%)\n";
  return overhead <= 5.0 ? 0 : 1;
}
