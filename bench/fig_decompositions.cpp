/// \file fig_decompositions.cpp
/// Regenerates the paper's illustrative figures from the live data
/// structures (the figures carry no measurements, so this binary documents
/// that the decompositions used by the solvers are the ones the paper
/// draws):
///   Fig. 2 — domain surrounded by boundary conditions;
///   Fig. 4 — 32x32-element batch decomposition of the tiled design;
///   Fig. 5 — 256-bit edge padding making result writes aligned;
///   Fig. 6 — 1024-element row-chunk batches of the optimised design.

#include <iostream>

#include "ttsim/core/jacobi_device.hpp"

using namespace ttsim;
using namespace ttsim::core;

namespace {

void fig2_domain() {
  std::cout << "--- Fig. 2: domain surrounded by boundary conditions ---\n";
  JacobiProblem p;
  p.width = 8 * 16;
  p.height = 6;
  PaddedLayout l(p.width, p.height);
  const auto img = l.initial_image(p);
  auto cell = [&](std::int64_t r, std::int64_t c) {
    // Interior cells print the initial guess; the surrounding ring prints
    // which boundary condition the stored image carries there.
    const float v = static_cast<float>(img[l.index(r, c)]);
    if (r == -1 && v == p.bc_top) return 'T';
    if (r == static_cast<std::int64_t>(p.height) && v == p.bc_bottom) return 'B';
    if (c == -1 && v == p.bc_left) return 'L';
    if (c == static_cast<std::int64_t>(p.width) && v == p.bc_right) return 'R';
    return '.';
  };
  for (std::int64_t r = -1; r <= p.height; ++r) {
    for (std::int64_t c = -1; c <= 16; ++c) std::cout << cell(r, c);
    std::cout << " (columns 17.." << p.width - 1 << " elided)\n";
  }
  std::cout << "L/R/T/B: fixed boundary values, '.': interior initial guess\n\n";
}

void fig4_tiled_batches() {
  std::cout << "--- Fig. 4: 32x32 batch decomposition (Section IV) ---\n";
  const std::uint32_t w = 512, h = 512;
  std::cout << "domain " << w << "x" << h << " -> " << (w / 32) << " x " << (h / 32)
            << " batches of 32x32 BF16 elements; each batch needs a 34x34 halo\n"
            << "block read as 34 non-contiguous rows of 68 bytes:\n";
  for (int by = 0; by < 3; ++by) {
    for (int bx = 0; bx < 6; ++bx) {
      std::cout << "[b" << (by * (w / 32) + bx) << "]\t";
    }
    std::cout << "...\n";
  }
  std::cout << "...\n\n";
}

void fig5_padding() {
  std::cout << "--- Fig. 5: 256-bit edge padding for aligned writes ---\n";
  PaddedLayout l(512, 512);
  std::cout << "stored row = [" << PaddedLayout::kPad << " pad elems | 512 interior | "
            << PaddedLayout::kPad << " pad elems] = " << l.row_bytes()
            << " bytes (multiple of 32: " << (l.row_bytes() % 32 == 0 ? "yes" : "no")
            << ")\n";
  std::cout << "interior write offsets (col 0, 32, 64):";
  for (int c : {0, 32, 64}) std::cout << ' ' << l.byte_offset(0, c) % 32;
  std::cout << "  <- all 0 mod 32, so 32-element result tiles write aligned\n";
  std::cout << "halo read offset (col -1): " << l.byte_offset(0, -1) % 32
            << " mod 32 <- unaligned, handled by Listing 4's read_data\n\n";
}

void fig6_row_chunks() {
  std::cout << "--- Fig. 6: 1024-element row-chunk batches (Section VI) ---\n";
  const std::uint32_t w = 2048, h = 8;
  std::cout << "domain " << w << " wide -> " << (w / 1024)
            << " column strips; each batch reads 1026 contiguous elements\n"
            << "(1024 + 2 halos) and works down the Y dimension:\n";
  for (std::uint32_t j = 0; j < h; ++j) {
    std::cout << "| batch " << j << "\t| batch " << (h + j) << "\t|\n";
  }
  std::cout << "reader keeps 5 row slots in SRAM, reads 2 batches ahead; the\n"
               "compute kernel aliases CB read pointers into the slots\n"
               "(cb_set_rd_ptr) so no data is ever copied.\n";
}

}  // namespace

int main() {
  std::cout << "Reproductions of the paper's illustrative figures, generated\n"
               "from the library's live decomposition structures.\n\n";
  fig2_domain();
  fig4_tiled_batches();
  fig5_padding();
  fig6_row_chunks();
  return 0;
}
