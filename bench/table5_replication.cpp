/// \file table5_replication.cpp
/// Reproduces paper Table V: each 16 KiB read is replicated to also read the
/// n previous rows, quantifying the cost of duplicate DRAM reads — the cost
/// a shift-buffer-style reuse scheme must avoid (Section V).

#include "bench_util.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {
using namespace ttsim;

constexpr struct {
  int factor;
  double seconds;
} kPaper[] = {{1, 0.011}, {2, 0.017}, {4, 0.033}, {8, 0.055}, {16, 0.098}, {32, 0.185}};
}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Table V: replicated DRAM reads, 16 KiB batches", opts);

  Table t{"Replication factor", "Runtime (s)"};
  ComparisonReport rep("Table V", "read replication overhead", true);
  for (const auto& row : kPaper) {
    stream::StreamParams p;
    p.rows = opts.stream_rows;
    p.verify = false;
    p.replication = row.factor;
    const double s =
        stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
    t.add_row(row.factor, Table::fmt(s, 3));
    rep.add("x" + std::to_string(row.factor), row.seconds, s, "s");
  }
  t.print(std::cout);
  std::cout << '\n' << rep.to_string() << '\n';
  return 0;
}
