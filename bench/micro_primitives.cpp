/// \file micro_primitives.cpp
/// google-benchmark microbenchmarks of the simulator's primitives: these
/// measure *host* cost of the simulation machinery (events/second, fiber
/// switches, BF16 arithmetic), which bounds how large an experiment the
/// reproduction can run. They complement the table benches, which report
/// *simulated* time.

#include <benchmark/benchmark.h>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/common/rng.hpp"
#include "ttsim/sim/sync.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {

using namespace ttsim;

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber* self = nullptr;
  bool done = false;
  sim::Fiber fiber(
      [&] {
        while (!done) self->yield();
      },
      64 * 1024);
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();  // one switch in, one out
  }
  done = true;
  fiber.resume();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_EngineEventDispatch(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < events; ++i) {
      engine.schedule_at(i, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1000)->Arg(100000);

void BM_ProcessDelayLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn("p", [&engine] {
      for (int i = 0; i < 1000; ++i) engine.delay(10);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ProcessDelayLoop);

void BM_CbProducerConsumer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<std::byte> storage(64 * 4);
    sim::CircularBuffer cb(engine, storage.data(), 64, 4);
    engine.spawn("producer", [&] {
      for (int i = 0; i < 500; ++i) {
        cb.reserve_back(1);
        cb.push_back(1);
      }
    });
    engine.spawn("consumer", [&] {
      for (int i = 0; i < 500; ++i) {
        cb.wait_front(1);
        cb.pop_front(1);
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_CbProducerConsumer);

void BM_Bf16RoundTrip(benchmark::State& state) {
  Rng rng{42};
  std::vector<float> src(4096);
  for (auto& v : src) v = static_cast<float>(rng.next_double(-100, 100));
  std::vector<bfloat16_t> dst(4096);
  for (auto _ : state) {
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = bfloat16_t{src[i]};
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Bf16RoundTrip);

void BM_Bf16TileAdd(benchmark::State& state) {
  std::vector<bfloat16_t> a(1024, bfloat16_t{1.5f}), b(1024, bfloat16_t{2.5f}),
      c(1024);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) c[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Bf16TileAdd);

void BM_StreamingBenchmarkHostCost(benchmark::State& state) {
  // Host seconds per simulated streaming row — the simulator's "speed".
  for (auto _ : state) {
    stream::StreamParams p;
    p.rows = 32;
    p.verify = false;
    const auto r = stream::run_streaming_benchmark(p);
    benchmark::DoNotOptimize(r.kernel_time);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_StreamingBenchmarkHostCost);

}  // namespace

BENCHMARK_MAIN();
