/// \file table6_interleaving.cpp
/// Reproduces paper Table VI: DRAM page interleaving across the e150's eight
/// banks, sweeping the tt-metal page size against read-replication factors.
/// The paper's finding: interleaving costs little when idle and roughly
/// doubles throughput when the DDR is under replicated-read load at 16-32 KiB
/// pages, while small pages are counterproductive.

#include "bench_util.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {
using namespace ttsim;

struct PaperRow {
  std::uint64_t page;  // 0 = no interleaving
  double r0, r8, r16, r32;
};

constexpr PaperRow kPaper[] = {
    {0, 0.010, 0.047, 0.086, 0.162},          {64 * 1024, 0.013, 0.034, 0.050, 0.084},
    {32 * 1024, 0.012, 0.030, 0.046, 0.079},  {16 * 1024, 0.013, 0.030, 0.046, 0.079},
    {8 * 1024, 0.015, 0.042, 0.072, 0.131},   {4 * 1024, 0.015, 0.075, 0.136, 0.258},
    {2 * 1024, 0.021, 0.148, 0.274, 0.527},   {1 * 1024, 0.038, 0.302, 0.565, 1.094},
};

std::string page_name(std::uint64_t page) {
  if (page == 0) return "none";
  return std::to_string(page / 1024) + "K";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Table VI: interleaving page size x replication factor", opts);

  Table t{"Page size", "repl 0 (s)", "repl 8 (s)", "repl 16 (s)", "repl 32 (s)"};
  ComparisonReport rep("Table VI", "page size x replication grid", true);
  const int factors[] = {0, 8, 16, 32};
  for (const auto& row : kPaper) {
    const double paper_vals[] = {row.r0, row.r8, row.r16, row.r32};
    std::vector<std::string> cells{page_name(row.page)};
    for (int fi = 0; fi < 4; ++fi) {
      stream::StreamParams p;
      p.rows = opts.stream_rows;
      p.verify = false;
      p.replication = factors[fi];
      p.interleave_page = row.page;
      const double s =
          stream::run_streaming_benchmark(p).seconds() * opts.stream_scale;
      cells.push_back(Table::fmt(s, 3));
      rep.add(page_name(row.page) + "/x" + std::to_string(factors[fi]),
              paper_vals[fi], s, "s");
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  std::cout << '\n' << rep.to_string() << '\n';
  return 0;
}
