/// \file serve_loadgen.cpp
/// Deterministic load generator for the stencil-serving layer: seeded
/// synthetic tenants (no wall clock, no rand()) sweeping tenants x arrival
/// rate x cards in open- and closed-loop modes, reporting aggregate
/// throughput and p50/p99 latency in *simulated* time.
///
/// The headline comparison is the acceptance scenario — 64 tenants on one
/// card — where the service's spatial batching + async three-queue pipeline
/// must beat serial blocking run_program dispatch by >= 2x aggregate
/// throughput. Every scenario is a pure function of its seed: the rendered
/// report is byte-identical across repeated runs, including the variant
/// where a FaultPlan kills a core mid-load.
///
///   serve_loadgen            # full sweep + acceptance + determinism checks
///   serve_loadgen --smoke    # CI: small sweep, acceptance asserted,
///                            # exits non-zero on regression
///   serve_loadgen --chaos    # resilience scenarios instead of the sweep:
///                            # seeded fault storm vs shed-everything
///                            # baseline (goodput floor asserted), flapping
///                            # card (quarantine/probe/readmit), diurnal
///                            # overload (SLO admission + priority shedding);
///                            # byte-identical per seed

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "ttsim/common/rng.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/serve/serve.hpp"
#include "ttsim/ttmetal/counters.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace {

using namespace ttsim;

constexpr std::uint64_t kSeed = 0x5EEDu;

core::JacobiProblem tenant_problem(int tenant) {
  core::JacobiProblem p;
  p.width = 256;
  p.height = 256;
  p.iterations = 4;
  // Distinct physics per tenant so batched slots carry genuinely different
  // data (correctness of the mix is pinned by tests/serve).
  p.bc_left = 0.5f + 0.005f * static_cast<float>(tenant % 64);
  return p;
}

core::DeviceRunConfig slot_config() {
  core::DeviceRunConfig cfg;
  cfg.strategy = core::DeviceStrategy::kRowChunk;
  cfg.cores_x = 1;
  cfg.cores_y = 4;
  return cfg;
}

struct Arrival {
  SimTime at = 0;
  int tenant = 0;
};

/// Seeded open-loop arrival trace: per-tenant Poisson with the given mean
/// inter-arrival gap, merged into one non-decreasing sequence.
std::vector<Arrival> make_arrivals(int tenants, int per_tenant, SimTime mean_gap,
                                   std::uint64_t seed) {
  std::vector<Arrival> all;
  for (int t = 0; t < tenants; ++t) {
    Rng rng(seed + static_cast<std::uint64_t>(t) * 0x9E3779B9u);
    SimTime at = 0;
    for (int k = 0; k < per_tenant; ++k) {
      double u = rng.next_double();
      if (u < 1e-12) u = 1e-12;
      at += static_cast<SimTime>(-static_cast<double>(mean_gap) * std::log(u));
      all.push_back({at, t});
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Arrival& a, const Arrival& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.tenant < b.tenant;
  });
  return all;
}

SimTime percentile(std::vector<SimTime> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double rank = p * static_cast<double>(v.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

struct Outcome {
  double throughput = 0;  // requests per simulated second
  SimTime p50 = 0, p99 = 0;
  std::uint64_t completed = 0, batches = 0, reopens = 0;
};

/// Serial blocking baseline: one device, one request at a time through the
/// blocking run_jacobi_on_device path, gated on arrivals.
Outcome run_serial(const std::vector<Arrival>& arrivals, std::ostringstream& rep) {
  auto device = ttmetal::Device::open();
  const core::DeviceRunConfig cfg = slot_config();
  const ttmetal::PcieScope pcie(*device);
  const ttmetal::RetryScope retries(*device);
  std::vector<SimTime> latencies;
  SimTime last_done = 0;
  for (const Arrival& a : arrivals) {
    if (device->now() < a.at) device->hw().engine().run_until(a.at);
    core::JacobiProblem p = tenant_problem(a.tenant);
    core::DeviceRunConfig c = cfg;
    c.verify = false;
    (void)core::run_jacobi_on_device(*device, p, c);
    last_done = device->now();
    latencies.push_back(last_done - a.at);
  }
  Outcome o;
  o.completed = arrivals.size();
  o.throughput = static_cast<double>(arrivals.size()) /
                 (static_cast<double>(last_done) / static_cast<double>(kSecond));
  o.p50 = percentile(latencies, 0.50);
  o.p99 = percentile(latencies, 0.99);
  rep << "  serial: pcie " << to_seconds(pcie.elapsed()) * 1e3 << " ms, retries "
      << retries.count() << "\n";
  return o;
}

serve::ServiceConfig service_config(int cards, int max_batch) {
  serve::ServiceConfig cfg;
  cfg.cards = cards;
  cfg.run = slot_config();
  cfg.max_batch = max_batch;
  cfg.queue_capacity = 4096;
  return cfg;
}

/// Open-loop service run over a precomputed arrival trace.
Outcome run_service(const std::vector<Arrival>& arrivals, serve::ServiceConfig cfg) {
  serve::StencilService svc(std::move(cfg));
  std::vector<std::uint64_t> ids;
  for (const Arrival& a : arrivals) {
    serve::Request req;
    req.problem = tenant_problem(a.tenant);
    req.tenant = a.tenant;
    req.arrival = a.at;
    ids.push_back(svc.submit(req).id);
  }
  svc.drain();
  Outcome o;
  SimTime last_done = 0;
  for (std::uint64_t id : ids) {
    const auto& r = svc.result(id);
    if (r.status == serve::RequestStatus::kCompleted) {
      ++o.completed;
      last_done = std::max(last_done, r.completed);
    }
  }
  const auto& m = svc.metrics();
  o.p50 = m.p50();
  o.p99 = m.p99();
  o.batches = m.batches;
  o.reopens = m.card_reopens;
  o.throughput = last_done > 0 ? static_cast<double>(o.completed) /
                                     (static_cast<double>(last_done) /
                                      static_cast<double>(kSecond))
                               : 0.0;
  return o;
}

/// Closed-loop service run: `waves` rounds where each tenant's next request
/// arrives the moment its previous one completed.
Outcome run_closed_loop(int tenants, int waves, serve::ServiceConfig cfg) {
  serve::StencilService svc(std::move(cfg));
  std::vector<SimTime> next(static_cast<std::size_t>(tenants), 0);
  std::vector<std::uint64_t> ids;
  for (int w = 0; w < waves; ++w) {
    std::vector<std::uint64_t> wave;
    for (int t = 0; t < tenants; ++t) {
      serve::Request req;
      req.problem = tenant_problem(t);
      req.tenant = t;
      req.arrival = next[static_cast<std::size_t>(t)];
      wave.push_back(svc.submit(req).id);
    }
    svc.drain();
    for (int t = 0; t < tenants; ++t) {
      const auto& r = svc.result(wave[static_cast<std::size_t>(t)]);
      next[static_cast<std::size_t>(t)] = r.completed;
    }
    ids.insert(ids.end(), wave.begin(), wave.end());
  }
  Outcome o;
  SimTime last_done = 0;
  for (std::uint64_t id : ids) {
    const auto& r = svc.result(id);
    if (r.status == serve::RequestStatus::kCompleted) {
      ++o.completed;
      last_done = std::max(last_done, r.completed);
    }
  }
  const auto& m = svc.metrics();
  o.p50 = m.p50();
  o.p99 = m.p99();
  o.batches = m.batches;
  o.reopens = m.card_reopens;
  o.throughput = last_done > 0 ? static_cast<double>(o.completed) /
                                     (static_cast<double>(last_done) /
                                      static_cast<double>(kSecond))
                               : 0.0;
  return o;
}

// ---------------------------------------------------------------------------
// Chaos scenarios (--chaos): the resilience stack under scripted adversity.
// Every scenario is a pure function of kSeed; the rendered report must be
// byte-identical across repeated runs even though cards die, flap and heal.

struct ChaosLoad {
  SimTime at = 0;
  int tenant = 0;
  int priority = 0;
  SimTime deadline = 0;  ///< absolute; 0 = none
};

struct ChaosOutcome {
  std::uint64_t offered = 0, completed = 0, in_deadline = 0;
  std::uint64_t failed = 0, rejected = 0;
  std::uint64_t offered_high = 0, in_deadline_high = 0;
  std::uint64_t offered_low = 0, in_deadline_low = 0;
  std::uint64_t reopens = 0, migrations = 0, checkpoints = 0;
  std::uint64_t shed = 0, infeasible = 0;
  std::uint64_t quarantines = 0, probes = 0, readmissions = 0;
  SimTime p99 = 0, p999 = 0;
  double goodput = 0;  ///< in-deadline completions / offered
};

ChaosOutcome run_chaos(const std::vector<ChaosLoad>& load,
                       serve::ServiceConfig cfg) {
  serve::StencilService svc(std::move(cfg));
  std::vector<std::pair<std::uint64_t, int>> subs;  // ticket id, priority
  subs.reserve(load.size());
  for (const ChaosLoad& l : load) {
    serve::Request req;
    req.problem = tenant_problem(l.tenant);
    req.tenant = l.tenant;
    req.priority = l.priority;
    req.arrival = l.at;
    req.deadline = l.deadline;
    subs.emplace_back(svc.submit(req).id, l.priority);
  }
  svc.drain();
  ChaosOutcome o;
  o.offered = subs.size();
  for (const auto& [id, priority] : subs) {
    const auto& r = svc.result(id);
    const bool high = priority > 0;
    ++(high ? o.offered_high : o.offered_low);
    switch (r.status) {
      case serve::RequestStatus::kCompleted:
        ++o.completed;
        if (!r.deadline_missed) {
          ++o.in_deadline;
          ++(high ? o.in_deadline_high : o.in_deadline_low);
        }
        break;
      case serve::RequestStatus::kFailed:
        ++o.failed;
        break;
      case serve::RequestStatus::kRejected:
        ++o.rejected;
        break;
      default:
        break;
    }
  }
  const auto& m = svc.metrics();
  o.p99 = m.p99();
  o.p999 = m.p999();
  o.reopens = m.card_reopens;
  o.migrations = m.migrations;
  o.checkpoints = m.checkpoints_taken;
  o.shed = m.shed;
  o.infeasible = m.infeasible_rejects;
  o.quarantines = m.quarantines;
  o.probes = m.probes;
  o.readmissions = m.readmissions;
  o.goodput = o.offered > 0
                  ? static_cast<double>(o.in_deadline) /
                        static_cast<double>(o.offered)
                  : 0.0;
  return o;
}

void print_chaos(std::ostringstream& rep, const char* label,
                 const ChaosOutcome& o) {
  char line[384];
  std::snprintf(
      line, sizeof line,
      "  %-22s goodput %5.1f%% (%llu/%llu in deadline)  p99 %8.1f us  "
      "p99.9 %8.1f us\n"
      "  %-22s failed %llu  rejected %llu (shed %llu, infeasible %llu)  "
      "reopens %llu\n"
      "  %-22s checkpoints %llu  migrations %llu  quarantines %llu  "
      "probes %llu  readmissions %llu\n",
      label, 100.0 * o.goodput, static_cast<unsigned long long>(o.in_deadline),
      static_cast<unsigned long long>(o.offered), to_seconds(o.p99) * 1e6,
      to_seconds(o.p999) * 1e6, "",
      static_cast<unsigned long long>(o.failed),
      static_cast<unsigned long long>(o.rejected),
      static_cast<unsigned long long>(o.shed),
      static_cast<unsigned long long>(o.infeasible),
      static_cast<unsigned long long>(o.reopens), "",
      static_cast<unsigned long long>(o.checkpoints),
      static_cast<unsigned long long>(o.migrations),
      static_cast<unsigned long long>(o.quarantines),
      static_cast<unsigned long long>(o.probes),
      static_cast<unsigned long long>(o.readmissions));
  rep << line;
}

/// Fault storm: staggered core kills raking both cards through the load
/// window. `resilient` arms checkpointing + retries; off, every fault
/// victim is shed — the baseline the resilience stack must double.
serve::ServiceConfig storm_config(bool resilient) {
  serve::ServiceConfig cfg = service_config(/*cards=*/2, /*max_batch=*/16);
  cfg.device.sim_time_limit = 20 * kMillisecond;
  cfg.checkpoint_every = resilient ? 2 : 0;
  cfg.max_retries = resilient ? 3 : 0;
  cfg.health.quarantine_after = 2;
  cfg.health.probe_after = 2 * kMillisecond;
  cfg.health.readmit_successes = 1;
  cfg.health.heal_on_probe = true;
  cfg.card_devices.assign(2, cfg.device);
  for (int c = 0; c < 2; ++c) {
    sim::FaultConfig fc;
    for (int k = 0; k < 6; ++k) {
      fc.core_kills.push_back(
          {k, (500 + 700 * k + 350 * c) * kMicrosecond});
    }
    cfg.card_devices[static_cast<std::size_t>(c)].fault_plan =
        std::make_shared<sim::FaultPlan>(fc);
  }
  return cfg;
}

std::vector<ChaosLoad> storm_load(bool smoke) {
  const auto arrivals = make_arrivals(/*tenants=*/16, smoke ? 2 : 4,
                                      500 * kMicrosecond, kSeed ^ 0xC0FFEEu);
  std::vector<ChaosLoad> load;
  load.reserve(arrivals.size());
  for (const Arrival& a : arrivals) {
    // Generous deadline: a retried solve makes it comfortably; only work
    // the baseline sheds outright misses.
    load.push_back({a.at, a.tenant, 0, a.at + 200 * kMillisecond});
  }
  return load;
}

/// Flapping card: card 0 dies, is quarantined, heals on probe, is
/// readmitted — then dies again later (the second scripted kill survives
/// the heal). Card 1 carries migrated sessions through the flaps.
serve::ServiceConfig flap_config() {
  serve::ServiceConfig cfg = service_config(/*cards=*/2, /*max_batch=*/8);
  cfg.device.sim_time_limit = 20 * kMillisecond;
  cfg.checkpoint_every = 2;
  cfg.max_retries = 3;
  cfg.health.quarantine_after = 1;
  cfg.health.probe_after = 1 * kMillisecond;
  cfg.health.readmit_successes = 1;
  cfg.health.heal_on_probe = true;
  cfg.card_devices.assign(2, cfg.device);
  sim::FaultConfig fc;
  fc.core_kills.push_back({0, 1 * kMillisecond});
  fc.core_kills.push_back({0, 8 * kMillisecond});
  cfg.card_devices[0].fault_plan = std::make_shared<sim::FaultPlan>(fc);
  return cfg;
}

std::vector<ChaosLoad> flap_load(bool smoke) {
  const auto arrivals = make_arrivals(/*tenants=*/8, smoke ? 2 : 4,
                                      1 * kMillisecond, kSeed ^ 0xF1A9u);
  std::vector<ChaosLoad> load;
  load.reserve(arrivals.size());
  for (const Arrival& a : arrivals) load.push_back({a.at, a.tenant, 0, 0});
  return load;
}

/// Diurnal overload: an off-peak trickle, a burst an order of magnitude
/// hotter than the card can serve, then off-peak again. A bounded queue
/// plus SLO admission and priority shedding keep high-priority goodput up
/// while excess low-priority work is turned away with adaptive hints.
serve::ServiceConfig diurnal_config() {
  serve::ServiceConfig cfg = service_config(/*cards=*/1, /*max_batch=*/8);
  cfg.queue_capacity = 8;
  cfg.slo_admission = true;
  cfg.shed_low_priority = true;
  cfg.adaptive_retry = true;
  return cfg;
}

std::vector<ChaosLoad> diurnal_load(bool smoke) {
  struct Phase {
    SimTime gap;
    int per_tenant;
  };
  const std::vector<Phase> phases =
      smoke ? std::vector<Phase>{{2 * kMillisecond, 1},
                                 {100 * kMicrosecond, 3},
                                 {2 * kMillisecond, 1}}
            : std::vector<Phase>{{2 * kMillisecond, 2},
                                 {100 * kMicrosecond, 8},
                                 {2 * kMillisecond, 2}};
  std::vector<ChaosLoad> load;
  SimTime base = 0;
  std::uint64_t salt = 0;
  for (const Phase& ph : phases) {
    const auto arrivals = make_arrivals(/*tenants=*/8, ph.per_tenant, ph.gap,
                                        kSeed ^ (0xD1A0u + salt++));
    SimTime last = base;
    for (const Arrival& a : arrivals) {
      const SimTime at = base + a.at;
      // One tenant in four is latency-critical; the rest are best-effort
      // and first against the wall when the burst overwhelms the queue.
      load.push_back({at, a.tenant, a.tenant % 4 == 0 ? 1 : 0,
                      at + 10 * kMillisecond});
      last = std::max(last, at);
    }
    base = last + ph.gap;
  }
  return load;
}

void print_outcome(std::ostringstream& rep, const char* label, const Outcome& o) {
  char line[256];
  std::snprintf(line, sizeof line,
                "  %-28s %8.1f req/s  p50 %8.1f us  p99 %8.1f us  "
                "completed %4llu  batches %4llu  reopens %llu\n",
                label, o.throughput, to_seconds(o.p50) * 1e6,
                to_seconds(o.p99) * 1e6,
                static_cast<unsigned long long>(o.completed),
                static_cast<unsigned long long>(o.batches),
                static_cast<unsigned long long>(o.reopens));
  rep << line;
}

}  // namespace

namespace {

int run_chaos_mode(bool smoke) {
  auto render = [&] {
    std::ostringstream rep;
    rep << "=== Chaos harness (seed 0x" << std::hex << kSeed << std::dec
        << (smoke ? ", smoke" : ", full") << ") ===\n";

    rep << "\nFault storm (2 cards, 6 staggered core kills each), resilient "
           "vs shed-everything:\n";
    const auto storm = storm_load(smoke);
    const ChaosOutcome shed_all = run_chaos(storm, storm_config(false));
    const ChaosOutcome resilient = run_chaos(storm, storm_config(true));
    print_chaos(rep, "shed-everything", shed_all);
    print_chaos(rep, "resilient", resilient);
    char line[160];
    std::snprintf(line, sizeof line,
                  "  goodput ratio: %.2fx (acceptance floor 2x)\n",
                  shed_all.goodput > 0 ? resilient.goodput / shed_all.goodput
                                       : 0.0);
    rep << line;

    rep << "\nFlapping card (card 0 dies at 1 ms and again at 8 ms, heals on "
           "probe):\n";
    const ChaosOutcome flap = run_chaos(flap_load(smoke), flap_config());
    print_chaos(rep, "flapping card", flap);

    rep << "\nDiurnal overload (off-peak / 10x burst / off-peak, bounded "
           "queue, SLO admission, priority shedding):\n";
    const ChaosOutcome diurnal = run_chaos(diurnal_load(smoke), diurnal_config());
    print_chaos(rep, "diurnal overload", diurnal);

    return std::make_tuple(rep.str(), resilient, shed_all, flap, diurnal);
  };

  const auto [report, resilient, shed_all, flap, diurnal] = render();
  std::fputs(report.c_str(), stdout);

  std::printf("\nDeterminism: re-running the chaos suite with the same "
              "seed... ");
  const auto [again, r2, s2, f2, d2] = render();
  const bool deterministic = report == again;
  std::printf("%s\n", deterministic ? "byte-identical" : "MISMATCH");

  bool ok = true;
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: repeated same-seed chaos runs diverged\n");
    ok = false;
  }
  if (resilient.goodput < 2.0 * shed_all.goodput) {
    std::fprintf(stderr,
                 "FAIL: storm goodput %.1f%% < 2x shed-everything %.1f%%\n",
                 100.0 * resilient.goodput, 100.0 * shed_all.goodput);
    ok = false;
  }
  if (resilient.in_deadline * 4 < resilient.offered * 3) {
    std::fprintf(stderr,
                 "FAIL: storm goodput floor: %llu/%llu in deadline < 75%%\n",
                 static_cast<unsigned long long>(resilient.in_deadline),
                 static_cast<unsigned long long>(resilient.offered));
    ok = false;
  }
  if (resilient.p99 > 50 * kMillisecond) {
    std::fprintf(stderr, "FAIL: storm p99 %.1f us unbounded (cap 50 ms)\n",
                 to_seconds(resilient.p99) * 1e6);
    ok = false;
  }
  if (flap.completed != flap.offered || flap.quarantines < 1 ||
      flap.probes < 1 || flap.readmissions < 1) {
    std::fprintf(stderr,
                 "FAIL: flapping card: completed %llu/%llu, quarantines %llu, "
                 "probes %llu, readmissions %llu\n",
                 static_cast<unsigned long long>(flap.completed),
                 static_cast<unsigned long long>(flap.offered),
                 static_cast<unsigned long long>(flap.quarantines),
                 static_cast<unsigned long long>(flap.probes),
                 static_cast<unsigned long long>(flap.readmissions));
    ok = false;
  }
  const double high = diurnal.offered_high > 0
                          ? static_cast<double>(diurnal.in_deadline_high) /
                                static_cast<double>(diurnal.offered_high)
                          : 0.0;
  const double low = diurnal.offered_low > 0
                         ? static_cast<double>(diurnal.in_deadline_low) /
                               static_cast<double>(diurnal.offered_low)
                         : 0.0;
  if (diurnal.shed + diurnal.rejected < 1 || diurnal.in_deadline < 1 ||
      high < low) {
    std::fprintf(stderr,
                 "FAIL: diurnal overload: shed+rejected %llu, in-deadline "
                 "%llu, high-priority goodput %.1f%% < low %.1f%%\n",
                 static_cast<unsigned long long>(diurnal.shed +
                                                 diurnal.rejected),
                 static_cast<unsigned long long>(diurnal.in_deadline),
                 100.0 * high, 100.0 * low);
    ok = false;
  }
  if (ok) std::printf("All chaos checks passed.\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--smoke] [--chaos]\n", argv[0]);
      return 0;
    }
  }
  if (chaos) return run_chaos_mode(smoke);

  const int per_tenant = smoke ? 2 : 4;
  const SimTime mean_gap = 2 * kMillisecond;

  struct Scenario {
    const char* name;
    int tenants, cards, max_batch;
  };
  const std::vector<Scenario> sweep =
      smoke ? std::vector<Scenario>{{"8 tenants / 1 card", 8, 1, 16},
                                    {"8 tenants / 2 cards", 8, 2, 16}}
            : std::vector<Scenario>{{"8 tenants / 1 card", 8, 1, 16},
                                    {"16 tenants / 1 card", 16, 1, 16},
                                    {"16 tenants / 2 cards", 16, 2, 16},
                                    {"64 tenants / 2 cards", 64, 2, 16},
                                    {"64 tenants / 4 cards", 64, 4, 16}};

  // The whole report renders into a string so the determinism check can
  // compare repeated runs byte for byte.
  auto render = [&](bool with_fault) {
    std::ostringstream rep;
    rep << "=== Stencil serving load generator (seed 0x" << std::hex << kSeed
        << std::dec << ", " << per_tenant << " req/tenant, open-loop mean gap "
        << to_seconds(mean_gap) * 1e3 << " ms) ===\n";

    rep << "\nOpen-loop sweep (tenants x cards):\n";
    for (const Scenario& sc : sweep) {
      const auto arrivals =
          make_arrivals(sc.tenants, per_tenant, mean_gap, kSeed);
      const Outcome o =
          run_service(arrivals, service_config(sc.cards, sc.max_batch));
      print_outcome(rep, sc.name, o);
    }

    rep << "\nClosed-loop (wave-synchronous, 16 tenants / 1 card):\n";
    const Outcome closed =
        run_closed_loop(16, smoke ? 2 : 4, service_config(1, 16));
    print_outcome(rep, "closed-loop", closed);

    rep << "\nAcceptance: 64 tenants / 1 card, batched+async vs serial "
           "blocking dispatch:\n";
    const auto arrivals = make_arrivals(64, per_tenant, mean_gap, kSeed);
    const Outcome serial = run_serial(arrivals, rep);
    print_outcome(rep, "serial blocking", serial);
    const Outcome served = run_service(arrivals, service_config(1, 16));
    print_outcome(rep, "service (batch 16)", served);
    const double speedup = served.throughput / serial.throughput;
    char line[128];
    std::snprintf(line, sizeof line, "  speedup: %.2fx (acceptance floor 2x)\n",
                  speedup);
    rep << line;

    if (with_fault) {
      rep << "\nFault variant: core 0 killed 3 ms into the load, watchdog "
             "armed:\n";
      serve::ServiceConfig fcfg = service_config(1, 16);
      fcfg.device.sim_time_limit = 20 * kMillisecond;
      sim::FaultConfig fc;
      fc.core_kills.push_back({0, 3 * kMillisecond});
      fcfg.device.fault_plan = std::make_shared<sim::FaultPlan>(fc);
      fcfg.max_retries = 2;
      const Outcome faulted = run_service(arrivals, std::move(fcfg));
      print_outcome(rep, "service under fault", faulted);
    }
    return std::make_pair(rep.str(), speedup);
  };

  const auto [report, speedup] = render(true);
  std::fputs(report.c_str(), stdout);

  std::printf("\nDeterminism: re-running the full report with the same seed... ");
  const auto [again, speedup2] = render(true);
  const bool deterministic = report == again && speedup == speedup2;
  std::printf("%s\n", deterministic ? "byte-identical" : "MISMATCH");

  bool ok = true;
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: repeated same-seed runs diverged\n");
    ok = false;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: acceptance speedup %.2fx < 2x\n", speedup);
    ok = false;
  }
  if (ok) std::printf("All checks passed.\n");
  return ok ? 0 : 1;
}
