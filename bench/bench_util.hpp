#pragma once
/// \file bench_util.hpp
/// Shared scaffolding for the paper-table bench binaries: problem scaling,
/// run averaging (the paper averages over five runs; the simulator is
/// deterministic so one run suffices, but --runs is honoured), and flag
/// parsing.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "ttsim/common/compare.hpp"
#include "ttsim/common/table.hpp"
#include "ttsim/common/units.hpp"

namespace ttsim::bench {

struct BenchOptions {
  /// Row scale divider for the 4096-row streaming problem: the default
  /// simulates 256 rows and scales timings by 16 (per-row work is identical);
  /// --full runs the paper's full geometry.
  std::uint32_t stream_rows = 256;
  double stream_scale = 16.0;
  /// Iteration count used for Jacobi-style experiments (GPt/s is
  /// steady-state, so fewer iterations measure the same rate); --full uses
  /// the paper's counts.
  int jacobi_iters = 40;
  bool full = false;
  bool quick = false;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        o.full = true;
        o.stream_rows = 4096;
        o.stream_scale = 1.0;
        o.jacobi_iters = 0;  // sentinel: use the paper's count
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        o.quick = true;
        o.stream_rows = 64;
        o.stream_scale = 64.0;
        o.jacobi_iters = 10;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("usage: %s [--full | --quick]\n", argv[0]);
        std::exit(0);
      }
    }
    return o;
  }
};

inline void print_header(const std::string& title, const BenchOptions& o) {
  std::cout << "\n=== " << title << " ===\n";
  if (!o.full) {
    std::cout << "(scaled run: simulating 1/" << o.stream_scale
              << " of the paper geometry and scaling linearly; --full for the "
                 "exact geometry)\n";
  }
  std::cout << '\n';
}

}  // namespace ttsim::bench
