/// \file attr_bottleneck.cpp
/// Machine-checked bottleneck attribution for the paper's table rows: run a
/// chosen configuration with tracing enabled, aggregate the trace into a
/// MetricsReport, and print which resource saturated — turning
/// EXPERIMENTS.md's "known deviation" prose into reproducible diagnosis.
///
///   attr_bottleneck table2-memcpy            # Table II: tiled pipeline
///   attr_bottleneck table2-rowchunk          # Table II: row-chunk rewrite
///   attr_bottleneck table7 --cores 2         # Table VII: single-bank stream
///   attr_bottleneck table7-interleaved --cores 8 [--page 16384]
///   attr_bottleneck table8 --cores 64        # Table VIII: full-card Jacobi
///   attr_bottleneck table8 --cores 16 --temporal-depth 4
///                                            # Table VIII on temporal tiling
///   ... --export trace.json                  # Perfetto-loadable trace
///
/// Geometries are scaled down from the paper's (steady-state mechanisms are
/// identical; traces stay small); the attribution, not the absolute time, is
/// the output.

#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/sim/metrics.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/stream/stream_bench.hpp"

namespace {
using namespace ttsim;

struct Options {
  std::string row;
  int cores = 2;
  std::uint64_t page = 16 * KiB;
  int read_ahead = 2;
  int temporal_depth = 0;
  std::string export_path;
};

[[noreturn]] void usage() {
  std::cout
      << "usage: attr_bottleneck <row> [--cores N] [--page BYTES] "
         "[--read-ahead N] [--temporal-depth K] [--export FILE]\n"
         "rows: table2-memcpy table2-rowchunk table7 table7-interleaved "
         "table8\n"
         "--read-ahead > 2 also enables the pipelined DRAM bank service and\n"
         "balanced stripe placement (table8), so the attribution shows the\n"
         "bank queues draining (the metrics report grows a 'Bank pipeline'\n"
         "section) and the hot-bank imbalance flattening\n"
         "--temporal-depth K switches the table8 row to the temporal-tiling\n"
         "strategy (k iterations chained per DRAM pass, Y-only strips), so\n"
         "the attribution shows the DRAM-side pressure dropping ~k-fold and\n"
         "the bottleneck migrating into the compute kernel's skirt recompute\n";
  std::exit(2);
}

/// Per-kernel-group rollup (kernels named "<group>@<core>").
struct Group {
  SimTime lifetime = 0;
  SimTime issue = 0;
  SimTime memcpy_time = 0;
  SimTime fpu = 0;
  SimTime cb_wait = 0;
  SimTime barrier = 0;
  int n = 0;
  SimTime self_busy() const { return issue + memcpy_time + fpu; }
};

std::map<std::string, Group> group_kernels(const sim::MetricsReport& m) {
  std::map<std::string, Group> groups;
  for (const auto& k : m.kernels) {
    const auto at = k.name.find('@');
    Group& g = groups[at == std::string::npos ? k.name : k.name.substr(0, at)];
    g.lifetime += k.lifetime();
    g.issue += k.issue;
    g.memcpy_time += k.memcpy_time;
    g.fpu += k.fpu;
    g.cb_wait += k.cb_full_wait + k.cb_empty_wait;
    g.barrier += k.read_barrier_wait + k.write_barrier_wait +
                 k.global_barrier_wait + k.sem_wait;
    g.n += 1;
  }
  return groups;
}

/// The attribution decision: walk the resources from the outside in.
void print_verdict(const sim::MetricsReport& m) {
  const auto groups = group_kernels(m);
  const auto share = [](SimTime part, SimTime whole) {
    return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                     : 0.0;
  };

  std::cout << "--- attribution ---\n";
  const double max_bank = m.max_bank_utilization();
  std::size_t busiest_bank = 0;
  for (std::size_t b = 0; b < m.banks.size(); ++b) {
    if (m.bank_utilization(b) == max_bank) busiest_bank = b;
  }
  const double agg = m.aggregate_utilization();
  std::cout << "max bank utilization: " << Table::fmt(max_bank, 3) << " (bank "
            << busiest_bank
            << ", mean queue depth " << Table::fmt(m.bank_mean_queue_depth(busiest_bank), 2)
            << ")\naggregate DDR utilization: " << Table::fmt(agg, 3) << '\n';

  // Busiest kernel group by share of lifetime spent on its own work.
  std::string top;
  double top_share = 0.0;
  for (const auto& [name, g] : groups) {
    const double s = share(g.self_busy(), g.lifetime);
    std::cout << name << ": self " << Table::fmt(s, 3) << " (issue "
              << Table::fmt(share(g.issue, g.lifetime), 3) << ", memcpy "
              << Table::fmt(share(g.memcpy_time, g.lifetime), 3) << ", fpu "
              << Table::fmt(share(g.fpu, g.lifetime), 3) << "), cb-wait "
              << Table::fmt(share(g.cb_wait, g.lifetime), 3) << ", barrier/sem "
              << Table::fmt(share(g.barrier, g.lifetime), 3) << '\n';
    if (s > top_share) {
      top_share = s;
      top = name;
    }
  }

  std::cout << "\nverdict: ";
  if (max_bank > 0.85) {
    std::cout << "DRAM bank " << busiest_bank
              << " saturated (single-bank bandwidth wall — the Table VII "
                 "mechanism)\n";
  } else if (agg > 0.85) {
    std::cout << "aggregate DDR bandwidth saturated (card-wide ceiling — the "
                 "Table VII/VIII plateau)\n";
  } else if (m.bank_mean_queue_depth(busiest_bank) > 1.0) {
    std::cout << "DRAM bank " << busiest_bank
              << " queueing dominates (requests pile up faster than the "
                 "row-locked bank drains — the small-page interleaving "
                 "penalty of Tables VI/VII)\n";
  } else if (!top.empty() && top_share > 0.5) {
    const Group& g = groups.at(top);
    if (share(g.memcpy_time, g.self_busy()) > 0.5) {
      std::cout << top
                << " is memcpy-bound (baby-core software copy dominates — the "
                   "Table II diagnosis)\n";
    } else if (share(g.fpu, g.self_busy()) > 0.5) {
      std::cout << top << " is compute-bound (FPU occupancy dominates)\n";
    } else {
      std::cout << top
                << " is issue-bound (per-request NoC issue overhead dominates "
                   "— the small-batch/sync mechanism of Tables III/VI)\n";
    }
  } else {
    std::cout << "no single resource saturated: time goes to latency and "
                 "synchronisation stalls (see the per-kernel waits above)\n";
  }
}

sim::MetricsReport run_row(ttmetal::Device& device, const Options& opt) {
  if (opt.row == "table2-memcpy" || opt.row == "table2-rowchunk") {
    core::JacobiProblem p;
    p.width = 256;
    p.height = 256;
    p.iterations = 4;
    core::DeviceRunConfig cfg;
    cfg.strategy = opt.row == "table2-memcpy"
                       ? core::DeviceStrategy::kDoubleBuffered
                       : core::DeviceStrategy::kRowChunk;
    if (cfg.strategy == core::DeviceStrategy::kRowChunk) {
      cfg.read_ahead = opt.read_ahead;
    }
    device.trace()->clear();  // drop the setup PCIe transfers
    core::run_jacobi_on_device(device, p, cfg);
  } else if (opt.row == "table7" || opt.row == "table7-interleaved") {
    stream::StreamParams p;
    p.rows = 256;
    p.verify = false;
    p.num_cores = opt.cores;
    p.interleave_page = opt.row == "table7" ? 0 : opt.page;
    device.trace()->clear();
    stream::run_streaming_benchmark(device, p);
  } else if (opt.row == "table8") {
    core::JacobiProblem p;
    p.width = 9216;
    p.height = 512;
    p.iterations = 4;
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kRowChunk;
    cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
    cfg.read_ahead = opt.read_ahead;
    cfg.balanced_stripes = opt.read_ahead > 2;
    cfg.cores_x = 9;
    cfg.cores_y = std::max(1, opt.cores / 9);
    if (opt.cores < 9) {
      cfg.cores_x = opt.cores;
      cfg.cores_y = 1;
    }
    if (opt.temporal_depth > 0) {
      // Temporal tiling decomposes in Y only; fold the requested core count
      // into strips and chain enough iterations for a few full epochs.
      cfg.strategy = core::DeviceStrategy::kTemporal;
      cfg.temporal_depth = opt.temporal_depth;
      cfg.cores_x = 1;
      cfg.cores_y = opt.cores;
      p.iterations = std::max(4, 2 * opt.temporal_depth);
    }
    device.trace()->clear();
    core::run_jacobi_on_device(device, p, cfg);
  } else {
    usage();
  }
  return device.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cores") == 0 && i + 1 < argc) {
      opt.cores = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--page") == 0 && i + 1 < argc) {
      opt.page = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--read-ahead") == 0 && i + 1 < argc) {
      opt.read_ahead = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--temporal-depth") == 0 && i + 1 < argc) {
      opt.temporal_depth = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      opt.export_path = argv[++i];
    } else if (argv[i][0] != '-' && opt.row.empty()) {
      opt.row = argv[i];
    } else {
      usage();
    }
  }
  if (opt.row.empty()) usage();

  ttmetal::DeviceConfig dcfg;
  dcfg.enable_trace = true;
  // Deep read-ahead is the configuration that exposes the bank queues, so
  // pair it with the pipelined bank service it is designed to exploit.
  sim::GrayskullSpec spec;
  if (opt.read_ahead > 2) spec.dram_bank_pipeline = true;
  auto device = ttmetal::Device::open(spec, dcfg);

  std::cout << "=== attr_bottleneck: " << opt.row << " ===\n\n";
  const sim::MetricsReport m = run_row(*device, opt);
  std::cout << m.to_string() << '\n';
  print_verdict(m);

  if (!opt.export_path.empty()) {
    device->trace()->write_chrome_trace_file(opt.export_path);
    std::cout << "\ntrace with " << device->trace()->size()
              << " events exported to " << opt.export_path
              << " (load in https://ui.perfetto.dev)\n";
  }
  return 0;
}
