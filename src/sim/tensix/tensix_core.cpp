#include "ttsim/sim/tensix_core.hpp"

namespace ttsim::sim {

TensixCore::TensixCore(Engine& engine, const GrayskullSpec& spec, int core_id,
                       NocCoord coord)
    : engine_(engine),
      spec_(spec),
      id_(core_id),
      coord_(coord),
      sram_(spec.sram_bytes),
      fpu_(engine, spec) {}

CircularBuffer& TensixCore::create_cb(int cb_id, std::uint32_t page_size,
                                      std::uint32_t num_pages) {
  TTSIM_CHECK_MSG(cb_id >= 0 && cb_id < 32, "tt-metal CB ids are 0..31");
  TTSIM_CHECK_MSG(cbs_.count(cb_id) == 0,
                  "CB " << cb_id << " already exists on core " << id_);
  const std::uint32_t offset =
      sram_.allocate(static_cast<std::uint64_t>(page_size) * num_pages);
  auto cb = std::make_unique<CircularBuffer>(engine_, sram_.data(offset), page_size,
                                             num_pages, trace_, id_, cb_id);
  auto& ref = *cb;
  cbs_.emplace(cb_id, std::move(cb));
  return ref;
}

CircularBuffer& TensixCore::cb(int cb_id) {
  const auto it = cbs_.find(cb_id);
  if (it == cbs_.end()) {
    TTSIM_THROW_API("CB " << cb_id << " was not configured on core " << id_);
  }
  return *it->second;
}

SimSemaphore& TensixCore::create_semaphore(int sem_id, std::int64_t initial) {
  TTSIM_CHECK_MSG(semaphores_.count(sem_id) == 0,
                  "semaphore " << sem_id << " already exists on core " << id_);
  auto sem = std::make_unique<SimSemaphore>(engine_, initial);
  sem->set_site({WaitSite::Kind::kSemaphore, id_, sem_id});
  auto& ref = *sem;
  semaphores_.emplace(sem_id, std::move(sem));
  return ref;
}

SimSemaphore& TensixCore::semaphore(int sem_id) {
  const auto it = semaphores_.find(sem_id);
  if (it == semaphores_.end()) {
    TTSIM_THROW_API("semaphore " << sem_id << " was not configured on core " << id_);
  }
  return *it->second;
}

ResourceTimeline& TensixCore::dma(int noc_id) {
  TTSIM_CHECK(noc_id == 0 || noc_id == 1);
  return dma_[noc_id];
}

void TensixCore::reset() {
  cbs_.clear();
  semaphores_.clear();
  sram_.reset();
}

void TensixCore::halt_current_process() {
  if (halt_queue_ == nullptr) {
    halt_queue_ = std::make_unique<WaitQueue>(engine_);
    halt_queue_->set_site({WaitSite::Kind::kHalted, id_, -1});
  }
  for (;;) halt_queue_->wait();  // never notified: the core is dead
}

}  // namespace ttsim::sim
