#include "ttsim/sim/dram.hpp"

#include <cstring>

#include "ttsim/common/log.hpp"
#include "ttsim/sim/fault.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::sim {

DramModel::DramModel(Engine& engine, const GrayskullSpec& spec)
    : engine_(engine),
      spec_(spec),
      banks_(static_cast<std::size_t>(spec.dram_banks)),
      bank_cmd_(static_cast<std::size_t>(spec.dram_banks)),
      bank_read_streams_(static_cast<std::size_t>(spec.dram_banks)),
      bank_write_streams_(static_cast<std::size_t>(spec.dram_banks)),
      bank_last_write_end_(static_cast<std::size_t>(spec.dram_banks), ~0ULL) {}

void DramModel::add_region(const DramRegion& region) {
  TTSIM_CHECK(region.size > 0);
  TTSIM_CHECK(region.storage != nullptr);
  if (region.page_size == 0) {
    TTSIM_CHECK_MSG(region.bank >= 0 && region.bank < spec_.dram_banks,
                    "single-bank region must name a valid bank");
  } else {
    TTSIM_CHECK_MSG(region.bank == -1, "interleaved region must use bank = -1");
    if (!region.coarse) {
      TTSIM_CHECK_MSG(is_pow2(region.page_size), "page size must be a power of two");
      TTSIM_CHECK_MSG(region.page_size <= spec_.max_interleave_page,
                      "tt-metal supports interleave pages up to 64KB");
    }
  }
  // Reject overlap with neighbours in the base-sorted map.
  auto next = regions_.lower_bound(region.base);
  if (next != regions_.end()) {
    TTSIM_CHECK_MSG(region.base + region.size <= next->second.base,
                    "DRAM regions overlap");
  }
  if (next != regions_.begin()) {
    auto prev = std::prev(next);
    TTSIM_CHECK_MSG(prev->second.base + prev->second.size <= region.base,
                    "DRAM regions overlap");
  }
  regions_.emplace(region.base, region);
}

void DramModel::set_trace(TraceSink* trace) {
  trace_ = trace;
  bank_tracks_.clear();
  agg_track_ = -1;
  if (trace_ == nullptr) return;
  // Intern the bank tracks eagerly so track ids are independent of which
  // bank happens to see traffic first.
  for (int b = 0; b < spec_.dram_banks; ++b) {
    bank_tracks_.push_back(trace_->track("dram/bank" + std::to_string(b)));
  }
  agg_track_ = trace_->track("dram/aggregate");
}

void DramModel::remove_region(std::uint64_t base) {
  const auto it = regions_.find(base);
  TTSIM_CHECK_MSG(it != regions_.end(), "remove_region: unknown base");
  regions_.erase(it);
}

const DramRegion& DramModel::region_of(std::uint64_t addr, std::uint64_t size) const {
  return *place(addr, size).region;
}

int DramModel::serving_bank(const DramRegion& region, std::uint64_t offset) const {
  if (region.page_size == 0) return region.bank;
  if (region.coarse) {
    const std::uint64_t stripe = offset / region.page_size;
    const auto banks = static_cast<std::uint64_t>(spec_.dram_banks);
    return static_cast<int>(region.balanced ? stripe % banks
                                            : (stripe * 2654435761ULL >> 16) % banks);
  }
  return InterleaveMap(spec_.dram_banks, region.page_size).bank_of(offset);
}

DramModel::Placement DramModel::place(std::uint64_t addr, std::uint64_t size) const {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) TTSIM_THROW_API("DRAM access to unmapped address " << addr);
  --it;
  const DramRegion& r = it->second;
  if (addr + size > r.base + r.size) {
    TTSIM_THROW_API("DRAM access [" << addr << ", " << addr + size
                                    << ") runs past the region ending at "
                                    << r.base + r.size);
  }
  return Placement{&r, addr - r.base};
}

SimTime DramModel::schedule_access(const Placement& p, std::uint64_t addr,
                                   std::uint32_t size, bool is_write,
                                   ResourceTimeline& dma, int hops) {
  const SimTime now = engine_.now();
  const SimTime hop_lat = static_cast<SimTime>(hops) * spec_.noc_hop_latency;
  const SimTime proc = is_write ? spec_.bank_write_proc : spec_.bank_read_proc;
  const double bank_gbs = is_write ? spec_.bank_write_gbs : spec_.bank_read_gbs;
  const double dma_gbs = is_write ? spec_.dma_write_gbs : spec_.dma_read_gbs;
  const SimTime rt_latency = is_write ? spec_.write_latency : spec_.read_latency;

  scratch_segments_.clear();
  if (p.region->page_size != 0) {
    InterleaveMap map(spec_.dram_banks, p.region->page_size);
    map.split(p.offset, size, scratch_segments_);
    if (p.region->coarse) {
      // Coarse stripes model per-core slab allocation: slabs land on banks
      // effectively at random (allocator order), so scramble the
      // stripe->bank mapping to avoid artificial bank camping by cores
      // working through the same logical row range. `balanced` regions
      // round-robin instead — the even placement a bandwidth-aware
      // allocator would choose.
      for (auto& seg : scratch_segments_) {
        const std::uint64_t stripe = seg.offset / p.region->page_size;
        const auto banks = static_cast<std::uint64_t>(spec_.dram_banks);
        seg.bank = static_cast<int>(
            p.region->balanced ? stripe % banks
                               : (stripe * 2654435761ULL >> 16) % banks);
      }
    }
  } else {
    scratch_segments_.push_back(
        InterleaveMap::Segment{p.region->bank, p.offset, size});
  }
  stats_.interleave_segments += scratch_segments_.size() > 1
                                    ? scratch_segments_.size()
                                    : 0;

  // Scattered posted writes flush the mover's write combiner (once per
  // request, charged on the first segment's drain). Keyed by the timeline's
  // stable id: a fresh engine at a recycled address starts a fresh stream.
  SimTime scatter_penalty = 0;
  if (is_write) {
    auto [it, fresh] = dma_last_write_end_.try_emplace(dma.id(), ~0ULL);
    if (fresh || it->second != addr) scatter_penalty = spec_.write_scatter_penalty;
    it->second = addr + size;
  }

  SimTime complete = now;
  SimTime dma_ready = now;
  bool first_segment = true;
  for (const auto& seg : scratch_segments_) {
    // The requesting DMA engine streams the payload; interleaved accesses
    // additionally pay serialised per-page dispatch work (Table VI's
    // small-page penalty), folded as max(dispatch, transfer).
    SimTime dma_busy = transfer_time(seg.length, dma_gbs);
    if (p.region->page_size != 0 && !p.region->coarse) {
      dma_busy = std::max(dma_busy, spec_.interleave_sub_overhead);
    }
    if (first_segment) {
      dma_busy += scatter_penalty;
      first_segment = false;
    }
    dma_ready = dma.acquire(dma_ready, dma_busy) + dma_busy;

    // Bank occupancy: per-request processing + transfer at bank bandwidth,
    // plus a row re-activation penalty when not continuing the last access.
    auto& bank = banks_[static_cast<std::size_t>(seg.bank)];
    auto& streams = (is_write ? bank_write_streams_
                              : bank_read_streams_)[static_cast<std::size_t>(seg.bank)];
    const std::uint64_t seg_addr = p.region->base + seg.offset;
    const SimTime xfer = transfer_time(seg.length, bank_gbs);
    SimTime proc_busy = proc;
    // Coarse (slab-placed) regions: each core streams contiguously through
    // its own slab, so rows open once and stay hot; the global-image
    // addresses the simulator uses would misreport those as strided.
    bool row_miss = false;
    if (!p.region->coarse && !streams.access(seg_addr, seg_addr + seg.length)) {
      proc_busy += spec_.bank_row_miss;
      row_miss = true;
      ++stats_.row_misses;
    }
    const SimTime bank_busy = proc_busy + xfer;
    SimTime bank_start, bank_end;
    SimTime service_start, service_busy;  // the kDramService interval
    if (!spec_.dram_bank_pipeline) {
      // Serialised service: one request occupies the bank end to end.
      bank_start = bank.acquire(now + hop_lat, bank_busy);
      bank_end = bank_start + bank_busy;
      service_start = bank_start;
      service_busy = bank_busy;
    } else {
      // In-order two-stage pipeline: the command stage (processing + row
      // activation) of this request runs while the previous request's data
      // still transfers; the data stage stays strictly ordered behind it.
      // An uncontended bank times out identically to the serialised model.
      auto& cmd = bank_cmd_[static_cast<std::size_t>(seg.bank)];
      // Snapshot before acquiring: the serialised model would have started
      // this whole request (processing + transfer) once the previous data
      // transfer cleared, i.e. at max(arrival, bank free time).
      const SimTime bank_free = bank.free_at();
      const SimTime cmd_start = cmd.acquire(now + hop_lat, proc_busy);
      const SimTime cmd_end = cmd_start + proc_busy;
      const SimTime data_start = bank.acquire(cmd_end, xfer);
      bank_start = cmd_start;
      bank_end = data_start + xfer;
      service_start = data_start;
      service_busy = xfer;
      const SimTime serialized_end =
          std::max(now + hop_lat, bank_free) + bank_busy;
      if (bank_end < serialized_end) {
        ++stats_.pipelined_segments;
        stats_.pipeline_overlap_saved += serialized_end - bank_end;
      }
      if (trace_ != nullptr) {
        trace_->record(TraceEventKind::kDramBankPipe, cmd_start, proc_busy,
                       {/*core=*/-1, /*a=*/seg.bank, /*b=*/is_write ? 1 : 0,
                        seg_addr, seg.length},
                       bank_tracks_[static_cast<std::size_t>(seg.bank)]);
      }
    }
    (is_write ? stats_.write_bank_busy : stats_.read_bank_busy) += bank_busy;
    stats_.dma_busy += dma_busy;

    // Aggregate DDR/NoC ceiling shared by every core (Table VII plateau).
    const SimTime agg_busy = transfer_time(seg.length, spec_.aggregate_gbs);
    stats_.aggregate_busy += agg_busy;
    const SimTime agg_start = aggregate_.acquire(now, agg_busy);
    const SimTime agg_end = agg_start + agg_busy;

    if (trace_ != nullptr) {
      const int bank_track = bank_tracks_[static_cast<std::size_t>(seg.bank)];
      const SimTime arrival = now + hop_lat;
      const TraceSink::Rec r{/*core=*/-1, /*a=*/seg.bank,
                             /*b=*/is_write ? 1 : 0, seg_addr, seg.length};
      // Enqueue dur = time the request sat behind earlier bank work.
      trace_->record(TraceEventKind::kDramEnqueue, arrival,
                     bank_start - arrival, r, bank_track);
      trace_->record(TraceEventKind::kDramService, service_start, service_busy,
                     r, bank_track);
      if (row_miss) {
        trace_->record(TraceEventKind::kDramRowMiss, bank_start, 0, r,
                       bank_track);
      }
      trace_->record(TraceEventKind::kDramAggregate, agg_start, agg_busy, r,
                     agg_track_);
    }

    // Reads deliver when the slowest stage clears. Writes are posted: the
    // barrier sees the local drain (DMA) and acknowledgement; the bank
    // commits in the background (its timeline still holds reads off).
    const SimTime seg_end = is_write ? std::max(dma_ready, agg_end)
                                     : std::max({dma_ready, bank_end, agg_end});
    complete = std::max(complete, seg_end);
  }
  // Large read responses additionally transit store-and-forward buffering
  // on the return path (latency, not bank occupancy).
  if (!is_write) complete += transfer_time(size, spec_.read_store_forward_gbs);
  return complete + rt_latency + hop_lat;
}

bool DramModel::access_hits_stuck_bank(std::uint64_t addr, std::uint32_t size,
                                       bool is_write) {
  if (fault_ == nullptr) return false;
  // scratch_segments_ holds the just-scheduled access's per-bank segments —
  // an interleaved request must fault when *any* of them lands on a stuck
  // bank, not just the first byte's. bank_stuck is side-effect-free for
  // non-stuck banks, and we stop at the first hit so one access still logs
  // at most one fault event.
  for (const auto& seg : scratch_segments_) {
    if (fault_->bank_stuck(engine_.now(), seg.bank, addr, size, is_write)) {
      return true;
    }
  }
  return false;
}

void DramModel::read(std::uint64_t addr, std::byte* dst, std::uint32_t size,
                     ResourceTimeline& dma, int hops,
                     std::function<void()> on_complete) {
  TTSIM_CHECK(size > 0);
  std::uint64_t effective_addr = addr;
  if (addr % spec_.dram_alignment != 0) {
    ++stats_.unaligned_reads;
    switch (spec_.alignment_policy) {
      case AlignmentPolicy::kTrap:
        TTSIM_THROW_API("unaligned DRAM read at address "
                        << addr << " (alignment " << spec_.dram_alignment << ")");
      case AlignmentPolicy::kFaithful:
        // The controller drops the low address bits: data comes back from
        // the aligned-down address — silently wrong, as the paper observed
        // from the second row of Y downwards (Section IV-B).
        effective_addr = align_down(addr, spec_.dram_alignment);
        break;
      case AlignmentPolicy::kPermissive:
        break;
    }
  }
  const Placement p = place(effective_addr, size);
  const SimTime complete = schedule_access(place(addr, size), addr, size, /*is_write=*/false,
                                           dma, hops);
  ++stats_.read_requests;
  stats_.bytes_read += size;
  // Fault injection: decided at issue time (deterministic engine order),
  // applied at the simulated completion time.
  bool stuck = false;
  bool flip = false;
  std::uint32_t flip_bit = 0;
  if (fault_ != nullptr) {
    stuck = access_hits_stuck_bank(addr, size, /*is_write=*/false);
    if (!stuck) flip = fault_->flip_dram_read(engine_.now(), addr, size, &flip_bit);
  }
  std::byte* src = p.region->storage + p.offset;
  engine_.schedule_at(
      complete, [src, dst, size, stuck, flip, flip_bit, cb = std::move(on_complete)] {
        if (stuck) {
          std::memset(dst, 0xFF, size);
        } else {
          std::memcpy(dst, src, size);
          if (flip) {
            dst[flip_bit / 8] ^=
                std::byte{static_cast<unsigned char>(1u << (flip_bit % 8))};
          }
        }
        if (cb) cb();
      });
}

void DramModel::write(std::uint64_t addr, const std::byte* src, std::uint32_t size,
                      ResourceTimeline& dma, int hops,
                      std::function<void()> on_complete) {
  TTSIM_CHECK(size > 0);
  std::uint64_t effective_addr = addr;
  if (addr % spec_.dram_alignment != 0) {
    switch (spec_.alignment_policy) {
      case AlignmentPolicy::kTrap:
        TTSIM_THROW_API("unaligned DRAM write at address "
                        << addr << " (alignment " << spec_.dram_alignment << ")");
      case AlignmentPolicy::kFaithful: {
        // The paper found contiguous unaligned writes that *continue* the
        // previous write are merged correctly by the controller, while
        // non-contiguous unaligned writes corrupt memory. Reproduce both.
        const Placement probe = place(align_down(addr, spec_.dram_alignment), 1);
        // serving_bank, not a raw InterleaveMap: coarse regions scramble the
        // stripe->bank mapping, and the merge probe must look at the bank
        // that actually serves the byte or two distinct banks can alias to
        // one tracking slot (a write elsewhere then breaks a legitimate
        // continuation).
        const int bank = serving_bank(*probe.region, probe.offset);
        if (bank_last_write_end_[static_cast<std::size_t>(bank)] == addr) {
          ++stats_.unaligned_writes_merged;  // merged: lands where intended
        } else {
          ++stats_.unaligned_writes_corrupted;
          effective_addr = align_down(addr, spec_.dram_alignment);
        }
        break;
      }
      case AlignmentPolicy::kPermissive:
        break;
    }
  }
  {
    // Track write continuation on the *intended* stream so that a later
    // unaligned continuation of this write merges. Must agree with the
    // merge probe above on which bank serves the byte (serving_bank handles
    // the coarse-region stripe scramble).
    const Placement probe = place(align_down(addr, spec_.dram_alignment), 1);
    const int bank = serving_bank(*probe.region, probe.offset);
    bank_last_write_end_[static_cast<std::size_t>(bank)] = addr + size;
  }
  const Placement p = place(effective_addr, size);
  const SimTime complete = schedule_access(place(addr, size), addr, size, /*is_write=*/true,
                                           dma, hops);
  ++stats_.write_requests;
  stats_.bytes_written += size;
  // A stuck bank silently drops device-side writes (the timing above is
  // still charged: the transaction happened, the commit did not).
  const bool dropped = access_hits_stuck_bank(addr, size, /*is_write=*/true);
  // Snapshot the source now: on real hardware the data leaves the core when
  // the NoC accepts it, and the paper's kernels recycle source buffers.
  std::vector<std::byte> snapshot(src, src + size);
  std::byte* dst = p.region->storage + p.offset;
  engine_.schedule_at(complete, [dst, dropped, data = std::move(snapshot),
                                 cb = std::move(on_complete)] {
    if (!dropped) std::memcpy(dst, data.data(), data.size());
    if (cb) cb();
  });
}

void DramModel::host_write(std::uint64_t addr, const std::byte* src, std::uint64_t size) {
  const Placement p = place(addr, size);
  std::memcpy(p.region->storage + p.offset, src, size);
}

void DramModel::host_read(std::uint64_t addr, std::byte* dst, std::uint64_t size) const {
  const Placement p = place(addr, size);
  std::memcpy(dst, p.region->storage + p.offset, size);
}

}  // namespace ttsim::sim
