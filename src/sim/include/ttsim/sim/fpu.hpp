#pragma once
/// \file fpu.hpp
/// The Tensix matrix/vector FPU: a 16384-bit SIMD engine operating on tiles
/// of 1024 BF16 elements (32x32 when square). Compute kernels unpack CB
/// pages into destination tile registers, run element-wise math, and pack
/// results back into CBs (paper Section II-A and Listing 2). All arithmetic
/// here is genuine BF16, so simulated results carry hardware rounding.

#include <array>
#include <cstdint>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/sim/circular_buffer.hpp"
#include "ttsim/sim/spec.hpp"

namespace ttsim::sim {

class Fpu {
 public:
  static constexpr std::uint32_t kTileElems = 1024;  ///< 16384 bits of BF16
  static constexpr std::uint32_t kTileBytes = kTileElems * sizeof(bfloat16_t);

  Fpu(Engine& engine, const GrayskullSpec& spec) : engine_(engine), spec_(spec) {
    regs_.resize(static_cast<std::size_t>(spec.dst_registers));
  }

  /// dst[i] = a[tile ia][i] + b[tile ib][i]
  void add_tiles(const CircularBuffer& a, const CircularBuffer& b,
                 std::uint32_t ia, std::uint32_t ib, int dst) {
    binary_op(a, b, ia, ib, dst, [](bfloat16_t x, bfloat16_t y) { return x + y; });
  }

  /// dst[i] = a[tile ia][i] - b[tile ib][i]
  void sub_tiles(const CircularBuffer& a, const CircularBuffer& b,
                 std::uint32_t ia, std::uint32_t ib, int dst) {
    binary_op(a, b, ia, ib, dst, [](bfloat16_t x, bfloat16_t y) { return x - y; });
  }

  /// dst[i] = a[tile ia][i] * b[tile ib][i]
  void mul_tiles(const CircularBuffer& a, const CircularBuffer& b,
                 std::uint32_t ia, std::uint32_t ib, int dst) {
    binary_op(a, b, ia, ib, dst, [](bfloat16_t x, bfloat16_t y) { return x * y; });
  }

  /// Unpack one tile from a CB straight into a dst register.
  void copy_tile(const CircularBuffer& src, std::uint32_t idx, int dst) {
    charge(spec_.tile_math_cost);
    const auto* in = tile_data(src, idx);
    for (std::uint32_t i = 0; i < kTileElems; ++i) reg(dst)[i] = in[i];
  }

  /// Pack a dst register into the producer page of `out` (`page_offset`
  /// pages past the reserve point). The caller must have reserved the page.
  /// With a write-pointer override (aliased local memory) the full tile is
  /// stored at the override address — the caller guarantees room, exactly
  /// as on hardware.
  void pack_tile(int dst, CircularBuffer& out, std::uint32_t page_offset = 0) {
    charge(spec_.tile_pack_cost);
    auto* raw = out.write_ptr(page_offset);
    TTSIM_CHECK_MSG(out.has_write_ptr_override() || out.page_size() >= kTileBytes,
                    "pack_tile into a CB with pages smaller than a tile");
    std::memcpy(raw, reg(dst), kTileBytes);
  }

  /// Elementwise compare-to-scalar on a destination register (SFPU unary
  /// op): dst[i] = (dst[i] == v) ? 1 : 0. The building block for threshold
  /// transitions (Game of Life counts neighbours, then masks on the count).
  void eq_scalar_tile(int dst, bfloat16_t v) {
    charge(spec_.tile_math_cost);
    auto* r = reg(dst);
    for (std::uint32_t i = 0; i < kTileElems; ++i) {
      const bool eq = !r[i].is_nan() &&
                      static_cast<float>(r[i]) == static_cast<float>(v);
      r[i] = bfloat16_t{eq ? 1.0f : 0.0f};
    }
  }

  /// Elementwise |x| on a destination register (SFPU unary op).
  void abs_tile(int dst) {
    charge(spec_.tile_math_cost);
    auto* r = reg(dst);
    for (std::uint32_t i = 0; i < kTileElems; ++i) {
      r[i] = bfloat16_t::from_bits(static_cast<std::uint16_t>(r[i].bits() & 0x7FFF));
    }
  }

  /// Reduce a destination register to the maximum lane value (the FPU's
  /// reduction capability; NaN lanes propagate to the result).
  bfloat16_t reduce_max(int dst) {
    charge(spec_.tile_math_cost);
    const auto* r = reg(dst);
    bfloat16_t m = r[0];
    for (std::uint32_t i = 1; i < kTileElems; ++i) {
      if (r[i].is_nan() || (!m.is_nan() && static_cast<float>(r[i]) > static_cast<float>(m))) {
        m = r[i];
      }
    }
    return m;
  }

  /// Direct access to a destination register (tests and reductions).
  bfloat16_t* reg(int dst) {
    TTSIM_CHECK_MSG(dst >= 0 && dst < spec_.dst_registers, "dst register out of range");
    return regs_[static_cast<std::size_t>(dst)].data();
  }

 private:
  template <typename Op>
  void binary_op(const CircularBuffer& a, const CircularBuffer& b,
                 std::uint32_t ia, std::uint32_t ib, int dst, Op op) {
    charge(spec_.tile_math_cost);
    const auto* pa = tile_data(a, ia);
    const auto* pb = tile_data(b, ib);
    auto* out = reg(dst);
    for (std::uint32_t i = 0; i < kTileElems; ++i) out[i] = op(pa[i], pb[i]);
  }

  const bfloat16_t* tile_data(const CircularBuffer& cb, std::uint32_t idx) const {
    // `idx` selects a tile within the committed front page(s): tile t starts
    // at byte t * kTileBytes from the consumer read pointer.
    const std::byte* base = cb.read_ptr();
    return reinterpret_cast<const bfloat16_t*>(base + idx * kTileBytes);
  }

  void charge(SimTime cost) { engine_.delay(cost); }

  Engine& engine_;
  const GrayskullSpec& spec_;
  std::vector<std::array<bfloat16_t, kTileElems>> regs_;
};

}  // namespace ttsim::sim
