#pragma once
/// \file metrics.hpp
/// Aggregated metrics derived from a recorded trace: per-bank utilization
/// and mean queue depth, per-kernel stall breakdowns, circular-buffer
/// occupancy histograms and per-NoC traffic. This is the quantitative form
/// of the paper's bottleneck-attribution arguments — "the movers are
/// memcpy-bound" (Table II) or "two cores saturate one bank" (Table VII)
/// become assertions over these numbers instead of prose
/// (tests/trace/test_attribution.cpp, bench/attr_bottleneck).

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ttsim/common/units.hpp"

namespace ttsim::sim {

class TraceSink;

/// One DRAM bank over the report window.
struct BankMetrics {
  std::uint64_t requests = 0;    ///< service intervals (one per segment)
  std::uint64_t row_misses = 0;  ///< row re-activations charged
  std::uint64_t bytes = 0;       ///< payload serviced
  SimTime busy = 0;              ///< total service occupancy
  SimTime queue_wait = 0;        ///< total time requests sat queued
  /// Command-stage occupancy under pipelined bank service (zero when the
  /// model runs serialised): processing + row activation overlapping the
  /// previous request's data transfer. busy then counts the data stage
  /// only, so pipe_busy is the work the pipeline hid from the queue.
  SimTime pipe_busy = 0;
  std::uint64_t pipe_segments = 0;  ///< kDramBankPipe events seen
};

/// One kernel process (one trace track with kernel start/end events).
struct KernelMetrics {
  std::string name;        ///< process/track name
  int core = -1;           ///< worker index
  SimTime start = 0;       ///< first kernel_start on the track
  SimTime end = 0;         ///< last kernel_end on the track
  SimTime issue = 0;       ///< NoC read/write issue overhead
  SimTime memcpy_time = 0; ///< baby-core software memcpy
  SimTime fpu = 0;         ///< FPU math/pack occupancy
  SimTime cb_full_wait = 0;
  SimTime cb_empty_wait = 0;
  SimTime sem_wait = 0;
  SimTime read_barrier_wait = 0;
  SimTime write_barrier_wait = 0;
  SimTime global_barrier_wait = 0;
  std::uint64_t bytes_read = 0;     ///< NoC read payload issued
  std::uint64_t bytes_written = 0;  ///< NoC write payload issued
  std::uint64_t memcpy_bytes = 0;

  SimTime lifetime() const { return end - start; }
  /// Time attributable to the mover's own CPU: issue overhead + memcpy.
  SimTime self_busy() const { return issue + memcpy_time + fpu; }
  SimTime total_wait() const {
    return cb_full_wait + cb_empty_wait + sem_wait + read_barrier_wait +
           write_barrier_wait + global_barrier_wait;
  }
};

/// Everything build_metrics() distils from one trace.
struct MetricsReport {
  SimTime window_begin = 0;  ///< first kernel_start (or first event)
  SimTime window_end = 0;    ///< last kernel_end (or last event end)
  SimTime span() const { return window_end - window_begin; }

  std::vector<BankMetrics> banks;  ///< indexed by bank id
  SimTime aggregate_busy = 0;      ///< DDR aggregate-bus occupancy
  std::vector<KernelMetrics> kernels;  ///< in track order (deterministic)

  /// NoC traffic, indexed by NoC id.
  std::vector<std::uint64_t> noc_bytes;
  std::vector<std::uint64_t> noc_requests;
  std::vector<SimTime> noc_busy;

  /// Occupancy histograms: (core, cb_id) -> {pages -> samples}. Sampled
  /// after every push and pop, so it is occupancy weighted by transition
  /// count, not by time.
  std::map<std::pair<int, int>, std::map<int, std::uint64_t>> cb_occupancy;

  std::uint64_t fault_injections = 0;
  std::uint64_t pcie_transfers = 0;
  std::uint64_t pcie_bytes = 0;

  double bank_utilization(std::size_t bank) const {
    if (bank >= banks.size() || span() <= 0) return 0.0;
    return static_cast<double>(banks[bank].busy) / static_cast<double>(span());
  }
  double max_bank_utilization() const;
  /// Mean outstanding requests at the bank (Little's law: total queue wait
  /// over the window).
  double bank_mean_queue_depth(std::size_t bank) const {
    if (bank >= banks.size() || span() <= 0) return 0.0;
    return static_cast<double>(banks[bank].queue_wait) /
           static_cast<double>(span());
  }
  double aggregate_utilization() const {
    if (span() <= 0) return 0.0;
    return static_cast<double>(aggregate_busy) / static_cast<double>(span());
  }

  /// Human-readable multi-table rendering (bank table, kernel stall
  /// breakdown, NoC traffic, CB histograms).
  std::string to_string() const;
};

/// Aggregate a recorded trace. `num_banks` sizes the bank vector so banks
/// that saw no traffic still report zero utilization.
MetricsReport build_metrics(const TraceSink& sink, int num_banks);

}  // namespace ttsim::sim
