#pragma once
/// \file sync.hpp
/// Blocking synchronisation primitives for simulated processes: wait queues,
/// counting semaphores (the Tensix inter-core semaphores of the paper's
/// Fig. 3 are built on these) and completion counters used by the
/// `noc_async_*_barrier` calls.

#include <cstdint>
#include <deque>
#include <functional>

#include "ttsim/common/check.hpp"
#include "ttsim/sim/engine.hpp"

namespace ttsim::sim {

/// FIFO wait queue. Processes block with wait(); wakers run in either
/// process or callback context.
class WaitQueue {
 public:
  explicit WaitQueue(Engine& engine) : engine_(engine) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Block the calling process until notified. Spurious wakeups do not occur,
  /// but callers guarding a predicate should still loop (`while (!pred) wait()`)
  /// because another waiter may consume the state first.
  void wait();

  void notify_one();
  void notify_all();

  std::size_t waiter_count() const { return waiters_.size(); }

  /// Annotate what a process blocked on this queue is waiting for. The site
  /// is stamped onto each waiter for the lifetime of its wait; diagnostics
  /// (the verify-layer deadlock diagnoser) read it off blocked processes.
  /// Never affects scheduling or simulated time.
  void set_site(const WaitSite& site) { site_ = site; }
  const WaitSite& site() const { return site_; }

 private:
  Engine& engine_;
  std::deque<Process*> waiters_;
  WaitSite site_;
};

/// Counting semaphore in simulated time.
class SimSemaphore {
 public:
  SimSemaphore(Engine& engine, std::int64_t initial = 0)
      : queue_(engine), count_(initial) {
    TTSIM_CHECK(initial >= 0);
  }

  /// Acquire `n` units, blocking until available.
  void wait(std::int64_t n = 1) {
    TTSIM_CHECK(n > 0);
    while (count_ < n) queue_.wait();
    count_ -= n;
  }

  /// Release `n` units.
  void post(std::int64_t n = 1) {
    TTSIM_CHECK(n > 0);
    count_ += n;
    queue_.notify_all();
  }

  /// Non-blocking acquire; returns false if insufficient units.
  bool try_wait(std::int64_t n = 1) {
    if (count_ < n) return false;
    count_ -= n;
    return true;
  }

  std::int64_t value() const { return count_; }

  /// Forwarded to the underlying wait queue (see WaitQueue::set_site).
  void set_site(const WaitSite& site) { queue_.set_site(site); }

 private:
  WaitQueue queue_;
  std::int64_t count_;
};

/// Tracks outstanding async operations; barrier() blocks until all complete.
/// This is the mechanism behind noc_async_read_barrier /
/// noc_async_write_barrier.
class CompletionTracker {
 public:
  explicit CompletionTracker(Engine& engine) : queue_(engine) {}

  /// Record that an operation was issued.
  void issue() { ++outstanding_; ++issued_total_; }

  /// Record that an operation completed (typically from a timed callback).
  void complete() {
    TTSIM_CHECK_MSG(outstanding_ > 0, "completion without a matching issue");
    --outstanding_;
    if (outstanding_ == 0) queue_.notify_all();
  }

  /// Block until every issued operation has completed.
  void barrier() {
    while (outstanding_ > 0) queue_.wait();
  }

  std::uint64_t outstanding() const { return outstanding_; }
  std::uint64_t issued_total() const { return issued_total_; }

  /// Forwarded to the underlying wait queue (see WaitQueue::set_site).
  void set_site(const WaitSite& site) { queue_.set_site(site); }

 private:
  WaitQueue queue_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t issued_total_ = 0;
};

}  // namespace ttsim::sim
