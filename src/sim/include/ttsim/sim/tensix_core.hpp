#pragma once
/// \file tensix_core.hpp
/// One Tensix core: five RISC-V baby cores (two data movers + three compute
/// cores presented to the programmer as one), 1 MB SRAM, the FPU, circular
/// buffers, and inter-core semaphores (paper Fig. 1 / Fig. 3). Kernel
/// processes are attached by the ttmetal layer; this class owns the
/// per-core hardware state.

#include <map>
#include <memory>

#include "ttsim/sim/circular_buffer.hpp"
#include "ttsim/sim/dram.hpp"
#include "ttsim/sim/fault.hpp"
#include "ttsim/sim/fpu.hpp"
#include "ttsim/sim/noc.hpp"
#include "ttsim/sim/sram.hpp"
#include "ttsim/sim/sync.hpp"

namespace ttsim::sim {

class TensixCore {
 public:
  TensixCore(Engine& engine, const GrayskullSpec& spec, int core_id, NocCoord coord);

  int id() const { return id_; }
  NocCoord coord() const { return coord_; }

  Sram& sram() { return sram_; }
  Fpu& fpu() { return fpu_; }

  /// Create circular buffer `cb_id` backed by core SRAM. tt-metal indexes
  /// CBs 0..31; page geometry is fixed by the host code (paper Section II-A).
  CircularBuffer& create_cb(int cb_id, std::uint32_t page_size, std::uint32_t num_pages);
  CircularBuffer& cb(int cb_id);
  bool has_cb(int cb_id) const { return cbs_.count(cb_id) != 0; }

  /// Create/fetch an inter-baby-core semaphore (paper Fig. 3's green line).
  SimSemaphore& create_semaphore(int sem_id, std::int64_t initial);
  SimSemaphore& semaphore(int sem_id);

  /// DMA engine timeline for one NoC direction (0 = read NoC, 1 = write NoC).
  ResourceTimeline& dma(int noc_id);

  /// Install a trace sink propagated to CBs created from now on (Grayskull
  /// wires this before kernels attach). Pass nullptr to disable.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  TraceSink* trace() { return trace_; }

  /// Clear CBs/semaphores and the SRAM allocator between program launches.
  void reset();

  /// Park the calling process forever — the behaviour of a kernel whose core
  /// has failed (FaultPlan core kill): it simply stops executing. The wait
  /// queue is never notified, so the process stays blocked; Engine::run()
  /// reports it in the deadlock diagnostic and Device watchdogs convert it
  /// into a DeviceTimeoutError.
  [[noreturn]] void halt_current_process();

 private:
  Engine& engine_;
  const GrayskullSpec& spec_;
  int id_;
  NocCoord coord_;
  Sram sram_;
  Fpu fpu_;
  std::map<int, std::unique_ptr<CircularBuffer>> cbs_;
  std::map<int, std::unique_ptr<SimSemaphore>> semaphores_;
  ResourceTimeline dma_[2];
  std::unique_ptr<WaitQueue> halt_queue_;  // created on first halt
  TraceSink* trace_ = nullptr;
};

/// The whole accelerator: engine + DRAM + NoCs + Tensix grid. One Grayskull
/// object is one simulated e150 card.
class Grayskull {
 public:
  explicit Grayskull(GrayskullSpec spec = {});

  Engine& engine() { return engine_; }
  const GrayskullSpec& spec() const { return spec_; }
  DramModel& dram() { return dram_; }
  Noc& noc(int id);

  int worker_count() const { return spec_.worker_cores; }
  /// Worker Tensix core by dense index [0, worker_count()).
  TensixCore& worker(int idx);

  /// NoC coordinate of worker `idx`: workers fill rows bottom-up, leaving the
  /// final row's 12 cores as storage-only (120 cores, 108 workers).
  NocCoord worker_coord(int idx) const;
  /// NoC coordinate of a DRAM bank: banks flank the worker grid on the west
  /// (even banks) and east (odd banks) columns.
  NocCoord bank_coord(int bank) const;

  /// NoC hop count from a core to the bank serving `addr` (a representative
  /// mid-grid distance for interleaved regions).
  int hops_to_dram(const TensixCore& core, std::uint64_t addr, int noc_id);

  /// Install a deterministic fault plan consulted by the DRAM model and by
  /// the ttmetal kernel layer. Shared ownership: the same plan can span
  /// several device generations (a failed core stays failed across reopen).
  void install_fault_plan(std::shared_ptr<FaultPlan> plan);
  FaultPlan* fault_plan() { return fault_plan_.get(); }
  const std::shared_ptr<FaultPlan>& fault_plan_ptr() const { return fault_plan_; }

  /// Create (idempotently) the card-wide trace sink and wire it into the
  /// DRAM model, every worker core and the installed fault plan. Tracing
  /// observes state but never schedules events, so enabling it does not
  /// change simulated behaviour.
  TraceSink& enable_trace();
  /// The sink, or nullptr when tracing was never enabled.
  TraceSink* trace() { return trace_.get(); }

 private:
  GrayskullSpec spec_;
  Engine engine_;
  DramModel dram_;
  Noc noc0_;
  Noc noc1_;
  std::vector<std::unique_ptr<TensixCore>> workers_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::unique_ptr<TraceSink> trace_;
};

}  // namespace ttsim::sim
