#pragma once
/// \file fault.hpp
/// Deterministic, seed-driven fault injection for the simulated e150.
///
/// The paper's Section IV-B story is that the Grayskull fails *silently*
/// (unaligned accesses corrupt DRAM without an error) and that the e150
/// itself ships degraded (120 Tensix cores of which only 108 are usable
/// workers). A FaultPlan makes that class of failure reproducible: models
/// consult it at well-defined decision points (one DRAM read, one NoC
/// transaction, one PCIe transfer, ...) and it decides — from a seeded
/// ttsim::Rng in deterministic engine order — whether that operation is
/// faulted. Every injection is logged with the simulated time, the core /
/// bank / address involved and a monotonically increasing fault id, so a
/// failing run is exactly reproducible from its seed and the trace of two
/// runs with the same seed is byte-identical.
///
/// Fault taxonomy (see DESIGN.md, "Fault model & resilience"):
///  * kDramReadBitFlip — a device-side DRAM read delivers one flipped bit.
///  * kDramBankStuck   — reads from a stuck bank return a 0xFF pattern and
///                       device-side writes to it are silently dropped.
///  * kNocDrop         — a NoC write transaction is acknowledged but never
///                       lands (silent data loss, detectable by checksum).
///  * kNocDuplicate    — a NoC write is delivered twice (pays time twice).
///  * kNocDelay        — a NoC transaction completes late by `noc_delay`.
///  * kMoverStall      — a data mover stalls for `mover_stall` at issue.
///  * kCoreFailure     — a whole Tensix core halts at a configured sim time
///                       and stays unusable across device reopens (the
///                       108-of-120 harvesting story, mid-run).
///  * kPcieCorrupt     — a host<->device transfer delivers one corrupted
///                       byte.
///  * kCoreHeal        — a field-service heal (FaultPlan::heal_core): a
///                       core's transient failure is reset and it rejoins
///                       the usable set — the card-level flap/heal hook the
///                       serving layer's readmission probe uses.

#include <cstdint>
#include <string>
#include <vector>

#include "ttsim/common/rng.hpp"
#include "ttsim/common/units.hpp"

namespace ttsim::sim {

class TraceSink;

enum class FaultKind {
  kDramReadBitFlip,
  kDramBankStuck,
  kNocDrop,
  kNocDuplicate,
  kNocDelay,
  kMoverStall,
  kCoreFailure,
  kPcieCorrupt,
  kCoreHeal,
};

const char* to_string(FaultKind kind);

/// One logged injection. `core` is a worker id (-1 when not core-attached);
/// `addr` is the device/DRAM address or bank index the fault hit.
struct FaultEvent {
  std::uint64_t id = 0;
  FaultKind kind = FaultKind::kDramReadBitFlip;
  SimTime time = 0;
  int core = -1;
  std::uint64_t addr = 0;
  std::uint32_t size = 0;
};

std::string to_string(const FaultEvent& event);

/// A whole-core failure: `core` stops executing at sim time `at` and remains
/// unusable for the rest of the plan's lifetime (including after a device
/// reopen — a failed core does not come back on reboot).
struct CoreKill {
  int core = 0;
  SimTime at = 0;
};

struct FaultConfig {
  std::uint64_t seed = 1;

  // Per-request probabilities, evaluated at each decision point.
  double dram_read_bitflip_prob = 0.0;  ///< per device-side DRAM read
  double noc_drop_prob = 0.0;           ///< per NoC write transaction
  double noc_dup_prob = 0.0;            ///< per NoC write transaction
  double noc_delay_prob = 0.0;          ///< per NoC transaction (read or write)
  double mover_stall_prob = 0.0;        ///< per data-mover NoC issue
  double pcie_corrupt_prob = 0.0;       ///< per host<->device transfer

  SimTime noc_delay = 5 * kMicrosecond;
  SimTime mover_stall = 20 * kMicrosecond;

  /// Banks whose reads return a stuck 0xFF pattern and whose device-side
  /// writes are dropped.
  std::vector<int> stuck_banks;

  /// Deterministic whole-core failures.
  std::vector<CoreKill> core_kills;

  bool any_probabilistic() const {
    return dram_read_bitflip_prob > 0 || noc_drop_prob > 0 || noc_dup_prob > 0 ||
           noc_delay_prob > 0 || mover_stall_prob > 0 || pcie_corrupt_prob > 0;
  }
};

/// Decision outcome for one NoC transaction.
struct NocFaultDecision {
  bool drop = false;
  bool duplicate = false;
  SimTime extra_delay = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  // ---- decision points (each logs a FaultEvent when it fires) ----

  /// Device-side DRAM read: should one bit of the delivered data flip?
  /// On true, `*bit_index` is the flipped bit in [0, size * 8).
  bool flip_dram_read(SimTime now, std::uint64_t addr, std::uint32_t size,
                      std::uint32_t* bit_index);

  /// Is `bank` stuck? Logs (rate-limited to once per bank per call site
  /// would spam; logs every hit so the trace shows the access pattern).
  bool bank_stuck(SimTime now, int bank, std::uint64_t addr, std::uint32_t size,
                  bool is_write);

  /// One NoC transaction issued by worker `core` on NoC `noc_id`.
  /// Drops/duplicates apply to writes only (a dropped read would hang the
  /// issuing kernel forever; the watchdog story covers that via core kills).
  NocFaultDecision noc_transaction(SimTime now, int core, int noc_id,
                                   std::uint64_t addr, std::uint32_t size,
                                   bool is_write);

  /// Extra stall charged to a data mover at NoC issue time (0 = none).
  SimTime mover_stall(SimTime now, int core);

  /// Is `core` unusable at sim time `now`? True once its kill time has
  /// passed *or* its failure was already observed in an earlier device
  /// generation (failed silicon stays failed across reopen, where the
  /// engine clock restarts at zero).
  bool core_dead(int core, SimTime now) const;

  /// Record that `core` halted (called by the kernel layer the first time a
  /// kernel on the core stops executing). Marks the core permanently dead.
  void record_core_failure(SimTime now, int core);

  /// Permanently record every configured kill whose time has passed. The
  /// host calls this when a program times out, so a core whose kill fired
  /// while it sat blocked (never charging, hence never observing its own
  /// death) is still excluded from the next device generation.
  void commit_elapsed_kills(SimTime now);

  // ---- card-level flap/heal hooks ----
  // A "flap" is a card that goes down and comes back: its cores hang
  // (configured kills fire, the card wedges and is quarantined by its
  // owner), and a later field-service probe RESETS the transient condition
  // instead of writing the silicon off. heal_core models that reset: the
  // core's observed failure is cleared and its already-elapsed kills are
  // dropped, so the next device generation sees it usable again. Kills
  // configured for later times survive a heal — which is exactly how a
  // deterministic flapping card is scripted: kill at t1, heal at t2 > t1,
  // kill again at t3 > t2.

  /// Clear `core`'s observed failure and drop its configured kills with
  /// at <= now. Logs a kCoreHeal event (the heal is part of the
  /// deterministic fault story and shows up in trace_string()). No-op when
  /// the core is alive.
  void heal_core(SimTime now, int core);

  /// heal_core for every core dead at `now`. Returns how many were healed.
  int heal_dead_cores(SimTime now);

  /// Cores unusable at `now` (sorted ascending).
  std::vector<int> dead_cores(SimTime now) const;

  /// One host<->device PCIe transfer of `size` bytes: corrupt one byte?
  /// On true, `*byte_offset` is the corrupted byte's offset in the payload.
  bool pcie_corrupt(SimTime now, std::uint64_t size, std::uint64_t* byte_offset);

  // ---- trace ----
  const std::vector<FaultEvent>& trace() const { return trace_; }
  /// Canonical one-line-per-event rendering; byte-identical across runs
  /// with the same seed, config and workload (the determinism property).
  std::string trace_string() const;
  /// Last recorded event, or nullptr when the trace is empty.
  const FaultEvent* last_event() const {
    return trace_.empty() ? nullptr : &trace_.back();
  }

  /// Mirror every recorded injection into a simulator trace sink (kFault
  /// events on the "faults" track). Grayskull rebinds this on plan install
  /// and on enable_trace; nullptr disables mirroring.
  void set_trace(TraceSink* sink);

 private:
  std::uint64_t record(FaultKind kind, SimTime now, int core, std::uint64_t addr,
                       std::uint32_t size);
  bool roll(double prob);

  FaultConfig config_;
  Rng rng_;
  TraceSink* sink_ = nullptr;
  int sink_track_ = -1;
  std::vector<FaultEvent> trace_;
  std::vector<int> failed_cores_;  // permanently failed (observed) cores
};

}  // namespace ttsim::sim
