#pragma once
/// \file sram.hpp
/// The 1 MB local SRAM inside each Tensix core. Circular buffers and
/// kernel-local scratch buffers are carved out of it with a bump allocator
/// (mirroring tt-metal's L1 allocation): the paper's optimised kernel
/// allocates a four-batch local buffer here (Section VI).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/common/units.hpp"

namespace ttsim::sim {

class Sram {
 public:
  explicit Sram(std::uint64_t bytes) : capacity_(bytes) {}

  /// Allocate `size` bytes aligned to `align`; throws ApiError when the
  /// core's SRAM is exhausted (a real failure mode when sizing CBs).
  std::uint32_t allocate(std::uint64_t size, std::uint64_t align = 32) {
    TTSIM_CHECK(size > 0);
    TTSIM_CHECK(is_pow2(align));
    const std::uint64_t base = align_up(top_, align);
    if (base + size > capacity_) {
      TTSIM_THROW_API("Tensix SRAM exhausted: requested " << size << " bytes with "
                      << (capacity_ - top_) << " of " << capacity_ << " free");
    }
    top_ = base + size;
    high_water_ = std::max(high_water_, top_);
    ensure_backing();
    return static_cast<std::uint32_t>(base);
  }

  /// Reset the allocator (between program launches); storage is retained.
  void reset() { top_ = 0; }

  std::byte* data(std::uint32_t offset = 0) {
    ensure_backing();
    TTSIM_CHECK(offset < capacity_);
    return storage_.data() + offset;
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return top_; }
  std::uint64_t high_water() const { return high_water_; }

 private:
  void ensure_backing() {
    // Lazily allocate host memory: a 4-card simulation has 432 cores and we
    // only pay for those actually used.
    if (storage_.empty()) storage_.resize(capacity_);
  }

  std::uint64_t capacity_;
  std::uint64_t top_ = 0;
  std::uint64_t high_water_ = 0;
  std::vector<std::byte> storage_;
};

}  // namespace ttsim::sim
