#pragma once
/// \file dram.hpp
/// DRAM controller + bank timing/functional model for the simulated e150.
///
/// Timing model (constants in GrayskullSpec, calibrated in DESIGN.md):
///  * each bank is a serialised FIFO resource: a request occupies it for
///    per-request processing + transfer at the bank's bandwidth, plus a
///    row re-activation penalty when the request does not continue the
///    previous access; with GrayskullSpec::dram_bank_pipeline the
///    processing stage of a queued request instead overlaps the data
///    transfer of the request in service (in-order two-stage pipeline per
///    bank — identical timing whenever no queue forms);
///  * a global aggregate-bandwidth resource models the DDR/NoC ceiling the
///    paper hits at two streaming cores (Table VII);
///  * interleaved buffers are split at page boundaries; every page
///    sub-request additionally occupies the *requesting* DMA engine
///    (Table VI's small-page penalty);
///  * round-trip latency is added once per request.
///
/// Functional model: buffers are host-backed byte arrays registered as
/// regions. Reads copy DRAM->destination at the simulated completion time;
/// writes snapshot the source at issue and commit at completion. The
/// 256-bit alignment rule is emulated per GrayskullSpec::alignment_policy,
/// including the controller write-merging the paper inferred (contiguous
/// unaligned writes that continue the previous write land correctly;
/// non-contiguous ones corrupt).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ttsim/sim/engine.hpp"
#include "ttsim/sim/interleave.hpp"
#include "ttsim/sim/spec.hpp"

namespace ttsim::sim {

class FaultPlan;
class TraceSink;

/// A serialised resource in virtual time (bank, DMA engine, aggregate bus).
class ResourceTimeline {
 public:
  ResourceTimeline() : id_(next_id_++) {}

  /// Claim the resource for `busy` starting no earlier than `earliest`.
  /// Returns the actual start time.
  SimTime acquire(SimTime earliest, SimTime busy) {
    const SimTime start = std::max(earliest, free_at_);
    free_at_ = start + busy;
    return start;
  }
  SimTime free_at() const { return free_at_; }

  /// Process-unique identity, stable for the timeline's whole lifetime and
  /// never recycled (unlike the object's address). Anything that keys state
  /// by "which resource was this" must use the id: a destroyed timeline's
  /// heap/stack slot can be reused by a brand-new one, and pointer-keyed
  /// state would make the newcomer inherit its predecessor's history (e.g.
  /// a write-combiner stream that silently skips write_scatter_penalty).
  std::uint64_t id() const { return id_; }

 private:
  inline static std::uint64_t next_id_ = 0;
  std::uint64_t id_;
  SimTime free_at_ = 0;
};

/// One registered DRAM allocation.
struct DramRegion {
  std::uint64_t base = 0;       ///< device address of first byte
  std::uint64_t size = 0;       ///< bytes
  int bank = 0;                 ///< serving bank; -1 when interleaved/striped
  std::uint64_t page_size = 0;  ///< interleave page / stripe; 0 for single-bank
  /// Coarse striping (per-core slab placement across banks): splits at
  /// arbitrary stripe boundaries but does not pay tt-metal's per-page DMA
  /// sub-request overhead (a request virtually never crosses a stripe).
  bool coarse = false;
  std::byte* storage = nullptr; ///< host-backed functional data
  /// Coarse regions only: deterministic round-robin stripe->bank placement
  /// (stripe % banks) instead of the default allocator-order hash. Opt-in:
  /// the hash models real per-core slab allocation, which lands unevenly
  /// (16 stripes -> a 3/2/.../1 bank split) — exactly the hot-bank wall the
  /// deep-pipelining configuration then hits; balancing removes it.
  bool balanced = false;
};

/// Per-model counters exposed for tests and bench diagnostics.
struct DramStats {
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t unaligned_reads = 0;
  std::uint64_t unaligned_writes_merged = 0;
  std::uint64_t unaligned_writes_corrupted = 0;
  std::uint64_t interleave_segments = 0;
  // Accumulated resource occupancy (diagnostics for bench calibration).
  SimTime read_bank_busy = 0;
  SimTime write_bank_busy = 0;
  SimTime dma_busy = 0;
  SimTime aggregate_busy = 0;
  /// Pipelined bank service only: segments whose processing stage ran
  /// (partly or fully) under the previous request's data transfer, and the
  /// total serialised-service time that overlap saved.
  std::uint64_t pipelined_segments = 0;
  SimTime pipeline_overlap_saved = 0;
};

class DramModel {
 public:
  DramModel(Engine& engine, const GrayskullSpec& spec);

  /// Register an allocation. Regions must not overlap. Storage must outlive
  /// the model.
  void add_region(const DramRegion& region);
  void remove_region(std::uint64_t base);

  /// Find the region containing [addr, addr+size); throws ApiError if the
  /// range is unmapped or spans regions.
  const DramRegion& region_of(std::uint64_t addr, std::uint64_t size) const;

  /// Async device-side read of `size` bytes at device address `addr` into
  /// `dst`. `dma` is the requesting data mover's DMA-engine timeline (used
  /// for interleave sub-request serialisation); `hops` the NoC distance.
  /// The functional copy happens at the simulated completion time, then
  /// `on_complete` runs (scheduler context).
  void read(std::uint64_t addr, std::byte* dst, std::uint32_t size,
            ResourceTimeline& dma, int hops, std::function<void()> on_complete);

  /// Async device-side write; `src` is snapshotted at issue.
  void write(std::uint64_t addr, const std::byte* src, std::uint32_t size,
             ResourceTimeline& dma, int hops, std::function<void()> on_complete);

  /// Functional-only host access (PCIe timing handled by the caller).
  void host_write(std::uint64_t addr, const std::byte* src, std::uint64_t size);
  void host_read(std::uint64_t addr, std::byte* dst, std::uint64_t size) const;

  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }
  const GrayskullSpec& spec() const { return spec_; }

  /// Install a fault plan consulted on every device-side access (read
  /// bit-flips, stuck banks). Pass nullptr to disable. The plan must outlive
  /// the model (Grayskull owns both).
  void set_fault_plan(FaultPlan* plan) { fault_ = plan; }

  /// Install a trace sink recording bank enqueue/service/row-miss and
  /// aggregate-bus occupancy events (tracks "dram/bank<N>", "dram/aggregate").
  /// Pass nullptr to disable; the sink must outlive the model.
  void set_trace(TraceSink* trace);

  /// The bank serving `addr` (first page's bank for interleaved regions) —
  /// used for fault attribution and stuck-bank decisions.
  int serving_bank(const DramRegion& region, std::uint64_t offset) const;

 private:
  struct Placement {
    const DramRegion* region;
    std::uint64_t offset;  ///< offset of addr within the region
  };
  Placement place(std::uint64_t addr, std::uint64_t size) const;

  /// Computes the simulated completion time of an access (shared by
  /// read/write), charging bank/aggregate/DMA resources. Leaves the
  /// access's per-bank segments in scratch_segments_.
  SimTime schedule_access(const Placement& p, std::uint64_t addr, std::uint32_t size,
                          bool is_write, ResourceTimeline& dma, int hops);

  /// Consults the fault plan for every segment the just-scheduled access
  /// touches (scratch_segments_); true when any of them lands on a stuck
  /// bank. A multi-page interleaved access must fault even when only a
  /// non-first segment crosses the stuck bank.
  bool access_hits_stuck_bank(std::uint64_t addr, std::uint32_t size, bool is_write);

  Engine& engine_;
  GrayskullSpec spec_;
  std::map<std::uint64_t, DramRegion> regions_;  // keyed by base
  /// Per-bank table of recently-open sequential streams (row-buffer /
  /// controller-prefetch model): a request continuing any tracked stream is
  /// a row hit; otherwise it pays the re-activation penalty and evicts the
  /// oldest entry. Sized so a handful of concurrent per-core streams per
  /// bank coexist (the Table VIII full-card case) while the 33 interleaved
  /// streams of the x32-replication probe still thrash (Table V).
  struct StreamTable {
    static constexpr int kEntries = 16;
    std::uint64_t end[kEntries];
    int next = 0;
    StreamTable() { std::fill(std::begin(end), std::end(end), ~0ULL); }
    /// Returns true on a hit; records the stream's new end either way.
    bool access(std::uint64_t addr, std::uint64_t new_end) {
      for (auto& e : end) {
        if (e == addr) {
          e = new_end;
          return true;
        }
      }
      end[next] = new_end;
      next = (next + 1) % kEntries;
      return false;
    }
  };

  std::vector<ResourceTimeline> banks_;      // data-transfer stage (and the
                                             // whole service when serialised)
  std::vector<ResourceTimeline> bank_cmd_;   // processing stage (pipelined mode)
  std::vector<StreamTable> bank_read_streams_;      // row-miss tracking
  std::vector<StreamTable> bank_write_streams_;     // (separate write queues)
  std::vector<std::uint64_t> bank_last_write_end_;  // write-merge tracking
  /// Write-combiner continuation per requesting DMA engine, keyed by the
  /// timeline's stable id (never by pointer: a recycled timeline address
  /// must not inherit the old engine's stream and skip the scatter penalty).
  std::map<std::uint64_t, std::uint64_t> dma_last_write_end_;
  ResourceTimeline aggregate_;
  DramStats stats_;
  FaultPlan* fault_ = nullptr;
  TraceSink* trace_ = nullptr;
  std::vector<int> bank_tracks_;  // interned trace track ids, per bank
  int agg_track_ = -1;
  std::vector<InterleaveMap::Segment> scratch_segments_;
};

}  // namespace ttsim::sim
