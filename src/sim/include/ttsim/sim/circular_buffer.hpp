#pragma once
/// \file circular_buffer.hpp
/// Circular buffers (CBs): the FIFO pipes between baby cores inside a Tensix
/// core (paper Section II-A). A CB is a ring of fixed-size pages in local
/// SRAM following a producer-consumer protocol:
///   producer: cb_reserve_back -> fill write_ptr() -> cb_push_back
///   consumer: cb_wait_front  -> read read_ptr()   -> cb_pop_front
///
/// Includes the paper's Section VI SDK extension: set_read_ptr() redirects
/// the consumer-side read pointer at arbitrary local memory so FPU ops can
/// consume data in place without the data mover copying it into the CB.

#include <cstddef>
#include <cstdint>

#include "ttsim/sim/sync.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::sim {

class CircularBuffer {
 public:
  /// \param storage backing pages in the owning core's SRAM
  ///        (page_size * num_pages bytes).
  /// \param trace optional sink recording push/pop occupancy and blocked
  ///        full/empty waits (`core`/`cb_id` label the events); nullptr
  ///        disables tracing with no behavioural difference.
  CircularBuffer(Engine& engine, std::byte* storage, std::uint32_t page_size,
                 std::uint32_t num_pages, TraceSink* trace = nullptr,
                 int core = -1, int cb_id = -1)
      : storage_(storage),
        page_size_(page_size),
        num_pages_(num_pages),
        space_(engine),
        data_(engine),
        trace_(trace),
        core_(core),
        cb_id_(cb_id) {
    TTSIM_CHECK(page_size_ > 0);
    TTSIM_CHECK(num_pages_ > 0);
    TTSIM_CHECK(storage_ != nullptr);
    space_.set_site({WaitSite::Kind::kCbFull, core_, cb_id_});
    data_.set_site({WaitSite::Kind::kCbEmpty, core_, cb_id_});
  }

  std::uint32_t page_size() const { return page_size_; }
  std::uint32_t num_pages() const { return num_pages_; }

  /// Pages currently committed and not yet popped.
  std::uint32_t pages_available() const { return committed_; }
  /// Pages free for the producer.
  std::uint32_t pages_free() const { return num_pages_ - committed_ - pending_; }

  // --- producer side ---

  /// Block until `pages` pages are free for writing.
  void reserve_back(std::uint32_t pages) {
    check_pages(pages);
    if (trace_ != nullptr && pages_free() < pages) {
      // Record the blocked interval only when actually blocked, so a
      // free-flowing pipeline produces no wait events.
      const SimTime t0 = trace_->now();
      while (pages_free() < pages) space_.wait();
      trace_->record(TraceEventKind::kCbFullWait, t0, trace_->now() - t0,
                     {core_, cb_id_, static_cast<std::int32_t>(pages)});
      return;
    }
    while (pages_free() < pages) space_.wait();
  }

  /// Commit `pages` previously reserved/filled pages to the consumer.
  void push_back(std::uint32_t pages) {
    check_pages(pages);
    TTSIM_CHECK_MSG(pages_free() >= pages,
                    "cb_push_back without a matching cb_reserve_back");
    wr_page_ = (wr_page_ + pages) % num_pages_;
    committed_ += pages;
    override_wr_ptr_ = nullptr;  // an override is only valid for one page
    if (trace_ != nullptr) {
      trace_->record(TraceEventKind::kCbPush, trace_->now(), 0,
                     {core_, cb_id_, static_cast<std::int32_t>(committed_),
                      0, static_cast<std::uint64_t>(pages) * page_size_});
    }
    data_.notify_all();
  }

  /// Pointer to the current producer page (k pages ahead with `page_offset`,
  /// or the override if set).
  std::byte* write_ptr(std::uint32_t page_offset = 0) {
    if (override_wr_ptr_ != nullptr && page_offset == 0) return override_wr_ptr_;
    return storage_ + static_cast<std::size_t>((wr_page_ + page_offset) % num_pages_) *
                          page_size_;
  }

  // --- consumer side ---

  /// Block until `pages` pages have been committed by the producer.
  void wait_front(std::uint32_t pages) {
    check_pages(pages);
    if (trace_ != nullptr && committed_ < pages) {
      const SimTime t0 = trace_->now();
      while (committed_ < pages) data_.wait();
      trace_->record(TraceEventKind::kCbEmptyWait, t0, trace_->now() - t0,
                     {core_, cb_id_, static_cast<std::int32_t>(pages)});
      return;
    }
    while (committed_ < pages) data_.wait();
  }

  /// Free `pages` consumed pages back to the producer.
  void pop_front(std::uint32_t pages) {
    check_pages(pages);
    TTSIM_CHECK_MSG(committed_ >= pages, "cb_pop_front past the committed pages");
    committed_ -= pages;
    rd_page_ = (rd_page_ + pages) % num_pages_;
    clear_read_ptr();  // an override is only valid for the front page
    if (trace_ != nullptr) {
      trace_->record(TraceEventKind::kCbPop, trace_->now(), 0,
                     {core_, cb_id_, static_cast<std::int32_t>(committed_),
                      0, static_cast<std::uint64_t>(pages) * page_size_});
    }
    space_.notify_all();
  }

  /// Pointer to the current consumer page (or the override, if set).
  const std::byte* read_ptr(std::uint32_t page_offset = 0) const {
    if (override_rd_ptr_ != nullptr && page_offset == 0) return override_rd_ptr_;
    return storage_ + static_cast<std::size_t>((rd_page_ + page_offset) % num_pages_) *
                          page_size_;
  }

  /// The paper's cb_set_rd_ptr / llk_set_read_ptr extension: alias the front
  /// page at arbitrary local memory. Cleared by the next pop_front.
  /// `valid_bytes` bounds how much of the aliased page carries meaningful
  /// data (FPU tile ops always fetch a full tile, but lanes past the chunk
  /// width are don't-care): purely an annotation for the race detector — 0
  /// means "the whole page". No effect on behaviour or timing.
  void set_read_ptr(const std::byte* p, std::uint32_t valid_bytes = 0) {
    TTSIM_CHECK(p != nullptr);
    override_rd_ptr_ = p;
    override_rd_valid_ = valid_bytes;
  }
  void clear_read_ptr() {
    override_rd_ptr_ = nullptr;
    override_rd_valid_ = 0;
  }
  bool has_read_ptr_override() const { return override_rd_ptr_ != nullptr; }
  /// Meaningful bytes behind the current read pointer (override annotation,
  /// else the page size).
  std::uint32_t read_valid_bytes() const {
    if (override_rd_ptr_ != nullptr && override_rd_valid_ > 0) return override_rd_valid_;
    return page_size_;
  }

  /// Producer-side counterpart (the paper's API recommendation: "enabling
  /// CBs to alias local memory"): alias the producer page at arbitrary local
  /// memory so pack_tile lands directly in, e.g., an SRAM-resident domain
  /// slab. Cleared by the next push_back.
  void set_write_ptr(std::byte* p) {
    TTSIM_CHECK(p != nullptr);
    override_wr_ptr_ = p;
  }
  bool has_write_ptr_override() const { return override_wr_ptr_ != nullptr; }

 private:
  void check_pages(std::uint32_t pages) const {
    TTSIM_CHECK(pages > 0);
    TTSIM_CHECK_MSG(pages <= num_pages_,
                    "CB operation on more pages than the CB holds");
  }

  std::byte* storage_;
  std::uint32_t page_size_;
  std::uint32_t num_pages_;
  std::uint32_t wr_page_ = 0;
  std::uint32_t rd_page_ = 0;
  std::uint32_t committed_ = 0;
  std::uint32_t pending_ = 0;  // reserved-not-yet-pushed (kept 0: tt-metal
                               // tracks reservation implicitly via wr ptr)
  const std::byte* override_rd_ptr_ = nullptr;
  std::uint32_t override_rd_valid_ = 0;
  std::byte* override_wr_ptr_ = nullptr;
  WaitQueue space_;
  WaitQueue data_;
  TraceSink* trace_ = nullptr;
  int core_ = -1;   // trace labels only
  int cb_id_ = -1;
};

}  // namespace ttsim::sim
