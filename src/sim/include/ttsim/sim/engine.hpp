#pragma once
/// \file engine.hpp
/// Deterministic discrete-event engine with fiber-backed processes.
///
/// Every simulated baby core (data movers, compute) is a Process. Processes
/// advance virtual time by calling Engine::delay() and block on the sync
/// primitives in sync.hpp; hardware resources (DRAM banks, NoC links)
/// schedule plain callbacks. The scheduler is single-threaded and orders
/// events by (time, insertion sequence), so identical inputs always produce
/// identical simulated timelines.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "ttsim/common/units.hpp"
#include "ttsim/sim/fiber.hpp"

namespace ttsim::sim {

class Engine;

/// What a blocked process is waiting for. Every WaitQueue carries one
/// (annotated by its owner at creation); WaitQueue::wait() stamps it onto the
/// blocking process so diagnostics can name the resource instead of just the
/// kernel. Pure host-side bookkeeping: never schedules events or charges
/// simulated time, so annotating is observationally neutral.
struct WaitSite {
  enum class Kind {
    kNone,       ///< not blocked on a wait queue (or site never annotated)
    kCbFull,     ///< producer blocked in cb_reserve_back (needs a consumer pop)
    kCbEmpty,    ///< consumer blocked in cb_wait_front (needs a producer push)
    kSemaphore,  ///< blocked in semaphore_wait (needs a post)
    kBarrier,    ///< blocked at a global barrier (needs the other participants)
    kNocRead,    ///< blocked in noc_async_read_barrier (DMA completions)
    kNocWrite,   ///< blocked in noc_async_write_barrier (DMA completions)
    kHalted,     ///< parked forever — the core was killed by the fault plan
    kOther,      ///< a wait queue with no specific annotation
  };
  Kind kind = Kind::kNone;
  int core = -1;  ///< owning Tensix core, when the resource is core-local
  int id = -1;    ///< cb/semaphore/barrier id or NoC tag, when applicable
};

/// A simulated sequential execution context (one baby-core kernel).
class Process {
 public:
  enum class State { kReady, kRunning, kBlocked, kFinished };

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool finished() const { return state_ == State::kFinished; }

  /// The resource this process is (or was last) blocked on. Meaningful while
  /// the process sits in a WaitQueue; cleared when the wait returns.
  const WaitSite& wait_site() const { return wait_site_; }

 private:
  friend class Engine;
  friend class WaitQueue;

  Process(Engine& engine, std::string name, std::function<void()> fn,
          std::size_t stack_bytes);

  Engine& engine_;
  std::string name_;
  Fiber fiber_;
  State state_ = State::kReady;
  WaitSite wait_site_;
};

/// The discrete-event scheduler.
class Engine {
 public:
  Engine() = default;
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a process; it becomes runnable at the current simulated time.
  /// The returned pointer stays valid for the engine's lifetime.
  Process* spawn(std::string name, std::function<void()> fn,
                 std::size_t stack_bytes = 128 * 1024);

  /// Schedule a callback at absolute simulated time `t` (>= now). Callbacks
  /// execute in scheduler context and must not block.
  void schedule_at(SimTime t, std::function<void()> cb);
  void schedule_after(SimTime dt, std::function<void()> cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Run until every spawned process has finished and no callbacks remain.
  /// Throws CheckError on deadlock (blocked processes with an empty queue)
  /// and rethrows the first exception escaping any process.
  void run();

  /// Run until simulated time reaches `deadline` (or everything finishes).
  /// Returns true if all processes finished.
  bool run_until(SimTime deadline);

  /// Like run_until, but does not advance now() to `deadline` when the
  /// simulation finishes early — now() stays at the last processed event, as
  /// with run(). Used by the Device watchdog so a bounded program that
  /// completes keeps an accurate finish time.
  bool run_until_done(SimTime deadline);

  /// --- single-step driving (the ttmetal command-queue layer) ---
  /// Whether any event (wakeup or callback) is queued.
  bool has_pending() const { return !queue_.empty(); }
  /// Simulated time of the next queued event; CHECK-fails when none pending.
  SimTime next_event_time() const;
  /// Dispatch exactly one event (advancing now() to its time). Returns false
  /// without doing anything when the queue is empty. Lets a host-side driver
  /// interleave its own bookkeeping (watchdog deadlines, cross-queue
  /// ordering) between events while preserving the engine's (time, seq)
  /// order exactly.
  bool step();
  /// Throw the same deadlock error run() raises when the queue drains with
  /// unfinished processes: a DeadlockError (a retryable CheckError — see
  /// common/error.hpp). Exposed so external drivers report blocked kernels
  /// identically to run(). A non-empty `diagnosis` (e.g. a wait-for cycle
  /// report) is appended on its own line.
  [[noreturn]] void throw_deadlock(const std::string& diagnosis = {}) const;

  SimTime now() const { return now_; }

  /// The process currently executing; CHECK-fails outside process context.
  Process& current();
  bool in_process() const { return current_ != nullptr; }

  /// --- callable only from inside a process ---
  /// Advance this process's local time by `dt` (other events interleave).
  void delay(SimTime dt);

  /// Statistics for tests/diagnostics.
  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t process_count() const { return processes_.size(); }
  std::size_t unfinished_process_count() const;
  std::vector<std::string> blocked_process_names() const;
  /// Every process that has not finished, in spawn order — the deadlock
  /// diagnoser walks these and reads each one's wait_site().
  std::vector<const Process*> unfinished_processes() const;

 private:
  friend class WaitQueue;

  struct Event {
    SimTime time;
    std::uint64_t seq;
    Process* process;                 // wakeup if non-null ...
    std::function<void()> callback;   // ... else callback
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier (time, seq) first
    }
  };

  void push_wakeup(Process* p, SimTime t);
  void dispatch(Event& ev);
  /// Block the current process; returns when another event wakes it.
  void block_current();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  Process* current_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
};

}  // namespace ttsim::sim
