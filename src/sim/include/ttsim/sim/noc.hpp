#pragma once
/// \file noc.hpp
/// Network-on-chip model. The Grayskull has two independent NoCs laid out as
/// 2-D tori over the core grid; data movers conventionally use NoC0 for
/// reads (data in) and NoC1 for writes (data out). Routing is
/// dimension-ordered; we model per-hop latency and a per-NoC bandwidth
/// timeline (the binding bandwidth ceiling in practice is the DRAM
/// aggregate cap — see GrayskullSpec::aggregate_gbs).

#include <cstdlib>

#include "ttsim/sim/dram.hpp"
#include "ttsim/sim/spec.hpp"

namespace ttsim::sim {

struct NocCoord {
  int x = 0;
  int y = 0;
  friend bool operator==(const NocCoord&, const NocCoord&) = default;
};

class Noc {
 public:
  /// \param id 0 (read NoC) or 1 (write NoC); the two tori route in opposite
  ///        directions on real silicon, which we reflect only in id.
  Noc(const GrayskullSpec& spec, int id)
      : spec_(spec), id_(id),
        torus_x_(spec.grid_cols + 2),  // +2: DRAM columns flank the workers
        torus_y_(spec.grid_rows) {}

  int id() const { return id_; }

  /// Dimension-ordered torus hop count between two nodes.
  int hops(NocCoord a, NocCoord b) const {
    return torus_distance(a.x, b.x, torus_x_) + torus_distance(a.y, b.y, torus_y_);
  }

  SimTime hop_latency(NocCoord a, NocCoord b) const {
    return static_cast<SimTime>(hops(a, b)) * spec_.noc_hop_latency;
  }

  /// Claim NoC bandwidth for a payload; returns when the tail flit clears.
  SimTime occupy(SimTime earliest, std::uint64_t bytes) {
    const SimTime start = bandwidth_.acquire(earliest, transfer_time(bytes, spec_.noc_link_gbs));
    return start + transfer_time(bytes, spec_.noc_link_gbs);
  }

 private:
  static int torus_distance(int a, int b, int extent) {
    const int d = std::abs(a - b);
    return std::min(d, extent - d);
  }

  const GrayskullSpec& spec_;
  int id_;
  int torus_x_;
  int torus_y_;
  ResourceTimeline bandwidth_;
};

}  // namespace ttsim::sim
