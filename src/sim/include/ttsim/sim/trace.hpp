#pragma once
/// \file trace.hpp
/// Simulator-wide event tracing. A TraceSink records typed events with
/// simulated timestamps from every layer of the model — data mover NoC
/// issues and completions, circular-buffer pushes/pops and full/empty
/// waits, semaphore and barrier waits, DRAM bank enqueue/service intervals
/// and row misses, aggregate-bus occupancy, NoC transfers, FPU operations,
/// fault injections, PCIe transfers and kernel lifetimes.
///
/// Overhead contract: the subsystem is always compiled, never sampled.
/// Every instrumentation point is guarded by a single `TraceSink*` null
/// check, so a simulation with tracing disabled pays one predictable branch
/// per hook (measured <= 1% end-to-end; see DESIGN.md "Tracing & metrics").
/// Tracing records state but never advances simulated time or touches the
/// event queue, so enabling it is observationally neutral: results and
/// simulated timings are bit-identical with tracing on or off
/// (tests/trace/test_trace_neutrality.cpp).
///
/// Because the engine is deterministic, the recorded stream is a pure
/// function of (spec, workload, fault seed): two runs of the same problem
/// produce byte-identical canonical traces, which is what the golden-trace
/// regression tests pin (tests/trace/test_golden_trace.cpp).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ttsim/sim/engine.hpp"

namespace ttsim::sim {

enum class TraceEventKind : std::uint8_t {
  kKernelStart,       ///< kernel process began executing (instant)
  kKernelEnd,         ///< kernel process returned (instant)
  kMoverReadIssue,    ///< data mover issued a NoC read; dur = issue time
  kMoverReadComplete, ///< the read's data landed in L1 (instant)
  kMoverWriteIssue,   ///< data mover issued a NoC write; dur = issue time
  kMoverWriteComplete,///< the write drained / was acknowledged (instant)
  kMoverMemcpy,       ///< baby-core software memcpy; dur = copy time
  kCbPush,            ///< producer committed pages; b = occupancy after
  kCbPop,             ///< consumer freed pages; b = occupancy after
  kCbFullWait,        ///< producer blocked for space; dur = blocked time
  kCbEmptyWait,       ///< consumer blocked for data; dur = blocked time
  kSemPost,           ///< semaphore post (instant)
  kSemWait,           ///< blocked semaphore wait; dur = blocked time
  kReadBarrierWait,   ///< noc_async_read_barrier blocked; dur = blocked time
  kWriteBarrierWait,  ///< noc_async_write_barrier blocked; dur = blocked time
  kGlobalBarrierWait, ///< device-wide barrier rendezvous; dur = blocked time
  kFpuOp,             ///< FPU math/pack operation; dur = operation time
  kDramEnqueue,       ///< request arrived at a bank; dur = queueing delay
  kDramService,       ///< bank busy interval for one segment; dur = occupancy
  kDramRowMiss,       ///< row re-activation penalty charged (instant)
  kDramAggregate,     ///< aggregate DDR bus occupancy; dur = transfer time
  kNocTransfer,       ///< payload transited a NoC; dur = link occupancy
  kFault,             ///< fault injection fired; a = FaultKind
  kPcieTransfer,      ///< host<->device transfer attempt; dur = bus time
  kDramBankPipe,      ///< cmd-stage occupancy under pipelined bank service
                      ///< (GrayskullSpec::dram_bank_pipeline); dur = proc +
                      ///< row activation, overlapping the previous request's
                      ///< data transfer. Never emitted in serialised mode.
  // Serving-layer request spans (src/serve/). Recorded only by the
  // StencilService's private span sink, never by device workloads, so the
  // golden-trace hashes of the device benchmarks are unaffected.
  kServeAdmit,        ///< request accepted into a tenant queue (instant)
  kServeReject,       ///< request rejected (backpressure/deadline); a = reason
  kServeQueueWait,    ///< admit -> dispatch; dur = time queued
  kServeH2D,          ///< host->device staging of a batch; dur = PCIe time
  kServeKernel,       ///< batched kernel launch; dur = program time; b = batch
  kServeD2H,          ///< device->host readback of a batch; dur = PCIe time
  // Chip-to-chip fabric (src/sim/chiplink/). Recorded only by the
  // ChipLinkFabric's private sink on per-directed-link tracks named after
  // the global card ids ("eth/card0->card1"), so single-card golden hashes
  // are unaffected and multi-card track ids stay stable across card counts.
  kChipLinkTransfer,  ///< one link message; a = src card, b = dst card,
                      ///< bytes = payload, dur = wire + serialisation time
};

const char* to_string(TraceEventKind kind);

/// One recorded event. `track` identifies the timeline the event belongs to
/// (a baby-core kernel process, a DRAM bank, a NoC, the aggregate bus or
/// the host); the remaining fields are kind-specific:
///   core  — worker id involved, -1 when not core-attached
///   a     — cb/semaphore/bank/noc/barrier id, or FaultKind for kFault
///   b     — occupancy after a CB push/pop, pages requested for a CB wait,
///           NoC hop count, or is_write for DRAM events
///   addr  — device/DRAM/L1 address when meaningful
///   bytes — payload size in bytes
struct TraceEvent {
  SimTime ts = 0;   ///< begin time (simulated, ps)
  SimTime dur = 0;  ///< 0 = instant event
  TraceEventKind kind = TraceEventKind::kKernelStart;
  std::int32_t track = 0;
  std::int32_t core = -1;
  std::int32_t a = -1;
  std::int32_t b = 0;
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
};

class TraceSink {
 public:
  explicit TraceSink(Engine& engine) : engine_(engine) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  SimTime now() const { return engine_.now(); }

  /// Intern a track name; ids are assigned in first-use order, which the
  /// deterministic engine makes reproducible across runs.
  int track(std::string_view name);
  /// Track of the currently executing process (or "host" outside process
  /// context — scheduler callbacks and host-side code).
  int current_track();
  const std::string& track_name(int id) const { return track_names_[static_cast<std::size_t>(id)]; }
  std::size_t track_count() const { return track_names_.size(); }

  /// Kind-independent payload for record(); aggregate-initialise the fields
  /// that apply (see TraceEvent for their meaning per kind).
  struct Rec {
    std::int32_t core = -1;
    std::int32_t a = -1;
    std::int32_t b = 0;
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
  };

  /// Append one event. `track_id` < 0 means "the current process's track".
  void record(TraceEventKind kind, SimTime ts, SimTime dur, const Rec& r,
              int track_id = -1) {
    TraceEvent e;
    e.ts = ts;
    e.dur = dur;
    e.kind = kind;
    e.track = track_id >= 0 ? track_id : current_track();
    e.core = r.core;
    e.a = r.a;
    e.b = r.b;
    e.addr = r.addr;
    e.bytes = r.bytes;
    events_.push_back(e);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Drop recorded events (track interning survives, so ids stay stable
  /// within one sink's lifetime). Used to scope metrics to a phase of
  /// interest, e.g. "after the setup transfers, before the kernel run".
  void clear() { events_.clear(); }

  /// Canonical one-line-per-event rendering in record order. Byte-identical
  /// across runs of the same workload — the golden-trace property.
  std::string canonical() const;
  /// FNV-1a 64-bit hash of canonical(); what the golden tests pin.
  std::uint64_t hash() const;

  /// Chrome trace_event JSON (the format Perfetto / chrome://tracing load):
  /// one named thread per track, "X" complete events for intervals, "i"
  /// instants, plus CB-occupancy counter tracks.
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write_chrome_trace to a file; throws ApiError on failure.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  Engine& engine_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> track_names_;
  std::map<std::string, int, std::less<>> track_ids_;
};

}  // namespace ttsim::sim
