#pragma once
/// \file interleave.hpp
/// Page-interleaved address mapping across DRAM banks. tt-metal cycles
/// fixed-size pages round-robin over the e150's eight banks (Section V,
/// Table VI); this class splits a logical access into per-bank segments.

#include <cstdint>
#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/common/units.hpp"

namespace ttsim::sim {

class InterleaveMap {
 public:
  /// \param num_banks number of DRAM banks to cycle pages over.
  /// \param page_size bytes per page. tt-metal interleaving uses power-of-two
  ///        pages up to 64 KiB (validated by DramModel); coarse striping
  ///        (per-core slab placement) uses arbitrary stripe sizes.
  InterleaveMap(int num_banks, std::uint64_t page_size)
      : num_banks_(num_banks), page_size_(page_size) {
    TTSIM_CHECK(num_banks_ > 0);
    TTSIM_CHECK_MSG(page_size_ > 0, "page size must be positive");
  }

  struct Segment {
    int bank;                    ///< bank serving this piece
    std::uint64_t offset;        ///< offset within the logical buffer
    std::uint32_t length;        ///< bytes in this piece
  };

  int num_banks() const { return num_banks_; }
  std::uint64_t page_size() const { return page_size_; }

  int bank_of(std::uint64_t offset) const {
    return static_cast<int>((offset / page_size_) % static_cast<std::uint64_t>(num_banks_));
  }

  /// Split [offset, offset+length) at page boundaries, appending to `out`.
  /// Each resulting segment lies within one page (hence one bank).
  void split(std::uint64_t offset, std::uint64_t length,
             std::vector<Segment>& out) const {
    while (length > 0) {
      const std::uint64_t in_page = offset % page_size_;
      const std::uint64_t take = std::min<std::uint64_t>(length, page_size_ - in_page);
      out.push_back(Segment{bank_of(offset), offset, static_cast<std::uint32_t>(take)});
      offset += take;
      length -= take;
    }
  }

  /// Number of page segments the access [offset, offset+length) spans.
  std::uint64_t segment_count(std::uint64_t offset, std::uint64_t length) const {
    if (length == 0) return 0;
    const std::uint64_t first = offset / page_size_;
    const std::uint64_t last = (offset + length - 1) / page_size_;
    return last - first + 1;
  }

 private:
  int num_banks_;
  std::uint64_t page_size_;
};

}  // namespace ttsim::sim
