#pragma once
/// \file spec.hpp
/// DeviceSpec: the architectural and timing parameters of a simulated
/// Tenstorrent card. The default-constructed spec is the Grayskull e150 the
/// paper characterises (GrayskullSpec remains an alias for it, and every
/// timing constant is calibrated against the paper's own microbenchmarks,
/// Tables II–VII; the derivation is recorded next to each value so the
/// calibration is auditable — DESIGN.md carries the summary). Named
/// factories produce the family members: DeviceSpec::grayskull_e150() and
/// DeviceSpec::wormhole() (the follow-on Wormhole paper's card: more cores,
/// bigger SRAM, GDDR6, and chip-to-chip Ethernet links — see chiplink.hpp
/// for the link model those feed).

#include <cstdint>
#include <string>

#include "ttsim/common/units.hpp"

namespace ttsim::sim {

/// How the DRAM controller treats accesses that violate the 256-bit
/// alignment rule the paper discovered (Section IV-B).
enum class AlignmentPolicy {
  /// Emulate observed hardware behaviour: the controller drops the low
  /// address bits, so unaligned reads return data from the aligned-down
  /// address and unaligned non-contiguous writes land at the aligned-down
  /// address — i.e. silently incorrect values, as the paper reports.
  kFaithful,
  /// Throw ApiError on any unaligned access (useful in tests/development).
  kTrap,
  /// Behave like a correct controller (used to show what the paper's code
  /// *would* have done on friendlier hardware).
  kPermissive,
};

struct DeviceSpec {
  /// Family member this spec describes. Purely descriptive for reports and
  /// per-spec cost bookkeeping (serve keys its EWMA cost model on it);
  /// nothing in the simulator dispatches on the name.
  std::string name = "grayskull-e150";

  // ---- Architecture (Tenstorrent e150 datasheet / paper Section II) ----
  Clock clock{1.2};                     ///< Tensix cores run at 1.2 GHz.
  int grid_cols = 12;                   ///< 12 x 10 Tensix grid = 120 cores.
  int grid_rows = 10;
  int worker_cores = 108;               ///< 12 of the 120 are storage-only.
  std::uint64_t sram_bytes = 1 * MiB;   ///< Local SRAM per Tensix core.
  int dram_banks = 8;                   ///< 8 GiB DDR split over 8 banks.
  std::uint64_t dram_bank_bytes = 1 * GiB;
  std::uint64_t dram_alignment = 32;    ///< 256-bit DRAM access alignment rule.
  std::uint64_t max_interleave_page = 64 * KiB;  ///< tt-metal page-size cap.
  int tile_rows = 32;                   ///< FPU tile is 32x32 BF16 =
  int tile_cols = 32;                   ///< 16384 bits per SIMD operation.
  int dst_registers = 16;               ///< Destination tile register slots.

  AlignmentPolicy alignment_policy = AlignmentPolicy::kFaithful;

  // ---- Data mover (RISC-V baby core) costs ----
  /// Cycles a data mover spends issuing one NoC read request.
  /// Calibration: Table III, 4 B batches, no sync: 1.761 s / 16.7 M requests
  /// = 105 ns/request, issue-bound.
  SimTime read_issue_overhead = 105 * kNanosecond;
  /// Table III write column, 4 B no-sync: 0.411 s / 16.7 M = 24.6 ns.
  SimTime write_issue_overhead = 24 * kNanosecond;
  /// Fixed round-trip NoC + controller latency observed by a blocking read.
  /// Table III, 4 B sync: 12.659 s / 16.7 M = 758 ns minus issue and bank
  /// processing leaves ~640 ns.
  SimTime read_latency = 640 * kNanosecond;
  /// Store-and-forward component of read latency: a large response transits
  /// buffering stages at this rate *in addition to* occupying the bank.
  /// Calibration: Table III 16 KiB rows need ~2.69 µs/request end-to-end
  /// while Table V's pipelined replicated reads show only ~1.29 µs of bank
  /// occupancy — the ~0.65 µs difference is per-request latency that does
  /// not serialise the bank.
  double read_store_forward_gbs = 26.0;
  /// Posted-write acknowledgement latency. Table III write, 4 B sync:
  /// 172 ns/req minus issue (24) and bank processing (10) ≈ 138 ns.
  SimTime write_latency = 138 * kNanosecond;

  /// Data-mover software memcpy between local SRAM buffers and CBs:
  /// fixed per-call cost plus per-byte cost. Calibration: Section V inline
  /// (read into local buffer + memcpy = 0.106 s vs 0.011 s direct over
  /// 4096 x 16 KiB rows → ~23 µs per 16 KiB copy → ~1.39 ns/B + ~0.5 µs/call);
  /// Table II memcpy-only row (0.014 GPt/s = 73 µs per 32x32 batch over
  /// 128 strided 64 B copies) confirms the per-call constant.
  SimTime memcpy_call_overhead = 500 * kNanosecond;
  double memcpy_ns_per_byte = 1.39;

  // ---- DRAM bank / controller costs ----
  /// Per-request processing occupancy at a bank (serialised per bank).
  /// Together with the transfer term this sets the no-sync read knee around
  /// the 1024-512 B batches of Tables III/IV, and the ~200 ns/request bank
  /// budget the Table VIII full-card run implies.
  SimTime bank_read_proc = 50 * kNanosecond;
  SimTime bank_write_proc = 10 * kNanosecond;
  /// Extra occupancy when a request does not continue the previous one
  /// (DRAM row re-activation). Calibration: Table IV vs Table III gap.
  SimTime bank_row_miss = 45 * kNanosecond;
  /// Extra mover drain time per posted write that does not continue the
  /// mover's previous write (write-combiner flush). Calibration: Table IV
  /// write no-sync, 64 B: 0.074 s / (4096 x 256) ≈ 70 ns/request, of which
  /// ~10 ns is transfer.
  SimTime write_scatter_penalty = 60 * kNanosecond;
  /// Per-bank streaming bandwidth. Table V: x32 replicated reads sustain
  /// ~1.26 µs of occupancy per 16 KiB from one bank; eight banks together
  /// approach the e150's quoted ~118 GB/s DDR bandwidth.
  double bank_read_gbs = 13.5;
  /// Bank-side write drain; writes are posted, so this occupies the bank
  /// (contending with reads) but does not gate the write barrier.
  double bank_write_gbs = 13.0;
  /// Data-mover NoC injection bandwidth for reads. Table VI: with 32 KiB
  /// interleave pages and x32 replication one mover pulls 2.1 GiB / 0.079 s
  /// ≈ 26.5 GB/s — so the mover path is near the aggregate cap and the
  /// single-bank limit above is what binds un-interleaved runs.
  double dma_read_gbs = 28.0;
  /// Data-mover write drain bandwidth; the write barrier waits for this
  /// local drain (posted writes). Table III write, 16 KiB rows: 0.011 s /
  /// 4096 rows ≈ 2.7 µs ≈ 24 ns issue + 16384 B / 6.5 GB/s + 138 ns ack.
  double dma_write_gbs = 6.5;
  /// DDR-wide bandwidth ceiling across all eight banks (≈ 8 x the per-bank
  /// figure). Table VII's two-core streaming plateau is a *single-bank*
  /// effect (both buffers live in one bank each); the full-card Jacobi run
  /// of Table VIII saturates this chip-wide ceiling instead (22.06 GPt/s
  /// with ~4 B of DRAM traffic per point ≈ 90 GB/s).
  double aggregate_gbs = 96.0;
  /// Serialised DMA-engine work per interleave page sub-request (address
  /// generation + per-page dispatch), folded with the transfer time as
  /// max(sub_overhead, bytes/dma_gbs). Table VI: 1 KiB pages, replication
  /// 32: 1.094 s / (4096 rows * 512 sub-requests) ≈ 520 ns each; the
  /// replication-0 rows confirm the same constant.
  SimTime interleave_sub_overhead = 520 * kNanosecond;
  /// Pipelined bank service: overlap the per-request processing (proc +
  /// row activation) of a queued request with the data transfer of the one
  /// in service — a small in-order command/data pipeline per bank, which is
  /// how the real GDDR controller sustains the ~88 GB/s the paper's Table
  /// VIII Jacobi traffic implies. Default off: the serialised model is what
  /// the microbenchmark tables (III–VII) calibrate, and the golden traces
  /// pin it. An *uncontended* bank behaves identically either way (the
  /// pipeline only overlaps stages of *queued* requests), so enabling this
  /// changes nothing until a bank queue actually forms.
  bool dram_bank_pipeline = false;

  // ---- NoC ----
  SimTime noc_hop_latency = 1 * kNanosecond;  ///< per-hop router latency
  /// Per-link bandwidth; generous so the aggregate cap binds first, as the
  /// paper's Table VII suggests (bandwidth wall, not route congestion).
  double noc_link_gbs = 96.0;

  // ---- Compute (FPU) costs ----
  /// One 32x32-tile FPU math operation (unpack+math issue), and packing a
  /// dst register to a CB. Calibration: Table II compute-only row
  /// (1.387 GPt/s → 738 ns per batch over 4 math + 4 pack + CB traffic).
  SimTime tile_math_cost = 70 * kNanosecond;
  SimTime tile_pack_cost = 70 * kNanosecond;
  /// One circular-buffer API call on any baby core (reserve/push/wait/pop).
  /// Calibration: Table II all-off row (7.574 GPt/s → ~135 ns of pure CB
  /// skeleton per batch).
  SimTime cb_op_cost = 8 * kNanosecond;
  /// Per-batch loop bookkeeping on each baby core (address arithmetic etc.).
  SimTime loop_overhead = 40 * kNanosecond;

  // ---- Host link ----
  double pcie_gbs = 20.0;                        ///< effective PCIe Gen4 x16
  SimTime pcie_latency = 10 * kMicrosecond;      ///< per-transfer setup
  SimTime program_dispatch = 500 * kMicrosecond; ///< kernel launch overhead

  // ---- Power (Section VII; TT-SMI): near-constant card draw ----
  double card_power_base_w = 46.5;
  double card_power_per_core_w = 0.045;

  // ---- Chip-to-chip Ethernet links (Wormhole and later; see chiplink.hpp) --
  /// Point-to-point link ports on the card. Grayskull has none: e150s cannot
  /// access each other's memory (paper Section VII), which is exactly the
  /// limitation the Wormhole family lifts.
  int eth_links = 0;
  /// Effective per-link bandwidth. Wormhole's ports are 100 GbE: 12.5 GB/s
  /// raw, ~12 GB/s after framing.
  double eth_link_gbs = 0.0;
  /// Per-message link latency (serialisation + MAC + switchless
  /// point-to-point wire, both endpoints' Ethernet RISC cores included).
  SimTime eth_link_latency = 0;

  std::uint64_t dram_total_bytes() const {
    return static_cast<std::uint64_t>(dram_banks) * dram_bank_bytes;
  }

  /// The paper's Grayskull e150: exactly the default-constructed spec (kept
  /// as a named factory so call sites read symmetrically with wormhole()).
  static DeviceSpec grayskull_e150() { return DeviceSpec{}; }

  /// Wormhole: the follow-on card the multi-chip papers target. 120 worker
  /// Tensix cores at 1.0 GHz with 1.5 MB SRAM each, 28 GB GDDR6 over 14
  /// banks at 448 GB/s aggregate, PCIe Gen 5, and 16 x 100 GbE chip-to-chip
  /// links. Bank-level constants scale from the e150 calibration by the
  /// bandwidth ratio (no Wormhole microbenchmark tables exist in the source
  /// paper, so the baby-core/FPU cost structure is carried over verbatim and
  /// the DRAM path keeps the e150's measured ~81% aggregate derate:
  /// 448 -> ~364 GB/s effective, 32 GB/s per bank).
  static DeviceSpec wormhole() {
    DeviceSpec s;
    s.name = "wormhole";
    s.clock = Clock{1.0};
    s.grid_cols = 12;
    s.grid_rows = 10;
    s.worker_cores = 120;  // no harvested row on this family member
    s.sram_bytes = 1536 * KiB;
    s.dram_banks = 14;
    s.dram_bank_bytes = 2 * GiB;
    s.bank_read_gbs = 32.0;
    s.bank_write_gbs = 30.0;
    s.aggregate_gbs = 364.0;
    s.dma_read_gbs = 56.0;   // GDDR6 controllers double the mover pull rate
    s.dma_write_gbs = 13.0;  // and the posted-write drain alongside it
    s.noc_link_gbs = 192.0;  // wider NoC so the aggregate cap binds first
    s.pcie_gbs = 40.0;       // effective PCIe Gen 5 x16
    s.eth_links = 16;
    s.eth_link_gbs = 12.0;
    s.eth_link_latency = 1 * kMicrosecond;
    s.card_power_base_w = 80.0;
    s.card_power_per_core_w = 0.06;
    return s;
  }
};

/// Historical name from the single-card reproduction: the default DeviceSpec
/// IS the Grayskull e150, so every existing call site keeps meaning exactly
/// what it did before the family existed.
using GrayskullSpec = DeviceSpec;

/// The Wormhole family member under its family-style name.
inline DeviceSpec WormholeSpec() { return DeviceSpec::wormhole(); }

}  // namespace ttsim::sim
