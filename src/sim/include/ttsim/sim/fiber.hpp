#pragma once
/// \file fiber.hpp
/// Cooperative fibers (ucontext-based) underpinning the simulator. Each
/// simulated baby-core kernel runs on its own fiber; the scheduler switches
/// between fibers only at simulation API calls, making runs fully
/// deterministic and independent of host thread timing.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <ucontext.h>

#include "ttsim/common/check.hpp"

namespace ttsim::sim {

/// Thrown through a parked fiber's yield point by Fiber::cancel() so the
/// fiber's stack unwinds (destructors run) at teardown. Caught and discarded
/// by the fiber trampoline; never escapes to the scheduler.
struct FiberCancelled {};

/// A single cooperative fiber. Not movable once started (the context captures
/// the stack address).
class Fiber {
 public:
  /// \param entry    Function executed on the fiber's stack.
  /// \param stack_bytes Stack size; kernels using deep recursion should raise it.
  explicit Fiber(std::function<void()> entry, std::size_t stack_bytes = 128 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller (scheduler) into the fiber. Returns when the
  /// fiber yields or finishes. Must not be called re-entrantly.
  void resume();

  /// Switch from inside the fiber back to its resumer. Only callable on the
  /// fiber itself.
  void yield();

  bool finished() const { return finished_; }

  /// Rethrows any exception that escaped the fiber entry function.
  void rethrow_if_failed();

  /// Unwind a started-but-unfinished fiber: resume it one last time with
  /// FiberCancelled thrown from its yield point, so every object on its
  /// stack destructs. Used at engine teardown for processes parked forever
  /// (deadlocked or halted kernels on a wedged device). No-op when the fiber
  /// never started or already finished; must not be called from inside.
  void cancel();

  /// The fiber currently executing on this thread, or nullptr when in the
  /// scheduler.
  static Fiber* current();

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run();

  std::function<void()> entry_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
  bool cancel_requested_ = false;
  std::exception_ptr error_;
  // ASan fiber-switch bookkeeping (see fiber.cpp; unused without ASan).
  void* asan_fake_stack_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
  // TSan fiber contexts (see fiber.cpp; unused without TSan).
  void* tsan_fiber_ = nullptr;
  void* tsan_caller_ = nullptr;
};

}  // namespace ttsim::sim
