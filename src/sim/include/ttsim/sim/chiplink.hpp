#pragma once
/// \file chiplink.hpp
/// Cycle-accounted chip-to-chip Ethernet fabric for multi-card simulations.
///
/// Wormhole-class cards carry point-to-point 100 GbE links between
/// neighbouring cards (DeviceSpec::eth_links); a ChipLinkFabric models N
/// cards cabled into a line or ring of such links. Each *directed* physical
/// link is a serialised resource (ResourceTimeline): a message from card i
/// to card j is routed hop by hop (store-and-forward), each hop charging
///   serialisation = bytes / (link_gbs * parallel_links)
/// of link occupancy plus a fixed per-hop latency (MAC + wire + the two
/// Ethernet RISC endpoints). The fabric keeps its own simulated clock
/// contributions out of any card's engine: callers inject messages at an
/// absolute cluster time and get back the delivery time, then fast-forward
/// their card engines past it (see core/sharded.cpp for the epoch loop).
///
/// Fault injection reuses the FaultPlan NoC machinery: every hop consults
/// FaultPlan::noc_transaction (as a write on synthetic NoC id 2, core = the
/// source card's global id), so a plan's noc_drop_prob / noc_dup_prob /
/// noc_delay_prob apply to the fabric too. Drops retransmit (re-charging
/// the wire) up to ChipLinkConfig::max_retransmits before surfacing a
/// retryable ChipLinkError; duplicates charge the wire twice; delays push
/// the delivery time.
///
/// Tracing mirrors the serve layer's private-sink pattern: the fabric owns
/// its TraceSink (never a device's), with one track per directed link named
/// after the *global* card ids — "eth/card0->card1" — so interned track ids
/// stay stable no matter how many cards a run opens, and single-card golden
/// hashes never see fabric events.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ttsim/common/error.hpp"
#include "ttsim/common/units.hpp"
#include "ttsim/sim/dram.hpp"
#include "ttsim/sim/engine.hpp"
#include "ttsim/sim/fault.hpp"
#include "ttsim/sim/spec.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::sim {

enum class ChipLinkTopology {
  kLine,  ///< cards 0..N-1 cabled in a chain (the Wormhole paper's galaxy row)
  kRing,  ///< chain plus a wrap link N-1 -> 0; routes take the shorter arc
};

struct ChipLinkConfig {
  ChipLinkTopology topology = ChipLinkTopology::kLine;
  /// Effective bandwidth of one link, and how many parallel links cable each
  /// neighbouring pair (Wormhole exposes 16 ports; a pair bonded with L of
  /// them moves one message L times faster).
  double link_gbs = 12.0;
  int parallel_links = 1;
  /// Fixed per-hop, per-message latency.
  SimTime link_latency = 1 * kMicrosecond;
  /// Bounded recovery for injected drops before a ChipLinkError surfaces.
  int max_retransmits = 8;
  /// Optional deterministic fault plan; hops consult noc_transaction on it.
  std::shared_ptr<FaultPlan> fault_plan;
  /// Record kChipLinkTransfer events on the fabric's private sink.
  bool enable_trace = false;

  /// Link parameters of `spec`, keeping this config's topology/trace knobs.
  /// Cards without Ethernet ports (Grayskull) keep the defaults above — the
  /// fabric then models the PCIe-host bounce a real e150 pair would need,
  /// rated at the card's PCIe bandwidth.
  static ChipLinkConfig from_spec(const DeviceSpec& spec) {
    ChipLinkConfig c;
    if (spec.eth_links > 0) {
      c.link_gbs = spec.eth_link_gbs;
      c.link_latency = spec.eth_link_latency;
    } else {
      c.link_gbs = spec.pcie_gbs;
      c.link_latency = spec.pcie_latency;
    }
    return c;
  }
};

/// A message exhausted max_retransmits on one hop. Retryable: the drops come
/// from a probabilistic fault schedule, and a re-run of the exchange (or a
/// fresh card group) may well pass.
class ChipLinkError : public std::runtime_error, public SimError {
 public:
  using std::runtime_error::runtime_error;
  bool retryable() const noexcept override { return true; }
  const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Per-directed-link traffic counters (cumulative).
struct ChipLinkStats {
  std::uint64_t transfers = 0;    ///< messages that crossed this link
  std::uint64_t bytes = 0;        ///< payload bytes (retransmits recounted)
  std::uint64_t retransmits = 0;  ///< extra crossings forced by drops
  std::uint64_t duplicates = 0;   ///< extra crossings forced by duplication
  SimTime busy = 0;               ///< total serialisation occupancy
};

class ChipLinkFabric {
 public:
  /// Cable `cards` simulated cards together. `card_ids` optionally names
  /// each position with its global card id (trace tracks and fault hooks use
  /// the global id); defaults to 0..cards-1.
  explicit ChipLinkFabric(int cards, ChipLinkConfig config = {},
                          std::vector<int> card_ids = {});

  int cards() const { return cards_; }
  const ChipLinkConfig& config() const { return config_; }

  /// Hop count of the route src -> dst (0 when src == dst).
  int hops(int src, int dst) const;

  /// Inject a `bytes`-byte message from card `src` to card `dst` at absolute
  /// time `start`; returns the delivery time at `dst`. Store-and-forward:
  /// each hop serialises on that directed link's timeline, so concurrent
  /// messages over the same cable queue behind each other.
  SimTime transfer(int src, int dst, std::uint64_t bytes, SimTime start);

  /// Counters of the directed physical link `src -> dst` (must be adjacent).
  const ChipLinkStats& link_stats(int src, int dst) const;
  /// Sum over every directed link.
  ChipLinkStats totals() const;

  /// The fabric's private sink (nullptr unless config.enable_trace).
  TraceSink* trace() { return trace_ ? trace_.get() : nullptr; }

 private:
  struct Link {
    int src = 0;  ///< fabric position, not global id
    int dst = 0;
    ResourceTimeline timeline;
    ChipLinkStats stats;
    int track = -1;
  };

  int link_index(int src, int dst) const;  ///< -1 when not adjacent
  SimTime cross(Link& link, std::uint64_t bytes, SimTime start);

  int cards_;
  ChipLinkConfig config_;
  std::vector<int> card_ids_;
  std::vector<Link> links_;
  std::uint64_t sequence_ = 0;  ///< per-fabric message counter (fault hook key)
  /// Trace plumbing mirrors serve: a private engine that never runs, only
  /// anchoring the private sink's clock.
  Engine engine_;
  std::unique_ptr<TraceSink> trace_;
};

}  // namespace ttsim::sim
