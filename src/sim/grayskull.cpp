#include "ttsim/sim/tensix_core.hpp"

namespace ttsim::sim {

Grayskull::Grayskull(GrayskullSpec spec)
    : spec_(spec),
      dram_(engine_, spec_),
      noc0_(spec_, 0),
      noc1_(spec_, 1) {
  workers_.reserve(static_cast<std::size_t>(spec_.worker_cores));
  for (int i = 0; i < spec_.worker_cores; ++i) {
    workers_.push_back(
        std::make_unique<TensixCore>(engine_, spec_, i, worker_coord(i)));
  }
}

void Grayskull::install_fault_plan(std::shared_ptr<FaultPlan> plan) {
  fault_plan_ = std::move(plan);
  dram_.set_fault_plan(fault_plan_.get());
  // Rebind the plan's trace unconditionally: a shared plan can outlive a
  // previous (traced) device generation, and its old sink would dangle.
  if (fault_plan_ != nullptr) fault_plan_->set_trace(trace_.get());
}

TraceSink& Grayskull::enable_trace() {
  if (trace_ == nullptr) {
    trace_ = std::make_unique<TraceSink>(engine_);
    dram_.set_trace(trace_.get());
    for (auto& w : workers_) w->set_trace(trace_.get());
    if (fault_plan_ != nullptr) fault_plan_->set_trace(trace_.get());
  }
  return *trace_;
}

Noc& Grayskull::noc(int id) {
  TTSIM_CHECK(id == 0 || id == 1);
  return id == 0 ? noc0_ : noc1_;
}

TensixCore& Grayskull::worker(int idx) {
  TTSIM_CHECK_MSG(idx >= 0 && idx < worker_count(),
                  "worker index " << idx << " out of range (e150 has "
                                  << worker_count() << " workers)");
  return *workers_[static_cast<std::size_t>(idx)];
}

NocCoord Grayskull::worker_coord(int idx) const {
  // Workers occupy columns 1..grid_cols (column 0 and grid_cols+1 carry the
  // DRAM nodes); the grid's top row holds the 12 storage-only cores.
  const int x = 1 + idx % spec_.grid_cols;
  const int y = idx / spec_.grid_cols;
  return NocCoord{x, y};
}

NocCoord Grayskull::bank_coord(int bank) const {
  TTSIM_CHECK(bank >= 0 && bank < spec_.dram_banks);
  const int column = (bank % 2 == 0) ? 0 : spec_.grid_cols + 1;
  const int row = (bank / 2) * (spec_.grid_rows / (spec_.dram_banks / 2)) + 1;
  return NocCoord{column, row};
}

int Grayskull::hops_to_dram(const TensixCore& core, std::uint64_t addr, int noc_id) {
  const DramRegion& region = dram_.region_of(addr, 1);
  Noc& n = noc(noc_id);
  if (region.page_size == 0) {
    return n.hops(core.coord(), bank_coord(region.bank));
  }
  // Interleaved region: pages round-robin all banks; use the mean distance.
  int total = 0;
  for (int b = 0; b < spec_.dram_banks; ++b) {
    total += n.hops(core.coord(), bank_coord(b));
  }
  return total / spec_.dram_banks;
}

}  // namespace ttsim::sim
