#include "ttsim/sim/fiber.hpp"

#include <cstdint>

namespace ttsim::sim {
namespace {
thread_local Fiber* t_current_fiber = nullptr;
}

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes) {
  TTSIM_CHECK(entry_ != nullptr);
  TTSIM_CHECK(stack_bytes_ >= 16 * 1024);
}

Fiber::~Fiber() {
  // A fiber destroyed mid-flight would leak whatever is on its stack; the
  // engine only destroys fibers after completion or during teardown where the
  // stack objects are engine-owned. Nothing to do here beyond freeing memory.
}

Fiber* Fiber::current() { return t_current_fiber; }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run();
  // Returning from a makecontext entry with uc_link set resumes return_ctx_.
}

void Fiber::run() {
  try {
    entry_();
  } catch (...) {
    error_ = std::current_exception();
  }
  finished_ = true;
}

void Fiber::resume() {
  TTSIM_CHECK_MSG(!running_, "fiber resumed re-entrantly");
  TTSIM_CHECK_MSG(!finished_, "resume() on a finished fiber");
  if (!started_) {
    TTSIM_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &return_ctx_;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xFFFFFFFFu));
    started_ = true;
  }
  Fiber* prev = t_current_fiber;
  t_current_fiber = this;
  running_ = true;
  TTSIM_CHECK(swapcontext(&return_ctx_, &ctx_) == 0);
  running_ = false;
  t_current_fiber = prev;
}

void Fiber::yield() {
  TTSIM_CHECK_MSG(t_current_fiber == this, "yield() called from outside the fiber");
  TTSIM_CHECK(swapcontext(&ctx_, &return_ctx_) == 0);
}

void Fiber::rethrow_if_failed() {
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace ttsim::sim
