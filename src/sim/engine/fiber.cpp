#include "ttsim/sim/fiber.hpp"

#include <cstdint>

// ASan tracks one stack per thread; without annotations, a context switch
// onto a fiber stack (or an exception thrown on one — __asan_handle_no_return
// unpoisons what it believes is "the" stack) produces false positives and
// crashes. The start/finish pair below tells ASan about every switch. The
// declarations are spelled out instead of including
// <sanitizer/common_interface_defs.h> so non-sanitized builds never look for
// the header.
#if defined(__SANITIZE_ADDRESS__)
#define TTSIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TTSIM_ASAN_FIBERS 1
#endif
#endif

#ifdef TTSIM_ASAN_FIBERS
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old, size_t* size_old);
}
#endif

// TSan's model is different: one shadow context per fiber, created/destroyed
// explicitly, with __tsan_switch_to_fiber called immediately before each
// swapcontext. Without it TSan attributes the fiber's accesses to the
// scheduler's stack and dies on its own bookkeeping. The simulator is
// single-threaded; the annotations only keep TSan's per-"thread" state
// coherent so the rest of the build (host code, future threaded frontends)
// can be checked.
#if defined(__SANITIZE_THREAD__)
#define TTSIM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TTSIM_TSAN_FIBERS 1
#endif
#endif

#ifdef TTSIM_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace ttsim::sim {
namespace {
thread_local Fiber* t_current_fiber = nullptr;
}

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes) {
  TTSIM_CHECK(entry_ != nullptr);
  TTSIM_CHECK(stack_bytes_ >= 16 * 1024);
}

Fiber::~Fiber() {
  // A fiber destroyed mid-flight would leak whatever is on its stack; the
  // engine destroys fibers only after completion — at teardown it first
  // unwinds parked fibers via cancel(). Nothing to do beyond freeing memory.
#ifdef TTSIM_TSAN_FIBERS
  if (tsan_fiber_) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

Fiber* Fiber::current() { return t_current_fiber; }

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run();
  // Not reached: run() exits via an explicit swapcontext (uc_link stays set
  // as a belt-and-braces fallback).
}

void Fiber::run() {
#ifdef TTSIM_ASAN_FIBERS
  // First activation: complete the resumer's start_switch and remember its
  // stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &asan_caller_bottom_,
                                  &asan_caller_size_);
#endif
  try {
    entry_();
  } catch (const FiberCancelled&) {
    // Teardown unwind requested by cancel(); not an error.
  } catch (...) {
    error_ = std::current_exception();
  }
  finished_ = true;
#ifdef TTSIM_ASAN_FIBERS
  // Final exit: null fake_stack_save destroys the fiber's fake stack.
  __sanitizer_start_switch_fiber(nullptr, asan_caller_bottom_,
                                 asan_caller_size_);
#endif
#ifdef TTSIM_TSAN_FIBERS
  // Final exit switches back to the resumer's context; the fiber's own
  // context is destroyed with the Fiber object.
  __tsan_switch_to_fiber(tsan_caller_, 0);
#endif
  // Leave via an explicit switch rather than returning through the
  // trampoline and uc_link: the sanitizer annotations above must sit at the
  // real switch point. TSan in particular maintains a per-context shadow
  // call stack via function entry/exit hooks — unwinding run() and the
  // trampoline after the switch annotation would pop those frames on the
  // *resumer's* shadow stack and corrupt it.
  swapcontext(&ctx_, &return_ctx_);
}

void Fiber::resume() {
  TTSIM_CHECK_MSG(!running_, "fiber resumed re-entrantly");
  TTSIM_CHECK_MSG(!finished_, "resume() on a finished fiber");
  if (!started_) {
    TTSIM_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_bytes_;
    ctx_.uc_link = &return_ctx_;
    const auto ptr = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xFFFFFFFFu));
    started_ = true;
  }
  Fiber* prev = t_current_fiber;
  t_current_fiber = this;
  running_ = true;
#ifdef TTSIM_ASAN_FIBERS
  void* resumer_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&resumer_fake_stack, stack_.get(),
                                 stack_bytes_);
#endif
#ifdef TTSIM_TSAN_FIBERS
  // The resumer's context is re-captured every time: a fiber may be resumed
  // from different points (scheduler, nested resumes) across its life.
  if (!tsan_fiber_) tsan_fiber_ = __tsan_create_fiber(0);
  tsan_caller_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  TTSIM_CHECK(swapcontext(&return_ctx_, &ctx_) == 0);
#ifdef TTSIM_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(resumer_fake_stack, nullptr, nullptr);
#endif
  running_ = false;
  t_current_fiber = prev;
}

void Fiber::yield() {
  TTSIM_CHECK_MSG(t_current_fiber == this, "yield() called from outside the fiber");
#ifdef TTSIM_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&asan_fake_stack_, asan_caller_bottom_,
                                 asan_caller_size_);
#endif
#ifdef TTSIM_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_caller_, 0);
#endif
  TTSIM_CHECK(swapcontext(&ctx_, &return_ctx_) == 0);
#ifdef TTSIM_ASAN_FIBERS
  // Re-entered: refresh the resumer's bounds (the next yield switches back
  // to wherever resume() is running now).
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &asan_caller_bottom_,
                                  &asan_caller_size_);
#endif
  if (cancel_requested_) throw FiberCancelled{};
}

void Fiber::cancel() {
  TTSIM_CHECK_MSG(!running_, "cancel() called from inside the fiber");
  if (!started_ || finished_) return;
  cancel_requested_ = true;
  resume();
  TTSIM_CHECK_MSG(finished_, "cancelled fiber blocked again while unwinding");
}

void Fiber::rethrow_if_failed() {
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace ttsim::sim
