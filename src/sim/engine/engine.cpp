#include "ttsim/sim/engine.hpp"

#include <sstream>

namespace ttsim::sim {

Process::Process(Engine& engine, std::string name, std::function<void()> fn,
                 std::size_t stack_bytes)
    : engine_(engine), name_(std::move(name)), fiber_(std::move(fn), stack_bytes) {}

Engine::~Engine() {
  // Unwind any parked fibers so resources held on their stacks destruct — a
  // wedged device leaves kernels blocked forever, and destroying their
  // fibers mid-flight would leak everything their frames own.
  for (auto& p : processes_) {
    if (p->finished()) continue;
    current_ = p.get();
    p->fiber_.cancel();
    current_ = nullptr;
    p->state_ = Process::State::kFinished;
  }
}

Process* Engine::spawn(std::string name, std::function<void()> fn,
                       std::size_t stack_bytes) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(fn), stack_bytes));
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  push_wakeup(raw, now_);
  return raw;
}

void Engine::schedule_at(SimTime t, std::function<void()> cb) {
  TTSIM_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  queue_.push(Event{t, next_seq_++, nullptr, std::move(cb)});
}

void Engine::push_wakeup(Process* p, SimTime t) {
  queue_.push(Event{t, next_seq_++, p, nullptr});
}

Process& Engine::current() {
  TTSIM_CHECK_MSG(current_ != nullptr, "not running inside a simulated process");
  return *current_;
}

void Engine::delay(SimTime dt) {
  TTSIM_CHECK(dt >= 0);
  Process& p = current();
  push_wakeup(&p, now_ + dt);
  block_current();
}

void Engine::block_current() {
  Process& p = current();
  p.state_ = Process::State::kBlocked;
  current_ = nullptr;
  p.fiber_.yield();
  // Woken: dispatch() restored current_ and state before resuming us.
}

void Engine::dispatch(Event& ev) {
  now_ = ev.time;
  ++events_processed_;
  if (ev.process != nullptr) {
    Process* p = ev.process;
    if (p->finished()) return;  // stale wakeup after completion
    p->state_ = Process::State::kRunning;
    current_ = p;
    p->fiber_.resume();
    current_ = nullptr;
    if (p->fiber_.finished()) {
      p->state_ = Process::State::kFinished;
      p->fiber_.rethrow_if_failed();
    } else if (p->state_ == Process::State::kRunning) {
      // The fiber yielded without blocking (e.g. via WaitQueue it was already
      // re-queued); a process that yields must have arranged its own wakeup.
      p->state_ = Process::State::kBlocked;
    }
  } else {
    ev.callback();
  }
}

void Engine::run() {
  TTSIM_CHECK_MSG(current_ == nullptr, "Engine::run() called from inside a process");
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  if (unfinished_process_count() > 0) throw_deadlock();
}

SimTime Engine::next_event_time() const {
  TTSIM_CHECK_MSG(!queue_.empty(), "next_event_time() with no pending events");
  return queue_.top().time;
}

bool Engine::step() {
  TTSIM_CHECK_MSG(current_ == nullptr, "Engine::step() called from inside a process");
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  dispatch(ev);
  return true;
}

void Engine::throw_deadlock(const std::string& diagnosis) const {
  std::ostringstream os;
  os << "simulation deadlock: " << unfinished_process_count()
     << " process(es) blocked forever:";
  for (const auto& name : blocked_process_names()) os << ' ' << name;
  if (!diagnosis.empty()) os << '\n' << diagnosis;
  throw DeadlockError(os.str());
}

bool Engine::run_until(SimTime deadline) {
  TTSIM_CHECK_MSG(current_ == nullptr, "Engine::run_until() called from inside a process");
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  if (now_ < deadline) now_ = deadline;
  return unfinished_process_count() == 0;
}

bool Engine::run_until_done(SimTime deadline) {
  TTSIM_CHECK_MSG(current_ == nullptr,
                  "Engine::run_until_done() called from inside a process");
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  return unfinished_process_count() == 0;
}

std::size_t Engine::unfinished_process_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (!p->finished()) ++n;
  }
  return n;
}

std::vector<const Process*> Engine::unfinished_processes() const {
  std::vector<const Process*> out;
  for (const auto& p : processes_) {
    if (!p->finished()) out.push_back(p.get());
  }
  return out;
}

std::vector<std::string> Engine::blocked_process_names() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (!p->finished()) names.push_back(p->name());
  }
  return names;
}

}  // namespace ttsim::sim
