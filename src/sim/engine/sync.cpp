#include "ttsim/sim/sync.hpp"

#include <algorithm>

namespace ttsim::sim {

void WaitQueue::wait() {
  Process& p = engine_.current();
  p.wait_site_ = site_;
  waiters_.push_back(&p);
  engine_.block_current();
  p.wait_site_ = WaitSite{};
}

void WaitQueue::notify_one() {
  if (waiters_.empty()) return;
  Process* p = waiters_.front();
  waiters_.pop_front();
  engine_.push_wakeup(p, engine_.now());
}

void WaitQueue::notify_all() {
  while (!waiters_.empty()) notify_one();
}

}  // namespace ttsim::sim
