#include "ttsim/sim/fault.hpp"

#include <algorithm>
#include <sstream>

#include "ttsim/common/check.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDramReadBitFlip: return "dram-read-bitflip";
    case FaultKind::kDramBankStuck: return "dram-bank-stuck";
    case FaultKind::kNocDrop: return "noc-drop";
    case FaultKind::kNocDuplicate: return "noc-duplicate";
    case FaultKind::kNocDelay: return "noc-delay";
    case FaultKind::kMoverStall: return "mover-stall";
    case FaultKind::kCoreFailure: return "core-failure";
    case FaultKind::kPcieCorrupt: return "pcie-corrupt";
    case FaultKind::kCoreHeal: return "core-heal";
  }
  return "unknown";
}

std::string to_string(const FaultEvent& event) {
  std::ostringstream os;
  os << "fault #" << event.id << ' ' << to_string(event.kind) << " at t="
     << event.time << "ns";
  if (event.core >= 0) os << " core=" << event.core;
  os << " addr=" << event.addr << " size=" << event.size;
  return os.str();
}

FaultPlan::FaultPlan(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  for (const auto& kill : config_.core_kills) TTSIM_CHECK(kill.core >= 0);
  for (int bank : config_.stuck_banks) TTSIM_CHECK(bank >= 0);
}

bool FaultPlan::roll(double prob) {
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return rng_.next_double() < prob;
}

std::uint64_t FaultPlan::record(FaultKind kind, SimTime now, int core,
                                std::uint64_t addr, std::uint32_t size) {
  FaultEvent event;
  event.id = trace_.size();
  event.kind = kind;
  event.time = now;
  event.core = core;
  event.addr = addr;
  event.size = size;
  trace_.push_back(event);
  if (sink_ != nullptr) {
    sink_->record(TraceEventKind::kFault, now, 0,
                  {core, static_cast<std::int32_t>(kind), 0, addr, size},
                  sink_track_);
  }
  return event.id;
}

void FaultPlan::set_trace(TraceSink* sink) {
  sink_ = sink;
  sink_track_ = sink != nullptr ? sink->track("faults") : -1;
}

bool FaultPlan::flip_dram_read(SimTime now, std::uint64_t addr, std::uint32_t size,
                               std::uint32_t* bit_index) {
  if (!roll(config_.dram_read_bitflip_prob)) return false;
  TTSIM_CHECK(size > 0);
  const std::uint32_t bit =
      static_cast<std::uint32_t>(rng_.next_below(static_cast<std::uint64_t>(size) * 8));
  if (bit_index != nullptr) *bit_index = bit;
  record(FaultKind::kDramReadBitFlip, now, -1, addr, size);
  return true;
}

bool FaultPlan::bank_stuck(SimTime now, int bank, std::uint64_t addr,
                           std::uint32_t size, bool is_write) {
  if (std::find(config_.stuck_banks.begin(), config_.stuck_banks.end(), bank) ==
      config_.stuck_banks.end()) {
    return false;
  }
  record(FaultKind::kDramBankStuck, now, -1,
         static_cast<std::uint64_t>(bank), is_write ? size : 0);
  (void)addr;
  return true;
}

NocFaultDecision FaultPlan::noc_transaction(SimTime now, int core, int noc_id,
                                            std::uint64_t addr, std::uint32_t size,
                                            bool is_write) {
  (void)noc_id;
  NocFaultDecision d;
  if (is_write && roll(config_.noc_drop_prob)) {
    d.drop = true;
    record(FaultKind::kNocDrop, now, core, addr, size);
    return d;  // a dropped transaction cannot also duplicate or delay
  }
  if (is_write && roll(config_.noc_dup_prob)) {
    d.duplicate = true;
    record(FaultKind::kNocDuplicate, now, core, addr, size);
  }
  if (roll(config_.noc_delay_prob)) {
    d.extra_delay = config_.noc_delay;
    record(FaultKind::kNocDelay, now, core, addr, size);
  }
  return d;
}

SimTime FaultPlan::mover_stall(SimTime now, int core) {
  if (!roll(config_.mover_stall_prob)) return 0;
  record(FaultKind::kMoverStall, now, core, 0, 0);
  return config_.mover_stall;
}

bool FaultPlan::core_dead(int core, SimTime now) const {
  if (std::find(failed_cores_.begin(), failed_cores_.end(), core) !=
      failed_cores_.end()) {
    return true;
  }
  for (const auto& kill : config_.core_kills) {
    if (kill.core == core && now >= kill.at) return true;
  }
  return false;
}

void FaultPlan::record_core_failure(SimTime now, int core) {
  if (std::find(failed_cores_.begin(), failed_cores_.end(), core) !=
      failed_cores_.end()) {
    return;  // already observed in this or an earlier device generation
  }
  failed_cores_.push_back(core);
  record(FaultKind::kCoreFailure, now, core, 0, 0);
}

void FaultPlan::commit_elapsed_kills(SimTime now) {
  for (const auto& kill : config_.core_kills) {
    if (now >= kill.at) record_core_failure(now, kill.core);
  }
}

void FaultPlan::heal_core(SimTime now, int core) {
  if (!core_dead(core, now)) return;
  failed_cores_.erase(std::remove(failed_cores_.begin(), failed_cores_.end(), core),
                      failed_cores_.end());
  auto& kills = config_.core_kills;
  kills.erase(std::remove_if(kills.begin(), kills.end(),
                             [&](const CoreKill& k) {
                               return k.core == core && k.at <= now;
                             }),
              kills.end());
  record(FaultKind::kCoreHeal, now, core, 0, 0);
}

int FaultPlan::heal_dead_cores(SimTime now) {
  const std::vector<int> dead = dead_cores(now);
  for (int core : dead) heal_core(now, core);
  return static_cast<int>(dead.size());
}

std::vector<int> FaultPlan::dead_cores(SimTime now) const {
  std::vector<int> dead = failed_cores_;
  for (const auto& kill : config_.core_kills) {
    if (now >= kill.at &&
        std::find(dead.begin(), dead.end(), kill.core) == dead.end()) {
      dead.push_back(kill.core);
    }
  }
  std::sort(dead.begin(), dead.end());
  return dead;
}

bool FaultPlan::pcie_corrupt(SimTime now, std::uint64_t size,
                             std::uint64_t* byte_offset) {
  if (!roll(config_.pcie_corrupt_prob)) return false;
  TTSIM_CHECK(size > 0);
  const std::uint64_t offset = rng_.next_below(size);
  if (byte_offset != nullptr) *byte_offset = offset;
  record(FaultKind::kPcieCorrupt, now, -1, offset,
         static_cast<std::uint32_t>(std::min<std::uint64_t>(size, 0xFFFFFFFFu)));
  return true;
}

std::string FaultPlan::trace_string() const {
  std::ostringstream os;
  for (const auto& event : trace_) os << to_string(event) << '\n';
  return os.str();
}

}  // namespace ttsim::sim
