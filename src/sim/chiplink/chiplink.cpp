#include "ttsim/sim/chiplink.hpp"

#include <algorithm>
#include <sstream>

#include "ttsim/common/check.hpp"

namespace ttsim::sim {

ChipLinkFabric::ChipLinkFabric(int cards, ChipLinkConfig config,
                               std::vector<int> card_ids)
    : cards_(cards), config_(std::move(config)), card_ids_(std::move(card_ids)) {
  TTSIM_CHECK_MSG(cards_ >= 1, "a fabric needs at least one card");
  TTSIM_CHECK_MSG(config_.link_gbs > 0.0, "link bandwidth must be positive");
  TTSIM_CHECK_MSG(config_.parallel_links >= 1, "parallel_links must be >= 1");
  if (card_ids_.empty()) {
    for (int i = 0; i < cards_; ++i) card_ids_.push_back(i);
  }
  TTSIM_CHECK_MSG(static_cast<int>(card_ids_.size()) == cards_,
                  "card_ids must name every fabric position");
  if (config_.enable_trace) trace_ = std::make_unique<TraceSink>(engine_);

  // Directed links in a fixed order (forward chain, backward chain, then the
  // ring wrap pair) so track interning — and therefore the golden trace
  // hash — is a function of the card ids alone.
  auto add_link = [&](int src, int dst) {
    Link l;
    l.src = src;
    l.dst = dst;
    if (trace_ != nullptr) {
      std::ostringstream name;
      name << "eth/card" << card_ids_[static_cast<std::size_t>(src)] << "->card"
           << card_ids_[static_cast<std::size_t>(dst)];
      l.track = trace_->track(name.str());
    }
    links_.push_back(std::move(l));
  };
  for (int i = 0; i + 1 < cards_; ++i) add_link(i, i + 1);
  for (int i = 0; i + 1 < cards_; ++i) add_link(i + 1, i);
  if (config_.topology == ChipLinkTopology::kRing && cards_ > 2) {
    add_link(cards_ - 1, 0);
    add_link(0, cards_ - 1);
  }
}

int ChipLinkFabric::link_index(int src, int dst) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].src == src && links_[i].dst == dst) return static_cast<int>(i);
  }
  return -1;
}

int ChipLinkFabric::hops(int src, int dst) const {
  TTSIM_CHECK(src >= 0 && src < cards_ && dst >= 0 && dst < cards_);
  const int line = std::abs(dst - src);
  if (config_.topology == ChipLinkTopology::kLine || cards_ <= 2) return line;
  return std::min(line, cards_ - line);
}

SimTime ChipLinkFabric::cross(Link& link, std::uint64_t bytes, SimTime start) {
  const SimTime wire =
      transfer_time(bytes, config_.link_gbs * config_.parallel_links);
  const int src_id = card_ids_[static_cast<std::size_t>(link.src)];
  const int dst_id = card_ids_[static_cast<std::size_t>(link.dst)];

  int attempts = 0;
  SimTime at = start;
  for (;;) {
    const std::uint64_t seq = sequence_++;
    const SimTime begin = link.timeline.acquire(at, wire);
    SimTime done = begin + wire + config_.link_latency;
    link.stats.bytes += bytes;
    link.stats.busy += wire;
    if (attempts == 0) {
      link.stats.transfers += 1;
    } else {
      link.stats.retransmits += 1;
    }
    if (trace_ != nullptr) {
      trace_->record(TraceEventKind::kChipLinkTransfer, begin, done - begin,
                     TraceSink::Rec{src_id, src_id, dst_id, /*addr=*/seq, bytes},
                     link.track);
    }

    // Reuse the NoC fault machinery: the fabric is "NoC 2", the source card
    // id stands in for the core, and the message sequence number keys the
    // deterministic schedule. Ethernet frames are writes from the link's
    // point of view (drops and duplicates both apply).
    if (config_.fault_plan != nullptr) {
      const auto f = config_.fault_plan->noc_transaction(
          begin, src_id, /*noc_id=*/2, /*addr=*/seq,
          static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, ~0u)),
          /*is_write=*/true);
      done += f.extra_delay;
      if (f.duplicate) {
        // The duplicate frame occupies the wire again behind the original.
        const SimTime dup = link.timeline.acquire(done, wire);
        link.stats.duplicates += 1;
        link.stats.busy += wire;
        done = std::max(done, dup + wire);
      }
      if (f.drop) {
        if (++attempts > config_.max_retransmits) {
          std::ostringstream os;
          os << "chip link card" << src_id << "->card" << dst_id
             << " dropped a " << bytes << "-byte message "
             << config_.max_retransmits
             << " times; link fault schedule exhausted the retransmit budget";
          throw ChipLinkError(os.str());
        }
        at = done;  // sender times out and re-injects after the failed frame
        continue;
      }
    }
    return done;
  }
}

SimTime ChipLinkFabric::transfer(int src, int dst, std::uint64_t bytes,
                                 SimTime start) {
  TTSIM_CHECK(src >= 0 && src < cards_ && dst >= 0 && dst < cards_);
  TTSIM_CHECK_MSG(src != dst, "a card cannot link-transfer to itself");
  TTSIM_CHECK_MSG(bytes > 0, "empty link transfer");

  // Route hop by hop. Line: walk towards dst. Ring: walk the shorter arc
  // (ties break towards increasing indices).
  const int n = cards_;
  int step;
  if (config_.topology == ChipLinkTopology::kLine || n <= 2) {
    step = dst > src ? 1 : -1;
  } else {
    const int fwd = (dst - src + n) % n;
    step = fwd <= n - fwd ? 1 : -1;
  }
  SimTime at = start;
  int here = src;
  while (here != dst) {
    const int next = (here + step + n) % n;
    const int li = link_index(here, next);
    TTSIM_CHECK_MSG(li >= 0, "route crossed a missing link");
    at = cross(links_[static_cast<std::size_t>(li)], bytes, at);
    here = next;
  }
  return at;
}

const ChipLinkStats& ChipLinkFabric::link_stats(int src, int dst) const {
  const int li = link_index(src, dst);
  TTSIM_CHECK_MSG(li >= 0, "link_stats of a non-adjacent card pair");
  return links_[static_cast<std::size_t>(li)].stats;
}

ChipLinkStats ChipLinkFabric::totals() const {
  ChipLinkStats t;
  for (const auto& l : links_) {
    t.transfers += l.stats.transfers;
    t.bytes += l.stats.bytes;
    t.retransmits += l.stats.retransmits;
    t.duplicates += l.stats.duplicates;
    t.busy += l.stats.busy;
  }
  return t;
}

}  // namespace ttsim::sim
