/// \file trace.cpp
/// TraceSink core: track interning, the canonical text rendering the golden
/// tests hash, and the FNV-1a digest.

#include "ttsim/sim/trace.hpp"

#include <sstream>

#include "ttsim/common/check.hpp"

namespace ttsim::sim {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kKernelStart: return "kernel_start";
    case TraceEventKind::kKernelEnd: return "kernel_end";
    case TraceEventKind::kMoverReadIssue: return "mover_read_issue";
    case TraceEventKind::kMoverReadComplete: return "mover_read_complete";
    case TraceEventKind::kMoverWriteIssue: return "mover_write_issue";
    case TraceEventKind::kMoverWriteComplete: return "mover_write_complete";
    case TraceEventKind::kMoverMemcpy: return "mover_memcpy";
    case TraceEventKind::kCbPush: return "cb_push";
    case TraceEventKind::kCbPop: return "cb_pop";
    case TraceEventKind::kCbFullWait: return "cb_full_wait";
    case TraceEventKind::kCbEmptyWait: return "cb_empty_wait";
    case TraceEventKind::kSemPost: return "sem_post";
    case TraceEventKind::kSemWait: return "sem_wait";
    case TraceEventKind::kReadBarrierWait: return "read_barrier_wait";
    case TraceEventKind::kWriteBarrierWait: return "write_barrier_wait";
    case TraceEventKind::kGlobalBarrierWait: return "global_barrier_wait";
    case TraceEventKind::kFpuOp: return "fpu_op";
    case TraceEventKind::kDramEnqueue: return "dram_enqueue";
    case TraceEventKind::kDramService: return "dram_service";
    case TraceEventKind::kDramRowMiss: return "dram_row_miss";
    case TraceEventKind::kDramAggregate: return "dram_aggregate";
    case TraceEventKind::kNocTransfer: return "noc_transfer";
    case TraceEventKind::kFault: return "fault";
    case TraceEventKind::kPcieTransfer: return "pcie_transfer";
    case TraceEventKind::kDramBankPipe: return "dram_bank_pipe";
    case TraceEventKind::kServeAdmit: return "serve_admit";
    case TraceEventKind::kServeReject: return "serve_reject";
    case TraceEventKind::kServeQueueWait: return "serve_queue_wait";
    case TraceEventKind::kServeH2D: return "serve_h2d";
    case TraceEventKind::kServeKernel: return "serve_kernel";
    case TraceEventKind::kServeD2H: return "serve_d2h";
    case TraceEventKind::kChipLinkTransfer: return "chip_link_transfer";
  }
  return "unknown";
}

int TraceSink::track(std::string_view name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const int id = static_cast<int>(track_names_.size());
  track_names_.emplace_back(name);
  track_ids_.emplace(track_names_.back(), id);
  return id;
}

int TraceSink::current_track() {
  if (!engine_.in_process()) return track("host");
  return track(engine_.current().name());
}

std::string TraceSink::canonical() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << e.ts << ' ' << e.dur << ' ' << to_string(e.kind) << ' '
       << track_name(e.track) << ' ' << e.core << ' ' << e.a << ' ' << e.b
       << ' ' << e.addr << ' ' << e.bytes << '\n';
  }
  return os.str();
}

std::uint64_t TraceSink::hash() const {
  // FNV-1a 64: stable, dependency-free, good enough to pin a text stream.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : canonical()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ttsim::sim
