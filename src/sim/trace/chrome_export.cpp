/// \file chrome_export.cpp
/// Chrome trace_event JSON exporter. Emits the subset of the format that
/// Perfetto and chrome://tracing load: "M" metadata naming one thread per
/// track, "X" complete events for intervals, "i" instants, and "C" counter
/// series for circular-buffer occupancy. Timestamps are microseconds
/// (the format's unit); the simulator's picosecond resolution survives as
/// fractional values.

#include <fstream>
#include <ostream>

#include "ttsim/common/check.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::sim {

namespace {

double to_us(SimTime t) { return static_cast<double>(t) * 1e-6; }

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Kind-specific arguments so the Perfetto detail pane shows the payload.
void write_args(std::ostream& os, const TraceEvent& e) {
  os << "{";
  const char* sep = "";
  if (e.core >= 0) {
    os << "\"core\":" << e.core;
    sep = ",";
  }
  if (e.a >= 0) {
    os << sep << "\"id\":" << e.a;
    sep = ",";
  }
  if (e.b != 0) {
    os << sep << "\"n\":" << e.b;
    sep = ",";
  }
  if (e.addr != 0) {
    os << sep << "\"addr\":" << e.addr;
    sep = ",";
  }
  if (e.bytes != 0) {
    os << sep << "\"bytes\":" << e.bytes;
  }
  os << "}";
}

}  // namespace

void TraceSink::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"ttsim\"}}";
  for (std::size_t t = 0; t < track_names_.size(); ++t) {
    os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape(os, track_names_[t]);
    os << "\"}},\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << t
       << "}}";
  }
  for (const TraceEvent& e : events_) {
    os << ",\n{\"ph\":\"" << (e.dur > 0 ? 'X' : 'i') << "\",\"pid\":0,\"tid\":"
       << e.track << ",\"ts\":" << to_us(e.ts);
    if (e.dur > 0) os << ",\"dur\":" << to_us(e.dur);
    os << ",\"name\":\"" << to_string(e.kind) << "\"";
    if (e.dur == 0) os << ",\"s\":\"t\"";
    os << ",\"args\":";
    write_args(os, e);
    os << "}";
    // CB push/pop carry the post-op occupancy: emit a parallel counter
    // series so Perfetto renders each CB's fill level over time.
    if (e.kind == TraceEventKind::kCbPush || e.kind == TraceEventKind::kCbPop) {
      os << ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":" << e.track
         << ",\"ts\":" << to_us(e.ts + e.dur) << ",\"name\":\"cb" << e.a
         << " core" << e.core
         << " occupancy\",\"args\":{\"pages\":" << e.b << "}}";
    }
  }
  os << "\n]}\n";
}

void TraceSink::write_chrome_trace_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) TTSIM_THROW_API("cannot open trace output file: " << path);
  write_chrome_trace(f);
  if (!f.good()) TTSIM_THROW_API("error writing trace output file: " << path);
}

}  // namespace ttsim::sim
