/// \file metrics.cpp
/// Trace aggregation into a MetricsReport and its table rendering.

#include "ttsim/sim/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "ttsim/common/table.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::sim {

double MetricsReport::max_bank_utilization() const {
  double best = 0.0;
  for (std::size_t b = 0; b < banks.size(); ++b) {
    best = std::max(best, bank_utilization(b));
  }
  return best;
}

MetricsReport build_metrics(const TraceSink& sink, int num_banks) {
  MetricsReport rep;
  rep.banks.resize(static_cast<std::size_t>(std::max(0, num_banks)));

  // Kernel tracks are discovered on the fly: any track that records a
  // kernel_start. Keyed by track id; emitted in track order for determinism.
  std::map<int, KernelMetrics> kernels;
  bool have_kernel_window = false;
  SimTime first_start = 0, last_end = 0, first_ts = 0, last_ts = 0;
  bool have_any = false;

  auto bank = [&rep](std::int32_t id) -> BankMetrics* {
    if (id < 0 || static_cast<std::size_t>(id) >= rep.banks.size()) return nullptr;
    return &rep.banks[static_cast<std::size_t>(id)];
  };
  auto noc = [&rep](std::int32_t id) -> std::size_t {
    const auto n = static_cast<std::size_t>(std::max(0, id));
    if (n >= rep.noc_bytes.size()) {
      rep.noc_bytes.resize(n + 1, 0);
      rep.noc_requests.resize(n + 1, 0);
      rep.noc_busy.resize(n + 1, 0);
    }
    return n;
  };

  for (const TraceEvent& e : sink.events()) {
    if (!have_any) {
      first_ts = e.ts;
      have_any = true;
    }
    first_ts = std::min(first_ts, e.ts);
    last_ts = std::max(last_ts, e.ts + e.dur);

    KernelMetrics& k = kernels[e.track];  // harmless for non-kernel tracks;
                                          // pruned below if never started
    switch (e.kind) {
      case TraceEventKind::kKernelStart:
        k.name = sink.track_name(e.track);
        k.core = e.core;
        k.start = e.ts;
        if (!have_kernel_window || e.ts < first_start) first_start = e.ts;
        have_kernel_window = true;
        break;
      case TraceEventKind::kKernelEnd:
        k.end = e.ts;
        last_end = std::max(last_end, e.ts);
        break;
      case TraceEventKind::kMoverReadIssue:
        k.issue += e.dur;
        k.bytes_read += e.bytes;
        break;
      case TraceEventKind::kMoverWriteIssue:
        k.issue += e.dur;
        k.bytes_written += e.bytes;
        break;
      case TraceEventKind::kMoverMemcpy:
        k.memcpy_time += e.dur;
        k.memcpy_bytes += e.bytes;
        break;
      case TraceEventKind::kFpuOp:
        k.fpu += e.dur;
        break;
      case TraceEventKind::kCbFullWait:
        k.cb_full_wait += e.dur;
        break;
      case TraceEventKind::kCbEmptyWait:
        k.cb_empty_wait += e.dur;
        break;
      case TraceEventKind::kSemWait:
        k.sem_wait += e.dur;
        break;
      case TraceEventKind::kReadBarrierWait:
        k.read_barrier_wait += e.dur;
        break;
      case TraceEventKind::kWriteBarrierWait:
        k.write_barrier_wait += e.dur;
        break;
      case TraceEventKind::kGlobalBarrierWait:
        k.global_barrier_wait += e.dur;
        break;
      case TraceEventKind::kCbPush:
      case TraceEventKind::kCbPop:
        rep.cb_occupancy[{e.core, e.a}][e.b] += 1;
        break;
      case TraceEventKind::kDramEnqueue:
        if (BankMetrics* bm = bank(e.a)) bm->queue_wait += e.dur;
        break;
      case TraceEventKind::kDramService:
        if (BankMetrics* bm = bank(e.a)) {
          bm->requests += 1;
          bm->bytes += e.bytes;
          bm->busy += e.dur;
        }
        break;
      case TraceEventKind::kDramRowMiss:
        if (BankMetrics* bm = bank(e.a)) bm->row_misses += 1;
        break;
      case TraceEventKind::kDramBankPipe:
        if (BankMetrics* bm = bank(e.a)) {
          bm->pipe_busy += e.dur;
          bm->pipe_segments += 1;
        }
        break;
      case TraceEventKind::kDramAggregate:
        rep.aggregate_busy += e.dur;
        break;
      case TraceEventKind::kNocTransfer: {
        const std::size_t n = noc(e.a);
        rep.noc_bytes[n] += e.bytes;
        rep.noc_requests[n] += 1;
        rep.noc_busy[n] += e.dur;
        break;
      }
      case TraceEventKind::kFault:
        rep.fault_injections += 1;
        break;
      case TraceEventKind::kPcieTransfer:
        rep.pcie_transfers += 1;
        rep.pcie_bytes += e.bytes;
        break;
      default:
        break;
    }
  }

  if (have_kernel_window) {
    rep.window_begin = first_start;
    rep.window_end = std::max(last_end, first_start);
  } else if (have_any) {
    rep.window_begin = first_ts;
    rep.window_end = last_ts;
  }

  for (auto& [track, k] : kernels) {
    if (!k.name.empty()) rep.kernels.push_back(std::move(k));
  }
  return rep;
}

std::string MetricsReport::to_string() const {
  std::ostringstream os;
  const auto us = [](SimTime t) {
    return Table::fmt(static_cast<double>(t) * 1e-6, 2);
  };
  os << "window: " << us(span()) << " us  (begin " << us(window_begin)
     << " us, end " << us(window_end) << " us)\n\n";

  {
    Table t{"Bank", "Requests", "Row misses", "MiB", "Utilization",
            "Mean queue depth"};
    for (std::size_t b = 0; b < banks.size(); ++b) {
      const BankMetrics& bm = banks[b];
      t.add_row(static_cast<int>(b), bm.requests, bm.row_misses,
                Table::fmt(static_cast<double>(bm.bytes) / (1024.0 * 1024.0), 2),
                Table::fmt(bank_utilization(b), 3),
                Table::fmt(bank_mean_queue_depth(b), 2));
    }
    t.add_row("aggregate", "-", "-", "-",
              Table::fmt(aggregate_utilization(), 3), "-");
    os << "DRAM\n";
    t.print(os);
    bool any_pipe = false;
    for (const BankMetrics& bm : banks) any_pipe |= bm.pipe_segments > 0;
    if (any_pipe) {
      Table p{"Bank", "Pipelined segs", "Cmd-stage us"};
      for (std::size_t b = 0; b < banks.size(); ++b) {
        p.add_row(static_cast<int>(b), banks[b].pipe_segments,
                  us(banks[b].pipe_busy));
      }
      os << "Bank pipeline (cmd stage overlapping data transfer)\n";
      p.print(os);
    }
    os << '\n';
  }

  if (!kernels.empty()) {
    Table t{"Kernel",    "Core",     "Lifetime us", "Issue us",
            "Memcpy us", "FPU us",   "CB full us",  "CB empty us",
            "Sem us",    "Barrier us"};
    for (const KernelMetrics& k : kernels) {
      t.add_row(k.name, k.core, us(k.lifetime()), us(k.issue),
                us(k.memcpy_time), us(k.fpu), us(k.cb_full_wait),
                us(k.cb_empty_wait), us(k.sem_wait),
                us(k.read_barrier_wait + k.write_barrier_wait +
                   k.global_barrier_wait));
    }
    os << "Kernels\n";
    t.print(os);
    os << '\n';
  }

  {
    Table t{"NoC", "Transfers", "MiB", "Busy us"};
    for (std::size_t n = 0; n < noc_bytes.size(); ++n) {
      t.add_row(static_cast<int>(n), noc_requests[n],
                Table::fmt(static_cast<double>(noc_bytes[n]) / (1024.0 * 1024.0), 2),
                us(noc_busy[n]));
    }
    if (t.row_count() > 0) {
      os << "NoC\n";
      t.print(os);
      os << '\n';
    }
  }

  if (!cb_occupancy.empty()) {
    Table t{"Core", "CB", "Occupancy histogram (pages:samples)"};
    for (const auto& [key, hist] : cb_occupancy) {
      std::ostringstream h;
      const char* sep = "";
      for (const auto& [pages, count] : hist) {
        h << sep << pages << ':' << count;
        sep = " ";
      }
      t.add_row(key.first, key.second, h.str());
    }
    os << "Circular buffers\n";
    t.print(os);
    os << '\n';
  }

  if (fault_injections > 0 || pcie_transfers > 0) {
    os << "faults injected: " << fault_injections
       << "  pcie transfers: " << pcie_transfers << " ("
       << Table::fmt(static_cast<double>(pcie_bytes) / (1024.0 * 1024.0), 2)
       << " MiB)\n";
  }
  return os.str();
}

}  // namespace ttsim::sim
