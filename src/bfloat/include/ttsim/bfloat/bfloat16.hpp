#pragma once
/// \file bfloat16.hpp
/// Software bfloat16 — the numeric format of the Grayskull FPU. The e150
/// supports at most half precision (BF16/FP16); all device-side arithmetic in
/// this reproduction is routed through this type so that results carry real
/// BF16 rounding, exactly as the paper's device runs did.
///
/// Semantics: storage is the top 16 bits of an IEEE-754 binary32. Conversion
/// from float uses round-to-nearest-even (matching Grayskull packing
/// behaviour); arithmetic is performed in float and rounded back, which is
/// the standard software model for BF16 FMA-free element-wise units.

#include <cmath>
#include <compare>
#include <cstdint>
#include <cstring>
#include <limits>

namespace ttsim {

class bfloat16_t {
 public:
  constexpr bfloat16_t() = default;

  /// Implicit from float mirrors hardware packing (value conversion).
  bfloat16_t(float f) : bits_(round_from_float(f)) {}  // NOLINT(google-explicit-constructor)
  explicit bfloat16_t(double d) : bfloat16_t(static_cast<float>(d)) {}
  explicit bfloat16_t(int v) : bfloat16_t(static_cast<float>(v)) {}

  /// Reinterpret raw storage bits as a bfloat16.
  static constexpr bfloat16_t from_bits(std::uint16_t bits) {
    bfloat16_t b;
    b.bits_ = bits;
    return b;
  }

  constexpr std::uint16_t bits() const { return bits_; }

  /// Widening to float is exact (BF16 is a prefix of binary32).
  operator float() const {  // NOLINT(google-explicit-constructor)
    const std::uint32_t wide = static_cast<std::uint32_t>(bits_) << 16;
    float f;
    std::memcpy(&f, &wide, sizeof(f));
    return f;
  }

  bfloat16_t operator-() const { return from_bits(static_cast<std::uint16_t>(bits_ ^ 0x8000u)); }

  friend bfloat16_t operator+(bfloat16_t a, bfloat16_t b) {
    return bfloat16_t{static_cast<float>(a) + static_cast<float>(b)};
  }
  friend bfloat16_t operator-(bfloat16_t a, bfloat16_t b) {
    return bfloat16_t{static_cast<float>(a) - static_cast<float>(b)};
  }
  friend bfloat16_t operator*(bfloat16_t a, bfloat16_t b) {
    return bfloat16_t{static_cast<float>(a) * static_cast<float>(b)};
  }
  friend bfloat16_t operator/(bfloat16_t a, bfloat16_t b) {
    return bfloat16_t{static_cast<float>(a) / static_cast<float>(b)};
  }

  bfloat16_t& operator+=(bfloat16_t o) { return *this = *this + o; }
  bfloat16_t& operator-=(bfloat16_t o) { return *this = *this - o; }
  bfloat16_t& operator*=(bfloat16_t o) { return *this = *this * o; }
  bfloat16_t& operator/=(bfloat16_t o) { return *this = *this / o; }

  friend bool operator==(bfloat16_t a, bfloat16_t b) {
    return static_cast<float>(a) == static_cast<float>(b);  // -0 == +0, NaN != NaN
  }
  friend std::partial_ordering operator<=>(bfloat16_t a, bfloat16_t b) {
    return static_cast<float>(a) <=> static_cast<float>(b);
  }

  bool is_nan() const {
    return (bits_ & 0x7F80u) == 0x7F80u && (bits_ & 0x007Fu) != 0;
  }
  bool is_inf() const { return (bits_ & 0x7FFFu) == 0x7F80u; }

  /// Round a binary32 to the nearest bfloat16 (ties to even). NaN payloads
  /// are quieted to preserve NaN-ness after truncation.
  static std::uint16_t round_from_float(float f) {
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof(x));
    if ((x & 0x7FFFFFFFu) > 0x7F800000u) {
      // NaN: keep sign, force a quiet NaN mantissa bit that survives the shift.
      return static_cast<std::uint16_t>(((x >> 16) & 0x8000u) | 0x7FC0u);
    }
    const std::uint32_t lsb = (x >> 16) & 1u;
    const std::uint32_t rounding_bias = 0x7FFFu + lsb;
    x += rounding_bias;
    return static_cast<std::uint16_t>(x >> 16);
  }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(bfloat16_t) == 2, "bfloat16 must be 2 bytes");

/// Machine epsilon for BF16 (2^-8): |x*(1+e)| rounds away from x above this.
inline constexpr float kBf16Epsilon = 0.00390625f;

}  // namespace ttsim

namespace std {
template <>
class numeric_limits<ttsim::bfloat16_t> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr int digits = 8;       // mantissa bits incl. implicit one
  static constexpr int digits10 = 2;
  static constexpr int max_exponent = 128;
  static constexpr int min_exponent = -125;
  static ttsim::bfloat16_t min() { return ttsim::bfloat16_t::from_bits(0x0080); }
  static ttsim::bfloat16_t max() { return ttsim::bfloat16_t::from_bits(0x7F7F); }
  static ttsim::bfloat16_t lowest() { return ttsim::bfloat16_t::from_bits(0xFF7F); }
  static ttsim::bfloat16_t epsilon() { return ttsim::bfloat16_t::from_bits(0x3C00); }
  static ttsim::bfloat16_t infinity() { return ttsim::bfloat16_t::from_bits(0x7F80); }
  static ttsim::bfloat16_t quiet_NaN() { return ttsim::bfloat16_t::from_bits(0x7FC0); }
  static ttsim::bfloat16_t denorm_min() { return ttsim::bfloat16_t::from_bits(0x0001); }
};
}  // namespace std
