#pragma once
/// \file convert.hpp
/// Bulk float <-> bfloat16 conversion helpers, used when staging host data
/// over PCIe to the device (the host works in FP32, the card in BF16).

#include <span>
#include <vector>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/common/check.hpp"

namespace ttsim {

/// Round-convert a float span into a bf16 span. Sizes must match.
inline void to_bf16(std::span<const float> src, std::span<bfloat16_t> dst) {
  TTSIM_CHECK(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = bfloat16_t{src[i]};
}

/// Widen a bf16 span into floats (exact). Sizes must match.
inline void to_f32(std::span<const bfloat16_t> src, std::span<float> dst) {
  TTSIM_CHECK(src.size() == dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = static_cast<float>(src[i]);
}

inline std::vector<bfloat16_t> to_bf16(std::span<const float> src) {
  std::vector<bfloat16_t> out(src.size());
  to_bf16(src, out);
  return out;
}

inline std::vector<float> to_f32(std::span<const bfloat16_t> src) {
  std::vector<float> out(src.size());
  to_f32(src, out);
  return out;
}

/// Max absolute elementwise difference between a float reference and bf16 data.
inline float max_abs_diff(std::span<const float> ref, std::span<const bfloat16_t> got) {
  TTSIM_CHECK(ref.size() == got.size());
  float m = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float d = std::fabs(ref[i] - static_cast<float>(got[i]));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace ttsim
