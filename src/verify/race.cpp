#include "ttsim/verify/race.hpp"

#include <algorithm>
#include <sstream>

#include "ttsim/common/check.hpp"

namespace ttsim::verify {

const char* to_string(Finding::Kind kind) {
  switch (kind) {
    case Finding::Kind::kDataRace: return "data race";
    case Finding::Kind::kReadBeforeBarrier: return "read before barrier";
    case Finding::Kind::kInFlightClobber: return "in-flight clobber";
    case Finding::Kind::kMisalignedDramRead: return "misaligned DRAM read";
  }
  return "?";
}

void Verifier::begin_program() {
  thread_names_.clear();
  clocks_.clear();
  sync_clocks_.clear();
  shadow_.clear();
  in_flight_.clear();
}

int Verifier::register_thread(std::string name) {
  const int tid = static_cast<int>(thread_names_.size());
  thread_names_.push_back(std::move(name));
  Clock c(static_cast<std::size_t>(tid) + 1, 0);
  c[static_cast<std::size_t>(tid)] = 1;  // epoch 0 = "before everything"
  clocks_.push_back(std::move(c));
  return tid;
}

const std::string& Verifier::thread_name(int tid) const {
  static const std::string kUnknown = "<unknown>";
  if (tid < 0 || static_cast<std::size_t>(tid) >= thread_names_.size()) return kUnknown;
  return thread_names_[static_cast<std::size_t>(tid)];
}

namespace {
std::uint64_t make_key(std::uint64_t kind, int core, int id) {
  return (kind << 48) | (static_cast<std::uint64_t>(static_cast<std::uint32_t>(core)) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(id) & 0xFFFFFFu);
}

void join_into(std::vector<std::uint32_t>& dst, const std::vector<std::uint32_t>& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = std::max(dst[i], src[i]);
}
}  // namespace

std::uint64_t Verifier::cb_data_key(int core, int cb_id) { return make_key(1, core, cb_id); }
std::uint64_t Verifier::cb_space_key(int core, int cb_id) { return make_key(2, core, cb_id); }
std::uint64_t Verifier::sem_key(int core, int sem_id) { return make_key(3, core, sem_id); }
std::uint64_t Verifier::barrier_key(int barrier_id) { return make_key(4, 0, barrier_id); }

Verifier::Clock& Verifier::thread_clock(int tid) {
  TTSIM_CHECK(tid >= 0 && static_cast<std::size_t>(tid) < clocks_.size());
  return clocks_[static_cast<std::size_t>(tid)];
}

void Verifier::acquire(int tid, std::uint64_t key) {
  const auto it = sync_clocks_.find(key);
  if (it == sync_clocks_.end()) return;
  join_into(thread_clock(tid), it->second);
}

void Verifier::release(int tid, std::uint64_t key) {
  Clock& c = thread_clock(tid);
  join_into(sync_clocks_[key], c);
  ++c[static_cast<std::size_t>(tid)];  // new epoch: later accesses are not covered
}

std::map<std::uint32_t, Verifier::Segment>& Verifier::core_shadow(int core) {
  return shadow_[core];
}

void Verifier::split_at(std::map<std::uint32_t, Segment>& shadow, std::uint32_t at) {
  auto it = shadow.upper_bound(at);
  if (it == shadow.begin()) return;
  --it;
  if (it->first >= at || it->second.hi <= at) return;
  Segment right = it->second;  // copy: same epoch/reads, new bounds
  it->second.hi = at;
  shadow.emplace(at, std::move(right));
}

void Verifier::report(Finding::Kind kind, int core, std::uint32_t addr,
                      std::uint32_t size, std::string what) {
  std::ostringstream key;
  key << static_cast<int>(kind) << '|' << core << '|' << what;
  if (!dedupe_.insert(key.str()).second) return;
  findings_.push_back(Finding{kind, core, addr, size, std::move(what)});
}

void Verifier::check_in_flight_overlap(int tid, int core, std::uint32_t lo,
                                       std::uint32_t hi, const char* what,
                                       bool is_write) {
  const auto it = in_flight_.find(core);
  if (it == in_flight_.end()) return;
  for (const InFlight& e : it->second) {
    if (e.hi <= lo || hi <= e.lo) continue;
    std::ostringstream os;
    if (is_write) {
      os << "write by " << thread_name(tid) << " (" << what << ") overlaps the "
         << "landing of an un-barriered noc_async_read issued by "
         << thread_name(e.tid);
    } else {
      os << thread_name(tid) << " (" << what << ") reads data whose "
         << "noc_async_read (issued by " << thread_name(e.tid)
         << ") has no completed barrier yet";
    }
    report(is_write ? Finding::Kind::kInFlightClobber : Finding::Kind::kReadBeforeBarrier,
           core, std::max(lo, e.lo), std::min(hi, e.hi) - std::max(lo, e.lo), os.str());
  }
}

void Verifier::on_read(int tid, int core, std::uint32_t addr, std::uint32_t size,
                       const char* what) {
  if (size == 0) return;
  const std::uint32_t lo = addr;
  const std::uint32_t hi = addr + size;
  check_in_flight_overlap(tid, core, lo, hi, what, /*is_write=*/false);

  auto& shadow = core_shadow(core);
  split_at(shadow, lo);
  split_at(shadow, hi);
  const Clock& mine = thread_clock(tid);
  const std::uint32_t my_epoch = epoch_of(tid);
  std::uint32_t pos = lo;
  auto it = shadow.lower_bound(lo);
  while (pos < hi) {
    if (it == shadow.end() || it->first > pos) {
      const std::uint32_t gap_hi = (it == shadow.end()) ? hi : std::min(hi, it->first);
      it = shadow.emplace(pos, Segment{gap_hi, -1, 0, nullptr, {}}).first;
    }
    Segment& seg = it->second;
    if (seg.w_tid >= 0 && seg.w_tid != tid &&
        !ordered_before(seg.w_tid, seg.w_clk, mine)) {
      std::ostringstream os;
      os << "write by " << thread_name(seg.w_tid) << " ("
         << (seg.w_what != nullptr ? seg.w_what : "?")
         << ") is not ordered before read by " << thread_name(tid) << " (" << what
         << ")";
      report(Finding::Kind::kDataRace, core, it->first, seg.hi - it->first, os.str());
    }
    bool found = false;
    for (ReadEntry& r : seg.reads) {
      if (r.tid == tid) {
        r.clk = my_epoch;
        r.what = what;
        found = true;
        break;
      }
    }
    if (!found) seg.reads.push_back(ReadEntry{tid, my_epoch, what});
    pos = seg.hi;
    ++it;
  }
}

void Verifier::shadow_write(int tid, int core, std::uint32_t addr, std::uint32_t size,
                            const char* what, bool check) {
  const std::uint32_t lo = addr;
  const std::uint32_t hi = addr + size;
  auto& shadow = core_shadow(core);
  split_at(shadow, lo);
  split_at(shadow, hi);
  const Clock& mine = thread_clock(tid);
  auto it = shadow.lower_bound(lo);
  while (it != shadow.end() && it->first < hi) {
    if (check) {
      const Segment& seg = it->second;
      if (seg.w_tid >= 0 && seg.w_tid != tid &&
          !ordered_before(seg.w_tid, seg.w_clk, mine)) {
        std::ostringstream os;
        os << "write by " << thread_name(seg.w_tid) << " ("
           << (seg.w_what != nullptr ? seg.w_what : "?")
           << ") is not ordered before write by " << thread_name(tid) << " ("
           << what << ")";
        report(Finding::Kind::kDataRace, core, it->first, seg.hi - it->first, os.str());
      }
      for (const ReadEntry& r : seg.reads) {
        if (r.tid == tid || ordered_before(r.tid, r.clk, mine)) continue;
        std::ostringstream os;
        os << "read by " << thread_name(r.tid) << " ("
           << (r.what != nullptr ? r.what : "?")
           << ") is not ordered before write by " << thread_name(tid) << " ("
           << what << ")";
        report(Finding::Kind::kDataRace, core, it->first, seg.hi - it->first, os.str());
      }
    }
    it = shadow.erase(it);
  }
  shadow.emplace(lo, Segment{hi, tid, epoch_of(tid), what, {}});
}

void Verifier::on_write(int tid, int core, std::uint32_t addr, std::uint32_t size,
                        const char* what) {
  if (size == 0) return;
  check_in_flight_overlap(tid, core, addr, addr + size, what, /*is_write=*/true);
  shadow_write(tid, core, addr, size, what, /*check=*/true);
}

void Verifier::on_noc_read_issue(int tid, int core, std::uint32_t l1_dst,
                                 std::uint32_t size, int tag,
                                 std::uint64_t dram_addr,
                                 std::uint64_t dram_alignment) {
  if (dram_alignment > 0 && dram_addr % dram_alignment != 0) {
    std::ostringstream os;
    os << thread_name(tid) << ": noc_async_read source 0x" << std::hex << dram_addr
       << std::dec << " violates the " << dram_alignment * 8
       << "-bit DRAM alignment rule (use read_data_aligned)";
    report(Finding::Kind::kMisalignedDramRead, core,
           static_cast<std::uint32_t>(dram_addr), size, os.str());
  }
  if (size == 0) return;
  const std::uint32_t lo = l1_dst;
  const std::uint32_t hi = l1_dst + size;
  // A second landing over a still-in-flight one: the two DMAs race.
  check_in_flight_overlap(tid, core, lo, hi, "noc_async_read issue", /*is_write=*/true);
  // The landing behaves as a write at an unknown time before the barrier:
  // any recorded access not ordered before the *issue* races with it.
  auto& shadow = core_shadow(core);
  split_at(shadow, lo);
  split_at(shadow, hi);
  const Clock& mine = thread_clock(tid);
  for (auto it = shadow.lower_bound(lo); it != shadow.end() && it->first < hi; ++it) {
    const Segment& seg = it->second;
    if (seg.w_tid >= 0 && seg.w_tid != tid &&
        !ordered_before(seg.w_tid, seg.w_clk, mine)) {
      std::ostringstream os;
      os << "noc_async_read landing issued by " << thread_name(tid)
         << " overlaps a write by " << thread_name(seg.w_tid) << " ("
         << (seg.w_what != nullptr ? seg.w_what : "?")
         << ") that is not ordered before the issue";
      report(Finding::Kind::kInFlightClobber, core, it->first, seg.hi - it->first,
             os.str());
    }
    for (const ReadEntry& r : seg.reads) {
      if (r.tid == tid || ordered_before(r.tid, r.clk, mine)) continue;
      std::ostringstream os;
      os << "noc_async_read landing issued by " << thread_name(tid)
         << " overlaps data still being read by " << thread_name(r.tid) << " ("
         << (r.what != nullptr ? r.what : "?")
         << ") — slot recycled before its consumers were ordered behind the issue";
      report(Finding::Kind::kInFlightClobber, core, it->first, seg.hi - it->first,
             os.str());
    }
  }
  in_flight_[core].push_back(InFlight{lo, hi, tid, tag, dram_addr});
}

void Verifier::on_noc_read_retire(int tid, int tag) {
  for (auto& [core, entries] : in_flight_) {
    for (std::size_t i = 0; i < entries.size();) {
      const InFlight& e = entries[i];
      if (e.tid == tid && (tag < 0 || e.tag == tag)) {
        // The landing is now visible and ordered: record it as a write by the
        // issuer at the post-barrier clock. Conflicts were already checked at
        // issue and at intervening accesses, so skip re-checking.
        shadow_write(tid, core, e.lo, e.hi - e.lo, "noc_async_read landing",
                     /*check=*/false);
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

}  // namespace ttsim::verify
