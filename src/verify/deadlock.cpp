#include "ttsim/verify/deadlock.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace ttsim::verify {
namespace {

using Kind = sim::WaitSite::Kind;

/// Kinds whose waiters another kernel process could in principle unblock.
bool kernel_waitable(Kind k) {
  return k == Kind::kCbFull || k == Kind::kCbEmpty || k == Kind::kSemaphore ||
         k == Kind::kBarrier;
}

const char* unblock_hint(Kind k) {
  switch (k) {
    case Kind::kCbFull: return "needs a consumer pop";
    case Kind::kCbEmpty: return "needs a producer push";
    case Kind::kSemaphore: return "needs a post";
    case Kind::kBarrier: return "needs the remaining participants";
    case Kind::kNocRead: return "waiting on NoC read completions";
    case Kind::kNocWrite: return "waiting on NoC write completions";
    case Kind::kHalted: return "core killed by the fault plan";
    default: return "blocked";
  }
}

/// Wait-for edges out of kernel `i`: indices of kernels that could unblock it.
std::vector<int> unblockers_of(const std::vector<BlockedKernel>& blocked, int i,
                               const std::map<std::string, int>& by_name,
                               bool quiescent) {
  const BlockedKernel& k = blocked[static_cast<std::size_t>(i)];
  std::vector<int> out;
  if (!kernel_waitable(k.site.kind)) return out;
  if (!k.known_unblockers.empty()) {
    for (const auto& name : k.known_unblockers) {
      const auto it = by_name.find(name);
      if (it != by_name.end() && it->second != i) out.push_back(it->second);
    }
    if (!out.empty()) return out;
    // Every recorded counterpart already finished: fall through to the
    // structural rules so e.g. a same-core kernel that has not yet reached
    // its first push is still considered.
  }
  // The structural fallbacks below over-approximate (any co-resident could
  // be the missing counterpart), which is only safe once the event queue has
  // drained and process wakeups are the sole way anything ever moves again.
  if (!quiescent) return out;
  for (int j = 0; j < static_cast<int>(blocked.size()); ++j) {
    if (j == i) continue;
    const BlockedKernel& other = blocked[static_cast<std::size_t>(j)];
    if (k.site.kind == Kind::kBarrier) {
      // Anyone not already parked at this barrier still has to arrive.
      if (other.site.kind == Kind::kBarrier && other.site.id == k.site.id) continue;
      out.push_back(j);
    } else {
      // CB and semaphore state lives on one Tensix core; only kernels
      // attached to that core can push/pop/post it directly. (Remote
      // semaphore posts via noc_semaphore_inc are covered by the registry
      // path above.)
      if (other.core == k.site.core) out.push_back(j);
    }
  }
  return out;
}

}  // namespace

std::string describe_wait_site(const sim::WaitSite& site) {
  std::ostringstream os;
  switch (site.kind) {
    case Kind::kCbFull:
      os << "CB " << site.id << " full (core " << site.core << ")";
      break;
    case Kind::kCbEmpty:
      os << "CB " << site.id << " empty (core " << site.core << ")";
      break;
    case Kind::kSemaphore:
      os << "semaphore " << site.id << " (core " << site.core << ")";
      break;
    case Kind::kBarrier:
      os << "global barrier " << site.id;
      break;
    case Kind::kNocRead:
      os << "noc_async_read_barrier (core " << site.core << ")";
      break;
    case Kind::kNocWrite:
      os << "noc_async_write_barrier (core " << site.core << ")";
      break;
    case Kind::kHalted:
      os << "halted core " << site.core;
      break;
    default:
      os << "unknown wait";
      break;
  }
  return os.str();
}

DeadlockReport diagnose(const std::vector<BlockedKernel>& blocked, bool quiescent) {
  DeadlockReport report;
  const int n = static_cast<int>(blocked.size());
  std::map<std::string, int> by_name;
  for (int i = 0; i < n; ++i) by_name.emplace(blocked[static_cast<std::size_t>(i)].name, i);

  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    adj[static_cast<std::size_t>(i)] = unblockers_of(blocked, i, by_name, quiescent);
    // A waitable site with nobody who could ever service it is only provably
    // dead once the queue has drained. NoC barrier waits at quiescence mean
    // the completions were lost — equally unwakeable.
    const Kind kind = blocked[static_cast<std::size_t>(i)].site.kind;
    if (quiescent && adj[static_cast<std::size_t>(i)].empty() &&
        (kernel_waitable(kind) || kind == Kind::kNocRead || kind == Kind::kNocWrite)) {
      report.orphans.push_back(i);
    }
  }

  // Tarjan's SCC, iterative. Components with >= 2 nodes (or a self-loop —
  // impossible here since unblockers exclude self) are wait cycles.
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0;
  struct Frame {
    int v;
    std::size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = adj[static_cast<std::size_t>(f.v)];
      if (f.child < edges.size()) {
        const int w = edges[f.child++];
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)], index[static_cast<std::size_t>(w)]);
        }
      } else {
        const int v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          const int parent = frames.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)], low[static_cast<std::size_t>(v)]);
        }
        if (low[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
          std::vector<int> comp;
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp.push_back(w);
            if (w == v) break;
          }
          if (comp.size() >= 2) {
            std::sort(comp.begin(), comp.end());
            report.cycles.push_back(std::move(comp));
          }
        }
      }
    }
  }

  if (report.empty()) return report;
  std::ostringstream os;
  os << "wait-for diagnosis:";
  int cycle_no = 0;
  for (const auto& cycle : report.cycles) {
    os << "\n  wait cycle " << ++cycle_no << " (" << cycle.size() << " kernels):";
    for (const int i : cycle) {
      const BlockedKernel& k = blocked[static_cast<std::size_t>(i)];
      os << "\n    " << k.name << ": blocked on " << describe_wait_site(k.site)
         << " — " << unblock_hint(k.site.kind);
    }
  }
  if (!report.orphans.empty()) {
    os << "\n  stuck with no possible waker:";
    for (const int i : report.orphans) {
      const BlockedKernel& k = blocked[static_cast<std::size_t>(i)];
      os << "\n    " << k.name << ": blocked on " << describe_wait_site(k.site)
         << " — " << unblock_hint(k.site.kind);
    }
  }
  report.text = os.str();
  return report;
}

}  // namespace ttsim::verify
