#pragma once
/// \file race.hpp
/// Dynamic happens-before race detector for simulated tt-metal kernels —
/// FastTrack-style vector clocks over the kernel processes, with interval
/// shadow memory per Tensix core SRAM and explicit tracking of in-flight
/// `noc_async_read` landings.
///
/// Happens-before edges (the release/acquire taxonomy, see DESIGN.md):
///   cb_push_back   releases the CB's data clock;  cb_wait_front acquires it
///   cb_pop_front   releases the CB's space clock; cb_reserve_back acquires it
///   semaphore_post / noc_semaphore_inc release a semaphore clock;
///   semaphore_wait acquires it
///   global_barrier releases then (after the rendezvous) acquires the
///   barrier clock — an all-to-all edge
///   noc_async_read_barrier retires the issuing mover's in-flight landings,
///   recording each as a write ordered at the barrier's return
///
/// The detector is instrumented from the ttmetal kernel contexts behind
/// DeviceConfig::enable_verify; every entry point is pure host bookkeeping
/// (no charges, delays or scheduled events), so enabling it never changes
/// results, simulated times or traces.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ttsim::verify {

struct Finding {
  enum class Kind {
    kDataRace,           ///< unsynchronised write/read or write/write pair
    kReadBeforeBarrier,  ///< SRAM read overlapping an un-barriered NoC read
    kInFlightClobber,    ///< write (or second NoC read) over an in-flight landing
    kMisalignedDramRead, ///< DRAM read source not 256-bit aligned
  };
  Kind kind;
  int core = -1;
  std::uint32_t addr = 0;  ///< L1 address of the overlap (or DRAM low bits)
  std::uint32_t size = 0;
  std::string what;  ///< both access labels and kernel names
};

const char* to_string(Finding::Kind kind);

/// The detector. One instance per Device; threads are the kernel processes
/// of the running program, registered at launch.
class Verifier {
 public:
  Verifier() = default;

  /// Clear shadow memory, in-flight reads and the thread registry for a new
  /// program launch (cores are reset between launches, so stale shadow state
  /// would manufacture cross-program races). Findings persist.
  void begin_program();

  /// Register a kernel process; returns its thread id.
  int register_thread(std::string name);
  const std::string& thread_name(int tid) const;

  // --- sync-clock keys ---
  static std::uint64_t cb_data_key(int core, int cb_id);
  static std::uint64_t cb_space_key(int core, int cb_id);
  static std::uint64_t sem_key(int core, int sem_id);
  static std::uint64_t barrier_key(int barrier_id);

  /// Join the sync object's clock into the thread (wait/acquire side).
  void acquire(int tid, std::uint64_t key);
  /// Join the thread's clock into the sync object (post/release side).
  void release(int tid, std::uint64_t key);

  // --- SRAM shadow accesses ---
  void on_read(int tid, int core, std::uint32_t addr, std::uint32_t size,
               const char* what);
  void on_write(int tid, int core, std::uint32_t addr, std::uint32_t size,
                const char* what);

  // --- in-flight NoC reads ---
  /// A noc_async_read was issued: [l1_dst, l1_dst+size) will be overwritten
  /// at an unknown time before the matching barrier. Also checks the DRAM
  /// source alignment rule (alignment 0 skips that check).
  void on_noc_read_issue(int tid, int core, std::uint32_t l1_dst,
                         std::uint32_t size, int tag, std::uint64_t dram_addr,
                         std::uint64_t dram_alignment);
  /// The issuing mover returned from noc_async_read_barrier(tag); tag -1
  /// retires every in-flight read of the thread (the untagged barrier waits
  /// on all of them). Each landing becomes a write ordered at this point.
  void on_noc_read_retire(int tid, int tag);

  const std::vector<Finding>& findings() const { return findings_; }
  void clear_findings() { findings_.clear(); dedupe_.clear(); }

 private:
  using Clock = std::vector<std::uint32_t>;

  struct ReadEntry {
    int tid;
    std::uint32_t clk;
    const char* what;
  };
  /// Shadow segment [lo, hi): last write epoch plus per-thread last reads.
  struct Segment {
    std::uint32_t hi = 0;
    int w_tid = -1;  ///< -1: never written
    std::uint32_t w_clk = 0;
    const char* w_what = nullptr;
    std::vector<ReadEntry> reads;
  };
  struct InFlight {
    std::uint32_t lo, hi;
    int tid;
    int tag;
    std::uint64_t dram_addr;
  };

  Clock& thread_clock(int tid);
  std::uint32_t epoch_of(int tid) const { return clocks_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(tid)]; }
  bool ordered_before(int tid, std::uint32_t clk, const Clock& target) const {
    return clk <= (static_cast<std::size_t>(tid) < target.size()
                       ? target[static_cast<std::size_t>(tid)]
                       : 0);
  }
  /// Split shadow segments so [lo, hi) is covered by exact-boundary segments,
  /// creating fresh (never-accessed) segments for gaps; returns iterators via
  /// callback over each segment in range.
  std::map<std::uint32_t, Segment>& core_shadow(int core);
  void split_at(std::map<std::uint32_t, Segment>& shadow, std::uint32_t at);
  void shadow_write(int tid, int core, std::uint32_t addr, std::uint32_t size,
                    const char* what, bool check);
  void report(Finding::Kind kind, int core, std::uint32_t addr, std::uint32_t size,
              std::string what);
  void check_in_flight_overlap(int tid, int core, std::uint32_t lo, std::uint32_t hi,
                               const char* what, bool is_write);

  std::vector<std::string> thread_names_;
  std::vector<Clock> clocks_;
  std::map<std::uint64_t, Clock> sync_clocks_;
  std::map<int, std::map<std::uint32_t, Segment>> shadow_;  // per core
  std::map<int, std::vector<InFlight>> in_flight_;          // per core
  std::vector<Finding> findings_;
  std::set<std::string> dedupe_;
};

}  // namespace ttsim::verify
