#pragma once
/// \file lint.hpp
/// Static program linter: walks a snapshot of a ttmetal Program's declared
/// resources (CBs, semaphores, barriers, L1 buffers, kernel placements)
/// against a device snapshot, before anything is launched, and reports
/// protocol violations that would otherwise surface as hangs, silent
/// corruption or launch-time check failures deep inside the simulator.
///
/// The linter sees declarations, not kernel bodies (kernels are opaque
/// closures); body-level bugs — a missing noc_async_read_barrier, an
/// unpaired semaphore wait — are the dynamic race detector's and deadlock
/// diagnoser's jobs (race.hpp, deadlock.hpp).
///
/// The snapshot types are plain data so this library depends only on
/// ttsim::sim; ttmetal::Program::verify_info() / Device fill them in.

#include <cstdint>
#include <string>
#include <vector>

namespace ttsim::verify {

/// One typed lint finding. `core` / `id` are -1 when not applicable.
struct LintError {
  enum class Code {
    kBadCoreId,          ///< core index outside the worker grid
    kDeadCore,           ///< kernel/resource placed on a fault-plan-killed core
    kDuplicateCb,        ///< same CB id configured twice on one core
    kBadCbGeometry,      ///< zero pages, zero page size, or page size not
                         ///< a multiple of the 256-bit DRAM/NoC granule
    kOrphanCb,           ///< CB on a core with fewer than two kernels —
                         ///< no producer/consumer pair can exist
    kDuplicateSemaphore, ///< same semaphore id configured twice on one core
    kOrphanSemaphore,    ///< semaphore on a core with no kernels at all
    kDuplicateBarrier,   ///< barrier id declared twice with different groups
    kBadBarrier,         ///< non-positive participant count, or more
                         ///< participants than kernel instances exist —
                         ///< the rendezvous can never complete
    kSramOverflow,       ///< planned L1 address range exceeds core SRAM
    kBufferOverlap,      ///< two planned L1 regions overlap on one core
    kDuplicateKernel,    ///< two kernels of the same kind on one core
                         ///< (each baby core runs exactly one)
    kEmptyCoreList,      ///< resource or kernel declared over zero cores
    // ---- codes emitted by the static IR protocol checker (ir/check) ----
    kCbCreditImbalance,  ///< CB push/pop or reserve/push totals differ for
                         ///< some loop trip count — a kernel starves or the
                         ///< producer leaks reserved pages
    kCbOvercommit,       ///< a single reserve/wait asks for more pages than
                         ///< the CB holds — it can never be satisfied
    kSemImbalance,       ///< a core can wait on a semaphore more times than
                         ///< posts (plus the initial value) can ever arrive
    kSlotReuse,          ///< slot-ring reuse distance too short: a rotation
                         ///< slot is rewritten while an in-flight batch may
                         ///< still read it (the PR 3/PR 7 clobber class)
    kWaitCycle,          ///< static wait-for cycle with no initial credit —
                         ///< every participant needs another to move first
  };

  Code code;
  int core = -1;
  int id = -1;          ///< cb/semaphore/barrier id when applicable
  std::string message;  ///< full human-readable diagnosis with names
};

const char* to_string(LintError::Code code);

/// Snapshot of one Program's declarations (ttmetal::Program::verify_info()).
struct ProgramInfo {
  struct Cb {
    int cb_id;
    std::vector<int> cores;
    std::uint32_t page_size;
    std::uint32_t num_pages;
    std::uint32_t planned_address;
  };
  struct Semaphore {
    int sem_id;
    std::vector<int> cores;
    std::int64_t initial;
  };
  struct Barrier {
    int barrier_id;
    int participants;
  };
  struct L1Buffer {
    std::vector<int> cores;
    std::uint32_t size;
    std::uint32_t align;
    std::uint32_t planned_address;
  };
  struct Kernel {
    int kind;  ///< ttmetal::KernelKind as int (0=dm0, 1=dm1, 2=compute)
    std::vector<int> cores;
    std::string name;
  };

  std::vector<Cb> cbs;
  std::vector<Semaphore> semaphores;
  std::vector<Barrier> barriers;
  std::vector<L1Buffer> l1_buffers;
  std::vector<Kernel> kernels;
};

/// Snapshot of the target device (Device::verify_info()).
struct DeviceInfo {
  int num_workers = 0;
  std::uint64_t sram_bytes = 0;
  /// Worker ids the fault plan has killed (or remapped away) at lint time.
  std::vector<int> failed_cores;
  /// 256-bit rule: DRAM/NoC transfer granule in bytes (32 on Grayskull).
  /// CB page sizes must be multiples of it.
  std::uint32_t dram_align_bytes = 32;
};

/// Run every check; returns all findings (empty = clean). Deterministic
/// order: declaration order within each check, checks in enum order per
/// declaration.
std::vector<LintError> lint(const ProgramInfo& program, const DeviceInfo& device);

/// Format findings one per line ("lint: <code>: <message>").
std::string format_lint(const std::vector<LintError>& errors);

}  // namespace ttsim::verify
