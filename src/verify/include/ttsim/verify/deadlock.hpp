#pragma once
/// \file deadlock.hpp
/// Deadlock diagnosis over blocked kernel processes: builds a wait-for graph
/// from each process's WaitSite (what resource it is blocked on) plus the
/// registry of counterpart resource users, extracts wait cycles, and formats
/// a report naming every participant and its blocking resource — replacing
/// "kernel X stuck" with the actual cycle.
///
/// The diagnoser is pure host-side analysis: it reads state, never the
/// engine, so running it is observationally neutral.

#include <string>
#include <vector>

#include "ttsim/sim/engine.hpp"

namespace ttsim::verify {

/// One unfinished kernel process at the moment of diagnosis.
struct BlockedKernel {
  std::string name;
  /// Worker core the kernel runs on (for same-core fallback edges; the
  /// site's own core can differ for remote resources).
  int core = -1;
  sim::WaitSite site;
  /// Names of processes recorded by the wait registry as counterpart users
  /// of the blocking resource: consumers of a full CB, producers of an empty
  /// one, posters of a semaphore. Empty means unresolved — the diagnoser
  /// falls back to same-core / barrier-complement edges.
  std::vector<std::string> known_unblockers;
};

struct DeadlockReport {
  /// Wait cycles: each entry lists indices into the diagnosed kernel list.
  std::vector<std::vector<int>> cycles;
  /// Kernels blocked on a resource with no live process that could ever
  /// release it (e.g. a semaphore whose only poster finished, or a core the
  /// fault plan killed).
  std::vector<int> orphans;
  /// Human-readable diagnosis: one line per cycle participant naming its
  /// blocking resource, plus the orphan list. Empty when nothing was found.
  std::string text;

  bool empty() const { return cycles.empty() && orphans.empty(); }
};

/// Human description of a wait site ("CB 3 empty (core 0, needs a producer
/// push)", "semaphore 2 (core 1)", ...).
std::string describe_wait_site(const sim::WaitSite& site);

/// Build the wait-for graph over `blocked` and extract every wait cycle
/// (strongly connected component with at least one edge) and every orphan.
///
/// `quiescent` says the engine's event queue has drained: nothing can wake
/// any waiter except another process in `blocked`. Only then are the
/// structural fallback edges (same-core co-residents, barrier complement)
/// and the orphan analysis sound. On a mid-flight watchdog timeout pass
/// false: the diagnosis then uses only registry-recorded counterpart edges,
/// whose cycles are real mutual waits regardless of pending events.
DeadlockReport diagnose(const std::vector<BlockedKernel>& blocked,
                        bool quiescent = true);

}  // namespace ttsim::verify
