#include "ttsim/verify/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ttsim::verify {

const char* to_string(LintError::Code code) {
  switch (code) {
    case LintError::Code::kBadCoreId: return "bad-core-id";
    case LintError::Code::kDeadCore: return "dead-core";
    case LintError::Code::kDuplicateCb: return "duplicate-cb";
    case LintError::Code::kBadCbGeometry: return "bad-cb-geometry";
    case LintError::Code::kOrphanCb: return "orphan-cb";
    case LintError::Code::kDuplicateSemaphore: return "duplicate-semaphore";
    case LintError::Code::kOrphanSemaphore: return "orphan-semaphore";
    case LintError::Code::kDuplicateBarrier: return "duplicate-barrier";
    case LintError::Code::kBadBarrier: return "bad-barrier";
    case LintError::Code::kSramOverflow: return "sram-overflow";
    case LintError::Code::kBufferOverlap: return "buffer-overlap";
    case LintError::Code::kDuplicateKernel: return "duplicate-kernel";
    case LintError::Code::kEmptyCoreList: return "empty-core-list";
    case LintError::Code::kCbCreditImbalance: return "cb-credit-imbalance";
    case LintError::Code::kCbOvercommit: return "cb-overcommit";
    case LintError::Code::kSemImbalance: return "sem-imbalance";
    case LintError::Code::kSlotReuse: return "slot-ring-reuse";
    case LintError::Code::kWaitCycle: return "wait-cycle";
  }
  return "?";
}

namespace {

class Linter {
 public:
  Linter(const ProgramInfo& program, const DeviceInfo& device)
      : program_(program), device_(device) {
    for (const int c : device_.failed_cores) failed_.insert(c);
    for (const auto& k : program_.kernels) {
      for (const int c : k.cores) ++kernels_per_core_[c];
    }
  }

  std::vector<LintError> run() {
    check_kernels();
    check_cbs();
    check_semaphores();
    check_barriers();
    check_l1_layout();
    return std::move(errors_);
  }

 private:
  void add(LintError::Code code, int core, int id, const std::string& message) {
    errors_.push_back(LintError{code, core, id, message});
  }

  /// Shared placement checks; returns false when the core list is empty
  /// (further per-core checks are pointless then).
  bool check_cores(const std::vector<int>& cores, const std::string& what, int id) {
    if (cores.empty()) {
      add(LintError::Code::kEmptyCoreList, -1, id, what + " declared over zero cores");
      return false;
    }
    for (const int c : cores) {
      if (c < 0 || (device_.num_workers > 0 && c >= device_.num_workers)) {
        std::ostringstream os;
        os << what << " placed on core " << c << ", outside the worker grid (0.."
           << device_.num_workers - 1 << ")";
        add(LintError::Code::kBadCoreId, c, id, os.str());
      } else if (failed_.count(c) != 0) {
        std::ostringstream os;
        os << what << " placed on core " << c
           << ", which the fault plan has killed — remap before building the program";
        add(LintError::Code::kDeadCore, c, id, os.str());
      }
    }
    return true;
  }

  void check_kernels() {
    // (core, kind) -> first kernel name, to diagnose doubled placement.
    std::map<std::pair<int, int>, const std::string*> seen;
    for (const auto& k : program_.kernels) {
      if (!check_cores(k.cores, "kernel '" + k.name + "'", -1)) continue;
      for (const int c : k.cores) {
        const auto [it, inserted] = seen.emplace(std::make_pair(c, k.kind), &k.name);
        if (!inserted) {
          std::ostringstream os;
          os << "kernels '" << *it->second << "' and '" << k.name
             << "' both target the same baby core (kind " << k.kind << ") on core "
             << c << "; each Tensix baby core runs exactly one kernel";
          add(LintError::Code::kDuplicateKernel, c, -1, os.str());
        }
      }
    }
  }

  void check_cbs() {
    std::set<std::pair<int, int>> seen;  // (core, cb_id)
    for (const auto& cb : program_.cbs) {
      std::ostringstream name;
      name << "CB " << cb.cb_id;
      if (!check_cores(cb.cores, name.str(), cb.cb_id)) continue;
      if (cb.page_size == 0 || cb.num_pages == 0 ||
          cb.page_size % device_.dram_align_bytes != 0) {
        std::ostringstream os;
        os << name.str() << ": page geometry " << cb.num_pages << " x "
           << cb.page_size << " B is invalid (pages must be non-empty and the "
           << "page size a multiple of the " << device_.dram_align_bytes * 8
           << "-bit DRAM/NoC granule, " << device_.dram_align_bytes << " B)";
        add(LintError::Code::kBadCbGeometry, cb.cores.front(), cb.cb_id, os.str());
      }
      for (const int c : cb.cores) {
        if (!seen.insert({c, cb.cb_id}).second) {
          std::ostringstream os;
          os << name.str() << " configured twice on core " << c;
          add(LintError::Code::kDuplicateCb, c, cb.cb_id, os.str());
        }
        const auto it = kernels_per_core_.find(c);
        const int nkernels = it == kernels_per_core_.end() ? 0 : it->second;
        if (nkernels < 2) {
          std::ostringstream os;
          os << name.str() << " on core " << c << " has " << nkernels
             << " kernel(s) on that core — a circular buffer needs both a "
             << "producer and a consumer";
          add(LintError::Code::kOrphanCb, c, cb.cb_id, os.str());
        }
      }
    }
  }

  void check_semaphores() {
    std::set<std::pair<int, int>> seen;  // (core, sem_id)
    for (const auto& sem : program_.semaphores) {
      std::ostringstream name;
      name << "semaphore " << sem.sem_id;
      if (!check_cores(sem.cores, name.str(), sem.sem_id)) continue;
      for (const int c : sem.cores) {
        if (!seen.insert({c, sem.sem_id}).second) {
          std::ostringstream os;
          os << name.str() << " configured twice on core " << c;
          add(LintError::Code::kDuplicateSemaphore, c, sem.sem_id, os.str());
        }
        if (kernels_per_core_.count(c) == 0) {
          std::ostringstream os;
          os << name.str() << " created on core " << c
             << ", but no kernel runs there — nothing can ever wait on or post it "
             << "locally (remote noc_semaphore_inc posts would vanish unobserved)";
          add(LintError::Code::kOrphanSemaphore, c, sem.sem_id, os.str());
        }
      }
    }
  }

  void check_barriers() {
    int total_instances = 0;
    for (const auto& k : program_.kernels) {
      total_instances += static_cast<int>(k.cores.size());
    }
    std::map<int, int> participants;  // barrier_id -> declared participants
    for (const auto& b : program_.barriers) {
      const auto [it, inserted] = participants.emplace(b.barrier_id, b.participants);
      if (!inserted) {
        std::ostringstream os;
        os << "global barrier " << b.barrier_id << " declared twice ("
           << it->second << " and " << b.participants
           << " participants); batched core groups must agree on one declaration "
           << "whose count covers every group";
        add(LintError::Code::kDuplicateBarrier, -1, b.barrier_id, os.str());
        continue;
      }
      if (b.participants <= 0) {
        std::ostringstream os;
        os << "global barrier " << b.barrier_id << " declared with "
           << b.participants << " participants";
        add(LintError::Code::kBadBarrier, -1, b.barrier_id, os.str());
      } else if (b.participants > total_instances) {
        std::ostringstream os;
        os << "global barrier " << b.barrier_id << " expects " << b.participants
           << " participants but the program only launches " << total_instances
           << " kernel instance(s) — the rendezvous can never complete";
        add(LintError::Code::kBadBarrier, -1, b.barrier_id, os.str());
      }
    }
  }

  void check_l1_layout() {
    struct Region {
      std::uint64_t lo, hi;
      std::string name;
    };
    std::map<int, std::vector<Region>> per_core;
    for (const auto& cb : program_.cbs) {
      std::ostringstream name;
      name << "CB " << cb.cb_id;
      const std::uint64_t size =
          static_cast<std::uint64_t>(cb.page_size) * cb.num_pages;
      for (const int c : cb.cores) {
        per_core[c].push_back({cb.planned_address, cb.planned_address + size, name.str()});
      }
    }
    int l1_index = 0;
    for (const auto& l1 : program_.l1_buffers) {
      std::ostringstream name;
      name << "L1 buffer #" << l1_index++;
      if (!check_cores(l1.cores, name.str(), -1)) continue;
      for (const int c : l1.cores) {
        per_core[c].push_back(
            {l1.planned_address, static_cast<std::uint64_t>(l1.planned_address) + l1.size,
             name.str()});
      }
    }
    for (auto& [core, regions] : per_core) {
      for (const Region& r : regions) {
        if (device_.sram_bytes > 0 && r.hi > device_.sram_bytes) {
          std::ostringstream os;
          os << r.name << " on core " << core << " spans [" << r.lo << ", " << r.hi
             << "), past the " << device_.sram_bytes << " B of core SRAM";
          add(LintError::Code::kSramOverflow, core, -1, os.str());
        }
      }
      std::sort(regions.begin(), regions.end(),
                [](const Region& a, const Region& b) { return a.lo < b.lo; });
      for (std::size_t i = 1; i < regions.size(); ++i) {
        const Region& prev = regions[i - 1];
        const Region& cur = regions[i];
        if (cur.lo < prev.hi) {
          std::ostringstream os;
          os << prev.name << " and " << cur.name << " overlap on core " << core
             << " ([" << prev.lo << ", " << prev.hi << ") vs [" << cur.lo << ", "
             << cur.hi << "))";
          add(LintError::Code::kBufferOverlap, core, -1, os.str());
        }
      }
    }
  }

  const ProgramInfo& program_;
  const DeviceInfo& device_;
  std::set<int> failed_;
  std::map<int, int> kernels_per_core_;
  std::vector<LintError> errors_;
};

}  // namespace

std::vector<LintError> lint(const ProgramInfo& program, const DeviceInfo& device) {
  return Linter(program, device).run();
}

std::string format_lint(const std::vector<LintError>& errors) {
  std::ostringstream os;
  for (const LintError& e : errors) {
    os << "lint: " << to_string(e.code) << ": " << e.message << '\n';
  }
  return os.str();
}

}  // namespace ttsim::verify
