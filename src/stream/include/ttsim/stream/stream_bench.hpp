#pragma once
/// \file stream_bench.hpp
/// The Section V streaming benchmark: one data mover loads 32-bit integers
/// from DRAM as fast as possible, hands them to the other data mover through
/// a circular buffer, and that mover writes them back to DRAM. Parameters
/// sweep everything the paper sweeps — access batch size, per-access vs
/// per-row synchronisation, contiguous vs non-contiguous order, read
/// replication, DRAM interleaving page size, and core count (Tables III–VII,
/// plus the read-into-local-buffer-then-memcpy finding).

#include <cstdint>

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::stream {

struct StreamParams {
  /// Problem geometry: rows x (row_bytes/4) 32-bit integers. The paper uses
  /// 4096 x 4096 ints (rows = 4096, row_bytes = 16384); benches may simulate
  /// fewer rows and scale, since per-row work is identical.
  std::uint32_t rows = 4096;
  std::uint32_t row_bytes = 16384;

  std::uint32_t read_batch = 16384;   ///< bytes per DRAM read request
  std::uint32_t write_batch = 16384;  ///< bytes per DRAM write request
  bool read_sync_each = false;        ///< barrier after every read (Table III "sync")
  bool write_sync_each = false;       ///< barrier after every write

  /// Contiguous: requests walk each row left to right (row-major).
  /// Non-contiguous: the logical matrix is traversed down columns of batches
  /// so that successive requests stride by a full row (Table IV).
  bool contiguous = true;

  /// Total reads per access (Table V/VI): factor f issues f-1 extra reads of
  /// the same-size batch in the f-1 previous rows. 0 and 1 both mean one read.
  int replication = 1;

  /// Section V inline experiment: read into a local L1 buffer, then memcpy
  /// into the CB, instead of receiving into the CB directly.
  bool via_local_buffer = false;

  /// 0 = both buffers in single (distinct) DRAM banks; >0 = both buffers
  /// interleaved across all 8 banks with this page size (Table VI/VII).
  std::uint64_t interleave_page = 0;

  /// Cores decomposed vertically in the Y dimension (Table VII).
  int num_cores = 1;

  /// Pages in the conveyor CB between the two movers (pipelining depth;
  /// 1 removes producer/consumer overlap entirely — ablation knob).
  std::uint32_t cb_pages = 4;

  /// Verify output contents against the expected permutation after the run.
  bool verify = true;
};

struct StreamOutcome {
  SimTime kernel_time = 0;   ///< simulated kernel-only runtime
  bool verified_ok = true;   ///< data integrity check result
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  double seconds() const { return to_seconds(kernel_time); }
  /// Read+write goodput (excluding replicated reads).
  double effective_gbs() const {
    return kernel_time > 0
               ? static_cast<double>(bytes_read + bytes_written) / 1e9 /
                     to_seconds(kernel_time)
               : 0.0;
  }
};

/// Run one streaming configuration on a fresh pair of DRAM buffers.
/// Throws ApiError on inconsistent parameters (batch not dividing a row, ...).
StreamOutcome run_streaming_benchmark(ttmetal::Device& device, const StreamParams& params);

/// Convenience: open a fresh device with `spec`, run, and return the outcome.
StreamOutcome run_streaming_benchmark(const StreamParams& params,
                                      sim::GrayskullSpec spec = {});

}  // namespace ttsim::stream
