#include "ttsim/stream/stream_bench.hpp"

#include <cstring>
#include <vector>

#include "ttsim/common/log.hpp"

namespace ttsim::stream {
namespace {

constexpr int kCbConveyor = 0;

/// Byte offset of the k-th batch in the traversal order for a row slice
/// [row_lo, row_lo + slice_rows). Contiguous: row-major. Non-contiguous:
/// down columns of batches, so successive accesses stride by a whole row.
std::uint64_t batch_offset(bool contiguous, std::uint64_t k, std::uint32_t row_bytes,
                           std::uint32_t batch, std::uint32_t row_lo,
                           std::uint32_t slice_rows) {
  const std::uint64_t per_row = row_bytes / batch;
  std::uint64_t row, col;
  if (contiguous) {
    row = k / per_row;
    col = k % per_row;
  } else {
    col = k / slice_rows;
    row = k % slice_rows;
  }
  return (static_cast<std::uint64_t>(row_lo) + row) * row_bytes + col * batch;
}

/// Offset of the same-size batch `k_prev` rows above `off`, wrapping at the
/// top so that replicated traffic volume is row-independent.
std::uint64_t previous_row_offset(std::uint64_t off, int k_prev, std::uint32_t row_bytes,
                                  std::uint32_t total_rows) {
  const std::uint64_t stride = static_cast<std::uint64_t>(k_prev) * row_bytes;
  if (off >= stride) return off - stride;
  return off + static_cast<std::uint64_t>(total_rows) * row_bytes - stride;
}

void validate(const StreamParams& p) {
  auto check = [](bool ok, const char* what) {
    if (!ok) TTSIM_THROW_API("streaming benchmark: " << what);
  };
  check(p.rows > 0 && p.row_bytes > 0, "empty problem");
  check(is_pow2(p.read_batch) && is_pow2(p.write_batch), "batch sizes must be powers of two");
  check(p.read_batch >= 4 && p.read_batch <= p.row_bytes, "read batch out of range");
  check(p.write_batch >= 4 && p.write_batch <= p.row_bytes, "write batch out of range");
  check(p.row_bytes % p.read_batch == 0, "read batch must divide the row");
  check(p.row_bytes % p.write_batch == 0, "write batch must divide the row");
  check(p.replication >= 0 && p.replication <= 64, "replication factor out of range");
  check(p.num_cores >= 1, "need at least one core");
  check(p.rows % static_cast<std::uint32_t>(p.num_cores) == 0,
        "rows must divide evenly across cores");
}

}  // namespace

StreamOutcome run_streaming_benchmark(ttmetal::Device& device,
                                      const StreamParams& params) {
  validate(params);
  const StreamParams p = params;
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(p.rows) * p.row_bytes;
  const int repl = std::max(1, p.replication);

  ttmetal::BufferConfig buf_cfg;
  buf_cfg.size = total_bytes;
  if (p.interleave_page != 0) {
    buf_cfg.layout = ttmetal::BufferLayout::kInterleaved;
    buf_cfg.page_size = p.interleave_page;
  }
  auto in_buf = device.create_buffer(buf_cfg);
  auto out_buf = device.create_buffer(buf_cfg);

  // Seed the input with a deterministic integer pattern.
  std::vector<std::uint32_t> host_in(total_bytes / 4);
  for (std::size_t i = 0; i < host_in.size(); ++i)
    host_in[i] = static_cast<std::uint32_t>(i * 2654435761u + 12345u);
  device.write_buffer(*in_buf, std::as_bytes(std::span{host_in}));

  ttmetal::Program prog;
  std::vector<int> cores;
  for (int c = 0; c < p.num_cores; ++c) cores.push_back(c);
  const std::uint32_t slice_rows = p.rows / static_cast<std::uint32_t>(p.num_cores);

  TTSIM_CHECK_MSG(p.cb_pages >= 1, "need at least one conveyor page");
  prog.create_cb(kCbConveyor, cores, p.row_bytes, p.cb_pages);
  const auto scratch = prog.create_l1_buffer(cores, p.read_batch);
  const auto local_row =
      p.via_local_buffer ? prog.create_l1_buffer(cores, p.row_bytes) : -1;
  const std::uint32_t scratch_addr = prog.l1_buffer_address(scratch);
  const std::uint32_t local_addr =
      p.via_local_buffer ? prog.l1_buffer_address(local_row) : 0;

  const std::uint64_t in_base = in_buf->address();
  const std::uint64_t out_base = out_buf->address();

  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [p, repl, slice_rows, in_base, scratch_addr, local_addr](
          ttmetal::DataMoverCtx& ctx) {
        const std::uint32_t row_lo =
            static_cast<std::uint32_t>(ctx.position()) * slice_rows;
        const std::uint32_t reads_per_page = p.row_bytes / p.read_batch;
        std::uint64_t k = 0;
        for (std::uint32_t page = 0; page < slice_rows; ++page) {
          ctx.cb_reserve_back(kCbConveyor, 1);
          const std::uint32_t target =
              p.via_local_buffer ? local_addr : ctx.get_write_ptr(kCbConveyor);
          for (std::uint32_t i = 0; i < reads_per_page; ++i, ++k) {
            const std::uint64_t off = batch_offset(p.contiguous, k, p.row_bytes,
                                                   p.read_batch, row_lo, slice_rows);
            for (int r = 1; r < repl; ++r) {
              ctx.noc_async_read(
                  ctx.get_noc_addr(in_base +
                                   previous_row_offset(off, r, p.row_bytes, p.rows)),
                  scratch_addr, p.read_batch);
              if (p.read_sync_each) ctx.noc_async_read_barrier();
            }
            ctx.noc_async_read(ctx.get_noc_addr(in_base + off),
                               target + i * p.read_batch, p.read_batch);
            if (p.read_sync_each) ctx.noc_async_read_barrier();
          }
          ctx.noc_async_read_barrier();
          if (p.via_local_buffer) {
            ctx.l1_memcpy(ctx.get_write_ptr(kCbConveyor), local_addr, p.row_bytes);
          }
          ctx.cb_push_back(kCbConveyor, 1);
          ctx.loop_tick();
        }
      },
      "stream_reader");

  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [p, slice_rows, out_base](ttmetal::DataMoverCtx& ctx) {
        const std::uint32_t row_lo =
            static_cast<std::uint32_t>(ctx.position()) * slice_rows;
        const std::uint32_t writes_per_page = p.row_bytes / p.write_batch;
        std::uint64_t k = 0;
        for (std::uint32_t page = 0; page < slice_rows; ++page) {
          ctx.cb_wait_front(kCbConveyor, 1);
          const std::uint32_t src = ctx.get_read_ptr(kCbConveyor);
          for (std::uint32_t i = 0; i < writes_per_page; ++i, ++k) {
            const std::uint64_t off = batch_offset(p.contiguous, k, p.row_bytes,
                                                   p.write_batch, row_lo, slice_rows);
            ctx.noc_async_write(src + i * p.write_batch,
                                ctx.get_noc_addr(out_base + off), p.write_batch);
            if (p.write_sync_each) ctx.noc_async_write_barrier();
          }
          ctx.noc_async_write_barrier();
          ctx.cb_pop_front(kCbConveyor, 1);
          ctx.loop_tick();
        }
      },
      "stream_writer");

  device.run_program(prog);

  StreamOutcome out;
  out.kernel_time = device.last_kernel_duration();
  out.bytes_read = total_bytes;
  out.bytes_written = total_bytes;

  if (p.verify) {
    std::vector<std::uint32_t> host_out(total_bytes / 4);
    device.read_buffer(*out_buf, std::as_writable_bytes(std::span{host_out}));
    // Expected output: per core, the reader's byte stream lands at the
    // writer's traversal addresses in order.
    std::vector<std::uint32_t> expected(total_bytes / 4);
    const std::uint8_t* in_bytes = reinterpret_cast<const std::uint8_t*>(host_in.data());
    std::uint8_t* exp_bytes = reinterpret_cast<std::uint8_t*>(expected.data());
    for (int c = 0; c < p.num_cores; ++c) {
      const std::uint32_t row_lo = static_cast<std::uint32_t>(c) * slice_rows;
      const std::uint64_t slice_bytes =
          static_cast<std::uint64_t>(slice_rows) * p.row_bytes;
      const std::uint64_t n_read = slice_bytes / p.read_batch;
      const std::uint64_t n_write = slice_bytes / p.write_batch;
      std::vector<std::uint64_t> rseq(n_read), wseq(n_write);
      for (std::uint64_t k = 0; k < n_read; ++k)
        rseq[k] = batch_offset(p.contiguous, k, p.row_bytes, p.read_batch, row_lo,
                               slice_rows);
      for (std::uint64_t k = 0; k < n_write; ++k)
        wseq[k] = batch_offset(p.contiguous, k, p.row_bytes, p.write_batch, row_lo,
                               slice_rows);
      // Walk both sequences byte-for-byte.
      const std::uint32_t g = std::min(p.read_batch, p.write_batch);
      const std::uint32_t rg = p.read_batch / g, wg = p.write_batch / g;
      const std::uint64_t chunks = slice_bytes / g;
      for (std::uint64_t k = 0; k < chunks; ++k) {
        const std::uint64_t src = rseq[k / rg] + (k % rg) * g;
        const std::uint64_t dst = wseq[k / wg] + (k % wg) * g;
        std::memcpy(exp_bytes + dst, in_bytes + src, g);
      }
    }
    out.verified_ok =
        std::memcmp(expected.data(), host_out.data(), total_bytes) == 0;
  }
  return out;
}

StreamOutcome run_streaming_benchmark(const StreamParams& params,
                                      sim::GrayskullSpec spec) {
  // The streaming probe measures timing down to 4-byte requests; run it on a
  // permissive controller so sub-32-byte accesses stay functionally intact
  // (the alignment fault study lives in the DRAM tests and Jacobi path).
  spec.alignment_policy = sim::AlignmentPolicy::kPermissive;
  auto device = ttmetal::Device::open(spec);
  return run_streaming_benchmark(*device, params);
}

}  // namespace ttsim::stream
