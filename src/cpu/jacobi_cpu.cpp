#include "ttsim/cpu/jacobi_cpu.hpp"

#include <chrono>
#include <utility>

#ifdef TTSIM_HAVE_OPENMP
#include <omp.h>
#endif

namespace ttsim::cpu {
namespace {

/// Working grid with one halo cell on each side; (width+2) x (height+2).
template <typename T>
struct HaloGrid {
  std::uint32_t width, height;
  std::vector<T> data;

  HaloGrid(std::uint32_t w, std::uint32_t h) : width(w), height(h) {
    data.assign(static_cast<std::size_t>(w + 2) * (h + 2), T{0.0f});
  }
  T& at(std::int64_t row, std::int64_t col) {
    return data[static_cast<std::size_t>(row + 1) * (width + 2) +
                static_cast<std::size_t>(col + 1)];
  }
  T at(std::int64_t row, std::int64_t col) const {
    return data[static_cast<std::size_t>(row + 1) * (width + 2) +
                static_cast<std::size_t>(col + 1)];
  }
};

template <typename T>
HaloGrid<T> initial_grid(const core::JacobiProblem& p) {
  HaloGrid<T> g(p.width, p.height);
  for (std::int64_t r = 0; r < p.height; ++r) {
    g.at(r, -1) = T{p.bc_left};
    for (std::int64_t c = 0; c < p.width; ++c) g.at(r, c) = T{p.initial};
    g.at(r, p.width) = T{p.bc_right};
  }
  for (std::int64_t c = 0; c < p.width; ++c) {
    g.at(-1, c) = T{p.bc_top};
    g.at(p.height, c) = T{p.bc_bottom};
  }
  return g;
}

template <typename T>
std::vector<T> interior_of(const HaloGrid<T>& g) {
  std::vector<T> out(static_cast<std::size_t>(g.width) * g.height);
  for (std::uint32_t r = 0; r < g.height; ++r) {
    for (std::uint32_t c = 0; c < g.width; ++c) {
      out[static_cast<std::size_t>(r) * g.width + c] = g.at(r, c);
    }
  }
  return out;
}

void sweep_f32(const HaloGrid<float>& u, HaloGrid<float>& unew, int threads) {
  const std::int64_t h = u.height, w = u.width;
#ifdef TTSIM_HAVE_OPENMP
#pragma omp parallel for num_threads(threads) schedule(static)
#endif
  for (std::int64_t r = 0; r < h; ++r) {
    for (std::int64_t c = 0; c < w; ++c) {
      unew.at(r, c) = 0.25f * (u.at(r + 1, c) + u.at(r - 1, c) + u.at(r, c + 1) +
                               u.at(r, c - 1));
    }
  }
  (void)threads;
}

}  // namespace

std::vector<float> jacobi_reference_f32(const core::JacobiProblem& p, int threads) {
  auto u = initial_grid<float>(p);
  auto unew = u;  // boundary cells preserved across swaps
  for (int it = 0; it < p.iterations; ++it) {
    sweep_f32(u, unew, threads);
    std::swap(u, unew);
  }
  return interior_of(u);
}

std::vector<bfloat16_t> jacobi_reference_bf16(const core::JacobiProblem& p) {
  return jacobi_reference_bf16_cards(p, 1);
}

std::vector<bfloat16_t> jacobi_reference_bf16_cards(const core::JacobiProblem& p,
                                                    int cards) {
  TTSIM_CHECK(cards >= 1);
  auto u = initial_grid<bfloat16_t>(p);
  auto unew = u;
  // Card cut rows: the domain splits into `cards` horizontal slabs; rows on
  // either side of a cut see a frozen halo (the neighbour slab's values
  // never propagate — paper Section VII's admitted incorrectness).
  std::vector<std::int64_t> slab_of(p.height);
  {
    const std::int64_t base = p.height / cards, extra = p.height % cards;
    std::int64_t row = 0;
    for (std::int64_t s = 0; s < cards; ++s) {
      const std::int64_t n = base + (s < extra ? 1 : 0);
      for (std::int64_t k = 0; k < n; ++k) slab_of[static_cast<std::size_t>(row++)] = s;
    }
  }
  for (int it = 0; it < p.iterations; ++it) {
    for (std::int64_t r = 0; r < p.height; ++r) {
      for (std::int64_t c = 0; c < p.width; ++c) {
        // Cross-cut neighbours read the frozen initial value.
        const bool cut_up = r > 0 && slab_of[static_cast<std::size_t>(r)] !=
                                         slab_of[static_cast<std::size_t>(r - 1)];
        const bool cut_down = r + 1 < p.height &&
                              slab_of[static_cast<std::size_t>(r)] !=
                                  slab_of[static_cast<std::size_t>(r + 1)];
        const bfloat16_t ym = cut_up ? bfloat16_t{p.initial} : u.at(r - 1, c);
        const bfloat16_t yp = cut_down ? bfloat16_t{p.initial} : u.at(r + 1, c);
        const bfloat16_t xm = u.at(r, c - 1);
        const bfloat16_t xp = u.at(r, c + 1);
        // Device operation order: ((xm + xp) + ym) + yp, then * 0.25.
        const bfloat16_t sum = ((xm + xp) + ym) + yp;
        unew.at(r, c) = sum * bfloat16_t{0.25f};
      }
    }
    std::swap(u, unew);
  }
  return interior_of(u);
}

HostMeasurement measure_host_jacobi(const core::JacobiProblem& p, int threads) {
  auto u = initial_grid<float>(p);
  auto unew = u;
  const auto t0 = std::chrono::steady_clock::now();
  for (int it = 0; it < p.iterations; ++it) {
    sweep_f32(u, unew, threads);
    std::swap(u, unew);
  }
  const auto t1 = std::chrono::steady_clock::now();
  HostMeasurement m;
  m.threads = threads;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.gpts = m.seconds > 0
               ? static_cast<double>(p.total_updates()) / 1e9 / m.seconds
               : 0.0;
  // Keep the optimiser honest about the result.
  volatile float sink = u.at(0, 0);
  (void)sink;
  return m;
}

int max_host_threads() {
#ifdef TTSIM_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace ttsim::cpu
