#pragma once
/// \file jacobi_cpu.hpp
/// CPU reference implementations of the Jacobi solver:
///   * FP32 scalar / OpenMP — the paper's CPU baseline (Listing 1);
///   * BF16-exact — replays the device's arithmetic (operation order and
///     rounding) for bit-exact verification of device results;
///   * a host wall-clock measurement harness for live baselines.

#include <vector>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/core/problem.hpp"

namespace ttsim::cpu {

/// FP32 reference (Listing 1). `threads` > 1 uses OpenMP when available.
/// Returns the interior, row-major width x height.
std::vector<float> jacobi_reference_f32(const core::JacobiProblem& p, int threads = 1);

/// BF16 reference replaying the device operation order:
/// bf16(bf16(bf16(bf16(xm + xp) + ym) + yp) * 0.25) per point. Device runs
/// must match this bit for bit.
std::vector<bfloat16_t> jacobi_reference_bf16(const core::JacobiProblem& p);

/// BF16 reference for a multi-card split: the domain is cut into `cards`
/// horizontal slabs whose cut edges are frozen at the initial guess (cards
/// cannot exchange halos — paper Section VII).
std::vector<bfloat16_t> jacobi_reference_bf16_cards(const core::JacobiProblem& p,
                                                    int cards);

/// Live host measurement of the FP32 solver (this machine, not the paper's
/// Xeon — see XeonModel for paper-comparable numbers).
struct HostMeasurement {
  double seconds = 0.0;
  double gpts = 0.0;
  int threads = 1;
};
HostMeasurement measure_host_jacobi(const core::JacobiProblem& p, int threads = 1);

/// Number of OpenMP threads available (1 when built without OpenMP).
int max_host_threads();

}  // namespace ttsim::cpu
