#pragma once
/// \file xeon_model.hpp
/// Performance/energy model of the paper's CPU comparator — a 24-core
/// 8260M Cascade Lake Xeon Platinum running the FP32 OpenMP Jacobi.
///
/// The container this reproduction runs on is not that Xeon, so
/// paper-comparable CPU rows come from this model, calibrated to the
/// paper's own measurements:
///   * Table I / VIII: single core 1.41 GPt/s; 24 cores 21.61 GPt/s
///     (parallel efficiency falls off as the memory system saturates);
///   * Table VIII RAPL energy: 1 core 1657 J (≈49.5 W) and 24 cores 588 J
///     (≈270 W) for the 47.2 G-update problem, giving a base + per-active-
///     core power decomposition of ≈39.9 W + 9.6 W/core.
/// Live measurements of the same algorithm on the present host are
/// available via cpu::measure_host_jacobi for sanity checks.

#include "ttsim/core/problem.hpp"

namespace ttsim::cpu {

struct XeonModel {
  double single_core_gpts = 1.41;
  /// Efficiency loss per extra core; solves 24 cores -> 21.61 GPt/s.
  double contention = 0.0248;
  double base_power_w = 39.9;
  double per_core_power_w = 9.6;
  int max_cores = 24;

  double gpts(int cores) const {
    return single_core_gpts * cores /
           (1.0 + contention * static_cast<double>(cores - 1));
  }

  double seconds(const core::JacobiProblem& p, int cores) const {
    return static_cast<double>(p.total_updates()) / 1e9 / gpts(cores);
  }

  double power_w(int cores) const {
    return base_power_w + per_core_power_w * static_cast<double>(cores);
  }

  /// RAPL-style energy-to-solution.
  double joules(const core::JacobiProblem& p, int cores) const {
    return seconds(p, cores) * power_w(cores);
  }
};

}  // namespace ttsim::cpu
