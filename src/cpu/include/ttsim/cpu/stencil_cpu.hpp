#pragma once
/// \file stencil_cpu.hpp
/// CPU references for the generic weighted stencil (FP32 and BF16-exact),
/// mirroring the device's operation order: centre product first, then the
/// W, E, N, S taps each as a rounded BF16 product added in sequence.

#include "ttsim/core/stencil_spec.hpp"

namespace ttsim::cpu {

std::vector<float> stencil_reference_f32(const core::StencilProblem& p,
                                         int threads = 1);

/// Bit-exact replay of the device arithmetic.
std::vector<bfloat16_t> stencil_reference_bf16(const core::StencilProblem& p);

/// References for the general radius-1 frontend (multi-field, multi-pass,
/// optional threshold post-op). Passes apply in order with immediate
/// visibility: a pass reading a field an earlier pass updated this
/// iteration sees the new values — the same semantics the device's
/// per-pass buffer parity implements. Returns one interior (row-major
/// width*height) per field, in field order.
std::vector<std::vector<float>> general_reference_f32(
    const core::GeneralStencilProblem& p);

/// Bit-exact replay of the device arithmetic for the general frontend:
/// terms in listed order, every product and sum rounded to BF16, the Life
/// post-op as (S==3) + (S==2)*self with BF16 compares.
std::vector<std::vector<bfloat16_t>> general_reference_bf16(
    const core::GeneralStencilProblem& p);

}  // namespace ttsim::cpu
