#pragma once
/// \file stencil_cpu.hpp
/// CPU references for the generic weighted stencil (FP32 and BF16-exact),
/// mirroring the device's operation order: centre product first, then the
/// W, E, N, S taps each as a rounded BF16 product added in sequence.

#include "ttsim/core/stencil_spec.hpp"

namespace ttsim::cpu {

std::vector<float> stencil_reference_f32(const core::StencilProblem& p,
                                         int threads = 1);

/// Bit-exact replay of the device arithmetic.
std::vector<bfloat16_t> stencil_reference_bf16(const core::StencilProblem& p);

}  // namespace ttsim::cpu
