#include "ttsim/cpu/stencil_cpu.hpp"

#include <utility>

namespace ttsim::cpu {
namespace {

template <typename T>
struct Halo {
  std::uint32_t w, h;
  std::vector<T> d;
  Halo(std::uint32_t w_, std::uint32_t h_) : w(w_), h(h_) {
    d.assign(static_cast<std::size_t>(w + 2) * (h + 2), T{0.0f});
  }
  T& at(std::int64_t r, std::int64_t c) {
    return d[static_cast<std::size_t>(r + 1) * (w + 2) + static_cast<std::size_t>(c + 1)];
  }
  T at(std::int64_t r, std::int64_t c) const {
    return d[static_cast<std::size_t>(r + 1) * (w + 2) + static_cast<std::size_t>(c + 1)];
  }
};

template <typename T>
Halo<T> init(const core::StencilProblem& p) {
  Halo<T> g(p.width, p.height);
  for (std::int64_t r = 0; r < p.height; ++r) {
    g.at(r, -1) = T{p.bc_left};
    for (std::int64_t c = 0; c < p.width; ++c) {
      const float v = p.initial_field.empty()
                          ? p.initial
                          : p.initial_field[static_cast<std::size_t>(r) * p.width +
                                            static_cast<std::size_t>(c)];
      g.at(r, c) = T{v};
    }
    g.at(r, p.width) = T{p.bc_right};
  }
  for (std::int64_t c = 0; c < p.width; ++c) {
    g.at(-1, c) = T{p.bc_top};
    g.at(p.height, c) = T{p.bc_bottom};
  }
  return g;
}

template <typename T>
std::vector<T> interior(const Halo<T>& g) {
  std::vector<T> out(static_cast<std::size_t>(g.w) * g.h);
  for (std::uint32_t r = 0; r < g.h; ++r) {
    for (std::uint32_t c = 0; c < g.w; ++c) {
      out[static_cast<std::size_t>(r) * g.w + c] = g.at(r, c);
    }
  }
  return out;
}

template <typename T>
Halo<T> init_field(const core::GeneralStencilProblem& p, const core::FieldSpec& f) {
  Halo<T> g(p.width, p.height);
  for (std::int64_t r = 0; r < p.height; ++r) {
    g.at(r, -1) = T{f.bc_left};
    for (std::int64_t c = 0; c < p.width; ++c) {
      const float v = f.initial_field.empty()
                          ? f.initial
                          : f.initial_field[static_cast<std::size_t>(r) * p.width +
                                            static_cast<std::size_t>(c)];
      g.at(r, c) = T{v};
    }
    g.at(r, p.width) = T{f.bc_right};
  }
  for (std::int64_t c = 0; c < p.width; ++c) {
    g.at(-1, c) = T{f.bc_top};
    g.at(p.height, c) = T{f.bc_bottom};
  }
  return g;
}

/// One full run of the general program over halo grids of type T. The tap
/// sum follows the contract exactly (terms in listed order, first product
/// seeds the accumulator); in T = bfloat16_t every operation rounds as the
/// FPU does, making this the bit-exact device oracle.
template <typename T>
std::vector<std::vector<T>> run_general(const core::GeneralStencilProblem& p) {
  p.validate();
  std::vector<Halo<T>> u;
  u.reserve(p.fields.size());
  for (const auto& f : p.fields) u.push_back(init_field<T>(p, f));

  for (int it = 0; it < p.iterations; ++it) {
    for (const auto& pass : p.passes) {
      // Compute into a scratch clone, then swap in: the pass reads its own
      // target's pre-pass values, and later passes see the update.
      Halo<T> out = u[static_cast<std::size_t>(pass.target)];
      for (std::int64_t r = 0; r < p.height; ++r) {
        for (std::int64_t c = 0; c < p.width; ++c) {
          bool first = true;
          T acc{0.0f};
          for (const auto& term : pass.terms) {
            const auto& g = u[static_cast<std::size_t>(term.field)];
            const T v = g.at(r + core::tap_dr(term.tap), c + core::tap_dc(term.tap));
            const T prod = T{term.weight} * v;
            acc = first ? prod : acc + prod;
            first = false;
          }
          if (pass.post == core::PostOp::kLife) {
            // Device order: birth mask, survive mask, survive*self, then
            // birth + survive*self. Exact in BF16 (small integers, 0/1).
            const T birth{static_cast<float>(acc) == 3.0f ? 1.0f : 0.0f};
            const T survive{static_cast<float>(acc) == 2.0f ? 1.0f : 0.0f};
            const T self =
                u[static_cast<std::size_t>(pass.post_self_field)].at(r, c);
            acc = birth + survive * self;
          }
          out.at(r, c) = acc;
        }
      }
      std::swap(u[static_cast<std::size_t>(pass.target)], out);
    }
  }

  std::vector<std::vector<T>> result;
  result.reserve(u.size());
  for (const auto& g : u) result.push_back(interior(g));
  return result;
}

}  // namespace

std::vector<std::vector<float>> general_reference_f32(
    const core::GeneralStencilProblem& p) {
  return run_general<float>(p);
}

std::vector<std::vector<bfloat16_t>> general_reference_bf16(
    const core::GeneralStencilProblem& p) {
  return run_general<bfloat16_t>(p);
}

std::vector<float> stencil_reference_f32(const core::StencilProblem& p, int threads) {
  auto u = init<float>(p);
  auto unew = u;
  const auto& s = p.stencil;
  for (int it = 0; it < p.iterations; ++it) {
#ifdef TTSIM_HAVE_OPENMP
#pragma omp parallel for num_threads(threads) schedule(static)
#endif
    for (std::int64_t r = 0; r < p.height; ++r) {
      for (std::int64_t c = 0; c < p.width; ++c) {
        unew.at(r, c) = s.wc * u.at(r, c) + s.ww * u.at(r, c - 1) +
                        s.we * u.at(r, c + 1) + s.wn * u.at(r - 1, c) +
                        s.ws * u.at(r + 1, c);
      }
    }
    std::swap(u, unew);
  }
  (void)threads;
  return interior(u);
}

std::vector<bfloat16_t> stencil_reference_bf16(const core::StencilProblem& p) {
  auto u = init<bfloat16_t>(p);
  auto unew = u;
  const auto& s = p.stencil;
  // Device op order: product per active tap (centre, W, E, N, S), summed
  // left to right, each operation rounded to BF16.
  const std::pair<float, int> taps[] = {
      {s.wc, 0}, {s.ww, 1}, {s.we, 2}, {s.wn, 3}, {s.ws, 4}};
  for (int it = 0; it < p.iterations; ++it) {
    for (std::int64_t r = 0; r < p.height; ++r) {
      for (std::int64_t c = 0; c < p.width; ++c) {
        bool first = true;
        bfloat16_t acc{0.0f};
        for (const auto& [w, which] : taps) {
          if (w == 0.0f) continue;
          bfloat16_t v;
          switch (which) {
            case 0: v = u.at(r, c); break;
            case 1: v = u.at(r, c - 1); break;
            case 2: v = u.at(r, c + 1); break;
            case 3: v = u.at(r - 1, c); break;
            default: v = u.at(r + 1, c); break;
          }
          const bfloat16_t term = bfloat16_t{w} * v;
          acc = first ? term : acc + term;
          first = false;
        }
        unew.at(r, c) = acc;
      }
    }
    std::swap(u, unew);
  }
  return interior(u);
}

}  // namespace ttsim::cpu
