/// \file stencil_service.cpp
/// The multi-tenant stencil-serving frontend: admission (with SLO checks and
/// load shedding), shape-keyed session cache, batching scheduler, the
/// three-queue async pipeline per card, and the resilience layer —
/// checkpoint/migration, the per-card health state machine, and typed-error
/// fault recovery by card reopen. See serve.hpp for the design overview.

#include "ttsim/serve/serve.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <tuple>
#include <utility>

#include "ttsim/common/check.hpp"
#include "ttsim/core/jacobi_batch.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim::serve {

namespace {
/// Batches in flight per card: 2 gives write/compute overlap with the
/// double-banked slot buffers; deeper would let a third batch's H2D land in
/// a bank whose reads have not drained.
constexpr std::size_t kPipelineDepth = 2;
}  // namespace

const char* to_string(CardHealth health) {
  switch (health) {
    case CardHealth::kHealthy: return "healthy";
    case CardHealth::kDegraded: return "degraded";
    case CardHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ServiceMetrics

SimTime ServiceMetrics::latency_percentile(double p) const {
  std::vector<SimTime> all;
  for (const auto& [tenant, stats] : tenants)
    all.insert(all.end(), stats.latencies.begin(), stats.latencies.end());
  if (all.empty()) return 0;
  std::sort(all.begin(), all.end());
  double rank = p * static_cast<double>(all.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (idx >= all.size()) idx = all.size() - 1;
  return all[idx];
}

std::uint64_t ServiceMetrics::total_completed() const {
  std::uint64_t n = 0;
  for (const auto& [tenant, stats] : tenants) n += stats.completed;
  return n;
}

// ---------------------------------------------------------------------------
// Internal structures

struct StencilService::Pending {
  Request req;
  ShapeKey key;  ///< shape of the NEXT segment (tracks remaining sweeps)
  int iterations_done = 0;  ///< sweeps completed across prior segments
  /// State after iterations_done sweeps: one checkpoint for classic Jacobi,
  /// one per field for general programs (read-only fields stay empty — they
  /// restage from the program spec). Sharded sessions seal the GLOBAL
  /// padded image(s) here — the whole-domain numerical state, so the next
  /// segment's group may be ANY set of cards.
  std::vector<SessionCheckpoint> ckpt;
  int ckpt_card = -1;  ///< card that produced the checkpoint
  /// Sharded multi-card sessions: cards this request's slabs must spread
  /// over (0 = a normal single-card request), and the group that ran the
  /// previous segment (a different group counts as a migration).
  int shard_cards = 0;
  std::vector<int> group;
};

struct StencilService::Session {
  explicit Session(const ShapeKey& k) : key(k), layout(k.width, k.height) {}

  ShapeKey key;
  core::PaddedLayout layout;
  /// groups[g] = the physical workers serving batch slot g.
  std::vector<std::vector<int>> groups;
  /// banks[bank][g] = {d1, d2} grid buffers for slot g. Two banks so batch
  /// j+1's H2D staging can overlap batch j's kernels without a hazard.
  std::array<std::vector<std::array<std::shared_ptr<ttmetal::Buffer>, 2>>, 2> banks;
  /// General-frontend sessions only: the program structure the key's hash
  /// pins (the first request's problem; same hash = same lowering), and
  /// per-field double-banked buffers — gbanks[bank][g][f] is field f's d1,
  /// gbanks[bank][g][nfields+f] its d2 (null for read-only fields).
  std::optional<core::GeneralStencilProblem> general;
  std::array<std::vector<std::vector<std::shared_ptr<ttmetal::Buffer>>>, 2> gbanks;
  /// Compiled batch programs, keyed by (bank, batch width B). Programs are
  /// reusable across launches, so each (bank, B) compiles once.
  std::map<std::pair<int, int>, std::unique_ptr<ttmetal::Program>> programs;
  int next_bank = 0;
};

struct StencilService::InFlight {
  std::vector<std::uint64_t> members;  ///< ticket ids, slot order
  ShapeKey key;
  int bank = 0;
  SimTime dispatched = 0;
  ttmetal::Event write_done, kernel_done, read_done;
  /// Read destinations, per member: one image for a finishing member (the
  /// delivered field) or, for a continuing general member, one per written
  /// field in field order (the next segment's checkpoints).
  std::vector<std::vector<std::vector<bfloat16_t>>> outputs;
  std::vector<std::uint8_t> continues;  ///< per member: more segments left
};

struct StencilService::Card {
  int index = 0;
  /// This card's device-family spec (cfg_.spec or its card_specs override);
  /// reopens use it so a Wormhole comes back a Wormhole.
  sim::DeviceSpec spec;
  /// This card's device config (cfg_.device or its card_devices override);
  /// reopens after faults and probes reuse it so the card keeps its own
  /// fault plan across generations.
  ttmetal::DeviceConfig dev_cfg;
  // The device must outlive the sessions (Buffer destructors release their
  // allocation on the device), so it is declared first / destroyed last.
  std::unique_ptr<ttmetal::Device> device;
  std::map<ShapeKey, std::unique_ptr<Session>> sessions;
  std::deque<InFlight> inflight;

  // -- health state machine (see health.hpp) --
  CardHealth health = CardHealth::kHealthy;
  int consecutive_failures = 0;
  int clean_streak = 0;   ///< clean harvests since degraded (readmission)
  SimTime probe_at = 0;   ///< quarantined: earliest readmission probe time
  bool retired = false;   ///< probe found dead silicon; never serves again
};

// ---------------------------------------------------------------------------
// Construction

StencilService::StencilService(ServiceConfig config)
    : cfg_(std::move(config)), spans_(span_engine_) {
  if (cfg_.cards < 1) TTSIM_THROW_API("service needs at least one card");
  if (cfg_.run.strategy != core::DeviceStrategy::kRowChunk &&
      cfg_.run.strategy != core::DeviceStrategy::kTemporal) {
    TTSIM_THROW_API("serving is built on the row-chunk or temporal strategies");
  }
  if (cfg_.run.cores_x < 1 || cfg_.run.cores_y < 1) {
    TTSIM_THROW_API("need at least a 1x1 core grid per batch slot");
  }
  if (cfg_.max_batch < 1) TTSIM_THROW_API("max_batch must be >= 1");
  if (cfg_.queue_capacity < 1) TTSIM_THROW_API("queue_capacity must be >= 1");
  if (cfg_.max_retries < 0) TTSIM_THROW_API("max_retries must be >= 0");
  if (cfg_.checkpoint_every < 0) TTSIM_THROW_API("checkpoint_every must be >= 0");
  if (cfg_.health.quarantine_after < 1) {
    TTSIM_THROW_API("quarantine_after must be >= 1");
  }
  if (cfg_.health.readmit_successes < 1) {
    TTSIM_THROW_API("readmit_successes must be >= 1");
  }
  if (!cfg_.card_devices.empty() &&
      cfg_.card_devices.size() != static_cast<std::size_t>(cfg_.cards)) {
    TTSIM_THROW_API("card_devices must be empty or have one entry per card");
  }
  if (!cfg_.card_specs.empty() &&
      cfg_.card_specs.size() != static_cast<std::size_t>(cfg_.cards)) {
    TTSIM_THROW_API("card_specs must be empty or have one entry per card");
  }
  for (int i = 0; i < cfg_.cards; ++i) {
    auto card = std::make_unique<Card>();
    card->index = i;
    card->spec = cfg_.card_specs.empty()
                     ? cfg_.spec
                     : cfg_.card_specs[static_cast<std::size_t>(i)];
    card->dev_cfg = cfg_.card_devices.empty()
                        ? cfg_.device
                        : cfg_.card_devices[static_cast<std::size_t>(i)];
    card->device = ttmetal::Device::open(card->spec, card->dev_cfg);
    const int slot = cfg_.run.cores_x * cfg_.run.cores_y;
    if (slot > card->device->num_workers()) {
      TTSIM_THROW_API("a batch slot needs " << slot << " cores but the card has "
                                            << card->device->num_workers());
    }
    cards_.push_back(std::move(card));
  }
}

StencilService::~StencilService() = default;

// ---------------------------------------------------------------------------
// Spans

int StencilService::tenant_track(int tenant) {
  auto it = tenant_tracks_.find(tenant);
  if (it != tenant_tracks_.end()) return it->second;
  std::ostringstream name;
  name << "tenant" << tenant;
  const int id = spans_.track(name.str());
  tenant_tracks_.emplace(tenant, id);
  return id;
}

int StencilService::card_track(int card) {
  auto it = card_tracks_.find(card);
  if (it != card_tracks_.end()) return it->second;
  std::ostringstream name;
  name << "card" << card;
  const int id = spans_.track(name.str());
  card_tracks_.emplace(card, id);
  return id;
}

void StencilService::record_span(sim::TraceEventKind kind, SimTime ts, SimTime dur,
                                 int track, std::uint64_t req, std::int32_t b) {
  if (!cfg_.record_spans) return;
  sim::TraceSink::Rec rec;
  rec.b = b;
  rec.addr = req;  // the ticket id ties spans of one request together
  spans_.record(kind, ts, dur, rec, track);
}

// ---------------------------------------------------------------------------
// Admission

ShapeKey StencilService::effective_key(const Pending& p) const {
  ShapeKey key;
  if (p.req.general) {
    key.width = p.req.general->width;
    key.height = p.req.general->height;
    int remaining = p.req.general->iterations - p.iterations_done;
    if (cfg_.checkpoint_every > 0) {
      remaining = std::min(remaining, cfg_.checkpoint_every);
    }
    key.iterations = remaining;
    key.program = p.req.general->transition_hash();
  } else {
    key.width = p.req.problem.width;
    key.height = p.req.problem.height;
    int remaining = p.req.problem.iterations - p.iterations_done;
    if (cfg_.checkpoint_every > 0) {
      remaining = std::min(remaining, cfg_.checkpoint_every);
    }
    key.iterations = remaining;
  }
  key.chunk_elems = cfg_.run.chunk_elems;
  key.read_ahead = cfg_.run.read_ahead;
  const auto strat = p.req.strategy.value_or(cfg_.run.strategy);
  key.strategy = static_cast<int>(strat);
  key.temporal_depth =
      strat == core::DeviceStrategy::kTemporal
          ? (p.req.temporal_depth > 0 ? p.req.temporal_depth
                                      : cfg_.run.temporal_depth)
          : 1;
  return key;
}

core::DeviceRunConfig StencilService::run_for(const ShapeKey& key) const {
  core::DeviceRunConfig run = cfg_.run;
  run.strategy = static_cast<core::DeviceStrategy>(key.strategy);
  run.temporal_depth = key.temporal_depth;
  return run;
}

int StencilService::active_slots() const {
  int slots = 0;
  const int slot = cfg_.run.cores_x * cfg_.run.cores_y;
  for (const auto& c : cards_) {
    if (c->retired || c->health == CardHealth::kQuarantined) continue;
    const int usable = static_cast<int>(c->device->usable_workers().size());
    slots += std::min(usable / slot, cfg_.max_batch);
  }
  return slots;
}

SimTime StencilService::estimate_completion(const Request& request) const {
  // Cost history is per (program, spec): a gallery batch can run at a
  // fraction of a Jacobi batch's cost, and a Wormhole retires the same
  // program at a different cost than a Grayskull — either collapse would
  // over-reject cheap (workload, card) pairings and under-reject expensive
  // ones the moment tenants or family members mix. The estimate takes the
  // MINIMUM cost across specs with history: the scheduler is free to place
  // the batch on the fastest family member, so rejecting against a slower
  // card's cost would turn admission pessimistic on exactly the requests a
  // mixed pool exists to serve.
  const std::uint64_t prog =
      request.general ? request.general->transition_hash() : 0;
  auto cheapest = [&](std::uint64_t program) -> SimTime {
    SimTime best = 0;
    for (const auto& [key, e] : ewma_batch_) {
      if (key.first != program || e == 0) continue;
      if (best == 0 || e < best) best = e;
    }
    return best;
  };
  const SimTime own = cheapest(prog);
  // No history for THIS program on ANY spec: admit optimistically.
  if (own == 0) return 0;
  const int slots = active_slots();
  if (slots < 1) return 0;  // pool is down; admission is not the gate
  // Work queued ahead of this request, each entry at its own program's
  // cost (unknown programs assumed to cost like the newcomer's), spread
  // over the pool's slots; then the newcomer's own segments.
  SimTime queued = 0;
  for (std::uint64_t id : pending_) {
    const SimTime e = cheapest(requests_.at(id).key.program);
    queued += e != 0 ? e : own;
  }
  SimTime segments = 1;
  if (cfg_.checkpoint_every > 0) {
    const int total = request.general ? request.general->iterations
                                      : request.problem.iterations;
    segments = (total + cfg_.checkpoint_every - 1) / cfg_.checkpoint_every;
  }
  return std::max(service_now_, request.arrival) +
         queued / static_cast<SimTime>(slots) + own * segments;
}

SimTime StencilService::backpressure_hint() const {
  if (!cfg_.adaptive_retry || ewma_batch_.empty()) return cfg_.retry_after;
  const int slots = active_slots();
  if (slots < 1) return cfg_.retry_after;
  // Drain time of the queue at per-program costs; programs with no history
  // yet cost the pool mean.
  SimTime mean = 0;
  SimTime n = 0;
  for (const auto& [key, e] : ewma_batch_) {
    if (e == 0) continue;
    mean += e;
    ++n;
  }
  if (n == 0) return cfg_.retry_after;
  mean /= n;
  SimTime queued = 0;
  for (std::uint64_t id : pending_) {
    // Cheapest spec with history for this program; pool mean otherwise.
    const std::uint64_t prog = requests_.at(id).key.program;
    SimTime best = 0;
    for (const auto& [key, e] : ewma_batch_) {
      if (key.first != prog || e == 0) continue;
      if (best == 0 || e < best) best = e;
    }
    queued += best != 0 ? best : mean;
  }
  return std::max<SimTime>(queued / static_cast<SimTime>(slots), kMicrosecond);
}

Ticket StencilService::submit(const Request& request) {
  service_now_ = std::max(service_now_, request.arrival);
  Ticket ticket;
  ticket.id = next_ticket_++;
  TenantStats& ts = metrics_.tenants[request.tenant];
  ++ts.submitted;

  RequestResult r;
  r.tenant = request.tenant;
  r.admit = request.arrival;

  // Invalid shapes fail immediately — they would fail on every card.
  // (CheckError covers general-program structural faults such as an
  // initial_field of the wrong size.)
  std::string invalid;
  try {
    core::DeviceRunConfig vrun = cfg_.run;
    if (request.strategy) vrun.strategy = *request.strategy;
    if (request.temporal_depth > 0) vrun.temporal_depth = request.temporal_depth;
    if (request.general) {
      core::validate_stencil_request(*request.general, vrun);
    } else {
      core::validate_batch_request(request.problem, vrun);
    }
  } catch (const ApiError& e) {
    invalid = e.what();
  } catch (const CheckError& e) {
    invalid = e.what();
  }
  if (!invalid.empty()) {
    r.status = RequestStatus::kFailed;
    r.error = invalid;
    ++ts.failed;
    results_.emplace(ticket.id, std::move(r));
    ticket.status = RequestStatus::kFailed;
    return ticket;
  }

  // Capacity triage: a shape whose session buffers exceed every card's DRAM
  // is not a failure — it is a sharded multi-card session. Find the smallest
  // group (each card holding its slab plus deep-halo overlap) that fits the
  // pool's TIGHTEST card, since the group may be drawn from any idle cards;
  // only when no group fits does the request fail.
  int shard_n = 0;
  {
    const std::uint32_t w =
        request.general ? request.general->width : request.problem.width;
    const std::uint32_t h =
        request.general ? request.general->height : request.problem.height;
    // Grid images a session must hold per slot: both parities of the solve
    // grid, or per general field one image plus a second for written fields.
    std::uint64_t grids = 2;
    if (request.general) {
      grids = 0;
      for (int f = 0; f < static_cast<int>(request.general->fields.size()); ++f)
        grids += request.general->written_pass(f) >= 0 ? 2 : 1;
    }
    std::uint64_t max_budget = 0;
    std::uint64_t min_budget = 0;
    int pool = 0;
    for (const auto& c : cards_) {
      if (c->retired) continue;
      // 7/8 of DRAM: headroom for alignment and the allocator's metadata.
      const std::uint64_t budget = c->spec.dram_total_bytes() / 8 * 7;
      max_budget = std::max(max_budget, budget);
      min_budget = pool == 0 ? budget : std::min(min_budget, budget);
      ++pool;
    }
    const std::uint64_t needed =
        grids * core::PaddedLayout(w, h).bytes();
    if (max_budget != 0 && needed > max_budget) {
      const auto strat = request.strategy.value_or(cfg_.run.strategy);
      const int depth = request.temporal_depth > 0 ? request.temporal_depth
                                                   : cfg_.run.temporal_depth;
      const int k = strat == core::DeviceStrategy::kTemporal ? depth : 1;
      const bool shardable =
          (strat == core::DeviceStrategy::kRowChunk ||
           strat == core::DeviceStrategy::kTemporal) &&
          (!request.general || request.general->passes.size() == 1);
      std::string why;
      if (!shardable) {
        why = "shape exceeds one card's DRAM and the program cannot shard "
              "(multi-pass or non-row-chunk/temporal strategy)";
      } else {
        for (int n = 2; n <= pool; ++n) {
          const std::uint32_t owned = (h + static_cast<std::uint32_t>(n) - 1) /
                                      static_cast<std::uint32_t>(n);
          if (h / static_cast<std::uint32_t>(n) <
              static_cast<std::uint32_t>(std::max(k, cfg_.run.cores_y)))
            break;  // slabs too thin for the halo protocol / core grid
          const std::uint64_t slab =
              grids * core::PaddedLayout(
                          w, owned + 2 * static_cast<std::uint32_t>(k - 1))
                          .bytes();
          if (slab <= min_budget) {
            shard_n = n;
            break;
          }
        }
        if (shard_n == 0) why = "shape exceeds the pool's combined capacity";
      }
      if (shard_n == 0) {
        r.status = RequestStatus::kFailed;
        r.error = why;
        ++ts.failed;
        results_.emplace(ticket.id, std::move(r));
        ticket.status = RequestStatus::kFailed;
        return ticket;
      }
      ++metrics_.sharded_sessions;
    }
  }

  // SLO admission: when history says the deadline cannot be met even if
  // everything goes right, rejecting now is kinder than a guaranteed miss.
  // retry_after = 0: resubmitting the same deadline is pointless.
  if (cfg_.slo_admission && request.deadline != 0) {
    const SimTime eta = estimate_completion(request);
    if (eta != 0 && eta > request.deadline) {
      r.status = RequestStatus::kRejected;
      ++ts.rejected;
      ++metrics_.infeasible_rejects;
      record_span(sim::TraceEventKind::kServeReject, request.arrival, 0,
                  tenant_track(request.tenant), ticket.id);
      results_.emplace(ticket.id, std::move(r));
      ticket.status = RequestStatus::kRejected;
      ticket.retry_after = 0;
      return ticket;
    }
  }

  // Backpressure: a full pending queue rejects with a retry-after hint
  // instead of queueing unboundedly — unless shedding is on and a
  // lower-priority queued request can make room for this one.
  if (pending_.size() >= cfg_.queue_capacity) {
    std::uint64_t victim = 0;
    if (cfg_.shed_low_priority) {
      // Lowest priority strictly below the newcomer; newest such entry
      // (its investment-so-far is smallest). Never shed a request that has
      // already run a segment — its checkpoint represents paid-for work.
      int victim_prio = request.priority;
      for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
        const Pending& p = requests_.at(*it);
        if (p.iterations_done > 0) continue;
        if (p.req.priority < victim_prio) {
          victim_prio = p.req.priority;
          victim = *it;
        }
      }
    }
    if (victim != 0) {
      pending_.erase(std::find(pending_.begin(), pending_.end(), victim));
      auto& vr = results_.at(victim);
      vr.status = RequestStatus::kRejected;
      vr.retry_after = service_now_ + backpressure_hint();
      ++metrics_.tenants[vr.tenant].rejected;
      ++metrics_.shed;
      record_span(sim::TraceEventKind::kServeReject, service_now_, 0,
                  tenant_track(vr.tenant), victim);
      requests_.erase(victim);
    } else {
      r.status = RequestStatus::kRejected;
      ++ts.rejected;
      record_span(sim::TraceEventKind::kServeReject, request.arrival, 0,
                  tenant_track(request.tenant), ticket.id);
      ticket.status = RequestStatus::kRejected;
      ticket.retry_after = service_now_ + backpressure_hint();
      r.retry_after = ticket.retry_after;
      results_.emplace(ticket.id, std::move(r));
      return ticket;
    }
  }

  record_span(sim::TraceEventKind::kServeAdmit, request.arrival, 0,
              tenant_track(request.tenant), ticket.id);
  results_.emplace(ticket.id, std::move(r));
  Pending p;
  p.req = request;
  p.key = effective_key(p);
  p.shard_cards = shard_n;
  requests_.emplace(ticket.id, std::move(p));
  pending_.push_back(ticket.id);
  metrics_.max_queue_depth = std::max(metrics_.max_queue_depth, pending_.size());
  return ticket;
}

// ---------------------------------------------------------------------------
// Sessions

int StencilService::card_capacity(int card, const ShapeKey& key) {
  (void)key;  // slot width is a service-level constant today
  TTSIM_CHECK(card >= 0 && card < static_cast<int>(cards_.size()));
  const int slot = cfg_.run.cores_x * cfg_.run.cores_y;
  const int usable = static_cast<int>(cards_[static_cast<std::size_t>(card)]
                                          ->device->usable_workers().size());
  return std::min(usable / slot, cfg_.max_batch);
}

CardHealth StencilService::card_health(int card) const {
  TTSIM_CHECK(card >= 0 && card < static_cast<int>(cards_.size()));
  return cards_[static_cast<std::size_t>(card)]->health;
}

const sim::DeviceSpec& StencilService::card_spec(int card) const {
  TTSIM_CHECK(card >= 0 && card < static_cast<int>(cards_.size()));
  return cards_[static_cast<std::size_t>(card)]->spec;
}

SimTime StencilService::ewma_cost(std::uint64_t program,
                                  const std::string& spec_name) const {
  const auto it = ewma_batch_.find({program, spec_name});
  return it == ewma_batch_.end() ? 0 : it->second;
}

std::vector<verify::Finding> StencilService::verify_findings() const {
  std::vector<verify::Finding> all;
  for (const auto& card : cards_) {
    const verify::Verifier* v = card->device->verifier();
    if (v == nullptr) continue;
    all.insert(all.end(), v->findings().begin(), v->findings().end());
  }
  return all;
}

StencilService::Session& StencilService::session(
    Card& card, const ShapeKey& key, const core::GeneralStencilProblem* general) {
  auto it = card.sessions.find(key);
  if (it != card.sessions.end()) {
    ++metrics_.session_cache_hits;
    return *it->second;
  }
  ++metrics_.session_cache_misses;

  auto s = std::make_unique<Session>(key);
  const int slot = cfg_.run.cores_x * cfg_.run.cores_y;
  const auto usable = card.device->usable_workers();
  const int groups = std::min(static_cast<int>(usable.size()) / slot, cfg_.max_batch);
  TTSIM_CHECK_MSG(groups >= 1, "session built on a card with no capacity");
  for (int g = 0; g < groups; ++g) {
    s->groups.emplace_back(usable.begin() + static_cast<std::ptrdiff_t>(g) * slot,
                           usable.begin() + static_cast<std::ptrdiff_t>(g + 1) * slot);
  }

  core::JacobiProblem shape;
  shape.width = key.width;
  shape.height = key.height;
  shape.iterations = key.iterations;
  const ttmetal::BufferConfig base = core::batch_grid_buffer_config(cfg_.run, shape);
  if (general != nullptr) {
    TTSIM_CHECK_MSG(key.program == general->transition_hash(),
                    "session key does not match the general program");
    s->general = *general;
    const int nf = static_cast<int>(general->fields.size());
    for (int bank = 0; bank < 2; ++bank) {
      auto& vec = s->gbanks[static_cast<std::size_t>(bank)];
      for (int g = 0; g < groups; ++g) {
        std::vector<std::shared_ptr<ttmetal::Buffer>> bufs(
            static_cast<std::size_t>(2 * nf));
        for (int f = 0; f < nf; ++f) {
          for (int half = 0; half < 2; ++half) {
            // Read-only fields never flip parity: one grid is enough.
            if (half == 1 && general->written_pass(f) < 0) continue;
            ttmetal::BufferConfig bc = base;
            std::ostringstream name;
            name << "serve-c" << card.index << '-' << key.width << 'x'
                 << key.height << "-i" << key.iterations << "-p" << std::hex
                 << key.program << std::dec << "-bank" << bank << "-slot" << g
                 << "-f" << f << "-d" << (half + 1);
            bc.name = name.str();
            bufs[static_cast<std::size_t>(half * nf + f)] =
                card.device->create_buffer(bc);
          }
        }
        vec.push_back(std::move(bufs));
      }
    }
  } else {
    for (int bank = 0; bank < 2; ++bank) {
      auto& vec = s->banks[static_cast<std::size_t>(bank)];
      for (int g = 0; g < groups; ++g) {
        std::array<std::shared_ptr<ttmetal::Buffer>, 2> pair;
        for (int half = 0; half < 2; ++half) {
          ttmetal::BufferConfig bc = base;
          std::ostringstream name;
          name << "serve-c" << card.index << '-' << key.width << 'x' << key.height
               << "-i" << key.iterations << "-bank" << bank << "-slot" << g << "-d"
               << (half + 1);
          bc.name = name.str();
          pair[static_cast<std::size_t>(half)] = card.device->create_buffer(bc);
        }
        vec.push_back(std::move(pair));
      }
    }
  }
  auto& ref = *s;
  card.sessions.emplace(key, std::move(s));
  return ref;
}

// ---------------------------------------------------------------------------
// Scheduling

void StencilService::fail_request(std::uint64_t id, const std::string& why) {
  auto& r = results_.at(id);
  r.status = RequestStatus::kFailed;
  r.error = why;
  ++metrics_.tenants[r.tenant].failed;
  requests_.erase(id);
}

bool StencilService::dispatch_on(Card& card) {
  if (pending_.empty() || card.inflight.size() >= kPipelineDepth) return false;
  SimTime t = card.device->now();

  auto eligible_ids = [&](SimTime at) {
    std::vector<std::uint64_t> ids;
    for (std::uint64_t id : pending_) {
      const Pending& p = requests_.at(id);
      // Sharded sessions dispatch through dispatch_sharded (a card GROUP),
      // never through a single card's batch pipeline.
      if (p.shard_cards != 0) continue;
      if (p.req.arrival <= at) ids.push_back(id);
    }
    return ids;
  };
  std::vector<std::uint64_t> eligible = eligible_ids(t);
  if (eligible.empty()) {
    // Nothing has arrived on this card's clock. A busy card will catch up
    // when its batches are harvested; an idle one fast-forwards to the next
    // arrival (the engine just advances its clock — there is nothing to run).
    if (!card.inflight.empty()) return false;
    SimTime earliest = 0;
    bool first = true;
    for (std::uint64_t id : pending_) {
      const SimTime a = requests_.at(id).req.arrival;
      if (first || a < earliest) earliest = a;
      first = false;
    }
    if (earliest > t) card.device->hw().engine().run_until(earliest);
    t = card.device->now();
    eligible = eligible_ids(t);
    if (eligible.empty()) return false;
  }

  // Head choice: highest priority first; within it, round-robin over the
  // tenants that have eligible work (fair share), FIFO within a tenant.
  int top = requests_.at(eligible.front()).req.priority;
  for (std::uint64_t id : eligible) top = std::max(top, requests_.at(id).req.priority);
  std::vector<int> tenants;
  for (std::uint64_t id : eligible) {
    const Pending& p = requests_.at(id);
    if (p.req.priority != top) continue;
    if (std::find(tenants.begin(), tenants.end(), p.req.tenant) == tenants.end())
      tenants.push_back(p.req.tenant);
  }
  std::sort(tenants.begin(), tenants.end());
  TTSIM_CHECK(!tenants.empty());  // a top-priority request always exists
  int head_tenant = tenants.front();
  for (int tenant : tenants) {
    if (tenant >= rr_cursor_) {
      head_tenant = tenant;
      break;
    }
  }
  rr_cursor_ = head_tenant + 1;

  std::uint64_t head = 0;
  for (std::uint64_t id : eligible) {
    const Pending& p = requests_.at(id);
    if (p.req.priority == top && p.req.tenant == head_tenant) {
      head = id;
      break;
    }
  }
  const ShapeKey key = requests_.at(head).key;

  // Capacity: a card that cannot field even one slot of this shape leaves
  // it for a capable card; when no card can — now or after a readmission
  // probe — the request fails.
  if (card_capacity(card.index, key) < 1) {
    bool anyone = false;
    for (const auto& other : cards_) {
      if (other->retired) continue;
      if (card_capacity(other->index, key) >= 1 ||
          (other->health == CardHealth::kQuarantined && cfg_.health.heal_on_probe)) {
        anyone = true;
      }
    }
    if (!anyone) {
      pending_.erase(std::find(pending_.begin(), pending_.end(), head));
      fail_request(head, "no card has enough usable workers for this shape");
      return true;
    }
    return false;
  }

  const Pending& head_req = requests_.at(head);
  Session& s = session(card, key,
                       head_req.req.general ? &*head_req.req.general : nullptr);
  const int max_slots =
      std::min(static_cast<int>(s.groups.size()), cfg_.max_batch);

  // Coalesce: fill the batch with same-shape eligible requests in priority /
  // FIFO order, starting from the head. Dispatch-time deadline misses fail
  // here rather than wasting a slot.
  std::vector<std::uint64_t> members{head};
  for (std::uint64_t id : eligible) {
    if (static_cast<int>(members.size()) >= max_slots) break;
    if (id == head) continue;
    const Pending& p = requests_.at(id);
    if (p.key != key) continue;
    members.push_back(id);
  }
  std::vector<std::uint64_t> batch;
  for (std::uint64_t id : members) {
    pending_.erase(std::find(pending_.begin(), pending_.end(), id));
    const Pending& p = requests_.at(id);
    if (p.req.deadline != 0 && p.req.deadline < t) {
      auto& r = results_.at(id);
      r.deadline_missed = true;
      ++metrics_.tenants[p.req.tenant].deadline_missed;
      fail_request(id, "deadline passed before dispatch");
      continue;
    }
    batch.push_back(id);
  }
  if (batch.empty()) return true;  // everything expired; still progress

  const int b = static_cast<int>(batch.size());
  const int bank = s.next_bank;
  s.next_bank ^= 1;

  // Compile (or reuse) the batch program for (bank, B).
  const auto pkey = std::make_pair(bank, b);
  auto pit = s.programs.find(pkey);
  if (pit == s.programs.end()) {
    auto prog = std::make_unique<ttmetal::Program>();
    if (s.general) {
      const int nf = static_cast<int>(s.general->fields.size());
      std::vector<core::GeneralBatchSlot> slots(static_cast<std::size_t>(b));
      for (int g = 0; g < b; ++g) {
        auto& slot = slots[static_cast<std::size_t>(g)];
        const auto& bufs =
            s.gbanks[static_cast<std::size_t>(bank)][static_cast<std::size_t>(g)];
        for (int f = 0; f < nf; ++f) {
          slot.d1.push_back(bufs[static_cast<std::size_t>(f)]->address());
          const auto& d2 = bufs[static_cast<std::size_t>(nf + f)];
          slot.d2.push_back(d2 ? d2->address() : 0);
        }
        slot.core_ids = s.groups[static_cast<std::size_t>(g)];
      }
      // The session pins the program STRUCTURE; this launch runs the key's
      // segment length (checkpointed solves dispatch shorter tails).
      core::GeneralStencilProblem gshape = *s.general;
      gshape.iterations = key.iterations;
      core::build_batched_stencil_program(*prog, gshape, run_for(key), slots);
    } else {
      std::vector<core::BatchSlot> slots(static_cast<std::size_t>(b));
      for (int g = 0; g < b; ++g) {
        auto& slot = slots[static_cast<std::size_t>(g)];
        const auto& pair = s.banks[static_cast<std::size_t>(bank)][static_cast<std::size_t>(g)];
        slot.d1 = pair[0]->address();
        slot.d2 = pair[1]->address();
        slot.core_ids = s.groups[static_cast<std::size_t>(g)];
      }
      core::JacobiProblem shape;
      shape.width = key.width;
      shape.height = key.height;
      shape.iterations = key.iterations;
      core::build_batched_rowchunk_program(*prog, shape, run_for(key), slots);
    }
    pit = s.programs.emplace(pkey, std::move(prog)).first;
  }

  // The three-queue pipeline: writes on 0, the program on 1, reads on 2,
  // ordered by events. Nothing blocks here; the timeline materialises when
  // the card is driven at harvest.
  auto& dev = *card.device;
  auto& cq_write = dev.command_queue(0);
  auto& cq_kernel = dev.command_queue(1);
  auto& cq_read = dev.command_queue(2);

  InFlight fl;
  fl.members = batch;
  fl.key = key;
  fl.bank = bank;
  fl.dispatched = t;
  for (int g = 0; g < b; ++g) {
    Pending& p = requests_.at(batch[static_cast<std::size_t>(g)]);
    auto& rr = results_.at(batch[static_cast<std::size_t>(g)]);
    if (s.general) {
      // Per-field staging: every field's padded image from THIS request's
      // physics (boundary constants / initial fields are per-request data;
      // the session only pins the program structure). Written fields stage
      // both parities so the first pass reads a defined halo everywhere.
      const auto& bufs =
          s.gbanks[static_cast<std::size_t>(bank)][static_cast<std::size_t>(g)];
      const int nf = static_cast<int>(p.req.general->fields.size());
      for (int f = 0; f < nf; ++f) {
        const auto& d2 = bufs[static_cast<std::size_t>(nf + f)];
        if (p.iterations_done > 0 && d2) {
          // Resume a written field from its sealed checkpoint — the exact
          // padded image after iterations_done sweeps — staged to both
          // parities exactly like a fresh start stages the initial image,
          // so the remaining sweeps continue the solve bit-exactly.
          const auto& image = p.ckpt[static_cast<std::size_t>(f)].image();
          TTSIM_CHECK_MSG(image.size() == s.layout.elems(),
                          "checkpoint image does not match the session layout");
          const auto bytes = std::as_bytes(std::span{image});
          cq_write.enqueue_write_buffer(*bufs[static_cast<std::size_t>(f)], bytes,
                                        /*blocking=*/false);
          cq_write.enqueue_write_buffer(*d2, bytes, /*blocking=*/false);
          continue;
        }
        // Fresh start, or a read-only field (never flips parity: its image
        // restages from the program spec on every segment).
        const auto image = core::general_field_image(s.layout, *p.req.general, f);
        const auto bytes = std::as_bytes(std::span{image});
        cq_write.enqueue_write_buffer(*bufs[static_cast<std::size_t>(f)], bytes,
                                      /*blocking=*/false);
        if (d2) cq_write.enqueue_write_buffer(*d2, bytes, /*blocking=*/false);
      }
      if (p.iterations_done > 0 && p.ckpt_card != card.index) {
        ++metrics_.migrations;
        ++rr.migrations;
      }
      continue;
    }
    const auto& pair = s.banks[static_cast<std::size_t>(bank)][static_cast<std::size_t>(g)];
    if (p.iterations_done == 0) {
      // First segment: the initial image from the request's physics.
      const auto image = s.layout.initial_image(p.req.problem);
      const auto bytes = std::as_bytes(std::span{image});
      cq_write.enqueue_write_buffer(*pair[0], bytes, /*blocking=*/false);
      cq_write.enqueue_write_buffer(*pair[1], bytes, /*blocking=*/false);
    } else {
      // Resume: upload the CRC-verified checkpoint — the exact padded
      // device image after iterations_done sweeps — so the segment
      // continues the solve bit-exactly, on whichever card this is.
      const auto& image = p.ckpt.front().image();
      TTSIM_CHECK_MSG(image.size() == s.layout.elems(),
                      "checkpoint image does not match the session layout");
      const auto bytes = std::as_bytes(std::span{image});
      cq_write.enqueue_write_buffer(*pair[0], bytes, /*blocking=*/false);
      cq_write.enqueue_write_buffer(*pair[1], bytes, /*blocking=*/false);
      if (p.ckpt_card != card.index) {
        ++metrics_.migrations;
        ++rr.migrations;
      }
    }
  }
  fl.write_done = cq_write.record_event();
  cq_kernel.wait_for_event(fl.write_done);
  cq_kernel.enqueue_program(*pit->second, /*blocking=*/false);
  fl.kernel_done = cq_kernel.record_event();
  cq_read.wait_for_event(fl.kernel_done);
  fl.outputs.resize(static_cast<std::size_t>(b));
  fl.continues.assign(static_cast<std::size_t>(b), 0);
  const bool odd = key.iterations % 2 == 1;
  for (int g = 0; g < b; ++g) {
    const Pending& p = requests_.at(batch[static_cast<std::size_t>(g)]);
    const int total = p.req.general ? p.req.general->iterations
                                    : p.req.problem.iterations;
    const bool cont = p.iterations_done + key.iterations < total;
    fl.continues[static_cast<std::size_t>(g)] = cont ? 1 : 0;
    auto& outs = fl.outputs[static_cast<std::size_t>(g)];
    if (s.general) {
      const int nf = static_cast<int>(s.general->fields.size());
      const auto& bufs =
          s.gbanks[static_cast<std::size_t>(bank)][static_cast<std::size_t>(g)];
      if (cont) {
        // Mid-solve segment: read back EVERY written field at the segment's
        // final parity — together they are the whole numerical state, the
        // next segment's per-field checkpoints. (Pre-size so the async
        // reads' destinations never reallocate.)
        int nw = 0;
        for (int f = 0; f < nf; ++f)
          if (s.general->written_pass(f) >= 0) ++nw;
        outs.assign(static_cast<std::size_t>(nw),
                    std::vector<bfloat16_t>(s.layout.elems()));
        std::size_t j = 0;
        for (int f = 0; f < nf; ++f) {
          if (s.general->written_pass(f) < 0) continue;
          cq_read.enqueue_read_buffer(
              *bufs[static_cast<std::size_t>(odd ? nf + f : f)],
              std::as_writable_bytes(std::span{outs[j]}), /*blocking=*/false);
          ++j;
        }
        continue;
      }
      // Deliver the primary field (the last pass's target, always written:
      // its final parity follows the iteration count).
      const int pf = s.general->primary_field();
      outs.assign(1, std::vector<bfloat16_t>(s.layout.elems()));
      cq_read.enqueue_read_buffer(*bufs[static_cast<std::size_t>(odd ? nf + pf : pf)],
                                  std::as_writable_bytes(std::span{outs.front()}),
                                  /*blocking=*/false);
      continue;
    }
    outs.assign(1, std::vector<bfloat16_t>(s.layout.elems()));
    const auto& pair = s.banks[static_cast<std::size_t>(bank)][static_cast<std::size_t>(g)];
    cq_read.enqueue_read_buffer(*pair[odd ? 1 : 0],
                                std::as_writable_bytes(std::span{outs.front()}),
                                /*blocking=*/false);
  }
  fl.read_done = cq_read.record_event();

  ++metrics_.batches;
  metrics_.batched_requests += static_cast<std::uint64_t>(b);
  for (std::uint64_t id : batch) {
    auto& r = results_.at(id);
    r.card = card.index;
    r.batch_size = b;
    if (requests_.at(id).iterations_done == 0) {
      r.dispatched = t;
      record_span(sim::TraceEventKind::kServeQueueWait, r.admit, t - r.admit,
                  tenant_track(r.tenant), id);
    }
  }
  card.inflight.push_back(std::move(fl));
  return true;
}

// ---------------------------------------------------------------------------
// Sharded multi-card sessions

bool StencilService::dispatch_sharded(std::uint64_t id) {
  Pending& p = requests_.at(id);
  const int n = p.shard_cards;
  TTSIM_CHECK(n >= 2);
  const int slot = cfg_.run.cores_x * cfg_.run.cores_y;

  // When the pool can never field the group again, fail now rather than
  // stalling drain() forever. A quarantined card still counts if a probe
  // could heal it back.
  int possible = 0;
  for (const auto& c : cards_) {
    if (c->retired) continue;
    if (static_cast<int>(c->device->usable_workers().size()) >= slot ||
        (c->health == CardHealth::kQuarantined && cfg_.health.heal_on_probe)) {
      ++possible;
    }
  }
  if (possible < n) {
    pending_.erase(std::find(pending_.begin(), pending_.end(), id));
    fail_request(id, "not enough usable cards left for the sharded group");
    return true;
  }

  // Group formation: idle cards only — the group runs the whole segment
  // synchronously in lockstep, so a card with batches in flight would stall
  // its neighbours. Healthy cards are drafted before degraded ones, in index
  // order within a class (deterministic).
  std::vector<Card*> group;
  for (auto& c : cards_) {
    if (c->retired || c->health == CardHealth::kQuarantined) continue;
    if (!c->inflight.empty()) continue;
    if (static_cast<int>(c->device->usable_workers().size()) < slot) continue;
    group.push_back(c.get());
  }
  std::stable_sort(group.begin(), group.end(),
                   [](const Card* a, const Card* b) {
                     return (a->health == CardHealth::kHealthy ? 0 : 1) <
                            (b->health == CardHealth::kHealthy ? 0 : 1);
                   });
  if (static_cast<int>(group.size()) < n) return false;  // wait for harvests
  group.resize(static_cast<std::size_t>(n));

  // Align the group's clocks at the segment start (a future arrival
  // fast-forwards the idle group, exactly like dispatch_on's idle path).
  SimTime t0 = std::max(service_now_, p.req.arrival);
  for (Card* c : group) t0 = std::max(t0, c->device->now());
  for (Card* c : group) c->device->hw().engine().run_until(t0);

  pending_.erase(std::find(pending_.begin(), pending_.end(), id));
  auto& rr = results_.at(id);
  if (p.req.deadline != 0 && p.req.deadline < t0) {
    rr.deadline_missed = true;
    ++metrics_.tenants[p.req.tenant].deadline_missed;
    fail_request(id, "deadline passed before dispatch");
    return true;
  }

  std::vector<int> gids;
  std::vector<ttmetal::Device*> devs;
  for (Card* c : group) {
    // The slab buffers need the card's DRAM to themselves; cached
    // single-card sessions (idle by construction) give their buffers back.
    c->sessions.clear();
    gids.push_back(c->index);
    devs.push_back(c->device.get());
  }

  const ShapeKey key = p.key;
  core::ShardedRunConfig scfg;
  scfg.run = run_for(key);
  scfg.exchange_every = 0;  // the strategy's natural epoch
  scfg.verify = false;

  // A per-group fabric: positions are group slots, global card ids name the
  // trace tracks and fault hooks. Link parameters come from the service
  // config or, by default, from the drafted cards' own family spec.
  sim::ChipLinkFabric fabric(
      n,
      cfg_.link ? *cfg_.link
                : sim::ChipLinkConfig::from_spec(group.front()->spec),
      gids);

  if (p.iterations_done == 0) {
    rr.dispatched = t0;
    record_span(sim::TraceEventKind::kServeQueueWait, rr.admit, t0 - rr.admit,
                tenant_track(rr.tenant), id);
  } else if (p.group != gids) {
    // The resumed segment landed on a different card group: the sealed
    // GLOBAL checkpoint is what makes that legal.
    ++metrics_.migrations;
    ++rr.migrations;
  }

  const int total =
      p.req.general ? p.req.general->iterations : p.req.problem.iterations;
  try {
    core::ShardedRunResult res;
    std::vector<bfloat16_t> jstate;
    std::vector<std::vector<bfloat16_t>> gstate;
    if (p.req.general) {
      core::GeneralStencilProblem gp = *p.req.general;
      gp.iterations = key.iterations;
      if (p.iterations_done > 0) {
        const core::PaddedLayout global(gp.width, gp.height);
        for (int f = 0; f < static_cast<int>(gp.fields.size()); ++f) {
          // Written fields resume from their sealed checkpoints; read-only
          // fields never change, so their images restage from the spec.
          gstate.push_back(gp.written_pass(f) >= 0
                               ? p.ckpt[static_cast<std::size_t>(f)].image()
                               : core::general_field_image(global, gp, f));
        }
      }
      res = core::run_general_sharded(devs, fabric, gp, scfg, &gstate);
    } else {
      core::JacobiProblem jp = p.req.problem;
      jp.iterations = key.iterations;
      if (p.iterations_done > 0) jstate = p.ckpt.front().image();
      res = core::run_jacobi_sharded(devs, fabric, jp, scfg, &jstate);
    }

    SimTime end = t0;
    for (ttmetal::Device* d : devs) end = std::max(end, d->now());
    ++metrics_.sharded_segments;
    metrics_.sharded_link_bytes += res.link_bytes;
    record_span(sim::TraceEventKind::kServeKernel, t0, end - t0,
                card_track(gids.front()), id, n);

    p.iterations_done += key.iterations;
    p.group = gids;
    rr.card = gids.front();
    rr.group = gids;
    rr.batch_size = 1;
    if (p.iterations_done < total) {
      // Seal the whole-domain state — one global padded image per written
      // field — so the next segment may run on ANY group of idle cards.
      if (p.req.general) {
        const int nf = static_cast<int>(p.req.general->fields.size());
        p.ckpt.assign(static_cast<std::size_t>(nf), SessionCheckpoint{});
        for (int f = 0; f < nf; ++f) {
          if (p.req.general->written_pass(f) < 0) continue;
          p.ckpt[static_cast<std::size_t>(f)] = SessionCheckpoint::capture(
              std::move(gstate[static_cast<std::size_t>(f)]),
              p.iterations_done, end);
        }
      } else {
        p.ckpt.assign(1, SessionCheckpoint{});
        p.ckpt.front() = SessionCheckpoint::capture(std::move(jstate),
                                                    p.iterations_done, end);
      }
      p.ckpt_card = gids.front();
      p.key = effective_key(p);
      p.req.arrival = std::max(p.req.arrival, end);
      ++metrics_.checkpoints_taken;
      for (const auto& c : p.ckpt) metrics_.checkpoint_bytes += c.bytes();
      pending_.push_front(id);
      return true;
    }
    rr.status = RequestStatus::kCompleted;
    rr.completed = end;
    rr.latency = end - rr.admit;
    if (p.req.deadline != 0 && end > p.req.deadline) {
      rr.deadline_missed = true;
      ++metrics_.tenants[rr.tenant].deadline_missed;
    }
    rr.solution = std::move(res.solution);
    TenantStats& ts = metrics_.tenants[rr.tenant];
    ++ts.completed;
    ts.latencies.push_back(rr.latency);
    requests_.erase(id);
    return true;
  } catch (const SimError& e) {
    // Group-wide recovery: reopen EVERY card (the segment may have wedged
    // any of their queues), but penalise only the cards that come back
    // short of a slot — a link fault is nobody's silicon.
    SimTime fail_now = t0;
    for (ttmetal::Device* d : devs) fail_now = std::max(fail_now, d->now());
    for (Card* c : group) {
      ++metrics_.card_reopens;
      metrics_.commands_cancelled += c->device->cancel_queues();
      reopen_card(*c, fail_now);
      if (static_cast<int>(c->device->usable_workers().size()) >= slot)
        continue;
      c->clean_streak = 0;
      ++c->consecutive_failures;
      if (c->consecutive_failures >= cfg_.health.quarantine_after) {
        if (c->health != CardHealth::kQuarantined) ++metrics_.quarantines;
        c->health = CardHealth::kQuarantined;
        c->probe_at = fail_now + cfg_.health.probe_after;
      } else if (c->health == CardHealth::kHealthy) {
        c->health = CardHealth::kDegraded;
      }
    }
    const bool expired = p.req.deadline != 0 && p.req.deadline <= fail_now;
    if (!e.retryable() || rr.retries >= cfg_.max_retries || expired) {
      if (expired) {
        rr.deadline_missed = true;
        ++metrics_.tenants[p.req.tenant].deadline_missed;
      }
      fail_request(id, e.what());
      return true;
    }
    ++rr.retries;
    metrics_.iterations_saved += static_cast<std::uint64_t>(p.iterations_done);
    p.req.arrival = std::max(p.req.arrival, fail_now);
    rr.card = -1;
    rr.batch_size = 0;
    pending_.push_front(id);
    return true;
  } catch (const ApiError& e) {
    // Structural rejection from the sharded runner (infeasible
    // decomposition): the request fails, the cards are untouched.
    fail_request(id, e.what());
    return true;
  }
}

void StencilService::note_clean_harvest(Card& card) {
  card.consecutive_failures = 0;
  if (card.health == CardHealth::kDegraded) {
    if (++card.clean_streak >= cfg_.health.readmit_successes) {
      card.health = CardHealth::kHealthy;
      card.clean_streak = 0;
    }
  }
}

void StencilService::harvest_one(Card& card) {
  TTSIM_CHECK(!card.inflight.empty());
  try {
    card.device->synchronize(card.inflight.front().read_done);
  } catch (const SimError& e) {
    // One catch for the whole fault taxonomy: watchdog timeouts, transfer
    // retry exhaustion and engine deadlocks are retryable (the victims
    // requeue onto a fresh generation); a violated invariant is not.
    handle_card_failure(card, e.what(), e.retryable());
    return;
  }
  note_clean_harvest(card);

  InFlight fl = std::move(card.inflight.front());
  card.inflight.pop_front();
  Session& s = *card.sessions.at(fl.key);
  const int b = static_cast<int>(fl.members.size());
  const SimTime h2d_end = fl.write_done.completed_at();
  const SimTime kernel_end = fl.kernel_done.completed_at();
  const SimTime d2h_end = fl.read_done.completed_at();
  const int track = card_track(card.index);
  record_span(sim::TraceEventKind::kServeH2D, fl.dispatched, h2d_end - fl.dispatched,
              track, fl.members.front(), b);
  record_span(sim::TraceEventKind::kServeKernel, h2d_end, kernel_end - h2d_end,
              track, fl.members.front(), b);
  record_span(sim::TraceEventKind::kServeD2H, kernel_end, d2h_end - kernel_end,
              track, fl.members.front(), b);

  // Batch service time feeds the SLO admission estimate (integer EWMA,
  // newest sample weighted 1/4 — smooth but responsive, and deterministic),
  // keyed by (program, spec) so unlike-cost workloads keep separate
  // histories and a Wormhole's samples never pollute a Grayskull's.
  const SimTime sample = d2h_end - fl.dispatched;
  SimTime& ewma = ewma_batch_[{fl.key.program, card.spec.name}];
  ewma = ewma == 0 ? sample : (3 * ewma + sample) / 4;

  std::vector<std::uint64_t> continuations;
  for (int g = 0; g < b; ++g) {
    const std::uint64_t id = fl.members[static_cast<std::size_t>(g)];
    Pending& p = requests_.at(id);
    auto& r = results_.at(id);
    p.iterations_done += fl.key.iterations;
    if (fl.continues[static_cast<std::size_t>(g)] != 0) {
      // Mid-solve segment: seal the readback — the full padded device image,
      // one per written field for general programs — as this request's
      // checkpoint and requeue the remainder. The next segment may land on
      // any card (migration).
      auto& imgs = fl.outputs[static_cast<std::size_t>(g)];
      if (p.req.general) {
        const int nf = static_cast<int>(p.req.general->fields.size());
        p.ckpt.assign(static_cast<std::size_t>(nf), SessionCheckpoint{});
        std::size_t j = 0;
        for (int f = 0; f < nf; ++f) {
          if (p.req.general->written_pass(f) < 0) continue;
          p.ckpt[static_cast<std::size_t>(f)] = SessionCheckpoint::capture(
              std::move(imgs[j]), p.iterations_done, d2h_end);
          ++j;
        }
      } else {
        p.ckpt.assign(1, SessionCheckpoint{});
        p.ckpt.front() = SessionCheckpoint::capture(
            std::move(imgs.front()), p.iterations_done, d2h_end);
      }
      p.ckpt_card = card.index;
      p.key = effective_key(p);
      // Causality across skewed card clocks: the next segment must not
      // dispatch (on any card) before this one's readback finished.
      p.req.arrival = std::max(p.req.arrival, d2h_end);
      ++metrics_.checkpoints_taken;
      for (const auto& c : p.ckpt) metrics_.checkpoint_bytes += c.bytes();
      continuations.push_back(id);
      continue;
    }
    r.status = RequestStatus::kCompleted;
    r.completed = d2h_end;
    r.latency = d2h_end - r.admit;
    if (p.req.deadline != 0 && d2h_end > p.req.deadline) {
      r.deadline_missed = true;
      ++metrics_.tenants[r.tenant].deadline_missed;
    }
    r.solution = s.layout.extract_interior(
        fl.outputs[static_cast<std::size_t>(g)].front());
    TenantStats& ts = metrics_.tenants[r.tenant];
    ++ts.completed;
    ts.latencies.push_back(r.latency);
    requests_.erase(id);
  }
  // Continuations go to the FRONT in slot order so a long solve is not
  // starved by traffic that arrived while its segment ran.
  for (auto it = continuations.rbegin(); it != continuations.rend(); ++it) {
    pending_.push_front(*it);
  }
}

void StencilService::reopen_card(Card& card, SimTime resume_at) {
  // Sessions hold the card's buffers and compiled programs; they must be
  // torn down before the device they were built on.
  card.sessions.clear();
  card.device.reset();
  // Reopen: the card's FaultPlan spans generations, so a failed core stays
  // failed (unless a probe healed it) and the next session on this card
  // shrinks its batch width accordingly.
  card.device = ttmetal::Device::open(card.spec, card.dev_cfg);
  // A reboot does not rewind time: restore the card clock so service
  // latencies stay monotone.
  card.device->hw().engine().run_until(resume_at);
}

void StencilService::handle_card_failure(Card& card, const std::string& why,
                                         bool retryable) {
  ++metrics_.card_reopens;
  const SimTime old_now = card.device->now();

  // Health bookkeeping: the first failure degrades the card; a streak
  // quarantines it (the scheduler stops feeding it until a probe passes).
  card.clean_streak = 0;
  ++card.consecutive_failures;
  if (card.consecutive_failures >= cfg_.health.quarantine_after) {
    if (card.health != CardHealth::kQuarantined) ++metrics_.quarantines;
    card.health = CardHealth::kQuarantined;
    card.probe_at = old_now + cfg_.health.probe_after;
  } else if (card.health == CardHealth::kHealthy) {
    card.health = CardHealth::kDegraded;
  }

  std::vector<std::uint64_t> victims;
  for (const auto& fl : card.inflight)
    for (std::uint64_t id : fl.members) victims.push_back(id);
  card.inflight.clear();
  // Drop what never started off the wedged queues (and clear the parked
  // host error) so teardown does not trip over half-enqueued work.
  metrics_.commands_cancelled += card.device->cancel_queues();
  reopen_card(card, old_now);

  // Oldest-first victims requeue to the *front* of the pending queue in
  // their original order (reverse iteration + push_front). A victim with a
  // checkpoint resumes from it — only the lost segment re-runs.
  for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
    const std::uint64_t id = *it;
    auto& r = results_.at(id);
    Pending& p = requests_.at(id);
    const bool expired = p.req.deadline != 0 && p.req.deadline <= old_now;
    if (!retryable || r.retries >= cfg_.max_retries || expired) {
      if (expired) {
        r.deadline_missed = true;
        ++metrics_.tenants[p.req.tenant].deadline_missed;
      }
      fail_request(id, why);
      continue;
    }
    ++r.retries;
    metrics_.iterations_saved += static_cast<std::uint64_t>(p.iterations_done);
    // The retried segment must not dispatch before the failure was observed.
    p.req.arrival = std::max(p.req.arrival, old_now);
    r.card = -1;
    r.batch_size = 0;
    pending_.push_front(id);
  }
}

void StencilService::probe_card(Card& card) {
  ++metrics_.probes;
  const SimTime at = std::max(card.device->now(), card.probe_at);
  if (cfg_.health.heal_on_probe && card.dev_cfg.fault_plan != nullptr) {
    // Field service resets the flapping card's transient core faults; kills
    // scripted for later times survive, so a card can flap repeatedly.
    card.dev_cfg.fault_plan->heal_dead_cores(at);
  }
  reopen_card(card, at);
  const int slot = cfg_.run.cores_x * cfg_.run.cores_y;
  const int usable = static_cast<int>(card.device->usable_workers().size());
  if (usable >= slot) {
    // Readmit on probation: degraded until readmit_successes clean harvests.
    card.health = CardHealth::kDegraded;
    card.consecutive_failures = 0;
    card.clean_streak = 0;
    ++metrics_.readmissions;
    return;
  }
  if (cfg_.health.heal_on_probe) {
    card.probe_at = at + cfg_.health.probe_after;  // the flap may clear later
  } else {
    card.retired = true;  // dead silicon, no field service: written off
  }
}

bool StencilService::step() {
  bool progress = false;
  // Readmission probes due on the service clock run first, so a recovered
  // card is back in the pool before this step's dispatch decisions.
  const SimTime tnow = now();
  for (auto& c : cards_) {
    if (c->health == CardHealth::kQuarantined && !c->retired &&
        tnow >= c->probe_at) {
      probe_card(*c);
      progress = true;
    }
  }
  // Sharded sessions dispatch first: a group of idle cards is easiest to
  // assemble before the single-card scheduler parcels them out. Ids are
  // snapshotted because a dispatched segment rewrites the queue.
  auto try_sharded = [&](bool allow_future) {
    bool any = false;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t sid : pending_) {
      const Pending& p = requests_.at(sid);
      if (p.shard_cards == 0) continue;
      if (!allow_future && p.req.arrival > tnow) continue;
      ids.push_back(sid);
    }
    for (std::uint64_t sid : ids) {
      if (std::find(pending_.begin(), pending_.end(), sid) == pending_.end())
        continue;
      if (dispatch_sharded(sid)) any = true;
    }
    return any;
  };
  if (try_sharded(/*allow_future=*/false)) progress = true;
  // Dispatch onto the best available card for as long as batches can be
  // formed. Health first (steer away from degraded cards), then fewest
  // batches in flight, then the clock furthest behind. Load before clock
  // matters for a same-instant wave: dispatching does not advance a card's
  // clock, so a clock-only rule would stack the wave onto card 0 up to
  // pipeline depth before the rest of the pool saw any work.
  while (!pending_.empty()) {
    Card* best = nullptr;
    auto rank = [](const Card& c) {
      return std::make_tuple(c.health == CardHealth::kDegraded ? 1 : 0,
                             c.inflight.size(), c.device->now());
    };
    for (auto& c : cards_) {
      if (c->retired || c->health == CardHealth::kQuarantined) continue;
      if (c->inflight.size() >= kPipelineDepth) continue;
      if (!best || rank(*c) < rank(*best)) best = c.get();
    }
    if (!best || !dispatch_on(*best)) break;
    progress = true;
  }
  // Harvest the oldest in-flight batch across the pool.
  Card* oldest = nullptr;
  for (auto& c : cards_) {
    if (c->inflight.empty()) continue;
    if (!oldest ||
        c->inflight.front().dispatched < oldest->inflight.front().dispatched)
      oldest = c.get();
  }
  if (oldest) {
    harvest_one(*oldest);
    progress = true;
  }
  // Stall guard: work is queued but every card is quarantined. Fast-forward
  // the service clock to the earliest probe and run it; when no card can
  // ever come back, fail the queue instead of spinning. A sharded request
  // whose arrival is still in the future gets one more chance first — an
  // idle group fast-forwards to it.
  if (!progress && !pending_.empty() &&
      try_sharded(/*allow_future=*/true)) {
    progress = true;
  }
  if (!progress && !pending_.empty()) {
    Card* next_probe = nullptr;
    for (auto& c : cards_) {
      if (c->health != CardHealth::kQuarantined || c->retired) continue;
      if (!next_probe || c->probe_at < next_probe->probe_at)
        next_probe = c.get();
    }
    if (next_probe != nullptr) {
      service_now_ = std::max(service_now_, next_probe->probe_at);
      probe_card(*next_probe);
      progress = true;
    } else {
      bool any_usable = false;
      for (const auto& c : cards_) {
        if (!c->retired && c->health != CardHealth::kQuarantined)
          any_usable = true;
      }
      if (!any_usable) {
        while (!pending_.empty()) {
          const std::uint64_t id = pending_.front();
          pending_.pop_front();
          fail_request(id, "no usable card left in the pool");
        }
        progress = true;
      }
    }
  }
  return progress;
}

void StencilService::drain() {
  while (step()) {
  }
  TTSIM_CHECK_MSG(pending_.empty(), "drain() finished with requests still queued");
}

const RequestResult& StencilService::result(std::uint64_t ticket_id) const {
  auto it = results_.find(ticket_id);
  if (it == results_.end()) TTSIM_THROW_API("unknown ticket id " << ticket_id);
  return it->second;
}

SimTime StencilService::now() const {
  SimTime t = service_now_;
  for (const auto& c : cards_) t = std::max(t, c->device->hw().engine().now());
  return t;
}

}  // namespace ttsim::serve
