/// \file checkpoint.cpp
/// SessionCheckpoint: CRC-sealed padded device images (see checkpoint.hpp).

#include "ttsim/serve/checkpoint.hpp"

#include "ttsim/common/check.hpp"
#include "ttsim/common/crc32.hpp"

namespace ttsim::serve {

SessionCheckpoint SessionCheckpoint::capture(std::vector<bfloat16_t> image,
                                             int iterations_done, SimTime at) {
  TTSIM_CHECK_MSG(!image.empty(), "cannot checkpoint an empty device image");
  TTSIM_CHECK(iterations_done > 0);
  SessionCheckpoint c;
  c.image_ = std::move(image);
  c.iterations_done_ = iterations_done;
  c.captured_at_ = at;
  c.crc_ = crc32(std::as_bytes(std::span{c.image_}));
  return c;
}

const std::vector<bfloat16_t>& SessionCheckpoint::image() const {
  TTSIM_CHECK_MSG(!image_.empty(), "restore from an empty checkpoint");
  const std::uint32_t seen = crc32(std::as_bytes(std::span{image_}));
  TTSIM_CHECK_MSG(seen == crc_, "checkpoint CRC mismatch: sealed 0x"
                                    << std::hex << crc_ << " observed 0x" << seen
                                    << std::dec
                                    << " — host-side checkpoint corrupted");
  return image_;
}

}  // namespace ttsim::serve
