#pragma once
/// \file checkpoint.hpp
/// Host-side session checkpoints for the serving layer.
///
/// The format is PR 1's run_jacobi_resilient checkpoint, lifted to a named
/// type: the exact padded BF16 device image (PaddedLayout geometry — the
/// boundary rows/columns and the Fig. 5 alignment padding included), plus
/// how many Jacobi sweeps produced it. Because the image is the bit-exact
/// device state, restoring it onto ANY card — the same one after a reopen,
/// or a different card in the pool — and running the remaining sweeps
/// reproduces the undisturbed solve bit for bit: per-element BF16
/// arithmetic does not depend on which cores execute it.
///
/// Integrity: the image carries a CRC-32 (the same polynomial the
/// checksummed PCIe path uses, common/crc32.hpp) sealed at capture time and
/// verified before every restore, so host-side corruption of a parked
/// checkpoint is caught at the migration boundary instead of surfacing as a
/// silently wrong solution.

#include <cstdint>
#include <span>
#include <vector>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/common/units.hpp"

namespace ttsim::serve {

class SessionCheckpoint {
 public:
  SessionCheckpoint() = default;

  /// Seal `image` (the exact device readback after `iterations_done`
  /// sweeps) as a checkpoint, taking ownership and computing the CRC.
  static SessionCheckpoint capture(std::vector<bfloat16_t> image,
                                   int iterations_done, SimTime at);

  bool empty() const { return image_.empty(); }
  int iterations_done() const { return iterations_done_; }
  SimTime captured_at() const { return captured_at_; }
  std::uint32_t crc() const { return crc_; }
  std::uint64_t bytes() const { return image_.size() * sizeof(bfloat16_t); }

  /// The sealed image, CRC-verified on every access (CheckError names the
  /// expected and observed CRC on mismatch). Restore paths upload exactly
  /// these bytes.
  const std::vector<bfloat16_t>& image() const;

 private:
  std::vector<bfloat16_t> image_;
  int iterations_done_ = 0;
  SimTime captured_at_ = 0;
  std::uint32_t crc_ = 0;
};

}  // namespace ttsim::serve
