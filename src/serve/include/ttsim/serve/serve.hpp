#pragma once
/// \file serve.hpp
/// Asynchronous multi-tenant stencil serving on a pool of simulated cards.
///
/// A StencilService accepts Jacobi solve requests from many tenants and runs
/// them on N simulated Grayskull e150s. Three mechanisms buy throughput over
/// serial blocking dispatch:
///
///   1. **Spatial batching** — up to max_batch same-shape requests launch as
///      ONE program on disjoint core groups (jacobi_batch.hpp), paying the
///      ~500 us program-dispatch cost once and running the solves in
///      parallel across the grid.
///   2. **Async overlap** — each card drives three command queues (writes,
///      programs, reads) ordered by events, so batch j+1's host->device
///      staging rides the PCIe bus while batch j's kernels occupy the cores
///      (double-banked slot buffers make this safe).
///   3. **Session caching** — per (card, shape) sessions hold the streaming
///      buffers and the compiled batch programs; a shape pays its setup cost
///      once and every later request reuses it.
///
/// Scheduling is priority-first, then round-robin across tenants within a
/// priority (fair share), with same-shape head-of-line coalescing to form
/// batches. The pending queue is bounded: when full, submit() rejects with a
/// retry-after hint (backpressure) instead of queueing unboundedly.
///
/// Resilience rides on the PR-1 device machinery: with a watchdog configured
/// (DeviceConfig::sim_time_limit) a FaultPlan core kill surfaces as
/// DeviceTimeoutError at harvest; the service reopens the card (the shared
/// FaultPlan keeps the core dead), rebuilds its sessions on the surviving
/// workers — shrinking that card's batch width, not the whole service — and
/// requeues the in-flight requests (bounded by max_retries).
///
/// Everything is simulated time on the cards' deterministic engines: the
/// same submission sequence always produces the same timeline, latencies and
/// span trace (byte-identical across runs — the loadgen pins this).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::serve {

/// Everything that shapes the compiled program and the session buffers.
/// Boundary values are NOT part of the key: they only change the initial
/// image (per-request data), so requests with different physics batch
/// together as long as the shapes match.
struct ShapeKey {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  int iterations = 0;
  std::uint32_t chunk_elems = 0;
  int read_ahead = 0;
  auto operator<=>(const ShapeKey&) const = default;
};

/// One tenant request: solve `problem` some time at or after `arrival`
/// (simulated time on the service clock).
struct Request {
  core::JacobiProblem problem;
  int tenant = 0;
  int priority = 0;       ///< higher dispatches first
  SimTime arrival = 0;    ///< earliest dispatch time (simulated)
  SimTime deadline = 0;   ///< absolute sim time; 0 = none. Missed-at-dispatch
                          ///< requests fail; missed-at-completion ones are
                          ///< delivered but counted as deadline_missed.
};

enum class RequestStatus : std::uint8_t {
  kQueued,     ///< admitted, not yet completed
  kCompleted,  ///< solution delivered
  kFailed,     ///< invalid shape, deadline missed at dispatch, or retries
               ///< exhausted after card faults
  kRejected,   ///< backpressure: pending queue full at submit
};

/// Submit outcome. Rejected tickets carry a retry-after hint (the earliest
/// simulated time resubmission is worth attempting).
struct Ticket {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::kQueued;
  SimTime retry_after = 0;
};

/// Final state of one request (query via StencilService::result()).
struct RequestResult {
  RequestStatus status = RequestStatus::kQueued;
  int tenant = 0;
  int card = -1;          ///< card that ran it (-1 until dispatched)
  int batch_size = 0;     ///< slots in the launch that carried it
  int retries = 0;        ///< times requeued after a card fault
  SimTime admit = 0;      ///< arrival time as admitted
  SimTime dispatched = 0; ///< batch formation time on the card clock
  SimTime completed = 0;  ///< D2H readback done
  SimTime latency = 0;    ///< completed - admit
  bool deadline_missed = false;
  std::string error;            ///< kFailed: why
  std::vector<float> solution;  ///< interior, row-major (kCompleted only)
};

struct ServiceConfig {
  int cards = 1;
  sim::GrayskullSpec spec;
  /// Per-card device config. Shared fault_plan spans card reopens, so a
  /// failed core stays failed for the service's lifetime. Set
  /// sim_time_limit to arm the watchdog that converts core kills into
  /// recoverable DeviceTimeoutErrors.
  ttmetal::DeviceConfig device;
  /// Per-slot solver config; strategy must be kRowChunk. cores_x * cores_y
  /// workers serve one request; a card batches as many slots as its usable
  /// workers allow (capped by max_batch).
  core::DeviceRunConfig run;
  int max_batch = 8;
  /// Bounded admission queue; submissions beyond this reject (backpressure).
  std::size_t queue_capacity = 256;
  /// Retry-after hint attached to rejections, added to the service clock.
  SimTime retry_after = 1 * kMillisecond;
  /// Requeue budget per request across card faults.
  int max_retries = 1;
  /// Record per-request spans (admit/queue/h2d/kernel/d2h) in spans().
  bool record_spans = true;
};

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_missed = 0;
  std::vector<SimTime> latencies;  ///< completed requests, admission order
};

struct ServiceMetrics {
  std::map<int, TenantStats> tenants;
  std::uint64_t batches = 0;           ///< programs launched
  std::uint64_t batched_requests = 0;  ///< requests carried by those launches
  std::uint64_t session_cache_hits = 0;
  std::uint64_t session_cache_misses = 0;
  std::uint64_t card_reopens = 0;  ///< devices lost to faults and reopened
  std::size_t max_queue_depth = 0;

  /// Latency percentile over every completed request (0 when none).
  SimTime latency_percentile(double p) const;
  SimTime p50() const { return latency_percentile(0.50); }
  SimTime p99() const { return latency_percentile(0.99); }
  std::uint64_t total_completed() const;
};

/// The serving frontend. Single-threaded and deterministic: submit requests
/// (arrival times non-decreasing per your workload model), then drain() — or
/// interleave submit/drain waves for closed-loop clients.
class StencilService {
 public:
  explicit StencilService(ServiceConfig config);
  ~StencilService();

  StencilService(const StencilService&) = delete;
  StencilService& operator=(const StencilService&) = delete;

  /// Admit (or reject) one request. O(1); no simulation runs here.
  Ticket submit(const Request& request);

  /// Run the cards until every admitted request has completed or failed.
  void drain();

  /// One scheduling action (dispatch a batch or harvest the oldest in-flight
  /// one). Returns false when there is nothing left to do.
  bool step();

  /// Final state of a submitted request (ApiError for unknown ids).
  const RequestResult& result(std::uint64_t ticket_id) const;

  const ServiceMetrics& metrics() const { return metrics_; }

  /// Per-request span trace (kServeAdmit .. kServeD2H), when
  /// ServiceConfig::record_spans. Deterministic: byte-identical canonical()
  /// across runs of the same submission sequence.
  const sim::TraceSink& spans() const { return spans_; }

  /// Service clock: the max of the card clocks and the latest admission.
  SimTime now() const;

  int cards() const { return static_cast<int>(cards_.size()); }
  /// Batch slots card `card` can currently field for `key`'s shape (shrinks
  /// when the fault plan kills cores; 0 = the card cannot serve the shape).
  int card_capacity(int card, const ShapeKey& key);

  /// Race-detector findings accumulated across every card's device, in card
  /// order. Empty unless ServiceConfig::device.enable_verify is set.
  std::vector<verify::Finding> verify_findings() const;

 private:
  struct Card;
  struct Session;
  struct InFlight;
  struct Pending;

  Session& session(Card& card, const ShapeKey& key);
  bool dispatch_on(Card& card);
  void harvest_one(Card& card);
  void handle_card_failure(Card& card, const std::string& why);
  void fail_request(std::uint64_t id, const std::string& why);
  void record_span(sim::TraceEventKind kind, SimTime ts, SimTime dur, int track,
                   std::uint64_t req, std::int32_t b = 0);
  int tenant_track(int tenant);
  int card_track(int card);

  ServiceConfig cfg_;
  std::vector<std::unique_ptr<Card>> cards_;
  std::deque<std::uint64_t> pending_;  // ticket ids awaiting dispatch
  std::map<std::uint64_t, Pending> requests_;
  std::map<std::uint64_t, RequestResult> results_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t batch_seq_ = 0;
  int rr_cursor_ = 0;  // round-robin start tenant index within a priority
  SimTime service_now_ = 0;
  ServiceMetrics metrics_;

  sim::Engine span_engine_;  // never run; clock source for the span sink
  sim::TraceSink spans_;
  std::map<int, int> tenant_tracks_;
  std::map<int, int> card_tracks_;
};

}  // namespace ttsim::serve
