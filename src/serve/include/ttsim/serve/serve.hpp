#pragma once
/// \file serve.hpp
/// Asynchronous multi-tenant stencil serving on a pool of simulated cards.
///
/// A StencilService accepts Jacobi solve requests from many tenants and runs
/// them on N simulated Grayskull e150s. Three mechanisms buy throughput over
/// serial blocking dispatch:
///
///   1. **Spatial batching** — up to max_batch same-shape requests launch as
///      ONE program on disjoint core groups (jacobi_batch.hpp), paying the
///      ~500 us program-dispatch cost once and running the solves in
///      parallel across the grid.
///   2. **Async overlap** — each card drives three command queues (writes,
///      programs, reads) ordered by events, so batch j+1's host->device
///      staging rides the PCIe bus while batch j's kernels occupy the cores
///      (double-banked slot buffers make this safe).
///   3. **Session caching** — per (card, shape) sessions hold the streaming
///      buffers and the compiled batch programs; a shape pays its setup cost
///      once and every later request reuses it.
///
/// Scheduling is priority-first, then round-robin across tenants within a
/// priority (fair share), with same-shape head-of-line coalescing to form
/// batches. The pending queue is bounded: when full, submit() rejects with a
/// retry-after hint (backpressure) instead of queueing unboundedly.
///
/// **Resilience** (see DESIGN.md, "Service resilience") rides on four
/// mechanisms layered over the PR-1 device machinery:
///
///   * **Checkpoint/migration** — with checkpoint_every = k, a solve runs as
///     ceil(iterations / k)-sweep segments; each segment's readback is
///     sealed host-side as a CRC-32'd SessionCheckpoint (the exact padded
///     BF16 device image, PR 1's resilient-solver format). When a card dies
///     mid-solve the victim requeues and its next segment uploads the
///     checkpoint onto whichever card dispatches it — bit-exact resume,
///     since the image is the whole numerical state.
///   * **Health-tracked pool** — per-card healthy / degraded / quarantined
///     states driven by harvest outcomes (health.hpp). The scheduler steers
///     work away from degraded cards and gives quarantined ones none;
///     readmission goes through a probe that reopens the card (optionally
///     healing flapping cores via FaultPlan::heal_dead_cores) and checks it
///     can still field a batch slot.
///   * **SLO-aware admission** — with slo_admission set, a deadline request
///     is rejected at submit when the EWMA batch-service estimate says it
///     cannot finish in time (retry_after = 0: resubmitting unchanged is
///     pointless). With shed_low_priority, a full queue evicts its
///     lowest-priority newest entry to admit a higher-priority newcomer
///     instead of bouncing it. With adaptive_retry, backpressure hints
///     scale with the estimated queue drain time instead of a constant.
///   * **Typed errors** — every recoverable fault (DeviceTimeoutError,
///     TransferError, DeadlockError) and every logic error (CheckError)
///     implements SimError; harvest catches the one base and consults
///     retryable() to pick requeue-and-reopen vs fail-fast.
///
/// **Multi-chip** (DESIGN.md, "Multi-chip"): the pool may mix device-family
/// members (ServiceConfig::card_specs — Grayskulls beside Wormholes), with
/// capacity and cost tracked per spec. A request whose grids exceed every
/// single card's DRAM budget is admitted as a **sharded session**: its
/// segments dispatch synchronously onto a group of idle cards cabled into a
/// per-group ChipLinkFabric and run through core/sharded.hpp's bit-exact
/// halo-exchange solver. Segment results are sealed as CRC'd checkpoints of
/// the GLOBAL padded image, so a card dying mid-group wedges only that
/// segment: the victims reopen through the health machinery, the group
/// re-forms around the casualty, and the solve resumes bit-exactly
/// (migrations are counted when the group changes).
///
/// Everything is simulated time on the cards' deterministic engines: the
/// same submission sequence always produces the same timeline, latencies and
/// span trace (byte-identical across runs — the loadgen pins this).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/serve/checkpoint.hpp"
#include "ttsim/serve/health.hpp"
#include "ttsim/sim/chiplink.hpp"
#include "ttsim/sim/trace.hpp"

namespace ttsim::serve {

/// Everything that shapes the compiled program and the session buffers.
/// Boundary values are NOT part of the key: they only change the initial
/// image (per-request data), so requests with different physics batch
/// together as long as the shapes match. With checkpointing, `iterations`
/// is the SEGMENT length (remaining sweeps capped at checkpoint_every), so
/// requests resume mid-solve batch with others at the same remaining depth.
struct ShapeKey {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  int iterations = 0;
  std::uint32_t chunk_elems = 0;
  int read_ahead = 0;
  /// transition_hash() of a general stencil program; 0 = classic Jacobi.
  /// Structure (fields, passes, taps, weights) keys the compiled program;
  /// boundary values and initial fields stay per-request data, so gallery
  /// requests with different physics batch together like Jacobi ones do.
  std::uint64_t program = 0;
  /// Solver strategy the session's programs compile for (DeviceStrategy as
  /// int) and, for kTemporal, the chained depth. Both shape the compiled
  /// kernels, so requests only batch together when they match.
  int strategy = 0;
  int temporal_depth = 1;
  auto operator<=>(const ShapeKey&) const = default;
};

/// One tenant request: solve `problem` some time at or after `arrival`
/// (simulated time on the service clock).
struct Request {
  core::JacobiProblem problem;
  /// General radius-1 stencil program (the workload gallery and beyond).
  /// When set, `problem` is ignored: geometry and iterations come from the
  /// general problem, the session lowers through the general frontend, and
  /// the delivered `solution` is the primary field's interior. With
  /// checkpoint_every set, general solves segment exactly like Jacobi ones:
  /// each segment seals one checkpoint per WRITTEN field (read-only fields
  /// restage from the program spec), so a card fault only re-runs the lost
  /// segment and the resume is bit-exact on any card.
  std::optional<core::GeneralStencilProblem> general;
  /// Per-request solver strategy (kRowChunk or kTemporal); nullopt uses the
  /// service's run.strategy. kTemporal requests must satisfy the temporal
  /// eligibility rules (cores_x == 1, width <= 1024 or a multiple of 1024,
  /// general programs single-pass) or they fail at submit.
  std::optional<core::DeviceStrategy> strategy;
  /// kTemporal: iterations chained per DRAM pass; 0 uses the service's
  /// run.temporal_depth.
  int temporal_depth = 0;
  int tenant = 0;
  int priority = 0;       ///< higher dispatches first
  SimTime arrival = 0;    ///< earliest dispatch time (simulated)
  SimTime deadline = 0;   ///< absolute sim time; 0 = none. Missed-at-dispatch
                          ///< requests fail; missed-at-completion ones are
                          ///< delivered but counted as deadline_missed.
};

enum class RequestStatus : std::uint8_t {
  kQueued,     ///< admitted, not yet completed
  kCompleted,  ///< solution delivered
  kFailed,     ///< invalid shape, deadline missed at dispatch, or retries
               ///< exhausted after card faults
  kRejected,   ///< backpressure (queue full / shed) or SLO-infeasible
};

/// Submit outcome. Rejected tickets carry a retry-after hint: the earliest
/// simulated time resubmission is worth attempting, or 0 when resubmitting
/// the same request is pointless (deadline infeasible — relax it instead).
struct Ticket {
  std::uint64_t id = 0;
  RequestStatus status = RequestStatus::kQueued;
  SimTime retry_after = 0;
};

/// Final state of one request (query via StencilService::result()).
struct RequestResult {
  RequestStatus status = RequestStatus::kQueued;
  int tenant = 0;
  int card = -1;          ///< card that ran it (-1 until dispatched)
  int batch_size = 0;     ///< slots in the launch that carried it
  int retries = 0;        ///< times requeued after a card fault
  int migrations = 0;     ///< checkpoint resumes on a different card
  SimTime admit = 0;      ///< arrival time as admitted
  SimTime dispatched = 0; ///< batch formation time on the card clock
  SimTime completed = 0;  ///< D2H readback done
  SimTime latency = 0;    ///< completed - admit
  SimTime retry_after = 0;  ///< kRejected: the ticket's resubmission hint
  bool deadline_missed = false;
  std::string error;            ///< kFailed: why
  std::vector<float> solution;  ///< interior, row-major (kCompleted only)
  /// Sharded multi-card sessions only: the cards of the LAST segment's
  /// group (empty for single-card requests). `card` holds the group head.
  std::vector<int> group;
};

struct ServiceConfig {
  int cards = 1;
  sim::GrayskullSpec spec;
  /// Per-card spec overrides — a heterogeneous pool mixing device family
  /// members (Grayskull e150s beside Wormholes). Empty = every card uses
  /// `spec`; otherwise size must equal `cards`. Capacity (usable workers,
  /// DRAM budget) and cost (the EWMA admission history is keyed per spec)
  /// are tracked per family member.
  std::vector<sim::DeviceSpec> card_specs;
  /// Chip-to-chip link parameters for sharded multi-card sessions; nullopt
  /// derives them from the group head's spec (ChipLinkConfig::from_spec —
  /// Ethernet on Wormhole, the PCIe-host bounce on Grayskull).
  std::optional<sim::ChipLinkConfig> link;
  /// Per-card device config. Shared fault_plan spans card reopens, so a
  /// failed core stays failed for the service's lifetime. Set
  /// sim_time_limit to arm the watchdog that converts core kills into
  /// recoverable DeviceTimeoutErrors.
  ttmetal::DeviceConfig device;
  /// Per-card overrides of `device` (empty = every card uses `device`;
  /// otherwise size must equal `cards`). Lets chaos scenarios give each
  /// card its own fault plan so one card can storm while its pool-mates
  /// stay clean.
  std::vector<ttmetal::DeviceConfig> card_devices;
  /// Per-slot solver config; strategy must be kRowChunk or kTemporal (a
  /// per-request Request::strategy can override either way). cores_x *
  /// cores_y workers serve one request; a card batches as many slots as its
  /// usable workers allow (capped by max_batch).
  core::DeviceRunConfig run;
  int max_batch = 8;
  /// Bounded admission queue; submissions beyond this reject (backpressure).
  std::size_t queue_capacity = 256;
  /// Retry-after hint attached to rejections, added to the service clock.
  SimTime retry_after = 1 * kMillisecond;
  /// Requeue budget per request across card faults.
  int max_retries = 1;
  /// Record per-request spans (admit/queue/h2d/kernel/d2h) in spans().
  bool record_spans = true;
  /// Checkpoint period in sweeps: a solve (classic Jacobi or general) runs
  /// as segments of at most this many iterations, each segment's result
  /// sealed host-side as a migratable checkpoint (one per written field for
  /// general programs). 0 (default) disables checkpointing — a card fault
  /// restarts the solve from scratch, exactly the pre-resilience behavior.
  int checkpoint_every = 0;
  /// Health state machine knobs (degrade / quarantine / probe / readmit).
  HealthConfig health;
  /// Reject deadline requests at submit when the EWMA service-time estimate
  /// says they cannot finish in time (retry_after = 0 on the ticket).
  bool slo_admission = false;
  /// When the queue is full, evict its lowest-priority newest entry to make
  /// room for a strictly higher-priority newcomer (the evictee is rejected
  /// with a retry hint) instead of rejecting the newcomer.
  bool shed_low_priority = false;
  /// Scale backpressure retry-after hints with the estimated time to drain
  /// the current queue instead of the constant `retry_after`.
  bool adaptive_retry = false;
};

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_missed = 0;
  std::vector<SimTime> latencies;  ///< completed requests, admission order
};

struct ServiceMetrics {
  std::map<int, TenantStats> tenants;
  std::uint64_t batches = 0;           ///< programs launched
  std::uint64_t batched_requests = 0;  ///< requests carried by those launches
  std::uint64_t session_cache_hits = 0;
  std::uint64_t session_cache_misses = 0;
  std::uint64_t card_reopens = 0;  ///< devices lost to faults and reopened
  std::size_t max_queue_depth = 0;

  // -- resilience --
  std::uint64_t checkpoints_taken = 0;   ///< segment results sealed host-side
  std::uint64_t checkpoint_bytes = 0;    ///< total bytes across those seals
  std::uint64_t migrations = 0;          ///< checkpoint resumes on a new card
  std::uint64_t iterations_saved = 0;    ///< sweeps a retry did NOT redo
  std::uint64_t shed = 0;                ///< queued requests evicted for
                                         ///< higher-priority newcomers
  std::uint64_t infeasible_rejects = 0;  ///< SLO-admission rejects
  std::uint64_t quarantines = 0;         ///< healthy/degraded -> quarantined
  std::uint64_t probes = 0;              ///< readmission probes run
  std::uint64_t readmissions = 0;        ///< probes that passed
  std::uint64_t commands_cancelled = 0;  ///< queue entries dropped off wedged
                                         ///< devices before reopen

  // -- sharded multi-card sessions --
  std::uint64_t sharded_sessions = 0;    ///< requests admitted as card groups
  std::uint64_t sharded_segments = 0;    ///< group launches across those
  std::uint64_t sharded_link_bytes = 0;  ///< halo bytes over chip links

  /// Latency percentile over every completed request (0 when none).
  SimTime latency_percentile(double p) const;
  SimTime p50() const { return latency_percentile(0.50); }
  SimTime p99() const { return latency_percentile(0.99); }
  SimTime p999() const { return latency_percentile(0.999); }
  std::uint64_t total_completed() const;
};

/// The serving frontend. Single-threaded and deterministic: submit requests
/// (arrival times non-decreasing per your workload model), then drain() — or
/// interleave submit/drain waves for closed-loop clients.
class StencilService {
 public:
  explicit StencilService(ServiceConfig config);
  ~StencilService();

  StencilService(const StencilService&) = delete;
  StencilService& operator=(const StencilService&) = delete;

  /// Admit (or reject) one request. O(queue) worst case; no simulation runs
  /// here.
  Ticket submit(const Request& request);

  /// Run the cards until every admitted request has completed or failed.
  void drain();

  /// One scheduling action (dispatch a batch, harvest the oldest in-flight
  /// one, or probe a quarantined card). Returns false when there is nothing
  /// left to do.
  bool step();

  /// Final state of a submitted request (ApiError for unknown ids).
  const RequestResult& result(std::uint64_t ticket_id) const;

  const ServiceMetrics& metrics() const { return metrics_; }

  /// Per-request span trace (kServeAdmit .. kServeD2H), when
  /// ServiceConfig::record_spans. Deterministic: byte-identical canonical()
  /// across runs of the same submission sequence.
  const sim::TraceSink& spans() const { return spans_; }

  /// Service clock: the max of the card clocks and the latest admission.
  SimTime now() const;

  int cards() const { return static_cast<int>(cards_.size()); }
  /// Batch slots card `card` can currently field for `key`'s shape (shrinks
  /// when the fault plan kills cores; 0 = the card cannot serve the shape).
  int card_capacity(int card, const ShapeKey& key);
  /// Current health state of `card` (see health.hpp for the machine).
  CardHealth card_health(int card) const;
  /// The device-family spec card `card` was opened with.
  const sim::DeviceSpec& card_spec(int card) const;
  /// EWMA batch-cost history for (program transition hash, spec name); 0 =
  /// no history yet. The SLO admission estimate reads exactly this table.
  SimTime ewma_cost(std::uint64_t program, const std::string& spec_name) const;

  /// Race-detector findings accumulated across every card's device, in card
  /// order. Empty unless ServiceConfig::device.enable_verify is set.
  std::vector<verify::Finding> verify_findings() const;

 private:
  struct Card;
  struct Session;
  struct InFlight;
  struct Pending;

  Session& session(Card& card, const ShapeKey& key,
                   const core::GeneralStencilProblem* general);
  /// The shape of `p`'s NEXT segment (remaining sweeps, capped at
  /// checkpoint_every when checkpointing is on).
  ShapeKey effective_key(const Pending& p) const;
  bool dispatch_on(Card& card);
  /// Synchronous group dispatch of one sharded request's next segment onto
  /// idle cards. Returns false when too few idle cards are available yet.
  bool dispatch_sharded(std::uint64_t id);
  void harvest_one(Card& card);
  void handle_card_failure(Card& card, const std::string& why, bool retryable);
  void reopen_card(Card& card, SimTime resume_at);
  /// Readmission probe for a quarantined card (heal, reopen, capacity
  /// check). Passing readmits as degraded; failing reschedules or retires.
  void probe_card(Card& card);
  void note_clean_harvest(Card& card);
  void fail_request(std::uint64_t id, const std::string& why);
  /// Batch slots currently fielded by cards the scheduler may use.
  int active_slots() const;
  /// EWMA-based estimate of when a request admitted now would complete; 0
  /// when there is no service-time history for ITS program yet. History is
  /// kept per program hash (gallery programs cost a fraction of a Jacobi
  /// batch), so a mixed-tenant pool neither over-rejects cheap workloads
  /// nor under-rejects expensive ones.
  SimTime estimate_completion(const Request& request) const;
  SimTime backpressure_hint() const;
  /// cfg_.run with the strategy / temporal depth the key's session compiled
  /// for (per-request overrides land in the key at admission).
  core::DeviceRunConfig run_for(const ShapeKey& key) const;
  void record_span(sim::TraceEventKind kind, SimTime ts, SimTime dur, int track,
                   std::uint64_t req, std::int32_t b = 0);
  int tenant_track(int tenant);
  int card_track(int card);

  ServiceConfig cfg_;
  std::vector<std::unique_ptr<Card>> cards_;
  std::deque<std::uint64_t> pending_;  // ticket ids awaiting dispatch
  std::map<std::uint64_t, Pending> requests_;
  std::map<std::uint64_t, RequestResult> results_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t batch_seq_ = 0;
  int rr_cursor_ = 0;  // round-robin start tenant index within a priority
  SimTime service_now_ = 0;
  /// EWMA of dispatch->readback per batch, keyed by (program hash, spec
  /// name): a Wormhole retires the same program at a different cost than a
  /// Grayskull, so a hash-only key would let one family member's history
  /// poison the other's admission estimates in a mixed pool (and gallery
  /// programs already cost a fraction of a Jacobi batch — the hash half of
  /// the key). Estimates read the OPTIMISTIC (minimum) cost across specs.
  std::map<std::pair<std::uint64_t, std::string>, SimTime> ewma_batch_;
  ServiceMetrics metrics_;

  sim::Engine span_engine_;  // never run; clock source for the span sink
  sim::TraceSink spans_;
  std::map<int, int> tenant_tracks_;
  std::map<int, int> card_tracks_;
};

}  // namespace ttsim::serve
