#pragma once
/// \file health.hpp
/// Per-card health tracking for the serving pool.
///
/// Each card moves through a small state machine driven by how its batches
/// end:
///
///     healthy --failure--> degraded --repeat--> quarantined
///        ^                    |  ^                   |
///        +--clean harvests----+  +---probe passes----+
///
///  * A **failure** is any recoverable fault at harvest — watchdog timeout,
///    transfer-retry exhaustion, engine deadlock from a core kill. The first
///    one degrades the card; `quarantine_after` consecutive ones quarantine
///    it.
///  * **Degraded** cards still serve but the scheduler steers work away from
///    them (they are picked only when no healthy card has pipeline room).
///    `readmit_successes` consecutive clean harvests promote them back to
///    healthy.
///  * **Quarantined** cards take no work. In-flight requests migrate to other
///    cards via their checkpoints. After `probe_after` of simulated time the
///    service probes the card: optionally heals its transient core faults
///    (`heal_on_probe` — the FaultPlan::heal_dead_cores flap hook), reopens
///    a fresh device generation, and checks it can field at least one batch
///    slot. A passing probe readmits the card as degraded (probation); a
///    failing one either reschedules the probe (`heal_on_probe`, the flap
///    may clear later) or retires the card for good — dead silicon with no
///    field service never comes back.
///
/// All transitions happen in deterministic scheduler order on simulated
/// time, so a seeded chaos run produces a byte-identical health history.

#include "ttsim/common/units.hpp"

namespace ttsim::serve {

enum class CardHealth : std::uint8_t {
  kHealthy,      ///< full member of the pool
  kDegraded,     ///< serving, but deprioritized; on probation
  kQuarantined,  ///< taking no work; awaiting probe (or retired)
};

const char* to_string(CardHealth health);

struct HealthConfig {
  /// Consecutive recoverable failures that quarantine a card. The first
  /// failure always degrades it.
  int quarantine_after = 2;
  /// Simulated time a quarantined card sits out before a readmission probe.
  SimTime probe_after = 10 * kMillisecond;
  /// Consecutive clean harvests that promote degraded back to healthy.
  int readmit_successes = 2;
  /// Probes call FaultPlan::heal_dead_cores before reopening — models field
  /// service resetting a transient (flapping) card. Off by default: failed
  /// silicon stays failed and an unserviceable card retires.
  bool heal_on_probe = false;
};

}  // namespace ttsim::serve
