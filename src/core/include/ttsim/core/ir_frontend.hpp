#pragma once
/// \file ir_frontend.hpp
/// Problem-level entry points into the dataflow IR: build the protocol
/// graph a device run of the given problem/config would execute, without
/// opening a device. The graphs carry real geometry (decomposition,
/// chunking, slot-ring and slab sizing) but placeholder DRAM addresses,
/// so they are for static checking (ir::check) and inspection (ir::dump)
/// — the device drivers install graphs with live addresses themselves
/// when DeviceRunConfig::lowering == LoweringPath::kIr.

#include <cstdint>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/ir/ir.hpp"

namespace ttsim::core {

/// IR graph of the Jacobi program `cfg` would launch for `p`. Supported
/// strategies: kRowChunk, kSramResident, kTemporal (the Section-IV tiled
/// programs predate the flow-controlled protocol the IR models); anything
/// else throws ApiError, as do configs the device driver itself would
/// reject (bad decomposition, temporal depth that overflows L1, ...).
ir::Graph jacobi_ir_graph(const JacobiProblem& p, const DeviceRunConfig& cfg,
                          std::int64_t sram_bytes = std::int64_t{1} << 20);

/// IR graph of the general radius-1 stencil program `cfg` would launch
/// for `p` (row-chunk, SRAM-resident or temporal lowering).
ir::Graph general_ir_graph(const GeneralStencilProblem& p,
                           const DeviceRunConfig& cfg,
                           std::int64_t sram_bytes = std::int64_t{1} << 20);

}  // namespace ttsim::core
