#pragma once
/// \file resilience.hpp
/// Fault-tolerant Jacobi driver: checkpoint/restart on top of the Device
/// watchdog, checksummed transfers and faulty-core remapping.
///
/// The solve proceeds in chunks of `checkpoint_every` iterations; after each
/// chunk the freshest grid is snapshotted to the host. A hang (watchdog
/// timeout — e.g. a FaultPlan core kill parking a kernel forever) wedges the
/// simulated card, so recovery opens a *fresh* Device generation, shrinks
/// the decomposition onto the surviving workers (the FaultPlan remembers
/// failed silicon across reopens), re-uploads the last checkpoint and
/// replays from there. Replay is BF16-bit-exact: the checkpoint is the exact
/// device image, so a recovered solve still verifies against the CPU
/// reference.

#include <memory>
#include <string>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/sim/fault.hpp"

namespace ttsim::core {

struct ResilienceOptions {
  /// Iterations between host-side checkpoints (also the launch chunk size).
  int checkpoint_every = 100;
  /// Give up after this many device-generation restarts.
  int max_restarts = 3;
  /// Watchdog bound per launched chunk, in simulated time measured from
  /// kernel start. 0 = auto: a generous bound derived from the chunk's
  /// update count (a true hang drains the event queue and is detected
  /// immediately regardless, so the bound only trips livelock).
  SimTime watchdog_limit = 0;
  /// CRC-verify every host<->device transfer and retry transient corruption.
  bool checksum_transfers = true;
};

struct ResilientRunResult {
  std::vector<float> solution;  ///< interior, row-major
  bool verified_ok = true;      ///< only meaningful when config.verify
  int restarts = 0;             ///< device generations lost to faults
  int transfer_retries = 0;     ///< checksummed-transfer retries, summed
  int iterations_replayed = 0;  ///< sweeps re-run after restoring checkpoints
  int cores_used = 0;           ///< grid of the final (surviving) generation
  SimTime kernel_time = 0;      ///< summed over successful launches
  SimTime total_time = 0;       ///< summed over all generations, incl. lost ones
  /// Canonical fault trace of the run's FaultPlan (empty without faults);
  /// byte-identical when re-run with the same seed, config and workload.
  std::string fault_summary;
};

/// Run `p` to completion despite injected faults. `fault_plan` may be null
/// (pure-overhead mode: watchdog + checksums + checkpoints, no injection).
/// Throws only when recovery is exhausted (restarts > max_restarts) or on a
/// non-recoverable transfer failure (ttmetal::TransferError carries the
/// original fault).
ResilientRunResult run_jacobi_resilient(const JacobiProblem& p,
                                        const DeviceRunConfig& config,
                                        const ResilienceOptions& options,
                                        std::shared_ptr<sim::FaultPlan> fault_plan,
                                        sim::GrayskullSpec spec = {});

}  // namespace ttsim::core
