#pragma once
/// \file jacobi_batch.hpp
/// Batched Jacobi launches: run several independent same-shape solves in ONE
/// program on disjoint core groups. A batch of B requests pays the 500 µs
/// program-dispatch cost once instead of B times and runs the B kernels in
/// parallel across the grid — the throughput lever the serving layer
/// (src/serve/) builds on. Each group gets its own iteration-barrier id, so
/// groups never synchronise with each other; circular buffers, semaphores
/// and L1 scratch are per-core resources and replicate cleanly across
/// disjoint groups.

#include <cstdint>
#include <vector>

#include "ttsim/core/jacobi_device.hpp"

namespace ttsim::core {

/// One slot of a batched launch: where this request's grids live in device
/// DRAM and which physical workers run it.
struct BatchSlot {
  std::uint64_t d1 = 0;  ///< device address of the slot's grid buffer 1
  std::uint64_t d2 = 0;  ///< device address of the slot's grid buffer 2
  /// Physical worker ids, exactly cfg.cores_x * cfg.cores_y of them;
  /// disjoint from every other slot's.
  std::vector<int> core_ids;
};

/// Build one program that solves `p` independently on every slot (row-chunk
/// or temporal strategy: the serving layer compiles per shape, and both the
/// paper's streaming design and its k-deep temporal variant are worth
/// batching). The slots share the problem
/// shape and run config; slot i writes its result into its own d1/d2 pair
/// with the usual parity (odd iteration counts finish in d2). Throws
/// ApiError on invalid decompositions or overlapping slot core sets.
void build_batched_rowchunk_program(ttmetal::Program& prog, const JacobiProblem& p,
                                    const DeviceRunConfig& cfg,
                                    const std::vector<BatchSlot>& slots);

/// Validate that `p` decomposes onto one batch slot under `cfg` — the exact
/// checks a batched launch applies (row-chunk or temporal, iterations >= 1,
/// read_ahead in [2, 64], width divisible across cores_x into 16-aligned
/// strips, cores_y <= height). Throws ApiError naming the violation; the
/// serving layer calls this at admission so bad shapes fail fast instead of
/// poisoning a batch.
void validate_batch_request(const JacobiProblem& p, const DeviceRunConfig& cfg);

/// BufferConfig for one slot's grid buffers — the same layout policy
/// run_jacobi_on_device applies to its d1/d2 pair, so a batched slot sees
/// identical DRAM placement behaviour to a standalone solve.
ttmetal::BufferConfig batch_grid_buffer_config(const DeviceRunConfig& cfg,
                                               const JacobiProblem& p);

}  // namespace ttsim::core
