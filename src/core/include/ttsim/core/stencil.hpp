#pragma once
/// \file stencil.hpp
/// Radius-1 stencils on the simulated Grayskull — the paper's future-work
/// direction ("we are now looking at more complex stencil algorithms, such
/// as atmospheric advection, on the Grayskull") grown into a general
/// frontend.
///
/// A GeneralStencilProblem (stencil_spec.hpp) names up to four fields and
/// a list of passes, each a weighted sum over the 3x3 neighbourhood with
/// an optional threshold post-op. The lowering compiles each pass onto the
/// Section VI row-chunk machinery (aliased CB read pointers, configurable
/// read-ahead) — or onto the SRAM-resident strategy for single-field
/// single-pass programs — with all products and sums performed in BF16 in
/// the listed term order, so device results are bit-exact replays of
/// cpu::general_reference_bf16. The 5-point WeightedStencil form remains
/// as the convenient special case and lowers through the same path.

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil_spec.hpp"

namespace ttsim::core {

/// Run a weighted stencil with the Section VI row-chunk machinery (aliased
/// CB read pointers, two-batch read-ahead). Lowers through the general
/// frontend (to_general); config field `toggles` is ignored and `strategy`
/// selects kSramResident when asked, row-chunk otherwise.
DeviceRunResult run_stencil_on_device(ttmetal::Device& device, const StencilProblem& p,
                                      const DeviceRunConfig& config);
DeviceRunResult run_stencil_on_device(const StencilProblem& p,
                                      const DeviceRunConfig& config,
                                      sim::GrayskullSpec spec = {});

/// Result of a general-frontend run: one interior per field, plus the
/// primary field's interior again as `solution` (the target of the last
/// pass — what a service request returns).
struct GeneralRunResult {
  std::vector<std::vector<float>> fields;  ///< per field, row-major interior
  std::vector<float> solution;             ///< fields[primary_field()]
  SimTime kernel_time = 0;
  SimTime total_time = 0;
  int cores_used = 0;
  bool verified_ok = true;  ///< only meaningful when config.verify
};

/// Run a general radius-1 stencil program. `config.strategy` must be
/// kRowChunk (any problem) or kSramResident (single-field single-pass,
/// cores_x == 1); throws ApiError otherwise. With config.verify the result
/// is checked bit-exact against cpu::general_reference_bf16.
GeneralRunResult run_general_stencil_on_device(ttmetal::Device& device,
                                               const GeneralStencilProblem& p,
                                               const DeviceRunConfig& config);
GeneralRunResult run_general_stencil_on_device(const GeneralStencilProblem& p,
                                               const DeviceRunConfig& config,
                                               sim::GrayskullSpec spec = {});

/// One slot of a batched general-stencil launch: per-field grid buffer
/// addresses (d2 entries of read-only fields may be 0) and the disjoint
/// physical workers running the slot.
struct GeneralBatchSlot {
  std::vector<std::uint64_t> d1, d2;
  std::vector<int> core_ids;
};

/// Build one program running `p` independently on every slot (row-chunk
/// lowering; each group gets its own iteration barrier, exactly like
/// build_batched_rowchunk_program). Throws ApiError on invalid
/// decompositions or overlapping slot core sets.
void build_batched_stencil_program(ttmetal::Program& prog,
                                   const GeneralStencilProblem& p,
                                   const DeviceRunConfig& cfg,
                                   const std::vector<GeneralBatchSlot>& slots);

/// Admission-time validation of a general-stencil batch slot: structural
/// problem validity plus the row-chunk decomposition checks of
/// validate_batch_request. Throws ApiError naming the violation.
void validate_stencil_request(const GeneralStencilProblem& p,
                              const DeviceRunConfig& cfg);

/// The per-field device images a run uploads: layout-padded BF16 grids
/// with boundary cells on all four sides (halo corners zero — part of the
/// tap-order contract). Exposed for the serving layer's H2D staging.
std::vector<bfloat16_t> general_field_image(const PaddedLayout& layout,
                                            const GeneralStencilProblem& p,
                                            int field);

}  // namespace ttsim::core
