#pragma once
/// \file stencil.hpp
/// Generic weighted 5-point stencils on the simulated Grayskull — the
/// paper's future-work direction ("we are now looking at more complex
/// stencil algorithms, such as atmospheric advection, on the Grayskull").
///
/// A WeightedStencil computes, per interior point,
///   out(r,c) = wc*u(r,c) + ww*u(r,c-1) + we*u(r,c+1)
///            + wn*u(r-1,c) + ws*u(r+1,c)
/// with all products and sums performed in BF16 in a fixed order (centre,
/// then W, E, N, S for the non-zero taps), so device results are bit-exact
/// replays of the CPU reference. Zero-weight taps cost nothing on the
/// device (fewer FPU passes). The Jacobi solver's averaging stencil is the
/// special case wc=0, others 0.25 — but note it is *not* arithmetically
/// identical to the dedicated Jacobi kernel, which sums first and scales
/// once (different BF16 rounding).

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil_spec.hpp"

namespace ttsim::core {

/// Run a weighted stencil with the Section VI row-chunk machinery (aliased
/// CB read pointers, two-batch read-ahead). Config fields `strategy` and
/// `toggles` are ignored; decomposition/layout fields apply.
DeviceRunResult run_stencil_on_device(ttmetal::Device& device, const StencilProblem& p,
                                      const DeviceRunConfig& config);
DeviceRunResult run_stencil_on_device(const StencilProblem& p,
                                      const DeviceRunConfig& config,
                                      sim::GrayskullSpec spec = {});

}  // namespace ttsim::core
