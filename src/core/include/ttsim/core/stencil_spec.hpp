#pragma once
/// \file stencil_spec.hpp
/// Device-independent description of a weighted 5-point stencil and its
/// problem geometry (split from stencil.hpp so CPU references build without
/// the device SDK).

#include <cstdint>
#include <vector>

#include "ttsim/core/problem.hpp"

namespace ttsim::core {

/// out(r,c) = wc*u(r,c) + ww*u(r,c-1) + we*u(r,c+1) + wn*u(r-1,c) + ws*u(r+1,c),
/// evaluated in BF16 with a fixed tap order (C, W, E, N, S) so device and
/// CPU reference agree bit for bit. Zero-weight taps cost nothing.
struct WeightedStencil {
  float wc = 0.0f;  ///< centre
  float ww = 0.0f;  ///< west  (x-1)
  float we = 0.0f;  ///< east  (x+1)
  float wn = 0.0f;  ///< north (y-1)
  float ws = 0.0f;  ///< south (y+1)

  int active_taps() const {
    return (wc != 0.0f) + (ww != 0.0f) + (we != 0.0f) + (wn != 0.0f) + (ws != 0.0f);
  }

  /// The Jacobi averaging stencil expressed as weights. Note: not
  /// arithmetically identical to the dedicated Jacobi kernel, which sums
  /// the four neighbours first and scales once (different BF16 rounding).
  static WeightedStencil jacobi() { return {0.0f, 0.25f, 0.25f, 0.25f, 0.25f}; }

  /// Explicit (FTCS) heat diffusion: u += r*laplacian, r = alpha*dt/dx^2.
  /// Stable for r <= 0.25.
  static WeightedStencil diffusion(float r) { return {1.0f - 4.0f * r, r, r, r, r}; }

  /// First-order upwind advection with Courant numbers cx = u*dt/dx >= 0,
  /// cy = v*dt/dy >= 0 (flow towards +x/+y). Stable for cx + cy <= 1.
  static WeightedStencil advection_upwind(float cx, float cy) {
    return {1.0f - cx - cy, cx, 0.0f, cy, 0.0f};
  }
};

struct StencilProblem {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  int iterations = 100;
  WeightedStencil stencil;
  float bc_left = 0.0f, bc_right = 0.0f, bc_top = 0.0f, bc_bottom = 0.0f;
  float initial = 0.0f;
  /// Optional non-uniform initial field (row-major width*height); overrides
  /// `initial` when non-empty (e.g. an advected plume).
  std::vector<float> initial_field;

  std::uint64_t points() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  std::uint64_t total_updates() const {
    return points() * static_cast<std::uint64_t>(iterations);
  }
  /// The equivalent Jacobi-problem view (layout/decomposition reuse).
  JacobiProblem geometry() const {
    JacobiProblem p;
    p.width = width;
    p.height = height;
    p.iterations = iterations;
    p.bc_left = bc_left;
    p.bc_right = bc_right;
    p.bc_top = bc_top;
    p.bc_bottom = bc_bottom;
    p.initial = initial;
    return p;
  }
};

}  // namespace ttsim::core
