#pragma once
/// \file stencil_spec.hpp
/// Device-independent description of radius-1 stencils and their problem
/// geometry (split from stencil.hpp so CPU references build without the
/// device SDK). Two levels:
///
///   * WeightedStencil — the original 5-point weighted form (kept as the
///     convenient special case).
///   * GeneralStencilProblem — the general frontend: up to four named
///     fields, each pass a per-cell transition over the 3x3 neighbourhood
///     of any field (a weighted tap sum, optionally followed by a
///     threshold post-op), evaluated in BF16 with a FIXED tap order so the
///     device and the CPU reference agree bit for bit.
///
/// The tap-order contract (see DESIGN.md, "Generic stencil frontend"):
/// terms are evaluated in their listed order — each term is one rounded
/// BF16 product weight*value, the first product seeds the accumulator and
/// every later one is added left to right, each operation rounded to BF16.
/// Factories list taps in the canonical order C, W, E, N, S, NW, NE, SW,
/// SE. Halo corner cells (outside both an edge row and an edge column)
/// hold 0 on the device image and in the reference — diagonal taps of
/// corner cells see that zero on both sides.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ttsim/core/problem.hpp"

namespace ttsim::core {

/// out(r,c) = wc*u(r,c) + ww*u(r,c-1) + we*u(r,c+1) + wn*u(r-1,c) + ws*u(r+1,c),
/// evaluated in BF16 with a fixed tap order (C, W, E, N, S) so device and
/// CPU reference agree bit for bit. Zero-weight taps cost nothing.
struct WeightedStencil {
  float wc = 0.0f;  ///< centre
  float ww = 0.0f;  ///< west  (x-1)
  float we = 0.0f;  ///< east  (x+1)
  float wn = 0.0f;  ///< north (y-1)
  float ws = 0.0f;  ///< south (y+1)

  int active_taps() const {
    return (wc != 0.0f) + (ww != 0.0f) + (we != 0.0f) + (wn != 0.0f) + (ws != 0.0f);
  }

  /// The Jacobi averaging stencil expressed as weights. Note: not
  /// arithmetically identical to the dedicated Jacobi kernel, which sums
  /// the four neighbours first and scales once (different BF16 rounding).
  static WeightedStencil jacobi() { return {0.0f, 0.25f, 0.25f, 0.25f, 0.25f}; }

  /// Explicit (FTCS) heat diffusion: u += r*laplacian, r = alpha*dt/dx^2.
  /// Stable for r <= 0.25.
  static WeightedStencil diffusion(float r) { return {1.0f - 4.0f * r, r, r, r, r}; }

  /// First-order upwind advection with Courant numbers cx = u*dt/dx >= 0,
  /// cy = v*dt/dy >= 0 (flow towards +x/+y). Stable for cx + cy <= 1.
  static WeightedStencil advection_upwind(float cx, float cy) {
    return {1.0f - cx - cy, cx, 0.0f, cy, 0.0f};
  }
};

struct StencilProblem {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  int iterations = 100;
  WeightedStencil stencil;
  float bc_left = 0.0f, bc_right = 0.0f, bc_top = 0.0f, bc_bottom = 0.0f;
  float initial = 0.0f;
  /// Optional non-uniform initial field (row-major width*height); overrides
  /// `initial` when non-empty (e.g. an advected plume).
  std::vector<float> initial_field;

  std::uint64_t points() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  std::uint64_t total_updates() const {
    return points() * static_cast<std::uint64_t>(iterations);
  }
  /// The equivalent Jacobi-problem view (layout/decomposition reuse).
  JacobiProblem geometry() const {
    JacobiProblem p;
    p.width = width;
    p.height = height;
    p.iterations = iterations;
    p.bc_left = bc_left;
    p.bc_right = bc_right;
    p.bc_top = bc_top;
    p.bc_bottom = bc_bottom;
    p.initial = initial;
    return p;
  }
};

// ---------------------------------------------------------------------------
// The general radius-1 frontend.
// ---------------------------------------------------------------------------

/// The nine taps of the 3x3 neighbourhood in their canonical (contract)
/// order. The first five match WeightedStencil's fixed order.
enum class Tap : std::uint8_t { kC = 0, kW, kE, kN, kS, kNW, kNE, kSW, kSE };

inline constexpr int kNumTaps = 9;

/// Row offset of a tap (-1 = north of the cell).
constexpr int tap_dr(Tap t) {
  constexpr std::array<int, kNumTaps> dr = {0, 0, 0, -1, 1, -1, -1, 1, 1};
  return dr[static_cast<std::size_t>(t)];
}
/// Column offset of a tap (-1 = west of the cell).
constexpr int tap_dc(Tap t) {
  constexpr std::array<int, kNumTaps> dc = {0, -1, 1, 0, 0, -1, 1, -1, 1};
  return dc[static_cast<std::size_t>(t)];
}

const char* to_string(Tap t);

/// One weighted tap term of a transition: weight * field[tap offset].
struct TapTerm {
  int field = 0;
  Tap tap = Tap::kC;
  float weight = 0.0f;
};

/// Optional non-linear step applied after the weighted tap sum S.
enum class PostOp : std::uint8_t {
  kNone,
  /// Game-of-Life threshold: out = (S == 3) + (S == 2) * self, where self
  /// is the centre value of `StencilPass::post_self_field`. With 0/1 cell
  /// states and integer neighbour counts every operation is BF16-exact.
  kLife,
};

/// One per-cell update: target = post(sum of terms). Terms are evaluated
/// in listed order (the tap-order contract); factories list them in
/// canonical tap order with zero-weight taps omitted.
struct StencilPass {
  int target = 0;                ///< field index written by this pass
  std::vector<TapTerm> terms;    ///< evaluated in order, all BF16
  PostOp post = PostOp::kNone;
  int post_self_field = 0;       ///< kLife: field supplying the survive state
};

/// Per-field geometry data: boundary values and the initial interior.
struct FieldSpec {
  std::string name;              ///< for diagnostics / gallery tables
  float bc_left = 0.0f, bc_right = 0.0f, bc_top = 0.0f, bc_bottom = 0.0f;
  float initial = 0.0f;
  /// Optional non-uniform initial interior (row-major width*height);
  /// overrides `initial` when non-empty.
  std::vector<float> initial_field;
};

/// A multi-field radius-1 stencil program: every iteration runs the passes
/// in order; a pass reading a field another pass already wrote THIS
/// iteration sees the updated values (FDTD's leapfrog), otherwise the
/// previous iteration's. At most one pass may target a given field.
struct GeneralStencilProblem {
  std::uint32_t width = 256;
  std::uint32_t height = 256;
  int iterations = 100;
  std::vector<FieldSpec> fields;   ///< at most 4 (CB id budget)
  std::vector<StencilPass> passes;

  std::uint64_t points() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  std::uint64_t total_updates() const {
    return points() * static_cast<std::uint64_t>(iterations) * passes.size();
  }
  /// Index of the pass writing field `f`, or -1 (read-only field).
  int written_pass(int f) const {
    for (std::size_t p = 0; p < passes.size(); ++p) {
      if (passes[p].target == f) return static_cast<int>(p);
    }
    return -1;
  }
  /// The field whose final state a run returns as `solution`: the target
  /// of the LAST pass (FDTD's Ez, and trivially the single updated field
  /// of one-pass problems).
  int primary_field() const {
    return passes.empty() ? 0 : passes.back().target;
  }
  /// Structural throw-on-invalid check (field/tap indices in range, at
  /// most one writer per field, every field used, initial_field sizes).
  void validate() const;
  /// Canonical FNV-1a hash over the transition structure and weights
  /// (NOT boundary/initial data): two problems with equal hashes compile
  /// to the same kernels, the serving layer's session-key ingredient.
  std::uint64_t transition_hash() const;
  /// The equivalent Jacobi-problem view (layout/decomposition reuse);
  /// carries the geometry only, not any field's boundary data.
  JacobiProblem geometry() const {
    JacobiProblem p;
    p.width = width;
    p.height = height;
    p.iterations = iterations;
    return p;
  }
};

/// Lift the 5-point special case into the general frontend (one field, one
/// pass, terms in the canonical order with zero-weight taps omitted) —
/// arithmetically identical by the tap-order contract.
GeneralStencilProblem to_general(const StencilProblem& p);

}  // namespace ttsim::core
