#pragma once
/// \file gallery.hpp
/// The workload gallery: classic stencil applications expressed as
/// GeneralStencilProblem instances (the StencilStream example set ported
/// onto the general frontend). Each factory fixes its weights, boundary
/// data and deterministic initial fields so golden traces and CPU
/// references pin the exact same run everywhere.
///
///   * hotspot    — thermal simulation with a static power-density field
///                  (two fields: temperature updated, power read-only).
///   * fdtd2d     — 2-D FDTD, transverse-electric mode (three fields,
///                  three leapfrog passes: Hx and Hy from the previous
///                  Ez, then Ez from the freshly updated Hx/Hy).
///   * convection — 9-point convection-diffusion: first-order upwind
///                  transport plus the isotropic 9-point Laplacian (the
///                  diagonal-tap stress case).
///   * life       — Conway's Game of Life: 8 unit-weight neighbour taps
///                  plus the threshold post-op (the non-linear case).

#include "ttsim/core/stencil_spec.hpp"

namespace ttsim::core::gallery {

/// Temperature diffuses (FTCS, coefficient k) while the power map injects
/// heat: T' = (1-4k)T + k(W+E+N+S) + cp*P. P holds two hot blocks.
GeneralStencilProblem hotspot(std::uint32_t width = 128, std::uint32_t height = 128,
                              int iterations = 50, float k = 0.1f, float cp = 0.05f);

/// TE-mode FDTD on a centred pulse:
///   Hx -= ch*(Ez(S) - Ez(C));  Hy += ch*(Ez(E) - Ez(C));
///   Ez += ce*((Hy(C) - Hy(W)) - (Hx(C) - Hx(N)))
/// with Ez the primary (last-pass) field.
GeneralStencilProblem fdtd2d(std::uint32_t width = 128, std::uint32_t height = 128,
                             int iterations = 40, float ch = 0.5f, float ce = 0.5f);

/// Upwind convection (Courant cx, cy >= 0) plus isotropic 9-point
/// diffusion (coefficient k): convex for cx + cy + 10k/3 <= 1.
GeneralStencilProblem convection(std::uint32_t width = 128, std::uint32_t height = 128,
                                 int iterations = 50, float cx = 0.2f, float cy = 0.1f,
                                 float k = 0.05f);

/// Conway's Game of Life on a dead border, seeded with a deterministic
/// hash-based soup of the given live-cell density.
GeneralStencilProblem life(std::uint32_t width = 128, std::uint32_t height = 128,
                           int iterations = 30, std::uint64_t seed = 42,
                           float density = 0.35f);

/// The whole gallery at a common geometry, in a fixed order (hotspot,
/// fdtd2d, convection, life) — the iteration surface for tests.
struct NamedProblem {
  const char* name;
  GeneralStencilProblem problem;
};
std::vector<NamedProblem> suite(std::uint32_t width = 64, std::uint32_t height = 48,
                                int iterations = 6);

}  // namespace ttsim::core::gallery
