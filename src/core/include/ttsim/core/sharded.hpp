#pragma once
/// \file sharded.hpp
/// Cross-card sharded stencil solver: one grid decomposed into horizontal
/// slabs, one slab per simulated card, halos exchanged over a chip-to-chip
/// ChipLinkFabric (sim/chiplink.hpp). This is the multi-chip story the
/// Wormhole follow-on papers tell, grafted onto the repo's single-card
/// strategies — and the protocol is *bit-exact*: the sharded result equals
/// the whole-domain single-card run and the CPU reference, element for
/// element, for any card count.
///
/// Deep-halo protocol (DESIGN.md "Multi-chip" derives it): with epoch
/// length k (ShardedRunConfig::exchange_every, which for kTemporal is the
/// chained depth), each interior cut side carries e = k-1 redundant
/// "extension" rows plus one frozen boundary row. Freezing a row introduces
/// staleness that propagates one row per sweep, so after k sweeps every row
/// at distance >= k from the frozen row — exactly the owned rows — still
/// holds whole-domain values. One exchange per epoch then refreshes the k
/// halo rows of each side with the neighbour's k outermost owned rows
/// (boundary row into both parity buffers, extension rows into the next
/// source), amortising the link latency over k iterations.
///
/// Cluster time: cards run an epoch in lockstep (each card's engine is
/// fast-forwarded to the cluster clock before its launch), the epoch ends at
/// the slowest card, link transfers serialise on the fabric's per-link
/// timelines from that point, and the delivery time starts the next epoch.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/stencil_spec.hpp"
#include "ttsim/sim/chiplink.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim::core {

struct ShardedRunConfig {
  /// Per-card strategy: kRowChunk or kTemporal (cores_x/cores_y, chunk and
  /// read-ahead apply per card, exactly as on a single card).
  DeviceRunConfig run;
  /// Iterations per halo exchange (epoch length k). 0 = the strategy's
  /// natural epoch: temporal_depth for kTemporal, 1 for kRowChunk. Each
  /// interior cut then stores k-1 extension rows, so every card must own at
  /// least k rows.
  int exchange_every = 0;
  /// Compare the assembled solution against the CPU bf16 reference (skipped
  /// when resuming from a checkpoint state).
  bool verify = false;
};

struct ShardedRunResult {
  /// Assembled interior of the written (Jacobi: the only) field.
  std::vector<float> solution;
  /// General runs: every field's assembled interior, in field order.
  std::vector<std::vector<float>> fields;
  SimTime kernel_time = 0;    ///< sum over epochs of the slowest card's kernels
  SimTime exchange_time = 0;  ///< critical-path link time between epochs
  SimTime total_time = 0;     ///< staging + epochs + exchanges + readback
  std::uint64_t link_bytes = 0;     ///< payload bytes crossing the fabric
  std::uint64_t link_messages = 0;  ///< messages injected into the fabric
  int cards = 0;
  int epochs = 0;
  bool verified_ok = true;
  double gpts(const JacobiProblem& p, bool kernel_only = false) const {
    const SimTime t = kernel_only ? kernel_time + exchange_time : total_time;
    return t > 0 ? static_cast<double>(p.total_updates()) / 1e9 / to_seconds(t)
                 : 0.0;
  }
};

/// A group of open cards cabled into a fabric — the convenience owner for
/// benchmarks, examples and tests. The serving layer builds fabrics over its
/// own pooled devices instead.
struct ShardedCluster {
  std::vector<std::unique_ptr<ttmetal::Device>> cards;
  std::unique_ptr<sim::ChipLinkFabric> fabric;

  /// Open `n` identical cards and cable them in a line. `link` defaults to
  /// the spec's own Ethernet parameters (ChipLinkConfig::from_spec).
  static ShardedCluster open(int n, sim::DeviceSpec spec = {},
                             ttmetal::DeviceConfig dev = {},
                             std::optional<sim::ChipLinkConfig> link = {});
  std::vector<ttmetal::Device*> devices() const;
};

/// Solve the classic Jacobi problem sharded across `cards` (position i in
/// the span is fabric position i). `state`, when non-null, is the global
/// padded bf16 image to resume from (empty = start from p's initial guess)
/// and receives the final padded image — the serving layer's
/// checkpoint/restore hook. Throws ApiError on infeasible decompositions
/// (unsupported strategy, a card owning fewer than k rows, too few workers).
ShardedRunResult run_jacobi_sharded(std::span<ttmetal::Device* const> cards,
                                    sim::ChipLinkFabric& fabric,
                                    const JacobiProblem& p,
                                    const ShardedRunConfig& cfg,
                                    std::vector<bfloat16_t>* state = nullptr);

/// Sharded run of a general single-pass gallery program (multi-pass
/// programs would need per-pass exchanges and are rejected). Read-only
/// fields are staged once and never exchanged; only the written field's
/// halo crosses the fabric. `state` holds one padded image per field.
ShardedRunResult run_general_sharded(
    std::span<ttmetal::Device* const> cards, sim::ChipLinkFabric& fabric,
    const GeneralStencilProblem& p, const ShardedRunConfig& cfg,
    std::vector<std::vector<bfloat16_t>>* state = nullptr);

/// Convenience overloads: open a fresh homogeneous line-cabled cluster of
/// `cards` cards, run, and tear it down.
ShardedRunResult run_jacobi_sharded(const JacobiProblem& p, int cards,
                                    const ShardedRunConfig& cfg,
                                    sim::DeviceSpec spec = {});
ShardedRunResult run_general_sharded(const GeneralStencilProblem& p, int cards,
                                     const ShardedRunConfig& cfg,
                                     sim::DeviceSpec spec = {});

}  // namespace ttsim::core
