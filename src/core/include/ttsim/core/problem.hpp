#pragma once
/// \file problem.hpp
/// The Jacobi/Laplace problem definition and the device memory layout.
///
/// The problem: solve Laplace's equation for diffusion on a 2-D grid with
/// fixed (Dirichlet) boundary conditions using the Jacobi iterative method
/// (paper Listing 1): unew(i,j) = 0.25*(u(i+1,j)+u(i-1,j)+u(i,j+1)+u(i,j-1)).
///
/// The device layout implements the paper's Fig. 5 fix for the 256-bit DRAM
/// alignment rule: an extra 256-bit (16 BF16 elements) region is allocated on
/// the left and right of the domain, holding the boundary values adjacent to
/// the interior, so that every 32-element result write starts on an aligned
/// address.

#include <cstdint>
#include <span>
#include <vector>

#include "ttsim/bfloat/bfloat16.hpp"
#include "ttsim/common/check.hpp"
#include "ttsim/common/units.hpp"

namespace ttsim::core {

struct JacobiProblem {
  std::uint32_t width = 512;   ///< interior elements in X (contiguous dim)
  std::uint32_t height = 512;  ///< interior elements in Y
  int iterations = 1000;

  /// Dirichlet boundary values per side — the diffusion drivers ("on the
  /// left might be high values and the right low values", Section II-B).
  float bc_left = 1.0f;
  float bc_right = 0.0f;
  float bc_top = 0.5f;
  float bc_bottom = 0.5f;
  float initial = 0.0f;  ///< initial guess in the interior

  std::uint64_t points() const {
    return static_cast<std::uint64_t>(width) * height;
  }
  /// Total point-updates across the run (the GPt/s denominator's numerator).
  std::uint64_t total_updates() const {
    return points() * static_cast<std::uint64_t>(iterations);
  }
};

/// Device-side grid layout with the Fig. 5 alignment padding.
///
/// Stored rows cover y in [-1, height] (boundary rows included); each stored
/// row is [pad | interior (width elems) | pad] where pad = 16 BF16 elements
/// (256 bits). The element adjacent to the interior on each side carries the
/// boundary condition; the rest of the pad is dead space. The row stride is
/// therefore a multiple of 32 bytes, making every 32-element (64 B) interior
/// write aligned.
class PaddedLayout {
 public:
  static constexpr std::uint32_t kPad = 16;  // 256 bits of BF16

  PaddedLayout(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height) {
    TTSIM_CHECK_MSG(width_ > 0 && height_ > 0, "empty domain");
    TTSIM_CHECK_MSG(width_ % 16 == 0,
                    "domain width must be a multiple of 16 elements so padded "
                    "rows stay 256-bit aligned (the paper limits domains to "
                    "powers of two)");
  }

  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }
  std::uint32_t row_elems() const { return width_ + 2 * kPad; }
  std::uint32_t row_bytes() const { return row_elems() * 2; }
  std::uint32_t stored_rows() const { return height_ + 2; }
  std::uint64_t elems() const {
    return static_cast<std::uint64_t>(row_elems()) * stored_rows();
  }
  std::uint64_t bytes() const { return elems() * 2; }

  /// Element index of interior coordinate (row, col); row in [-1, height],
  /// col in [-1, width] (the -1/limit values address the boundary cells).
  std::uint64_t index(std::int64_t row, std::int64_t col) const {
    TTSIM_DCHECK(row >= -1 && row <= static_cast<std::int64_t>(height_));
    TTSIM_DCHECK(col >= -1 && col <= static_cast<std::int64_t>(width_));
    return static_cast<std::uint64_t>(row + 1) * row_elems() +
           static_cast<std::uint64_t>(col + kPad);
  }
  std::uint64_t byte_offset(std::int64_t row, std::int64_t col) const {
    return index(row, col) * 2;
  }

  /// Build the initial device image: interior at the initial guess, boundary
  /// cells on all four sides, dead padding zeroed.
  std::vector<bfloat16_t> initial_image(const JacobiProblem& p) const;

  /// Extract the interior (row-major width x height floats) from a device image.
  std::vector<float> extract_interior(std::span<const bfloat16_t> image) const;

 private:
  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace ttsim::core
