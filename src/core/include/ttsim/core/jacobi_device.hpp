#pragma once
/// \file jacobi_device.hpp
/// Device-side Jacobi solvers for the simulated Grayskull, implementing every
/// version studied in the paper:
///   * kInitial          — Section IV: 32x32 batches, 34 blocking aligned
///                         reads per batch (Listing 4), data-mover memcpy
///                         into four offset CBs, per-write synchronisation,
///                         unpipelined single-page CBs.
///   * kWriteOptimised   — batch-level write barrier, pipelined CBs.
///   * kDoubleBuffered   — additionally double-buffers batch reads so reading
///                         overlaps the (dominant) memcpy.
///   * kRowChunk         — Section VI: one-dimensional 1024-element chunks
///                         read contiguously, no memcpy: the compute kernel
///                         aliases CB read pointers into the mover's local
///                         buffer via the cb_set_rd_ptr SDK extension, with
///                         reads issued two batches ahead.
/// Component toggles reproduce the Table II breakdown. Multi-core runs
/// decompose the domain in 2-D over the worker grid (Section VII).

#include <memory>
#include <string>

#include "ttsim/core/problem.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim::core {

enum class DeviceStrategy {
  kInitial,
  kWriteOptimised,
  kDoubleBuffered,
  kRowChunk,
  /// The paper's concluding proposal: keep the domain resident in the
  /// cores' SRAM across iterations and exchange halo rows directly between
  /// neighbouring cores over the NoC — DRAM is touched only for the initial
  /// load and the final writeback. Requires a Y-only decomposition
  /// (cores_x == 1), domains whose width is <= 1024 or a multiple of 1024,
  /// and slabs that fit the 1 MB SRAM.
  kSramResident,
  /// Temporal tiling: chain `temporal_depth` iterations through SRAM per
  /// DRAM pass. Each core walks its strip in row blocks; per block the
  /// reading mover fetches the block plus a depth-deep halo skirt from the
  /// epoch's source grid, the compute kernel runs `temporal_depth`
  /// trapezoidal sub-iterations entirely out of L1 slabs (the valid
  /// interior shrinks by the stencil's vertical reach per step — skirt
  /// rows are recomputed redundantly instead of exchanged), and the
  /// writing mover stores only the final generation — cutting DRAM
  /// traffic ~depth-fold. Same eligibility rules as kSramResident
  /// (cores_x == 1, width <= 1024 or a multiple of 1024) but the domain
  /// height is unbounded: only a block's working set must fit L1.
  /// Bit-exact with `temporal_depth` sequential row-chunk sweeps.
  kTemporal,
};

std::string to_string(DeviceStrategy s);

/// How the driver produces the kernel program. kIr (the default) builds the
/// dataflow-IR graph of the run, proves the protocol race/deadlock-free with
/// the static checker (src/ir) and then lowers it — the graph's emit closure
/// invokes the hand-wired builder, so the emitted Program is bit-identical
/// to kHandWired. kHandWired calls the builder directly, skipping the proof
/// (the pre-IR behaviour; also what strategies without an IR model — the
/// tiled Section-IV programs, batched multi-group launches — always use).
enum class LoweringPath {
  kIr,
  kHandWired,
};

/// Table II switches: selectively disable pipeline stages while keeping the
/// CB structure and synchronisation intact. Only honoured by the tiled
/// (Section IV) strategies, matching the paper's methodology.
struct ComponentToggles {
  bool read = true;
  bool memcpy_to_cbs = true;
  bool compute = true;
  bool write = true;
  bool all_enabled() const { return read && memcpy_to_cbs && compute && write; }
};

struct DeviceRunConfig {
  DeviceStrategy strategy = DeviceStrategy::kRowChunk;
  int cores_x = 1;  ///< cores across the X (contiguous) dimension
  int cores_y = 1;  ///< cores down the Y dimension
  ComponentToggles toggles;
  /// Grid buffer placement. kSingleBank puts u and unew in one (distinct)
  /// bank each — fine for a few cores, a bandwidth wall beyond (Table VII).
  /// kInterleaved uses tt-metal page interleaving (`interleave_page`).
  /// kStriped spreads each grid over the banks in coarse row slabs — the
  /// per-core slab placement a systolic decomposition gives naturally, and
  /// what the full-card Table VIII runs need to reach the DDR-wide ceiling.
  ttmetal::BufferLayout buffer_layout = ttmetal::BufferLayout::kSingleBank;
  std::uint64_t interleave_page = 32 * KiB;
  /// Row-chunk batch width in elements (the paper uses 1024; clamped to the
  /// per-core strip width).
  std::uint32_t chunk_elems = 1024;
  /// Read-ahead depth of the row-chunk reading mover: how many row batches
  /// it keeps in flight (issued but not yet consumed). 2 is the paper's
  /// Section VI scheme and the default; deeper values grow the local row
  /// window (2N+1 slots) and input CBs (N pages each) so more DRAM reads
  /// overlap, which is what lifts the 64+ core runs off the bank-queueing
  /// wall (see bench/ablation_read_ahead). Honoured by kRowChunk (and the
  /// stencil runner); other strategies read as the paper describes them.
  int read_ahead = 2;
  /// kTemporal only: how many iterations one DRAM pass chains through SRAM
  /// (k in [1, 8]). 1 degenerates to a blocked single-sweep; the DRAM-bytes
  /// win grows with k until the shrinking block size makes the redundant
  /// skirt dominate (see bench/ablation_temporal and DESIGN.md). Ignored by
  /// every other strategy.
  int temporal_depth = 1;
  /// kStriped only: round-robin the grid's row slabs over the banks instead
  /// of the default allocator-order hash. The hash (the paper-faithful
  /// model of per-core slab allocation) deals 16 stripes 3/2/.../1 across 8
  /// banks; once deep read-ahead drains the bank queues the 3-stripe bank
  /// is the remaining wall, so the deep-pipelining configuration pairs this
  /// with read_ahead > 2 (see bench/ablation_read_ahead).
  bool balanced_stripes = false;
  /// Verify against the BF16-exact CPU reference after the run.
  bool verify = false;
  /// Program production path: prove-then-lower through the dataflow IR
  /// (default) or call the hand-wired builder directly. Both emit the same
  /// bits; kIr additionally rejects protocol-unsound programs before launch.
  LoweringPath lowering = LoweringPath::kIr;
};

struct DeviceRunResult {
  std::vector<float> solution;  ///< interior, row-major (exact widening of BF16)
  SimTime kernel_time = 0;      ///< simulated kernel execution time
  SimTime total_time = 0;       ///< including PCIe transfers + dispatch (paper default)
  bool verified_ok = true;      ///< only meaningful when config.verify
  int cores_used = 0;           ///< after any graceful degradation
  /// Checksummed-transfer retries this run took (0 unless the device was
  /// opened with DeviceConfig::checksum_transfers and faults hit the bus).
  int transfer_retries = 0;

  /// Billion point-updates per second, the paper's metric; includes PCIe
  /// unless `kernel_only`.
  double gpts(const JacobiProblem& p, bool kernel_only = false) const {
    const SimTime t = kernel_only ? kernel_time : total_time;
    return t > 0 ? static_cast<double>(p.total_updates()) / 1e9 / to_seconds(t) : 0.0;
  }
};

/// Run the solver on an open device. Throws ApiError on invalid
/// decompositions (more cores than workers, strips thinner than the stencil).
DeviceRunResult run_jacobi_on_device(ttmetal::Device& device, const JacobiProblem& p,
                                     const DeviceRunConfig& config);

/// Convenience overload opening a fresh simulated e150.
DeviceRunResult run_jacobi_on_device(const JacobiProblem& p, const DeviceRunConfig& config,
                                     sim::GrayskullSpec spec = {});

/// Multi-card scaling (paper Section VII, e150 x2 / x4): the domain is split
/// in Y across independent cards. Cards cannot exchange halos (the paper
/// notes the answer is therefore not strictly correct); each card treats its
/// cut edges as fixed boundaries. Returns per-card maximum runtime.
struct MultiCardResult {
  SimTime kernel_time = 0;  ///< max over cards
  SimTime total_time = 0;
  int cards = 0;
  double gpts(const JacobiProblem& p, bool kernel_only = false) const {
    const SimTime t = kernel_only ? kernel_time : total_time;
    return t > 0 ? static_cast<double>(p.total_updates()) / 1e9 / to_seconds(t) : 0.0;
  }
};

MultiCardResult run_jacobi_multicard(const JacobiProblem& p, int cards,
                                     const DeviceRunConfig& config,
                                     sim::GrayskullSpec spec = {});

/// Convergence-driven solving (beyond the paper, which runs a fixed
/// iteration count): the device itself tracks max |unew - u| on the FPU
/// every `check_every` iterations (one extra subtract/abs/reduce per chunk
/// on checking sweeps, one 2-byte DRAM write per core); the host reads the
/// per-core residuals between launches and stops once the tolerance is met
/// or `problem.iterations` sweeps have run. Requires the row-chunk strategy
/// and per-core strips in full 1024-element chunks (width divisible by
/// 1024 x cores_x).
struct AdaptiveOptions {
  double tolerance = 1e-3;
  int check_every = 50;
};

struct AdaptiveRunResult {
  std::vector<float> solution;
  int iterations_run = 0;
  double final_residual = 0.0;
  bool converged = false;
  SimTime kernel_time = 0;  ///< summed over launches
  SimTime total_time = 0;
};

AdaptiveRunResult run_jacobi_adaptive(ttmetal::Device& device, const JacobiProblem& p,
                                      const AdaptiveOptions& options,
                                      const DeviceRunConfig& config);
AdaptiveRunResult run_jacobi_adaptive(const JacobiProblem& p,
                                      const AdaptiveOptions& options,
                                      const DeviceRunConfig& config,
                                      sim::GrayskullSpec spec = {});

}  // namespace ttsim::core
