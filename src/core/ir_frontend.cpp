/// \file ir_frontend.cpp
/// Dataflow-IR models of the hand-wired program builders. Every op list
/// here is a flattened, symbolically-counted transcript of the protocol
/// calls the corresponding builder emits (same ids, same pages, same
/// program order of first occurrence); every region list replays the
/// builder's create_cb / create_l1_buffer calls in creation order, which
/// is exactly Program::plan_allocate's bump order. When a builder changes
/// its protocol, the conformance and cross-validation tests catch the
/// drift — the emit closures guarantee the *lowered* program can never
/// drift, because it is the builder's own output.

#include "ir_frontend.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/common/units.hpp"
#include "ttsim/core/ir_frontend.hpp"

namespace ttsim::core::detail {
namespace {

using ir::Count;
using ir::Graph;
using ir::Guard;
using ir::KernelModel;
using ir::Op;
using ir::OpKind;
using ir::Peer;

// File-local ids of the SRAM-resident lowerings (jacobi_sram.cpp /
// stencil_sram.cpp) and the temporal lowering (jacobi_temporal.cpp).
constexpr int kSemTopHalo = 0;
constexpr int kSemBottomHalo = 1;
constexpr int kSemComputeDm0 = 2;
constexpr int kSemComputeDm1 = 3;
constexpr int kSemRestored = 4;
constexpr int kCbLoadBarrier = 0;  // jacobi_sram ignores sh->barrier_id
constexpr int kSemLoaded = 0;
constexpr int kSemComputed = 1;
constexpr int kSemFree = 2;
constexpr std::uint32_t kSlabBudget = (1u << 20) - 96 * 1024;

Op make_op(OpKind k, int id, Count c, int pages = 1,
           Guard g = Guard::kAlways, Peer peer = Peer::kSelf,
           int iter_delta = 0) {
  Op o(k, id, std::move(c), pages);
  o.guard = g;
  o.peer = peer;
  o.iter_delta = iter_delta;
  return o;
}

Op flow_op(OpKind k, Count c, std::string note) {
  Op o(k, -1, std::move(c));
  o.note = std::move(note);
  return o;
}

std::uint32_t slot_bytes_of(std::uint32_t chunk) {
  return static_cast<std::uint32_t>(align_up((chunk + 2) * 2 + 32, 64));
}

/// Core-0 chunk grid (the representative instance bound to the graph's
/// "points"/"columns" symbols) plus the across-cores maxima the builders
/// size shared buffers with.
struct StripGeom {
  std::uint32_t chunk0 = 0, ncols0 = 0, nrows0 = 0;
  std::uint32_t max_chunk = 16, max_rows = 0, min_rows = 1;
};

StripGeom strip_geom(const std::vector<CoreRange>& ranges,
                     std::uint32_t chunk_elems) {
  StripGeom g;
  const CoreRange& r0 = ranges.front();
  const std::uint32_t strip = r0.col_hi - r0.col_lo;
  std::uint32_t chunk = std::min(chunk_elems, strip);
  while (chunk > 16 && (strip % chunk != 0 || chunk % 16 != 0)) --chunk;
  TTSIM_CHECK_MSG(chunk > 0 && strip % chunk == 0,
                  "no valid chunk width for strip " << strip);
  g.chunk0 = chunk;
  g.ncols0 = strip / chunk;
  g.nrows0 = r0.row_hi - r0.row_lo;
  std::uint32_t min_rows = UINT32_MAX;
  for (const CoreRange& rg : ranges) {
    g.max_chunk = std::max(g.max_chunk,
                           std::min(chunk_elems, rg.col_hi - rg.col_lo));
    g.max_rows = std::max(g.max_rows, rg.row_hi - rg.row_lo);
    min_rows = std::min(min_rows, rg.row_hi - rg.row_lo);
  }
  g.min_rows = std::max(min_rows, 1u);
  return g;
}

/// SRAM/temporal slab row stride (32-byte-aligned prefix + data span).
std::uint32_t slab_row_stride(std::uint32_t width) {
  const std::uint32_t data_span = std::max<std::uint32_t>(width + 2, 1026) * 2;
  return static_cast<std::uint32_t>(align_up(32 + data_span, 32));
}

void declare_cb(Graph& g, int id, Count pages, std::uint32_t page_size,
                const std::string& name) {
  g.cbs.push_back(ir::CbDecl{id, pages, page_size, name});
  // create_cb allocates pages*page_size right away: mirror as a region.
  g.regions.push_back(ir::RegionDecl{name, g.cbs.back().pages *
                                               Count(page_size)});
}

/// Replays the simulator's bump allocator over the graph's regions at the
/// concrete bindings. When the *launched* configuration would exhaust core
/// SRAM, the hand-wired path raises ApiError from the allocator at launch;
/// raise the same error here so LoweringPath::kIr reports identical
/// diagnostics instead of a static-checker sram-overflow finding. (The
/// checker still sweeps the declared symbol ranges for non-launched depths.)
void require_sram_fit(const Graph& g) {
  std::int64_t top = 0;
  for (const auto& r : g.regions) {
    const std::int64_t size = r.bytes.eval(g.bindings);
    const std::int64_t base =
        r.pinned_addr >= 0 ? r.pinned_addr : align_up(top, 32);
    if (base + size > g.sram_bytes) {
      TTSIM_THROW_API("Tensix SRAM exhausted: requested "
                      << size << " bytes with " << (g.sram_bytes - top)
                      << " of " << g.sram_bytes << " free");
    }
    top = base + size;
  }
}

/// Accumulator-chain protocol ops of emit_tap_chain for one pass, scaled
/// by the per-point count P. Totals per point (t = #terms):
///   kCbGInter: t-1 of each op;  kCbGTmp: t+1 with a post-op else t-1;
///   kCbGTmp2: 2 with a post-op. All traffic is compute-local.
void append_chain_ops(std::vector<Op>& ops, const LoweredPass& pass,
                      const Count& P) {
  const auto t = static_cast<std::int64_t>(pass.terms.size());
  const bool post = pass.post != PostOp::kNone;
  auto quad = [&](int cb, std::int64_t per_point) {
    if (per_point <= 0) return;
    const Count c = Count(per_point) * P;
    ops.push_back(make_op(OpKind::kCbReserve, cb, c));
    ops.push_back(make_op(OpKind::kCbPush, cb, c));
    ops.push_back(make_op(OpKind::kCbWait, cb, c));
    ops.push_back(make_op(OpKind::kCbPop, cb, c));
  };
  quad(kCbGTmp, post ? t + 1 : t - 1);
  quad(kCbGInter, t - 1);
  quad(kCbGTmp2, post ? 2 : 0);
}

// ---------------------------------------------------------------------------
// Jacobi, kRowChunk (jacobi_rowchunk.cpp). Depth is kept symbolic: the CB
// capacities, the slot count 2*depth+3 and the ring's reuse distance are
// all polynomials in "depth", so the checker's verdict covers every depth
// in the declared range, not just the launched one.
// ---------------------------------------------------------------------------
Graph jacobi_rowchunk_graph(const std::shared_ptr<KernelShared>& sh,
                            std::int64_t sram_bytes) {
  const int ncores = static_cast<int>(sh->ranges.size());
  const auto depth = static_cast<std::uint32_t>(std::max(2, sh->read_ahead));
  const StripGeom geo = strip_geom(sh->ranges, sh->chunk_elems);
  const std::uint32_t sbytes = slot_bytes_of(geo.max_chunk);
  const bool residual = sh->residual_addr != 0;

  Graph g;
  g.name = "jacobi-rowchunk";
  g.ncores = Count(ncores);
  g.sram_bytes = sram_bytes;
  const Count d = Count::sym("depth");
  const Count it = Count::sym("iters");
  const Count P = Count::sym("points");
  g.bindings["iters"] = sh->iterations;
  g.bindings["depth"] = depth;
  g.bindings["points"] = static_cast<std::int64_t>(sh->iterations) *
                         geo.nrows0 * geo.ncols0;
  g.bindings["columns"] = geo.ncols0;
  g.ranges["depth"] = {2, std::max<std::int64_t>(8, depth)};

  declare_cb(g, kCbIn0, d, kTileBytes, "cb-in0");
  declare_cb(g, kCbIn1, d, kTileBytes, "cb-in1");
  declare_cb(g, kCbIn2, d, kTileBytes, "cb-in2");
  declare_cb(g, kCbIn3, d, kTileBytes, "cb-in3");
  declare_cb(g, kCbScalar, Count(1), kTileBytes, "cb-scalar");
  declare_cb(g, kCbInter, Count(2), kTileBytes, "cb-inter");
  declare_cb(g, kCbOut, Count(4), kTileBytes, "cb-out");
  if (residual) declare_cb(g, kCbRes, Count(1), 32, "cb-res");
  g.regions.push_back(
      ir::RegionDecl{"row-slots", (2 * d + Count(3)) * Count(sbytes)});
  g.barriers.push_back(ir::BarrierDecl{sh->barrier_id, Count(2 * ncores)});
  // Continuous rotation: a new column strip continues after the previous
  // one's tail. The reader runs at most depth-1 batches past the waited
  // one plus the +1 halo row, and depth reserved-but-unpopped batches can
  // still read their [-1, +1] windows.
  g.rings.push_back(ir::RingDecl{"row-slots", 2 * d + Count(3), d, d, -1, +1,
                                 Count(0), true, Count::sym("columns")});

  KernelModel reader{"jacobi_reader", 0, Count(ncores), {}};
  reader.ops.push_back(make_op(OpKind::kCbReserve, kCbScalar, Count(1)));
  reader.ops.push_back(make_op(OpKind::kCbPush, kCbScalar, Count(1)));
  reader.ops.push_back(flow_op(OpKind::kReadRegion, P,
                               "one row batch per point, depth in flight"));
  for (int cb = kCbIn0; cb <= kCbIn3; ++cb) {
    reader.ops.push_back(make_op(OpKind::kCbReserve, cb, P));
  }
  reader.ops.push_back(make_op(OpKind::kRingWrite, 0, P));
  for (int cb = kCbIn0; cb <= kCbIn3; ++cb) {
    reader.ops.push_back(make_op(OpKind::kCbPush, cb, P));
  }
  reader.ops.push_back(make_op(OpKind::kBarrierArrive, sh->barrier_id, it));
  g.kernels.push_back(std::move(reader));

  KernelModel compute{"jacobi_compute", 2, Count(ncores), {}};
  compute.ops.push_back(flow_op(OpKind::kComputeTile, P,
                                "((xm+xp)+ym+yp)*0.25 per chunk"));
  compute.ops.push_back(make_op(OpKind::kRingRead, 0, P));
  compute.ops.push_back(make_op(OpKind::kCbWait, kCbIn0, P));
  compute.ops.push_back(make_op(OpKind::kCbWait, kCbIn1, P));
  compute.ops.push_back(make_op(OpKind::kCbPop, kCbIn1, P));
  compute.ops.push_back(make_op(OpKind::kCbPop, kCbIn0, P));
  for (int leg = 0; leg < 3; ++leg) {
    compute.ops.push_back(make_op(OpKind::kCbReserve, kCbInter, P));
    compute.ops.push_back(make_op(OpKind::kCbPush, kCbInter, P));
    const int in_cb = leg == 0 ? kCbIn2 : leg == 1 ? kCbIn3 : kCbScalar;
    compute.ops.push_back(make_op(OpKind::kCbWait, in_cb, P));
    compute.ops.push_back(make_op(OpKind::kCbWait, kCbInter, P));
    compute.ops.push_back(make_op(OpKind::kCbPop, kCbInter, P));
    if (in_cb != kCbScalar) {
      compute.ops.push_back(make_op(OpKind::kCbPop, in_cb, P));
    }
  }
  compute.ops.push_back(make_op(OpKind::kCbReserve, kCbOut, P));
  compute.ops.push_back(make_op(OpKind::kCbPush, kCbOut, P));
  if (residual) {
    compute.ops.push_back(make_op(OpKind::kCbReserve, kCbRes, Count(1)));
    compute.ops.push_back(make_op(OpKind::kCbPush, kCbRes, Count(1)));
  }
  g.kernels.push_back(std::move(compute));

  KernelModel writer{"jacobi_writer", 1, Count(ncores), {}};
  writer.ops.push_back(make_op(OpKind::kCbWait, kCbOut, P));
  writer.ops.push_back(flow_op(OpKind::kWriteRegion, P,
                               "one interior chunk per point"));
  writer.ops.push_back(make_op(OpKind::kCbPop, kCbOut, P));
  writer.ops.push_back(make_op(OpKind::kBarrierArrive, sh->barrier_id, it));
  if (residual) {
    writer.ops.push_back(make_op(OpKind::kCbWait, kCbRes, Count(1)));
    writer.ops.push_back(make_op(OpKind::kCbPop, kCbRes, Count(1)));
  }
  g.kernels.push_back(std::move(writer));

  g.emit = [sh](ttmetal::Program& prog) { build_rowchunk_program(prog, sh); };
  return g;
}

// ---------------------------------------------------------------------------
// Jacobi, kSramResident (jacobi_sram.cpp). Five semaphores choreograph the
// halo exchange/restore between iterations; the iteration-(k-1) waits carry
// iter_delta = -1 — the slack that makes the wait-for graph acyclic.
// ---------------------------------------------------------------------------
Graph jacobi_sram_graph(const std::shared_ptr<KernelShared>& sh,
                        std::int64_t sram_bytes) {
  const int ncores = static_cast<int>(sh->ranges.size());
  const std::uint32_t W = sh->layout.width();
  const std::uint32_t chunk = std::min<std::uint32_t>(1024, W);
  TTSIM_CHECK_MSG(W % chunk == 0,
                  "SRAM-slab domains must be <= 1024 wide or a multiple of 1024");
  const StripGeom geo = strip_geom(sh->ranges, chunk);
  const std::uint32_t row_stride = slab_row_stride(W);
  const std::uint32_t slab_bytes = (geo.max_rows + 2) * row_stride;

  Graph g;
  g.name = "jacobi-sram";
  g.ncores = Count(ncores);
  g.sram_bytes = sram_bytes;
  const Count it = Count::sym("iters");
  const Count P = Count::sym("points");
  g.bindings["iters"] = sh->iterations;
  g.bindings["points"] = static_cast<std::int64_t>(sh->iterations) *
                         geo.nrows0 * (W / chunk);

  declare_cb(g, kCbScalar, Count(1), kTileBytes, "cb-scalar");
  declare_cb(g, kCbInter, Count(2), kTileBytes, "cb-inter");
  declare_cb(g, kCbOut, Count(1), kTileBytes, "cb-out");  // alias vehicle
  g.regions.push_back(ir::RegionDecl{"slab-a", Count(slab_bytes)});
  g.regions.push_back(ir::RegionDecl{"slab-b", Count(slab_bytes)});
  g.sems = {ir::SemDecl{kSemTopHalo, 0, "sem-top-halo"},
            ir::SemDecl{kSemBottomHalo, 0, "sem-bottom-halo"},
            ir::SemDecl{kSemComputeDm0, 0, "sem-compute-dm0"},
            ir::SemDecl{kSemComputeDm1, 0, "sem-compute-dm1"},
            ir::SemDecl{kSemRestored, 0, "sem-restored"}};
  g.barriers.push_back(ir::BarrierDecl{kCbLoadBarrier, Count(3 * ncores)});

  KernelModel dm0{"jacobi_sram_dm0", 0, Count(ncores), {}};
  dm0.ops.push_back(flow_op(OpKind::kReadRegion, Count(2),
                            "both parities' slabs, rows+2 rows each"));
  dm0.ops.push_back(make_op(OpKind::kBarrierArrive, kCbLoadBarrier, Count(1)));
  dm0.ops.push_back(make_op(OpKind::kSemWait, kSemComputeDm0, it - Count(1), 1,
                            Guard::kAlways, Peer::kSelf, -1));
  dm0.ops.push_back(flow_op(OpKind::kHaloExchange, it - Count(1),
                            "top edge row -> upper neighbour"));
  dm0.ops.push_back(make_op(OpKind::kSemPost, kSemBottomHalo, it - Count(1), 1,
                            Guard::kHasUpper, Peer::kUpper));
  g.kernels.push_back(std::move(dm0));

  KernelModel compute{"jacobi_sram_compute", 2, Count(ncores), {}};
  compute.ops.push_back(make_op(OpKind::kCbReserve, kCbScalar, Count(1)));
  compute.ops.push_back(make_op(OpKind::kCbPush, kCbScalar, Count(1)));
  compute.ops.push_back(
      make_op(OpKind::kBarrierArrive, kCbLoadBarrier, Count(1)));
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemTopHalo, it - Count(1),
                                1, Guard::kHasUpper, Peer::kSelf, -1));
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemBottomHalo,
                                it - Count(1), 1, Guard::kHasLower,
                                Peer::kSelf, -1));
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemRestored, it - Count(1),
                                1, Guard::kAlways, Peer::kSelf, -1));
  compute.ops.push_back(flow_op(OpKind::kComputeTile, P,
                                "slab-aliased 5-point chain per chunk"));
  // Per point: 4 reserve/push/pop legs through cb-inter, 3 of them waited
  // (the first add aliases the freshly pushed page without waiting), the
  // last leg also waits the scalar page.
  compute.ops.push_back(make_op(OpKind::kCbReserve, kCbInter, Count(4) * P));
  compute.ops.push_back(make_op(OpKind::kCbPush, kCbInter, Count(4) * P));
  compute.ops.push_back(make_op(OpKind::kCbWait, kCbInter, Count(3) * P));
  compute.ops.push_back(make_op(OpKind::kCbWait, kCbScalar, P));
  compute.ops.push_back(make_op(OpKind::kCbPop, kCbInter, Count(4) * P));
  compute.ops.push_back(make_op(OpKind::kSemPost, kSemComputeDm0, it));
  compute.ops.push_back(make_op(OpKind::kSemPost, kSemComputeDm1, it));
  g.kernels.push_back(std::move(compute));

  KernelModel dm1{"jacobi_sram_dm1", 1, Count(ncores), {}};
  dm1.ops.push_back(make_op(OpKind::kBarrierArrive, kCbLoadBarrier, Count(1)));
  dm1.ops.push_back(make_op(OpKind::kSemWait, kSemComputeDm1, it - Count(1),
                            1, Guard::kAlways, Peer::kSelf, -1));
  dm1.ops.push_back(make_op(OpKind::kSemPost, kSemRestored, it - Count(1)));
  dm1.ops.push_back(flow_op(OpKind::kHaloExchange, it - Count(1),
                            "bottom edge row -> lower neighbour"));
  dm1.ops.push_back(make_op(OpKind::kSemPost, kSemTopHalo, it - Count(1), 1,
                            Guard::kHasLower, Peer::kLower));
  dm1.ops.push_back(make_op(OpKind::kSemWait, kSemComputeDm1, Count(1)));
  dm1.ops.push_back(flow_op(OpKind::kWriteRegion, Count(1),
                            "final slab -> DRAM writeback"));
  g.kernels.push_back(std::move(dm1));

  g.emit = [sh](ttmetal::Program& prog) {
    build_sram_resident_program(prog, sh);
  };
  return g;
}

// ---------------------------------------------------------------------------
// Temporal tiling (jacobi_temporal.cpp), classic and general. Loaded /
// Computed / Free(initial 1) circulate per block; dm0+dm1 rendezvous on the
// epoch barrier.
// ---------------------------------------------------------------------------
struct TemporalSizing {
  std::uint32_t row_stride = 0, slab_bytes = 0;
  std::int64_t block_rows = 0;
  int nslabs = 0;
};

TemporalSizing temporal_sizing(std::uint32_t width, std::int64_t height,
                               int depth, int v, int reach, int nslabs) {
  TemporalSizing s;
  s.nslabs = nslabs;
  s.row_stride = slab_row_stride(width);
  const std::uint32_t fixed =
      2 * static_cast<std::uint32_t>((depth - 1) * v + reach);
  const std::int64_t rows_budget =
      static_cast<std::int64_t>(kSlabBudget / s.row_stride) / nslabs -
      static_cast<std::int64_t>(fixed);
  s.block_rows = std::min<std::int64_t>(rows_budget, height);
  if (s.block_rows < 1) {
    TTSIM_THROW_API("temporal depth " << depth << " on a " << width
                    << "-wide domain leaves no room for a row block in the "
                    "1 MiB L1 (" << nslabs << " slabs of " << fixed
                    << "+ skirt rows); lower the depth");
  }
  s.slab_bytes =
      (static_cast<std::uint32_t>(s.block_rows) + fixed) * s.row_stride;
  return s;
}

/// Shared temporal skeleton: CBs/regions/chain ops come from the caller,
/// the Loaded/Computed/Free circulation and the epoch barrier are common.
void temporal_protocol(Graph& g, int ncores, int barrier_id,
                       std::vector<Op> compute_prologue,
                       std::vector<Op> chain_ops) {
  const Count E = Count::sym("epochs");
  const Count EB = Count::sym("epochs") * Count::sym("blocks");
  g.sems = {ir::SemDecl{kSemLoaded, 0, "sem-loaded"},
            ir::SemDecl{kSemComputed, 0, "sem-computed"},
            ir::SemDecl{kSemFree, 1, "sem-free"}};
  g.barriers.push_back(ir::BarrierDecl{barrier_id, Count(2 * ncores)});

  KernelModel dm0{"temporal_reader", 0, Count(ncores), {}};
  dm0.ops.push_back(make_op(OpKind::kSemWait, kSemFree, EB));
  dm0.ops.push_back(flow_op(OpKind::kReadRegion, EB,
                            "block rows + trapezoid skirt per slab"));
  dm0.ops.push_back(make_op(OpKind::kSemPost, kSemLoaded, EB));
  dm0.ops.push_back(make_op(OpKind::kBarrierArrive, barrier_id, E));
  g.kernels.push_back(std::move(dm0));

  KernelModel compute{"temporal_compute", 2, Count(ncores), {}};
  compute.ops = std::move(compute_prologue);
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemLoaded, EB));
  compute.ops.push_back(flow_op(OpKind::kComputeTile, Count::sym("points"),
                                "depth chained sub-steps per block"));
  for (Op& op : chain_ops) compute.ops.push_back(std::move(op));
  compute.ops.push_back(make_op(OpKind::kSemPost, kSemComputed, EB));
  g.kernels.push_back(std::move(compute));

  KernelModel dm1{"temporal_writer", 1, Count(ncores), {}};
  dm1.ops.push_back(make_op(OpKind::kSemWait, kSemComputed, EB));
  dm1.ops.push_back(flow_op(OpKind::kWriteRegion, EB,
                            "final generation rows -> DRAM"));
  dm1.ops.push_back(make_op(OpKind::kSemPost, kSemFree, EB));
  dm1.ops.push_back(make_op(OpKind::kBarrierArrive, barrier_id, E));
  g.kernels.push_back(std::move(dm1));
}

Graph jacobi_temporal_graph(const std::shared_ptr<KernelShared>& sh,
                            std::int64_t sram_bytes) {
  TTSIM_CHECK_MSG(sh->temporal_depth >= 1 && sh->temporal_depth <= 8,
                  "temporal_depth must be in [1, 8]");
  const int ncores = static_cast<int>(sh->ranges.size());
  const std::uint32_t W = sh->layout.width();
  const std::uint32_t chunk = std::min<std::uint32_t>(1024, W);
  TTSIM_CHECK_MSG(W % chunk == 0,
                  "temporal domains must be <= 1024 wide or a multiple of 1024");
  const StripGeom geo = strip_geom(sh->ranges, chunk);
  // Classic Jacobi: one written+streamed field (2 slabs), v = reach = 1.
  const TemporalSizing siz =
      temporal_sizing(W, sh->layout.height(), sh->temporal_depth, 1, 1, 2);
  const int depth = sh->temporal_depth;
  const std::int64_t E = (sh->iterations + depth - 1) / depth;
  const std::int64_t blocks =
      (geo.nrows0 + siz.block_rows - 1) / siz.block_rows;

  Graph g;
  g.name = "jacobi-temporal";
  g.ncores = Count(ncores);
  g.sram_bytes = sram_bytes;
  g.bindings["iters"] = sh->iterations;
  g.bindings["epochs"] = E;
  g.bindings["blocks"] = blocks;
  // Lower bound: the trapezoid recomputes skirt rows on top of these.
  g.bindings["points"] = static_cast<std::int64_t>(sh->iterations) *
                         geo.nrows0 * (W / chunk);

  declare_cb(g, kCbScalar, Count(1), kTileBytes, "cb-scalar");
  declare_cb(g, kCbInter, Count(2), kTileBytes, "cb-inter");
  declare_cb(g, kCbOut, Count(1), kTileBytes, "cb-out");  // alias vehicle
  g.regions.push_back(ir::RegionDecl{"slab-a", Count(siz.slab_bytes)});
  g.regions.push_back(ir::RegionDecl{"slab-b", Count(siz.slab_bytes)});

  const Count P = Count::sym("points");
  std::vector<Op> prologue = {make_op(OpKind::kCbReserve, kCbScalar, Count(1)),
                              make_op(OpKind::kCbPush, kCbScalar, Count(1))};
  std::vector<Op> chain = {
      make_op(OpKind::kCbReserve, kCbInter, Count(4) * P),
      make_op(OpKind::kCbPush, kCbInter, Count(4) * P),
      make_op(OpKind::kCbWait, kCbInter, Count(3) * P),
      make_op(OpKind::kCbWait, kCbScalar, P),
      make_op(OpKind::kCbPop, kCbInter, Count(4) * P)};
  temporal_protocol(g, ncores, sh->barrier_id, std::move(prologue),
                    std::move(chain));

  g.emit = [sh](ttmetal::Program& prog) { build_temporal_program(prog, sh); };
  return g;
}

// ---------------------------------------------------------------------------
// General radius-1 stencils (stencil_device.cpp / stencil_sram.cpp /
// jacobi_temporal.cpp's general path). Depth stays concrete here — the
// slot count's ceil(depth/nrows_min) term is not polynomial.
// ---------------------------------------------------------------------------
Graph general_rowchunk_graph(const std::shared_ptr<GeneralShared>& sh,
                             std::int64_t sram_bytes) {
  const int ncores = static_cast<int>(sh->ranges.size());
  const int nfields = sh->nfields();
  const auto depth = static_cast<std::uint32_t>(std::max(2, sh->read_ahead));
  const StripGeom geo = strip_geom(sh->ranges, sh->chunk_elems);
  const std::uint32_t extra = 2 * ((depth + geo.min_rows - 1) / geo.min_rows);
  const std::uint32_t nslots = 2 * depth + 3 + extra;
  const std::uint32_t sbytes = slot_bytes_of(geo.max_chunk);

  std::vector<char> streamed(static_cast<std::size_t>(nfields), 0);
  bool needs_inter = false, needs_post = false;
  for (const LoweredPass& pass : sh->passes) {
    for (const PassField& pf : pass.reads) {
      streamed[static_cast<std::size_t>(pf.field)] = 1;
    }
    if (pass.terms.size() > 1) needs_inter = true;
    if (pass.post != PostOp::kNone) needs_post = true;
  }

  Graph g;
  g.name = "stencil-rowchunk";
  g.ncores = Count(ncores);
  g.sram_bytes = sram_bytes;
  const Count it = Count::sym("iters");
  const Count P = Count::sym("points");
  g.bindings["iters"] = sh->iterations;
  g.bindings["points"] = static_cast<std::int64_t>(sh->iterations) *
                         geo.nrows0 * geo.ncols0;
  g.bindings["columns"] = geo.ncols0;

  for (int f = 0; f < nfields; ++f) {
    if (streamed[static_cast<std::size_t>(f)]) {
      declare_cb(g, kCbFieldBase + f, Count(depth), kTileBytes,
                 "cb-field" + std::to_string(f));
    }
  }
  declare_cb(g, kCbWgt, Count(1), kTileBytes, "cb-wgt");  // alias vehicle
  if (needs_inter) declare_cb(g, kCbGInter, Count(2), kTileBytes, "cb-ginter");
  if (needs_inter || needs_post) {
    declare_cb(g, kCbGTmp, Count(2), kTileBytes, "cb-gtmp");
  }
  if (needs_post) declare_cb(g, kCbGTmp2, Count(2), kTileBytes, "cb-gtmp2");
  declare_cb(g, kCbGOut, Count(4), kTileBytes, "cb-gout");
  g.regions.push_back(ir::RegionDecl{
      "row-slots",
      Count(static_cast<std::int64_t>(nfields) * nslots * sbytes)});
  g.regions.push_back(ir::RegionDecl{
      "weight-table",
      Count(static_cast<std::int64_t>(sh->weights.size()) * kTileBytes)});
  g.barriers.push_back(ir::BarrierDecl{sh->barrier_id, Count(2 * ncores)});

  // One ring per (pass, read field): same slot rotation, but each field's
  // window [lo, hi] bounds its own reuse distance. The +extra slots absorb
  // the reader's cross-column run-ahead when strips have fewer rows than
  // the read-ahead depth.
  KernelModel reader{"stencil_reader", 0, Count(ncores), {}};
  KernelModel compute{"stencil_compute", 2, Count(ncores), {}};
  KernelModel writer{"stencil_writer", 1, Count(ncores), {}};
  const auto npasses = static_cast<std::int64_t>(sh->passes.size());
  for (std::int64_t p = 0; p < npasses; ++p) {
    const LoweredPass& pass = sh->passes[static_cast<std::size_t>(p)];
    reader.ops.push_back(flow_op(OpKind::kReadRegion, P,
                                 "pass " + std::to_string(p) +
                                     " row batches, depth in flight"));
    for (const PassField& pf : pass.reads) {
      const int ring = static_cast<int>(g.rings.size());
      g.rings.push_back(ir::RingDecl{
          "pass" + std::to_string(p) + "-field" + std::to_string(pf.field),
          Count(nslots), Count(depth - 1 + pf.hi), Count(depth), pf.lo, pf.hi,
          Count(extra), true, Count::sym("columns")});
      reader.ops.push_back(
          make_op(OpKind::kCbReserve, kCbFieldBase + pf.field, P));
      reader.ops.push_back(make_op(OpKind::kRingWrite, ring, P));
      compute.ops.push_back(make_op(OpKind::kRingRead, ring, P));
    }
    for (const PassField& pf : pass.reads) {
      reader.ops.push_back(
          make_op(OpKind::kCbPush, kCbFieldBase + pf.field, P));
    }
    reader.ops.push_back(make_op(OpKind::kBarrierArrive, sh->barrier_id, it));

    for (const PassField& pf : pass.reads) {
      compute.ops.push_back(
          make_op(OpKind::kCbWait, kCbFieldBase + pf.field, P));
    }
    compute.ops.push_back(flow_op(OpKind::kComputeTile, P,
                                  "pass " + std::to_string(p) +
                                      " tap chain per chunk"));
    append_chain_ops(compute.ops, pass, P);
    compute.ops.push_back(make_op(OpKind::kCbReserve, kCbGOut, P));
    compute.ops.push_back(make_op(OpKind::kCbPush, kCbGOut, P));
    for (const PassField& pf : pass.reads) {
      compute.ops.push_back(
          make_op(OpKind::kCbPop, kCbFieldBase + pf.field, P));
    }

    writer.ops.push_back(make_op(OpKind::kCbWait, kCbGOut, P));
    writer.ops.push_back(flow_op(OpKind::kWriteRegion, P,
                                 "pass " + std::to_string(p) +
                                     " interior chunks"));
    writer.ops.push_back(make_op(OpKind::kCbPop, kCbGOut, P));
    writer.ops.push_back(make_op(OpKind::kBarrierArrive, sh->barrier_id, it));
  }
  g.kernels.push_back(std::move(reader));
  g.kernels.push_back(std::move(compute));
  g.kernels.push_back(std::move(writer));

  g.emit = [sh](ttmetal::Program& prog) {
    build_general_rowchunk_group(prog, sh);
  };
  return g;
}

Graph general_sram_graph(const std::shared_ptr<GeneralShared>& sh,
                         std::int64_t sram_bytes) {
  TTSIM_CHECK_MSG(sh->nfields() == 1 && sh->passes.size() == 1,
                  "SRAM lowering handles single-field single-pass programs");
  const int ncores = static_cast<int>(sh->ranges.size());
  const LoweredPass& pass = sh->passes.front();
  const std::uint32_t W = sh->layout.width();
  std::uint32_t chunk = std::min<std::uint32_t>(1024, W);
  while (chunk > 16 && (W % chunk != 0 || chunk % 16 != 0)) --chunk;
  TTSIM_CHECK(W % chunk == 0);
  const StripGeom geo = strip_geom(sh->ranges, chunk);
  const std::uint32_t row_stride = slab_row_stride(W);
  const std::uint32_t slab_bytes = (geo.max_rows + 2) * row_stride;
  const bool needs_inter = pass.terms.size() > 1;
  const bool needs_post = pass.post != PostOp::kNone;

  Graph g;
  g.name = "stencil-sram";
  g.ncores = Count(ncores);
  g.sram_bytes = sram_bytes;
  const Count it = Count::sym("iters");
  const Count P = Count::sym("points");
  g.bindings["iters"] = sh->iterations;
  g.bindings["points"] = static_cast<std::int64_t>(sh->iterations) *
                         geo.nrows0 * (W / chunk);

  declare_cb(g, kCbFieldBase, Count(1), kTileBytes, "cb-field0");  // alias
  declare_cb(g, kCbWgt, Count(1), kTileBytes, "cb-wgt");           // alias
  if (needs_inter) declare_cb(g, kCbGInter, Count(2), kTileBytes, "cb-ginter");
  if (needs_inter || needs_post) {
    declare_cb(g, kCbGTmp, Count(2), kTileBytes, "cb-gtmp");
  }
  if (needs_post) declare_cb(g, kCbGTmp2, Count(2), kTileBytes, "cb-gtmp2");
  declare_cb(g, kCbGOut, Count(1), kTileBytes, "cb-gout");  // alias vehicle
  g.regions.push_back(ir::RegionDecl{"slab-a", Count(slab_bytes)});
  g.regions.push_back(ir::RegionDecl{"slab-b", Count(slab_bytes)});
  g.regions.push_back(ir::RegionDecl{
      "weight-table",
      Count(static_cast<std::int64_t>(sh->weights.size()) * kTileBytes)});
  g.sems = {ir::SemDecl{kSemTopHalo, 0, "sem-top-halo"},
            ir::SemDecl{kSemBottomHalo, 0, "sem-bottom-halo"},
            ir::SemDecl{kSemComputeDm0, 0, "sem-compute-dm0"},
            ir::SemDecl{kSemComputeDm1, 0, "sem-compute-dm1"},
            ir::SemDecl{kSemRestored, 0, "sem-restored"}};
  g.barriers.push_back(ir::BarrierDecl{sh->barrier_id, Count(3 * ncores)});

  KernelModel dm0{"stencil_sram_dm0", 0, Count(ncores), {}};
  dm0.ops.push_back(flow_op(OpKind::kReadRegion, Count(2),
                            "both parities' slabs, rows+2 rows each"));
  dm0.ops.push_back(
      make_op(OpKind::kBarrierArrive, sh->barrier_id, Count(1)));
  dm0.ops.push_back(make_op(OpKind::kSemWait, kSemComputeDm0, it - Count(1),
                            1, Guard::kAlways, Peer::kSelf, -1));
  dm0.ops.push_back(flow_op(OpKind::kHaloExchange, it - Count(1),
                            "top edge row -> upper neighbour"));
  dm0.ops.push_back(make_op(OpKind::kSemPost, kSemBottomHalo, it - Count(1),
                            1, Guard::kHasUpper, Peer::kUpper));
  g.kernels.push_back(std::move(dm0));

  KernelModel compute{"stencil_sram_compute", 2, Count(ncores), {}};
  compute.ops.push_back(
      make_op(OpKind::kBarrierArrive, sh->barrier_id, Count(1)));
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemTopHalo, it - Count(1),
                                1, Guard::kHasUpper, Peer::kSelf, -1));
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemBottomHalo,
                                it - Count(1), 1, Guard::kHasLower,
                                Peer::kSelf, -1));
  compute.ops.push_back(make_op(OpKind::kSemWait, kSemRestored, it - Count(1),
                                1, Guard::kAlways, Peer::kSelf, -1));
  compute.ops.push_back(flow_op(OpKind::kComputeTile, P,
                                "slab-aliased tap chain per chunk"));
  append_chain_ops(compute.ops, pass, P);
  compute.ops.push_back(make_op(OpKind::kSemPost, kSemComputeDm0, it));
  compute.ops.push_back(make_op(OpKind::kSemPost, kSemComputeDm1, it));
  g.kernels.push_back(std::move(compute));

  KernelModel dm1{"stencil_sram_dm1", 1, Count(ncores), {}};
  dm1.ops.push_back(
      make_op(OpKind::kBarrierArrive, sh->barrier_id, Count(1)));
  dm1.ops.push_back(make_op(OpKind::kSemWait, kSemComputeDm1, it - Count(1),
                            1, Guard::kAlways, Peer::kSelf, -1));
  dm1.ops.push_back(make_op(OpKind::kSemPost, kSemRestored, it - Count(1)));
  dm1.ops.push_back(flow_op(OpKind::kHaloExchange, it - Count(1),
                            "bottom edge row -> lower neighbour"));
  dm1.ops.push_back(make_op(OpKind::kSemPost, kSemTopHalo, it - Count(1), 1,
                            Guard::kHasLower, Peer::kLower));
  dm1.ops.push_back(make_op(OpKind::kSemWait, kSemComputeDm1, Count(1)));
  dm1.ops.push_back(flow_op(OpKind::kWriteRegion, Count(1),
                            "final slab -> DRAM writeback"));
  g.kernels.push_back(std::move(dm1));

  g.emit = [sh](ttmetal::Program& prog) {
    build_general_sram_program(prog, sh);
  };
  return g;
}

Graph general_temporal_graph(const std::shared_ptr<GeneralShared>& sh,
                             std::int64_t sram_bytes) {
  TTSIM_CHECK_MSG(sh->passes.size() == 1,
                  "temporal tiling chains single-pass programs");
  TTSIM_CHECK_MSG(sh->temporal_depth >= 1 && sh->temporal_depth <= 8,
                  "temporal_depth must be in [1, 8]");
  const int ncores = static_cast<int>(sh->ranges.size());
  const int nfields = sh->nfields();
  const LoweredPass& pass = sh->passes.front();
  const int wf = pass.target;
  const std::uint32_t W = sh->layout.width();
  const std::uint32_t chunk = std::min<std::uint32_t>(1024, W);
  TTSIM_CHECK_MSG(W % chunk == 0,
                  "temporal domains must be <= 1024 wide or a multiple of 1024");
  const StripGeom geo = strip_geom(sh->ranges, chunk);

  std::vector<char> streamed(static_cast<std::size_t>(nfields), 0);
  for (const PassField& pf : pass.reads) {
    streamed[static_cast<std::size_t>(pf.field)] = 1;
  }
  streamed[static_cast<std::size_t>(wf)] = 1;
  int v = 0, reach = 0;
  for (const LoweredTerm& t : pass.terms) {
    const int adr = t.dr < 0 ? -t.dr : t.dr;
    if (t.field == wf) v = std::max(v, adr);
    reach = std::max(reach, adr);
  }
  reach = std::max(reach, v);
  int nslabs = 0;
  for (int f = 0; f < nfields; ++f) {
    if (streamed[static_cast<std::size_t>(f)]) nslabs += f == wf ? 2 : 1;
  }
  const TemporalSizing siz = temporal_sizing(
      W, sh->layout.height(), sh->temporal_depth, v, reach, nslabs);
  const int depth = sh->temporal_depth;
  const std::int64_t E = (sh->iterations + depth - 1) / depth;
  const std::int64_t blocks =
      (geo.nrows0 + siz.block_rows - 1) / siz.block_rows;
  const bool needs_inter = pass.terms.size() > 1;
  const bool needs_post = pass.post != PostOp::kNone;

  Graph g;
  g.name = "stencil-temporal";
  g.ncores = Count(ncores);
  g.sram_bytes = sram_bytes;
  g.bindings["iters"] = sh->iterations;
  g.bindings["epochs"] = E;
  g.bindings["blocks"] = blocks;
  g.bindings["points"] = static_cast<std::int64_t>(sh->iterations) *
                         geo.nrows0 * (W / chunk);

  for (int f = 0; f < nfields; ++f) {
    if (streamed[static_cast<std::size_t>(f)]) {
      declare_cb(g, kCbFieldBase + f, Count(1), kTileBytes,
                 "cb-field" + std::to_string(f));  // alias vehicle
    }
  }
  declare_cb(g, kCbWgt, Count(1), kTileBytes, "cb-wgt");  // alias vehicle
  if (needs_inter) declare_cb(g, kCbGInter, Count(2), kTileBytes, "cb-ginter");
  if (needs_inter || needs_post) {
    declare_cb(g, kCbGTmp, Count(2), kTileBytes, "cb-gtmp");
  }
  if (needs_post) declare_cb(g, kCbGTmp2, Count(2), kTileBytes, "cb-gtmp2");
  declare_cb(g, kCbGOut, Count(1), kTileBytes, "cb-gout");  // alias vehicle
  g.regions.push_back(ir::RegionDecl{
      "weight-table",
      Count(static_cast<std::int64_t>(sh->weights.size()) * kTileBytes)});
  for (int f = 0; f < nfields; ++f) {
    if (!streamed[static_cast<std::size_t>(f)]) continue;
    g.regions.push_back(ir::RegionDecl{"slab-a-field" + std::to_string(f),
                                       Count(siz.slab_bytes)});
    if (f == wf) {
      g.regions.push_back(ir::RegionDecl{"slab-b-field" + std::to_string(f),
                                         Count(siz.slab_bytes)});
    }
  }

  const Count P = Count::sym("points");
  std::vector<Op> chain;
  append_chain_ops(chain, pass, P);
  temporal_protocol(g, ncores, sh->barrier_id, {}, std::move(chain));

  g.emit = [sh](ttmetal::Program& prog) {
    build_general_temporal_group(prog, sh);
  };
  return g;
}

}  // namespace

ir::Graph make_jacobi_graph(std::shared_ptr<KernelShared> sh,
                            std::int64_t sram_bytes) {
  Graph g;
  switch (sh->strategy) {
    case DeviceStrategy::kRowChunk:
      g = jacobi_rowchunk_graph(sh, sram_bytes);
      break;
    case DeviceStrategy::kSramResident:
      g = jacobi_sram_graph(sh, sram_bytes);
      break;
    case DeviceStrategy::kTemporal:
      g = jacobi_temporal_graph(sh, sram_bytes);
      break;
    default:
      TTSIM_THROW_API("the dataflow IR models the row-chunk, SRAM-resident "
                      "and temporal lowerings (got "
                      << to_string(sh->strategy) << ")");
  }
  require_sram_fit(g);
  return g;
}

ir::Graph make_general_graph(std::shared_ptr<GeneralShared> sh,
                             DeviceStrategy strategy,
                             std::int64_t sram_bytes) {
  Graph g;
  switch (strategy) {
    case DeviceStrategy::kRowChunk:
      g = general_rowchunk_graph(sh, sram_bytes);
      break;
    case DeviceStrategy::kSramResident:
      g = general_sram_graph(sh, sram_bytes);
      break;
    case DeviceStrategy::kTemporal:
      g = general_temporal_graph(sh, sram_bytes);
      break;
    default:
      TTSIM_THROW_API("the dataflow IR models the row-chunk, SRAM-resident "
                      "and temporal lowerings (got " << to_string(strategy)
                      << ")");
  }
  require_sram_fit(g);
  return g;
}

}  // namespace ttsim::core::detail

namespace ttsim::core {

namespace {

// Placeholder DRAM addresses for the problem-level graphs: distinct,
// DRAM-plausible, never dereferenced (the graphs are for check/dump, not
// for emitting a launchable program).
constexpr std::uint64_t kDummyBase = 0x100000;
constexpr std::uint64_t kDummyStep = 0x100000;

void require_ir_strategy(DeviceStrategy s) {
  if (s != DeviceStrategy::kRowChunk && s != DeviceStrategy::kSramResident &&
      s != DeviceStrategy::kTemporal) {
    TTSIM_THROW_API("the dataflow IR models the row-chunk, SRAM-resident and "
                    "temporal lowerings (got " << to_string(s) << ")");
  }
}

}  // namespace

ir::Graph jacobi_ir_graph(const JacobiProblem& p, const DeviceRunConfig& cfg,
                          std::int64_t sram_bytes) {
  require_ir_strategy(cfg.strategy);
  const PaddedLayout layout(p.width, p.height);
  auto sh = std::make_shared<detail::KernelShared>(layout);
  sh->d1 = kDummyBase;
  sh->d2 = kDummyBase + kDummyStep;
  sh->iterations = p.iterations;
  sh->strategy = cfg.strategy;
  sh->toggles = cfg.toggles;
  sh->chunk_elems = cfg.chunk_elems;
  sh->read_ahead = cfg.read_ahead;
  sh->temporal_depth = cfg.temporal_depth;
  sh->ranges = detail::decompose(p, cfg.cores_x, cfg.cores_y, 16);
  return detail::make_jacobi_graph(std::move(sh), sram_bytes);
}

ir::Graph general_ir_graph(const GeneralStencilProblem& p,
                           const DeviceRunConfig& cfg,
                           std::int64_t sram_bytes) {
  p.validate();
  require_ir_strategy(cfg.strategy);
  const PaddedLayout layout(p.width, p.height);
  auto sh = std::make_shared<detail::GeneralShared>(layout);
  detail::lower_program(p, *sh);
  sh->chunk_elems = cfg.chunk_elems;
  sh->read_ahead = cfg.read_ahead;
  sh->temporal_depth = cfg.temporal_depth;
  sh->ranges = detail::decompose(p.geometry(), cfg.cores_x, cfg.cores_y, 16);
  const int nfields = sh->nfields() > 0 ? sh->nfields()
                                        : static_cast<int>(p.fields.size());
  sh->d1.assign(static_cast<std::size_t>(nfields), 0);
  sh->d2.assign(static_cast<std::size_t>(nfields), 0);
  for (int f = 0; f < nfields; ++f) {
    sh->d1[static_cast<std::size_t>(f)] =
        kDummyBase + static_cast<std::uint64_t>(2 * f) * kDummyStep;
    if (p.written_pass(f) >= 0) {
      sh->d2[static_cast<std::size_t>(f)] =
          kDummyBase + static_cast<std::uint64_t>(2 * f + 1) * kDummyStep;
    }
  }
  return detail::make_general_graph(std::move(sh), cfg.strategy, sram_bytes);
}

}  // namespace ttsim::core
