/// \file gallery.cpp
/// Gallery workload factories. Initial fields are deterministic functions
/// of the geometry (and, for life, a seed) so every run of a factory
/// produces the identical problem — golden traces and conformance sweeps
/// depend on that.

#include "ttsim/core/gallery.hpp"

namespace ttsim::core::gallery {
namespace {

/// splitmix64 — the usual stateless bit mixer for seeded patterns.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void add_term(StencilPass& pass, int field, Tap tap, float w) {
  if (w != 0.0f) pass.terms.push_back(TapTerm{field, tap, w});
}

}  // namespace

GeneralStencilProblem hotspot(std::uint32_t width, std::uint32_t height,
                              int iterations, float k, float cp) {
  GeneralStencilProblem g;
  g.width = width;
  g.height = height;
  g.iterations = iterations;

  FieldSpec temp;
  temp.name = "T";
  temp.initial = 0.25f;
  temp.bc_left = temp.bc_right = temp.bc_top = temp.bc_bottom = 0.25f;
  g.fields.push_back(std::move(temp));

  // Static power density: a large block in the centre and a hot strip near
  // the origin (two "functional units" dissipating heat).
  FieldSpec power;
  power.name = "P";
  power.initial_field.assign(g.points(), 0.0f);
  for (std::uint32_t r = 0; r < height; ++r) {
    for (std::uint32_t c = 0; c < width; ++c) {
      const bool centre = r >= height / 3 && r < 2 * height / 3 &&
                          c >= width / 3 && c < 2 * width / 3;
      const bool strip = r >= height / 8 && r < height / 4 && c >= width / 16 &&
                         c < width / 4;
      if (centre) power.initial_field[static_cast<std::size_t>(r) * width + c] = 1.0f;
      if (strip) power.initial_field[static_cast<std::size_t>(r) * width + c] = 0.5f;
    }
  }
  g.fields.push_back(std::move(power));

  StencilPass pass;
  pass.target = 0;
  add_term(pass, 0, Tap::kC, 1.0f - 4.0f * k);
  add_term(pass, 0, Tap::kW, k);
  add_term(pass, 0, Tap::kE, k);
  add_term(pass, 0, Tap::kN, k);
  add_term(pass, 0, Tap::kS, k);
  add_term(pass, 1, Tap::kC, cp);
  g.passes.push_back(std::move(pass));
  return g;
}

GeneralStencilProblem fdtd2d(std::uint32_t width, std::uint32_t height,
                             int iterations, float ch, float ce) {
  GeneralStencilProblem g;
  g.width = width;
  g.height = height;
  g.iterations = iterations;

  FieldSpec ez;
  ez.name = "Ez";
  // A centred square pulse radiates outward under the leapfrog.
  ez.initial_field.assign(g.points(), 0.0f);
  const std::uint32_t r0 = height / 2, c0 = width / 2;
  for (std::uint32_t r = r0 > 0 ? r0 - 1 : 0; r <= r0 && r < height; ++r) {
    for (std::uint32_t c = c0 > 0 ? c0 - 1 : 0; c <= c0 && c < width; ++c) {
      ez.initial_field[static_cast<std::size_t>(r) * width + c] = 1.0f;
    }
  }
  g.fields.push_back(std::move(ez));
  FieldSpec hx;
  hx.name = "Hx";
  g.fields.push_back(std::move(hx));
  FieldSpec hy;
  hy.name = "Hy";
  g.fields.push_back(std::move(hy));

  // Hx -= ch*(Ez(S) - Ez(C)): reads the PREVIOUS iteration's Ez (pass
  // order puts the Ez update last).
  StencilPass px;
  px.target = 1;
  add_term(px, 1, Tap::kC, 1.0f);
  add_term(px, 0, Tap::kC, ch);
  add_term(px, 0, Tap::kS, -ch);
  g.passes.push_back(std::move(px));

  // Hy += ch*(Ez(E) - Ez(C)).
  StencilPass py;
  py.target = 2;
  add_term(py, 2, Tap::kC, 1.0f);
  add_term(py, 0, Tap::kC, -ch);
  add_term(py, 0, Tap::kE, ch);
  g.passes.push_back(std::move(py));

  // Ez += ce*((Hy(C) - Hy(W)) - (Hx(C) - Hx(N))): reads the Hx/Hy values
  // the two passes above just wrote (leapfrog).
  StencilPass pz;
  pz.target = 0;
  add_term(pz, 0, Tap::kC, 1.0f);
  add_term(pz, 2, Tap::kC, ce);
  add_term(pz, 2, Tap::kW, -ce);
  add_term(pz, 1, Tap::kC, -ce);
  add_term(pz, 1, Tap::kN, ce);
  g.passes.push_back(std::move(pz));
  return g;
}

GeneralStencilProblem convection(std::uint32_t width, std::uint32_t height,
                                 int iterations, float cx, float cy, float k) {
  GeneralStencilProblem g;
  g.width = width;
  g.height = height;
  g.iterations = iterations;

  FieldSpec u;
  u.name = "u";
  u.bc_left = 1.0f;  // inflow
  u.initial_field.assign(g.points(), 0.0f);
  // A square plume off-centre so both transport and diffusion show.
  for (std::uint32_t r = height / 4; r < height / 2 && r < height; ++r) {
    for (std::uint32_t c = width / 8; c < width / 4 && c < width; ++c) {
      u.initial_field[static_cast<std::size_t>(r) * width + c] = 1.0f;
    }
  }
  g.fields.push_back(std::move(u));

  // Isotropic 9-point Laplacian (1/6)[1 4 1; 4 -20 4; 1 4 1] scaled by k,
  // plus first-order upwind transport towards +x/+y.
  const float edge = 2.0f * k / 3.0f;
  const float corner = k / 6.0f;
  StencilPass pass;
  pass.target = 0;
  add_term(pass, 0, Tap::kC, 1.0f - cx - cy - 20.0f * k / 6.0f);
  add_term(pass, 0, Tap::kW, cx + edge);
  add_term(pass, 0, Tap::kE, edge);
  add_term(pass, 0, Tap::kN, cy + edge);
  add_term(pass, 0, Tap::kS, edge);
  add_term(pass, 0, Tap::kNW, corner);
  add_term(pass, 0, Tap::kNE, corner);
  add_term(pass, 0, Tap::kSW, corner);
  add_term(pass, 0, Tap::kSE, corner);
  g.passes.push_back(std::move(pass));
  return g;
}

GeneralStencilProblem life(std::uint32_t width, std::uint32_t height,
                           int iterations, std::uint64_t seed, float density) {
  GeneralStencilProblem g;
  g.width = width;
  g.height = height;
  g.iterations = iterations;

  FieldSpec cells;
  cells.name = "cells";
  cells.initial_field.assign(g.points(), 0.0f);
  for (std::uint32_t r = 0; r < height; ++r) {
    for (std::uint32_t c = 0; c < width; ++c) {
      const std::uint64_t h =
          mix(seed ^ (static_cast<std::uint64_t>(r) << 32 | c));
      const float uniform =
          static_cast<float>(h >> 40) / static_cast<float>(1ULL << 24);
      if (uniform < density) {
        cells.initial_field[static_cast<std::size_t>(r) * width + c] = 1.0f;
      }
    }
  }
  g.fields.push_back(std::move(cells));

  StencilPass pass;
  pass.target = 0;
  for (Tap t : {Tap::kW, Tap::kE, Tap::kN, Tap::kS, Tap::kNW, Tap::kNE,
                Tap::kSW, Tap::kSE}) {
    add_term(pass, 0, t, 1.0f);
  }
  pass.post = PostOp::kLife;
  pass.post_self_field = 0;
  g.passes.push_back(std::move(pass));
  return g;
}

std::vector<NamedProblem> suite(std::uint32_t width, std::uint32_t height,
                                int iterations) {
  return {
      {"hotspot", hotspot(width, height, iterations)},
      {"fdtd2d", fdtd2d(width, height, iterations)},
      {"convection", convection(width, height, iterations)},
      {"life", life(width, height, iterations)},
  };
}

}  // namespace ttsim::core::gallery
