#pragma once
/// \file stencil_internal.hpp
/// Shared internals of the general radius-1 stencil lowering: the resolved
/// program state, the CB id map, and the tap-chain emitter every strategy
/// uses. Keeping ONE emitter is what makes rowchunk-vs-SRAM agreement hold
/// by construction — both strategies issue the identical FPU op sequence
/// and differ only in where the aliased tap addresses point.
///
/// CB id map of a general stencil program (tt-metal convention: inputs
/// 0..7, intermediates 8..15, outputs 16..23):
///   0..3  — one stream/alias CB per field (row-chunk: flow-controlled
///           depth-page streams; SRAM: alias vehicles, never pushed)
///   4     — weight alias CB, repointed into the L1 weight table per term
///   5/6/7 — accumulator chain (inter, tmp, tmp2)
///   16    — output
/// The weight table holds one 2 KiB tile of 1024 copies per distinct
/// weight, written host-side by the compute kernel before the first sweep
/// (the cb_scalar trick, without a CB).

#include "jacobi_internal.hpp"
#include "ttsim/core/stencil.hpp"

namespace ttsim::core::detail {

inline constexpr int kCbFieldBase = 0;  // field f streams through CB f
inline constexpr int kCbWgt = 4;
inline constexpr int kCbGInter = 5;
inline constexpr int kCbGTmp = 6;
inline constexpr int kCbGTmp2 = 7;
inline constexpr int kCbGOut = 16;

/// One referenced field of a pass with its vertical halo extent.
struct PassField {
  int field = 0;
  int lo = 0;  ///< -1 when any term taps N/NW/NE of this field
  int hi = 0;  ///< +1 when any term taps S/SW/SE
};

/// One pass, resolved for the kernels: terms carry weight-table indices.
struct LoweredTerm {
  int field = 0;
  int dr = 0, dc = 0;
  int widx = 0;  ///< index into the weight table
};
struct LoweredPass {
  int target = 0;
  std::vector<LoweredTerm> terms;
  PostOp post = PostOp::kNone;
  int self_field = 0;
  std::vector<PassField> reads;  ///< referenced fields, first-use order
};

/// Everything the general kernels need, shared across the lambdas.
struct GeneralShared {
  PaddedLayout layout;
  int iterations = 0;
  std::uint32_t chunk_elems = 1024;
  int read_ahead = 2;
  /// kTemporal: iterations chained through SRAM per DRAM pass (1..8).
  int temporal_depth = 1;
  std::vector<std::uint64_t> d1, d2;  ///< per field; d2[f]=0 for read-only
  std::vector<int> written_pass;      ///< per field: pass index or -1
  std::vector<LoweredPass> passes;
  std::vector<float> weights;  ///< distinct weight values, table order
  std::vector<CoreRange> ranges;
  std::vector<int> core_ids;
  int barrier_id = kIterationBarrier;

  explicit GeneralShared(const PaddedLayout& l) : layout(l) {}

  int nfields() const { return static_cast<int>(d1.size()); }

  /// Source buffer of field `f` while running pass `p` of iteration `it`:
  /// each write flips the parity, and a pass sees the writes of every
  /// earlier pass of the same iteration (leapfrog visibility).
  std::uint64_t src_of(int f, int it, int p) const {
    const int wp = written_pass[static_cast<std::size_t>(f)];
    const int writes = wp < 0 ? 0 : it + (wp < p ? 1 : 0);
    return writes % 2 == 0 ? d1[static_cast<std::size_t>(f)]
                           : d2[static_cast<std::size_t>(f)];
  }
  /// Destination buffer of the pass targeting `f` in iteration `it`.
  std::uint64_t dst_of(int f, int it) const {
    return it % 2 == 0 ? d2[static_cast<std::size_t>(f)]
                       : d1[static_cast<std::size_t>(f)];
  }
  /// Buffer holding field `f`'s final state after the full run.
  std::uint64_t final_of(int f) const {
    if (written_pass[static_cast<std::size_t>(f)] < 0) {
      return d1[static_cast<std::size_t>(f)];
    }
    return iterations % 2 == 1 ? d2[static_cast<std::size_t>(f)]
                               : d1[static_cast<std::size_t>(f)];
  }

  std::vector<int> workers() const {
    if (!core_ids.empty()) return core_ids;
    std::vector<int> ids(ranges.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
    return ids;
  }
};

/// Resolve a validated GeneralStencilProblem into the lowered form:
/// dedup'd weight table, per-pass referenced-field sets (including the
/// Life self field) with vertical extents.
void lower_program(const GeneralStencilProblem& p, GeneralShared& sh);

/// Write the weight table (one tile of 1024 copies per weight) at `addr`.
/// Host-side stores through l1_ptr — free on the simulated clock, exactly
/// like fill_scalar_page.
inline void fill_weight_table(ttmetal::KernelCtxBase& ctx, std::uint32_t addr,
                              const std::vector<float>& weights) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    auto* tile = reinterpret_cast<bfloat16_t*>(
        ctx.l1_ptr(addr + static_cast<std::uint32_t>(i) * kTileBytes));
    const bfloat16_t w{weights[i]};
    for (std::uint32_t e = 0; e < 1024; ++e) tile[e] = w;
  }
}

/// One term of the chain, resolved to an L1 alias address.
struct TapAddr {
  int cb = 0;               ///< field stream/alias CB id
  std::uint32_t addr = 0;   ///< L1 address of the tap's first element
  std::uint32_t valid = 0;  ///< meaningful bytes behind it (race detector)
  int widx = 0;             ///< weight-table index
};

/// Emit the per-point FPU op sequence shared by every strategy: for each
/// term, one weight-aliased multiply; the first product seeds the
/// accumulator, later ones are added left to right through the inter/tmp
/// CB pair; the Life post-op masks the sum and recombines with the centre
/// value. `pack_final(dst_reg)` lands the finished tile (managed kCbGOut
/// page on row-chunk; write-pointer aliased slab row on SRAM).
template <typename PackFinal>
void emit_tap_chain(ttmetal::ComputeCtx& ctx, std::uint32_t wtab,
                    const std::vector<TapAddr>& terms, PostOp post,
                    const TapAddr& self, PackFinal&& pack_final) {
  constexpr int dst0 = 0;
  constexpr int dst1 = 1;
  const std::size_t n = terms.size();
  const bool has_post = post != PostOp::kNone;
  for (std::size_t k = 0; k < n; ++k) {
    const auto& t = terms[k];
    ctx.cb_set_rd_ptr(kCbWgt, wtab + static_cast<std::uint32_t>(t.widx) * kTileBytes);
    ctx.cb_set_rd_ptr(t.cb, t.addr, t.valid);
    ctx.mul_tiles(kCbWgt, t.cb, 0, 0, dst0);
    const bool last = k + 1 == n;
    if (k > 0) {
      ctx.cb_reserve_back(kCbGTmp, 1);
      ctx.pack_tile(dst0, kCbGTmp);
      ctx.cb_push_back(kCbGTmp, 1);
      ctx.cb_wait_front(kCbGInter, 1);
      ctx.cb_wait_front(kCbGTmp, 1);
      ctx.add_tiles(kCbGInter, kCbGTmp, 0, 0, dst0);
      ctx.cb_pop_front(kCbGTmp, 1);
      ctx.cb_pop_front(kCbGInter, 1);
    }
    if (last && !has_post) {
      pack_final(dst0);
    } else {
      // Mid-chain products accumulate through kCbGInter; with a post-op
      // the finished sum S parks in kCbGTmp instead.
      const int target = last ? kCbGTmp : kCbGInter;
      ctx.cb_reserve_back(target, 1);
      ctx.pack_tile(dst0, target);
      ctx.cb_push_back(target, 1);
    }
  }
  if (has_post) {
    // Life: out = (S == 3) + (S == 2) * self, every step BF16-exact on
    // 0/1 states and integer neighbour counts.
    ctx.cb_wait_front(kCbGTmp, 1);
    ctx.copy_tile(kCbGTmp, 0, dst0);
    ctx.eq_scalar_tile(dst0, bfloat16_t{3.0f});  // birth mask
    ctx.copy_tile(kCbGTmp, 0, dst1);
    ctx.eq_scalar_tile(dst1, bfloat16_t{2.0f});  // survive mask
    ctx.cb_pop_front(kCbGTmp, 1);

    ctx.cb_reserve_back(kCbGTmp2, 1);
    ctx.pack_tile(dst1, kCbGTmp2);
    ctx.cb_push_back(kCbGTmp2, 1);
    ctx.cb_set_rd_ptr(self.cb, self.addr, self.valid);
    ctx.cb_wait_front(kCbGTmp2, 1);
    ctx.mul_tiles(kCbGTmp2, self.cb, 0, 0, dst1);  // survive * self
    ctx.cb_pop_front(kCbGTmp2, 1);

    ctx.cb_reserve_back(kCbGTmp, 1);
    ctx.pack_tile(dst0, kCbGTmp);
    ctx.cb_push_back(kCbGTmp, 1);
    ctx.cb_reserve_back(kCbGTmp2, 1);
    ctx.pack_tile(dst1, kCbGTmp2);
    ctx.cb_push_back(kCbGTmp2, 1);
    ctx.cb_wait_front(kCbGTmp, 1);
    ctx.cb_wait_front(kCbGTmp2, 1);
    ctx.add_tiles(kCbGTmp, kCbGTmp2, 0, 0, dst0);  // birth + survive*self
    ctx.cb_pop_front(kCbGTmp, 1);
    ctx.cb_pop_front(kCbGTmp2, 1);
    pack_final(dst0);
  }
}

/// Row-chunk kernels for one core group (reader / compute / writer plus
/// this group's CBs, slot buffers and barrier), on the physical workers
/// sh->workers() names; called once per slot by the batched builder and
/// with the identity group by the single-run driver.
void build_general_rowchunk_group(ttmetal::Program& prog,
                                  std::shared_ptr<GeneralShared> sh);

/// SRAM-resident program (single-field single-pass problems, cores_x==1):
/// the jacobi_sram halo/restore machinery driving the shared tap chain.
void build_general_sram_program(ttmetal::Program& prog,
                                std::shared_ptr<GeneralShared> sh);

/// Temporal-tiling kernels for one core group (single-pass problems,
/// cores_x==1): sh->temporal_depth sub-iterations per DRAM pass through
/// ping-ponged L1 slabs, trapezoid skirt recompute instead of halo
/// exchange, read-only fields held in single slabs per block. Called with
/// the identity group by the driver and once per slot by the batched
/// builder (each group's barrier_id must be distinct).
void build_general_temporal_group(ttmetal::Program& prog,
                                  std::shared_ptr<GeneralShared> sh);

}  // namespace ttsim::core::detail
