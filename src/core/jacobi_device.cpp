#include "ttsim/core/jacobi_device.hpp"

#include <cstring>
#include <limits>

#include "ir_frontend.hpp"
#include "jacobi_internal.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/ir/lower.hpp"
#include "ttsim/ttmetal/counters.hpp"

namespace ttsim::core {

namespace detail {

std::vector<CoreRange> decompose(const JacobiProblem& p, int cores_x, int cores_y,
                                 std::uint32_t col_align) {
  if (cores_x < 1 || cores_y < 1) TTSIM_THROW_API("need at least a 1x1 core grid");
  if (p.width % static_cast<std::uint32_t>(cores_x) != 0) {
    TTSIM_THROW_API("domain width " << p.width << " does not divide across "
                                    << cores_x << " cores in X");
  }
  const std::uint32_t strip = p.width / static_cast<std::uint32_t>(cores_x);
  if (strip % col_align != 0) {
    TTSIM_THROW_API("per-core strip width " << strip << " must be a multiple of "
                                            << col_align);
  }
  if (static_cast<std::uint32_t>(cores_y) > p.height) {
    TTSIM_THROW_API("more Y cores than rows");
  }
  std::vector<CoreRange> ranges;
  const std::uint32_t base = p.height / static_cast<std::uint32_t>(cores_y);
  const std::uint32_t extra = p.height % static_cast<std::uint32_t>(cores_y);
  std::uint32_t row = 0;
  for (int cy = 0; cy < cores_y; ++cy) {
    const std::uint32_t rows =
        base + (static_cast<std::uint32_t>(cy) < extra ? 1 : 0);
    for (int cx = 0; cx < cores_x; ++cx) {
      ranges.push_back(CoreRange{row, row + rows,
                                 static_cast<std::uint32_t>(cx) * strip,
                                 (static_cast<std::uint32_t>(cx) + 1) * strip});
    }
    row += rows;
  }
  return ranges;
}

CoreSelection select_cores(ttmetal::Device& device, const JacobiProblem& p,
                           const DeviceRunConfig& cfg) {
  CoreSelection sel;
  sel.cores_x = cfg.cores_x;
  sel.cores_y = cfg.cores_y;
  const auto usable = device.usable_workers();
  while (sel.ncores() > static_cast<int>(usable.size())) {
    if (sel.cores_y > 1) {
      --sel.cores_y;
    } else if (sel.cores_x > 1) {
      do {
        --sel.cores_x;
      } while (sel.cores_x > 1 &&
               p.width % static_cast<std::uint32_t>(sel.cores_x) != 0);
    } else {
      TTSIM_THROW_API("no usable workers remain ("
                      << device.num_workers() - static_cast<int>(usable.size())
                      << " failed cores)");
    }
  }
  sel.core_ids.assign(usable.begin(), usable.begin() + sel.ncores());
  return sel;
}

ttmetal::BufferConfig grid_buffer_config(const DeviceRunConfig& cfg,
                                         const PaddedLayout& layout) {
  ttmetal::BufferConfig bc;
  bc.size = layout.bytes();
  bc.layout = cfg.buffer_layout;
  if (cfg.buffer_layout == ttmetal::BufferLayout::kInterleaved) {
    bc.page_size = cfg.interleave_page;
  } else if (cfg.buffer_layout == ttmetal::BufferLayout::kStriped) {
    // Sixteen row slabs per grid: every Y sub-range of cores still spreads
    // its traffic over all eight banks.
    bc.page_size = align_up(layout.bytes() / 16 + 1, 32);
    bc.balanced_stripes = cfg.balanced_stripes;
  }
  return bc;
}

}  // namespace detail

namespace {

void validate_config(const ttmetal::Device& device, const JacobiProblem& p,
                     const DeviceRunConfig& cfg) {
  const int ncores = cfg.cores_x * cfg.cores_y;
  if (ncores > device.num_workers()) {
    TTSIM_THROW_API("decomposition needs " << ncores << " cores but the e150 has "
                                           << device.num_workers() << " workers");
  }
  if (p.iterations < 1) TTSIM_THROW_API("need at least one iteration");
  if (cfg.read_ahead < 2 || cfg.read_ahead > 64) {
    TTSIM_THROW_API("read_ahead must be in [2, 64] (got " << cfg.read_ahead
                    << "); 2 is the paper's two-batch scheme");
  }
  if (cfg.strategy == DeviceStrategy::kSramResident ||
      cfg.strategy == DeviceStrategy::kTemporal) {
    if (cfg.cores_x != 1) {
      TTSIM_THROW_API(to_string(cfg.strategy)
                      << " decomposes in Y only (cores_x == 1)");
    }
    if (p.width > 1024 && p.width % 1024 != 0) {
      TTSIM_THROW_API("SRAM-slab domains must be <= 1024 wide or a multiple of "
                      "1024 (FPU tile packs write straight into the slab)");
    }
    if (!cfg.toggles.all_enabled()) {
      TTSIM_THROW_API("component toggles are a Table II instrument of the tiled "
                      "(Section IV) designs");
    }
    if (cfg.strategy == DeviceStrategy::kTemporal &&
        (cfg.temporal_depth < 1 || cfg.temporal_depth > 8)) {
      TTSIM_THROW_API("temporal_depth must be in [1, 8] (got "
                      << cfg.temporal_depth << ")");
    }
    return;
  }
  const bool tiled = cfg.strategy != DeviceStrategy::kRowChunk;
  if (tiled) {
    if (p.width % detail::kTile != 0 || p.height % detail::kTile != 0) {
      TTSIM_THROW_API("tiled strategies need 32x32-divisible domains");
    }
    if (p.height / static_cast<std::uint32_t>(cfg.cores_y) % detail::kTile != 0 ||
        p.height % static_cast<std::uint32_t>(cfg.cores_y) != 0) {
      TTSIM_THROW_API("tiled strategies need 32-divisible rows per core");
    }
  }
  if (!cfg.toggles.all_enabled() && !tiled) {
    TTSIM_THROW_API("component toggles are a Table II instrument of the tiled "
                    "(Section IV) designs");
  }
}

}  // namespace

DeviceRunResult run_jacobi_on_device(ttmetal::Device& device, const JacobiProblem& p,
                                     const DeviceRunConfig& cfg) {
  validate_config(device, p, cfg);
  const detail::CoreSelection sel = detail::select_cores(device, p, cfg);
  const ttmetal::RetryScope retries(device);
  const PaddedLayout layout(p.width, p.height);
  const bool tiled = cfg.strategy != DeviceStrategy::kRowChunk &&
                     cfg.strategy != DeviceStrategy::kSramResident &&
                     cfg.strategy != DeviceStrategy::kTemporal;

  const ttmetal::BufferConfig bc = detail::grid_buffer_config(cfg, layout);
  auto d1 = device.create_buffer(bc);
  auto d2 = device.create_buffer(bc);

  const SimTime t_start = device.now();
  const auto image = layout.initial_image(p);
  device.write_buffer(*d1, std::as_bytes(std::span{image}));
  device.write_buffer(*d2, std::as_bytes(std::span{image}));

  auto shared = std::make_shared<detail::KernelShared>(layout);
  shared->d1 = d1->address();
  shared->d2 = d2->address();
  shared->iterations = p.iterations;
  shared->strategy = cfg.strategy;
  shared->toggles = cfg.toggles;
  shared->chunk_elems = cfg.chunk_elems;
  shared->read_ahead = cfg.read_ahead;
  shared->temporal_depth = cfg.temporal_depth;
  shared->ranges = detail::decompose(p, sel.cores_x, sel.cores_y,
                                     tiled ? detail::kTile : 16);
  shared->core_ids = sel.core_ids;

  ttmetal::Program prog;
  if (tiled) {
    // The Section-IV programs predate the flow-controlled protocol the IR
    // models: always hand-wired.
    detail::build_tiled_program(prog, shared);
  } else if (cfg.lowering == LoweringPath::kIr) {
    // Prove the protocol race/deadlock-free, then lower; the graph's emit
    // closure calls the same builder the kHandWired branch does.
    ir::lower(detail::make_jacobi_graph(
                  shared, static_cast<std::int64_t>(device.spec().sram_bytes)),
              prog);
  } else if (cfg.strategy == DeviceStrategy::kRowChunk) {
    detail::build_rowchunk_program(prog, shared);
  } else if (cfg.strategy == DeviceStrategy::kTemporal) {
    detail::build_temporal_program(prog, shared);
  } else {
    detail::build_sram_resident_program(prog, shared);
  }
  device.run_program(prog);

  // After `iterations` sweeps the freshest grid is d2 for odd counts.
  auto& final_buf = (p.iterations % 2 == 1) ? *d2 : *d1;
  std::vector<bfloat16_t> out(layout.elems());
  device.read_buffer(final_buf, std::as_writable_bytes(std::span{out}));

  DeviceRunResult result;
  result.kernel_time = device.last_kernel_duration();
  result.total_time = device.now() - t_start;
  result.cores_used = sel.ncores();
  result.transfer_retries = static_cast<int>(retries.count());
  result.solution = layout.extract_interior(out);

  if (cfg.verify && cfg.toggles.all_enabled()) {
    const auto ref = cpu::jacobi_reference_bf16(p);
    result.verified_ok = ref.size() == result.solution.size();
    for (std::size_t i = 0; result.verified_ok && i < ref.size(); ++i) {
      if (static_cast<float>(ref[i]) != result.solution[i]) result.verified_ok = false;
    }
  }
  return result;
}

DeviceRunResult run_jacobi_on_device(const JacobiProblem& p, const DeviceRunConfig& cfg,
                                     sim::GrayskullSpec spec) {
  auto device = ttmetal::Device::open(spec);
  return run_jacobi_on_device(*device, p, cfg);
}

AdaptiveRunResult run_jacobi_adaptive(ttmetal::Device& device, const JacobiProblem& p,
                                      const AdaptiveOptions& options,
                                      const DeviceRunConfig& cfg) {
  if (cfg.strategy != DeviceStrategy::kRowChunk) {
    TTSIM_THROW_API("adaptive solving is built on the row-chunk strategy");
  }
  if (options.check_every < 1 || options.tolerance <= 0.0) {
    TTSIM_THROW_API("adaptive solving needs check_every >= 1 and tolerance > 0");
  }
  const std::uint32_t strip = p.width / static_cast<std::uint32_t>(cfg.cores_x);
  if (p.width % static_cast<std::uint32_t>(cfg.cores_x) != 0 || strip % 1024 != 0) {
    TTSIM_THROW_API("device-side residuals need full 1024-element chunks "
                    "(strip width " << strip << ")");
  }
  validate_config(device, p, cfg);
  const detail::CoreSelection sel = detail::select_cores(device, p, cfg);

  const PaddedLayout layout(p.width, p.height);
  const ttmetal::BufferConfig bc = detail::grid_buffer_config(cfg, layout);
  auto d1 = device.create_buffer(bc);
  auto d2 = device.create_buffer(bc);
  const int ncores = sel.ncores();
  ttmetal::BufferConfig res_cfg;
  res_cfg.size = static_cast<std::uint64_t>(ncores) * 32;
  auto residuals = device.create_buffer(res_cfg);

  const SimTime t_start = device.now();
  const auto image = layout.initial_image(p);
  device.write_buffer(*d1, std::as_bytes(std::span{image}));
  device.write_buffer(*d2, std::as_bytes(std::span{image}));

  AdaptiveRunResult result;
  result.final_residual = std::numeric_limits<double>::infinity();
  bool swapped = false;
  int remaining = p.iterations;
  while (remaining > 0) {
    const int chunk = std::min(options.check_every, remaining);
    auto shared = std::make_shared<detail::KernelShared>(layout);
    shared->d1 = swapped ? d2->address() : d1->address();
    shared->d2 = swapped ? d1->address() : d2->address();
    shared->iterations = chunk;
    shared->strategy = cfg.strategy;
    shared->chunk_elems = cfg.chunk_elems;
    shared->read_ahead = cfg.read_ahead;
    shared->residual_addr = residuals->address();
    shared->ranges = detail::decompose(p, sel.cores_x, sel.cores_y, 16);
    shared->core_ids = sel.core_ids;

    ttmetal::Program prog;
    if (cfg.lowering == LoweringPath::kIr) {
      ir::lower(detail::make_jacobi_graph(
                    shared,
                    static_cast<std::int64_t>(device.spec().sram_bytes)),
                prog);
    } else {
      detail::build_rowchunk_program(prog, shared);
    }
    device.run_program(prog);
    result.kernel_time += device.last_kernel_duration();
    result.iterations_run += chunk;
    remaining -= chunk;
    if (chunk % 2 == 1) swapped = !swapped;

    std::vector<std::byte> raw(static_cast<std::size_t>(ncores) * 32);
    device.read_buffer(*residuals, raw);
    double worst = 0.0;
    for (int c = 0; c < ncores; ++c) {
      bfloat16_t r{};
      std::memcpy(&r, raw.data() + static_cast<std::size_t>(c) * 32, 2);
      worst = std::max(worst, static_cast<double>(static_cast<float>(r)));
    }
    result.final_residual = worst;
    if (worst <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // After `iterations_run` sweeps the freshest grid is the current "d2".
  auto& final_buf = swapped ? *d2 : *d1;
  std::vector<bfloat16_t> out(layout.elems());
  device.read_buffer(final_buf, std::as_writable_bytes(std::span{out}));
  result.solution = layout.extract_interior(out);
  result.total_time = device.now() - t_start;
  return result;
}

AdaptiveRunResult run_jacobi_adaptive(const JacobiProblem& p,
                                      const AdaptiveOptions& options,
                                      const DeviceRunConfig& cfg,
                                      sim::GrayskullSpec spec) {
  auto device = ttmetal::Device::open(spec);
  return run_jacobi_adaptive(*device, p, options, cfg);
}

MultiCardResult run_jacobi_multicard(const JacobiProblem& p, int cards,
                                     const DeviceRunConfig& cfg,
                                     sim::GrayskullSpec spec) {
  TTSIM_CHECK(cards >= 1);
  if (static_cast<std::uint32_t>(cards) > p.height) {
    TTSIM_THROW_API("more cards than rows");
  }
  MultiCardResult result;
  result.cards = cards;
  const std::uint32_t base = p.height / static_cast<std::uint32_t>(cards);
  const std::uint32_t extra = p.height % static_cast<std::uint32_t>(cards);
  for (int card = 0; card < cards; ++card) {
    JacobiProblem slab = p;
    slab.height = base + (static_cast<std::uint32_t>(card) < extra ? 1 : 0);
    // Cards cannot exchange halos (paper Section VII): interior cut edges
    // see the frozen initial guess as their boundary condition.
    if (card > 0) slab.bc_top = p.initial;
    if (card < cards - 1) slab.bc_bottom = p.initial;
    auto device = ttmetal::Device::open(spec);
    const auto r = run_jacobi_on_device(*device, slab, cfg);
    result.kernel_time = std::max(result.kernel_time, r.kernel_time);
    result.total_time = std::max(result.total_time, r.total_time);
  }
  return result;
}

}  // namespace ttsim::core
