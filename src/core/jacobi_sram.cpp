/// \file jacobi_sram.cpp
/// The SRAM-resident Jacobi solver — the paper's concluding future-work
/// proposal made concrete: "first copying the domain into local SRAM and
/// operating from there, although this would limit the size of the domain
/// and require direct neighbour to neighbour communications."
///
/// Each core holds its row slab (plus halo rows) twice in its 1 MB SRAM.
/// Per iteration it exchanges one edge row with each vertical neighbour
/// over the NoC (noc_async_write_core + noc_semaphore_inc), computes
/// entirely from SRAM with aliased CB read pointers, and packs results
/// straight into the destination slab through the write-pointer aliasing
/// extension. DRAM sees only the initial load and the final writeback, and
/// synchronisation is neighbour-pairwise (no device-wide barrier) — the
/// systolic structure the paper sketches.
///
/// Layout of a slab row (one 32-byte alignment prefix keeps the initial
/// DRAM loads aligned; data begins at `off` inside it):
///   [prefix][L][interior W elems][R][tile-spill pad]
/// The pack of the last chunk spills its unused FPU lanes past the interior
/// (clobbering R when W < 1024); the writing mover restores R with a single
/// scalar store per row before the slab is read again.

#include "jacobi_internal.hpp"

namespace ttsim::core::detail {
namespace {

// Semaphore ids per core.
constexpr int kSemTopHalo = 0;     // posted by the upper neighbour's dm1
constexpr int kSemBottomHalo = 1;  // posted by the lower neighbour's dm0
constexpr int kSemComputeDm0 = 2;  // compute -> dm0: iteration finished
constexpr int kSemComputeDm1 = 3;  // compute -> dm1: iteration finished
constexpr int kSemRestored = 4;    // dm1 -> compute: R columns restored

constexpr int kCbLoadBarrier = 0;  // device-wide barrier id (initial load)

struct SramShared {
  std::uint64_t d1 = 0, d2 = 0;
  PaddedLayout layout;
  int iterations = 0;
  std::uint32_t chunk = 1024;
  std::uint32_t row_data_elems = 0;   // W + 2 (L, interior, R)
  std::uint32_t row_stride = 0;       // bytes per slab row incl. prefix+pad
  std::uint32_t off = 0;              // data offset inside a row (alignment)
  std::uint32_t slab_a = 0, slab_b = 0;  // L1 addresses
  std::vector<CoreRange> ranges;      // cores_x == 1: one strip per core
  std::vector<int> core_ids;          // logical position -> physical worker

  explicit SramShared(const PaddedLayout& l) : layout(l) {}

  /// Physical worker running logical position `pos` (halo exchange targets
  /// its *positional* neighbours; the mapping survives core remapping).
  int worker_of(int pos) const { return core_ids[static_cast<std::size_t>(pos)]; }

  std::uint32_t rows_pc(int pos) const {
    return ranges[static_cast<std::size_t>(pos)].row_hi -
           ranges[static_cast<std::size_t>(pos)].row_lo;
  }
  std::uint32_t slab(int parity) const { return parity == 0 ? slab_a : slab_b; }
  /// L1 address of the data (the L element) of local row `lr` in a slab.
  std::uint32_t row_data(std::uint32_t slab_base, std::uint32_t lr) const {
    return slab_base + lr * row_stride + off;
  }
};

}  // namespace

void build_sram_resident_program(ttmetal::Program& prog,
                                 std::shared_ptr<KernelShared> base) {
  const auto sh = std::make_shared<SramShared>(base->layout);
  sh->d1 = base->d1;
  sh->d2 = base->d2;
  sh->iterations = base->iterations;
  sh->ranges = base->ranges;
  const std::uint32_t W = base->layout.width();
  // Chunks are full width (or 1024 on wider multiples) so the tile-pack
  // spill stays inside the row's pad: a narrower chunk's pack would spill
  // into the *next* slab row's L column, poisoning the following sweep's
  // xm reads. cfg.chunk_elems is deliberately not honoured here (as in the
  // general SRAM lowering); the per-element op chain is chunk-independent.
  sh->chunk = std::min<std::uint32_t>(1024, W);
  TTSIM_CHECK(W % sh->chunk == 0);
  sh->row_data_elems = W + 2;
  // Room for the alignment prefix and the FPU tile spill past the interior.
  const std::uint32_t data_span = std::max<std::uint32_t>(W + 2, 1026) * 2;
  sh->row_stride = static_cast<std::uint32_t>(align_up(32 + data_span, 32));
  sh->off = static_cast<std::uint32_t>(base->layout.byte_offset(0, -1) % 32);

  const int ncores = static_cast<int>(sh->ranges.size());
  const std::vector<int> cores = base->workers();
  TTSIM_CHECK(static_cast<int>(cores.size()) == ncores);
  sh->core_ids = cores;

  std::uint32_t max_rows = 0;
  for (int c = 0; c < ncores; ++c) max_rows = std::max(max_rows, sh->rows_pc(c));
  const std::uint32_t slab_bytes = (max_rows + 2) * sh->row_stride;

  // CBs: the intermediate accumulator pair used by the compute chain, plus
  // the aliasing vehicle for pack (never pushed).
  prog.create_cb(kCbScalar, cores, kTileBytes, 1);
  prog.create_cb(kCbInter, cores, kTileBytes, 2);
  prog.create_cb(kCbOut, cores, kTileBytes, 1);
  const std::uint32_t slab_a =
      prog.l1_buffer_address(prog.create_l1_buffer(cores, slab_bytes));
  const std::uint32_t slab_b =
      prog.l1_buffer_address(prog.create_l1_buffer(cores, slab_bytes));
  sh->slab_a = slab_a;
  sh->slab_b = slab_b;
  for (int sem = kSemTopHalo; sem <= kSemRestored; ++sem) {
    prog.create_semaphore(sem, cores, 0);
  }
  prog.create_global_barrier(kCbLoadBarrier, 3 * ncores);

  const int n = sh->iterations;

  // ---------------- dm0: initial load + upward halo sends ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, n](ttmetal::DataMoverCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t rows = sh->rows_pc(pos);
        const std::uint32_t read_bytes = sh->row_data_elems * 2 + sh->off;
        // Load rows r0-1 .. r1 into both slabs (halo rows and L/R columns
        // must be valid in each parity's slab).
        for (std::uint32_t parity = 0; parity < 2; ++parity) {
          for (std::uint32_t lr = 0; lr < rows + 2; ++lr) {
            const std::int64_t gr = static_cast<std::int64_t>(rg.row_lo) - 1 + lr;
            const std::uint64_t addr = sh->d1 + sh->layout.byte_offset(gr, -1);
            ctx.noc_async_read(ctx.get_noc_addr(addr - sh->off),
                               sh->slab(static_cast<int>(parity)) +
                                   lr * sh->row_stride,
                               read_bytes);
          }
        }
        ctx.noc_async_read_barrier();
        ctx.global_barrier(kCbLoadBarrier);
        // Per iteration k >= 1: send the top edge row of the iteration's
        // source slab to the upper neighbour's bottom halo slot.
        const bool has_upper = pos > 0;
        for (int k = 1; k < n; ++k) {
          ctx.semaphore_wait(kSemComputeDm0);  // iteration k-1 finished
          if (has_upper) {
            const std::uint32_t src_slab = sh->slab(k % 2);
            const std::uint32_t upper_rows = sh->rows_pc(pos - 1);
            // Send [prefix|L|interior] but NOT the R boundary element: dm1
            // is restoring R concurrently (both movers are gated only on the
            // compute semaphores), and a halo row's R is never consumed —
            // the receiver's y-taps stop at the interior. Excluding it keeps
            // the exchange race-free without a dm0<->dm1 handshake.
            ctx.noc_async_write_core(
                sh->worker_of(pos - 1),
                sh->row_data(src_slab, upper_rows + 1) - sh->off,
                sh->row_data(src_slab, 1) - sh->off,
                (sh->row_data_elems - 1) * 2 + sh->off);
            ctx.noc_semaphore_inc(sh->worker_of(pos - 1), kSemBottomHalo);
          }
          ctx.loop_tick();
        }
        ctx.noc_async_write_barrier();
      },
      "jacobi_sram_dm0");

  // ---------------- compute ----------------
  prog.create_kernel(
      cores,
      [sh, n](ttmetal::ComputeCtx& ctx) {
        const int pos = ctx.position();
        const std::uint32_t rows = sh->rows_pc(pos);
        const bool has_upper = pos > 0;
        const bool has_lower = pos + 1 < ctx.group_size();
        constexpr int dst0 = 0;
        // cb_scalar is local to the compute core here: fill it ourselves.
        fill_scalar_page(ctx, kCbScalar, 0.25f);
        // The slabs must be fully loaded before the first sweep reads (and
        // overwrites!) them.
        ctx.global_barrier(kCbLoadBarrier);
        for (int k = 0; k < n; ++k) {
          if (k > 0) {
            if (has_upper) ctx.semaphore_wait(kSemTopHalo);
            if (has_lower) ctx.semaphore_wait(kSemBottomHalo);
            ctx.semaphore_wait(kSemRestored);
          }
          const std::uint32_t src = sh->slab(k % 2);
          const std::uint32_t dst = sh->slab((k + 1) % 2);
          for (std::uint32_t lr = 1; lr <= rows; ++lr) {
            for (std::uint32_t c0 = 0; c0 < sh->layout.width(); c0 += sh->chunk) {
              const std::uint32_t row_c = sh->row_data(src, lr) + c0 * 2;
              const std::uint32_t row_n = sh->row_data(src, lr - 1) + c0 * 2;
              const std::uint32_t row_s = sh->row_data(src, lr + 1) + c0 * 2;
              // Same operation order as the other strategies:
              // ((xm + xp) + ym + yp) * 0.25, all aliased from the slab.
              ctx.cb_set_rd_ptr(kCbOut, row_c);  // reuse out cb as xm vehicle
              // xm at elem c0 (global col c0-1), xp at elem c0+2.
              // We need two distinct CB handles for the first add: use the
              // inter CB's read override for xp.
              ctx.cb_reserve_back(kCbInter, 1);
              ctx.cb_push_back(kCbInter, 1);
              ctx.cb_set_rd_ptr(kCbInter, row_c + 4);
              ctx.add_tiles(kCbOut, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);
              ctx.cb_set_rd_ptr(kCbOut, row_n + 2);  // ym
              ctx.cb_wait_front(kCbInter, 1);
              ctx.add_tiles(kCbOut, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);
              ctx.cb_set_rd_ptr(kCbOut, row_s + 2);  // yp
              ctx.cb_wait_front(kCbInter, 1);
              ctx.add_tiles(kCbOut, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);
              ctx.cb_wait_front(kCbScalar, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.mul_tiles(kCbScalar, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);

              // Pack the result straight into the destination slab row
              // (interior col c0 = data elem c0+1).
              ctx.cb_set_wr_ptr(kCbOut, sh->row_data(dst, lr) + (c0 + 1) * 2);
              ctx.pack_tile(dst0, kCbOut);
              ctx.loop_tick();
            }
          }
          ctx.semaphore_post(kSemComputeDm0);
          ctx.semaphore_post(kSemComputeDm1);
        }
      },
      "jacobi_sram_compute");

  // ---------------- dm1: restores, downward halo sends, final writeback ---
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh, n](ttmetal::DataMoverCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t rows = sh->rows_pc(pos);
        const bool has_lower = pos + 1 < ctx.group_size();
        const std::uint32_t width = sh->layout.width();
        ctx.global_barrier(kCbLoadBarrier);
        // Snapshot the right boundary value from the freshly loaded slab
        // (element W+1 of any data row) for the per-row restores.
        std::uint16_t r_bits = 0;
        std::memcpy(&r_bits, ctx.l1_ptr(sh->row_data(sh->slab_a, 1) + (width + 1) * 2), 2);

        for (int k = 1; k < n; ++k) {
          ctx.semaphore_wait(kSemComputeDm1);  // iteration k-1 finished
          const std::uint32_t src_slab = sh->slab(k % 2);
          // The last chunk's pack spilled past the interior when W < 1024:
          // restore the R boundary element of every computed row.
          if (width < 1024) {
            for (std::uint32_t lr = 1; lr <= rows; ++lr) {
              ctx.l1_store_u16(sh->row_data(src_slab, lr) + (width + 1) * 2, r_bits);
            }
          }
          ctx.semaphore_post(kSemRestored);
          if (has_lower) {
            ctx.noc_async_write_core(
                sh->worker_of(pos + 1), sh->row_data(src_slab, 0) - sh->off,
                sh->row_data(src_slab, rows) - sh->off,
                sh->row_data_elems * 2 + sh->off);
            ctx.noc_semaphore_inc(sh->worker_of(pos + 1), kSemTopHalo);
          }
          ctx.loop_tick();
        }
        // Final writeback: the last iteration's destination slab holds the
        // answer; restore its R column first, then stream it to DRAM.
        ctx.semaphore_wait(kSemComputeDm1);
        const std::uint32_t final_slab = sh->slab(n % 2);
        if (width < 1024) {
          for (std::uint32_t lr = 1; lr <= rows; ++lr) {
            ctx.l1_store_u16(sh->row_data(final_slab, lr) + (width + 1) * 2, r_bits);
          }
        }
        const std::uint64_t dram = (n % 2 == 1) ? sh->d2 : sh->d1;
        for (std::uint32_t lr = 1; lr <= rows; ++lr) {
          const std::int64_t gr = static_cast<std::int64_t>(rg.row_lo) - 1 + lr;
          ctx.noc_async_write(sh->row_data(final_slab, lr) + 2,
                              ctx.get_noc_addr(dram + sh->layout.byte_offset(gr, 0)),
                              width * 2);
        }
        ctx.noc_async_write_barrier();
      },
      "jacobi_sram_dm1");
}

}  // namespace ttsim::core::detail
