/// \file sharded.cpp
/// Cross-card sharded solver: slab decomposition, deep-halo exchange over a
/// ChipLinkFabric, and lockstep cluster timing. See sharded.hpp for the
/// protocol derivation and DESIGN.md "Multi-chip" for the prose version.

#include "ttsim/core/sharded.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "ttsim/common/check.hpp"
#include "ttsim/core/jacobi_batch.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

namespace ttsim::core {
namespace {

/// One card's slab: owned global interior rows [r0, r1), plus e_top/e_bot
/// extension rows toward interior cuts. The slab's stored image is the
/// contiguous slice of the global stored image starting at stored row `off`
/// (same row_elems(), so rows copy as flat byte ranges).
struct Slab {
  int r0 = 0, r1 = 0;
  int e_top = 0, e_bot = 0;
  int off = 0;
  int height = 0;  ///< slab interior rows = owned + extensions
};

std::vector<Slab> decompose_slabs(int rows, int cards, int k) {
  std::vector<Slab> slabs(static_cast<std::size_t>(cards));
  const int base = rows / cards;
  const int extra = rows % cards;
  int r = 0;
  for (int c = 0; c < cards; ++c) {
    Slab& s = slabs[static_cast<std::size_t>(c)];
    s.r0 = r;
    r += base + (c < extra ? 1 : 0);
    s.r1 = r;
    const int owned = s.r1 - s.r0;
    if (cards > 1 && owned < k) {
      TTSIM_THROW_API("sharded decomposition: card " << c << " owns " << owned
                      << " rows but the epoch length k=" << k
                      << " needs every card to own at least k rows ("
                      << rows << " rows over " << cards << " cards)");
    }
    s.e_top = c > 0 ? k - 1 : 0;
    s.e_bot = c + 1 < cards ? k - 1 : 0;
    s.off = s.r0 - s.e_top;
    s.height = owned + s.e_top + s.e_bot;
  }
  return slabs;
}

/// Everything the unified epoch loop needs to know about the program being
/// sharded, independent of the Jacobi/general split.
struct Job {
  const JacobiProblem* jacobi = nullptr;
  const GeneralStencilProblem* general = nullptr;
  int width = 0, rows = 0, iterations = 0;
  int nfields = 1;
  int written = 0;  ///< the field whose halo crosses the fabric
};

struct CardState {
  ttmetal::Device* dev = nullptr;
  Slab slab;
  PaddedLayout layout{16, 1};  ///< slab layout (placeholder until built)
  std::vector<std::shared_ptr<ttmetal::Buffer>> a, b;  ///< per field; b null
  std::vector<int> cores;                              ///< for read-only
};

/// Copy `count` stored rows starting at `row` between host memory and a
/// slab buffer via the DRAM host backdoor (functional only — the exchange's
/// timing is charged on the fabric, not on PCIe).
void slab_rows_read(ttmetal::Device& dev, const ttmetal::Buffer& buf,
                    const PaddedLayout& layout, int row, int count,
                    bfloat16_t* out) {
  const std::uint64_t row_bytes = layout.row_elems() * sizeof(bfloat16_t);
  dev.hw().dram().host_read(
      buf.address() + static_cast<std::uint64_t>(row) * row_bytes,
      reinterpret_cast<std::byte*>(out),
      static_cast<std::uint64_t>(count) * row_bytes);
}

void slab_rows_write(ttmetal::Device& dev, const ttmetal::Buffer& buf,
                     const PaddedLayout& layout, int row, int count,
                     const bfloat16_t* in) {
  const std::uint64_t row_bytes = layout.row_elems() * sizeof(bfloat16_t);
  dev.hw().dram().host_write(
      buf.address() + static_cast<std::uint64_t>(row) * row_bytes,
      reinterpret_cast<const std::byte*>(in),
      static_cast<std::uint64_t>(count) * row_bytes);
}

ShardedRunResult run_sharded_impl(std::span<ttmetal::Device* const> devices,
                                  sim::ChipLinkFabric& fabric, const Job& job,
                                  const ShardedRunConfig& cfg,
                                  std::vector<std::vector<bfloat16_t>>& images) {
  const int cards = static_cast<int>(devices.size());
  if (cards < 1) TTSIM_THROW_API("sharded run needs at least one card");
  if (fabric.cards() < cards) {
    TTSIM_THROW_API("fabric cables " << fabric.cards() << " cards but "
                    << cards << " were supplied");
  }
  if (cfg.run.strategy != DeviceStrategy::kRowChunk &&
      cfg.run.strategy != DeviceStrategy::kTemporal) {
    TTSIM_THROW_API("sharded runs support kRowChunk and kTemporal only");
  }
  const bool temporal = cfg.run.strategy == DeviceStrategy::kTemporal;
  const int k = cfg.exchange_every > 0 ? cfg.exchange_every
                                       : (temporal ? cfg.run.temporal_depth : 1);
  if (k < 1) TTSIM_THROW_API("exchange_every must be >= 1");
  if (temporal && k > 8) {
    TTSIM_THROW_API("temporal sharding chains at most 8 generations per epoch");
  }
  if (job.iterations < 1) TTSIM_THROW_API("sharded run needs iterations >= 1");

  const PaddedLayout global(static_cast<std::uint32_t>(job.width),
                            static_cast<std::uint32_t>(job.rows));
  const std::uint64_t row_bytes = global.row_elems() * sizeof(bfloat16_t);
  const auto slabs = decompose_slabs(job.rows, cards, k);
  const int ncores = cfg.run.cores_x * cfg.run.cores_y;

  // Per-launch run config: the per-card strategies as-is, with the epoch
  // length driving iterations (and, for temporal, the chained depth so one
  // launch is exactly one DRAM pass).
  auto launch_cfg = [&](int klaunch) {
    DeviceRunConfig lc = cfg.run;
    lc.verify = false;
    if (temporal) lc.temporal_depth = klaunch;
    return lc;
  };
  auto slab_jacobi = [&](const CardState& cs, int klaunch) {
    JacobiProblem q = *job.jacobi;
    q.height = static_cast<std::uint32_t>(cs.slab.height);
    q.iterations = klaunch;
    return q;
  };
  auto slab_general = [&](const CardState& cs, int klaunch) {
    GeneralStencilProblem g = *job.general;
    g.height = static_cast<std::uint32_t>(cs.slab.height);
    g.iterations = klaunch;
    for (auto& f : g.fields) f.initial_field.clear();
    return g;
  };

  // --- open slab state: cores, buffers, H2D staging (PCIe, per card) ---
  // Wall clock starts at the cluster's current frontier: fresh clusters sit
  // at 0, and the serve layer (which reuses mid-life cards) gets the honest
  // "this call occupied the group for total_time" reading.
  SimTime begin = 0;
  for (auto* dev : devices) begin = std::max(begin, dev->now());
  std::vector<CardState> state(static_cast<std::size_t>(cards));
  for (int c = 0; c < cards; ++c) {
    CardState& cs = state[static_cast<std::size_t>(c)];
    cs.dev = devices[static_cast<std::size_t>(c)];
    cs.slab = slabs[static_cast<std::size_t>(c)];
    cs.layout = PaddedLayout(static_cast<std::uint32_t>(job.width),
                             static_cast<std::uint32_t>(cs.slab.height));
    const auto usable = cs.dev->usable_workers();
    if (static_cast<int>(usable.size()) < ncores) {
      TTSIM_THROW_API("card " << c << " has " << usable.size()
                      << " usable workers but the run config needs " << ncores);
    }
    cs.cores.assign(usable.begin(), usable.begin() + ncores);

    const ttmetal::BufferConfig bc =
        job.general != nullptr
            ? batch_grid_buffer_config(cfg.run, slab_general(cs, 1).geometry())
            : batch_grid_buffer_config(cfg.run, slab_jacobi(cs, 1));
    const std::size_t slab_begin =
        static_cast<std::size_t>(cs.slab.off) * global.row_elems();
    const std::size_t slab_elems =
        static_cast<std::size_t>(cs.slab.height + 2) * global.row_elems();
    for (int f = 0; f < job.nfields; ++f) {
      const auto& img = images[static_cast<std::size_t>(f)];
      const std::span<const bfloat16_t> slice(img.data() + slab_begin,
                                              slab_elems);
      auto buf_a = cs.dev->create_buffer(bc);
      cs.dev->write_buffer(*buf_a, std::as_bytes(slice));
      cs.a.push_back(std::move(buf_a));
      if (f == job.written) {
        // Both parities start from the same image: boundary rows are read
        // from whichever buffer is the sweep's source, so they must be
        // present (and equal) in both.
        auto buf_b = cs.dev->create_buffer(bc);
        cs.dev->write_buffer(*buf_b, std::as_bytes(slice));
        cs.b.push_back(std::move(buf_b));
      } else {
        cs.b.push_back(nullptr);
      }
    }
  }

  ShardedRunResult result;
  result.cards = cards;
  const auto fabric_before = fabric.totals();

  // --- lockstep epochs ---
  SimTime cluster = 0;
  for (auto& cs : state) cluster = std::max(cluster, cs.dev->now());
  bool swapped = false;
  int done = 0;
  while (done < job.iterations) {
    const int klaunch = std::min(k, job.iterations - done);
    ++result.epochs;

    SimTime epoch_kernel = 0;
    for (auto& cs : state) {
      cs.dev->hw().engine().run_until(cluster);
      ttmetal::Program prog;
      const DeviceRunConfig lc = launch_cfg(klaunch);
      // The builders anchor a launch's final grid by iteration parity
      // (final_of: odd -> the d2 slot, even -> the d1 slot). A temporal
      // launch is a single DRAM pass, so with an even chain depth it READS
      // the d2 slot and writes d1 — the fresh grid must go in d2 then. A
      // row-chunk launch always reads d1 first, whatever its length.
      const bool reads_d2 = temporal && klaunch % 2 == 0;
      if (job.general != nullptr) {
        GeneralBatchSlot slot;
        for (int f = 0; f < job.nfields; ++f) {
          const auto& a = cs.a[static_cast<std::size_t>(f)];
          const auto& b = cs.b[static_cast<std::size_t>(f)];
          if (f == job.written) {
            const std::uint64_t fresh = swapped ? b->address() : a->address();
            const std::uint64_t other = swapped ? a->address() : b->address();
            slot.d1.push_back(reads_d2 ? other : fresh);
            slot.d2.push_back(reads_d2 ? fresh : other);
          } else {
            slot.d1.push_back(a->address());
            slot.d2.push_back(0);
          }
        }
        slot.core_ids = cs.cores;
        build_batched_stencil_program(prog, slab_general(cs, klaunch), lc,
                                      {slot});
      } else {
        const auto& a = cs.a[0];
        const auto& b = cs.b[0];
        const std::uint64_t fresh = swapped ? b->address() : a->address();
        const std::uint64_t other = swapped ? a->address() : b->address();
        BatchSlot slot;
        slot.d1 = reads_d2 ? other : fresh;
        slot.d2 = reads_d2 ? fresh : other;
        slot.core_ids = cs.cores;
        build_batched_rowchunk_program(prog, slab_jacobi(cs, klaunch), lc,
                                       {slot});
      }
      cs.dev->run_program(prog);
      epoch_kernel = std::max(epoch_kernel, cs.dev->last_kernel_duration());
    }
    result.kernel_time += epoch_kernel;

    SimTime epoch_end = 0;
    for (auto& cs : state) epoch_end = std::max(epoch_end, cs.dev->now());

    // Parity: a row-chunk launch flips buffers once per iteration; a
    // temporal launch is a single DRAM pass however deep the chain is.
    const int flips = temporal ? 1 : klaunch;
    if (flips % 2 == 1) swapped = !swapped;
    done += klaunch;
    cluster = epoch_end;
    if (done >= job.iterations) break;

    // --- halo exchange across every interior cut ---
    // Each side sends its k outermost owned rows of the written field; the
    // receiver's k halo rows (frozen boundary + k-1 extensions) are exactly
    // refilled. The boundary row lands in BOTH parity buffers (it is never
    // kernel-written but read from the alternating source); extension rows
    // only in the next epoch's source, which sweep 1 reads and later sweeps
    // re-derive from each other.
    SimTime exchange_end = epoch_end;
    std::vector<bfloat16_t> rows(static_cast<std::size_t>(k) *
                                 global.row_elems());
    for (int c = 0; c + 1 < cards; ++c) {
      CardState& up = state[static_cast<std::size_t>(c)];
      CardState& dn = state[static_cast<std::size_t>(c + 1)];
      const int f = job.written;
      auto* up_res = (swapped ? up.b[static_cast<std::size_t>(f)]
                              : up.a[static_cast<std::size_t>(f)])
                         .get();
      auto* up_alt = (swapped ? up.a[static_cast<std::size_t>(f)]
                              : up.b[static_cast<std::size_t>(f)])
                         .get();
      auto* dn_res = (swapped ? dn.b[static_cast<std::size_t>(f)]
                              : dn.a[static_cast<std::size_t>(f)])
                         .get();
      auto* dn_alt = (swapped ? dn.a[static_cast<std::size_t>(f)]
                              : dn.b[static_cast<std::size_t>(f)])
                         .get();
      const std::uint64_t bytes = static_cast<std::uint64_t>(k) * row_bytes;

      // Down: card c's bottom k owned rows -> card c+1's top halo.
      {
        const int src_row = (up.slab.r1 - k) - up.slab.off + 1;
        slab_rows_read(*up.dev, *up_res, global, src_row, k, rows.data());
        slab_rows_write(*dn.dev, *dn_res, global, 0, k, rows.data());
        slab_rows_write(*dn.dev, *dn_alt, global, 0, 1, rows.data());
        exchange_end = std::max(exchange_end,
                                fabric.transfer(c, c + 1, bytes, epoch_end));
        ++result.link_messages;
      }
      // Up: card c+1's top k owned rows -> card c's bottom halo.
      {
        const int src_row = dn.slab.e_top + 1;
        slab_rows_read(*dn.dev, *dn_res, global, src_row, k, rows.data());
        const int dst_row = up.slab.height + 2 - k;
        slab_rows_write(*up.dev, *up_res, global, dst_row, k, rows.data());
        slab_rows_write(*up.dev, *up_alt, global, up.slab.height + 1, 1,
                        rows.data() + static_cast<std::size_t>(k - 1) *
                                          global.row_elems());
        exchange_end = std::max(exchange_end,
                                fabric.transfer(c + 1, c, bytes, epoch_end));
        ++result.link_messages;
      }
    }
    result.exchange_time += exchange_end - epoch_end;
    cluster = exchange_end;
  }

  // --- readback (PCIe, per card in parallel) and assembly ---
  for (auto& cs : state) {
    cs.dev->hw().engine().run_until(cluster);
    const int f = job.written;
    auto* res = (swapped ? cs.b[static_cast<std::size_t>(f)]
                         : cs.a[static_cast<std::size_t>(f)])
                    .get();
    std::vector<bfloat16_t> out(cs.layout.elems());
    cs.dev->read_buffer(*res, std::as_writable_bytes(std::span{out}));
    // Owned stored rows of the slab land on the matching global stored rows.
    const int owned = cs.slab.r1 - cs.slab.r0;
    auto& img = images[static_cast<std::size_t>(f)];
    std::memcpy(img.data() +
                    static_cast<std::size_t>(cs.slab.r0 + 1) * global.row_elems(),
                out.data() +
                    static_cast<std::size_t>(cs.slab.e_top + 1) * global.row_elems(),
                static_cast<std::size_t>(owned) * row_bytes);
  }
  SimTime end = cluster;
  for (auto& cs : state) end = std::max(end, cs.dev->now());
  result.total_time = end - begin;

  const auto fabric_after = fabric.totals();
  result.link_bytes = fabric_after.bytes - fabric_before.bytes;

  for (int f = 0; f < job.nfields; ++f) {
    result.fields.push_back(
        global.extract_interior(images[static_cast<std::size_t>(f)]));
  }
  result.solution = result.fields[static_cast<std::size_t>(job.written)];
  if (job.general == nullptr) result.fields.clear();
  return result;
}

}  // namespace

ShardedCluster ShardedCluster::open(int n, sim::DeviceSpec spec,
                                    ttmetal::DeviceConfig dev,
                                    std::optional<sim::ChipLinkConfig> link) {
  ShardedCluster cluster;
  for (int i = 0; i < n; ++i) {
    cluster.cards.push_back(ttmetal::Device::open(spec, dev));
  }
  sim::ChipLinkConfig lc =
      link.has_value() ? *link : sim::ChipLinkConfig::from_spec(spec);
  cluster.fabric = std::make_unique<sim::ChipLinkFabric>(n, std::move(lc));
  return cluster;
}

std::vector<ttmetal::Device*> ShardedCluster::devices() const {
  std::vector<ttmetal::Device*> out;
  for (const auto& c : cards) out.push_back(c.get());
  return out;
}

ShardedRunResult run_jacobi_sharded(std::span<ttmetal::Device* const> cards,
                                    sim::ChipLinkFabric& fabric,
                                    const JacobiProblem& p,
                                    const ShardedRunConfig& cfg,
                                    std::vector<bfloat16_t>* state) {
  Job job;
  job.jacobi = &p;
  job.width = static_cast<int>(p.width);
  job.rows = static_cast<int>(p.height);
  job.iterations = p.iterations;

  const PaddedLayout global(p.width, p.height);
  const bool resuming = state != nullptr && !state->empty();
  if (resuming && state->size() != global.elems()) {
    TTSIM_THROW_API("resume state has " << state->size()
                    << " elements; the padded layout needs " << global.elems());
  }
  std::vector<std::vector<bfloat16_t>> images;
  images.push_back(resuming ? *state : global.initial_image(p));

  ShardedRunResult result = run_sharded_impl(cards, fabric, job, cfg, images);
  if (state != nullptr) *state = images[0];

  if (cfg.verify && !resuming) {
    const auto ref = cpu::jacobi_reference_bf16(p);
    result.verified_ok = ref.size() == result.solution.size();
    for (std::size_t i = 0; result.verified_ok && i < ref.size(); ++i) {
      if (static_cast<float>(ref[i]) != result.solution[i]) {
        result.verified_ok = false;
      }
    }
  }
  return result;
}

ShardedRunResult run_general_sharded(
    std::span<ttmetal::Device* const> cards, sim::ChipLinkFabric& fabric,
    const GeneralStencilProblem& p, const ShardedRunConfig& cfg,
    std::vector<std::vector<bfloat16_t>>* state) {
  p.validate();
  if (p.passes.size() != 1) {
    TTSIM_THROW_API("sharded general runs support single-pass programs only ("
                    << p.passes.size() << " passes)");
  }
  Job job;
  job.general = &p;
  job.width = static_cast<int>(p.width);
  job.rows = static_cast<int>(p.height);
  job.iterations = p.iterations;
  job.nfields = static_cast<int>(p.fields.size());
  job.written = p.passes[0].target;

  const PaddedLayout global(p.width, p.height);
  const bool resuming = state != nullptr && !state->empty();
  std::vector<std::vector<bfloat16_t>> images;
  if (resuming) {
    if (state->size() != p.fields.size()) {
      TTSIM_THROW_API("resume state has " << state->size() << " fields; "
                      << p.fields.size() << " expected");
    }
    images = *state;
  } else {
    for (int f = 0; f < job.nfields; ++f) {
      images.push_back(general_field_image(global, p, f));
    }
  }

  ShardedRunResult result = run_sharded_impl(cards, fabric, job, cfg, images);
  if (state != nullptr) *state = images;

  if (cfg.verify && !resuming) {
    const auto ref = cpu::general_reference_bf16(p);
    result.verified_ok = ref.size() == result.fields.size();
    for (std::size_t f = 0; result.verified_ok && f < ref.size(); ++f) {
      const auto& got = result.fields[f];
      result.verified_ok = ref[f].size() == got.size();
      for (std::size_t i = 0; result.verified_ok && i < got.size(); ++i) {
        if (static_cast<float>(ref[f][i]) != got[i]) result.verified_ok = false;
      }
    }
  }
  return result;
}

ShardedRunResult run_jacobi_sharded(const JacobiProblem& p, int cards,
                                    const ShardedRunConfig& cfg,
                                    sim::DeviceSpec spec) {
  auto cluster = ShardedCluster::open(cards, std::move(spec));
  const auto devs = cluster.devices();
  return run_jacobi_sharded(devs, *cluster.fabric, p, cfg);
}

ShardedRunResult run_general_sharded(const GeneralStencilProblem& p, int cards,
                                     const ShardedRunConfig& cfg,
                                     sim::DeviceSpec spec) {
  auto cluster = ShardedCluster::open(cards, std::move(spec));
  const auto devs = cluster.devices();
  return run_general_sharded(devs, *cluster.fabric, p, cfg);
}

}  // namespace ttsim::core
