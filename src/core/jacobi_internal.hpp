#pragma once
/// \file jacobi_internal.hpp
/// Shared internals of the device Jacobi solvers: the per-core domain
/// decomposition and the program-builder entry points used by the driver.

#include <memory>
#include <vector>

#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/ttmetal/program.hpp"

namespace ttsim::core::detail {

/// Circular-buffer ids shared by all strategies (tt-metal convention:
/// inputs 0..7, intermediates 8..15, outputs 16..23).
inline constexpr int kCbIn0 = 0;   // x-1 tile
inline constexpr int kCbIn1 = 1;   // x+1 tile
inline constexpr int kCbIn2 = 2;   // y-1 tile
inline constexpr int kCbIn3 = 3;   // y+1 tile
inline constexpr int kCbScalar = 4;
inline constexpr int kCbInter = 5;
inline constexpr int kCbRes = 7;
inline constexpr int kCbOut = 16;
inline constexpr int kIterationBarrier = 0;

inline constexpr std::uint32_t kTile = 32;          // 32x32 BF16 batches
inline constexpr std::uint32_t kTileBytes = 2048;   // 1024 elems

/// One core's share of the interior: rows [row_lo, row_hi), cols
/// [col_lo, col_hi).
struct CoreRange {
  std::uint32_t row_lo, row_hi, col_lo, col_hi;
};

/// Balanced 2-D decomposition. Columns split evenly (width must divide by
/// cores_x into multiples of `col_align`); rows split as evenly as possible.
std::vector<CoreRange> decompose(const JacobiProblem& p, int cores_x, int cores_y,
                                 std::uint32_t col_align);

/// Resolved launch grid after graceful degradation: when the fault plan has
/// killed workers, the requested decomposition shrinks onto the survivors
/// (Y first — row splits carry no alignment constraints — then X, keeping
/// the width divisible) and logical positions map onto surviving worker ids.
struct CoreSelection {
  int cores_x = 1;
  int cores_y = 1;
  std::vector<int> core_ids;
  int ncores() const { return cores_x * cores_y; }
};

CoreSelection select_cores(ttmetal::Device& device, const JacobiProblem& p,
                           const DeviceRunConfig& cfg);

/// Grid BufferConfig for the run's buffer-layout choice (shared by the
/// plain, adaptive and resilient drivers).
ttmetal::BufferConfig grid_buffer_config(const DeviceRunConfig& cfg,
                                         const PaddedLayout& layout);

/// Everything the kernels need, shared by reference across the lambdas.
struct KernelShared {
  std::uint64_t d1 = 0;  ///< device address of grid buffer 1
  std::uint64_t d2 = 0;  ///< device address of grid buffer 2
  PaddedLayout layout;
  int iterations = 0;
  DeviceStrategy strategy = DeviceStrategy::kRowChunk;
  ComponentToggles toggles;
  std::uint32_t chunk_elems = 1024;
  /// Row-chunk reader's in-flight batch depth (DeviceRunConfig::read_ahead);
  /// 2 reproduces the paper's two-batch scheme bit-exactly.
  int read_ahead = 2;
  /// kTemporal: iterations chained through SRAM per DRAM pass (1..8).
  int temporal_depth = 1;
  /// When non-zero: on the final iteration the compute kernel tracks the
  /// per-core max |unew - u| on the FPU and the writing mover stores it (one
  /// BF16 value per core, 32-byte slots) at this DRAM address. Requires
  /// full 1024-element chunks so no out-of-interior lanes pollute the
  /// reduction.
  std::uint64_t residual_addr = 0;
  std::vector<CoreRange> ranges;
  /// Physical worker ids: logical position i (= index into `ranges`) runs on
  /// worker core_ids[i]. Empty means the identity mapping. Graceful
  /// degradation routes around failed cores by listing survivors here —
  /// kernels keep addressing neighbours by *position* and the builders
  /// translate to physical ids.
  std::vector<int> core_ids;
  /// Device-wide barrier id the built kernels rendezvous on between
  /// iterations. The default reproduces every single-group program
  /// bit-exactly; batched launches (several independent solves in one
  /// program on disjoint core groups — see jacobi_batch.hpp) give each
  /// group its own id so groups never synchronise with each other.
  int barrier_id = kIterationBarrier;

  KernelShared(const PaddedLayout& l) : layout(l) {}

  /// Resolved physical worker list (identity fallback).
  std::vector<int> workers() const {
    if (!core_ids.empty()) return core_ids;
    std::vector<int> ids(ranges.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
    return ids;
  }
};

/// Section IV program (kInitial / kWriteOptimised / kDoubleBuffered).
void build_tiled_program(ttmetal::Program& prog, std::shared_ptr<KernelShared> sh);

/// Section VI program (kRowChunk).
void build_rowchunk_program(ttmetal::Program& prog, std::shared_ptr<KernelShared> sh);

/// Future-work program (kSramResident): domain resident in core SRAM with
/// direct neighbour-to-neighbour halo exchange.
void build_sram_resident_program(ttmetal::Program& prog,
                                 std::shared_ptr<KernelShared> sh);

/// Temporal-tiling program (kTemporal): each core chains
/// sh->temporal_depth Jacobi iterations per DRAM pass, computing a
/// trapezoid of redundant skirt rows in L1 instead of exchanging halos
/// between sub-iterations. Bit-exact with temporal_depth sequential
/// row-chunk sweeps.
void build_temporal_program(ttmetal::Program& prog,
                            std::shared_ptr<KernelShared> sh);

/// Fill a reserved CB page with 1024 copies of `value` (the cb_scalar trick).
void fill_scalar_page(ttmetal::KernelCtxBase& ctx, int cb_id, float value);

}  // namespace ttsim::core::detail
