#include "ttsim/core/jacobi_batch.hpp"

#include <set>

#include "jacobi_internal.hpp"

namespace ttsim::core {

void build_batched_rowchunk_program(ttmetal::Program& prog, const JacobiProblem& p,
                                    const DeviceRunConfig& cfg,
                                    const std::vector<BatchSlot>& slots) {
  if (slots.empty()) TTSIM_THROW_API("batched launch needs at least one slot");
  validate_batch_request(p, cfg);

  const PaddedLayout layout(p.width, p.height);
  const auto ranges = detail::decompose(p, cfg.cores_x, cfg.cores_y, 16);

  std::set<int> used;
  for (std::size_t g = 0; g < slots.size(); ++g) {
    const BatchSlot& slot = slots[g];
    if (slot.core_ids.size() != ranges.size()) {
      TTSIM_THROW_API("batch slot " << g << " supplies " << slot.core_ids.size()
                      << " cores but the decomposition needs " << ranges.size());
    }
    for (int id : slot.core_ids) {
      if (!used.insert(id).second) {
        TTSIM_THROW_API("batch slots must use disjoint cores (worker " << id
                        << " appears twice)");
      }
    }
  }

  for (std::size_t g = 0; g < slots.size(); ++g) {
    const BatchSlot& slot = slots[g];
    auto shared = std::make_shared<detail::KernelShared>(layout);
    shared->d1 = slot.d1;
    shared->d2 = slot.d2;
    shared->iterations = p.iterations;
    shared->strategy = cfg.strategy;
    shared->toggles = cfg.toggles;
    shared->chunk_elems = cfg.chunk_elems;
    shared->read_ahead = cfg.read_ahead;
    shared->temporal_depth = cfg.temporal_depth;
    shared->ranges = ranges;
    shared->core_ids = slot.core_ids;
    shared->barrier_id = static_cast<int>(g);
    if (cfg.strategy == DeviceStrategy::kTemporal) {
      detail::build_temporal_program(prog, shared);
    } else {
      detail::build_rowchunk_program(prog, shared);
    }
  }
}

void validate_batch_request(const JacobiProblem& p, const DeviceRunConfig& cfg) {
  if (cfg.strategy != DeviceStrategy::kRowChunk &&
      cfg.strategy != DeviceStrategy::kTemporal) {
    TTSIM_THROW_API("batched launches are built on the row-chunk or temporal "
                    "strategies");
  }
  if (cfg.strategy == DeviceStrategy::kTemporal) {
    if (cfg.cores_x != 1) {
      TTSIM_THROW_API("temporal tiling decomposes in Y only (cores_x == 1)");
    }
    if (p.width > 1024 && p.width % 1024 != 0) {
      TTSIM_THROW_API("SRAM-slab domains must be <= 1024 wide or a multiple of "
                      "1024 (FPU tile packs write straight into the slab)");
    }
    if (cfg.temporal_depth < 1 || cfg.temporal_depth > 8) {
      TTSIM_THROW_API("temporal_depth must be in [1, 8] (got "
                      << cfg.temporal_depth << ")");
    }
  }
  if (p.iterations < 1) TTSIM_THROW_API("need at least one iteration");
  if (cfg.read_ahead < 2 || cfg.read_ahead > 64) {
    TTSIM_THROW_API("read_ahead must be in [2, 64] (got " << cfg.read_ahead
                    << "); 2 is the paper's two-batch scheme");
  }
  (void)detail::decompose(p, cfg.cores_x, cfg.cores_y, 16);
}

ttmetal::BufferConfig batch_grid_buffer_config(const DeviceRunConfig& cfg,
                                               const JacobiProblem& p) {
  return detail::grid_buffer_config(cfg, PaddedLayout(p.width, p.height));
}

}  // namespace ttsim::core
