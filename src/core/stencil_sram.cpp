/// \file stencil_sram.cpp
/// SRAM-resident lowering of the general frontend (single-field single-pass
/// programs, Y-only decompositions): the jacobi_sram machinery — both slab
/// parities resident in L1, neighbour-pairwise halo exchange, per-row R
/// restores after tile-pack spill, DRAM touched only for the initial load
/// and final writeback — driving the shared tap-chain emitter instead of
/// the fixed Jacobi chain. Because both strategies emit the identical FPU
/// op sequence per point, rowchunk-vs-SRAM bit-exactness holds by
/// construction; diagonal taps are safe here because the upward halo send's
/// R exclusion only leaves the receiver's halo-row R at its initial value,
/// and the R column is boundary-constant.
///
/// Slab row layout (32-byte alignment prefix, data begins at `off`):
///   [prefix][L][interior W elems][R][tile-spill pad]
/// Chunks are full width (or 1024 on wider multiples) so the spill stays
/// inside the row's pad; cfg.chunk_elems is deliberately not honoured here.

#include <cstring>

#include "stencil_internal.hpp"

namespace ttsim::core::detail {
namespace {

// Semaphore ids per core (same protocol as jacobi_sram).
constexpr int kSemTopHalo = 0;     // posted by the upper neighbour's dm1
constexpr int kSemBottomHalo = 1;  // posted by the lower neighbour's dm0
constexpr int kSemComputeDm0 = 2;  // compute -> dm0: iteration finished
constexpr int kSemComputeDm1 = 3;  // compute -> dm1: iteration finished
constexpr int kSemRestored = 4;    // dm1 -> compute: R columns restored

struct SramShared {
  std::uint64_t d1 = 0, d2 = 0;
  PaddedLayout layout;
  int iterations = 0;
  LoweredPass pass;
  std::vector<float> weights;
  std::uint32_t chunk = 1024;
  std::uint32_t row_data_elems = 0;   // W + 2 (L, interior, R)
  std::uint32_t row_stride = 0;       // bytes per slab row incl. prefix+pad
  std::uint32_t off = 0;              // data offset inside a row (alignment)
  std::uint32_t slab_a = 0, slab_b = 0;  // L1 addresses
  std::uint32_t wtab = 0;
  int barrier_id = 0;
  std::vector<CoreRange> ranges;      // cores_x == 1: one strip per core
  std::vector<int> core_ids;

  explicit SramShared(const PaddedLayout& l) : layout(l) {}

  int worker_of(int pos) const { return core_ids[static_cast<std::size_t>(pos)]; }
  std::uint32_t rows_pc(int pos) const {
    return ranges[static_cast<std::size_t>(pos)].row_hi -
           ranges[static_cast<std::size_t>(pos)].row_lo;
  }
  std::uint32_t slab(int parity) const { return parity == 0 ? slab_a : slab_b; }
  std::uint32_t row_data(std::uint32_t slab_base, std::uint32_t lr) const {
    return slab_base + lr * row_stride + off;
  }
};

}  // namespace

void build_general_sram_program(ttmetal::Program& prog,
                                std::shared_ptr<GeneralShared> base) {
  TTSIM_CHECK_MSG(base->nfields() == 1 && base->passes.size() == 1,
                  "SRAM lowering handles single-field single-pass programs");
  const auto sh = std::make_shared<SramShared>(base->layout);
  sh->d1 = base->d1[0];
  sh->d2 = base->d2[0];
  sh->iterations = base->iterations;
  sh->pass = base->passes[0];
  sh->weights = base->weights;
  sh->barrier_id = base->barrier_id;
  sh->ranges = base->ranges;
  const std::uint32_t W = base->layout.width();
  sh->chunk = std::min<std::uint32_t>(1024, W);
  while (sh->chunk > 16 && (W % sh->chunk != 0 || sh->chunk % 16 != 0)) --sh->chunk;
  TTSIM_CHECK(W % sh->chunk == 0);
  sh->row_data_elems = W + 2;
  // Room for the alignment prefix and the FPU tile spill past the interior.
  const std::uint32_t data_span = std::max<std::uint32_t>(W + 2, 1026) * 2;
  sh->row_stride = static_cast<std::uint32_t>(align_up(32 + data_span, 32));
  sh->off = static_cast<std::uint32_t>(base->layout.byte_offset(0, -1) % 32);

  const int ncores = static_cast<int>(sh->ranges.size());
  const std::vector<int> cores = base->workers();
  TTSIM_CHECK(static_cast<int>(cores.size()) == ncores);
  sh->core_ids = cores;

  std::uint32_t max_rows = 0;
  for (int c = 0; c < ncores; ++c) max_rows = std::max(max_rows, sh->rows_pc(c));
  const std::uint32_t slab_bytes = (max_rows + 2) * sh->row_stride;

  // The field CB is a read-alias vehicle and kCbGOut the pack's write-alias
  // vehicle — neither is ever pushed. The accumulator CBs carry real pages.
  const bool needs_inter = sh->pass.terms.size() > 1;
  const bool needs_post = sh->pass.post != PostOp::kNone;
  prog.create_cb(kCbFieldBase, cores, kTileBytes, 1);
  prog.create_cb(kCbWgt, cores, kTileBytes, 1);
  if (needs_inter) prog.create_cb(kCbGInter, cores, kTileBytes, 2);
  if (needs_inter || needs_post) prog.create_cb(kCbGTmp, cores, kTileBytes, 2);
  if (needs_post) prog.create_cb(kCbGTmp2, cores, kTileBytes, 2);
  prog.create_cb(kCbGOut, cores, kTileBytes, 1);
  sh->slab_a = prog.l1_buffer_address(prog.create_l1_buffer(cores, slab_bytes));
  sh->slab_b = prog.l1_buffer_address(prog.create_l1_buffer(cores, slab_bytes));
  sh->wtab = prog.l1_buffer_address(prog.create_l1_buffer(
      cores, static_cast<std::uint64_t>(sh->weights.size()) * kTileBytes));
  for (int sem = kSemTopHalo; sem <= kSemRestored; ++sem) {
    prog.create_semaphore(sem, cores, 0);
  }
  prog.create_global_barrier(sh->barrier_id, 3 * ncores);

  const int n = sh->iterations;
  const int barrier = sh->barrier_id;

  // ---------------- dm0: initial load + upward halo sends ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, n, barrier](ttmetal::DataMoverCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t rows = sh->rows_pc(pos);
        const std::uint32_t read_bytes = sh->row_data_elems * 2 + sh->off;
        // Load rows r0-1 .. r1 into both slabs (halo rows and L/R columns
        // must be valid in each parity's slab).
        for (std::uint32_t parity = 0; parity < 2; ++parity) {
          for (std::uint32_t lr = 0; lr < rows + 2; ++lr) {
            const std::int64_t gr = static_cast<std::int64_t>(rg.row_lo) - 1 + lr;
            const std::uint64_t addr = sh->d1 + sh->layout.byte_offset(gr, -1);
            ctx.noc_async_read(ctx.get_noc_addr(addr - sh->off),
                               sh->slab(static_cast<int>(parity)) +
                                   lr * sh->row_stride,
                               read_bytes);
          }
        }
        ctx.noc_async_read_barrier();
        ctx.global_barrier(barrier);
        // Per iteration k >= 1: send the top edge row of the iteration's
        // source slab to the upper neighbour's bottom halo slot.
        const bool has_upper = pos > 0;
        for (int k = 1; k < n; ++k) {
          ctx.semaphore_wait(kSemComputeDm0);  // iteration k-1 finished
          if (has_upper) {
            const std::uint32_t src_slab = sh->slab(k % 2);
            const std::uint32_t upper_rows = sh->rows_pc(pos - 1);
            // Send [prefix|L|interior] but NOT the R boundary element: dm1
            // restores R concurrently, and the receiver's halo-row R — which
            // only diagonal taps of edge cells read — keeps its initial
            // value, correct because the R column is boundary-constant.
            ctx.noc_async_write_core(
                sh->worker_of(pos - 1),
                sh->row_data(src_slab, upper_rows + 1) - sh->off,
                sh->row_data(src_slab, 1) - sh->off,
                (sh->row_data_elems - 1) * 2 + sh->off);
            ctx.noc_semaphore_inc(sh->worker_of(pos - 1), kSemBottomHalo);
          }
          ctx.loop_tick();
        }
        ctx.noc_async_write_barrier();
      },
      "stencil_sram_dm0");

  // ---------------- compute ----------------
  prog.create_kernel(
      cores,
      [sh, n, barrier](ttmetal::ComputeCtx& ctx) {
        const int pos = ctx.position();
        const std::uint32_t rows = sh->rows_pc(pos);
        const bool has_upper = pos > 0;
        const bool has_lower = pos + 1 < ctx.group_size();
        ctx.binary_op_init_common(kCbWgt, kCbFieldBase);
        fill_weight_table(ctx, sh->wtab, sh->weights);
        // The slabs must be fully loaded before the first sweep reads (and
        // overwrites!) them.
        ctx.global_barrier(barrier);
        const std::uint32_t valid = sh->chunk * 2;
        std::vector<TapAddr> taps(sh->pass.terms.size());
        for (int k = 0; k < n; ++k) {
          if (k > 0) {
            if (has_upper) ctx.semaphore_wait(kSemTopHalo);
            if (has_lower) ctx.semaphore_wait(kSemBottomHalo);
            ctx.semaphore_wait(kSemRestored);
          }
          const std::uint32_t src = sh->slab(k % 2);
          const std::uint32_t dst = sh->slab((k + 1) % 2);
          for (std::uint32_t lr = 1; lr <= rows; ++lr) {
            for (std::uint32_t c0 = 0; c0 < sh->layout.width(); c0 += sh->chunk) {
              // Tap alias: data elem c0+1+dc of slab row lr+dr (elem 0 is L,
              // the boundary column).
              for (std::size_t t = 0; t < sh->pass.terms.size(); ++t) {
                const LoweredTerm& term = sh->pass.terms[t];
                const std::uint32_t row = sh->row_data(
                    src, static_cast<std::uint32_t>(static_cast<int>(lr) + term.dr));
                taps[t] = TapAddr{kCbFieldBase,
                                  row + c0 * 2 +
                                      static_cast<std::uint32_t>(2 + 2 * term.dc),
                                  valid, term.widx};
              }
              const TapAddr self{kCbFieldBase,
                                 sh->row_data(src, lr) + c0 * 2 + 2, valid, 0};
              emit_tap_chain(ctx, sh->wtab, taps, sh->pass.post, self,
                             [&](int reg) {
                               // Pack straight into the destination slab row
                               // (interior col c0 = data elem c0+1).
                               ctx.cb_set_wr_ptr(
                                   kCbGOut, sh->row_data(dst, lr) + (c0 + 1) * 2);
                               ctx.pack_tile(reg, kCbGOut);
                             });
              ctx.loop_tick();
            }
          }
          ctx.semaphore_post(kSemComputeDm0);
          ctx.semaphore_post(kSemComputeDm1);
        }
      },
      "stencil_sram_compute");

  // ---------------- dm1: restores, downward halo sends, final writeback ---
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh, n, barrier](ttmetal::DataMoverCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t rows = sh->rows_pc(pos);
        const bool has_lower = pos + 1 < ctx.group_size();
        const std::uint32_t width = sh->layout.width();
        ctx.global_barrier(barrier);
        // Snapshot the right boundary value from the freshly loaded slab
        // (element W+1 of any data row) for the per-row restores.
        std::uint16_t r_bits = 0;
        std::memcpy(&r_bits, ctx.l1_ptr(sh->row_data(sh->slab_a, 1) + (width + 1) * 2), 2);

        for (int k = 1; k < n; ++k) {
          ctx.semaphore_wait(kSemComputeDm1);  // iteration k-1 finished
          const std::uint32_t src_slab = sh->slab(k % 2);
          // The last chunk's pack spilled past the interior when W < 1024:
          // restore the R boundary element of every computed row.
          if (width < 1024) {
            for (std::uint32_t lr = 1; lr <= rows; ++lr) {
              ctx.l1_store_u16(sh->row_data(src_slab, lr) + (width + 1) * 2, r_bits);
            }
          }
          ctx.semaphore_post(kSemRestored);
          if (has_lower) {
            ctx.noc_async_write_core(
                sh->worker_of(pos + 1), sh->row_data(src_slab, 0) - sh->off,
                sh->row_data(src_slab, rows) - sh->off,
                sh->row_data_elems * 2 + sh->off);
            ctx.noc_semaphore_inc(sh->worker_of(pos + 1), kSemTopHalo);
          }
          ctx.loop_tick();
        }
        // Final writeback: the last iteration's destination slab holds the
        // answer; restore its R column first, then stream it to DRAM.
        ctx.semaphore_wait(kSemComputeDm1);
        const std::uint32_t final_slab = sh->slab(n % 2);
        if (width < 1024) {
          for (std::uint32_t lr = 1; lr <= rows; ++lr) {
            ctx.l1_store_u16(sh->row_data(final_slab, lr) + (width + 1) * 2, r_bits);
          }
        }
        const std::uint64_t dram = (n % 2 == 1) ? sh->d2 : sh->d1;
        for (std::uint32_t lr = 1; lr <= rows; ++lr) {
          const std::int64_t gr = static_cast<std::int64_t>(rg.row_lo) - 1 + lr;
          ctx.noc_async_write(sh->row_data(final_slab, lr) + 2,
                              ctx.get_noc_addr(dram + sh->layout.byte_offset(gr, 0)),
                              width * 2);
        }
        ctx.noc_async_write_barrier();
      },
      "stencil_sram_dm1");
}

}  // namespace ttsim::core::detail
