/// \file jacobi_resilient.cpp
/// Checkpoint/restart Jacobi driver (see resilience.hpp). Recovery layers:
///   1. Checksummed PCIe transfers retry transient corruption inside the
///      Device (bounded, exponential backoff) — invisible here except in the
///      retry counter.
///   2. The per-launch watchdog turns hangs (core failures parking kernels)
///      into DeviceTimeoutError; this driver answers by dropping the wedged
///      device generation, shrinking the decomposition onto the surviving
///      workers and replaying from the last checkpoint.
/// Checkpoints are exact BF16 device images, so replay — even on a smaller
/// core grid, which changes nothing about per-element arithmetic — is
/// bit-identical to an undisturbed run and still verifies against the CPU
/// reference.

#include "ttsim/core/resilience.hpp"

#include <algorithm>

#include "jacobi_internal.hpp"
#include "ttsim/cpu/jacobi_cpu.hpp"

namespace ttsim::core {

namespace {

SimTime auto_watchdog(const JacobiProblem& p, int chunk_iters) {
  // ~100 ns per point-update is three orders of magnitude above the e150's
  // streaming rate, so a legitimate chunk cannot trip it; a genuine hang
  // drains the event queue and is detected immediately regardless of the
  // bound, which therefore only has to catch livelock.
  const double updates = static_cast<double>(p.width) *
                         static_cast<double>(p.height) *
                         static_cast<double>(chunk_iters);
  return 10 * kMillisecond +
         static_cast<SimTime>(updates * 100.0 * static_cast<double>(kNanosecond));
}

}  // namespace

ResilientRunResult run_jacobi_resilient(const JacobiProblem& p,
                                        const DeviceRunConfig& cfg,
                                        const ResilienceOptions& options,
                                        std::shared_ptr<sim::FaultPlan> fault_plan,
                                        sim::GrayskullSpec spec) {
  if (options.checkpoint_every < 1) {
    TTSIM_THROW_API("checkpoint_every must be >= 1");
  }
  if (options.max_restarts < 0) TTSIM_THROW_API("max_restarts must be >= 0");
  if (p.iterations < 1) TTSIM_THROW_API("need at least one iteration");
  if (cfg.cores_x * cfg.cores_y > spec.worker_cores) {
    TTSIM_THROW_API("decomposition needs " << cfg.cores_x * cfg.cores_y
                                           << " cores but the e150 has "
                                           << spec.worker_cores << " workers");
  }
  if (!cfg.toggles.all_enabled()) {
    TTSIM_THROW_API("resilient solving runs the full pipeline (the Table II "
                    "toggles are a measurement instrument)");
  }
  const bool tiled = cfg.strategy != DeviceStrategy::kRowChunk &&
                     cfg.strategy != DeviceStrategy::kSramResident;
  const PaddedLayout layout(p.width, p.height);

  ResilientRunResult res;
  // The running checkpoint: the exact BF16 device image after the sweeps
  // completed so far. Restarting from it replays bit-exactly.
  std::vector<bfloat16_t> checkpoint = layout.initial_image(p);
  int remaining = p.iterations;

  for (;;) {
    ttmetal::DeviceConfig dc;
    dc.sim_time_limit =
        options.watchdog_limit > 0
            ? options.watchdog_limit
            : auto_watchdog(p, std::min(options.checkpoint_every, remaining));
    dc.checksum_transfers = options.checksum_transfers;
    dc.fault_plan = fault_plan;
    auto device = ttmetal::Device::open(spec, dc);

    // Shrink onto the workers that survived earlier generations.
    const detail::CoreSelection sel = detail::select_cores(*device, p, cfg);
    res.cores_used = sel.ncores();

    int in_flight = 0;
    try {
      const ttmetal::BufferConfig bc = detail::grid_buffer_config(cfg, layout);
      auto d1 = device->create_buffer(bc);
      auto d2 = device->create_buffer(bc);
      device->write_buffer(*d1, std::as_bytes(std::span{checkpoint}));
      device->write_buffer(*d2, std::as_bytes(std::span{checkpoint}));
      bool swapped = false;
      while (remaining > 0) {
        const int chunk = std::min(options.checkpoint_every, remaining);
        in_flight = chunk;
        auto shared = std::make_shared<detail::KernelShared>(layout);
        shared->d1 = swapped ? d2->address() : d1->address();
        shared->d2 = swapped ? d1->address() : d2->address();
        shared->iterations = chunk;
        shared->strategy = cfg.strategy;
        shared->toggles = cfg.toggles;
        shared->chunk_elems = cfg.chunk_elems;
        shared->read_ahead = cfg.read_ahead;
        shared->ranges = detail::decompose(p, sel.cores_x, sel.cores_y,
                                           tiled ? detail::kTile : 16);
        shared->core_ids = sel.core_ids;

        ttmetal::Program prog;
        if (tiled) {
          detail::build_tiled_program(prog, shared);
        } else if (cfg.strategy == DeviceStrategy::kRowChunk) {
          detail::build_rowchunk_program(prog, shared);
        } else {
          detail::build_sram_resident_program(prog, shared);
        }
        device->run_program(prog);
        res.kernel_time += device->last_kernel_duration();
        remaining -= chunk;
        in_flight = 0;
        if (chunk % 2 == 1) swapped = !swapped;
        // Snapshot the freshest grid as the new checkpoint.
        auto& fresh = swapped ? *d2 : *d1;
        device->read_buffer(fresh, std::as_writable_bytes(std::span{checkpoint}));
      }
      res.total_time += device->now();
      res.transfer_retries += static_cast<int>(device->transfer_retries());
      break;
    } catch (const ttmetal::DeviceTimeoutError&) {
      res.total_time += device->now();
      res.transfer_retries += static_cast<int>(device->transfer_retries());
      res.iterations_replayed += in_flight;
      ++res.restarts;
      if (res.restarts > options.max_restarts) throw;
      // The wedged generation (and its buffers) is dropped; the next one
      // shrinks onto the survivors and restores the checkpoint.
    }
  }

  res.solution = layout.extract_interior(checkpoint);
  if (fault_plan != nullptr) res.fault_summary = fault_plan->trace_string();
  if (cfg.verify) {
    const auto ref = cpu::jacobi_reference_bf16(p);
    res.verified_ok = ref.size() == res.solution.size();
    for (std::size_t i = 0; res.verified_ok && i < ref.size(); ++i) {
      if (static_cast<float>(ref[i]) != res.solution[i]) res.verified_ok = false;
    }
  }
  return res;
}

}  // namespace ttsim::core
