#pragma once
/// \file ir_frontend.hpp (internal)
/// Builders that model an already-resolved kernel-shared state as a
/// dataflow-IR Graph. Each returned graph carries an emit closure invoking
/// the very hand-wired builder it models, so ir::lower(graph, prog) first
/// proves the protocol sound and then produces a Program bit-identical to
/// calling the builder directly.
///
/// Paths that stay hand-wired (no IR graph): the Section-IV tiled
/// programs, and the batched builders — several independent solves share
/// one Program there, which the single-group graphs don't model.

#include <cstdint>
#include <memory>

#include "jacobi_internal.hpp"
#include "stencil_internal.hpp"
#include "ttsim/ir/ir.hpp"

namespace ttsim::core::detail {

/// Protocol graph of the program build_rowchunk_program /
/// build_sram_resident_program / build_temporal_program (keyed on
/// sh->strategy) would emit for `sh`. The row-chunk graph keeps the
/// read-ahead depth symbolic with range [2, max(8, depth)], so the checker
/// proves the slot-ring and credit arithmetic for every depth, not just
/// the one being launched.
ir::Graph make_jacobi_graph(std::shared_ptr<KernelShared> sh,
                            std::int64_t sram_bytes);

/// Same for the general radius-1 frontend: the row-chunk group, the
/// SRAM-resident program or the temporal group, keyed on `strategy`
/// (GeneralShared does not carry one).
ir::Graph make_general_graph(std::shared_ptr<GeneralShared> sh,
                             DeviceStrategy strategy,
                             std::int64_t sram_bytes);

}  // namespace ttsim::core::detail
