/// \file jacobi_rowchunk.cpp
/// The Section VI optimised Jacobi design. Batches are one-dimensional
/// chunks of (up to) 1024 elements along X (Fig. 6); each batch needs one
/// contiguous read of chunk+2 elements (the chunk plus one halo element per
/// side). The reading data mover keeps a rotating window of row slots in
/// local SRAM — 2N+3 slots for read-ahead depth N, rotated continuously
/// across column strips so a column's first rows never land in slots the
/// previous column's in-flight batches still reference (the paper's N = 2
/// scheme needs 5 slots in steady state; the two extra slots absorb the
/// column-boundary overlap) — reads N batches ahead with one
/// tagged barrier per batch, and never copies memory: the compute kernel
/// redirects the input CBs' read pointers into the mover's slots with the
/// cb_set_rd_ptr SDK extension —
///   x-1 tile = slot(j)   + off        (chunk shifted left by one element)
///   x+1 tile = slot(j)   + off + 4 B  (shifted right)
///   y-1 tile = slot(j-1) + off + 2 B  (row above, centred)
///   y+1 tile = slot(j+1) + off + 2 B  (row below, centred)
/// where `off` is the Listing-4 alignment offset of the strip's left halo.

#include "jacobi_internal.hpp"

namespace ttsim::core::detail {
namespace {

std::uint32_t slot_bytes(std::uint32_t chunk) {
  // chunk + 2 halo elements, plus up to 32 alignment-prefix bytes.
  return static_cast<std::uint32_t>(align_up((chunk + 2) * 2 + 32, 64));
}

struct ChunkGrid {
  CoreRange rg;
  std::uint32_t chunk;   ///< elements per batch
  std::uint32_t ncols;   ///< column strips of `chunk` elements
  std::uint32_t nrows;
  std::uint32_t nslots;  ///< row-slot rotation length, 2N+3

  ChunkGrid(const CoreRange& r, std::uint32_t chunk_elems, std::uint32_t slots)
      : rg(r), nslots(slots) {
    const std::uint32_t strip = rg.col_hi - rg.col_lo;
    // Largest chunk that tiles the strip exactly and keeps writes aligned
    // (multiple of 16 elements). X-decompositions whose strips don't divide
    // by 1024 thus run with narrower chunks — wasting FPU lanes, which is
    // the cost the paper's Table VIII shows for cores-in-X scaling.
    chunk = std::min(chunk_elems, strip);
    while (chunk > 16 && (strip % chunk != 0 || chunk % 16 != 0)) --chunk;
    TTSIM_CHECK_MSG(strip % chunk == 0 && chunk % 16 == 0,
                    "no valid chunk width for strip " << strip);
    ncols = strip / chunk;
    nrows = rg.row_hi - rg.row_lo;
  }
  /// Slot index for input row y of column strip `col`. The rotation runs
  /// continuously across column strips (each strip touches nrows+2 rows:
  /// the strip plus one halo row per side), so the first rows of a new
  /// column take the slots *after* the previous column's tail instead of
  /// wrapping back onto slots its in-flight batches may still reference.
  std::uint32_t slot_of(std::uint32_t col, std::int64_t y) const {
    const std::int64_t t =
        static_cast<std::int64_t>(col) * (nrows + 2) +
        (y - (static_cast<std::int64_t>(rg.row_lo) - 1));
    return static_cast<std::uint32_t>(t % nslots);
  }
};

}  // namespace

void build_rowchunk_program(ttmetal::Program& prog, std::shared_ptr<KernelShared> sh) {
  const int ncores = static_cast<int>(sh->ranges.size());
  const std::vector<int> cores = sh->workers();
  TTSIM_CHECK(static_cast<int>(cores.size()) == ncores);

  // Read-ahead depth N: the reader keeps up to N row batches in flight.
  // Input CBs carry no data (read pointers are aliased); N pages give the
  // reader exactly the flow control that keeps a slot alive until the
  // compute kernel is done with the batches that read it — a reserve for
  // batch j waits for batch j-N to be popped, at which point the slot the
  // next issued row lands in (row j-N-1's) is no longer referenced.
  const auto depth = static_cast<std::uint32_t>(std::max(2, sh->read_ahead));
  // Slot-count bound for the continuous rotation. Batch k of a column
  // (continuous row index T+k for the column's first input row T) may issue
  // rows up to T+k+N+1 while its reserve only proves batch k-N was popped —
  // across a column boundary the unpopped batches k-N+1..k-1 of the
  // previous column still reference rows down to T+k-N-1, a live span of
  // 2N+2 consecutive row indices (the three-row prologue before batch 0's
  // reserve spans N+4, which is smaller for every N >= 2). The rotation
  // must never map two of those onto one slot, so nslots = 2N+3: at the
  // paper's N = 2 that is 7.
  const std::uint32_t nslots = 2 * depth + 3;
  for (int cb = kCbIn0; cb <= kCbIn3; ++cb) {
    prog.create_cb(cb, cores, kTileBytes, depth);
  }
  prog.create_cb(kCbScalar, cores, kTileBytes, 1);
  prog.create_cb(kCbInter, cores, kTileBytes, 2);
  prog.create_cb(kCbOut, cores, kTileBytes, 4);
  if (sh->residual_addr != 0) prog.create_cb(kCbRes, cores, 32, 1);

  // nslots-deep local row buffer, sized for the widest chunk any core uses.
  std::uint32_t max_chunk = 16;
  for (const auto& rg : sh->ranges) {
    max_chunk = std::max(max_chunk, std::min(sh->chunk_elems, rg.col_hi - rg.col_lo));
  }
  const std::uint32_t sbytes = slot_bytes(max_chunk);
  const auto slots = prog.create_l1_buffer(cores, nslots * sbytes);
  const std::uint32_t slots_addr = prog.l1_buffer_address(slots);
  prog.create_global_barrier(sh->barrier_id, 2 * ncores);

  // ---------------- reading data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, slots_addr, sbytes, depth, nslots](ttmetal::DataMoverCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;

        fill_scalar_page(ctx, kCbScalar, 0.25f);

        for (int it = 0; it < sh->iterations; ++it) {
          const std::uint64_t src = (it % 2 == 0) ? sh->d1 : sh->d2;
          for (std::uint32_t col = 0; col < grid.ncols; ++col) {
            const std::int64_t c0 = grid.rg.col_lo + static_cast<std::int64_t>(col) *
                                                         grid.chunk;
            const std::uint32_t off =
                static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
            const std::uint32_t read_bytes = (grid.chunk + 2) * 2 + off;
            // Reads are tagged with their slot so a batch can wait for the
            // one row it still needs without draining the deeper
            // read-ahead. A tag is safely reusable by the time its slot is:
            // row y's read is waited at batch y-1, long before row
            // y + nslots is issued (at batch >= y + depth + 1).
            auto issue_row = [&](std::int64_t y) {
              const std::uint64_t addr = src + L.byte_offset(y, c0 - 1) - off;
              const std::uint32_t slot = grid.slot_of(col, y);
              ctx.noc_async_read(ctx.get_noc_addr(addr),
                                 slots_addr + slot * sbytes, read_bytes,
                                 static_cast<int>(slot));
            };

            const std::int64_t r0 = grid.rg.row_lo;
            const std::int64_t r1 = grid.rg.row_hi;
            // Column boundary: the continuous rotation (slot_of) places the
            // prologue rows in the slots after the previous column's tail,
            // and nslots = 2*depth+3 keeps every row issued here clear of
            // every slot that column's unpopped batches may still reference
            // — no drain or timing assumption needed at any depth. (Across
            // iterations the rendezvous below orders everything: the writer
            // only reaches the barrier after consuming output the compute
            // kernel produced from its last reads.)
            // Prologue: rows r0-1, r0, r0+1 (clamped to the strip's halo).
            std::int64_t issued_hi = std::min<std::int64_t>(r0 + 1, r1);
            for (std::int64_t y = r0 - 1; y <= issued_hi; ++y) issue_row(y);
            for (std::int64_t j = r0; j < r1; ++j) {
              // Flow control: a free page means the compute kernel has
              // popped batch j-N, so the slot row issued_hi+1 rotates into
              // (row j-N-1's) is reusable.
              for (int cb = kCbIn0; cb <= kCbIn3; ++cb) ctx.cb_reserve_back(cb, 1);
              // "Synchronise memory reads immediately": batch j needs rows
              // j-1, j, j+1; the first two were waited by earlier batches,
              // so wait on row j+1's tag (the prologue's untracked set on
              // the first batch).
              if (j == r0) {
                ctx.noc_async_read_barrier();
              } else {
                ctx.noc_async_read_barrier(
                    static_cast<int>(grid.slot_of(col, j + 1)));
              }
              // ...and issue non-blocking reads up to N batches ahead.
              while (issued_hi < std::min<std::int64_t>(j + depth, r1)) {
                issue_row(++issued_hi);
              }
              for (int cb = kCbIn0; cb <= kCbIn3; ++cb) ctx.cb_push_back(cb, 1);
              ctx.loop_tick();
            }
          }
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "jacobi_rowchunk_reader");

  // ---------------- compute cores ----------------
  prog.create_kernel(
      cores,
      [sh, slots_addr, sbytes, nslots](ttmetal::ComputeCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        constexpr int dst0 = 0;
        constexpr int dst1 = 1;
        ctx.binary_op_init_common(kCbIn0, kCbIn1);
        ctx.add_tiles_init(kCbIn0, kCbIn1);
        bfloat16_t residual{0.0f};
        for (int it = 0; it < sh->iterations; ++it) {
          const bool track = sh->residual_addr != 0 && it == sh->iterations - 1;
          for (std::uint32_t col = 0; col < grid.ncols; ++col) {
            const std::int64_t c0 = grid.rg.col_lo + static_cast<std::int64_t>(col) *
                                                         grid.chunk;
            const std::uint32_t off =
                static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
            // A redirected tile covers only the chunk's elements, not a full
            // 2 KiB page — declare that so tooling reasoning about the FPU's
            // fetch window stays within this batch's slots.
            const std::uint32_t valid = grid.chunk * 2;
            for (std::int64_t j = grid.rg.row_lo; j < grid.rg.row_hi; ++j) {
              const std::uint32_t sj =
                  slots_addr + grid.slot_of(col, j) * sbytes + off;
              const std::uint32_t sup =
                  slots_addr + grid.slot_of(col, j - 1) * sbytes + off;
              const std::uint32_t sdn =
                  slots_addr + grid.slot_of(col, j + 1) * sbytes + off;

              ctx.cb_wait_front(kCbIn0, 1);
              ctx.cb_wait_front(kCbIn1, 1);
              ctx.cb_set_rd_ptr(kCbIn0, sj, valid);      // x-1
              ctx.cb_set_rd_ptr(kCbIn1, sj + 4, valid);  // x+1
              ctx.add_tiles(kCbIn0, kCbIn1, 0, 0, dst0);
              ctx.cb_pop_front(kCbIn1, 1);
              ctx.cb_pop_front(kCbIn0, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);

              ctx.cb_wait_front(kCbIn2, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.cb_set_rd_ptr(kCbIn2, sup + 2, valid);  // y-1
              ctx.add_tiles(kCbIn2, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);
              ctx.cb_pop_front(kCbIn2, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);

              ctx.cb_wait_front(kCbIn3, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.cb_set_rd_ptr(kCbIn3, sdn + 2, valid);  // y+1
              ctx.add_tiles(kCbIn3, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);
              ctx.cb_pop_front(kCbIn3, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);

              ctx.cb_wait_front(kCbScalar, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.mul_tiles(kCbScalar, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);

              ctx.cb_reserve_back(kCbOut, 1);
              ctx.pack_tile(dst0, kCbOut);
              if (track) {
                // Device-side residual: |unew - u| over this chunk, reduced
                // on the FPU. Alias the freshly packed page as an input and
                // the source slot's centre row as the old value.
                ctx.cb_set_rd_ptr(kCbOut, ctx.get_write_ptr(kCbOut), valid);
                ctx.cb_set_rd_ptr(kCbInter, sj + 2, valid);
                ctx.sub_tiles(kCbOut, kCbInter, 0, 0, dst1);
                ctx.cb_clear_rd_ptr(kCbOut);
                ctx.cb_clear_rd_ptr(kCbInter);
                ctx.abs_tile(dst1);
                const bfloat16_t m = ctx.reduce_max(dst1);
                if (static_cast<float>(m) > static_cast<float>(residual)) residual = m;
              }
              ctx.cb_push_back(kCbOut, 1);
              ctx.loop_tick();
            }
            (void)L;
          }
        }
        if (sh->residual_addr != 0) {
          ctx.cb_reserve_back(kCbRes, 1);
          auto* page = reinterpret_cast<bfloat16_t*>(
              ctx.l1_ptr(ctx.get_write_ptr(kCbRes)));
          page[0] = residual;
          ctx.cb_push_back(kCbRes, 1);
        }
      },
      "jacobi_rowchunk_compute");

  // ---------------- writing data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh, nslots](ttmetal::DataMoverCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        for (int it = 0; it < sh->iterations; ++it) {
          const std::uint64_t dst = (it % 2 == 0) ? sh->d2 : sh->d1;
          for (std::uint32_t col = 0; col < grid.ncols; ++col) {
            const std::int64_t c0 = grid.rg.col_lo + static_cast<std::int64_t>(col) *
                                                         grid.chunk;
            for (std::int64_t j = grid.rg.row_lo; j < grid.rg.row_hi; ++j) {
              ctx.cb_wait_front(kCbOut, 1);
              ctx.noc_async_write(ctx.get_read_ptr(kCbOut),
                                  ctx.get_noc_addr(dst + L.byte_offset(j, c0)),
                                  grid.chunk * 2);
              ctx.noc_async_write_barrier();
              ctx.cb_pop_front(kCbOut, 1);
              ctx.loop_tick();
            }
          }
          ctx.global_barrier(sh->barrier_id);
        }
        if (sh->residual_addr != 0) {
          // One BF16 residual per core, each in its own aligned 32-byte slot.
          ctx.cb_wait_front(kCbRes, 1);
          ctx.noc_async_write(
              ctx.get_read_ptr(kCbRes),
              ctx.get_noc_addr(sh->residual_addr +
                               static_cast<std::uint64_t>(ctx.position()) * 32),
              2);
          ctx.noc_async_write_barrier();
          ctx.cb_pop_front(kCbRes, 1);
        }
      },
      "jacobi_rowchunk_writer");
}

}  // namespace ttsim::core::detail
