/// \file jacobi_temporal.cpp
/// Temporal tiling (kTemporal): chain k iterations through SRAM per DRAM
/// pass. The paper's own attribution names DRAM bank queueing as the wall
/// (Table VII: 0.92 utilization with two cores), yet every row-chunk sweep
/// round-trips the grid through DRAM. Temporal tiling batches k
/// "generations" per pass through fast memory, the StencilStream /
/// Wormhole-stencil recipe adapted to Grayskull's explicit L1.
///
/// Shape of one pass (per core, strip rows [r0, r1), block rows B):
///   * The reading mover fetches block rows plus a k-deep halo *skirt*
///     from the epoch's source grid into an L1 slab — the only DRAM reads
///     of the whole epoch.
///   * The compute kernel runs k trapezoidal sub-iterations entirely out
///     of L1, ping-ponging between two slabs. Sub-step s computes rows
///     [b0 - (k-s)*v, b1 + (k-s)*v) (clamped to the domain), where v is the
///     stencil's vertical reach: the valid interior shrinks by v rows per
///     step. Rows outside the block are computed *redundantly* (they
///     overlap the neighbouring block's trapezoid) — the skirt recompute
///     replaces the per-sub-iteration halo exchange of the SRAM-resident
///     solver, so no inter-core traffic or synchronisation happens inside
///     an epoch at all.
///   * The writing mover stores only generation k of rows [b0, b1) — the
///     only DRAM writes of the epoch.
/// DRAM traffic per iteration drops from 2 rows/row (read + write) to
/// ~(2B + 2k)/(kB) rows/row. A device-wide barrier between epochs gives
/// the writes-before-next-reads edge; inside an epoch the three kernels
/// hand one block around a per-core semaphore ring.
///
/// Slab rows use the jacobi_sram layout ([32 B prefix][L][W interior][R]
/// [tile-spill pad]) and the compute chain replays the row-chunk /
/// SRAM-resident op order exactly, so results are bit-exact with k
/// sequential depth-1 sweeps (and with the CPU reference).

#include <algorithm>
#include <cstring>

#include "stencil_internal.hpp"

namespace ttsim::core::detail {
namespace {

// Per-core semaphore ring: one block in flight at a time.
constexpr int kSemLoaded = 0;    // dm0 -> compute: slabs loaded and patched
constexpr int kSemComputed = 1;  // compute -> dm1: final generation packed
constexpr int kSemFree = 2;      // dm1 -> dm0: slab reusable (initial 1)

/// L1 slab budget per core: the e150's 1 MiB minus a reserve for the CBs,
/// the weight table and program scratch.
constexpr std::uint32_t kSlabBudget = (1u << 20) - 96 * 1024;

struct TemporalField {
  std::uint64_t fin = 0;     ///< DRAM buffer holding the field's final state
  std::uint64_t oth = 0;     ///< parity partner; 0 for read-only fields
  std::uint32_t slab_a = 0;  ///< load target / odd-step source
  std::uint32_t slab_b = 0;  ///< odd-step destination; 0 unless written
  bool written = false;
  bool streamed = false;     ///< referenced by the pass (needs a slab)
};

struct TemporalShared {
  PaddedLayout layout;
  int iterations = 0;
  int depth = 1;  ///< k: iterations chained per DRAM pass
  std::uint32_t chunk = 1024;
  std::uint32_t row_data_elems = 0;  // W + 2 (L, interior, R)
  std::uint32_t row_stride = 0;      // bytes per slab row incl. prefix+pad
  std::uint32_t off = 0;             // data offset inside a row (alignment)
  std::uint32_t nsr = 0;             // slab capacity in rows
  std::uint32_t block_rows = 0;      // B: final-generation rows per block
  int v = 1;      ///< written-field vertical reach: trapezoid shrink per step
  int reach = 1;  ///< max vertical reach over all taps: skirt load extent
  std::vector<TemporalField> fields;
  int wf = 0;  ///< index of the written field
  std::vector<CoreRange> ranges;  // cores_x == 1: one strip per core
  std::vector<int> core_ids;
  int barrier_id = kIterationBarrier;
  bool classic = true;         ///< replicate the Jacobi op chain verbatim
  LoweredPass pass;            // general path only
  std::vector<float> weights;  // general path only

  explicit TemporalShared(const PaddedLayout& l) : layout(l) {}

  int epochs() const { return (iterations + depth - 1) / depth; }
  /// Chained depth of epoch `e` (the last epoch may be partial).
  int depth_of(int e) const { return std::min(depth, iterations - e * depth); }

  /// Written-field grids of epoch `e`, anchored at the end so the LAST
  /// epoch lands in the canonical final buffer (iterations odd ? d2 : d1 —
  /// the parity the driver and the serving readback already assume). Epoch
  /// 0 may source either grid: both are staged with the initial image.
  std::uint64_t dst_grid(int e) const {
    return (epochs() - 1 - e) % 2 == 0 ? fields[static_cast<std::size_t>(wf)].fin
                                       : fields[static_cast<std::size_t>(wf)].oth;
  }
  std::uint64_t src_grid(int e) const {
    const auto& f = fields[static_cast<std::size_t>(wf)];
    return dst_grid(e) == f.fin ? f.oth : f.fin;
  }

  std::uint32_t row_data(std::uint32_t slab, std::uint32_t lr) const {
    return slab + lr * row_stride + off;
  }
  /// Source slab of field `f` during sub-step `s` (1-based): the written
  /// field ping-pongs a -> b -> a -> ..., read-only fields sit in one slab.
  std::uint32_t src_slab(int f, int s) const {
    const auto& tf = fields[static_cast<std::size_t>(f)];
    if (!tf.written) return tf.slab_a;
    return s % 2 == 1 ? tf.slab_a : tf.slab_b;
  }
  /// Destination slab of sub-step `s` (1-based).
  std::uint32_t dst_slab(int s) const {
    const auto& tf = fields[static_cast<std::size_t>(wf)];
    return s % 2 == 1 ? tf.slab_b : tf.slab_a;
  }

  /// One block's geometry. Sub-step s of `de` computes rows
  /// [step_lo(s), step_hi(s)); the slabs hold rows [glo, ghi) — possibly
  /// including the BC rows -1 / H — at local row gr - glo.
  struct Block {
    std::int64_t b0 = 0, b1 = 0;   // final-generation rows
    std::int64_t glo = 0, ghi = 0; // loaded row span
    int de = 1;
  };
  Block block(std::int64_t b0, std::int64_t b1, int de) const {
    Block bk;
    bk.b0 = b0;
    bk.b1 = b1;
    bk.de = de;
    const auto H = static_cast<std::int64_t>(layout.height());
    const std::int64_t lo1 = std::max<std::int64_t>(b0 - (de - 1) * v, 0);
    const std::int64_t hi1 = std::min<std::int64_t>(b1 + (de - 1) * v, H);
    bk.glo = std::max<std::int64_t>(lo1 - reach, -1);
    bk.ghi = std::min<std::int64_t>(hi1 - 1 + reach, H) + 1;
    return bk;
  }
  std::int64_t step_lo(const Block& bk, int s) const {
    return std::max<std::int64_t>(bk.b0 - static_cast<std::int64_t>(bk.de - s) * v, 0);
  }
  std::int64_t step_hi(const Block& bk, int s) const {
    return std::min<std::int64_t>(bk.b1 + static_cast<std::int64_t>(bk.de - s) * v,
                                  static_cast<std::int64_t>(layout.height()));
  }
};

/// The exact SRAM-resident Jacobi chain — ((xm + xp) + ym + yp) * 0.25,
/// every intermediate through the kCbInter accumulator — so temporal
/// results replay the other strategies bit for bit.
void emit_classic_point(ttmetal::ComputeCtx& ctx, const TemporalShared& sh,
                        std::uint32_t src, std::uint32_t dst, std::uint32_t lr,
                        std::uint32_t c0) {
  constexpr int dst0 = 0;
  const std::uint32_t row_c = sh.row_data(src, lr) + c0 * 2;
  const std::uint32_t row_n = sh.row_data(src, lr - 1) + c0 * 2;
  const std::uint32_t row_s = sh.row_data(src, lr + 1) + c0 * 2;
  ctx.cb_set_rd_ptr(kCbOut, row_c);  // reuse out cb as xm vehicle
  ctx.cb_reserve_back(kCbInter, 1);
  ctx.cb_push_back(kCbInter, 1);
  ctx.cb_set_rd_ptr(kCbInter, row_c + 4);  // xp
  ctx.add_tiles(kCbOut, kCbInter, 0, 0, dst0);
  ctx.cb_pop_front(kCbInter, 1);

  ctx.cb_reserve_back(kCbInter, 1);
  ctx.pack_tile(dst0, kCbInter);
  ctx.cb_push_back(kCbInter, 1);
  ctx.cb_set_rd_ptr(kCbOut, row_n + 2);  // ym
  ctx.cb_wait_front(kCbInter, 1);
  ctx.add_tiles(kCbOut, kCbInter, 0, 0, dst0);
  ctx.cb_pop_front(kCbInter, 1);

  ctx.cb_reserve_back(kCbInter, 1);
  ctx.pack_tile(dst0, kCbInter);
  ctx.cb_push_back(kCbInter, 1);
  ctx.cb_set_rd_ptr(kCbOut, row_s + 2);  // yp
  ctx.cb_wait_front(kCbInter, 1);
  ctx.add_tiles(kCbOut, kCbInter, 0, 0, dst0);
  ctx.cb_pop_front(kCbInter, 1);

  ctx.cb_reserve_back(kCbInter, 1);
  ctx.pack_tile(dst0, kCbInter);
  ctx.cb_push_back(kCbInter, 1);
  ctx.cb_wait_front(kCbScalar, 1);
  ctx.cb_wait_front(kCbInter, 1);
  ctx.mul_tiles(kCbScalar, kCbInter, 0, 0, dst0);
  ctx.cb_pop_front(kCbInter, 1);

  // Interior col c0 = data elem c0+1; the pack's unused lanes spill past
  // the interior (clobbering R when W < 1024 — restored between steps).
  ctx.cb_set_wr_ptr(kCbOut, sh.row_data(dst, lr) + (c0 + 1) * 2);
  ctx.pack_tile(dst0, kCbOut);
}

void build_temporal_kernels(ttmetal::Program& prog,
                            std::shared_ptr<TemporalShared> sh) {
  const std::uint32_t W = sh->layout.width();
  // Chunks are full width (or 1024 on wider multiples) so the tile-pack
  // spill stays inside the row's pad. A pack stores a full 1024-lane tile,
  // so a chunk narrower than the row would spill into the *next* slab
  // row's L column — poison that later sub-steps' dc=-1 taps would read.
  // cfg.chunk_elems is deliberately not honoured here (as in the general
  // SRAM lowering); the per-element op chain is chunk-independent, so this
  // never affects results.
  const std::uint32_t chunk = std::min<std::uint32_t>(1024, W);
  TTSIM_CHECK_MSG(W % chunk == 0,
                  "temporal domains must be <= 1024 wide or a multiple of 1024");
  sh->chunk = chunk;
  sh->row_data_elems = W + 2;
  // Room for the alignment prefix and the FPU tile spill past the interior.
  const std::uint32_t data_span = std::max<std::uint32_t>(W + 2, 1026) * 2;
  sh->row_stride = static_cast<std::uint32_t>(align_up(32 + data_span, 32));
  sh->off = static_cast<std::uint32_t>(sh->layout.byte_offset(0, -1) % 32);

  // Block sizing against the slab budget: the written field needs two
  // ping-pong slabs, each referenced read-only field one, each sized
  // B + 2*((k-1)*v + reach) rows.
  int nslabs = 0;
  for (const auto& f : sh->fields) {
    if (f.streamed || f.written) nslabs += f.written ? 2 : 1;
  }
  TTSIM_CHECK(nslabs >= 2);
  const std::uint32_t fixed = 2 * static_cast<std::uint32_t>(
      (sh->depth - 1) * sh->v + sh->reach);
  const std::int64_t rows_budget =
      static_cast<std::int64_t>(kSlabBudget / sh->row_stride) / nslabs -
      static_cast<std::int64_t>(fixed);
  const std::int64_t B =
      std::min<std::int64_t>(rows_budget, sh->layout.height());
  if (B < 1) {
    TTSIM_THROW_API("temporal depth " << sh->depth << " on a " << W
                    << "-wide domain leaves no room for a row block in the "
                    "1 MiB L1 (" << nslabs << " slabs of "
                    << fixed << "+ skirt rows); lower the depth");
  }
  sh->block_rows = static_cast<std::uint32_t>(B);
  sh->nsr = sh->block_rows + fixed;

  const int ncores = static_cast<int>(sh->ranges.size());
  const std::vector<int>& cores = sh->core_ids;
  TTSIM_CHECK(static_cast<int>(cores.size()) == ncores);

  // CBs. Classic runs the Jacobi scalar/inter/out trio; the general path
  // mirrors the SRAM-resident lowering (alias CBs are never pushed).
  std::uint32_t wtab = 0;
  bool needs_inter = false;
  bool needs_post = false;
  if (sh->classic) {
    prog.create_cb(kCbScalar, cores, kTileBytes, 1);
    prog.create_cb(kCbInter, cores, kTileBytes, 2);
    prog.create_cb(kCbOut, cores, kTileBytes, 1);
  } else {
    for (std::size_t f = 0; f < sh->fields.size(); ++f) {
      if (sh->fields[f].streamed) {
        prog.create_cb(kCbFieldBase + static_cast<int>(f), cores, kTileBytes, 1);
      }
    }
    prog.create_cb(kCbWgt, cores, kTileBytes, 1);
    needs_inter = sh->pass.terms.size() > 1;
    needs_post = sh->pass.post != PostOp::kNone;
    if (needs_inter) prog.create_cb(kCbGInter, cores, kTileBytes, 2);
    if (needs_inter || needs_post) prog.create_cb(kCbGTmp, cores, kTileBytes, 2);
    if (needs_post) prog.create_cb(kCbGTmp2, cores, kTileBytes, 2);
    prog.create_cb(kCbGOut, cores, kTileBytes, 1);
    wtab = prog.l1_buffer_address(prog.create_l1_buffer(
        cores, static_cast<std::uint32_t>(sh->weights.size()) * kTileBytes));
  }

  const std::uint32_t slab_bytes = sh->nsr * sh->row_stride;
  for (auto& f : sh->fields) {
    if (!(f.streamed || f.written)) continue;
    f.slab_a = prog.l1_buffer_address(prog.create_l1_buffer(cores, slab_bytes));
    if (f.written) {
      f.slab_b = prog.l1_buffer_address(prog.create_l1_buffer(cores, slab_bytes));
    }
  }

  prog.create_semaphore(kSemLoaded, cores, 0);
  prog.create_semaphore(kSemComputed, cores, 0);
  prog.create_semaphore(kSemFree, cores, 1);
  // Epoch barrier: every core's dm0 and dm1 arrive once per epoch, so no
  // core reads epoch e+1's source skirt (which overlaps *other* cores'
  // strips) before every core's epoch-e writes drained to DRAM. Compute
  // is downstream of dm0 via kSemLoaded and need not participate.
  prog.create_global_barrier(sh->barrier_id, 2 * ncores);

  const int E = sh->epochs();

  // ---------------- reading data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, E](ttmetal::DataMoverCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t read_bytes = sh->row_data_elems * 2 + sh->off;
        const auto H = static_cast<std::int64_t>(sh->layout.height());
        const std::uint32_t width = sh->layout.width();
        const auto& wfld = sh->fields[static_cast<std::size_t>(sh->wf)];
        for (int e = 0; e < E; ++e) {
          const int de = sh->depth_of(e);
          const std::uint64_t wsrc = sh->src_grid(e);
          for (std::int64_t b0 = rg.row_lo; b0 < rg.row_hi;
               b0 += sh->block_rows) {
            const auto bk = sh->block(
                b0, std::min<std::int64_t>(b0 + sh->block_rows, rg.row_hi), de);
            ctx.semaphore_wait(kSemFree);
            for (std::size_t f = 0; f < sh->fields.size(); ++f) {
              const auto& tf = sh->fields[f];
              if (!(tf.streamed || tf.written)) continue;
              // Read-only fields never flip parity: always read d1.
              const std::uint64_t src = tf.written ? wsrc : tf.fin;
              for (std::int64_t gr = bk.glo; gr < bk.ghi; ++gr) {
                const auto lr = static_cast<std::uint32_t>(gr - bk.glo);
                const std::uint64_t addr = src + sh->layout.byte_offset(gr, -1);
                ctx.noc_async_read(ctx.get_noc_addr(addr - sh->off),
                                   sh->row_data(tf.slab_a, lr) - sh->off,
                                   read_bytes);
              }
            }
            ctx.noc_async_read_barrier();
            // Patch the ping-pong partner: packs write interior elements
            // only, so before sub-step 2 reads slab_b its L/R boundary
            // columns — and whole BC rows where the skirt hits the domain
            // edge — must carry the same values the loads put in slab_a.
            if (de >= 2) {
              for (std::int64_t gr = bk.glo; gr < bk.ghi; ++gr) {
                const auto lr = static_cast<std::uint32_t>(gr - bk.glo);
                const std::uint32_t ra = sh->row_data(wfld.slab_a, lr);
                const std::uint32_t rb = sh->row_data(wfld.slab_b, lr);
                if (gr == -1 || gr == H) {
                  ctx.l1_memcpy(rb, ra, sh->row_data_elems * 2);
                } else {
                  std::uint16_t bits = 0;
                  std::memcpy(&bits, ctx.l1_ptr(ra), 2);
                  ctx.l1_store_u16(rb, bits);
                  std::memcpy(&bits, ctx.l1_ptr(ra + (width + 1) * 2), 2);
                  ctx.l1_store_u16(rb + (width + 1) * 2, bits);
                }
              }
            }
            ctx.semaphore_post(kSemLoaded);
            ctx.loop_tick();
          }
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "temporal_reader");

  // ---------------- compute ----------------
  prog.create_kernel(
      cores,
      [sh, wtab, E](ttmetal::ComputeCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t width = sh->layout.width();
        const auto& wfld = sh->fields[static_cast<std::size_t>(sh->wf)];
        if (sh->classic) {
          fill_scalar_page(ctx, kCbScalar, 0.25f);
        } else {
          ctx.binary_op_init_common(kCbWgt, kCbFieldBase);
          fill_weight_table(ctx, wtab, sh->weights);
        }
        std::vector<TapAddr> taps;
        for (int e = 0; e < E; ++e) {
          const int de = sh->depth_of(e);
          for (std::int64_t b0 = rg.row_lo; b0 < rg.row_hi;
               b0 += sh->block_rows) {
            const auto bk = sh->block(
                b0, std::min<std::int64_t>(b0 + sh->block_rows, rg.row_hi), de);
            ctx.semaphore_wait(kSemLoaded);
            // Right-boundary bits for the between-step restores: any
            // interior row of the freshly loaded slab carries them.
            std::uint16_t r_bits = 0;
            if (width < 1024) {
              const auto lr0 = static_cast<std::uint32_t>(
                  std::max<std::int64_t>(bk.glo, 0) - bk.glo);
              std::memcpy(&r_bits,
                          ctx.l1_ptr(sh->row_data(wfld.slab_a, lr0) +
                                     (width + 1) * 2),
                          2);
            }
            for (int s = 1; s <= de; ++s) {
              const std::uint32_t dst = sh->dst_slab(s);
              const std::int64_t lo = sh->step_lo(bk, s);
              const std::int64_t hi = sh->step_hi(bk, s);
              for (std::int64_t gr = lo; gr < hi; ++gr) {
                const auto lr = static_cast<std::uint32_t>(gr - bk.glo);
                for (std::uint32_t c0 = 0; c0 < width; c0 += sh->chunk) {
                  if (sh->classic) {
                    emit_classic_point(ctx, *sh, sh->src_slab(sh->wf, s), dst,
                                       lr, c0);
                  } else {
                    const std::uint32_t valid = sh->chunk * 2;
                    // Tap alias: field f's row gr+dr, elem c0+1+dc (elem 0
                    // is the L boundary column).
                    auto tap_at = [&](int f, int dr, int dc) {
                      const auto lrt = static_cast<std::uint32_t>(
                          gr + dr - bk.glo);
                      return sh->row_data(sh->src_slab(f, s), lrt) +
                             static_cast<std::uint32_t>(
                                 static_cast<std::int64_t>(c0) * 2 + 2 +
                                 2 * dc);
                    };
                    taps.clear();
                    for (const auto& t : sh->pass.terms) {
                      taps.push_back(TapAddr{kCbFieldBase + t.field,
                                             tap_at(t.field, t.dr, t.dc),
                                             valid, t.widx});
                    }
                    const TapAddr self{kCbFieldBase + sh->pass.self_field,
                                       tap_at(sh->pass.self_field, 0, 0),
                                       valid, 0};
                    emit_tap_chain(ctx, wtab, taps, sh->pass.post, self,
                                   [&](int reg) {
                                     ctx.cb_set_wr_ptr(
                                         kCbGOut,
                                         sh->row_data(dst, lr) + (c0 + 1) * 2);
                                     ctx.pack_tile(reg, kCbGOut);
                                   });
                  }
                  ctx.loop_tick();
                }
              }
              // The last chunk's pack spilled past the interior when
              // W < 1024: restore R on every computed row before the next
              // sub-step's taps read it. Host-side stores through l1_ptr —
              // free on the simulated clock, like fill_weight_table.
              if (s < de && width < 1024) {
                for (std::int64_t gr = lo; gr < hi; ++gr) {
                  const auto lr = static_cast<std::uint32_t>(gr - bk.glo);
                  std::memcpy(
                      ctx.l1_ptr(sh->row_data(dst, lr) + (width + 1) * 2),
                      &r_bits, 2);
                }
              }
            }
            ctx.semaphore_post(kSemComputed);
          }
        }
      },
      "temporal_compute");

  // ---------------- writing data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh, E](ttmetal::DataMoverCtx& ctx) {
        const int pos = ctx.position();
        const CoreRange rg = sh->ranges[static_cast<std::size_t>(pos)];
        const std::uint32_t width = sh->layout.width();
        for (int e = 0; e < E; ++e) {
          const int de = sh->depth_of(e);
          const std::uint64_t dst_dram = sh->dst_grid(e);
          const std::uint32_t out_slab = sh->dst_slab(de);
          for (std::int64_t b0 = rg.row_lo; b0 < rg.row_hi;
               b0 += sh->block_rows) {
            const auto bk = sh->block(
                b0, std::min<std::int64_t>(b0 + sh->block_rows, rg.row_hi), de);
            ctx.semaphore_wait(kSemComputed);
            for (std::int64_t gr = bk.b0; gr < bk.b1; ++gr) {
              const auto lr = static_cast<std::uint32_t>(gr - bk.glo);
              ctx.noc_async_write(
                  sh->row_data(out_slab, lr) + 2,
                  ctx.get_noc_addr(dst_dram + sh->layout.byte_offset(gr, 0)),
                  width * 2);
            }
            // Write data is captured at issue, so the slab may be reused
            // immediately; DRAM visibility is settled by the epoch barrier.
            ctx.semaphore_post(kSemFree);
            ctx.loop_tick();
          }
          ctx.noc_async_write_barrier();
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "temporal_writer");
}

}  // namespace

void build_temporal_program(ttmetal::Program& prog,
                            std::shared_ptr<KernelShared> base) {
  TTSIM_CHECK_MSG(base->temporal_depth >= 1 && base->temporal_depth <= 8,
                  "temporal_depth must be in [1, 8]");
  auto sh = std::make_shared<TemporalShared>(base->layout);
  sh->iterations = base->iterations;
  sh->depth = base->temporal_depth;
  sh->ranges = base->ranges;
  sh->core_ids = base->workers();
  sh->barrier_id = base->barrier_id;
  sh->classic = true;
  sh->v = 1;
  sh->reach = 1;
  TemporalField f;
  f.fin = base->iterations % 2 == 1 ? base->d2 : base->d1;
  f.oth = base->iterations % 2 == 1 ? base->d1 : base->d2;
  f.written = true;
  f.streamed = true;
  sh->fields = {f};
  sh->wf = 0;
  build_temporal_kernels(prog, sh);
}

void build_general_temporal_group(ttmetal::Program& prog,
                                  std::shared_ptr<GeneralShared> base) {
  TTSIM_CHECK_MSG(base->passes.size() == 1,
                  "temporal tiling chains single-pass programs");
  TTSIM_CHECK_MSG(base->temporal_depth >= 1 && base->temporal_depth <= 8,
                  "temporal_depth must be in [1, 8]");
  auto sh = std::make_shared<TemporalShared>(base->layout);
  sh->iterations = base->iterations;
  sh->depth = base->temporal_depth;
  sh->ranges = base->ranges;
  sh->core_ids = base->workers();
  sh->barrier_id = base->barrier_id;
  sh->classic = false;
  sh->pass = base->passes[0];
  sh->weights = base->weights;
  sh->wf = sh->pass.target;

  const int nfields = base->nfields();
  sh->fields.resize(static_cast<std::size_t>(nfields));
  for (int f = 0; f < nfields; ++f) {
    auto& tf = sh->fields[static_cast<std::size_t>(f)];
    if (f == sh->wf) {
      tf.written = true;
      tf.fin = base->final_of(f);
      tf.oth = tf.fin == base->d1[static_cast<std::size_t>(f)]
                   ? base->d2[static_cast<std::size_t>(f)]
                   : base->d1[static_cast<std::size_t>(f)];
    } else {
      tf.fin = base->d1[static_cast<std::size_t>(f)];
    }
  }
  for (const auto& pf : sh->pass.reads) {
    sh->fields[static_cast<std::size_t>(pf.field)].streamed = true;
  }
  sh->fields[static_cast<std::size_t>(sh->wf)].streamed = true;

  // Trapezoid shrink v: the written field's vertical reach (only its rows
  // age between sub-steps). Skirt reach: the widest vertical tap of any
  // field, so one load extent serves every slab.
  int v = 0;
  int reach = 0;
  for (const auto& t : sh->pass.terms) {
    const int adr = t.dr < 0 ? -t.dr : t.dr;
    if (t.field == sh->wf) v = std::max(v, adr);
    reach = std::max(reach, adr);
  }
  sh->v = v;
  sh->reach = std::max(reach, v);
  build_temporal_kernels(prog, sh);
}

}  // namespace ttsim::core::detail
