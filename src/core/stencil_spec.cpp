/// \file stencil_spec.cpp
/// Structural validation, canonical hashing and the 5-point lift for the
/// general radius-1 stencil frontend.

#include <cstring>

#include "ttsim/core/stencil_spec.hpp"

namespace ttsim::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

std::uint64_t float_bits(float f) {
  std::uint32_t b = 0;
  std::memcpy(&b, &f, sizeof(b));
  return b;
}

}  // namespace

const char* to_string(Tap t) {
  switch (t) {
    case Tap::kC: return "C";
    case Tap::kW: return "W";
    case Tap::kE: return "E";
    case Tap::kN: return "N";
    case Tap::kS: return "S";
    case Tap::kNW: return "NW";
    case Tap::kNE: return "NE";
    case Tap::kSW: return "SW";
    case Tap::kSE: return "SE";
  }
  return "?";
}

void GeneralStencilProblem::validate() const {
  if (fields.empty()) TTSIM_THROW_API("stencil program has no fields");
  if (fields.size() > 4) {
    TTSIM_THROW_API("stencil program has " << fields.size()
                                           << " fields; at most 4 supported");
  }
  if (passes.empty()) TTSIM_THROW_API("stencil program has no passes");
  if (iterations < 1) TTSIM_THROW_API("need at least one iteration");
  const int nf = static_cast<int>(fields.size());
  std::vector<bool> written(fields.size(), false);
  std::vector<bool> used(fields.size(), false);
  for (const auto& pass : passes) {
    if (pass.target < 0 || pass.target >= nf) {
      TTSIM_THROW_API("pass targets field " << pass.target << " of " << nf);
    }
    if (written[static_cast<std::size_t>(pass.target)]) {
      TTSIM_THROW_API("field " << pass.target
                               << " is targeted by more than one pass");
    }
    written[static_cast<std::size_t>(pass.target)] = true;
    used[static_cast<std::size_t>(pass.target)] = true;
    if (pass.terms.empty()) TTSIM_THROW_API("pass has no non-zero tap terms");
    for (const auto& term : pass.terms) {
      if (term.field < 0 || term.field >= nf) {
        TTSIM_THROW_API("tap term reads field " << term.field << " of " << nf);
      }
      if (static_cast<int>(term.tap) >= kNumTaps) {
        TTSIM_THROW_API("tap term uses tap " << static_cast<int>(term.tap));
      }
      used[static_cast<std::size_t>(term.field)] = true;
    }
    if (pass.post == PostOp::kLife) {
      if (pass.post_self_field < 0 || pass.post_self_field >= nf) {
        TTSIM_THROW_API("life post-op reads field " << pass.post_self_field
                                                    << " of " << nf);
      }
      used[static_cast<std::size_t>(pass.post_self_field)] = true;
    }
  }
  for (std::size_t f = 0; f < fields.size(); ++f) {
    if (!used[f]) {
      TTSIM_THROW_API("field " << f << " (" << fields[f].name
                               << ") is neither written nor read");
    }
    TTSIM_CHECK_MSG(
        fields[f].initial_field.empty() || fields[f].initial_field.size() == points(),
        "field " << f << " (" << fields[f].name
                 << ") initial_field must be width*height values");
  }
}

std::uint64_t GeneralStencilProblem::transition_hash() const {
  std::uint64_t h = kFnvOffset;
  fnv(h, fields.size());
  fnv(h, passes.size());
  for (const auto& pass : passes) {
    fnv(h, static_cast<std::uint64_t>(pass.target));
    fnv(h, static_cast<std::uint64_t>(pass.post));
    fnv(h, static_cast<std::uint64_t>(pass.post_self_field));
    fnv(h, pass.terms.size());
    for (const auto& term : pass.terms) {
      fnv(h, static_cast<std::uint64_t>(term.field));
      fnv(h, static_cast<std::uint64_t>(term.tap));
      fnv(h, float_bits(term.weight));
    }
  }
  return h;
}

GeneralStencilProblem to_general(const StencilProblem& p) {
  GeneralStencilProblem g;
  g.width = p.width;
  g.height = p.height;
  g.iterations = p.iterations;
  FieldSpec f;
  f.name = "u";
  f.bc_left = p.bc_left;
  f.bc_right = p.bc_right;
  f.bc_top = p.bc_top;
  f.bc_bottom = p.bc_bottom;
  f.initial = p.initial;
  f.initial_field = p.initial_field;
  g.fields.push_back(std::move(f));
  StencilPass pass;
  pass.target = 0;
  const std::pair<float, Tap> taps[] = {{p.stencil.wc, Tap::kC},
                                        {p.stencil.ww, Tap::kW},
                                        {p.stencil.we, Tap::kE},
                                        {p.stencil.wn, Tap::kN},
                                        {p.stencil.ws, Tap::kS}};
  for (const auto& [w, tap] : taps) {
    if (w != 0.0f) pass.terms.push_back(TapTerm{0, tap, w});
  }
  g.passes.push_back(std::move(pass));
  return g;
}

}  // namespace ttsim::core
