/// \file jacobi_tiled.cpp
/// The Section IV Jacobi design: the domain is decomposed into 32x32-element
/// batches (Fig. 4). For every batch the reading data mover fetches a 34x34
/// halo block from DRAM (34 rows of 68 bytes, aligned per Listing 4) into a
/// local SRAM buffer and memcpy's four shifted 32x32 tiles into the input
/// CBs; the compute cores run Listing 2 (three tile additions and a
/// multiplication by the 0.25-filled scalar CB); the writing data mover
/// stores the result tile row by row (always aligned thanks to the Fig. 5
/// edge padding).
///
/// Strategy differences measured in Table I:
///   kInitial         — unpipelined CBs (one page), blocking per-row reads,
///                      per-write synchronisation;
///   kWriteOptimised  — write barrier hoisted to batch level, pipelined CBs;
///   kDoubleBuffered  — reads for the next batch overlap the memcpy of the
///                      current batch via two local buffers.

#include "jacobi_internal.hpp"

namespace ttsim::core::detail {
namespace {

/// Local halo-block buffer geometry: 34 rows; each row slot holds the 68
/// wanted bytes plus up to 30 bytes of alignment prefix.
constexpr std::uint32_t kBlockRows = kTile + 2;
constexpr std::uint32_t kSlotStride = 128;
constexpr std::uint32_t kBlockBufBytes = kBlockRows * kSlotStride;

/// Tile shifts within the 34x34 halo block (block(br,bc) = interior
/// (r0-1+br, c0-1+bc)): output point (r,c) needs
///   x-1: block(r+1, c)   x+1: block(r+1, c+2)
///   y-1: block(r,   c+1) y+1: block(r+2, c+1)
constexpr int kRowShift[4] = {1, 1, 0, 2};
constexpr int kColShift[4] = {0, 2, 1, 1};

struct BatchGrid {
  std::uint32_t bw, bh, count;
  CoreRange rg;

  explicit BatchGrid(const CoreRange& r) : rg(r) {
    bw = (rg.col_hi - rg.col_lo) / kTile;
    bh = (rg.row_hi - rg.row_lo) / kTile;
    count = bw * bh;
  }
  void origin(std::uint32_t b, std::int64_t& r0, std::int64_t& c0) const {
    r0 = rg.row_lo + static_cast<std::int64_t>(b / bw) * kTile;
    c0 = rg.col_lo + static_cast<std::int64_t>(b % bw) * kTile;
  }
};

}  // namespace

void fill_scalar_page(ttmetal::KernelCtxBase& ctx, int cb_id, float value) {
  ctx.cb_reserve_back(cb_id, 1);
  auto* page = reinterpret_cast<bfloat16_t*>(ctx.l1_ptr(ctx.get_write_ptr(cb_id)));
  for (std::uint32_t i = 0; i < 1024; ++i) page[i] = bfloat16_t{value};
  ctx.cb_push_back(cb_id, 1);
}

void build_tiled_program(ttmetal::Program& prog, std::shared_ptr<KernelShared> sh) {
  const int ncores = static_cast<int>(sh->ranges.size());
  const std::vector<int> cores = sh->workers();
  TTSIM_CHECK(static_cast<int>(cores.size()) == ncores);

  const bool pipelined = sh->strategy != DeviceStrategy::kInitial;
  const std::uint32_t io_pages = pipelined ? 4 : 1;
  for (int cb = kCbIn0; cb <= kCbIn3; ++cb)
    prog.create_cb(cb, cores, kTileBytes, io_pages);
  prog.create_cb(kCbScalar, cores, kTileBytes, 1);
  prog.create_cb(kCbInter, cores, kTileBytes, 2);
  prog.create_cb(kCbOut, cores, kTileBytes, io_pages);
  const auto buf0 = prog.create_l1_buffer(cores, kBlockBufBytes);
  const auto buf1 = prog.create_l1_buffer(cores, kBlockBufBytes);
  const std::uint32_t b0 = prog.l1_buffer_address(buf0);
  const std::uint32_t b1 = prog.l1_buffer_address(buf1);
  prog.create_global_barrier(sh->barrier_id, 2 * ncores);

  // ---------------- reading data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, b0, b1](ttmetal::DataMoverCtx& ctx) {
        const BatchGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())]);
        const PaddedLayout& L = sh->layout;
        const bool double_buffered = sh->strategy == DeviceStrategy::kDoubleBuffered;

        fill_scalar_page(ctx, kCbScalar, 0.25f);

        // Issue all 34 halo-row reads of one batch without blocking (the
        // double-buffered refinement of Listing 4's aligned reads).
        auto issue_batch_async = [&](std::uint64_t src, std::uint32_t buf,
                                     std::uint32_t b) {
          std::int64_t r0, c0;
          grid.origin(b, r0, c0);
          const std::uint32_t off =
              static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
          for (std::uint32_t jj = 0; jj < kBlockRows; ++jj) {
            const std::uint64_t addr = src + L.byte_offset(r0 - 1 + jj, c0 - 1);
            ctx.noc_async_read(ctx.get_noc_addr(addr - off), buf + jj * kSlotStride,
                               68 + off);
          }
        };

        // Copy the four shifted tiles out of the halo block into the CBs —
        // the 128 small strided memcpys Table II exposes as the bottleneck.
        auto memcpy_to_cbs = [&](std::uint32_t buf, std::uint32_t off) {
          for (int cb = kCbIn0; cb <= kCbIn3; ++cb) {
            ctx.cb_reserve_back(cb, 1);
            const std::uint32_t page = ctx.get_write_ptr(cb);
            if (sh->toggles.memcpy_to_cbs) {
              for (std::uint32_t r = 0; r < kTile; ++r) {
                const std::uint32_t src_off =
                    buf +
                    (static_cast<std::uint32_t>(kRowShift[cb]) + r) * kSlotStride +
                    off + static_cast<std::uint32_t>(kColShift[cb]) * 2;
                ctx.l1_memcpy(page + r * 64, src_off, 64);
              }
            }
            ctx.cb_push_back(cb, 1);
          }
        };

        for (int it = 0; it < sh->iterations; ++it) {
          const std::uint64_t src = (it % 2 == 0) ? sh->d1 : sh->d2;
          if (double_buffered) {
            const std::uint32_t bufs[2] = {b0, b1};
            std::uint32_t offs[2] = {0, 0};
            auto off_of = [&](std::uint32_t b) {
              std::int64_t r0, c0;
              grid.origin(b, r0, c0);
              return static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
            };
            if (sh->toggles.read) issue_batch_async(src, bufs[0], 0);
            offs[0] = off_of(0);
            for (std::uint32_t b = 0; b < grid.count; ++b) {
              if (sh->toggles.read) ctx.noc_async_read_barrier();
              if (b + 1 < grid.count) {
                offs[(b + 1) & 1] = off_of(b + 1);
                if (sh->toggles.read) issue_batch_async(src, bufs[(b + 1) & 1], b + 1);
              }
              memcpy_to_cbs(bufs[b & 1], offs[b & 1]);
              ctx.loop_tick();
            }
          } else {
            // Initial / write-optimised: Listing 4's blocking aligned read
            // per halo row.
            for (std::uint32_t b = 0; b < grid.count; ++b) {
              std::int64_t r0, c0;
              grid.origin(b, r0, c0);
              const std::uint32_t off =
                  static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
              if (sh->toggles.read) {
                for (std::uint32_t jj = 0; jj < kBlockRows; ++jj) {
                  ctx.read_data_aligned(src + L.byte_offset(r0 - 1 + jj, c0 - 1), src,
                                        68, b0 + jj * kSlotStride);
                }
              }
              memcpy_to_cbs(b0, off);
              ctx.loop_tick();
            }
          }
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "jacobi_tiled_reader");

  // ---------------- compute cores ----------------
  prog.create_kernel(
      cores,
      [sh](ttmetal::ComputeCtx& ctx) {
        const BatchGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())]);
        constexpr int dst0 = 0;
        ctx.binary_op_init_common(kCbIn0, kCbIn1);
        ctx.add_tiles_init(kCbIn0, kCbIn1);
        for (int it = 0; it < sh->iterations; ++it) {
          for (std::uint32_t b = 0; b < grid.count; ++b) {
            if (sh->toggles.compute) {
              // Paper Listing 2.
              ctx.cb_wait_front(kCbIn0, 1);
              ctx.cb_wait_front(kCbIn1, 1);
              ctx.add_tiles(kCbIn0, kCbIn1, 0, 0, dst0);
              ctx.cb_pop_front(kCbIn1, 1);
              ctx.cb_pop_front(kCbIn0, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);

              ctx.cb_wait_front(kCbIn2, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.add_tiles(kCbIn2, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);
              ctx.cb_pop_front(kCbIn2, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);

              ctx.cb_wait_front(kCbIn3, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.add_tiles(kCbIn3, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);
              ctx.cb_pop_front(kCbIn3, 1);

              ctx.cb_reserve_back(kCbInter, 1);
              ctx.pack_tile(dst0, kCbInter);
              ctx.cb_push_back(kCbInter, 1);

              ctx.cb_wait_front(kCbScalar, 1);
              ctx.cb_wait_front(kCbInter, 1);
              ctx.mul_tiles(kCbScalar, kCbInter, 0, 0, dst0);
              ctx.cb_pop_front(kCbInter, 1);

              ctx.cb_reserve_back(kCbOut, 1);
              ctx.pack_tile(dst0, kCbOut);
              ctx.cb_push_back(kCbOut, 1);
            } else {
              // Table II: keep the CB structure and synchronisation, skip
              // the FPU work.
              for (int cb = kCbIn0; cb <= kCbIn3; ++cb) {
                ctx.cb_wait_front(cb, 1);
                ctx.cb_pop_front(cb, 1);
              }
              ctx.cb_reserve_back(kCbOut, 1);
              ctx.cb_push_back(kCbOut, 1);
            }
            ctx.loop_tick();
          }
        }
      },
      "jacobi_tiled_compute");

  // ---------------- writing data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh](ttmetal::DataMoverCtx& ctx) {
        const BatchGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())]);
        const PaddedLayout& L = sh->layout;
        const bool sync_each_write = sh->strategy == DeviceStrategy::kInitial;
        for (int it = 0; it < sh->iterations; ++it) {
          const std::uint64_t dst = (it % 2 == 0) ? sh->d2 : sh->d1;
          for (std::uint32_t b = 0; b < grid.count; ++b) {
            std::int64_t r0, c0;
            grid.origin(b, r0, c0);
            ctx.cb_wait_front(kCbOut, 1);
            const std::uint32_t page = ctx.get_read_ptr(kCbOut);
            if (sh->toggles.write) {
              for (std::uint32_t r = 0; r < kTile; ++r) {
                ctx.noc_async_write(page + r * 64,
                                    ctx.get_noc_addr(dst + L.byte_offset(r0 + r, c0)),
                                    64);
                if (sync_each_write) ctx.noc_async_write_barrier();
              }
              ctx.noc_async_write_barrier();
            }
            ctx.cb_pop_front(kCbOut, 1);
            ctx.loop_tick();
          }
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "jacobi_tiled_writer");
}

}  // namespace ttsim::core::detail
