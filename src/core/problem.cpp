#include "ttsim/core/problem.hpp"

#include "ttsim/core/jacobi_device.hpp"

namespace ttsim::core {

std::vector<bfloat16_t> PaddedLayout::initial_image(const JacobiProblem& p) const {
  TTSIM_CHECK(p.width == width_ && p.height == height_);
  std::vector<bfloat16_t> image(elems(), bfloat16_t{0.0f});

  const bfloat16_t init{p.initial};
  const bfloat16_t left{p.bc_left};
  const bfloat16_t right{p.bc_right};
  const bfloat16_t top{p.bc_top};
  const bfloat16_t bottom{p.bc_bottom};

  // Interior at the initial guess; adjacent pad cells carry the left/right
  // boundary values (Fig. 5).
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(height_); ++r) {
    image[index(r, -1)] = left;
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(width_); ++c) {
      image[index(r, c)] = init;
    }
    image[index(r, width_)] = right;
  }
  // Top and bottom boundary rows (including their corner pad cells is
  // harmless: corners are never read by a 5-point stencil).
  for (std::int64_t c = 0; c < static_cast<std::int64_t>(width_); ++c) {
    image[index(-1, c)] = top;
    image[index(height_, c)] = bottom;
  }
  return image;
}

std::vector<float> PaddedLayout::extract_interior(
    std::span<const bfloat16_t> image) const {
  TTSIM_CHECK(image.size() == elems());
  std::vector<float> out(static_cast<std::size_t>(width_) * height_);
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(height_); ++r) {
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(width_); ++c) {
      out[static_cast<std::size_t>(r) * width_ + static_cast<std::size_t>(c)] =
          static_cast<float>(image[index(r, c)]);
    }
  }
  return out;
}

std::string to_string(DeviceStrategy s) {
  switch (s) {
    case DeviceStrategy::kInitial: return "initial";
    case DeviceStrategy::kWriteOptimised: return "write-optimised";
    case DeviceStrategy::kDoubleBuffered: return "double-buffered";
    case DeviceStrategy::kRowChunk: return "row-chunk (optimised)";
    case DeviceStrategy::kSramResident: return "SRAM-resident (future work)";
    case DeviceStrategy::kTemporal: return "temporal tiling (k per DRAM pass)";
  }
  return "?";
}

}  // namespace ttsim::core
