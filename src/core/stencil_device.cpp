/// \file stencil_device.cpp
/// The general radius-1 stencil lowering onto the Section VI row-chunk
/// machinery: every pass of every iteration streams each referenced field
/// through its own slot rotation (contiguous chunk+halo reads, read-ahead
/// deep, no memcpy — the compute kernel aliases CB read pointers into the
/// mover's slots), and the shared tap-chain emitter replays the problem's
/// terms in listed order. Each term costs one FPU multiply against the
/// weight table plus (after the first) one addition — so a 3-tap upwind
/// advection still runs cheaper per point than 5-tap diffusion, and a
/// field whose taps need no vertical halo streams one row per batch
/// instead of three.

#include <algorithm>
#include <set>

#include "ir_frontend.hpp"
#include "stencil_internal.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"
#include "ttsim/ir/lower.hpp"

namespace ttsim::core {

namespace detail {
namespace {

std::uint32_t slot_bytes_for(std::uint32_t chunk) {
  // chunk + 2 halo elements, plus up to 32 alignment-prefix bytes.
  return static_cast<std::uint32_t>(align_up((chunk + 2) * 2 + 32, 64));
}

/// Per-core chunk geometry with the continuous slot rotation of
/// jacobi_rowchunk: nslots = 2N+3 so a new column's first rows never land
/// in slots the previous column's in-flight batches still reference.
struct ChunkGrid {
  CoreRange rg;
  std::uint32_t chunk, ncols, nrows, nslots;

  ChunkGrid(const CoreRange& r, std::uint32_t chunk_elems, std::uint32_t slots)
      : rg(r), nslots(slots) {
    const std::uint32_t strip = rg.col_hi - rg.col_lo;
    chunk = std::min(chunk_elems, strip);
    while (chunk > 16 && (strip % chunk != 0 || chunk % 16 != 0)) --chunk;
    TTSIM_CHECK_MSG(strip % chunk == 0 && chunk % 16 == 0,
                    "no valid chunk width for strip " << strip);
    ncols = strip / chunk;
    nrows = rg.row_hi - rg.row_lo;
  }
  std::uint32_t slot_of(std::uint32_t col, std::int64_t y) const {
    const std::int64_t t =
        static_cast<std::int64_t>(col) * (nrows + 2) +
        (y - (static_cast<std::int64_t>(rg.row_lo) - 1));
    return static_cast<std::uint32_t>(t % nslots);
  }
};

}  // namespace

void lower_program(const GeneralStencilProblem& p, GeneralShared& sh) {
  p.validate();
  const int nfields = static_cast<int>(p.fields.size());
  sh.iterations = p.iterations;
  sh.written_pass.assign(static_cast<std::size_t>(nfields), -1);
  for (int f = 0; f < nfields; ++f) sh.written_pass[static_cast<std::size_t>(f)] = p.written_pass(f);

  // Distinct weights in first-appearance order: the table index each term's
  // multiply aliases kCbWgt onto.
  sh.weights.clear();
  auto weight_index = [&](float w) {
    for (std::size_t i = 0; i < sh.weights.size(); ++i) {
      if (sh.weights[i] == w) return static_cast<int>(i);
    }
    sh.weights.push_back(w);
    return static_cast<int>(sh.weights.size() - 1);
  };

  sh.passes.clear();
  for (const auto& pass : p.passes) {
    LoweredPass lp;
    lp.target = pass.target;
    lp.post = pass.post;
    lp.self_field = pass.post_self_field;
    auto touch = [&](int field, int dr) {
      for (auto& pf : lp.reads) {
        if (pf.field == field) {
          pf.lo = std::min(pf.lo, dr);
          pf.hi = std::max(pf.hi, dr);
          return;
        }
      }
      lp.reads.push_back(PassField{field, std::min(dr, 0), std::max(dr, 0)});
    };
    for (const auto& term : pass.terms) {
      const int dr = tap_dr(term.tap);
      lp.terms.push_back(LoweredTerm{term.field, dr, tap_dc(term.tap),
                                     weight_index(term.weight)});
      touch(term.field, dr);
    }
    // The Life recombination reads the self field's centre row — stream it
    // even when no tap term references it.
    if (lp.post == PostOp::kLife) touch(lp.self_field, 0);
    sh.passes.push_back(std::move(lp));
  }
}

void build_general_rowchunk_group(ttmetal::Program& prog,
                                  std::shared_ptr<GeneralShared> sh) {
  const int ncores = static_cast<int>(sh->ranges.size());
  const std::vector<int> cores = sh->workers();
  TTSIM_CHECK(static_cast<int>(cores.size()) == ncores);
  const int nfields = sh->nfields();

  const auto depth = static_cast<std::uint32_t>(std::max(2, sh->read_ahead));
  // Continuous rotation bound. With every read issue gated behind a CB
  // reserve (the prologue is folded into batch 0's reserve below), at most
  // N batches are reserved-but-unpopped, so the newest issued row is at
  // most 2N rows past the oldest row a pending batch still reads — plus 2
  // halo rows for every column boundary inside that window. A window of N
  // batches crosses at most ceil(N/nrows_min) boundaries, which matters
  // when the decomposition leaves fewer rows per core than the read-ahead
  // depth (jacobi_rowchunk never sees that regime; the general frontend's
  // conformance sweep does).
  std::uint32_t nrows_min = UINT32_MAX;
  for (const auto& rg : sh->ranges) {
    nrows_min = std::min(nrows_min, rg.row_hi - rg.row_lo);
  }
  nrows_min = std::max(nrows_min, 1u);
  const std::uint32_t nslots =
      2 * depth + 3 + 2 * ((depth + nrows_min - 1) / nrows_min);

  // One stream CB per field any pass references; the accumulator CBs only
  // when a chain is long enough to need them.
  std::vector<char> streamed(static_cast<std::size_t>(nfields), 0);
  bool needs_inter = false, needs_post = false;
  for (const auto& pass : sh->passes) {
    for (const auto& pf : pass.reads) streamed[static_cast<std::size_t>(pf.field)] = 1;
    if (pass.terms.size() > 1) needs_inter = true;
    if (pass.post != PostOp::kNone) needs_post = true;
  }
  for (int f = 0; f < nfields; ++f) {
    if (streamed[static_cast<std::size_t>(f)]) {
      prog.create_cb(kCbFieldBase + f, cores, kTileBytes, depth);
    }
  }
  prog.create_cb(kCbWgt, cores, kTileBytes, 1);
  if (needs_inter) prog.create_cb(kCbGInter, cores, kTileBytes, 2);
  if (needs_inter || needs_post) prog.create_cb(kCbGTmp, cores, kTileBytes, 2);
  if (needs_post) prog.create_cb(kCbGTmp2, cores, kTileBytes, 2);
  prog.create_cb(kCbGOut, cores, kTileBytes, 4);

  std::uint32_t max_chunk = 16;
  for (const auto& rg : sh->ranges) {
    max_chunk = std::max(max_chunk, std::min(sh->chunk_elems, rg.col_hi - rg.col_lo));
  }
  const std::uint32_t sbytes = slot_bytes_for(max_chunk);
  // Field f's rotation lives at slots_addr + f*nslots*sbytes.
  const std::uint32_t slots_addr = prog.l1_buffer_address(prog.create_l1_buffer(
      cores, static_cast<std::uint64_t>(nfields) * nslots * sbytes));
  const std::uint32_t wtab = prog.l1_buffer_address(prog.create_l1_buffer(
      cores, static_cast<std::uint64_t>(sh->weights.size()) * kTileBytes));
  // Reader and writer rendezvous after EVERY pass: a pass may read fields
  // the previous pass just wrote (FDTD's leapfrog), so no core's reader may
  // start pass p+1 until every writer has finished pass p.
  prog.create_global_barrier(sh->barrier_id, 2 * ncores);

  // ---------------- reading data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, slots_addr, sbytes, depth, nslots](ttmetal::DataMoverCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        std::vector<std::uint64_t> src;
        std::vector<std::int64_t> issued_hi, max_row;
        for (int it = 0; it < sh->iterations; ++it) {
          for (std::size_t p = 0; p < sh->passes.size(); ++p) {
            const LoweredPass& pass = sh->passes[p];
            const std::size_t nf = pass.reads.size();
            src.resize(nf);
            issued_hi.resize(nf);
            max_row.resize(nf);
            for (std::size_t e = 0; e < nf; ++e) {
              src[e] = sh->src_of(pass.reads[e].field, it, static_cast<int>(p));
            }
            for (std::uint32_t col = 0; col < grid.ncols; ++col) {
              const std::int64_t c0 = grid.rg.col_lo +
                                      static_cast<std::int64_t>(col) * grid.chunk;
              const std::uint32_t off =
                  static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
              const std::uint32_t read_bytes = (grid.chunk + 2) * 2 + off;
              // Reads are tagged per (field, slot) so a batch waits only on
              // the one row it still needs while `depth` batches of reads
              // stay in flight (see jacobi_rowchunk for the rotation and
              // tag-reuse argument; tags of different fields never clash).
              auto issue_row = [&](std::size_t e, std::int64_t y) {
                const int f = pass.reads[e].field;
                const std::uint32_t slot = grid.slot_of(col, y);
                ctx.noc_async_read(
                    ctx.get_noc_addr(src[e] + L.byte_offset(y, c0 - 1) - off),
                    slots_addr + (static_cast<std::uint32_t>(f) * nslots + slot) * sbytes,
                    read_bytes,
                    static_cast<int>(static_cast<std::uint32_t>(f) * nslots + slot));
              };

              const std::int64_t r0 = grid.rg.row_lo;
              const std::int64_t r1 = grid.rg.row_hi;
              for (std::size_t e = 0; e < nf; ++e) {
                max_row[e] = r1 - 1 + pass.reads[e].hi;
                issued_hi[e] = r0 + pass.reads[e].lo - 1;
              }
              for (std::int64_t j = r0; j < r1; ++j) {
                // Flow control: a free page means the compute kernel popped
                // batch j-N, so the slots the next issues rotate into are no
                // longer referenced. EVERY issue of this column sits behind
                // one of these reserves — including the first batch's
                // prologue below — which is what bounds the reader's
                // cross-column run-ahead (see the nslots derivation).
                for (std::size_t e = 0; e < nf; ++e) {
                  ctx.cb_reserve_back(kCbFieldBase + pass.reads[e].field, 1);
                }
                // Batch j's furthest input row of field e is j+hi (earlier
                // rows were waited by earlier batches); the first batch
                // issues its whole window [r0+lo, r0+hi] — clamped to the
                // last row any batch of this column needs; fields without
                // vertical taps read one row per batch, so the
                // fewer-taps-run-faster cost structure extends to the
                // reader — and waits it untagged.
                if (j == r0) {
                  for (std::size_t e = 0; e < nf; ++e) {
                    const std::int64_t hi =
                        std::min<std::int64_t>(r0 + pass.reads[e].hi, max_row[e]);
                    while (issued_hi[e] < hi) issue_row(e, ++issued_hi[e]);
                  }
                  ctx.noc_async_read_barrier();
                } else {
                  for (std::size_t e = 0; e < nf; ++e) {
                    const int f = pass.reads[e].field;
                    const std::uint32_t slot = grid.slot_of(
                        col, std::min<std::int64_t>(j + pass.reads[e].hi, max_row[e]));
                    ctx.noc_async_read_barrier(
                        static_cast<int>(static_cast<std::uint32_t>(f) * nslots + slot));
                  }
                }
                // ...and issue non-blocking reads up to N batches ahead.
                for (std::size_t e = 0; e < nf; ++e) {
                  while (issued_hi[e] <
                         std::min<std::int64_t>(j + depth - 1 + pass.reads[e].hi,
                                                max_row[e])) {
                    issue_row(e, ++issued_hi[e]);
                  }
                }
                for (std::size_t e = 0; e < nf; ++e) {
                  ctx.cb_push_back(kCbFieldBase + pass.reads[e].field, 1);
                }
                ctx.loop_tick();
              }
            }
            ctx.global_barrier(sh->barrier_id);
          }
        }
      },
      "stencil_reader");

  // ---------------- compute cores ----------------
  prog.create_kernel(
      cores,
      [sh, slots_addr, sbytes, wtab, nslots](ttmetal::ComputeCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        ctx.binary_op_init_common(kCbWgt, kCbFieldBase);
        fill_weight_table(ctx, wtab, sh->weights);
        std::vector<TapAddr> taps;
        for (int it = 0; it < sh->iterations; ++it) {
          for (const LoweredPass& pass : sh->passes) {
            for (std::uint32_t col = 0; col < grid.ncols; ++col) {
              const std::int64_t c0 = grid.rg.col_lo +
                                      static_cast<std::int64_t>(col) * grid.chunk;
              const std::uint32_t off =
                  static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
              // A redirected tile covers only the chunk's elements, not a
              // full 2 KiB page — declared so the race detector's read spans
              // stay within this batch's slots.
              const std::uint32_t valid = grid.chunk * 2;
              for (std::int64_t j = grid.rg.row_lo; j < grid.rg.row_hi; ++j) {
                for (const auto& pf : pass.reads) {
                  ctx.cb_wait_front(kCbFieldBase + pf.field, 1);
                }
                // Tap alias: field f's row j+dr slot, shifted by dc elements
                // (the slot holds elements from column c0-1).
                auto tap_at = [&](int f, int dr, int dc) {
                  return slots_addr +
                         (static_cast<std::uint32_t>(f) * nslots +
                          grid.slot_of(col, j + dr)) * sbytes +
                         off + static_cast<std::uint32_t>(2 + 2 * dc);
                };
                taps.clear();
                for (const auto& t : pass.terms) {
                  taps.push_back(TapAddr{kCbFieldBase + t.field,
                                         tap_at(t.field, t.dr, t.dc), valid, t.widx});
                }
                const TapAddr self{kCbFieldBase + pass.self_field,
                                   tap_at(pass.self_field, 0, 0), valid, 0};
                emit_tap_chain(ctx, wtab, taps, pass.post, self, [&](int reg) {
                  ctx.cb_reserve_back(kCbGOut, 1);
                  ctx.pack_tile(reg, kCbGOut);
                  ctx.cb_push_back(kCbGOut, 1);
                });
                for (const auto& pf : pass.reads) {
                  ctx.cb_pop_front(kCbFieldBase + pf.field, 1);
                }
                ctx.loop_tick();
              }
            }
          }
        }
      },
      "stencil_compute");

  // ---------------- writing data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh, nslots](ttmetal::DataMoverCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        for (int it = 0; it < sh->iterations; ++it) {
          for (const LoweredPass& pass : sh->passes) {
            const std::uint64_t dst = sh->dst_of(pass.target, it);
            for (std::uint32_t col = 0; col < grid.ncols; ++col) {
              const std::int64_t c0 = grid.rg.col_lo +
                                      static_cast<std::int64_t>(col) * grid.chunk;
              for (std::int64_t j = grid.rg.row_lo; j < grid.rg.row_hi; ++j) {
                ctx.cb_wait_front(kCbGOut, 1);
                ctx.noc_async_write(ctx.get_read_ptr(kCbGOut),
                                    ctx.get_noc_addr(dst + L.byte_offset(j, c0)),
                                    grid.chunk * 2);
                ctx.noc_async_write_barrier();
                ctx.cb_pop_front(kCbGOut, 1);
                ctx.loop_tick();
              }
            }
            ctx.global_barrier(sh->barrier_id);
          }
        }
      },
      "stencil_writer");
}

}  // namespace detail

std::vector<bfloat16_t> general_field_image(const PaddedLayout& layout,
                                            const GeneralStencilProblem& p,
                                            int field) {
  const FieldSpec& f = p.fields[static_cast<std::size_t>(field)];
  JacobiProblem g = p.geometry();
  g.bc_left = f.bc_left;
  g.bc_right = f.bc_right;
  g.bc_top = f.bc_top;
  g.bc_bottom = f.bc_bottom;
  g.initial = f.initial;
  auto image = layout.initial_image(g);
  if (!f.initial_field.empty()) {
    TTSIM_CHECK_MSG(f.initial_field.size() == p.points(),
                    "initial_field of field " << field
                                              << " must be width*height values");
    for (std::int64_t r = 0; r < p.height; ++r) {
      for (std::int64_t c = 0; c < p.width; ++c) {
        image[layout.index(r, c)] =
            bfloat16_t{f.initial_field[static_cast<std::size_t>(r) * p.width +
                                       static_cast<std::size_t>(c)]};
      }
    }
  }
  return image;
}

namespace {

void validate_run_config(const GeneralStencilProblem& p, const DeviceRunConfig& cfg) {
  p.validate();
  if (cfg.read_ahead < 2 || cfg.read_ahead > 64) {
    TTSIM_THROW_API("read_ahead must be in [2, 64] (got " << cfg.read_ahead
                    << "); 2 is the paper's two-batch scheme");
  }
  if (cfg.strategy != DeviceStrategy::kRowChunk &&
      cfg.strategy != DeviceStrategy::kSramResident &&
      cfg.strategy != DeviceStrategy::kTemporal) {
    TTSIM_THROW_API("general stencils lower onto the row-chunk, SRAM-resident "
                    "or temporal strategies (got " << to_string(cfg.strategy)
                    << ")");
  }
  if (cfg.strategy == DeviceStrategy::kSramResident &&
      (p.fields.size() != 1 || p.passes.size() != 1)) {
    TTSIM_THROW_API("the SRAM-resident strategy holds ONE field's slabs in "
                    "L1: single-field single-pass programs only");
  }
  if (cfg.strategy == DeviceStrategy::kTemporal) {
    if (p.passes.size() != 1) {
      TTSIM_THROW_API("temporal tiling chains generations of ONE pass through "
                      "L1: single-pass programs only (multi-pass leapfrogs "
                      "would need every written field's skirt per sub-step)");
    }
    if (cfg.temporal_depth < 1 || cfg.temporal_depth > 8) {
      TTSIM_THROW_API("temporal_depth must be in [1, 8] (got "
                      << cfg.temporal_depth << ")");
    }
  }
  if (cfg.strategy == DeviceStrategy::kSramResident ||
      cfg.strategy == DeviceStrategy::kTemporal) {
    if (cfg.cores_x != 1) {
      TTSIM_THROW_API(to_string(cfg.strategy)
                      << " decomposes in Y only (cores_x == 1)");
    }
    if (p.width > 1024 && p.width % 1024 != 0) {
      TTSIM_THROW_API("SRAM-slab domains must be <= 1024 wide or a multiple of "
                      "1024 (FPU tile packs write straight into the slab)");
    }
  }
}

}  // namespace

GeneralRunResult run_general_stencil_on_device(ttmetal::Device& device,
                                               const GeneralStencilProblem& p,
                                               const DeviceRunConfig& cfg) {
  validate_run_config(p, cfg);
  const int ncores = cfg.cores_x * cfg.cores_y;
  if (ncores > device.num_workers()) {
    TTSIM_THROW_API("decomposition needs " << ncores << " cores but the e150 has "
                                           << device.num_workers());
  }

  const PaddedLayout layout(p.width, p.height);
  const ttmetal::BufferConfig bc = detail::grid_buffer_config(cfg, layout);
  const int nfields = static_cast<int>(p.fields.size());

  auto shared = std::make_shared<detail::GeneralShared>(layout);
  detail::lower_program(p, *shared);
  shared->chunk_elems = cfg.chunk_elems;
  shared->read_ahead = cfg.read_ahead;
  shared->temporal_depth = cfg.temporal_depth;
  shared->ranges = detail::decompose(p.geometry(), cfg.cores_x, cfg.cores_y, 16);

  // One buffer pair per field — read-only fields live in a single buffer
  // (their "pair" slot stays 0 and src_of always resolves to d1).
  std::vector<decltype(device.create_buffer(bc))> d1(static_cast<std::size_t>(nfields));
  std::vector<decltype(device.create_buffer(bc))> d2(static_cast<std::size_t>(nfields));
  shared->d1.assign(static_cast<std::size_t>(nfields), 0);
  shared->d2.assign(static_cast<std::size_t>(nfields), 0);
  for (int f = 0; f < nfields; ++f) {
    d1[static_cast<std::size_t>(f)] = device.create_buffer(bc);
    shared->d1[static_cast<std::size_t>(f)] = d1[static_cast<std::size_t>(f)]->address();
    if (p.written_pass(f) >= 0) {
      d2[static_cast<std::size_t>(f)] = device.create_buffer(bc);
      shared->d2[static_cast<std::size_t>(f)] = d2[static_cast<std::size_t>(f)]->address();
    }
  }

  const SimTime t_start = device.now();
  for (int f = 0; f < nfields; ++f) {
    const auto image = general_field_image(layout, p, f);
    device.write_buffer(*d1[static_cast<std::size_t>(f)], std::as_bytes(std::span{image}));
    // The parity partner needs the same boundary cells (and, before its
    // first write lands, the same interior the early rows' halo reads see).
    if (d2[static_cast<std::size_t>(f)]) {
      device.write_buffer(*d2[static_cast<std::size_t>(f)], std::as_bytes(std::span{image}));
    }
  }

  ttmetal::Program prog;
  if (cfg.lowering == LoweringPath::kIr) {
    // Prove the protocol race/deadlock-free, then lower; the graph's emit
    // closure calls the same strategy builder the kHandWired branch does.
    ir::lower(detail::make_general_graph(
                  shared, cfg.strategy,
                  static_cast<std::int64_t>(device.spec().sram_bytes)),
              prog);
  } else if (cfg.strategy == DeviceStrategy::kSramResident) {
    detail::build_general_sram_program(prog, shared);
  } else if (cfg.strategy == DeviceStrategy::kTemporal) {
    detail::build_general_temporal_group(prog, shared);
  } else {
    detail::build_general_rowchunk_group(prog, shared);
  }
  device.run_program(prog);

  GeneralRunResult result;
  result.fields.resize(static_cast<std::size_t>(nfields));
  for (int f = 0; f < nfields; ++f) {
    auto& final_buf = shared->final_of(f) == shared->d1[static_cast<std::size_t>(f)]
                          ? *d1[static_cast<std::size_t>(f)]
                          : *d2[static_cast<std::size_t>(f)];
    std::vector<bfloat16_t> out(layout.elems());
    device.read_buffer(final_buf, std::as_writable_bytes(std::span{out}));
    result.fields[static_cast<std::size_t>(f)] = layout.extract_interior(out);
  }
  result.kernel_time = device.last_kernel_duration();
  result.total_time = device.now() - t_start;
  result.cores_used = ncores;
  result.solution = result.fields[static_cast<std::size_t>(p.primary_field())];

  if (cfg.verify) {
    const auto ref = cpu::general_reference_bf16(p);
    result.verified_ok = ref.size() == result.fields.size();
    for (int f = 0; result.verified_ok && f < nfields; ++f) {
      const auto& rf = ref[static_cast<std::size_t>(f)];
      const auto& df = result.fields[static_cast<std::size_t>(f)];
      result.verified_ok = rf.size() == df.size();
      for (std::size_t i = 0; result.verified_ok && i < rf.size(); ++i) {
        if (static_cast<float>(rf[i]) != df[i]) result.verified_ok = false;
      }
    }
  }
  return result;
}

GeneralRunResult run_general_stencil_on_device(const GeneralStencilProblem& p,
                                               const DeviceRunConfig& cfg,
                                               sim::GrayskullSpec spec) {
  auto device = ttmetal::Device::open(spec);
  return run_general_stencil_on_device(*device, p, cfg);
}

void build_batched_stencil_program(ttmetal::Program& prog,
                                   const GeneralStencilProblem& p,
                                   const DeviceRunConfig& cfg,
                                   const std::vector<GeneralBatchSlot>& slots) {
  if (slots.empty()) TTSIM_THROW_API("batched launch needs at least one slot");
  validate_stencil_request(p, cfg);

  const PaddedLayout layout(p.width, p.height);
  const auto ranges = detail::decompose(p.geometry(), cfg.cores_x, cfg.cores_y, 16);
  const std::size_t nfields = p.fields.size();

  std::set<int> used;
  for (std::size_t g = 0; g < slots.size(); ++g) {
    const GeneralBatchSlot& slot = slots[g];
    if (slot.core_ids.size() != ranges.size()) {
      TTSIM_THROW_API("batch slot " << g << " supplies " << slot.core_ids.size()
                      << " cores but the decomposition needs " << ranges.size());
    }
    if (slot.d1.size() != nfields || slot.d2.size() != nfields) {
      TTSIM_THROW_API("batch slot " << g << " must supply one buffer pair per "
                      "field (" << nfields << ")");
    }
    for (int id : slot.core_ids) {
      if (!used.insert(id).second) {
        TTSIM_THROW_API("batch slots must use disjoint cores (worker " << id
                        << " appears twice)");
      }
    }
  }

  for (std::size_t g = 0; g < slots.size(); ++g) {
    const GeneralBatchSlot& slot = slots[g];
    auto shared = std::make_shared<detail::GeneralShared>(layout);
    detail::lower_program(p, *shared);
    shared->chunk_elems = cfg.chunk_elems;
    shared->read_ahead = cfg.read_ahead;
    shared->temporal_depth = cfg.temporal_depth;
    shared->d1 = slot.d1;
    shared->d2 = slot.d2;
    shared->ranges = ranges;
    shared->core_ids = slot.core_ids;
    shared->barrier_id = static_cast<int>(g);
    if (cfg.strategy == DeviceStrategy::kTemporal) {
      detail::build_general_temporal_group(prog, shared);
    } else {
      detail::build_general_rowchunk_group(prog, shared);
    }
  }
}

void validate_stencil_request(const GeneralStencilProblem& p,
                              const DeviceRunConfig& cfg) {
  p.validate();
  if (cfg.strategy != DeviceStrategy::kRowChunk &&
      cfg.strategy != DeviceStrategy::kTemporal) {
    TTSIM_THROW_API("batched launches are built on the row-chunk or temporal "
                    "strategies");
  }
  if (cfg.strategy == DeviceStrategy::kTemporal) {
    if (p.passes.size() != 1) {
      TTSIM_THROW_API("temporal tiling chains generations of ONE pass through "
                      "L1: single-pass programs only");
    }
    if (cfg.cores_x != 1) {
      TTSIM_THROW_API("temporal tiling decomposes in Y only (cores_x == 1)");
    }
    if (p.width > 1024 && p.width % 1024 != 0) {
      TTSIM_THROW_API("SRAM-slab domains must be <= 1024 wide or a multiple of "
                      "1024 (FPU tile packs write straight into the slab)");
    }
    if (cfg.temporal_depth < 1 || cfg.temporal_depth > 8) {
      TTSIM_THROW_API("temporal_depth must be in [1, 8] (got "
                      << cfg.temporal_depth << ")");
    }
  }
  if (cfg.read_ahead < 2 || cfg.read_ahead > 64) {
    TTSIM_THROW_API("read_ahead must be in [2, 64] (got " << cfg.read_ahead
                    << "); 2 is the paper's two-batch scheme");
  }
  (void)detail::decompose(p.geometry(), cfg.cores_x, cfg.cores_y, 16);
}

DeviceRunResult run_stencil_on_device(ttmetal::Device& device, const StencilProblem& p,
                                      const DeviceRunConfig& cfg) {
  if (p.stencil.active_taps() == 0) TTSIM_THROW_API("stencil has no non-zero taps");
  DeviceRunConfig c = cfg;
  if (c.strategy != DeviceStrategy::kSramResident &&
      c.strategy != DeviceStrategy::kTemporal) {
    c.strategy = DeviceStrategy::kRowChunk;
  }
  auto r = run_general_stencil_on_device(device, to_general(p), c);
  DeviceRunResult out;
  out.solution = std::move(r.solution);
  out.kernel_time = r.kernel_time;
  out.total_time = r.total_time;
  out.cores_used = r.cores_used;
  out.verified_ok = r.verified_ok;
  return out;
}

DeviceRunResult run_stencil_on_device(const StencilProblem& p,
                                      const DeviceRunConfig& cfg,
                                      sim::GrayskullSpec spec) {
  auto device = ttmetal::Device::open(spec);
  return run_stencil_on_device(*device, p, cfg);
}

}  // namespace ttsim::core
