/// \file stencil_device.cpp
/// Generic weighted-stencil kernels, built on the Section VI row-chunk
/// machinery: contiguous chunk+halo reads two batches ahead, no memcpy
/// (compute aliases the mover's slots via cb_set_rd_ptr), aligned writes
/// through the Fig. 5 padding. Each active tap costs one FPU multiply by a
/// weight-filled scalar CB plus (after the first) one addition — so a
/// 3-tap upwind advection runs cheaper per point than 5-tap diffusion,
/// exactly the cost structure a real port would see.

#include <array>

#include "jacobi_internal.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"

namespace ttsim::core {
namespace {

using detail::kCbInter;
using detail::kCbOut;
using detail::kIterationBarrier;
using detail::kTileBytes;

constexpr int kCbTmp = 6;
constexpr int kCbTapBase = 0;     // tap alias CBs 0..4 (C,W,E,N,S order below)
constexpr int kCbWeightBase = 8;  // weight CBs 8..12

/// Tap order fixed across device and CPU reference: centre, W, E, N, S.
struct Tap {
  float weight;
  int index;  // 0=C 1=W 2=E 3=N 4=S
};

std::vector<Tap> active_taps(const WeightedStencil& s) {
  std::vector<Tap> taps;
  const float w[] = {s.wc, s.ww, s.we, s.wn, s.ws};
  for (int i = 0; i < 5; ++i) {
    if (w[i] != 0.0f) taps.push_back(Tap{w[i], i});
  }
  return taps;
}

struct StencilShared {
  std::uint64_t d1 = 0, d2 = 0;
  PaddedLayout layout;
  int iterations = 0;
  std::uint32_t chunk_elems = 1024;
  int read_ahead = 2;
  std::vector<Tap> taps;
  bool needs_north = false, needs_south = false;
  std::vector<detail::CoreRange> ranges;
  /// Iteration-barrier id (distinct per group when several independent
  /// stencil solves share one program launch).
  int barrier_id = kIterationBarrier;

  explicit StencilShared(const PaddedLayout& l) : layout(l) {}
};

struct ChunkGrid {
  detail::CoreRange rg;
  std::uint32_t chunk, ncols, nrows;
  std::uint32_t nslots;  // row-slot rotation length (2 * read_ahead + 1)

  ChunkGrid(const detail::CoreRange& r, std::uint32_t chunk_elems,
            std::uint32_t slots)
      : rg(r), nslots(slots) {
    const std::uint32_t strip = rg.col_hi - rg.col_lo;
    chunk = std::min(chunk_elems, strip);
    while (chunk > 16 && (strip % chunk != 0 || chunk % 16 != 0)) --chunk;
    TTSIM_CHECK(strip % chunk == 0 && chunk % 16 == 0);
    ncols = strip / chunk;
    nrows = rg.row_hi - rg.row_lo;
  }
  std::uint32_t slot_of(std::int64_t y) const {
    return static_cast<std::uint32_t>(
        (y - (static_cast<std::int64_t>(rg.row_lo) - 1) + nslots) % nslots);
  }
};

std::uint32_t slot_bytes_for(std::uint32_t chunk) {
  return static_cast<std::uint32_t>(align_up((chunk + 2) * 2 + 32, 64));
}

void build_stencil_program(ttmetal::Program& prog,
                           std::shared_ptr<StencilShared> sh) {
  const int ncores = static_cast<int>(sh->ranges.size());
  std::vector<int> cores;
  for (int c = 0; c < ncores; ++c) cores.push_back(c);

  // Read-ahead depth N (2 = the paper's scheme): 2N+1 row slots and N-page
  // tap CBs keep up to N batches of reads in flight (see jacobi_rowchunk).
  const auto depth = static_cast<std::uint32_t>(std::max(2, sh->read_ahead));
  const std::uint32_t nslots = 2 * depth + 1;

  for (const auto& tap : sh->taps) {
    prog.create_cb(kCbTapBase + tap.index, cores, kTileBytes, depth);
    prog.create_cb(kCbWeightBase + tap.index, cores, kTileBytes, 1);
  }
  prog.create_cb(kCbInter, cores, kTileBytes, 2);
  prog.create_cb(kCbTmp, cores, kTileBytes, 2);
  prog.create_cb(kCbOut, cores, kTileBytes, 4);

  std::uint32_t max_chunk = 16;
  for (const auto& rg : sh->ranges) {
    max_chunk = std::max(max_chunk, std::min(sh->chunk_elems, rg.col_hi - rg.col_lo));
  }
  const std::uint32_t sbytes = slot_bytes_for(max_chunk);
  const std::uint32_t slots_addr =
      prog.l1_buffer_address(prog.create_l1_buffer(cores, nslots * sbytes));
  prog.create_global_barrier(sh->barrier_id, 2 * ncores);

  // ---------------- reading data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover0, cores,
      [sh, slots_addr, sbytes, depth, nslots](ttmetal::DataMoverCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        for (const auto& tap : sh->taps) {
          detail::fill_scalar_page(ctx, kCbWeightBase + tap.index, tap.weight);
        }
        // Rows needed per output row j: j plus the active vertical halos.
        const std::int64_t lo = sh->needs_north ? -1 : 0;
        const std::int64_t hi = sh->needs_south ? 1 : 0;
        for (int it = 0; it < sh->iterations; ++it) {
          const std::uint64_t src = (it % 2 == 0) ? sh->d1 : sh->d2;
          for (std::uint32_t col = 0; col < grid.ncols; ++col) {
            const std::int64_t c0 =
                grid.rg.col_lo + static_cast<std::int64_t>(col) * grid.chunk;
            const std::uint32_t off =
                static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
            const std::uint32_t read_bytes = (grid.chunk + 2) * 2 + off;
            // Slot-tagged reads, as in the Jacobi row-chunk reader: each
            // batch waits only on the row it still needs while up to
            // `depth` batches of reads stay in flight.
            auto issue_row = [&](std::int64_t y) {
              const std::uint32_t slot = grid.slot_of(y);
              ctx.noc_async_read(
                  ctx.get_noc_addr(src + L.byte_offset(y, c0 - 1) - off),
                  slots_addr + slot * sbytes, read_bytes,
                  static_cast<int>(slot));
            };
            const std::int64_t r0 = grid.rg.row_lo, r1 = grid.rg.row_hi;
            // Column boundary: as in the Jacobi reader, the prologue's slots
            // still alias the previous column's tail rows while up to N-1 of
            // its batches are in flight. N = 2 (the paper's scheme) is
            // covered by the DRAM round trip; deeper pipelines must drain.
            // All `depth` pages of the last-popped tap CB free means the
            // compute kernel is past every slot read of the previous column.
            if (depth > 2 && col > 0) {
              ctx.cb_reserve_back(kCbTapBase + sh->taps.back().index, depth);
            }
            // Last row any batch of this column needs.
            const std::int64_t max_row = hi == 1 ? r1 : r1 - 1;
            std::int64_t issued_hi = std::min<std::int64_t>(r0 + 1, r1);
            for (std::int64_t y = r0 + lo; y <= issued_hi; ++y) issue_row(y);
            for (std::int64_t j = r0; j < r1; ++j) {
              for (const auto& tap : sh->taps)
                ctx.cb_reserve_back(kCbTapBase + tap.index, 1);
              // Batch j's furthest input row is min(j+hi, max_row); waiting
              // the tag of min(j+1, max_row) covers it (rows below were
              // waited by earlier batches; an already-drained tag is free).
              if (j == r0) {
                ctx.noc_async_read_barrier();
              } else {
                ctx.noc_async_read_barrier(static_cast<int>(
                    grid.slot_of(std::min<std::int64_t>(j + 1, max_row))));
              }
              while (issued_hi < std::min<std::int64_t>(j + depth, max_row)) {
                issue_row(++issued_hi);
              }
              for (const auto& tap : sh->taps)
                ctx.cb_push_back(kCbTapBase + tap.index, 1);
              ctx.loop_tick();
            }
          }
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "stencil_reader");

  // ---------------- compute cores ----------------
  prog.create_kernel(
      cores,
      [sh, slots_addr, sbytes, nslots](ttmetal::ComputeCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        constexpr int dst0 = 0;
        for (int it = 0; it < sh->iterations; ++it) {
          for (std::uint32_t col = 0; col < grid.ncols; ++col) {
            const std::int64_t c0 =
                grid.rg.col_lo + static_cast<std::int64_t>(col) * grid.chunk;
            const std::uint32_t off =
                static_cast<std::uint32_t>(L.byte_offset(0, c0 - 1) % 32);
            for (std::int64_t j = grid.rg.row_lo; j < grid.rg.row_hi; ++j) {
              const std::uint32_t sj = slots_addr + grid.slot_of(j) * sbytes + off;
              const std::uint32_t sup =
                  slots_addr + grid.slot_of(j - 1) * sbytes + off;
              const std::uint32_t sdn =
                  slots_addr + grid.slot_of(j + 1) * sbytes + off;
              // Alias address per tap: C/W/E from row j, N/S from j-1/j+1.
              const std::array<std::uint32_t, 5> tap_addr = {
                  sj + 2, sj, sj + 4, sup + 2, sdn + 2};

              const std::size_t n = sh->taps.size();
              for (std::size_t k = 0; k < n; ++k) {
                const auto& tap = sh->taps[k];
                const int tap_cb = kCbTapBase + tap.index;
                const int w_cb = kCbWeightBase + tap.index;
                ctx.cb_wait_front(tap_cb, 1);
                ctx.cb_set_rd_ptr(tap_cb, tap_addr[static_cast<std::size_t>(tap.index)]);
                ctx.cb_wait_front(w_cb, 1);
                ctx.mul_tiles(w_cb, tap_cb, 0, 0, dst0);
                ctx.cb_pop_front(tap_cb, 1);
                if (k == 0) {
                  // First product seeds the accumulator (or goes straight
                  // out for single-tap stencils).
                  const int target = n == 1 ? kCbOut : kCbInter;
                  ctx.cb_reserve_back(target, 1);
                  ctx.pack_tile(dst0, target);
                  ctx.cb_push_back(target, 1);
                } else {
                  ctx.cb_reserve_back(kCbTmp, 1);
                  ctx.pack_tile(dst0, kCbTmp);
                  ctx.cb_push_back(kCbTmp, 1);
                  ctx.cb_wait_front(kCbInter, 1);
                  ctx.cb_wait_front(kCbTmp, 1);
                  ctx.add_tiles(kCbInter, kCbTmp, 0, 0, dst0);
                  ctx.cb_pop_front(kCbTmp, 1);
                  ctx.cb_pop_front(kCbInter, 1);
                  const int target = k + 1 == n ? kCbOut : kCbInter;
                  ctx.cb_reserve_back(target, 1);
                  ctx.pack_tile(dst0, target);
                  ctx.cb_push_back(target, 1);
                }
              }
              ctx.loop_tick();
            }
          }
        }
      },
      "stencil_compute");

  // ---------------- writing data mover ----------------
  prog.create_kernel(
      ttmetal::KernelKind::kDataMover1, cores,
      [sh, nslots](ttmetal::DataMoverCtx& ctx) {
        const ChunkGrid grid(sh->ranges[static_cast<std::size_t>(ctx.position())],
                             sh->chunk_elems, nslots);
        const PaddedLayout& L = sh->layout;
        for (int it = 0; it < sh->iterations; ++it) {
          const std::uint64_t dst = (it % 2 == 0) ? sh->d2 : sh->d1;
          for (std::uint32_t col = 0; col < grid.ncols; ++col) {
            const std::int64_t c0 =
                grid.rg.col_lo + static_cast<std::int64_t>(col) * grid.chunk;
            for (std::int64_t j = grid.rg.row_lo; j < grid.rg.row_hi; ++j) {
              ctx.cb_wait_front(kCbOut, 1);
              ctx.noc_async_write(ctx.get_read_ptr(kCbOut),
                                  ctx.get_noc_addr(dst + L.byte_offset(j, c0)),
                                  grid.chunk * 2);
              ctx.noc_async_write_barrier();
              ctx.cb_pop_front(kCbOut, 1);
              ctx.loop_tick();
            }
          }
          ctx.global_barrier(sh->barrier_id);
        }
      },
      "stencil_writer");
}

std::vector<bfloat16_t> stencil_image(const PaddedLayout& layout,
                                      const StencilProblem& p) {
  auto image = layout.initial_image(p.geometry());
  if (!p.initial_field.empty()) {
    TTSIM_CHECK_MSG(p.initial_field.size() == p.points(),
                    "initial_field must be width*height values");
    for (std::int64_t r = 0; r < p.height; ++r) {
      for (std::int64_t c = 0; c < p.width; ++c) {
        image[layout.index(r, c)] =
            bfloat16_t{p.initial_field[static_cast<std::size_t>(r) * p.width +
                                       static_cast<std::size_t>(c)]};
      }
    }
  }
  return image;
}

}  // namespace

DeviceRunResult run_stencil_on_device(ttmetal::Device& device, const StencilProblem& p,
                                      const DeviceRunConfig& cfg) {
  const auto taps = active_taps(p.stencil);
  if (taps.empty()) TTSIM_THROW_API("stencil has no non-zero taps");
  if (p.iterations < 1) TTSIM_THROW_API("need at least one iteration");
  if (cfg.read_ahead < 2 || cfg.read_ahead > 64) {
    TTSIM_THROW_API("read_ahead must be in [2, 64] (got " << cfg.read_ahead << ")");
  }
  const int ncores = cfg.cores_x * cfg.cores_y;
  if (ncores > device.num_workers()) {
    TTSIM_THROW_API("decomposition needs " << ncores << " cores but the e150 has "
                                           << device.num_workers());
  }

  const PaddedLayout layout(p.width, p.height);
  ttmetal::BufferConfig bc;
  bc.size = layout.bytes();
  bc.layout = cfg.buffer_layout;
  if (cfg.buffer_layout == ttmetal::BufferLayout::kInterleaved) {
    bc.page_size = cfg.interleave_page;
  } else if (cfg.buffer_layout == ttmetal::BufferLayout::kStriped) {
    bc.page_size = align_up(layout.bytes() / 16 + 1, 32);
    bc.balanced_stripes = cfg.balanced_stripes;
  }
  auto d1 = device.create_buffer(bc);
  auto d2 = device.create_buffer(bc);

  const SimTime t_start = device.now();
  const auto image = stencil_image(layout, p);
  device.write_buffer(*d1, std::as_bytes(std::span{image}));
  device.write_buffer(*d2, std::as_bytes(std::span{image}));

  auto shared = std::make_shared<StencilShared>(layout);
  shared->d1 = d1->address();
  shared->d2 = d2->address();
  shared->iterations = p.iterations;
  shared->chunk_elems = cfg.chunk_elems;
  shared->read_ahead = cfg.read_ahead;
  shared->taps = taps;
  shared->needs_north = p.stencil.wn != 0.0f;
  shared->needs_south = p.stencil.ws != 0.0f;
  shared->ranges = detail::decompose(p.geometry(), cfg.cores_x, cfg.cores_y, 16);

  ttmetal::Program prog;
  build_stencil_program(prog, shared);
  device.run_program(prog);

  auto& final_buf = (p.iterations % 2 == 1) ? *d2 : *d1;
  std::vector<bfloat16_t> out(layout.elems());
  device.read_buffer(final_buf, std::as_writable_bytes(std::span{out}));

  DeviceRunResult result;
  result.kernel_time = device.last_kernel_duration();
  result.total_time = device.now() - t_start;
  result.cores_used = ncores;
  result.solution = layout.extract_interior(out);

  if (cfg.verify) {
    const auto ref = cpu::stencil_reference_bf16(p);
    result.verified_ok = ref.size() == result.solution.size();
    for (std::size_t i = 0; result.verified_ok && i < ref.size(); ++i) {
      if (static_cast<float>(ref[i]) != result.solution[i]) result.verified_ok = false;
    }
  }
  return result;
}

DeviceRunResult run_stencil_on_device(const StencilProblem& p,
                                      const DeviceRunConfig& cfg,
                                      sim::GrayskullSpec spec) {
  auto device = ttmetal::Device::open(spec);
  return run_stencil_on_device(*device, p, cfg);
}

}  // namespace ttsim::core
