#pragma once
/// \file energy.hpp
/// Energy models for the performance/energy comparison (paper Section VII).
///
/// e150 (TT-SMI): the paper observes a roughly constant 50-55 W card draw
/// regardless of active Tensix cores; back-solving Table VIII's joules
/// against its runtimes gives ≈46.5 W base + ≈0.045 W per active core.
/// Multi-card runs multiply the card power (Table VIII's x2/x4 rows show
/// total power scaling with card count while energy-to-solution holds).

#include "ttsim/common/units.hpp"
#include "ttsim/sim/spec.hpp"

namespace ttsim::energy {

/// TT-SMI-style card energy model.
struct CardEnergyModel {
  double base_w = 46.5;
  double per_core_w = 0.045;

  explicit CardEnergyModel(const sim::GrayskullSpec& spec)
      : base_w(spec.card_power_base_w), per_core_w(spec.card_power_per_core_w) {}
  CardEnergyModel() = default;

  double power_w(int active_cores) const {
    return base_w + per_core_w * static_cast<double>(active_cores);
  }

  /// Energy for one card over a simulated duration.
  double joules(SimTime duration, int active_cores) const {
    return to_seconds(duration) * power_w(active_cores);
  }

  /// Energy for `cards` cards running the same duration (the whole card
  /// draws power while any of it works).
  double joules_multicard(SimTime duration, int active_cores_per_card,
                          int cards) const {
    return joules(duration, active_cores_per_card) * static_cast<double>(cards);
  }
};

}  // namespace ttsim::energy
