#include "ttsim/ir/lower.hpp"

#include <sstream>

#include "ttsim/verify/lint.hpp"

namespace ttsim::ir {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kReadRegion: return "read-region";
    case OpKind::kHaloExchange: return "halo-exchange";
    case OpKind::kComputeTile: return "compute-tile";
    case OpKind::kWriteRegion: return "write-region";
    case OpKind::kCbReserve: return "cb-reserve";
    case OpKind::kCbPush: return "cb-push";
    case OpKind::kCbWait: return "cb-wait";
    case OpKind::kCbPop: return "cb-pop";
    case OpKind::kSemWait: return "sem-wait";
    case OpKind::kSemPost: return "sem-post";
    case OpKind::kBarrierArrive: return "barrier-arrive";
    case OpKind::kRingWrite: return "ring-write";
    case OpKind::kRingRead: return "ring-read";
  }
  return "?";
}

void lower(const Graph& graph, ttmetal::Program& prog) {
  std::vector<verify::LintError> findings = check(graph);
  if (!findings.empty()) {
    std::ostringstream os;
    os << "ir: graph '" << graph.name << "' failed the static protocol "
       << "checker with " << findings.size() << " finding(s):\n"
       << verify::format_lint(findings);
    throw CheckError(os.str(), std::move(findings));
  }
  if (!graph.emit) {
    throw std::logic_error("ir: graph '" + graph.name +
                           "' has no emit closure — nothing to lower");
  }
  graph.emit(prog);
}

namespace {

const char* to_string(Guard g) {
  switch (g) {
    case Guard::kAlways: return "";
    case Guard::kHasUpper: return " if has-upper";
    case Guard::kHasLower: return " if has-lower";
  }
  return "";
}

const char* to_string(Peer p) {
  switch (p) {
    case Peer::kSelf: return "self";
    case Peer::kUpper: return "upper";
    case Peer::kLower: return "lower";
  }
  return "?";
}

}  // namespace

std::string dump(const Graph& graph) {
  std::ostringstream os;
  os << "graph " << graph.name << " (cores: " << graph.ncores.str() << ")\n";
  if (!graph.bindings.empty()) {
    os << "  bindings:";
    for (const auto& [k, v] : graph.bindings) os << " " << k << "=" << v;
    os << "\n";
  }
  if (!graph.ranges.empty()) {
    os << "  ranges:";
    for (const auto& [k, r] : graph.ranges) {
      os << " " << k << " in [" << r.first << ", " << r.second << "]";
    }
    os << "\n";
  }
  for (const CbDecl& cb : graph.cbs) {
    os << "  cb " << cb.id << " '" << cb.name << "': " << cb.pages.str()
       << " page(s) x " << cb.page_size << " B\n";
  }
  for (const SemDecl& sem : graph.sems) {
    os << "  sem " << sem.id << " '" << sem.name << "': initial "
       << sem.initial << "\n";
  }
  for (const BarrierDecl& b : graph.barriers) {
    os << "  barrier " << b.id << ": " << b.participants.str()
       << " participant(s)\n";
  }
  for (const RegionDecl& r : graph.regions) {
    os << "  region '" << r.name << "': " << r.bytes.str() << " B";
    if (r.pinned_addr >= 0) os << " at " << r.pinned_addr;
    os << "\n";
  }
  for (const RingDecl& r : graph.rings) {
    os << "  ring '" << r.name << "': " << r.slots.str()
       << " slot(s), issue-ahead " << r.issue_ahead.str() << ", credits "
       << r.credit_depth.str() << ", reads [" << r.read_lo << ", "
       << r.read_hi << "], " << (r.continuous ? "continuous" : "per-column")
       << " over " << r.columns.str() << " column(s)";
    if (!r.boundary_extra.is_zero()) {
      os << ", boundary extra " << r.boundary_extra.str();
    }
    os << "\n";
  }
  for (const KernelModel& k : graph.kernels) {
    os << "  kernel '" << k.name << "' (kind " << k.kind << ", "
       << k.instances.str() << " instance(s)):\n";
    for (const Op& op : k.ops) {
      os << "    " << to_string(op.kind);
      if (op.id >= 0) os << "(" << op.id << ")";
      os << " x " << op.count.str();
      if (op.pages != 1) os << ", " << op.pages << " page(s)";
      if (op.kind == OpKind::kSemPost && op.peer != Peer::kSelf) {
        os << " -> " << to_string(op.peer);
      }
      os << to_string(op.guard);
      if (op.iter_delta != 0) os << " [iter " << op.iter_delta << "]";
      if (!op.note.empty()) os << "  ; " << op.note;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace ttsim::ir
