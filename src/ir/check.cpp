#include "ttsim/ir/check.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ttsim::ir {

namespace {

using verify::LintError;

/// The symbolic/eval hybrid prover. Symbolic sign proofs (all coefficients
/// one-signed) decide most obligations for every trip count at once; the
/// rest are swept over the graph's declared symbol ranges and bindings.
class Prover {
 public:
  explicit Prover(const Graph& g) : g_(g) {}

  /// d >= 0 for every supported assignment?
  bool nonnegative(const Count& d) const {
    if (d.always_nonnegative()) return true;
    if (d.always_nonpositive()) return d.is_zero();
    for (const auto& a : assignments(d)) {
      if (d.eval(a) < 0) return false;
    }
    return true;
  }

  /// d == 0 for every supported assignment?
  bool zero(const Count& d) const {
    if (d.is_zero()) return true;
    if (d.always_nonnegative() || d.always_nonpositive()) return false;
    for (const auto& a : assignments(d)) {
      if (d.eval(a) != 0) return false;
    }
    return true;
  }

  /// Can d be > 0 for some supported assignment?
  bool can_be_positive(const Count& d) const {
    if (d.is_zero()) return false;
    if (d.always_nonpositive()) return false;
    if (d.always_nonnegative()) return true;  // nonzero with >= 0 everywhere
    for (const auto& a : assignments(d)) {
      if (d.eval(a) > 0) return true;
    }
    return false;
  }

  /// A witness assignment with d(a) < 0, for diagnostics; empty if the
  /// failure is symbol-free.
  std::string negative_witness(const Count& d) const {
    for (const auto& a : assignments(d)) {
      if (d.eval(a) < 0) {
        std::string s;
        for (const auto& [k, v] : a) {
          if (!s.empty()) s += ", ";
          s += k + "=" + std::to_string(v);
        }
        return s;
      }
    }
    return "";
  }

 private:
  std::vector<std::map<std::string, std::int64_t>> assignments(
      const Count& d) const {
    const std::vector<std::string> syms = d.symbols();
    std::vector<std::map<std::string, std::int64_t>> out;
    out.emplace_back();
    for (const std::string& s : syms) {
      std::vector<std::int64_t> values;
      const auto r = g_.ranges.find(s);
      const auto b = g_.bindings.find(s);
      if (r != g_.ranges.end()) {
        const auto [lo, hi] = r->second;
        if (hi - lo <= 16) {
          for (std::int64_t v = lo; v <= hi; ++v) values.push_back(v);
        } else {
          values = {lo, lo + 1, lo + 2, (lo + hi) / 2, hi - 1, hi};
        }
      } else if (b != g_.bindings.end()) {
        values = {b->second};
      } else {
        values = {1, 2, 3, 7};  // unbound trip count: a few representatives
      }
      std::vector<std::map<std::string, std::int64_t>> next;
      for (const auto& partial : out) {
        for (const std::int64_t v : values) {
          next.push_back(partial);
          next.back()[s] = v;
          if (next.size() > 4096) break;  // cap the sweep
        }
        if (next.size() > 4096) break;
      }
      out = std::move(next);
    }
    return out;
  }

  const Graph& g_;
};

bool guard_holds(Guard guard, std::int64_t pos, std::int64_t ncores) {
  switch (guard) {
    case Guard::kAlways: return true;
    case Guard::kHasUpper: return pos > 0;
    case Guard::kHasLower: return pos < ncores - 1;
  }
  return true;
}

class Checker {
 public:
  explicit Checker(const Graph& g) : g_(g), prover_(g) {}

  std::vector<LintError> run() {
    check_cbs();
    check_semaphores();
    check_barriers();
    check_regions();
    check_rings();
    check_wait_cycles();
    return std::move(errors_);
  }

 private:
  void add(LintError::Code code, int id, const std::string& message) {
    errors_.push_back(LintError{code, -1, id, message});
  }

  // ---- family 1: CB credit flow --------------------------------------

  void check_cbs() {
    for (const CbDecl& cb : g_.cbs) {
      Count push_total, pop_total, wait_total;
      bool referenced = false;
      for (const KernelModel& k : g_.kernels) {
        Count reserve_k, push_k;
        for (const Op& op : k.ops) {
          if (op.id != cb.id) continue;
          const Count total = op.count * Count(op.pages);
          switch (op.kind) {
            case OpKind::kCbReserve: reserve_k += total; break;
            case OpKind::kCbPush: push_k += total; break;
            case OpKind::kCbWait: wait_total += total; break;
            case OpKind::kCbPop: pop_total += total; break;
            default: continue;
          }
          referenced = true;
          // A single reserve/wait must fit in the buffer at all.
          if ((op.kind == OpKind::kCbReserve || op.kind == OpKind::kCbWait) &&
              !prover_.nonnegative(cb.pages - Count(op.pages))) {
            std::ostringstream os;
            os << g_.name << ": kernel '" << k.name << "' "
               << (op.kind == OpKind::kCbReserve ? "reserves" : "waits for")
               << " " << op.pages << " page(s) of " << cb.name << " (CB "
               << cb.id << "), which only holds " << cb.pages.str()
               << " — the call can never be satisfied";
            add(LintError::Code::kCbOvercommit, cb.id, os.str());
          }
        }
        // Producer discipline: every reserved page is pushed (and vice
        // versa) for every trip count, else pages leak or pushes block.
        if (!prover_.zero(reserve_k - push_k)) {
          std::ostringstream os;
          os << g_.name << ": kernel '" << k.name << "' reserves "
             << reserve_k.str() << " but pushes " << push_k.str()
             << " page(s) of " << cb.name << " (CB " << cb.id
             << ") — reserve/push totals must match for all trip counts";
          add(LintError::Code::kCbCreditImbalance, cb.id, os.str());
        }
        push_total += push_k;
      }
      if (!referenced) continue;  // address-alias CBs carry no protocol ops
      // Consumers can never pop more than producers push...
      if (!prover_.nonnegative(push_total - pop_total)) {
        std::ostringstream os;
        os << g_.name << ": " << cb.name << " (CB " << cb.id << ") is popped "
           << pop_total.str() << " but only pushed " << push_total.str()
           << " page(s) for some trip count (witness: "
           << prover_.negative_witness(push_total - pop_total)
           << ") — the consumer starves";
        add(LintError::Code::kCbCreditImbalance, cb.id, os.str());
      } else if (!prover_.nonnegative(cb.pages - (push_total - pop_total))) {
        // ...and the un-popped residue must fit, else the producer's final
        // pushes block forever.
        std::ostringstream os;
        os << g_.name << ": " << cb.name << " (CB " << cb.id << ") ends with "
           << (push_total - pop_total).str()
           << " un-popped page(s), more than its " << cb.pages.str()
           << "-page capacity — the producer wedges on its final push";
        add(LintError::Code::kCbCreditImbalance, cb.id, os.str());
      }
      // A waited-on CB nobody ever pushes starves its consumer outright.
      if (prover_.can_be_positive(wait_total) && push_total.is_zero()) {
        std::ostringstream os;
        os << g_.name << ": " << cb.name << " (CB " << cb.id << ") is waited "
           << "on (" << wait_total.str() << " page(s)) but never pushed";
        add(LintError::Code::kCbCreditImbalance, cb.id, os.str());
      }
    }
  }

  // ---- family 2: semaphore pairing -----------------------------------

  void check_semaphores() {
    const std::int64_t ncores = std::max<std::int64_t>(
        1, g_.ncores.eval(g_.bindings));
    for (const SemDecl& sem : g_.sems) {
      bool referenced = false;
      for (const KernelModel& k : g_.kernels) {
        for (const Op& op : k.ops) {
          if (op.id == sem.id &&
              (op.kind == OpKind::kSemWait || op.kind == OpKind::kSemPost)) {
            referenced = true;
          }
        }
      }
      if (!referenced) {
        std::ostringstream os;
        os << g_.name << ": " << sem.name << " (semaphore " << sem.id
           << ") is declared but no kernel ever waits on or posts it";
        add(LintError::Code::kOrphanSemaphore, sem.id, os.str());
        continue;
      }
      // Resolve posts per concrete position: a post with peer kUpper from
      // core q lands at q-1, etc.; guards gate on the *posting* core.
      // Guards only distinguish boundary cores, so first/middle/last
      // positions cover every distinct case.
      std::vector<std::int64_t> positions;
      if (ncores <= 6) {
        for (std::int64_t p = 0; p < ncores; ++p) positions.push_back(p);
      } else {
        positions = {0, 1, 2, ncores / 2, ncores - 3, ncores - 2, ncores - 1};
      }
      for (const std::int64_t p : positions) {
        Count available(sem.initial);
        Count waits;
        for (const KernelModel& k : g_.kernels) {
          for (const Op& op : k.ops) {
            if (op.id != sem.id) continue;
            if (op.kind == OpKind::kSemWait) {
              if (guard_holds(op.guard, p, ncores)) {
                waits += op.count * Count(op.pages);
              }
            } else if (op.kind == OpKind::kSemPost) {
              std::int64_t q = p;  // posting core whose target is p
              if (op.peer == Peer::kUpper) q = p + 1;
              if (op.peer == Peer::kLower) q = p - 1;
              if (q < 0 || q >= ncores) continue;
              if (guard_holds(op.guard, q, ncores)) {
                available += op.count * Count(op.pages);
              }
            }
          }
        }
        const Count deficit = available - waits;
        if (!prover_.nonnegative(deficit)) {
          std::ostringstream os;
          os << g_.name << ": core " << p << " waits on " << sem.name
             << " (semaphore " << sem.id << ") " << waits.str()
             << " time(s), but only " << available.str()
             << " post(s) (incl. initial " << sem.initial
             << ") can ever arrive — the last wait hangs";
          add(LintError::Code::kSemImbalance, sem.id, os.str());
          break;  // one position witnesses the bug; don't repeat per core
        }
      }
    }
  }

  // ---- family 3: barrier participant arithmetic ----------------------

  void check_barriers() {
    for (const BarrierDecl& b : g_.barriers) {
      Count total_instances;
      std::vector<std::pair<const KernelModel*, Count>> arriving;
      for (const KernelModel& k : g_.kernels) {
        Count arrivals;
        for (const Op& op : k.ops) {
          if (op.kind == OpKind::kBarrierArrive && op.id == b.id) {
            arrivals += op.count;
          }
        }
        if (!arrivals.is_zero()) {
          arriving.emplace_back(&k, arrivals);
          total_instances += k.instances;
        }
      }
      if (arriving.empty()) {
        std::ostringstream os;
        os << g_.name << ": barrier " << b.id << " expects "
           << b.participants.str() << " participant(s) but no kernel ever "
           << "arrives — the rendezvous can never complete";
        add(LintError::Code::kBadBarrier, b.id, os.str());
        continue;
      }
      // Every round must see exactly `participants` arrivals: all arriving
      // kernels agree on a per-instance round count, and their instance
      // total matches the declaration.
      for (std::size_t i = 1; i < arriving.size(); ++i) {
        if (!prover_.zero(arriving[i].second - arriving[0].second)) {
          std::ostringstream os;
          os << g_.name << ": barrier " << b.id << ": kernel '"
             << arriving[0].first->name << "' arrives "
             << arriving[0].second.str() << " time(s) per instance but '"
             << arriving[i].first->name << "' arrives "
             << arriving[i].second.str()
             << " — unequal round counts deadlock the rendezvous";
          add(LintError::Code::kBadBarrier, b.id, os.str());
        }
      }
      if (!prover_.zero(total_instances - b.participants)) {
        std::ostringstream os;
        os << g_.name << ": barrier " << b.id << " declares "
           << b.participants.str() << " participant(s) but "
           << total_instances.str() << " kernel instance(s) arrive";
        add(LintError::Code::kBadBarrier, b.id, os.str());
      }
    }
  }

  // ---- family 4: SRAM region liveness --------------------------------

  void check_regions() {
    if (g_.regions.empty()) return;
    // Mirror Program::plan_allocate's bump allocator over every supported
    // symbol assignment; pinned regions sit where the graph says.
    Count all_bytes;
    for (const RegionDecl& r : g_.regions) all_bytes += r.bytes;
    std::vector<std::map<std::string, std::int64_t>> sweep;
    {
      const std::vector<std::string> syms = all_bytes.symbols();
      std::map<std::string, std::int64_t> base = g_.bindings;
      sweep.push_back(base);
      for (const std::string& s : syms) {
        const auto r = g_.ranges.find(s);
        if (r == g_.ranges.end()) continue;
        std::vector<std::map<std::string, std::int64_t>> next;
        for (auto partial : sweep) {
          for (std::int64_t v = r->second.first; v <= r->second.second; ++v) {
            partial[s] = v;
            next.push_back(partial);
            if (next.size() > 1024) break;
          }
          if (next.size() > 1024) break;
        }
        sweep = std::move(next);
      }
    }
    std::set<std::pair<std::size_t, std::size_t>> reported_overlap;
    std::set<std::size_t> reported_overflow;
    for (const auto& a : sweep) {
      struct Placed {
        std::int64_t lo, hi;
        std::size_t index;
      };
      std::vector<Placed> placed;
      std::int64_t cursor = 0;
      constexpr std::int64_t kAlign = 32;  // Program::plan_allocate's align

      for (std::size_t i = 0; i < g_.regions.size(); ++i) {
        const RegionDecl& r = g_.regions[i];
        const std::int64_t bytes = std::max<std::int64_t>(0, r.bytes.eval(a));
        const std::int64_t lo = r.pinned_addr >= 0 ? r.pinned_addr : cursor;
        const std::int64_t hi = lo + bytes;
        placed.push_back({lo, hi, i});
        cursor = std::max(cursor, (hi + kAlign - 1) / kAlign * kAlign);
        if (g_.sram_bytes > 0 && hi > g_.sram_bytes &&
            reported_overflow.insert(i).second) {
          std::ostringstream os;
          os << g_.name << ": region '" << r.name << "' spans [" << lo << ", "
             << hi << "), past the " << g_.sram_bytes << " B of core SRAM"
             << witness_suffix(a);
          add(LintError::Code::kSramOverflow, -1, os.str());
        }
      }
      std::sort(placed.begin(), placed.end(),
                [](const Placed& x, const Placed& y) { return x.lo < y.lo; });
      for (std::size_t i = 1; i < placed.size(); ++i) {
        const Placed& prev = placed[i - 1];
        const Placed& cur = placed[i];
        if (cur.lo < prev.hi &&
            reported_overlap
                .insert({std::min(prev.index, cur.index),
                         std::max(prev.index, cur.index)})
                .second) {
          std::ostringstream os;
          os << g_.name << ": regions '" << g_.regions[prev.index].name
             << "' and '" << g_.regions[cur.index].name << "' overlap (["
             << prev.lo << ", " << prev.hi << ") vs [" << cur.lo << ", "
             << cur.hi << "))" << witness_suffix(a);
          add(LintError::Code::kBufferOverlap, -1, os.str());
        }
      }
    }
  }

  static std::string witness_suffix(
      const std::map<std::string, std::int64_t>& a) {
    if (a.empty()) return "";
    std::string s;
    for (const auto& [k, v] : a) {
      if (!s.empty()) s += ", ";
      s += k + "=" + std::to_string(v);
    }
    return " at " + s;
  }

  // ---- family 5: slot-ring reuse distance ----------------------------

  void check_rings() {
    for (std::size_t i = 0; i < g_.rings.size(); ++i) {
      const RingDecl& ring = g_.rings[i];
      if (!ring.continuous) {
        // Per-column rotation reset: batches issued ahead at the end of
        // one column are still in flight (credit_depth > 0) when the next
        // column's prologue rewrites slot 0 — the pre-fix PR 3 pattern.
        // Safe only when nothing is in flight or there is a single column.
        if (prover_.can_be_positive(ring.credit_depth) &&
            prover_.can_be_positive(ring.columns - Count(1))) {
          std::ostringstream os;
          os << g_.name << ": ring '" << ring.name
             << "' resets its rotation per column with " << ring.credit_depth.str()
             << " issued batch(es) still in flight across the boundary — the "
             << "next column's prologue rewrites slots an unconsumed batch "
             << "still reads (pre-fix PR 3 prologue pattern)";
          add(LintError::Code::kSlotReuse, static_cast<int>(i), os.str());
          continue;
        }
      }
      // Continuous rotation: when batch j is being consumed, the reader
      // may have issued up to batch j + issue_ahead, and credit_depth
      // batches may sit issued-but-unconsumed; the consumer still reads
      // down to slot j + read_lo. All of those slots must be distinct
      // modulo the ring, for every depth:
      //   slots >= issue_ahead + credit_depth - read_lo + 1 + boundary_extra
      const Count required = ring.issue_ahead + ring.credit_depth +
                             Count(-ring.read_lo) + Count(1) +
                             ring.boundary_extra;
      const Count margin = ring.slots - required;
      if (!prover_.nonnegative(margin)) {
        std::ostringstream os;
        os << g_.name << ": ring '" << ring.name << "' has " << ring.slots.str()
           << " slot(s) but needs " << required.str() << " (issue-ahead "
           << ring.issue_ahead.str() << " + in-flight credits "
           << ring.credit_depth.str() << " + trailing reads to offset "
           << ring.read_lo << " + boundary extra " << ring.boundary_extra.str()
           << ")";
        const std::string w = prover_.negative_witness(margin);
        if (!w.empty()) {
          os << " — violated at " << w;
        } else {
          os << " — violated at every depth";
        }
        os << "; a slot is rewritten while an in-flight batch can still read "
              "it";
        add(LintError::Code::kSlotReuse, static_cast<int>(i), os.str());
      }
    }
  }

  // ---- family 6: static wait-for cycles ------------------------------

  void check_wait_cycles() {
    // Nodes: blocking ops. Edges: waiter -> the blocking op that gates the
    // enabling event (push/pop/post/arrive) in the providing kernel, with
    // slack = credits available before any provider action (CB capacity
    // for reserve->pop, semaphore initial + cross-iteration delta for
    // waits). Positive-slack edges can't participate in a deadlock at
    // rest, so only the zero-slack subgraph is searched for cycles.
    struct Node {
      std::size_t kernel, op;
    };
    std::vector<Node> nodes;
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> node_of;
    auto is_blocking = [](const Op& op) {
      return op.kind == OpKind::kCbWait || op.kind == OpKind::kCbReserve ||
             op.kind == OpKind::kSemWait || op.kind == OpKind::kBarrierArrive;
    };
    for (std::size_t k = 0; k < g_.kernels.size(); ++k) {
      for (std::size_t o = 0; o < g_.kernels[k].ops.size(); ++o) {
        if (is_blocking(g_.kernels[k].ops[o])) {
          node_of[{k, o}] = nodes.size();
          nodes.push_back({k, o});
        }
      }
    }
    // Nearest blocking op at or before position o in kernel k; -1 if the
    // event is reachable unconditionally.
    auto gate_before = [&](std::size_t k, std::size_t o) -> int {
      for (std::size_t j = o + 1; j-- > 0;) {
        if (is_blocking(g_.kernels[k].ops[j])) {
          return static_cast<int>(node_of[{k, j}]);
        }
      }
      return -1;
    };
    std::vector<std::vector<std::size_t>> edges(nodes.size());
    auto cb_capacity = [&](int id) -> std::int64_t {
      for (const CbDecl& cb : g_.cbs) {
        if (cb.id == id) return std::max<std::int64_t>(0, cb.pages.eval(g_.bindings));
      }
      return 0;
    };
    auto sem_initial = [&](int id) -> std::int64_t {
      for (const SemDecl& sem : g_.sems) {
        if (sem.id == id) return sem.initial;
      }
      return 0;
    };
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      const std::size_t k = nodes[n].kernel;
      const Op& op = g_.kernels[k].ops[nodes[n].op];
      const std::int64_t iter_slack = op.iter_delta < 0 ? -op.iter_delta : 0;
      for (std::size_t j = 0; j < g_.kernels.size(); ++j) {
        for (std::size_t o = 0; o < g_.kernels[j].ops.size(); ++o) {
          const Op& ev = g_.kernels[j].ops[o];
          std::int64_t slack = -1;  // -1 = not an enabling event
          if (op.kind == OpKind::kCbWait && ev.kind == OpKind::kCbPush &&
              ev.id == op.id && j != k) {
            slack = iter_slack;
          } else if (op.kind == OpKind::kCbReserve &&
                     ev.kind == OpKind::kCbPop && ev.id == op.id && j != k) {
            // The whole buffer is free before anyone pops.
            slack = cb_capacity(op.id) + iter_slack;
          } else if (op.kind == OpKind::kSemWait &&
                     ev.kind == OpKind::kSemPost && ev.id == op.id) {
            slack = sem_initial(op.id) + iter_slack;
          } else if (op.kind == OpKind::kBarrierArrive &&
                     ev.kind == OpKind::kBarrierArrive && ev.id == op.id &&
                     j != k) {
            slack = 0;
          }
          if (slack != 0) continue;  // absent or positive slack: no edge
          // A barrier completes once every peer *reaches* its arrive, so
          // the dependency is on the gate strictly before the peer's
          // arrive, not on the arrive's own completion (which would make
          // every barrier a trivial false cycle).
          const int gate = ev.kind == OpKind::kBarrierArrive
                               ? (o == 0 ? -1 : gate_before(j, o - 1))
                               : gate_before(j, o);
          if (gate >= 0 && static_cast<std::size_t>(gate) != n) {
            edges[n].push_back(static_cast<std::size_t>(gate));
          }
        }
      }
    }
    // DFS for a cycle in the zero-slack graph.
    std::vector<int> color(nodes.size(), 0);  // 0 white, 1 grey, 2 black
    std::vector<std::size_t> stack;
    std::vector<std::size_t> cycle;
    std::function<bool(std::size_t)> dfs = [&](std::size_t n) -> bool {
      color[n] = 1;
      stack.push_back(n);
      for (const std::size_t m : edges[n]) {
        if (color[m] == 1) {
          const auto it = std::find(stack.begin(), stack.end(), m);
          cycle.assign(it, stack.end());
          return true;
        }
        if (color[m] == 0 && dfs(m)) return true;
      }
      color[n] = 2;
      stack.pop_back();
      return false;
    };
    for (std::size_t n = 0; n < nodes.size() && cycle.empty(); ++n) {
      if (color[n] == 0) dfs(n);
    }
    if (!cycle.empty()) {
      std::ostringstream os;
      os << g_.name << ": static wait-for cycle with no initial credit: ";
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        const Node& nd = nodes[cycle[i]];
        const Op& op = g_.kernels[nd.kernel].ops[nd.op];
        if (i != 0) os << " -> ";
        os << g_.kernels[nd.kernel].name << ":" << to_string(op.kind) << "("
           << op.id << ")";
      }
      os << " — every participant needs another to move first";
      add(LintError::Code::kWaitCycle, -1, os.str());
    }
  }

  const Graph& g_;
  Prover prover_;
  std::vector<LintError> errors_;
};

}  // namespace

std::vector<verify::LintError> check(const Graph& graph) {
  return Checker(graph).run();
}

}  // namespace ttsim::ir
