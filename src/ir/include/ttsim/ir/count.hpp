#pragma once
/// \file count.hpp
/// Symbolic operation counts for the dataflow IR's protocol checker.
///
/// A Count is a polynomial with integer coefficients over named symbols
/// ("iters", "batches", "depth", ...), kept in a canonical normal form
/// (sorted symbol multiset -> coefficient). Two counts are equal for ALL
/// symbol assignments iff their normal forms are identical, which is what
/// lets the checker prove credit-flow balance "for all loop trip counts"
/// instead of for the one shape a dynamic run observes. Symbols stand for
/// nonnegative loop trip counts, so a polynomial whose coefficients are all
/// >= 0 (or all <= 0) has a known sign everywhere; mixed-sign differences
/// fall back to evaluation over the graph's declared symbol ranges.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ttsim::ir {

class Count {
 public:
  Count() = default;
  Count(std::int64_t constant) {  // NOLINT(google-explicit-constructor)
    if (constant != 0) terms_[{}] = constant;
  }
  /// The symbol `name` as a count (coefficient 1).
  static Count sym(const std::string& name) {
    Count c;
    c.terms_[{name}] = 1;
    return c;
  }

  Count operator+(const Count& o) const {
    Count r = *this;
    for (const auto& [m, coeff] : o.terms_) r.accumulate(m, coeff);
    return r;
  }
  Count operator-(const Count& o) const {
    Count r = *this;
    for (const auto& [m, coeff] : o.terms_) r.accumulate(m, -coeff);
    return r;
  }
  Count operator*(const Count& o) const {
    Count r;
    for (const auto& [ma, ca] : terms_) {
      for (const auto& [mb, cb] : o.terms_) {
        std::vector<std::string> m = ma;
        m.insert(m.end(), mb.begin(), mb.end());
        std::sort(m.begin(), m.end());
        r.accumulate(m, ca * cb);
      }
    }
    return r;
  }
  Count& operator+=(const Count& o) { return *this = *this + o; }
  Count& operator-=(const Count& o) { return *this = *this - o; }

  bool operator==(const Count& o) const { return terms_ == o.terms_; }
  bool operator!=(const Count& o) const { return !(*this == o); }

  bool is_zero() const { return terms_.empty(); }
  /// Every coefficient >= 0: the count is >= 0 for every nonnegative
  /// assignment of its symbols.
  bool always_nonnegative() const {
    for (const auto& [m, coeff] : terms_) {
      if (coeff < 0) return false;
    }
    return true;
  }
  /// Every coefficient <= 0: the count is <= 0 for every nonnegative
  /// assignment of its symbols.
  bool always_nonpositive() const {
    for (const auto& [m, coeff] : terms_) {
      if (coeff > 0) return false;
    }
    return true;
  }

  /// Evaluate with every symbol bound; unbound symbols evaluate as
  /// `default_value` (the checker binds the graph's concrete shape).
  std::int64_t eval(const std::map<std::string, std::int64_t>& bindings,
                    std::int64_t default_value = 1) const {
    std::int64_t total = 0;
    for (const auto& [m, coeff] : terms_) {
      std::int64_t prod = coeff;
      for (const std::string& s : m) {
        const auto it = bindings.find(s);
        prod *= it == bindings.end() ? default_value : it->second;
      }
      total += prod;
    }
    return total;
  }

  /// Symbols appearing in the polynomial, sorted and deduplicated.
  std::vector<std::string> symbols() const {
    std::vector<std::string> out;
    for (const auto& [m, coeff] : terms_) {
      for (const std::string& s : m) out.push_back(s);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Human-readable normal form, e.g. "2*depth + 3" or "iters*batches".
  std::string str() const {
    if (terms_.empty()) return "0";
    std::string out;
    for (const auto& [m, coeff] : terms_) {
      if (!out.empty()) out += coeff < 0 ? " - " : " + ";
      else if (coeff < 0) out += "-";
      const std::int64_t a = coeff < 0 ? -coeff : coeff;
      std::string body;
      for (const std::string& s : m) {
        if (!body.empty()) body += "*";
        body += s;
      }
      if (body.empty()) {
        out += std::to_string(a);
      } else {
        if (a != 1) out += std::to_string(a) + "*";
        out += body;
      }
    }
    return out;
  }

 private:
  void accumulate(const std::vector<std::string>& monomial, std::int64_t coeff) {
    const auto it = terms_.find(monomial);
    if (it == terms_.end()) {
      if (coeff != 0) terms_[monomial] = coeff;
    } else if ((it->second += coeff) == 0) {
      terms_.erase(it);
    }
  }

  /// Sorted symbol multiset -> coefficient; zero coefficients are erased so
  /// equality of maps is equality of polynomials.
  std::map<std::vector<std::string>, std::int64_t> terms_;
};

inline Count operator*(std::int64_t k, const Count& c) { return Count(k) * c; }

}  // namespace ttsim::ir
