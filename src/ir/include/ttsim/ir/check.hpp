#pragma once
/// \file check.hpp
/// The static protocol type-checker over the dataflow IR.
///
/// Six check families, each proving its property for ALL schedules and
/// ALL loop trip counts (symbolically where the polynomial's sign is
/// decided, by sweeping the graph's declared symbol ranges otherwise):
///
///  1. CB credit flow     -> cb-credit-imbalance / cb-overcommit
///  2. Semaphore pairing  -> sem-imbalance / orphan-semaphore
///  3. Barrier arithmetic -> bad-barrier
///  4. SRAM liveness      -> buffer-overlap / sram-overflow
///  5. Slot-ring reuse    -> slot-ring-reuse (the PR 3/PR 7 clobber class)
///  6. Wait-for cycles    -> wait-cycle
///
/// Findings reuse verify::LintError so ttsim_lint, tests, and the dynamic
/// detectors all speak one diagnostic vocabulary.

#include <vector>

#include "ttsim/ir/ir.hpp"
#include "ttsim/verify/lint.hpp"

namespace ttsim::ir {

/// Run all six families; returns every finding (empty = certified).
std::vector<verify::LintError> check(const Graph& graph);

}  // namespace ttsim::ir
