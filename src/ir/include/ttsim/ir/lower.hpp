#pragma once
/// \file lower.hpp
/// Lowering: static check, then emit the concrete ttmetal::Program.
///
/// lower() refuses to emit an ill-typed graph — it throws CheckError
/// carrying the findings, so nothing un-certified ever reaches a device.
/// dump() renders the graph (ops, counts, resources) as text for
/// `ttsim_lint --ir-dump` and debugging.

#include <stdexcept>
#include <string>
#include <vector>

#include "ttsim/ir/check.hpp"
#include "ttsim/ir/ir.hpp"

namespace ttsim::ttmetal {
class Program;
}

namespace ttsim::ir {

/// Thrown by lower() when the graph fails the static checker.
class CheckError : public std::runtime_error {
 public:
  CheckError(std::string what, std::vector<verify::LintError> findings_)
      : std::runtime_error(std::move(what)), findings(std::move(findings_)) {}
  std::vector<verify::LintError> findings;
};

/// Check the graph, then invoke its emit closure on `prog`. Throws
/// CheckError (with the findings) if the checker reports anything;
/// throws std::logic_error if the graph has no emit closure.
void lower(const Graph& graph, ttmetal::Program& prog);

/// Human-readable rendering of the graph: resources with capacities,
/// kernels with their op sequences and symbolic counts.
std::string dump(const Graph& graph);

}  // namespace ttsim::ir
