#pragma once
/// \file ir.hpp
/// The dataflow IR: a per-strategy protocol model of a stencil program.
///
/// A Graph describes, per kernel, the *protocol-relevant* operations in
/// program order — CB reserve/push/wait/pop, semaphore wait/post, barrier
/// arrivals, slot-ring writes/reads — each with a symbolic execution count
/// (see count.hpp), plus the declared resources they act on (CBs with page
/// capacities, semaphores with initial values, barriers with participant
/// counts, SRAM regions with extents, slot rings with reuse geometry).
/// High-level dataflow ops (read-region, halo-exchange, compute-tile,
/// write-region) group the protocol ops into the phases the paper's
/// kernels are built from; the checker consumes the protocol ops, the
/// dump consumes both.
///
/// The static checker (check.hpp) proves race/deadlock freedom over ALL
/// schedules and ALL loop trip counts from this model alone; the lowering
/// pass (lower.hpp) then emits the concrete ttmetal::Program via the
/// graph's emit closure. The closure is installed by the frontend
/// (src/core/ir_frontend.cpp) and invokes the existing hand-tuned builder
/// so the emitted program is bit-identical — the IR adds proof, not a
/// second code generator to keep in sync.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ttsim/ir/count.hpp"

namespace ttsim::ttmetal {
class Program;
}

namespace ttsim::ir {

enum class OpKind {
  // High-level dataflow ops (documentation + dump structure; the checker
  // reads through them to the protocol ops they carry).
  kReadRegion,    ///< DRAM -> L1 load of a field region
  kHaloExchange,  ///< NoC write of boundary rows to a neighbour core
  kComputeTile,   ///< FPU pass over one tile/chunk
  kWriteRegion,   ///< L1 -> DRAM store of a result region
  // Protocol ops — what the checker actually analyses.
  kCbReserve,     ///< cb_reserve_back(pages)
  kCbPush,        ///< cb_push_back(pages)
  kCbWait,        ///< cb_wait_front(pages)
  kCbPop,         ///< cb_pop_front(pages)
  kSemWait,       ///< noc_semaphore_wait-and-reset (consumes `pages` credits)
  kSemPost,       ///< noc_semaphore_inc at peer (adds `pages` credits)
  kBarrierArrive, ///< global barrier arrival
  kRingWrite,     ///< write one slot of a slot ring (issue side)
  kRingRead,      ///< read one slot of a slot ring (consume side)
};

const char* to_string(OpKind kind);

/// Which core a kSemPost targets, relative to the posting core's position
/// in the core list.
enum class Peer { kSelf, kUpper, kLower };

/// Predicate gating an op on the core's position: boundary cores skip
/// halo work.
enum class Guard { kAlways, kHasUpper, kHasLower };

struct Op {
  OpKind kind;
  int id = -1;        ///< cb/sem/barrier id, or ring index for kRing*
  Count count;        ///< how many times the op executes per kernel instance
  int pages = 1;      ///< pages per CB op / credits per sem op
  Peer peer = Peer::kSelf;      ///< kSemPost target
  Guard guard = Guard::kAlways; ///< position predicate
  /// For kSemWait / kCbWait: which producer iteration satisfies the k-th
  /// wait, relative to the waiter's own iteration k. -1 means "waits for
  /// iteration k-1's post" — that slack breaks would-be wait cycles.
  int iter_delta = 0;
  std::string note;   ///< free-form provenance for dumps/diagnostics

  Op(OpKind k, int id_, Count c, int pages_ = 1)
      : kind(k), id(id_), count(std::move(c)), pages(pages_) {}
};

/// One kernel (dm0 / dm1 / compute) with its protocol ops in program order.
struct KernelModel {
  std::string name;
  int kind = 0;        ///< ttmetal::KernelKind as int (0=dm0, 1=dm1, 2=compute)
  Count instances;     ///< how many cores run this kernel (usually ncores)
  std::vector<Op> ops; ///< program order matters for the wait-cycle check
};

struct CbDecl {
  int id;
  Count pages;          ///< capacity in pages (may be symbolic, e.g. depth)
  std::uint32_t page_size = 0;
  std::string name;
};

struct SemDecl {
  int id;
  std::int64_t initial = 0;
  std::string name;
};

struct BarrierDecl {
  int id;
  Count participants;  ///< declared rendezvous size (e.g. 2*ncores)
};

/// A named L1 region; regions are bump-allocated in declaration order from
/// address 0 unless pinned, mirroring Program::plan_allocate.
struct RegionDecl {
  std::string name;
  Count bytes;
  std::int64_t pinned_addr = -1;  ///< >= 0 places the region explicitly
};

/// A slot ring: N reusable L1 slots written round-robin by a reader with
/// bounded read-ahead and consumed by compute. The reuse-distance check
/// proves slot j is never rewritten while an in-flight batch can still
/// read it (the PR 3 / PR 7 clobber class).
struct RingDecl {
  std::string name;
  Count slots;           ///< ring capacity in slots
  Count issue_ahead;     ///< reader runs at most this many batches ahead
  Count credit_depth;    ///< CB credits covering issued-but-unconsumed batches
  int read_lo = 0;       ///< lowest slot offset a consuming batch reads
  int read_hi = 0;       ///< highest slot offset a consuming batch reads
  /// Extra live slots at column boundaries (0 when the builder clamps
  /// issue ahead across columns, as the fixed rowchunk reader does).
  Count boundary_extra;
  bool continuous = true; ///< rotation carries across columns (vs reset)
  Count columns = Count(1);
};

struct Graph {
  std::string name;
  Count ncores;  ///< usually the symbol "ncores"
  /// Concrete values for this instantiation's symbols (used for guard
  /// resolution, position enumeration, and eval fallback).
  std::map<std::string, std::int64_t> bindings;
  /// Declared [lo, hi] ranges for symbols (eval fallback sweeps these in
  /// addition to bindings; e.g. depth in [2, 8]).
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> ranges;

  std::vector<CbDecl> cbs;
  std::vector<SemDecl> sems;
  std::vector<BarrierDecl> barriers;
  std::vector<RegionDecl> regions;
  std::vector<RingDecl> rings;
  std::vector<KernelModel> kernels;

  std::int64_t sram_bytes = 0;  ///< per-core L1 budget for region liveness

  /// Emits the concrete program. Installed by the frontend; invokes the
  /// existing hand-wired builder so lowering is bit-identical to it.
  std::function<void(ttmetal::Program&)> emit;
};

}  // namespace ttsim::ir
