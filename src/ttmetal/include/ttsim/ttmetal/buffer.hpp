#pragma once
/// \file buffer.hpp
/// Device DRAM buffers. A buffer is either placed wholly in one DRAM bank
/// (the paper's default: "we have allocated DRAM all in a single bank") or
/// page-interleaved across the eight banks (Section V, Table VI).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ttsim/common/units.hpp"

namespace ttsim::ttmetal {

class Device;

enum class BufferLayout {
  kSingleBank,   ///< contiguous in one bank
  kInterleaved,  ///< tt-metal pages (<= 64 KiB) cycled round-robin over banks
  kStriped,      ///< coarse stripes over banks (per-core slab placement):
                 ///< spreads bandwidth without per-page DMA dispatch overhead
};

struct BufferConfig {
  std::uint64_t size = 0;       ///< bytes
  BufferLayout layout = BufferLayout::kSingleBank;
  int bank = -1;                ///< single-bank: fixed bank, or -1 = allocator picks
  std::uint64_t page_size = 4 * KiB;  ///< interleaved page / stripe size;
                                      ///< kStriped with 0 = size/num_banks
  /// kStriped only: place stripes round-robin over banks instead of the
  /// default allocator-order hash (which lands unevenly, like real per-core
  /// slab allocation does). Off by default — the hashed placement is what
  /// every paper-comparison table measures.
  bool balanced_stripes = false;
  /// Optional debug name, surfaced in transfer argument-validation errors so
  /// a failure names which buffer it hit once multiple queues are in flight.
  std::string name;
};

/// A DRAM allocation on one device. Host access goes through the command
/// queue (PCIe); device kernels address it by `address()` via the NoC.
class Buffer {
 public:
  ~Buffer();
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::uint64_t address() const { return address_; }
  std::uint64_t size() const { return config_.size; }
  const BufferConfig& config() const { return config_; }
  /// Debug name from BufferConfig::name, or "<unnamed>".
  const std::string& name() const {
    static const std::string kUnnamed = "<unnamed>";
    return config_.name.empty() ? kUnnamed : config_.name;
  }
  /// Bank holding the buffer (single-bank layout only).
  int bank() const { return bank_; }

 private:
  friend class Device;
  Buffer(Device& device, const BufferConfig& config, std::uint64_t address, int bank);

  Device& device_;
  BufferConfig config_;
  std::uint64_t address_;
  int bank_;
  std::vector<std::byte> storage_;
};

}  // namespace ttsim::ttmetal
