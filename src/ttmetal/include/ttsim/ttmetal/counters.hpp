#pragma once
/// \file counters.hpp
/// Scoped diff helpers for the Device's cumulative counters. pcie_time() and
/// transfer_retries() only ever grow; measuring a region of interest used to
/// mean hand-rolled before/after subtraction at every call site. These
/// scopes capture the baseline at construction and report the delta.
///
///   ttmetal::PcieScope pcie(dev);
///   ttmetal::RetryScope retries(dev);
///   ... transfers ...
///   report(pcie.elapsed(), retries.count());

#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {

/// Simulated PCIe wall time spent since construction.
class PcieScope {
 public:
  explicit PcieScope(Device& device) : device_(device), start_(device.pcie_time()) {}
  /// Delta so far (the device keeps counting; call as often as needed).
  SimTime elapsed() const { return device_.pcie_time() - start_; }
  /// Re-baseline to now.
  void reset() { start_ = device_.pcie_time(); }

 private:
  Device& device_;
  SimTime start_;
};

/// Checksummed-transfer retries taken since construction.
class RetryScope {
 public:
  explicit RetryScope(Device& device)
      : device_(device), start_(device.transfer_retries()) {}
  std::uint64_t count() const { return device_.transfer_retries() - start_; }
  void reset() { start_ = device_.transfer_retries(); }

 private:
  Device& device_;
  std::uint64_t start_;
};

}  // namespace ttsim::ttmetal
