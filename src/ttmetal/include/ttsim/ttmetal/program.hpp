#pragma once
/// \file program.hpp
/// A Program collects per-core configuration (circular buffers, semaphores,
/// L1 scratch buffers) and kernels (two data movers + one compute kernel per
/// core, mirroring the Tensix baby cores) for one launch on a Device.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ttsim/ttmetal/kernel_ctx.hpp"
#include "ttsim/verify/lint.hpp"

namespace ttsim::ttmetal {

using DataMoverFn = std::function<void(DataMoverCtx&)>;
using ComputeFn = std::function<void(ComputeCtx&)>;

enum class KernelKind {
  kDataMover0,  ///< RISCV_0, NoC 0 — conventionally reads data in
  kDataMover1,  ///< RISCV_1, NoC 1 — conventionally writes data out
  kCompute,     ///< unpack/math/pack trio, one logical kernel
};

using KernelHandle = int;
using L1BufferHandle = int;

class Program {
 public:
  Program() = default;

  /// Configure a circular buffer on every core in `cores`. L1 addresses are
  /// assigned deterministically in creation order (identical on all cores).
  void create_cb(int cb_id, const std::vector<int>& cores, std::uint32_t page_size,
                 std::uint32_t num_pages);

  /// Configure an inter-baby-core semaphore on every core in `cores`.
  void create_semaphore(int sem_id, const std::vector<int>& cores, std::int64_t initial);

  /// Configure a device-wide barrier: `participants` kernel processes call
  /// KernelCtxBase::global_barrier(barrier_id) to rendezvous. On hardware
  /// this is built from NoC multicast semaphores; the simulator charges one
  /// NoC round-trip per arrival.
  void create_global_barrier(int barrier_id, int participants);

  /// Reserve a raw L1 scratch buffer on every core in `cores`; its L1
  /// address (same on every core) is available immediately for runtime args.
  L1BufferHandle create_l1_buffer(const std::vector<int>& cores, std::uint32_t size,
                                  std::uint32_t align = 32);
  std::uint32_t l1_buffer_address(L1BufferHandle h) const;

  KernelHandle create_kernel(KernelKind kind, const std::vector<int>& cores,
                             DataMoverFn fn, std::string name = {});
  KernelHandle create_kernel(const std::vector<int>& cores, ComputeFn fn,
                             std::string name = {});

  /// Per-core runtime args (uint32 slots, as in tt-metal). `core` must be in
  /// the kernel's core list.
  void set_runtime_args(KernelHandle kernel, int core, std::vector<std::uint32_t> args);
  /// Same args for every core of the kernel.
  void set_common_runtime_args(KernelHandle kernel, std::vector<std::uint32_t> args);

  /// Helper: append a 64-bit value as two uint32 slots (lo, hi).
  static void push_arg64(std::vector<std::uint32_t>& args, std::uint64_t v) {
    args.push_back(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
    args.push_back(static_cast<std::uint32_t>(v >> 32));
  }

  /// Snapshot of every declaration for the static linter (verify/lint.hpp);
  /// pair with Device::verify_info() and verify::lint, or use
  /// Device::lint_program.
  verify::ProgramInfo verify_info() const;

 private:
  friend class Device;

  struct CbConfig {
    int cb_id;
    std::vector<int> cores;
    std::uint32_t page_size;
    std::uint32_t num_pages;
    std::uint32_t planned_address;
    std::size_t order;  ///< global creation order across CBs and L1 buffers
  };
  struct SemConfig {
    int sem_id;
    std::vector<int> cores;
    std::int64_t initial;
  };
  struct BarrierConfig {
    int barrier_id;
    int participants;
  };
  struct L1Config {
    std::vector<int> cores;
    std::uint32_t size;
    std::uint32_t align;
    std::uint32_t planned_address;
    std::size_t order;  ///< global creation order across CBs and L1 buffers
  };
  struct KernelConfig {
    KernelKind kind;
    std::vector<int> cores;
    DataMoverFn mover_fn;   // set for data movers
    ComputeFn compute_fn;   // set for compute
    std::string name;
    std::map<int, std::vector<std::uint32_t>> args;  // per core
    std::vector<std::uint32_t> common_args;
  };

  /// Mirrors sim::Sram's per-core bump allocator so L1 addresses are known
  /// before launch. The plan tracks one bump top per core: allocations on
  /// disjoint core groups (batched programs) restart at each group's own
  /// top, exactly as the real per-core SRAM allocators will at launch. The
  /// planned address is the aligned maximum over the core set's tops.
  std::uint32_t plan_allocate(const std::vector<int>& cores, std::uint32_t size,
                              std::uint32_t align);

  std::vector<CbConfig> cbs_;
  std::vector<SemConfig> semaphores_;
  std::vector<BarrierConfig> barriers_;
  std::vector<L1Config> l1_buffers_;
  std::vector<KernelConfig> kernels_;
  std::map<int, std::uint64_t> planned_tops_;  // per-core L1 bump mirror
  std::size_t next_order_ = 0;  // creation order shared by CBs and L1 buffers
};

}  // namespace ttsim::ttmetal
