#pragma once
/// \file command_queue.hpp
/// Asynchronous command queues, tt-metal style: EnqueueWriteBuffer /
/// EnqueueReadBuffer / EnqueueProgram with a blocking flag, Events for
/// cross-queue ordering, and Finish. Commands on one queue execute strictly
/// in order; commands on different queues of the same device overlap in
/// simulated time wherever the hardware allows (one PCIe bus, one program on
/// the cores at a time), so a transfer queue genuinely hides H2D/D2H time
/// behind a compute queue's kernels.
///
/// Everything runs on the device's deterministic discrete-event engine: the
/// queue machinery is a set of scheduler callbacks, never a thread, so the
/// same enqueue order always produces the same simulated timeline. The
/// blocking Device::write_buffer / read_buffer / run_program APIs are thin
/// wrappers over one enqueue + Finish on queue 0 and remain bit-identical to
/// the historical synchronous implementation (same traces, same times, same
/// error messages).
///
/// Lifetime: the caller keeps the Buffer (and, for reads, the destination
/// span; for programs, the Program) alive until the command completes —
/// i.e. until finish()/synchronize() returns. Write payloads are copied at
/// enqueue time and need not outlive the call.

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ttsim/common/units.hpp"

namespace ttsim::ttmetal {

class Buffer;
class CommandQueue;
class Device;
class Program;

/// A marker in a command queue's stream. Completed once every command
/// enqueued before record_event() has finished; other queues order against
/// it with wait_for_event(), the host with Device::synchronize().
class Event {
 public:
  Event() = default;

  bool valid() const { return state_ != nullptr; }
  bool completed() const { return valid() && state_->completed; }
  /// Simulated time the event completed at; ApiError unless completed().
  SimTime completed_at() const;

 private:
  friend class CommandQueue;
  friend class Device;
  struct State {
    Device* device = nullptr;
    bool completed = false;
    SimTime time = 0;
    std::vector<CommandQueue*> waiters;  // queues parked on wait_for_event
  };
  std::shared_ptr<State> state_;
};

/// One in-order command stream on a Device. Obtain via
/// Device::command_queue(id); queues are created on demand and live as long
/// as the device.
class CommandQueue {
 public:
  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  /// Copy `data` into buffer at `offset` (payload captured at enqueue).
  /// blocking = true waits for this queue to drain (enqueue + finish).
  void enqueue_write_buffer(Buffer& buffer, std::span<const std::byte> data,
                            bool blocking, std::uint64_t offset = 0);
  /// Read into `out` (which must stay alive until the command completes).
  void enqueue_read_buffer(Buffer& buffer, std::span<std::byte> out, bool blocking,
                           std::uint64_t offset = 0);
  /// Launch `program` once every earlier command on this queue has finished
  /// and the device's cores are free (programs from different queues
  /// serialise; transfers keep overlapping).
  void enqueue_program(Program& program, bool blocking);

  /// Insert a marker completing when all earlier commands have finished.
  Event record_event();
  /// Park this queue until `event` (recorded on any queue of the same
  /// device) completes.
  void wait_for_event(const Event& event);

  /// Drive the simulator until every command on this queue has completed.
  /// Rethrows errors from async commands (TransferError,
  /// DeviceTimeoutError, ...) exactly as the blocking APIs would.
  void finish();

  /// Drop every command that has not started executing (a started head — a
  /// transfer mid-air or a launched program — is left to run out). Parked
  /// event waits are unregistered from their events; record-event markers
  /// are discarded without completing (their Events stay incomplete
  /// forever). Returns how many commands were cancelled. This is the drain
  /// path for a wedged device: after a watchdog timeout the queued
  /// follow-ups can never run, and cancelling them lets the owner count and
  /// release the abandoned work instead of tripping over kWedgedRunError
  /// one command at a time.
  std::size_t cancel_pending();

  int id() const { return id_; }
  Device& device() { return device_; }
  /// Commands enqueued but not yet completed.
  std::size_t pending() const { return commands_.size(); }

 private:
  friend class Device;
  CommandQueue(Device& device, int id);

  struct Command {
    enum class Kind { kWrite, kRead, kProgram, kRecordEvent, kWaitEvent };
    Kind kind;
    bool started = false;     // async execution in flight
    bool registered = false;  // kWaitEvent: parked on the event's waiter list
    // Transfers.
    Buffer* buffer = nullptr;
    std::uint64_t offset = 0;
    std::vector<std::byte> data;  // write payload (copied at enqueue)
    std::span<std::byte> out;     // read destination (caller-owned)
    SimTime duration = 0;         // per-attempt PCIe time
    int attempt = 0;
    std::uint32_t sent_crc = 0;
    std::vector<std::byte> landed;  // write: as-landed bytes; read: device copy
    std::string first_fault;
    // Program.
    Program* program = nullptr;
    // Events.
    std::shared_ptr<Event::State> event;
  };

  /// Start / continue executing from the head; returns when the head is in
  /// flight (or parked on an event) or the queue is empty.
  void pump();
  /// Async completion: pop the head and pump the rest.
  void complete_head();

  // Transfer command chain (scheduler callbacks; see device.cpp for the
  // blocking original this replicates step for step).
  void start_transfer(Command& c);
  void transfer_attempt(Command& c);
  void transfer_landed(Command& c);
  void transfer_verify(Command& c);
  void finish_transfer(Command& c);

  // Program command chain.
  void start_program(Command& c);
  void begin_program(Command& c);

  Device& device_;
  int id_;
  std::deque<std::unique_ptr<Command>> commands_;
};

}  // namespace ttsim::ttmetal
