#pragma once
/// \file kernel_ctx.hpp
/// Device-kernel APIs in tt-metal style. Data mover kernels receive a
/// DataMoverCtx (NoC reads/writes, CB producer/consumer ops, L1 memcpy,
/// semaphores — paper Listings 3 & 4); compute kernels receive a ComputeCtx
/// (CB ops plus FPU tile operations — paper Listing 2 — and the paper's
/// Section VI cb_set_rd_ptr extension).
///
/// Local memory is addressed with 32-bit L1 addresses exactly as on the
/// hardware; get_write_ptr/get_read_ptr return L1 addresses into CB pages.

#include <cstdint>
#include <vector>

#include "ttsim/sim/tensix_core.hpp"

namespace ttsim::verify {
class Verifier;  // verify/race.hpp
}

namespace ttsim::ttmetal {

class Device;
struct KernelProfile;  // device.hpp

/// State shared by both kernel contexts on one core.
class KernelCtxBase {
 public:
  KernelCtxBase(Device& device, sim::TensixCore& core,
                std::vector<std::uint32_t> args, int position, int group_size);

  // --- runtime arguments (uint32 slots, as in tt-metal) ---
  std::uint32_t arg(std::size_t i) const;
  /// 64-bit argument occupying slots i (low) and i+1 (high).
  std::uint64_t arg64(std::size_t i) const;
  std::size_t arg_count() const { return args_.size(); }

  /// This kernel's index within its launch group, and the group size
  /// (host-side decomposition helpers).
  int position() const { return position_; }
  int group_size() const { return group_size_; }
  /// Physical worker id of the core this kernel runs on.
  int core_id() const { return core_.id(); }

  // --- circular buffers (both movers and compute use these) ---
  void cb_reserve_back(int cb_id, std::uint32_t pages);
  void cb_push_back(int cb_id, std::uint32_t pages);
  void cb_wait_front(int cb_id, std::uint32_t pages);
  void cb_pop_front(int cb_id, std::uint32_t pages);
  /// L1 address of the producer page `page_offset` pages past the write point.
  std::uint32_t get_write_ptr(int cb_id, std::uint32_t page_offset = 0);
  /// L1 address of the consumer front page.
  std::uint32_t get_read_ptr(int cb_id);

  // --- local SRAM ---
  std::byte* l1_ptr(std::uint32_t l1_addr);
  const std::byte* l1_ptr(std::uint32_t l1_addr) const;
  std::uint32_t l1_address_of(const std::byte* p) const;

  // --- semaphores (paper Fig. 3) ---
  void semaphore_post(int sem_id, std::int64_t n = 1);
  void semaphore_wait(int sem_id, std::int64_t n = 1);

  /// Rendezvous with every other participant of a device-wide barrier
  /// configured via Program::create_global_barrier (multi-core iteration
  /// synchronisation for the Section VII scaling runs).
  void global_barrier(int barrier_id);

  /// Charge per-iteration scalar bookkeeping (address arithmetic, loop
  /// control) — the simulator's stand-in for baby-core instruction time.
  void loop_tick();
  /// Explicit delay (diagnostics / failure-injection tests).
  void spin(SimTime dt);

  sim::TensixCore& core() { return core_; }
  Device& device() { return device_; }
  SimTime now() const;

  /// Simulated time this kernel actively spent executing charged operations
  /// (issue overheads, FPU ops, memcpys, loop ticks) — the remainder of its
  /// lifetime was stalling on CBs, semaphores, barriers or NoC completions.
  SimTime active_time() const { return active_; }
  /// FPU occupancy (tile math/pack); included in active_time().
  SimTime fpu_time() const { return fpu_busy_; }
  /// Time blocked inside cb_wait_front / cb_reserve_back; part of the
  /// non-active remainder.
  SimTime cb_wait_time() const { return cb_wait_; }

  /// Attach the Device-owned profile entry for live write-through, so a
  /// program that fails mid-run still has per-kernel activity recorded.
  void set_profile(KernelProfile* profile) { profile_ = profile; }

  /// Attach this kernel's launch identity: its process name (for the
  /// wait-for registry) and, when DeviceConfig::enable_verify is set, the
  /// race detector and this kernel's thread id. Called by Device at spawn,
  /// like set_profile.
  void set_identity(std::string name, verify::Verifier* verifier, int vtid) {
    kernel_name_ = std::move(name);
    verify_ = verifier;
    vtid_ = vtid;
  }

 protected:
  void charge(SimTime cost);
  /// If the fault plan killed this kernel's core, record the failure and
  /// park the kernel forever (it shows up as a stuck process to the
  /// watchdog / deadlock detector). Called from every charged operation.
  void maybe_halt();
  /// Account a blocked interval ending now as CB-wait stall.
  void note_cb_wait(SimTime waited);
  SimTime active_ = 0;
  SimTime fpu_busy_ = 0;
  SimTime cb_wait_ = 0;

  /// Record a kernel SRAM access with the race detector (no-op with verify
  /// off). Pure host bookkeeping — never charges, delays or schedules.
  void verify_read(std::uint32_t l1_addr, std::uint32_t size, const char* what);
  void verify_write(std::uint32_t l1_addr, std::uint32_t size, const char* what);
  /// Register this kernel in the device's wait-for registry as a poster of
  /// `sem_id` on `dst_core` (Device friendship does not extend to the
  /// derived mover context, hence the base-class forwarder).
  void note_remote_sem_post(int dst_core, int sem_id);

  Device& device_;
  sim::TensixCore& core_;
  std::vector<std::uint32_t> args_;
  int position_;
  int group_size_;
  KernelProfile* profile_ = nullptr;
  sim::TraceSink* trace_ = nullptr;  ///< device sink, nullptr when disabled
  std::string kernel_name_;          ///< process name ("<kernel>@<core>")
  verify::Verifier* verify_ = nullptr;  ///< nullptr unless enable_verify
  int vtid_ = -1;                       ///< detector thread id
};

/// API surface for the two data mover baby cores.
class DataMoverCtx : public KernelCtxBase {
 public:
  DataMoverCtx(Device& device, sim::TensixCore& core, int noc_id,
               std::vector<std::uint32_t> args, int position, int group_size);

  /// tt-metal's get_noc_addr: on real hardware combines the bank's NoC
  /// coordinates with the in-bank address. Our device addresses already
  /// identify the bank, so the coordinates are accepted for source
  /// compatibility and validated lazily.
  std::uint64_t get_noc_addr(std::uint64_t dram_addr) const { return dram_addr; }
  std::uint64_t get_noc_addr(std::uint32_t noc_x, std::uint32_t noc_y,
                             std::uint64_t dram_addr) const {
    (void)noc_x;
    (void)noc_y;
    return dram_addr;
  }

  /// Non-blocking DRAM -> L1 read (issue cost charged; completion counted
  /// towards noc_async_read_barrier).
  void noc_async_read(std::uint64_t noc_addr, std::uint32_t l1_dst, std::uint32_t size);
  /// Tagged read, in the style of Wormhole tt-metal's transaction-id reads:
  /// also counted towards the per-tag barrier below, so a deep-read-ahead
  /// mover can wait for one batch's reads without draining every later
  /// batch it already issued. Tags are small non-negative ints (slot ids).
  void noc_async_read(std::uint64_t noc_addr, std::uint32_t l1_dst, std::uint32_t size,
                      int tag);
  /// Non-blocking L1 -> DRAM write (source data captured at issue).
  void noc_async_write(std::uint32_t l1_src, std::uint64_t noc_addr, std::uint32_t size);
  /// Block until every issued read has landed in L1.
  void noc_async_read_barrier();
  /// Block until every read issued with `tag` has landed in L1.
  void noc_async_read_barrier(int tag);
  /// Block until every issued write has drained to DRAM.
  void noc_async_write_barrier();

  /// Baby-core software copy between L1 locations (the expensive operation
  /// the paper's Section V quantifies and Section VI eliminates).
  void l1_memcpy(std::uint32_t l1_dst, std::uint32_t l1_src, std::uint32_t size);

  /// Single scalar store into L1 (one baby-core instruction).
  void l1_store_u16(std::uint32_t l1_addr, std::uint16_t value);

  // --- direct core-to-core transfers (the paper's "direct neighbour to
  // neighbour communications" for SRAM-resident domains) ---

  /// Non-blocking unicast write from this core's L1 into another worker
  /// core's L1 over this mover's NoC; counted towards
  /// noc_async_write_barrier. Data is captured at issue.
  void noc_async_write_core(int dst_core, std::uint32_t dst_l1, std::uint32_t src_l1,
                            std::uint32_t size);

  /// Increment a semaphore on another core once this mover's earlier writes
  /// have been ordered onto the NoC (tt-metal's noc_semaphore_inc).
  void noc_semaphore_inc(int dst_core, int sem_id, std::int64_t n = 1);

  /// Aligned-read helper from the paper's Listing 4: reads [address,
  /// address+size) rounded down to the 256-bit boundary, storing at
  /// l1_buffer; returns the byte offset at which the wanted data starts.
  std::uint32_t read_data_aligned(std::uint64_t address, std::uint64_t starting_address,
                                  std::uint32_t size, std::uint32_t l1_buffer);

  std::uint64_t reads_issued() const { return reads_->issued_total(); }
  std::uint64_t writes_issued() const { return writes_->issued_total(); }

 private:
  /// Shared issue path for tagged and untagged reads; a null tag tracker
  /// means "untagged" (tag -1) and costs nothing extra (the global tracker
  /// is always charged, so untagged timing is bit-identical either way).
  void read_impl(std::uint64_t noc_addr, std::uint32_t l1_dst, std::uint32_t size,
                 std::shared_ptr<sim::CompletionTracker> tag_tracker, int tag);
  /// Lazily-created per-tag tracker (tags are dense small slot ids).
  const std::shared_ptr<sim::CompletionTracker>& read_tag(int tag);

  int noc_id_;
  int noc_track_ = -1;  // trace track for kNocTransfer events
  // Shared so in-flight completion callbacks outlive a kernel that returns
  // without a final barrier (the events still drain in the engine).
  std::shared_ptr<sim::CompletionTracker> reads_;
  std::shared_ptr<sim::CompletionTracker> writes_;
  std::vector<std::shared_ptr<sim::CompletionTracker>> read_tags_;
};

/// API surface for the (logically single) compute core driving the FPU.
class ComputeCtx : public KernelCtxBase {
 public:
  using KernelCtxBase::KernelCtxBase;

  // Initialisation stubs kept for tt-metal source compatibility.
  void binary_op_init_common(int, int) {}
  void add_tiles_init(int, int) {}
  void mul_tiles_init(int, int) {}
  void tile_regs_acquire() {}
  void tile_regs_commit() {}
  void tile_regs_wait() {}
  void tile_regs_release() {}

  /// dst = cb_a[tile ia] + cb_b[tile ib], elementwise over 1024 BF16 lanes.
  void add_tiles(int cb_a, int cb_b, std::uint32_t ia, std::uint32_t ib, int dst);
  void sub_tiles(int cb_a, int cb_b, std::uint32_t ia, std::uint32_t ib, int dst);
  void mul_tiles(int cb_a, int cb_b, std::uint32_t ia, std::uint32_t ib, int dst);
  void copy_tile(int cb, std::uint32_t idx, int dst);
  /// Pack dst register into the reserved producer page of `cb`.
  void pack_tile(int dst, int cb, std::uint32_t page_offset = 0);
  /// Elementwise |x| on a dst register (SFPU unary op).
  void abs_tile(int dst);
  /// Elementwise compare-to-scalar: dst[i] = (dst[i] == v) ? 1 : 0 (SFPU
  /// unary op; threshold transitions such as Game of Life).
  void eq_scalar_tile(int dst, bfloat16_t v);
  /// Reduce a dst register to its maximum lane (device-side residuals).
  bfloat16_t reduce_max(int dst);

  /// The paper's Section VI extension (added to tt-metal's cb_api.h /
  /// llk_set_read_ptr): repoint the consumer read pointer of `cb_id` at an
  /// arbitrary L1 address so FPU ops consume data in place. `valid_bytes`
  /// annotates how much of the aliased page carries meaningful data (FPU
  /// tile ops always fetch a full tile, but lanes past the chunk width are
  /// don't-care) — used by the race detector to bound the recorded read;
  /// 0 means the whole page. No effect on behaviour or timing.
  void cb_set_rd_ptr(int cb_id, std::uint32_t l1_addr, std::uint32_t valid_bytes = 0);

  /// Producer-side counterpart (the paper's API recommendation: CBs that
  /// alias local memory): pack_tile lands directly at `l1_addr` — used by
  /// the SRAM-resident solver to write results into the domain slab.
  void cb_set_wr_ptr(int cb_id, std::uint32_t l1_addr);

  /// Drop a read-pointer override before its page is handed to another
  /// consumer (pop also clears it).
  void cb_clear_rd_ptr(int cb_id);

 private:
  /// Run one FPU operation, measuring its simulated duration into the
  /// kernel's active/fpu_busy accounting (and the trace when enabled). The
  /// Fpu charges engine time directly, so the measurement brackets the call.
  template <typename Fn>
  void fpu_op(Fn&& fn);

  /// Record the SRAM read an FPU op performs on tile `idx` of `cb_id` with
  /// the race detector, clipped to the CB's read_valid_bytes() annotation
  /// (tile ops fetch a full tile but only that much is meaningful).
  void verify_tile_read(int cb_id, std::uint32_t idx, const char* what);
};

}  // namespace ttsim::ttmetal
