#pragma once
/// \file device.hpp
/// Host-side SDK entry point: open a (simulated) Grayskull e150, allocate
/// DRAM buffers, and launch programs. Mirrors tt-metal's Device +
/// CommandQueue in structure; all timing is simulated.
///
/// Resilience (DeviceConfig): the device can bound program execution with a
/// simulated-time watchdog (hangs become DeviceTimeoutError naming the stuck
/// kernels), verify every host<->device transfer with a CRC-32 exchange and
/// retry transient corruption with exponential backoff (exhaustion becomes
/// TransferError naming the original fault), and carry a deterministic
/// sim::FaultPlan that the simulator consults for fault injection.

#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>

#include "ttsim/common/error.hpp"
#include "ttsim/sim/fault.hpp"
#include "ttsim/sim/metrics.hpp"
#include "ttsim/sim/tensix_core.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/ttmetal/buffer.hpp"
#include "ttsim/ttmetal/command_queue.hpp"
#include "ttsim/ttmetal/program.hpp"
#include "ttsim/verify/deadlock.hpp"
#include "ttsim/verify/lint.hpp"
#include "ttsim/verify/race.hpp"

namespace ttsim::ttmetal {

namespace detail {
/// Rejection text for launching on a device whose cores are still held by a
/// timed-out program. Shared by the blocking wrapper (throws eagerly) and
/// the queued-program path (surfaces via finish()).
inline constexpr const char* kWedgedRunError =
    "run_program on a wedged device: an earlier program timed out and its "
    "kernels still hold cores; open a fresh Device (cores recorded as "
    "failed in the FaultPlan stay failed across the reopen)";
}  // namespace detail

/// Thrown by Device::run_program when the program exceeds
/// DeviceConfig::sim_time_limit; the message names every stuck kernel. The
/// device is wedged afterwards (the hung kernels still hold its cores): open
/// a fresh Device to continue — a failed core recorded in the FaultPlan
/// stays failed across the reopen. Retryable (SimError): a fresh generation
/// minus the dead cores usually completes the work.
class DeviceTimeoutError : public std::runtime_error, public SimError {
 public:
  using std::runtime_error::runtime_error;
  bool retryable() const noexcept override { return true; }
  const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Thrown when a checksummed transfer still mismatches after
/// DeviceConfig::transfer_max_retries retries; the message carries the first
/// injected fault that hit the transfer so post-mortems see the root cause.
/// Retryable (SimError): the exhaustion is of one bounded backoff window —
/// transient bus corruption may well spare a later re-attempt.
class TransferError : public std::runtime_error, public SimError {
 public:
  using std::runtime_error::runtime_error;
  bool retryable() const noexcept override { return true; }
  const char* what() const noexcept override { return std::runtime_error::what(); }
};

/// Host-side robustness knobs, fixed at Device::open time.
struct DeviceConfig {
  /// Watchdog: bound each run_program invocation in simulated time, measured
  /// from kernel start (dispatch excluded). 0 = unbounded (hangs surface as
  /// the engine's deadlock CheckError only when the event queue drains).
  SimTime sim_time_limit = 0;
  /// Verify every write_buffer/read_buffer with a CRC-32 exchange (one extra
  /// pcie_latency per transfer) and retry corrupted transfers.
  bool checksum_transfers = false;
  /// Bounded retry with exponential backoff: attempt k waits
  /// transfer_retry_backoff << k before re-transferring.
  int transfer_max_retries = 3;
  SimTime transfer_retry_backoff = 50 * kMicrosecond;
  /// Deterministic fault plan consulted by the DRAM model, the kernel layer
  /// and the PCIe path. Shared so a plan can span device generations.
  std::shared_ptr<sim::FaultPlan> fault_plan;
  /// Record a simulator-wide event trace (see sim/trace.hpp): kernel
  /// lifetimes, mover NoC traffic, CB occupancy/waits, DRAM bank activity,
  /// PCIe transfers and fault injections. Observationally neutral — results
  /// and simulated times are identical with tracing on or off — but costs
  /// host memory per event; leave off for long benchmark runs.
  bool enable_trace = false;
  /// Run the happens-before race detector (verify/race.hpp) over every
  /// launched program: kernel SRAM accesses, CB and semaphore edges, and
  /// in-flight noc_async_read landings are checked against the protocol.
  /// Findings accumulate on Device::verifier(). Pure host-side bookkeeping:
  /// results, simulated times and traces are bit-identical with it on or
  /// off; leave off for benchmark runs (host-time cost per access).
  bool enable_verify = false;
};

/// Per-kernel execution profile: how much of the kernel's lifetime was
/// active (charged work) vs stalled (waiting on CBs, semaphores, barriers,
/// NoC/DRAM completions). `active` is written through live by the kernel
/// context, so a program that fails mid-run still leaves a usable partial
/// profile (see Device::last_profile for the contract).
struct KernelProfile {
  std::string name;
  int core = 0;
  SimTime lifetime = 0;
  SimTime active = 0;
  /// FPU occupancy (tile math/pack). Part of `active`, broken out so a
  /// compute kernel's genuine work is separable from its mover/CB overhead.
  SimTime fpu_busy = 0;
  /// Time blocked inside cb_wait_front / cb_reserve_back (pipeline
  /// starvation / back-pressure). Part of the non-active remainder, broken
  /// out so CB stalls are separable from NoC/semaphore/barrier stalls.
  SimTime cb_wait = 0;
  bool finished = false;
  double utilisation() const {
    return lifetime > 0 ? static_cast<double>(active) / static_cast<double>(lifetime)
                        : 0.0;
  }
};

class Device {
 public:
  /// Open a simulated card. Each Device is an independent e150 (multi-card
  /// setups open several; Grayskulls cannot access each other's memory —
  /// paper Section VII).
  static std::unique_ptr<Device> open(sim::GrayskullSpec spec = {},
                                      DeviceConfig config = {});
  ~Device();

  sim::Grayskull& hw() { return hw_; }
  const sim::GrayskullSpec& spec() const { return hw_.spec(); }
  const DeviceConfig& config() const { return config_; }
  sim::FaultPlan* fault_plan() { return hw_.fault_plan(); }
  int num_workers() const { return hw_.worker_count(); }

  /// Worker ids usable right now: all workers minus the ones the fault plan
  /// has killed (the e150's own 108-of-120 harvesting, generalised).
  std::vector<int> usable_workers();

  /// Allocate a DRAM buffer. Single-bank buffers with bank = -1 round-robin
  /// across banks (so distinct buffers land in distinct banks, as the
  /// paper's input/output streaming buffers do).
  std::shared_ptr<Buffer> create_buffer(const BufferConfig& config);

  // --- command queues ---
  /// In-order asynchronous command stream `id` (created on demand, owned by
  /// the device). Commands on distinct queues overlap in simulated time
  /// wherever the hardware allows: PCIe transfers run concurrently with a
  /// program's kernels, so a write queue hides H2D behind a compute queue.
  CommandQueue& command_queue(int id = 0);
  /// Drive the simulator until `event` completes. Rethrows any error an
  /// async command hit in the meantime.
  void synchronize(const Event& event);
  /// Cancel every not-yet-started command on every queue of this device
  /// (CommandQueue::cancel_pending over all queues) and discard any queued
  /// async error. The drain step before abandoning a wedged device: the
  /// queued work can never run, and the count is what the owner lost.
  std::size_t cancel_queues();
  /// Did a watchdog timeout leave kernels holding this device's cores? A
  /// wedged device rejects further program launches; open a fresh Device.
  bool wedged() const { return wedged_; }

  // --- blocking convenience API (one enqueue + finish on queue 0) ---
  /// With DeviceConfig::checksum_transfers, each transfer is CRC-verified
  /// and retried with exponential backoff; throws TransferError when retries
  /// are exhausted.
  void write_buffer(Buffer& buffer, std::span<const std::byte> data,
                    std::uint64_t offset = 0);
  void read_buffer(Buffer& buffer, std::span<std::byte> out, std::uint64_t offset = 0);

  /// Launch `program` and run it to completion in simulated time. With
  /// DeviceConfig::sim_time_limit set, throws DeviceTimeoutError (naming the
  /// stuck kernels) when the program does not finish within the limit.
  void run_program(Program& program);

  /// Simulated duration of the last run_program, excluding dispatch overhead
  /// (the paper's streaming results are "kernel execution time only").
  SimTime last_kernel_duration() const { return last_kernel_duration_; }
  /// Simulated time on this device's clock right now.
  SimTime now() { return hw_.engine().now(); }

  /// Total simulated wall time spent in host<->device transfers so far.
  SimTime pcie_time() const { return pcie_time_; }

  /// Checksummed-transfer retries taken so far (cumulative over the
  /// device's lifetime; callers diff around a region of interest).
  std::uint64_t transfer_retries() const { return transfer_retries_; }

  /// Per-kernel execution profile of the last run_program.
  ///
  /// Contract: cleared on entry to run_program (after argument validation);
  /// on success every entry is `finished` with final lifetime/active; when
  /// run_program throws mid-run (kernel exception, watchdog timeout,
  /// deadlock) the partial profile is retained — finished kernels keep their
  /// final numbers, unfinished ones carry `finished == false`, the activity
  /// charged so far, and a lifetime clamped at the failure time — so faulted
  /// runs can be profiled post-mortem.
  const std::vector<KernelProfile>& last_profile() const { return profile_; }

  /// The card-wide trace sink, or nullptr unless DeviceConfig::enable_trace
  /// was set at open. Events accumulate across the device's lifetime; call
  /// trace()->clear() to scope a capture to a region of interest.
  sim::TraceSink* trace() { return hw_.trace(); }

  /// Aggregate the recorded trace (per-bank utilization & queue depth,
  /// per-kernel stall breakdown, CB occupancy histograms, NoC traffic).
  /// Throws ApiError when the device was opened without enable_trace.
  sim::MetricsReport metrics();

  /// The race detector, or nullptr unless DeviceConfig::enable_verify was
  /// set at open. Findings accumulate across launches; call
  /// verifier()->clear_findings() to scope a check.
  verify::Verifier* verifier() { return verify_.get(); }

  /// Snapshot for the static linter (verify/lint.hpp): worker count, SRAM
  /// capacity, currently-dead cores, DRAM alignment granule.
  verify::DeviceInfo verify_info();

  /// Convenience: lint `program` against this device (verify::lint on the
  /// two snapshots). Usable with or without enable_verify.
  std::vector<verify::LintError> lint_program(const Program& program);

 private:
  Device(sim::GrayskullSpec spec, DeviceConfig config);
  void release_buffer(const Buffer& buffer);
  /// Set lifetime/duration for entries whose kernel never finished (partial
  /// profile on a failed run).
  void finalise_profile(SimTime start);
  friend class Buffer;
  friend class CommandQueue;
  friend class KernelCtxBase;

  /// ApiError naming the buffer, offset and size when the range is invalid.
  void validate_transfer(const Buffer& buffer, std::uint64_t offset, std::size_t size,
                         bool is_write) const;

  /// The central host-side driver: dispatch engine events one at a time
  /// until `done()` — surfacing queued async errors, enforcing the program
  /// watchdog deadline, and turning a drained queue with a running program
  /// into the same deadlock CheckError Engine::run() throws. Everything
  /// (finish, synchronize, the blocking wrappers) funnels through here so
  /// error semantics are identical on every path.
  void drive(const std::function<bool()>& done);
  /// Record an async command failure; the first error wins and is rethrown
  /// by the next drive().
  void post_host_error(std::exception_ptr error);

  // Exclusive PCIe bus: one transfer on the wire at a time, FIFO handoff.
  void acquire_pcie(std::function<void()> fn);
  void release_pcie();
  // Exclusive core grid: one program launched at a time, FIFO handoff.
  void acquire_program_slot(std::function<void()> fn);
  void release_program_slot();

  /// One launched program occupying the cores.
  struct ProgramLaunch {
    CommandQueue* queue = nullptr;
    SimTime start = 0;     ///< kernel start (dispatch excluded)
    SimTime deadline = 0;  ///< start + sim_time_limit, or 0 = unbounded
    std::size_t remaining = 0;  ///< kernels still running
  };

  /// Instantiate CBs/semaphores/barriers and spawn the kernels (the body of
  /// the historical run_program, after the dispatch delay).
  void launch_kernels(Program& program, CommandQueue& queue);
  void on_kernel_done(ProgramLaunch* owner);
  void program_complete();

  // --- wait-for registry (always on: pure host-side maps, no engine
  // interaction) --- which kernels produce into / consume from each CB and
  // post each semaphore, keyed by (core, id). Resolved to wait-cycle edges
  // by diagnose_blocked() when a program hangs.
  struct CbPeers {
    std::vector<std::string> producers;
    std::vector<std::string> consumers;
  };
  void note_cb_producer(int core, int cb_id, const std::string& kernel);
  void note_cb_consumer(int core, int cb_id, const std::string& kernel);
  void note_sem_poster(int core, int sem_id, const std::string& kernel);
  /// Snapshot every unfinished kernel process (name, core, wait site, the
  /// registry's counterpart kernels) and run the wait-for diagnosis
  /// (verify/deadlock.hpp). `quiescent`: the event queue has drained, so
  /// structural fallback edges and orphan analysis are sound.
  verify::DeadlockReport diagnose_blocked(bool quiescent);
  /// Shared failure cleanup (partial profile, elapsed fault kills, release
  /// the cores, abandon the owning queue's head command).
  void fail_running_program();
  [[noreturn]] void throw_program_timeout();

  /// Device-wide rendezvous used by KernelCtxBase::global_barrier.
  struct DeviceBarrier {
    DeviceBarrier(sim::Engine& engine, int expected_participants)
        : expected(expected_participants), queue(engine) {}
    int expected;
    int arrived = 0;
    std::uint64_t generation = 0;
    sim::WaitQueue queue;
  };
  DeviceBarrier& barrier(int barrier_id);
  std::map<int, std::unique_ptr<DeviceBarrier>> barriers_;

  sim::Grayskull hw_;
  DeviceConfig config_;
  /// DRAM allocation is high-water-of-live: a new buffer lands just above
  /// the highest LIVE region of its bank (or of the virtual interleaved
  /// space), so freed buffers are reclaimed once nothing sits above them.
  /// Workloads that never free mid-run see byte-identical addresses to a
  /// pure bump allocator (golden traces pin those); workloads that tear a
  /// whole working set down and rebuild — sharded multi-card segments, a
  /// serving card cycling sessions — get their DRAM back.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      bank_live_;  // per bank: live (offset, size) regions
  std::vector<std::pair<std::uint64_t, std::uint64_t>> interleaved_live_;
  int next_bank_ = 0;
  SimTime last_kernel_duration_ = 0;
  SimTime pcie_time_ = 0;
  std::uint64_t transfer_retries_ = 0;
  bool wedged_ = false;  // a watchdog timeout left kernels stuck on cores
  std::vector<KernelProfile> profile_;
  std::unique_ptr<verify::Verifier> verify_;  // non-null iff enable_verify
  std::map<std::pair<int, int>, CbPeers> cb_peers_;                 // (core, cb)
  std::map<std::pair<int, int>, std::vector<std::string>> sem_posters_;  // (core, sem)
  std::map<std::string, int> kernel_core_by_name_;  // process name -> worker

  // Command-queue state (destroyed before hw_, declared after it).
  std::vector<std::unique_ptr<CommandQueue>> command_queues_;
  std::exception_ptr pending_host_error_;
  bool pcie_busy_ = false;
  std::deque<std::function<void()>> pcie_waiters_;
  bool program_busy_ = false;
  std::deque<std::function<void()>> program_waiters_;
  std::unique_ptr<ProgramLaunch> running_;
  SimTime last_launch_start_ = 0;
};

}  // namespace ttsim::ttmetal
