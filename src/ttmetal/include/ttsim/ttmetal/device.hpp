#pragma once
/// \file device.hpp
/// Host-side SDK entry point: open a (simulated) Grayskull e150, allocate
/// DRAM buffers, and launch programs. Mirrors tt-metal's Device +
/// CommandQueue in structure; all timing is simulated.

#include <map>
#include <memory>
#include <span>

#include "ttsim/sim/tensix_core.hpp"
#include "ttsim/ttmetal/buffer.hpp"
#include "ttsim/ttmetal/program.hpp"

namespace ttsim::ttmetal {

class Device {
 public:
  /// Open a simulated card. Each Device is an independent e150 (multi-card
  /// setups open several; Grayskulls cannot access each other's memory —
  /// paper Section VII).
  static std::unique_ptr<Device> open(sim::GrayskullSpec spec = {});
  ~Device();

  sim::Grayskull& hw() { return hw_; }
  const sim::GrayskullSpec& spec() const { return hw_.spec(); }
  int num_workers() const { return hw_.worker_count(); }

  /// Allocate a DRAM buffer. Single-bank buffers with bank = -1 round-robin
  /// across banks (so distinct buffers land in distinct banks, as the
  /// paper's input/output streaming buffers do).
  std::shared_ptr<Buffer> create_buffer(const BufferConfig& config);

  // --- command queue (blocking; simulated PCIe cost applied) ---
  void write_buffer(Buffer& buffer, std::span<const std::byte> data,
                    std::uint64_t offset = 0);
  void read_buffer(Buffer& buffer, std::span<std::byte> out, std::uint64_t offset = 0);

  /// Launch `program` and run it to completion in simulated time.
  void run_program(Program& program);

  /// Simulated duration of the last run_program, excluding dispatch overhead
  /// (the paper's streaming results are "kernel execution time only").
  SimTime last_kernel_duration() const { return last_kernel_duration_; }
  /// Simulated time on this device's clock right now.
  SimTime now() { return hw_.engine().now(); }

  /// Total simulated wall time spent in host<->device transfers so far.
  SimTime pcie_time() const { return pcie_time_; }

  /// Per-kernel execution profile of the last run_program: how much of each
  /// kernel's lifetime was active (charged work) vs stalled (waiting on
  /// CBs, semaphores, barriers, NoC/DRAM completions).
  struct KernelProfile {
    std::string name;
    int core = 0;
    SimTime lifetime = 0;
    SimTime active = 0;
    double utilisation() const {
      return lifetime > 0 ? static_cast<double>(active) / static_cast<double>(lifetime)
                          : 0.0;
    }
  };
  const std::vector<KernelProfile>& last_profile() const { return profile_; }

 private:
  explicit Device(sim::GrayskullSpec spec);
  void release_buffer(const Buffer& buffer);
  friend class Buffer;
  friend class KernelCtxBase;

  /// Device-wide rendezvous used by KernelCtxBase::global_barrier.
  struct DeviceBarrier {
    DeviceBarrier(sim::Engine& engine, int expected_participants)
        : expected(expected_participants), queue(engine) {}
    int expected;
    int arrived = 0;
    std::uint64_t generation = 0;
    sim::WaitQueue queue;
  };
  DeviceBarrier& barrier(int barrier_id);
  std::map<int, std::unique_ptr<DeviceBarrier>> barriers_;

  sim::Grayskull hw_;
  std::vector<std::uint64_t> bank_top_;  // single-bank bump allocators
  std::uint64_t interleaved_top_;        // virtual region above the banks
  int next_bank_ = 0;
  SimTime last_kernel_duration_ = 0;
  SimTime pcie_time_ = 0;
  std::vector<KernelProfile> profile_;
};

}  // namespace ttsim::ttmetal
