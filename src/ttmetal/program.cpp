#include "ttsim/ttmetal/program.hpp"

namespace ttsim::ttmetal {

std::uint32_t Program::plan_allocate(const std::vector<int>& cores,
                                     std::uint32_t size, std::uint32_t align) {
  // Heterogeneous overlaps (a core appearing in groups with different layout
  // histories) plan at the max and are caught by the per-core address check
  // at launch; homogeneous groups — the only layouts that ever worked — plan
  // exactly what each core's SRAM allocator will hand out.
  std::uint64_t top = 0;
  for (int core : cores) {
    const auto it = planned_tops_.find(core);
    if (it != planned_tops_.end()) top = std::max(top, it->second);
  }
  const std::uint64_t base = align_up(top, align);
  for (int core : cores) planned_tops_[core] = base + size;
  return static_cast<std::uint32_t>(base);
}

void Program::create_cb(int cb_id, const std::vector<int>& cores,
                        std::uint32_t page_size, std::uint32_t num_pages) {
  TTSIM_CHECK(!cores.empty());
  TTSIM_CHECK(page_size > 0 && num_pages > 0);
  const std::uint32_t addr = plan_allocate(cores, page_size * num_pages, 32);
  cbs_.push_back(CbConfig{cb_id, cores, page_size, num_pages, addr, next_order_++});
}

void Program::create_semaphore(int sem_id, const std::vector<int>& cores,
                               std::int64_t initial) {
  TTSIM_CHECK(!cores.empty());
  semaphores_.push_back(SemConfig{sem_id, cores, initial});
}

void Program::create_global_barrier(int barrier_id, int participants) {
  TTSIM_CHECK(participants > 0);
  barriers_.push_back(BarrierConfig{barrier_id, participants});
}

L1BufferHandle Program::create_l1_buffer(const std::vector<int>& cores,
                                         std::uint32_t size, std::uint32_t align) {
  TTSIM_CHECK(!cores.empty());
  const std::uint32_t addr = plan_allocate(cores, size, align);
  l1_buffers_.push_back(L1Config{cores, size, align, addr, next_order_++});
  return static_cast<L1BufferHandle>(l1_buffers_.size()) - 1;
}

std::uint32_t Program::l1_buffer_address(L1BufferHandle h) const {
  TTSIM_CHECK(h >= 0 && static_cast<std::size_t>(h) < l1_buffers_.size());
  return l1_buffers_[static_cast<std::size_t>(h)].planned_address;
}

KernelHandle Program::create_kernel(KernelKind kind, const std::vector<int>& cores,
                                    DataMoverFn fn, std::string name) {
  TTSIM_CHECK_MSG(kind != KernelKind::kCompute,
                  "compute kernels take a ComputeFn — use the other overload");
  TTSIM_CHECK(!cores.empty());
  TTSIM_CHECK(fn != nullptr);
  KernelConfig cfg;
  cfg.kind = kind;
  cfg.cores = cores;
  cfg.mover_fn = std::move(fn);
  cfg.name = name.empty()
                 ? (kind == KernelKind::kDataMover0 ? "dm0" : "dm1")
                 : std::move(name);
  kernels_.push_back(std::move(cfg));
  return static_cast<KernelHandle>(kernels_.size()) - 1;
}

KernelHandle Program::create_kernel(const std::vector<int>& cores, ComputeFn fn,
                                    std::string name) {
  TTSIM_CHECK(!cores.empty());
  TTSIM_CHECK(fn != nullptr);
  KernelConfig cfg;
  cfg.kind = KernelKind::kCompute;
  cfg.cores = cores;
  cfg.compute_fn = std::move(fn);
  cfg.name = name.empty() ? "compute" : std::move(name);
  kernels_.push_back(std::move(cfg));
  return static_cast<KernelHandle>(kernels_.size()) - 1;
}

void Program::set_runtime_args(KernelHandle kernel, int core,
                               std::vector<std::uint32_t> args) {
  TTSIM_CHECK(kernel >= 0 && static_cast<std::size_t>(kernel) < kernels_.size());
  auto& cfg = kernels_[static_cast<std::size_t>(kernel)];
  const bool known = std::find(cfg.cores.begin(), cfg.cores.end(), core) != cfg.cores.end();
  TTSIM_CHECK_MSG(known, "set_runtime_args: core " << core
                                                   << " is not in the kernel's core list");
  cfg.args[core] = std::move(args);
}

void Program::set_common_runtime_args(KernelHandle kernel,
                                      std::vector<std::uint32_t> args) {
  TTSIM_CHECK(kernel >= 0 && static_cast<std::size_t>(kernel) < kernels_.size());
  kernels_[static_cast<std::size_t>(kernel)].common_args = std::move(args);
}

verify::ProgramInfo Program::verify_info() const {
  verify::ProgramInfo info;
  for (const auto& cb : cbs_) {
    info.cbs.push_back(
        {cb.cb_id, cb.cores, cb.page_size, cb.num_pages, cb.planned_address});
  }
  for (const auto& sem : semaphores_) {
    info.semaphores.push_back({sem.sem_id, sem.cores, sem.initial});
  }
  for (const auto& b : barriers_) {
    info.barriers.push_back({b.barrier_id, b.participants});
  }
  for (const auto& l1 : l1_buffers_) {
    info.l1_buffers.push_back({l1.cores, l1.size, l1.align, l1.planned_address});
  }
  for (const auto& k : kernels_) {
    info.kernels.push_back({static_cast<int>(k.kind), k.cores, k.name});
  }
  return info;
}

}  // namespace ttsim::ttmetal
