#include "ttsim/ttmetal/device.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ttsim/common/crc32.hpp"
#include "ttsim/common/log.hpp"

namespace ttsim::ttmetal {

Buffer::Buffer(Device& device, const BufferConfig& config, std::uint64_t address,
               int bank)
    : device_(device), config_(config), address_(address), bank_(bank) {
  storage_.resize(config.size);
}

Buffer::~Buffer() { device_.release_buffer(*this); }

Device::Device(sim::GrayskullSpec spec, DeviceConfig config)
    : hw_(spec),
      config_(std::move(config)),
      bank_live_(static_cast<std::size_t>(spec.dram_banks)) {
  TTSIM_CHECK(config_.transfer_max_retries >= 0);
  // Enable tracing before installing the fault plan so install_fault_plan
  // binds the plan's mirror to this device's sink.
  if (config_.enable_trace) hw_.enable_trace();
  if (config_.fault_plan != nullptr) hw_.install_fault_plan(config_.fault_plan);
  if (config_.enable_verify) verify_ = std::make_unique<verify::Verifier>();
}

verify::DeviceInfo Device::verify_info() {
  verify::DeviceInfo info;
  info.num_workers = hw_.worker_count();
  info.sram_bytes = hw_.spec().sram_bytes;
  info.dram_align_bytes = static_cast<std::uint32_t>(hw_.spec().dram_alignment);
  sim::FaultPlan* plan = hw_.fault_plan();
  if (plan != nullptr) {
    const SimTime t = hw_.engine().now();
    for (int w = 0; w < hw_.worker_count(); ++w) {
      if (plan->core_dead(w, t)) info.failed_cores.push_back(w);
    }
  }
  return info;
}

std::vector<verify::LintError> Device::lint_program(const Program& program) {
  return verify::lint(program.verify_info(), verify_info());
}

void Device::note_cb_producer(int core, int cb_id, const std::string& kernel) {
  auto& names = cb_peers_[{core, cb_id}].producers;
  if (std::find(names.begin(), names.end(), kernel) == names.end()) {
    names.push_back(kernel);
  }
}

void Device::note_cb_consumer(int core, int cb_id, const std::string& kernel) {
  auto& names = cb_peers_[{core, cb_id}].consumers;
  if (std::find(names.begin(), names.end(), kernel) == names.end()) {
    names.push_back(kernel);
  }
}

void Device::note_sem_poster(int core, int sem_id, const std::string& kernel) {
  auto& names = sem_posters_[{core, sem_id}];
  if (std::find(names.begin(), names.end(), kernel) == names.end()) {
    names.push_back(kernel);
  }
}

verify::DeadlockReport Device::diagnose_blocked(bool quiescent) {
  std::vector<verify::BlockedKernel> blocked;
  for (const sim::Process* p : hw_.engine().unfinished_processes()) {
    verify::BlockedKernel k;
    k.name = p->name();
    k.site = p->wait_site();
    const auto core_it = kernel_core_by_name_.find(k.name);
    k.core = core_it != kernel_core_by_name_.end() ? core_it->second : -1;
    using Kind = sim::WaitSite::Kind;
    if (k.site.kind == Kind::kCbFull) {
      // Full CB: a consumer pop frees space.
      const auto it = cb_peers_.find({k.site.core, k.site.id});
      if (it != cb_peers_.end()) k.known_unblockers = it->second.consumers;
    } else if (k.site.kind == Kind::kCbEmpty) {
      const auto it = cb_peers_.find({k.site.core, k.site.id});
      if (it != cb_peers_.end()) k.known_unblockers = it->second.producers;
    } else if (k.site.kind == Kind::kSemaphore) {
      const auto it = sem_posters_.find({k.site.core, k.site.id});
      if (it != sem_posters_.end()) k.known_unblockers = it->second;
    }
    blocked.push_back(std::move(k));
  }
  return verify::diagnose(blocked, quiescent);
}

sim::MetricsReport Device::metrics() {
  if (hw_.trace() == nullptr) {
    TTSIM_THROW_API(
        "Device::metrics requires DeviceConfig::enable_trace at open");
  }
  return sim::build_metrics(*hw_.trace(), hw_.spec().dram_banks);
}

Device::~Device() = default;

std::unique_ptr<Device> Device::open(sim::GrayskullSpec spec, DeviceConfig config) {
  return std::unique_ptr<Device>(new Device(spec, std::move(config)));
}

std::vector<int> Device::usable_workers() {
  std::vector<int> usable;
  sim::FaultPlan* plan = hw_.fault_plan();
  const SimTime t = hw_.engine().now();
  usable.reserve(static_cast<std::size_t>(hw_.worker_count()));
  for (int w = 0; w < hw_.worker_count(); ++w) {
    if (plan != nullptr && plan->core_dead(w, t)) continue;
    usable.push_back(w);
  }
  return usable;
}

std::shared_ptr<Buffer> Device::create_buffer(const BufferConfig& config) {
  TTSIM_CHECK(config.size > 0);
  const auto& spec = hw_.spec();
  std::uint64_t addr = 0;
  int bank = -1;
  sim::DramRegion region;
  if (config.layout == BufferLayout::kSingleBank) {
    bank = config.bank >= 0 ? config.bank : (next_bank_++ % spec.dram_banks);
    TTSIM_CHECK_MSG(bank < spec.dram_banks, "bank index out of range");
    auto& live = bank_live_[static_cast<std::size_t>(bank)];
    std::uint64_t top = 0;
    for (const auto& [off, size] : live) top = std::max(top, off + size);
    const std::uint64_t offset = align_up(top, spec.dram_alignment);
    if (offset + config.size > spec.dram_bank_bytes) {
      TTSIM_THROW_API("DRAM bank " << bank << " exhausted: requested " << config.size
                                   << " bytes with "
                                   << (spec.dram_bank_bytes - offset) << " free");
    }
    live.emplace_back(offset, config.size);
    addr = static_cast<std::uint64_t>(bank) * spec.dram_bank_bytes + offset;
    region = sim::DramRegion{addr, config.size, bank, 0, false, nullptr};
  } else {
    std::uint64_t page = config.page_size;
    const bool coarse = config.layout == BufferLayout::kStriped;
    if (coarse) {
      if (page == 0) {
        page = align_up(config.size / static_cast<std::uint64_t>(spec.dram_banks) + 1,
                        spec.dram_alignment);
      }
    } else if (page == 0 || page > spec.max_interleave_page) {
      TTSIM_THROW_API("interleave page size must be in (0, 64KiB], got " << page);
    }
    const std::uint64_t base = spec.dram_total_bytes();  // virtual region above banks
    std::uint64_t top = 0;
    for (const auto& [off, size] : interleaved_live_) top = std::max(top, off + size);
    const std::uint64_t offset = align_up(top, spec.dram_alignment);
    interleaved_live_.emplace_back(offset, config.size);
    addr = base + offset;
    region = sim::DramRegion{addr, config.size, -1, page, coarse, nullptr};
    region.balanced = coarse && config.balanced_stripes;
  }
  auto buffer = std::shared_ptr<Buffer>(new Buffer(*this, config, addr, bank));
  region.storage = buffer->storage_.data();
  hw_.dram().add_region(region);
  return buffer;
}

void Device::release_buffer(const Buffer& buffer) {
  hw_.dram().remove_region(buffer.address());
  const auto& spec = hw_.spec();
  auto drop = [](auto& live, std::uint64_t offset) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->first == offset) {
        live.erase(it);
        return;
      }
    }
  };
  if (buffer.config().layout == BufferLayout::kSingleBank) {
    const auto bank = static_cast<std::uint64_t>(buffer.bank());
    drop(bank_live_[static_cast<std::size_t>(buffer.bank())],
         buffer.address() - bank * spec.dram_bank_bytes);
  } else {
    drop(interleaved_live_, buffer.address() - spec.dram_total_bytes());
  }
}

void Device::validate_transfer(const Buffer& buffer, std::uint64_t offset,
                               std::size_t size, bool is_write) const {
  if (offset + size <= buffer.size()) return;
  TTSIM_THROW_API((is_write ? "write_buffer" : "read_buffer")
                  << ": transfer of " << size << " bytes at offset " << offset
                  << " exceeds buffer \"" << buffer.name() << "\" ("
                  << buffer.size() << " bytes)");
}

CommandQueue& Device::command_queue(int id) {
  TTSIM_CHECK_MSG(id >= 0 && id < 64, "command queue id out of range: " << id);
  if (static_cast<std::size_t>(id) >= command_queues_.size()) {
    command_queues_.resize(static_cast<std::size_t>(id) + 1);
  }
  auto& slot = command_queues_[static_cast<std::size_t>(id)];
  if (slot == nullptr) slot.reset(new CommandQueue(*this, id));
  return *slot;
}

std::size_t Device::cancel_queues() {
  std::size_t cancelled = 0;
  for (auto& queue : command_queues_) {
    if (queue != nullptr) cancelled += queue->cancel_pending();
  }
  // A queued async error (e.g. kWedgedRunError from a follow-up program)
  // belongs to the abandoned commands; surfacing it later would double-report
  // a failure the caller already handled.
  pending_host_error_ = nullptr;
  return cancelled;
}

void Device::synchronize(const Event& event) {
  TTSIM_CHECK_MSG(event.valid(), "synchronize on a default-constructed Event");
  TTSIM_CHECK_MSG(event.state_->device == this,
                  "synchronize: the event belongs to another device");
  auto state = event.state_;
  drive([state] { return state->completed; });
}

void Device::drive(const std::function<bool()>& done) {
  auto& engine = hw_.engine();
  for (;;) {
    if (pending_host_error_ != nullptr) {
      std::exception_ptr error = std::exchange(pending_host_error_, nullptr);
      std::rethrow_exception(error);
    }
    if (done()) return;
    if (running_ != nullptr && running_->deadline > 0 &&
        (!engine.has_pending() || engine.next_event_time() > running_->deadline)) {
      // Watchdog: the next event (if any) lies beyond the deadline, so the
      // program cannot finish in time — exactly run_until_done's verdict,
      // with now() left at the last processed event.
      throw_program_timeout();
    }
    if (!engine.has_pending()) {
      if (running_ != nullptr) {
        // Unbounded program wedged: report the blocked kernels exactly as
        // Engine::run() does, plus the wait-for cycle diagnosis (the queue
        // has drained, so the structural edges are sound).
        const std::string diagnosis = diagnose_blocked(/*quiescent=*/true).text;
        fail_running_program();
        engine.throw_deadlock(diagnosis);
      }
      TTSIM_THROW_API(
          "command queues stalled: commands pending but no simulator events "
          "remain (waiting on an event that is never recorded?)");
    }
    try {
      engine.step();
    } catch (...) {
      // A kernel exception unwound out of the engine.
      if (running_ != nullptr) fail_running_program();
      throw;
    }
  }
}

void Device::post_host_error(std::exception_ptr error) {
  if (pending_host_error_ == nullptr) pending_host_error_ = std::move(error);
}

void Device::acquire_pcie(std::function<void()> fn) {
  if (!pcie_busy_) {
    pcie_busy_ = true;
    fn();
    return;
  }
  pcie_waiters_.push_back(std::move(fn));
}

void Device::release_pcie() {
  TTSIM_DCHECK(pcie_busy_);
  if (!pcie_waiters_.empty()) {
    auto fn = std::move(pcie_waiters_.front());
    pcie_waiters_.pop_front();
    fn();  // the bus stays busy, handed FIFO to the next transfer
    return;
  }
  pcie_busy_ = false;
}

void Device::acquire_program_slot(std::function<void()> fn) {
  if (!program_busy_) {
    program_busy_ = true;
    fn();
    return;
  }
  program_waiters_.push_back(std::move(fn));
}

void Device::release_program_slot() {
  TTSIM_DCHECK(program_busy_);
  if (!program_waiters_.empty()) {
    auto fn = std::move(program_waiters_.front());
    program_waiters_.pop_front();
    fn();
    return;
  }
  program_busy_ = false;
}

void Device::write_buffer(Buffer& buffer, std::span<const std::byte> data,
                          std::uint64_t offset) {
  command_queue(0).enqueue_write_buffer(buffer, data, /*blocking=*/true, offset);
}

void Device::read_buffer(Buffer& buffer, std::span<std::byte> out,
                         std::uint64_t offset) {
  command_queue(0).enqueue_read_buffer(buffer, out, /*blocking=*/true, offset);
}

void Device::run_program(Program& program) {
  if (wedged_) TTSIM_THROW_API(detail::kWedgedRunError);
  auto& engine = hw_.engine();
  command_queue(0).enqueue_program(program, /*blocking=*/true);
  // Bit-exact equivalence with the historical synchronous implementation:
  // run() drained every trailing event after the kernels finished, the
  // watchdog variant drained events up to the deadline, and
  // last_kernel_duration included that drain.
  const SimTime deadline =
      config_.sim_time_limit > 0 ? last_launch_start_ + config_.sim_time_limit : 0;
  drive([&] {
    return !engine.has_pending() ||
           (deadline > 0 && engine.next_event_time() > deadline);
  });
  last_kernel_duration_ = engine.now() - last_launch_start_;
}

void Device::launch_kernels(Program& program, CommandQueue& queue) {
  auto& engine = hw_.engine();
  // Under enable_verify the static linter walks the declarations before
  // anything is instantiated: a protocol violation becomes a launch-time
  // error with a full diagnosis instead of a hang or silent corruption.
  if (verify_ != nullptr) {
    const auto lint_errors = lint_program(program);
    TTSIM_CHECK_MSG(lint_errors.empty(), "program failed static lint:\n"
                                             << verify::format_lint(lint_errors));
  }
  // Reset every core the program touches, then instantiate CBs, semaphores
  // and L1 buffers in creation order so real L1 addresses match the plan.
  std::set<int> used;
  for (const auto& cb : program.cbs_) used.insert(cb.cores.begin(), cb.cores.end());
  for (const auto& sem : program.semaphores_) used.insert(sem.cores.begin(), sem.cores.end());
  for (const auto& l1 : program.l1_buffers_) used.insert(l1.cores.begin(), l1.cores.end());
  for (const auto& k : program.kernels_) used.insert(k.cores.begin(), k.cores.end());
  for (int core : used) hw_.worker(core).reset();

  // Allocation replay in global creation order. The program planned per-core
  // bump addresses; disjoint core groups (batched launches) restart at their
  // own tops, and the per-core check below catches any layout the plan could
  // not predict.
  struct Alloc {
    const Program::CbConfig* cb;
    const Program::L1Config* l1;
  };
  std::vector<Alloc> allocs;
  for (const auto& cb : program.cbs_) allocs.push_back({&cb, nullptr});
  for (const auto& l1 : program.l1_buffers_) allocs.push_back({nullptr, &l1});
  std::sort(allocs.begin(), allocs.end(), [](const Alloc& a, const Alloc& b) {
    auto order = [](const Alloc& x) -> std::size_t {
      return x.l1 != nullptr ? x.l1->order : x.cb->order;
    };
    return order(a) < order(b);
  });

  for (const auto& a : allocs) {
    if (a.cb != nullptr) {
      for (int core : a.cb->cores) {
        auto& created =
            hw_.worker(core).create_cb(a.cb->cb_id, a.cb->page_size, a.cb->num_pages);
        (void)created;
      }
    } else {
      for (int core : a.l1->cores) {
        const std::uint32_t real =
            hw_.worker(core).sram().allocate(a.l1->size, a.l1->align);
        TTSIM_CHECK_MSG(real == a.l1->planned_address,
                        "heterogeneous per-core L1 layouts are not supported: "
                        "planned address " << a.l1->planned_address
                                           << " but core " << core << " allocated "
                                           << real);
      }
    }
  }
  for (const auto& sem : program.semaphores_) {
    for (int core : sem.cores) hw_.worker(core).create_semaphore(sem.sem_id, sem.initial);
  }
  barriers_.clear();
  for (const auto& b : program.barriers_) {
    auto barrier = std::make_unique<DeviceBarrier>(engine, b.participants);
    barrier->queue.set_site({sim::WaitSite::Kind::kBarrier, -1, b.barrier_id});
    barriers_.emplace(b.barrier_id, std::move(barrier));
  }

  // Fresh wait-for registry and race-detector state per launch (cores were
  // reset above, so cross-program shadow state would be stale).
  cb_peers_.clear();
  sem_posters_.clear();
  kernel_core_by_name_.clear();
  if (verify_ != nullptr) verify_->begin_program();

  // Spawn kernel processes: dm0 / dm1 / compute per core, in creation order.
  profile_.clear();
  std::size_t total_kernels = 0;
  for (const auto& k : program.kernels_) total_kernels += k.cores.size();
  profile_.reserve(total_kernels);  // spawn lambdas hold stable pointers
  const SimTime start = engine.now();
  last_launch_start_ = start;
  running_ = std::make_unique<ProgramLaunch>();
  running_->queue = &queue;
  running_->start = start;
  running_->deadline = config_.sim_time_limit > 0 ? start + config_.sim_time_limit : 0;
  running_->remaining = total_kernels;
  ProgramLaunch* owner = running_.get();
  for (auto& k : program.kernels_) {
    for (std::size_t i = 0; i < k.cores.size(); ++i) {
      const int core_idx = k.cores[i];
      auto it = k.args.find(core_idx);
      std::vector<std::uint32_t> args =
          it != k.args.end() ? it->second : k.common_args;
      sim::TensixCore& core = hw_.worker(core_idx);
      const std::string name = k.name + "@" + std::to_string(core_idx);
      const int position = static_cast<int>(i);
      const int group = static_cast<int>(k.cores.size());
      profile_.push_back(KernelProfile{.name = k.name, .core = core_idx});
      auto* prof = &profile_.back();
      kernel_core_by_name_.emplace(name, core_idx);
      // Thread ids are assigned here, in spawn order, so the detector's
      // clocks are deterministic regardless of execution interleaving.
      const int vtid = verify_ != nullptr ? verify_->register_thread(name) : -1;
      // Kernel start/end markers are recorded inside the process so they
      // land on the kernel's own trace track.
      sim::TraceSink* trace = hw_.trace();
      if (k.kind == KernelKind::kCompute) {
        auto fn = k.compute_fn;
        engine.spawn(name, [this, &core, fn, args, position, group, prof, start,
                            trace, owner, name, vtid] {
          ComputeCtx ctx(*this, core, args, position, group);
          ctx.set_profile(prof);
          ctx.set_identity(name, verify_.get(), vtid);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelStart, trace->now(), 0,
                          {core.id()});
          }
          fn(ctx);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelEnd, trace->now(), 0,
                          {core.id()});
          }
          prof->lifetime = hw_.engine().now() - start;
          prof->active = ctx.active_time();
          prof->finished = true;
          on_kernel_done(owner);
        });
      } else {
        const int noc_id = k.kind == KernelKind::kDataMover0 ? 0 : 1;
        auto fn = k.mover_fn;
        engine.spawn(name, [this, &core, fn, args, position, group, noc_id,
                            prof, start, trace, owner, name, vtid] {
          DataMoverCtx ctx(*this, core, noc_id, args, position, group);
          ctx.set_profile(prof);
          ctx.set_identity(name, verify_.get(), vtid);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelStart, trace->now(), 0,
                          {core.id()});
          }
          fn(ctx);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelEnd, trace->now(), 0,
                          {core.id()});
          }
          prof->lifetime = hw_.engine().now() - start;
          prof->active = ctx.active_time();
          prof->finished = true;
          on_kernel_done(owner);
        });
      }
    }
  }
  if (total_kernels == 0) program_complete();
}

void Device::on_kernel_done(ProgramLaunch* owner) {
  // Stale completions (a straggler kernel from an aborted launch finishing
  // later) must not count against the current program.
  if (running_.get() != owner) return;
  TTSIM_DCHECK(running_->remaining > 0);
  if (--running_->remaining == 0) program_complete();
}

void Device::program_complete() {
  ProgramLaunch* launch = running_.get();
  last_kernel_duration_ = hw_.engine().now() - launch->start;
  CommandQueue* queue = launch->queue;
  running_.reset();
  release_program_slot();
  queue->complete_head();
}

void Device::fail_running_program() {
  ProgramLaunch* launch = running_.get();
  finalise_profile(launch->start);
  if (auto* plan = hw_.fault_plan()) plan->commit_elapsed_kills(hw_.engine().now());
  CommandQueue* queue = launch->queue;
  running_.reset();
  release_program_slot();
  queue->complete_head();
}

void Device::throw_program_timeout() {
  std::ostringstream os;
  os << "program exceeded sim_time_limit (" << config_.sim_time_limit
     << " ns); stuck kernels:";
  for (const auto& stuck : hw_.engine().blocked_process_names()) os << ' ' << stuck;
  // Replace "kernel X stuck" with the actual wait cycle where one exists.
  // Mid-flight timeouts (events still pending) only use registry-recorded
  // counterpart edges — structural guesses would fabricate cycles out of
  // kernels that are merely slow.
  const std::string diagnosis =
      diagnose_blocked(/*quiescent=*/!hw_.engine().has_pending()).text;
  if (!diagnosis.empty()) os << '\n' << diagnosis;
  // Wedge before releasing the program slot so a queued follow-up program is
  // rejected instead of launching onto held cores.
  wedged_ = true;
  fail_running_program();
  throw DeviceTimeoutError(os.str());
}

void Device::finalise_profile(SimTime start) {
  // Partial-profile contract: kernels that never finished keep the activity
  // charged so far (written through live) and a lifetime clamped at the
  // failure time.
  const SimTime at_failure = hw_.engine().now() - start;
  for (auto& p : profile_) {
    if (!p.finished) p.lifetime = at_failure;
  }
}

Device::DeviceBarrier& Device::barrier(int barrier_id) {
  const auto it = barriers_.find(barrier_id);
  if (it == barriers_.end()) {
    TTSIM_THROW_API("global barrier " << barrier_id
                                      << " was not configured on this program");
  }
  return *it->second;
}

}  // namespace ttsim::ttmetal
