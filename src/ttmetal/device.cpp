#include "ttsim/ttmetal/device.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ttsim/common/crc32.hpp"
#include "ttsim/common/log.hpp"

namespace ttsim::ttmetal {

Buffer::Buffer(Device& device, const BufferConfig& config, std::uint64_t address,
               int bank)
    : device_(device), config_(config), address_(address), bank_(bank) {
  storage_.resize(config.size);
}

Buffer::~Buffer() { device_.release_buffer(*this); }

Device::Device(sim::GrayskullSpec spec, DeviceConfig config)
    : hw_(spec),
      config_(std::move(config)),
      bank_top_(static_cast<std::size_t>(spec.dram_banks), 0),
      interleaved_top_(0) {
  TTSIM_CHECK(config_.transfer_max_retries >= 0);
  // Enable tracing before installing the fault plan so install_fault_plan
  // binds the plan's mirror to this device's sink.
  if (config_.enable_trace) hw_.enable_trace();
  if (config_.fault_plan != nullptr) hw_.install_fault_plan(config_.fault_plan);
}

sim::MetricsReport Device::metrics() {
  if (hw_.trace() == nullptr) {
    TTSIM_THROW_API(
        "Device::metrics requires DeviceConfig::enable_trace at open");
  }
  return sim::build_metrics(*hw_.trace(), hw_.spec().dram_banks);
}

Device::~Device() = default;

std::unique_ptr<Device> Device::open(sim::GrayskullSpec spec, DeviceConfig config) {
  return std::unique_ptr<Device>(new Device(spec, std::move(config)));
}

std::vector<int> Device::usable_workers() {
  std::vector<int> usable;
  sim::FaultPlan* plan = hw_.fault_plan();
  const SimTime t = hw_.engine().now();
  usable.reserve(static_cast<std::size_t>(hw_.worker_count()));
  for (int w = 0; w < hw_.worker_count(); ++w) {
    if (plan != nullptr && plan->core_dead(w, t)) continue;
    usable.push_back(w);
  }
  return usable;
}

std::shared_ptr<Buffer> Device::create_buffer(const BufferConfig& config) {
  TTSIM_CHECK(config.size > 0);
  const auto& spec = hw_.spec();
  std::uint64_t addr = 0;
  int bank = -1;
  sim::DramRegion region;
  if (config.layout == BufferLayout::kSingleBank) {
    bank = config.bank >= 0 ? config.bank : (next_bank_++ % spec.dram_banks);
    TTSIM_CHECK_MSG(bank < spec.dram_banks, "bank index out of range");
    auto& top = bank_top_[static_cast<std::size_t>(bank)];
    const std::uint64_t offset = align_up(top, spec.dram_alignment);
    if (offset + config.size > spec.dram_bank_bytes) {
      TTSIM_THROW_API("DRAM bank " << bank << " exhausted: requested " << config.size
                                   << " bytes with "
                                   << (spec.dram_bank_bytes - offset) << " free");
    }
    top = offset + config.size;
    addr = static_cast<std::uint64_t>(bank) * spec.dram_bank_bytes + offset;
    region = sim::DramRegion{addr, config.size, bank, 0, false, nullptr};
  } else {
    std::uint64_t page = config.page_size;
    const bool coarse = config.layout == BufferLayout::kStriped;
    if (coarse) {
      if (page == 0) {
        page = align_up(config.size / static_cast<std::uint64_t>(spec.dram_banks) + 1,
                        spec.dram_alignment);
      }
    } else if (page == 0 || page > spec.max_interleave_page) {
      TTSIM_THROW_API("interleave page size must be in (0, 64KiB], got " << page);
    }
    const std::uint64_t base = spec.dram_total_bytes();  // virtual region above banks
    const std::uint64_t offset = align_up(interleaved_top_, spec.dram_alignment);
    interleaved_top_ = offset + config.size;
    addr = base + offset;
    region = sim::DramRegion{addr, config.size, -1, page, coarse, nullptr};
    region.balanced = coarse && config.balanced_stripes;
  }
  auto buffer = std::shared_ptr<Buffer>(new Buffer(*this, config, addr, bank));
  region.storage = buffer->storage_.data();
  hw_.dram().add_region(region);
  return buffer;
}

void Device::release_buffer(const Buffer& buffer) {
  hw_.dram().remove_region(buffer.address());
}

void Device::write_buffer(Buffer& buffer, std::span<const std::byte> data,
                          std::uint64_t offset) {
  TTSIM_CHECK(offset + data.size() <= buffer.size());
  const auto& spec = hw_.spec();
  auto& engine = hw_.engine();
  sim::FaultPlan* plan = hw_.fault_plan();
  const SimTime t = spec.pcie_latency + transfer_time(data.size(), spec.pcie_gbs);
  const std::uint32_t sent_crc = crc32(data);
  std::vector<std::byte> landed(data.begin(), data.end());
  std::string first_fault;
  for (int attempt = 0;; ++attempt) {
    engine.run_until(engine.now() + t);
    pcie_time_ += t;
    if (auto* tr = hw_.trace()) {
      tr->record(sim::TraceEventKind::kPcieTransfer, engine.now() - t, t,
                 {-1, attempt, /*b=is_write*/ 1, buffer.address() + offset,
                  data.size()});
    }
    std::copy(data.begin(), data.end(), landed.begin());
    std::uint64_t corrupt_at = 0;
    if (plan != nullptr &&
        plan->pcie_corrupt(engine.now(), data.size(), &corrupt_at)) {
      landed[corrupt_at] ^= std::byte{0x40};
      if (first_fault.empty()) first_fault = sim::to_string(*plan->last_event());
    }
    hw_.dram().host_write(buffer.address() + offset, landed.data(), landed.size());
    if (!config_.checksum_transfers) return;
    // The device checksums the payload in-line as it lands; the host pays one
    // extra round-trip latency for the acknowledgement.
    engine.run_until(engine.now() + spec.pcie_latency);
    pcie_time_ += spec.pcie_latency;
    if (crc32(landed) == sent_crc) return;
    if (attempt >= config_.transfer_max_retries) {
      throw TransferError("write_buffer checksum mismatch persisted after " +
                          std::to_string(attempt) + " retries; first fault: " +
                          (first_fault.empty() ? "<none recorded>" : first_fault));
    }
    ++transfer_retries_;
    const SimTime backoff = config_.transfer_retry_backoff << attempt;
    engine.run_until(engine.now() + backoff);
    pcie_time_ += backoff;
  }
}

void Device::read_buffer(Buffer& buffer, std::span<std::byte> out,
                         std::uint64_t offset) {
  TTSIM_CHECK(offset + out.size() <= buffer.size());
  const auto& spec = hw_.spec();
  auto& engine = hw_.engine();
  sim::FaultPlan* plan = hw_.fault_plan();
  const SimTime t = spec.pcie_latency + transfer_time(out.size(), spec.pcie_gbs);
  std::vector<std::byte> sent(out.size());
  std::uint32_t sent_crc = 0;
  std::string first_fault;
  for (int attempt = 0;; ++attempt) {
    engine.run_until(engine.now() + t);
    pcie_time_ += t;
    if (auto* tr = hw_.trace()) {
      tr->record(sim::TraceEventKind::kPcieTransfer, engine.now() - t, t,
                 {-1, attempt, /*b=is_write*/ 0, buffer.address() + offset,
                  out.size()});
    }
    if (attempt == 0) {
      // True device-side contents, captured once the transfer's simulated
      // time has elapsed (kernels are never concurrent with a blocking read).
      hw_.dram().host_read(buffer.address() + offset, sent.data(), sent.size());
      sent_crc = crc32(sent);
    }
    std::copy(sent.begin(), sent.end(), out.begin());
    std::uint64_t corrupt_at = 0;
    if (plan != nullptr && plan->pcie_corrupt(engine.now(), out.size(), &corrupt_at)) {
      out[corrupt_at] ^= std::byte{0x40};
      if (first_fault.empty()) first_fault = sim::to_string(*plan->last_event());
    }
    if (!config_.checksum_transfers) return;
    // Device-computed CRC of what it sent rides back with the payload; one
    // extra round-trip latency covers the compare/ack exchange.
    engine.run_until(engine.now() + spec.pcie_latency);
    pcie_time_ += spec.pcie_latency;
    if (crc32(out) == sent_crc) return;
    if (attempt >= config_.transfer_max_retries) {
      throw TransferError("read_buffer checksum mismatch persisted after " +
                          std::to_string(attempt) + " retries; first fault: " +
                          (first_fault.empty() ? "<none recorded>" : first_fault));
    }
    ++transfer_retries_;
    const SimTime backoff = config_.transfer_retry_backoff << attempt;
    engine.run_until(engine.now() + backoff);
    pcie_time_ += backoff;
  }
}

void Device::run_program(Program& program) {
  if (wedged_) {
    TTSIM_THROW_API(
        "run_program on a wedged device: an earlier program timed out and its "
        "kernels still hold cores; open a fresh Device (cores recorded as "
        "failed in the FaultPlan stay failed across the reopen)");
  }
  auto& engine = hw_.engine();
  engine.run_until(engine.now() + hw_.spec().program_dispatch);

  // Reset every core the program touches, then instantiate CBs, semaphores
  // and L1 buffers in creation order so real L1 addresses match the plan.
  std::set<int> used;
  for (const auto& cb : program.cbs_) used.insert(cb.cores.begin(), cb.cores.end());
  for (const auto& sem : program.semaphores_) used.insert(sem.cores.begin(), sem.cores.end());
  for (const auto& l1 : program.l1_buffers_) used.insert(l1.cores.begin(), l1.cores.end());
  for (const auto& k : program.kernels_) used.insert(k.cores.begin(), k.cores.end());
  for (int core : used) hw_.worker(core).reset();

  // Allocation replay. Program planned addresses assuming every allocation
  // happens on each core; heterogeneous per-core layouts would diverge, so
  // verify as we go.
  struct Alloc {
    std::size_t order;
    const Program::CbConfig* cb;
    const Program::L1Config* l1;
  };
  std::vector<Alloc> allocs;
  for (std::size_t i = 0; i < program.cbs_.size(); ++i)
    allocs.push_back({i, &program.cbs_[i], nullptr});
  for (std::size_t i = 0; i < program.l1_buffers_.size(); ++i)
    allocs.push_back({program.cbs_.size() + i, nullptr, &program.l1_buffers_[i]});
  // CBs and L1 buffers were planned in interleaved creation order; recover
  // that order from the planned addresses, which increase monotonically.
  std::sort(allocs.begin(), allocs.end(), [](const Alloc& a, const Alloc& b) {
    auto planned = [](const Alloc& x) -> std::uint64_t {
      return x.l1 != nullptr ? x.l1->planned_address : x.cb->planned_address;
    };
    return planned(a) < planned(b);
  });

  for (const auto& a : allocs) {
    if (a.cb != nullptr) {
      for (int core : a.cb->cores) {
        auto& created =
            hw_.worker(core).create_cb(a.cb->cb_id, a.cb->page_size, a.cb->num_pages);
        (void)created;
      }
    } else {
      for (int core : a.l1->cores) {
        const std::uint32_t real =
            hw_.worker(core).sram().allocate(a.l1->size, a.l1->align);
        TTSIM_CHECK_MSG(real == a.l1->planned_address,
                        "heterogeneous per-core L1 layouts are not supported: "
                        "planned address " << a.l1->planned_address
                                           << " but core " << core << " allocated "
                                           << real);
      }
    }
  }
  for (const auto& sem : program.semaphores_) {
    for (int core : sem.cores) hw_.worker(core).create_semaphore(sem.sem_id, sem.initial);
  }
  barriers_.clear();
  for (const auto& b : program.barriers_) {
    barriers_.emplace(b.barrier_id,
                      std::make_unique<DeviceBarrier>(engine, b.participants));
  }

  // Spawn kernel processes: dm0 / dm1 / compute per core, in creation order.
  profile_.clear();
  std::size_t total_kernels = 0;
  for (const auto& k : program.kernels_) total_kernels += k.cores.size();
  profile_.reserve(total_kernels);  // spawn lambdas hold stable pointers
  const SimTime start = engine.now();
  for (auto& k : program.kernels_) {
    for (std::size_t i = 0; i < k.cores.size(); ++i) {
      const int core_idx = k.cores[i];
      auto it = k.args.find(core_idx);
      std::vector<std::uint32_t> args =
          it != k.args.end() ? it->second : k.common_args;
      sim::TensixCore& core = hw_.worker(core_idx);
      const std::string name = k.name + "@" + std::to_string(core_idx);
      const int position = static_cast<int>(i);
      const int group = static_cast<int>(k.cores.size());
      profile_.push_back(KernelProfile{.name = k.name, .core = core_idx});
      auto* prof = &profile_.back();
      // Kernel start/end markers are recorded inside the process so they
      // land on the kernel's own trace track.
      sim::TraceSink* trace = hw_.trace();
      if (k.kind == KernelKind::kCompute) {
        auto fn = k.compute_fn;
        engine.spawn(name, [this, &core, fn, args, position, group, prof, start,
                            trace] {
          ComputeCtx ctx(*this, core, args, position, group);
          ctx.set_profile(prof);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelStart, trace->now(), 0,
                          {core.id()});
          }
          fn(ctx);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelEnd, trace->now(), 0,
                          {core.id()});
          }
          prof->lifetime = hw_.engine().now() - start;
          prof->active = ctx.active_time();
          prof->finished = true;
        });
      } else {
        const int noc_id = k.kind == KernelKind::kDataMover0 ? 0 : 1;
        auto fn = k.mover_fn;
        engine.spawn(name, [this, &core, fn, args, position, group, noc_id,
                            prof, start, trace] {
          DataMoverCtx ctx(*this, core, noc_id, args, position, group);
          ctx.set_profile(prof);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelStart, trace->now(), 0,
                          {core.id()});
          }
          fn(ctx);
          if (trace != nullptr) {
            trace->record(sim::TraceEventKind::kKernelEnd, trace->now(), 0,
                          {core.id()});
          }
          prof->lifetime = hw_.engine().now() - start;
          prof->active = ctx.active_time();
          prof->finished = true;
        });
      }
    }
  }
  if (config_.sim_time_limit > 0) {
    // Watchdog: bound the program in simulated time; a hang becomes a typed
    // error naming the stuck kernels instead of an engine-drain deadlock.
    if (!engine.run_until_done(start + config_.sim_time_limit)) {
      finalise_profile(start);
      wedged_ = true;
      if (auto* plan = hw_.fault_plan()) plan->commit_elapsed_kills(engine.now());
      std::ostringstream os;
      os << "program exceeded sim_time_limit (" << config_.sim_time_limit
         << " ns); stuck kernels:";
      for (const auto& stuck : engine.blocked_process_names()) os << ' ' << stuck;
      throw DeviceTimeoutError(os.str());
    }
  } else {
    try {
      engine.run();
    } catch (...) {
      finalise_profile(start);
      if (auto* plan = hw_.fault_plan()) plan->commit_elapsed_kills(engine.now());
      throw;
    }
  }
  last_kernel_duration_ = engine.now() - start;
}

void Device::finalise_profile(SimTime start) {
  // Partial-profile contract: kernels that never finished keep the activity
  // charged so far (written through live) and a lifetime clamped at the
  // failure time.
  const SimTime at_failure = hw_.engine().now() - start;
  for (auto& p : profile_) {
    if (!p.finished) p.lifetime = at_failure;
  }
}

Device::DeviceBarrier& Device::barrier(int barrier_id) {
  const auto it = barriers_.find(barrier_id);
  if (it == barriers_.end()) {
    TTSIM_THROW_API("global barrier " << barrier_id
                                      << " was not configured on this program");
  }
  return *it->second;
}

}  // namespace ttsim::ttmetal
