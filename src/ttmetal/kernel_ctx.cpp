#include "ttsim/ttmetal/kernel_ctx.hpp"

#include <algorithm>
#include <cstring>

#include "ttsim/sim/fpu.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/race.hpp"

namespace ttsim::ttmetal {

KernelCtxBase::KernelCtxBase(Device& device, sim::TensixCore& core,
                             std::vector<std::uint32_t> args, int position,
                             int group_size)
    : device_(device),
      core_(core),
      args_(std::move(args)),
      position_(position),
      group_size_(group_size),
      trace_(device.hw().trace()) {}

std::uint32_t KernelCtxBase::arg(std::size_t i) const {
  if (i >= args_.size()) {
    TTSIM_THROW_API("runtime arg " << i << " requested but only " << args_.size()
                                   << " were set");
  }
  return args_[i];
}

std::uint64_t KernelCtxBase::arg64(std::size_t i) const {
  return static_cast<std::uint64_t>(arg(i)) |
         (static_cast<std::uint64_t>(arg(i + 1)) << 32);
}

SimTime KernelCtxBase::now() const { return device_.hw().engine().now(); }

void KernelCtxBase::charge(SimTime cost) {
  maybe_halt();
  if (cost > 0) {
    active_ += cost;
    if (profile_ != nullptr) profile_->active = active_;
    device_.hw().engine().delay(cost);
  }
}

void KernelCtxBase::maybe_halt() {
  sim::FaultPlan* plan = device_.hw().fault_plan();
  if (plan == nullptr) return;
  const SimTime t = device_.hw().engine().now();
  if (!plan->core_dead(core_.id(), t)) return;
  plan->record_core_failure(t, core_.id());
  core_.halt_current_process();
}

void KernelCtxBase::note_cb_wait(SimTime waited) {
  if (waited <= 0) return;
  cb_wait_ += waited;
  if (profile_ != nullptr) profile_->cb_wait = cb_wait_;
}

void KernelCtxBase::verify_read(std::uint32_t l1_addr, std::uint32_t size,
                                const char* what) {
  if (verify_ != nullptr) verify_->on_read(vtid_, core_.id(), l1_addr, size, what);
}

void KernelCtxBase::verify_write(std::uint32_t l1_addr, std::uint32_t size,
                                 const char* what) {
  if (verify_ != nullptr) verify_->on_write(vtid_, core_.id(), l1_addr, size, what);
}

void KernelCtxBase::note_remote_sem_post(int dst_core, int sem_id) {
  device_.note_sem_poster(dst_core, sem_id, kernel_name_);
}

void KernelCtxBase::cb_reserve_back(int cb_id, std::uint32_t pages) {
  charge(device_.spec().cb_op_cost);
  device_.note_cb_producer(core_.id(), cb_id, kernel_name_);
  const SimTime t0 = now();
  core_.cb(cb_id).reserve_back(pages);
  note_cb_wait(now() - t0);
  // Space granted: order this producer behind the consumer pops that freed
  // the pages it will now overwrite.
  if (verify_ != nullptr) {
    verify_->acquire(vtid_, verify::Verifier::cb_space_key(core_.id(), cb_id));
  }
}

void KernelCtxBase::cb_push_back(int cb_id, std::uint32_t pages) {
  charge(device_.spec().cb_op_cost);
  device_.note_cb_producer(core_.id(), cb_id, kernel_name_);
  // Publish the filled pages: consumers acquiring the data clock after their
  // wait_front are ordered behind every write this producer made.
  if (verify_ != nullptr) {
    verify_->release(vtid_, verify::Verifier::cb_data_key(core_.id(), cb_id));
  }
  core_.cb(cb_id).push_back(pages);
}

void KernelCtxBase::cb_wait_front(int cb_id, std::uint32_t pages) {
  charge(device_.spec().cb_op_cost);
  device_.note_cb_consumer(core_.id(), cb_id, kernel_name_);
  const SimTime t0 = now();
  core_.cb(cb_id).wait_front(pages);
  note_cb_wait(now() - t0);
  if (verify_ != nullptr) {
    verify_->acquire(vtid_, verify::Verifier::cb_data_key(core_.id(), cb_id));
  }
}

void KernelCtxBase::cb_pop_front(int cb_id, std::uint32_t pages) {
  charge(device_.spec().cb_op_cost);
  device_.note_cb_consumer(core_.id(), cb_id, kernel_name_);
  // Return the pages: producers acquiring the space clock in reserve_back
  // are ordered behind every read this consumer made.
  if (verify_ != nullptr) {
    verify_->release(vtid_, verify::Verifier::cb_space_key(core_.id(), cb_id));
  }
  core_.cb(cb_id).pop_front(pages);
}

std::uint32_t KernelCtxBase::get_write_ptr(int cb_id, std::uint32_t page_offset) {
  return l1_address_of(core_.cb(cb_id).write_ptr(page_offset));
}

std::uint32_t KernelCtxBase::get_read_ptr(int cb_id) {
  return l1_address_of(core_.cb(cb_id).read_ptr());
}

std::byte* KernelCtxBase::l1_ptr(std::uint32_t l1_addr) {
  TTSIM_CHECK_MSG(l1_addr < core_.sram().capacity(), "L1 address out of range");
  return core_.sram().data(l1_addr);
}

const std::byte* KernelCtxBase::l1_ptr(std::uint32_t l1_addr) const {
  TTSIM_CHECK_MSG(l1_addr < core_.sram().capacity(), "L1 address out of range");
  return core_.sram().data(l1_addr);
}

std::uint32_t KernelCtxBase::l1_address_of(const std::byte* p) const {
  const std::byte* base = core_.sram().data(0);
  TTSIM_CHECK_MSG(p >= base && p < base + core_.sram().capacity(),
                  "pointer does not point into this core's SRAM");
  return static_cast<std::uint32_t>(p - base);
}

void KernelCtxBase::semaphore_post(int sem_id, std::int64_t n) {
  charge(device_.spec().cb_op_cost);
  device_.note_sem_poster(core_.id(), sem_id, kernel_name_);
  if (verify_ != nullptr) {
    verify_->release(vtid_, verify::Verifier::sem_key(core_.id(), sem_id));
  }
  if (trace_ != nullptr) {
    trace_->record(sim::TraceEventKind::kSemPost, now(), 0,
                   {core_.id(), sem_id, static_cast<std::int32_t>(n)});
  }
  core_.semaphore(sem_id).post(n);
}

void KernelCtxBase::semaphore_wait(int sem_id, std::int64_t n) {
  charge(device_.spec().cb_op_cost);
  const SimTime t0 = now();
  core_.semaphore(sem_id).wait(n);
  if (verify_ != nullptr) {
    verify_->acquire(vtid_, verify::Verifier::sem_key(core_.id(), sem_id));
  }
  if (trace_ != nullptr && now() > t0) {
    trace_->record(sim::TraceEventKind::kSemWait, t0, now() - t0,
                   {core_.id(), sem_id, static_cast<std::int32_t>(n)});
  }
}

void KernelCtxBase::global_barrier(int barrier_id) {
  // One NoC round trip to signal arrival at the rendezvous core.
  charge(device_.spec().read_latency);
  const SimTime t0 = now();
  auto& b = device_.barrier(barrier_id);
  const std::uint64_t gen = b.generation;
  // All-to-all edge: release on arrival, acquire after the rendezvous — by
  // then every participant's release is merged into the barrier clock.
  if (verify_ != nullptr) {
    verify_->release(vtid_, verify::Verifier::barrier_key(barrier_id));
  }
  if (++b.arrived == b.expected) {
    b.arrived = 0;
    ++b.generation;
    b.queue.notify_all();
  } else {
    while (b.generation == gen) b.queue.wait();
  }
  if (verify_ != nullptr) {
    verify_->acquire(vtid_, verify::Verifier::barrier_key(barrier_id));
  }
  if (trace_ != nullptr && now() > t0) {
    trace_->record(sim::TraceEventKind::kGlobalBarrierWait, t0, now() - t0,
                   {core_.id(), barrier_id});
  }
}

void KernelCtxBase::loop_tick() { charge(device_.spec().loop_overhead); }

void KernelCtxBase::spin(SimTime dt) { charge(dt); }

// ---------------------------------------------------------------------------
// DataMoverCtx

DataMoverCtx::DataMoverCtx(Device& device, sim::TensixCore& core, int noc_id,
                           std::vector<std::uint32_t> args, int position,
                           int group_size)
    : KernelCtxBase(device, core, std::move(args), position, group_size),
      noc_id_(noc_id),
      reads_(std::make_shared<sim::CompletionTracker>(device.hw().engine())),
      writes_(std::make_shared<sim::CompletionTracker>(device.hw().engine())) {
  reads_->set_site({sim::WaitSite::Kind::kNocRead, core.id(), noc_id});
  writes_->set_site({sim::WaitSite::Kind::kNocWrite, core.id(), noc_id});
  if (trace_ != nullptr) {
    noc_track_ = trace_->track(noc_id_ == 0 ? "noc0" : "noc1");
  }
}

void DataMoverCtx::noc_async_read(std::uint64_t noc_addr, std::uint32_t l1_dst,
                                  std::uint32_t size) {
  read_impl(noc_addr, l1_dst, size, nullptr, -1);
}

void DataMoverCtx::noc_async_read(std::uint64_t noc_addr, std::uint32_t l1_dst,
                                  std::uint32_t size, int tag) {
  read_impl(noc_addr, l1_dst, size, read_tag(tag), tag);
}

const std::shared_ptr<sim::CompletionTracker>& DataMoverCtx::read_tag(int tag) {
  TTSIM_CHECK_MSG(tag >= 0 && tag < 256, "read tag out of range");
  if (static_cast<std::size_t>(tag) >= read_tags_.size()) {
    read_tags_.resize(static_cast<std::size_t>(tag) + 1);
  }
  auto& tracker = read_tags_[static_cast<std::size_t>(tag)];
  if (tracker == nullptr) {
    tracker = std::make_shared<sim::CompletionTracker>(device_.hw().engine());
    tracker->set_site({sim::WaitSite::Kind::kNocRead, core_.id(), tag});
  }
  return tracker;
}

void DataMoverCtx::read_impl(std::uint64_t noc_addr, std::uint32_t l1_dst,
                             std::uint32_t size,
                             std::shared_ptr<sim::CompletionTracker> tag_tracker,
                             int tag) {
  const SimTime t0 = now();
  charge(device_.spec().read_issue_overhead);
  if (verify_ != nullptr) {
    // The landing clobbers [l1_dst, l1_dst+size) at an unknown time before
    // the matching barrier; the detector also enforces the 256-bit DRAM
    // source alignment rule here.
    verify_->on_noc_read_issue(vtid_, core_.id(), l1_dst, size, tag, noc_addr,
                               device_.spec().dram_alignment);
  }
  auto& hw = device_.hw();
  sim::FaultPlan* plan = hw.fault_plan();
  if (plan != nullptr) charge(plan->mover_stall(now(), core_.id()));
  const int hops = hw.hops_to_dram(core_, noc_addr, noc_id_);
  SimTime extra = 0;
  if (plan != nullptr) {
    extra = plan->noc_transaction(now(), core_.id(), noc_id_, noc_addr, size,
                                  /*is_write=*/false)
                .extra_delay;
  }
  // Capture the issuing track now: the completion callback runs in
  // scheduler context, where "current track" would resolve to the host.
  int track = -1;
  if (trace_ != nullptr) {
    track = trace_->current_track();
    trace_->record(sim::TraceEventKind::kMoverReadIssue, t0, now() - t0,
                   {core_.id(), noc_id_, hops, noc_addr, size}, track);
    trace_->record(sim::TraceEventKind::kNocTransfer, now(),
                   static_cast<SimTime>(hops) * device_.spec().noc_hop_latency,
                   {core_.id(), noc_id_, hops, noc_addr, size}, noc_track_);
  }
  reads_->issue();
  if (tag_tracker != nullptr) tag_tracker->issue();
  auto& engine = hw.engine();
  // The callback completes the global tracker first, then the tag tracker —
  // tag bookkeeping never adds engine events or time (CompletionTracker's
  // complete() with no waiter is pure counter work), so untagged and tagged
  // reads are timing- and trace-identical.
  hw.dram().read(noc_addr, l1_ptr(l1_dst), size, core_.dma(noc_id_), hops,
                 [t = reads_, tag = std::move(tag_tracker), &engine, extra,
                  tr = trace_, track, core = core_.id(), noc_addr, size] {
                   if (tr != nullptr) {
                     tr->record(sim::TraceEventKind::kMoverReadComplete,
                                tr->now(), 0, {core, -1, 0, noc_addr, size},
                                track);
                   }
                   if (extra > 0) {
                     engine.schedule_after(extra, [t, tag] {
                       t->complete();
                       if (tag != nullptr) tag->complete();
                     });
                   } else {
                     t->complete();
                     if (tag != nullptr) tag->complete();
                   }
                 });
}

void DataMoverCtx::noc_async_write(std::uint32_t l1_src, std::uint64_t noc_addr,
                                   std::uint32_t size) {
  const SimTime t0 = now();
  charge(device_.spec().write_issue_overhead);
  // The DRAM model snapshots the source at issue, so this is when the L1
  // data is read.
  verify_read(l1_src, size, "noc_async_write source");
  auto& hw = device_.hw();
  sim::FaultPlan* plan = hw.fault_plan();
  if (plan != nullptr) charge(plan->mover_stall(now(), core_.id()));
  const int hops = hw.hops_to_dram(core_, noc_addr, noc_id_);
  sim::NocFaultDecision fd;
  if (plan != nullptr) {
    fd = plan->noc_transaction(now(), core_.id(), noc_id_, noc_addr, size,
                               /*is_write=*/true);
  }
  int track = -1;
  if (trace_ != nullptr) {
    track = trace_->current_track();
    trace_->record(sim::TraceEventKind::kMoverWriteIssue, t0, now() - t0,
                   {core_.id(), noc_id_, hops, noc_addr, size}, track);
    trace_->record(sim::TraceEventKind::kNocTransfer, now(),
                   static_cast<SimTime>(hops) * device_.spec().noc_hop_latency,
                   {core_.id(), noc_id_, hops, noc_addr, size}, noc_track_);
  }
  auto complete_event = [tr = trace_, track, core = core_.id(), noc_addr,
                         size] {
    if (tr != nullptr) {
      tr->record(sim::TraceEventKind::kMoverWriteComplete, tr->now(), 0,
                 {core, -1, 0, noc_addr, size}, track);
    }
  };
  auto& engine = hw.engine();
  if (fd.drop) {
    // Acknowledged but never lands: the mover pays the usual latency and the
    // barrier completes, but DRAM keeps its old contents — silent data loss,
    // detectable only by downstream checksums / verification.
    writes_->issue();
    engine.schedule_after(device_.spec().write_latency + fd.extra_delay,
                          [t = writes_, complete_event] {
                            complete_event();
                            t->complete();
                          });
    return;
  }
  const int copies = fd.duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    writes_->issue();
    hw.dram().write(noc_addr, l1_ptr(l1_src), size, core_.dma(noc_id_), hops,
                    [t = writes_, &engine, extra = fd.extra_delay,
                     complete_event] {
                      complete_event();
                      if (extra > 0) {
                        engine.schedule_after(extra, [t] { t->complete(); });
                      } else {
                        t->complete();
                      }
                    });
  }
}

void DataMoverCtx::noc_async_read_barrier() {
  const SimTime t0 = now();
  reads_->barrier();
  // The untagged barrier waits on every read this mover issued, tagged or
  // not — all its in-flight landings are now ordered writes.
  if (verify_ != nullptr) verify_->on_noc_read_retire(vtid_, -1);
  if (trace_ != nullptr && now() > t0) {
    trace_->record(sim::TraceEventKind::kReadBarrierWait, t0, now() - t0,
                   {core_.id(), noc_id_});
  }
}

void DataMoverCtx::noc_async_read_barrier(int tag) {
  const SimTime t0 = now();
  read_tag(tag)->barrier();
  if (verify_ != nullptr) verify_->on_noc_read_retire(vtid_, tag);
  // Same event as the global barrier: a metrics consumer sees "time this
  // mover stalled waiting for reads" either way.
  if (trace_ != nullptr && now() > t0) {
    trace_->record(sim::TraceEventKind::kReadBarrierWait, t0, now() - t0,
                   {core_.id(), noc_id_});
  }
}

void DataMoverCtx::noc_async_write_barrier() {
  const SimTime t0 = now();
  writes_->barrier();
  if (trace_ != nullptr && now() > t0) {
    trace_->record(sim::TraceEventKind::kWriteBarrierWait, t0, now() - t0,
                   {core_.id(), noc_id_});
  }
}

void DataMoverCtx::l1_memcpy(std::uint32_t l1_dst, std::uint32_t l1_src,
                             std::uint32_t size) {
  const auto& spec = device_.spec();
  const SimTime t0 = now();
  charge(spec.memcpy_call_overhead +
         static_cast<SimTime>(spec.memcpy_ns_per_byte * static_cast<double>(size) *
                              static_cast<double>(kNanosecond)));
  if (trace_ != nullptr) {
    trace_->record(sim::TraceEventKind::kMoverMemcpy, t0, now() - t0,
                   {core_.id(), -1, 0, l1_dst, size});
  }
  verify_read(l1_src, size, "l1_memcpy source");
  verify_write(l1_dst, size, "l1_memcpy destination");
  std::memmove(l1_ptr(l1_dst), l1_ptr(l1_src), size);
}

void DataMoverCtx::l1_store_u16(std::uint32_t l1_addr, std::uint16_t value) {
  charge(2 * kNanosecond);  // a couple of baby-core store cycles
  verify_write(l1_addr, sizeof(value), "l1_store_u16");
  std::memcpy(l1_ptr(l1_addr), &value, sizeof(value));
}

void DataMoverCtx::noc_async_write_core(int dst_core, std::uint32_t dst_l1,
                                        std::uint32_t src_l1, std::uint32_t size) {
  const SimTime t0 = now();
  charge(device_.spec().write_issue_overhead);
  auto& hw = device_.hw();
  sim::FaultPlan* plan = hw.fault_plan();
  if (plan != nullptr) charge(plan->mover_stall(now(), core_.id()));
  sim::TensixCore& dst = hw.worker(dst_core);
  TTSIM_CHECK_MSG(dst_l1 + size <= dst.sram().capacity(),
                  "core-to-core write past the target core's SRAM");
  auto& noc = hw.noc(noc_id_);
  const auto& spec = device_.spec();
  auto& engine = hw.engine();
  sim::NocFaultDecision fd;
  if (plan != nullptr) {
    fd = plan->noc_transaction(engine.now(), core_.id(), noc_id_, dst_l1, size,
                               /*is_write=*/true);
  }
  // Drain through this mover's DMA engine, transit the NoC path, land in
  // the destination core's L1 at the simulated completion time.
  const SimTime drain = transfer_time(size, spec.dma_write_gbs);
  const SimTime dma_end =
      core_.dma(noc_id_).acquire(engine.now(), drain) + drain;
  const SimTime complete = dma_end + noc.hop_latency(core_.coord(), dst.coord()) +
                           spec.write_latency + fd.extra_delay;
  int track = -1;
  if (trace_ != nullptr) {
    track = trace_->current_track();
    const int hops = noc.hops(core_.coord(), dst.coord());
    trace_->record(sim::TraceEventKind::kMoverWriteIssue, t0, now() - t0,
                   {core_.id(), noc_id_, hops, dst_l1, size}, track);
    trace_->record(sim::TraceEventKind::kNocTransfer, dma_end,
                   noc.hop_latency(core_.coord(), dst.coord()),
                   {core_.id(), noc_id_, hops, dst_l1, size}, noc_track_);
  }
  auto complete_event = [tr = trace_, track, core = core_.id(), dst_l1, size] {
    if (tr != nullptr) {
      tr->record(sim::TraceEventKind::kMoverWriteComplete, tr->now(), 0,
                 {core, -1, 0, dst_l1, size}, track);
    }
  };
  writes_->issue();
  verify_read(src_l1, size, "noc_async_write_core source");
  if (fd.drop) {
    // Dropped core-to-core write: latency is paid but nothing lands.
    engine.schedule_at(complete, [t = writes_, complete_event] {
      complete_event();
      t->complete();
    });
    return;
  }
  if (verify_ != nullptr) {
    // The landing memcpy into the destination core runs strictly before the
    // matching noc_semaphore_inc arrives there (same NoC, earlier schedule),
    // so recording it at issue with this mover's clock keeps the usual
    // release-via-semaphore ordering exact.
    verify_->on_write(vtid_, dst_core, dst_l1, size, "noc_async_write_core landing");
  }
  std::vector<std::byte> snapshot(l1_ptr(src_l1), l1_ptr(src_l1) + size);
  engine.schedule_at(complete, [&dst, dst_l1, data = std::move(snapshot),
                                t = writes_, complete_event]() mutable {
    std::memcpy(dst.sram().data(dst_l1), data.data(), data.size());
    complete_event();
    t->complete();
  });
}

void DataMoverCtx::noc_semaphore_inc(int dst_core, int sem_id, std::int64_t n) {
  charge(device_.spec().cb_op_cost);
  note_remote_sem_post(dst_core, sem_id);
  if (verify_ != nullptr) {
    // Release at the call: the scheduled post lands no earlier than every
    // write this mover has issued so far (NoC ordering), so a waiter that
    // acquires after the post is correctly ordered behind those writes.
    verify_->release(vtid_, verify::Verifier::sem_key(dst_core, sem_id));
  }
  auto& hw = device_.hw();
  sim::TensixCore& dst = hw.worker(dst_core);
  auto& noc = hw.noc(noc_id_);
  // The increment is ordered behind this mover's in-flight writes on the
  // same NoC (tt-metal semantics): it fires after the DMA engine drains.
  const SimTime at = std::max(hw.engine().now(), core_.dma(noc_id_).free_at()) +
                     noc.hop_latency(core_.coord(), dst.coord()) +
                     device_.spec().write_latency;
  hw.engine().schedule_at(at, [&dst, sem_id, n] { dst.semaphore(sem_id).post(n); });
}

std::uint32_t DataMoverCtx::read_data_aligned(std::uint64_t address,
                                              std::uint64_t starting_address,
                                              std::uint32_t size,
                                              std::uint32_t l1_buffer) {
  // Paper Listing 4: round the read down to the previous 256-bit boundary,
  // read the extra prefix, and tell the caller where its data starts.
  const auto alignment = device_.spec().dram_alignment;
  const std::uint32_t offset =
      static_cast<std::uint32_t>((address - starting_address) % alignment);
  const std::uint64_t offset_start = address - offset;
  const std::uint32_t read_size = size + offset;
  noc_async_read(get_noc_addr(offset_start), l1_buffer, read_size);
  noc_async_read_barrier();
  return offset;
}

// ---------------------------------------------------------------------------
// ComputeCtx

template <typename Fn>
void ComputeCtx::fpu_op(Fn&& fn) {
  // The Fpu advances engine time itself (it models a hardware unit, not a
  // kernel op), so bracket the call to attribute that time to this kernel as
  // FPU-busy — previously it was lumped into the stall remainder. delay()
  // resumes the process at exactly t0 + cost, so the measurement is exact.
  maybe_halt();
  const SimTime t0 = now();
  fn();
  const SimTime dt = now() - t0;
  if (dt > 0) {
    active_ += dt;
    fpu_busy_ += dt;
    if (profile_ != nullptr) {
      profile_->active = active_;
      profile_->fpu_busy = fpu_busy_;
    }
    if (trace_ != nullptr) {
      trace_->record(sim::TraceEventKind::kFpuOp, t0, dt, {core_.id()});
    }
  }
}

void ComputeCtx::verify_tile_read(int cb_id, std::uint32_t idx, const char* what) {
  if (verify_ == nullptr) return;
  auto& cb = core_.cb(cb_id);
  // The FPU fetches a full tile from read_ptr() + idx * kTileBytes, but only
  // read_valid_bytes() of it is meaningful (an in-place override may alias a
  // row much narrower than a tile; a small CB page holds less than a tile) —
  // recording the honest fetch span would overlap unrelated neighbours.
  const std::uint32_t addr = l1_address_of(cb.read_ptr()) +
                             idx * sim::Fpu::kTileBytes;
  const std::uint32_t size = std::min(sim::Fpu::kTileBytes, cb.read_valid_bytes());
  verify_->on_read(vtid_, core_.id(), addr, size, what);
}

void ComputeCtx::add_tiles(int cb_a, int cb_b, std::uint32_t ia, std::uint32_t ib,
                           int dst) {
  verify_tile_read(cb_a, ia, "add_tiles operand a");
  verify_tile_read(cb_b, ib, "add_tiles operand b");
  fpu_op([&] { core_.fpu().add_tiles(core_.cb(cb_a), core_.cb(cb_b), ia, ib, dst); });
}

void ComputeCtx::sub_tiles(int cb_a, int cb_b, std::uint32_t ia, std::uint32_t ib,
                           int dst) {
  verify_tile_read(cb_a, ia, "sub_tiles operand a");
  verify_tile_read(cb_b, ib, "sub_tiles operand b");
  fpu_op([&] { core_.fpu().sub_tiles(core_.cb(cb_a), core_.cb(cb_b), ia, ib, dst); });
}

void ComputeCtx::mul_tiles(int cb_a, int cb_b, std::uint32_t ia, std::uint32_t ib,
                           int dst) {
  verify_tile_read(cb_a, ia, "mul_tiles operand a");
  verify_tile_read(cb_b, ib, "mul_tiles operand b");
  fpu_op([&] { core_.fpu().mul_tiles(core_.cb(cb_a), core_.cb(cb_b), ia, ib, dst); });
}

void ComputeCtx::copy_tile(int cb, std::uint32_t idx, int dst) {
  verify_tile_read(cb, idx, "copy_tile source");
  fpu_op([&] { core_.fpu().copy_tile(core_.cb(cb), idx, dst); });
}

void ComputeCtx::pack_tile(int dst, int cb, std::uint32_t page_offset) {
  if (verify_ != nullptr) {
    // pack_tile stores a full tile; the spill past a narrow logical row is
    // real SRAM traffic (callers size their strides for it), so record the
    // honest span.
    verify_->on_write(vtid_, core_.id(),
                      l1_address_of(core_.cb(cb).write_ptr(page_offset)),
                      sim::Fpu::kTileBytes, "pack_tile");
  }
  fpu_op([&] { core_.fpu().pack_tile(dst, core_.cb(cb), page_offset); });
}

void ComputeCtx::cb_set_rd_ptr(int cb_id, std::uint32_t l1_addr,
                               std::uint32_t valid_bytes) {
  charge(device_.spec().cb_op_cost);
  core_.cb(cb_id).set_read_ptr(l1_ptr(l1_addr), valid_bytes);
}

void ComputeCtx::cb_set_wr_ptr(int cb_id, std::uint32_t l1_addr) {
  charge(device_.spec().cb_op_cost);
  core_.cb(cb_id).set_write_ptr(l1_ptr(l1_addr));
}

void ComputeCtx::cb_clear_rd_ptr(int cb_id) {
  charge(device_.spec().cb_op_cost);
  core_.cb(cb_id).clear_read_ptr();
}

void ComputeCtx::abs_tile(int dst) {
  fpu_op([&] { core_.fpu().abs_tile(dst); });
}

void ComputeCtx::eq_scalar_tile(int dst, bfloat16_t v) {
  fpu_op([&] { core_.fpu().eq_scalar_tile(dst, v); });
}

bfloat16_t ComputeCtx::reduce_max(int dst) {
  bfloat16_t result{};
  fpu_op([&] { result = core_.fpu().reduce_max(dst); });
  return result;
}

}  // namespace ttsim::ttmetal
