#include "ttsim/ttmetal/command_queue.hpp"

#include <algorithm>

#include "ttsim/common/crc32.hpp"
#include "ttsim/ttmetal/device.hpp"

namespace ttsim::ttmetal {

SimTime Event::completed_at() const {
  if (!completed()) {
    TTSIM_THROW_API("Event::completed_at on an event that has not completed");
  }
  return state_->time;
}

CommandQueue::CommandQueue(Device& device, int id) : device_(device), id_(id) {}

void CommandQueue::enqueue_write_buffer(Buffer& buffer, std::span<const std::byte> data,
                                        bool blocking, std::uint64_t offset) {
  device_.validate_transfer(buffer, offset, data.size(), /*is_write=*/true);
  auto c = std::make_unique<Command>();
  c->kind = Command::Kind::kWrite;
  c->buffer = &buffer;
  c->offset = offset;
  c->data.assign(data.begin(), data.end());
  c->landed.assign(data.begin(), data.end());
  c->sent_crc = crc32(data);
  c->duration = device_.spec().pcie_latency +
                transfer_time(data.size(), device_.spec().pcie_gbs);
  commands_.push_back(std::move(c));
  pump();
  if (blocking) finish();
}

void CommandQueue::enqueue_read_buffer(Buffer& buffer, std::span<std::byte> out,
                                       bool blocking, std::uint64_t offset) {
  device_.validate_transfer(buffer, offset, out.size(), /*is_write=*/false);
  auto c = std::make_unique<Command>();
  c->kind = Command::Kind::kRead;
  c->buffer = &buffer;
  c->offset = offset;
  c->out = out;
  c->duration = device_.spec().pcie_latency +
                transfer_time(out.size(), device_.spec().pcie_gbs);
  commands_.push_back(std::move(c));
  pump();
  if (blocking) finish();
}

void CommandQueue::enqueue_program(Program& program, bool blocking) {
  auto c = std::make_unique<Command>();
  c->kind = Command::Kind::kProgram;
  c->program = &program;
  commands_.push_back(std::move(c));
  pump();
  if (blocking) finish();
}

Event CommandQueue::record_event() {
  Event ev;
  ev.state_ = std::make_shared<Event::State>();
  ev.state_->device = &device_;
  auto c = std::make_unique<Command>();
  c->kind = Command::Kind::kRecordEvent;
  c->event = ev.state_;
  commands_.push_back(std::move(c));
  pump();
  return ev;
}

void CommandQueue::wait_for_event(const Event& event) {
  TTSIM_CHECK_MSG(event.valid(), "wait_for_event on a default-constructed Event");
  TTSIM_CHECK_MSG(event.state_->device == &device_,
                  "wait_for_event across devices is not supported (each card has "
                  "its own independent clock)");
  auto c = std::make_unique<Command>();
  c->kind = Command::Kind::kWaitEvent;
  c->event = event.state_;
  commands_.push_back(std::move(c));
  pump();
}

void CommandQueue::finish() {
  device_.drive([this] { return commands_.empty(); });
}

std::size_t CommandQueue::cancel_pending() {
  std::size_t cancelled = 0;
  // The head may be in flight: scheduled engine callbacks hold a reference
  // to it, so it must stay until it completes (or the device is destroyed).
  while (!commands_.empty() && !commands_.back()->started) {
    Command& c = *commands_.back();
    if (c.kind == Command::Kind::kWaitEvent && c.registered) {
      auto& waiters = c.event->waiters;
      waiters.erase(std::remove(waiters.begin(), waiters.end(), this),
                    waiters.end());
    }
    commands_.pop_back();
    ++cancelled;
  }
  return cancelled;
}

void CommandQueue::pump() {
  while (!commands_.empty()) {
    Command& c = *commands_.front();
    if (c.started) return;  // async execution in flight; completion pumps again
    switch (c.kind) {
      case Command::Kind::kWaitEvent: {
        if (!c.event->completed) {
          if (!c.registered) {
            c.event->waiters.push_back(this);
            c.registered = true;
          }
          return;  // parked until the event's recording queue reaches it
        }
        commands_.pop_front();
        continue;
      }
      case Command::Kind::kRecordEvent: {
        auto state = c.event;
        commands_.pop_front();
        state->completed = true;
        state->time = device_.hw().engine().now();
        std::vector<CommandQueue*> waiters = std::move(state->waiters);
        state->waiters.clear();
        for (CommandQueue* q : waiters) q->pump();
        continue;
      }
      case Command::Kind::kWrite:
      case Command::Kind::kRead:
        c.started = true;
        start_transfer(c);
        return;
      case Command::Kind::kProgram:
        c.started = true;
        start_program(c);
        return;
    }
  }
}

void CommandQueue::complete_head() {
  commands_.pop_front();
  pump();
}

// --- transfers -------------------------------------------------------------
// These callbacks replicate the historical blocking Device::write_buffer /
// read_buffer loops step for step (same simulated delays, same pcie_time_
// accounting, same trace records at the same timestamps and on the host
// track, same retry/backoff/error text), so the blocking wrappers stay
// bit-identical while queued transfers can overlap kernel execution.

void CommandQueue::start_transfer(Command& c) {
  device_.acquire_pcie([this, &c] { transfer_attempt(c); });
}

void CommandQueue::transfer_attempt(Command& c) {
  device_.hw().engine().schedule_after(c.duration, [this, &c] { transfer_landed(c); });
}

void CommandQueue::transfer_landed(Command& c) {
  auto& engine = device_.hw().engine();
  const bool is_write = c.kind == Command::Kind::kWrite;
  const std::uint64_t addr = c.buffer->address() + c.offset;
  const std::size_t size = is_write ? c.data.size() : c.out.size();
  device_.pcie_time_ += c.duration;
  if (auto* tr = device_.hw().trace()) {
    tr->record(sim::TraceEventKind::kPcieTransfer, engine.now() - c.duration,
               c.duration, {-1, c.attempt, is_write ? 1 : 0, addr, size});
  }
  sim::FaultPlan* plan = device_.hw().fault_plan();
  if (is_write) {
    std::copy(c.data.begin(), c.data.end(), c.landed.begin());
    std::uint64_t corrupt_at = 0;
    if (plan != nullptr && plan->pcie_corrupt(engine.now(), size, &corrupt_at)) {
      c.landed[corrupt_at] ^= std::byte{0x40};
      if (c.first_fault.empty()) c.first_fault = sim::to_string(*plan->last_event());
    }
    device_.hw().dram().host_write(addr, c.landed.data(), c.landed.size());
  } else {
    if (c.attempt == 0) {
      // True device-side contents, captured once the transfer's simulated
      // time has elapsed.
      c.landed.resize(size);
      device_.hw().dram().host_read(addr, c.landed.data(), c.landed.size());
      c.sent_crc = crc32(c.landed);
    }
    std::copy(c.landed.begin(), c.landed.end(), c.out.begin());
    std::uint64_t corrupt_at = 0;
    if (plan != nullptr && plan->pcie_corrupt(engine.now(), size, &corrupt_at)) {
      c.out[corrupt_at] ^= std::byte{0x40};
      if (c.first_fault.empty()) c.first_fault = sim::to_string(*plan->last_event());
    }
  }
  if (!device_.config_.checksum_transfers) {
    finish_transfer(c);
    return;
  }
  // The device checksums the payload in-line; the host pays one extra
  // round-trip latency for the acknowledgement.
  engine.schedule_after(device_.spec().pcie_latency, [this, &c] { transfer_verify(c); });
}

void CommandQueue::transfer_verify(Command& c) {
  auto& engine = device_.hw().engine();
  const bool is_write = c.kind == Command::Kind::kWrite;
  device_.pcie_time_ += device_.spec().pcie_latency;
  const std::uint32_t got_crc = is_write ? crc32(c.landed) : crc32(c.out);
  if (got_crc == c.sent_crc) {
    finish_transfer(c);
    return;
  }
  if (c.attempt >= device_.config_.transfer_max_retries) {
    device_.post_host_error(std::make_exception_ptr(TransferError(
        std::string(is_write ? "write_buffer" : "read_buffer") +
        " checksum mismatch persisted after " + std::to_string(c.attempt) +
        " retries; first fault: " +
        (c.first_fault.empty() ? "<none recorded>" : c.first_fault))));
    finish_transfer(c);
    return;
  }
  ++device_.transfer_retries_;
  const SimTime backoff = device_.config_.transfer_retry_backoff << c.attempt;
  ++c.attempt;
  engine.schedule_after(backoff, [this, &c, backoff] {
    device_.pcie_time_ += backoff;
    transfer_attempt(c);
  });
}

void CommandQueue::finish_transfer(Command& c) {
  (void)c;
  device_.release_pcie();
  complete_head();
}

// --- programs --------------------------------------------------------------

void CommandQueue::start_program(Command& c) {
  device_.acquire_program_slot([this, &c] { begin_program(c); });
}

void CommandQueue::begin_program(Command& c) {
  // Re-checked here (not only at enqueue): a program queued behind another
  // may find the device wedged by the time the cores free up.
  if (device_.wedged_) {
    device_.release_program_slot();
    device_.post_host_error(
        std::make_exception_ptr(ApiError(detail::kWedgedRunError)));
    complete_head();
    return;
  }
  Program* program = c.program;
  device_.hw().engine().schedule_after(
      device_.spec().program_dispatch,
      [this, program] { device_.launch_kernels(*program, *this); });
}

}  // namespace ttsim::ttmetal
