#include "ttsim/common/compare.hpp"

#include <cmath>
#include <sstream>

#include "ttsim/common/check.hpp"

namespace ttsim {

double ComparisonReport::ratio(std::size_t i) const {
  TTSIM_CHECK(i < rows_.size());
  if (rows_[i].paper == 0.0) return rows_[i].measured == 0.0 ? 1.0 : 0.0;
  return rows_[i].measured / rows_[i].paper;
}

double ComparisonReport::ordering_agreement() const {
  if (rows_.size() < 2) return 1.0;
  std::size_t pairs = 0, agree = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t j = i + 1; j < rows_.size(); ++j) {
      ++pairs;
      const double dp = rows_[i].paper - rows_[j].paper;
      const double dm = rows_[i].measured - rows_[j].measured;
      // Treat near-equal paper values (<3% apart) as ties that always agree:
      // the paper's own run-to-run noise is of that order.
      const double scale = std::max(std::fabs(rows_[i].paper), std::fabs(rows_[j].paper));
      if (scale == 0.0 || std::fabs(dp) / scale < 0.03 || dp * dm > 0.0) ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(pairs);
}

double ComparisonReport::geomean_ratio() const {
  if (rows_.empty()) return 1.0;
  double log_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double r = ratio(i);
    if (r > 0.0) {
      log_sum += std::log(r);
      ++n;
    }
  }
  return n > 0 ? std::exp(log_sum / static_cast<double>(n)) : 1.0;
}

std::string ComparisonReport::to_string() const {
  std::ostringstream os;
  os << "== " << id_ << ": " << description_ << " ==\n";
  Table t{"Configuration", "Paper", "Measured", "Unit", "Measured/Paper"};
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    t.add_row(rows_[i].label, Table::fmt(rows_[i].paper), Table::fmt(rows_[i].measured),
              rows_[i].unit, Table::fmt(ratio(i), 2) + "x");
  }
  os << t.to_string();
  os << "shape: ordering agreement " << Table::fmt(100.0 * ordering_agreement(), 1)
     << "% over " << rows_.size() << " rows; geomean measured/paper "
     << Table::fmt(geomean_ratio(), 2) << "x"
     << (lower_is_better_ ? " (lower is better)" : "") << "\n";
  return os.str();
}

}  // namespace ttsim
