#pragma once
/// \file units.hpp
/// Simulated-time and size units. All simulator timing is integer picoseconds
/// so that event ordering is exact and runs are bit-reproducible; helpers
/// convert to/from cycles at a given clock and to human units.

#include <cstdint>

#include "ttsim/common/check.hpp"

namespace ttsim {

/// Simulated time in picoseconds. 2^63 ps ≈ 106 days of simulated time —
/// far beyond any experiment here.
using SimTime = std::int64_t;

/// Device cycle count (at some clock frequency).
using Cycles = std::int64_t;

inline constexpr SimTime kPicosecond = 1;
inline constexpr SimTime kNanosecond = 1000;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// A clock domain: converts cycles <-> picoseconds.
class Clock {
 public:
  constexpr explicit Clock(double ghz) : period_ps_(static_cast<SimTime>(1000.0 / ghz + 0.5)) {
    // 1.2 GHz -> 833 ps period (rounded).
  }

  constexpr SimTime period_ps() const { return period_ps_; }
  constexpr SimTime to_time(Cycles c) const { return c * period_ps_; }
  constexpr Cycles to_cycles(SimTime t) const { return (t + period_ps_ - 1) / period_ps_; }
  constexpr double ghz() const { return 1000.0 / static_cast<double>(period_ps_); }

 private:
  SimTime period_ps_;
};

/// Convert simulated picoseconds to seconds (for reporting).
inline double to_seconds(SimTime t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

/// Time taken to move `bytes` at `gbytes_per_s` (GB/s, decimal), in ps.
inline SimTime transfer_time(std::uint64_t bytes, double gbytes_per_s) {
  TTSIM_CHECK(gbytes_per_s > 0.0);
  // bytes / (GB/s) = ns per byte * bytes; 1 GB/s == 1 byte/ns.
  const double ns = static_cast<double>(bytes) / gbytes_per_s;
  return static_cast<SimTime>(ns * static_cast<double>(kNanosecond) + 0.5);
}

/// Round `value` up to the next multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

/// Round `value` down to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t value, std::uint64_t align) {
  return value & ~(align - 1);
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace ttsim
