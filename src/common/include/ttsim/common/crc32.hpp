#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used by the
/// checksummed host<->device transfer path. Header-only, table-driven; the
/// table is built once at first use.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace ttsim {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// prior return value to checksum a buffer in chunks).
inline std::uint32_t crc32(std::span<const std::byte> data,
                           std::uint32_t crc = 0) {
  const auto& table = detail::crc32_table();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ttsim
