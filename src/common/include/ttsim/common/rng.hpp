#pragma once
/// \file rng.hpp
/// Deterministic, seedable RNG (xoshiro256**) used by workload generators and
/// property tests. std::mt19937 distributions are not cross-platform
/// reproducible, so we ship our own uniform helpers.

#include <cstdint>

namespace ttsim {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation,
/// re-typed). Deterministic across platforms for the same seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform int in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace ttsim
