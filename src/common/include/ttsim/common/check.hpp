#pragma once
/// \file check.hpp
/// Runtime invariant checking used throughout the library.
///
/// TTSIM_CHECK is always on (it guards simulator invariants whose violation
/// would silently corrupt results); TTSIM_DCHECK compiles out in release
/// builds and is used on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

#include "ttsim/common/error.hpp"

namespace ttsim {

/// Error thrown when a TTSIM_CHECK fails. Carries the failing expression and
/// source location so tests can assert on failure modes structurally instead
/// of string-matching what(). Errors raised outside a check site (e.g. the
/// engine's deadlock report) carry only the message: expr() is empty and
/// line() is 0.
///
/// SimError verdict: not retryable — a violated invariant is a logic error
/// that a fresh device generation would only reproduce. The one exception is
/// the engine's deadlock report, which subclasses this as DeadlockError and
/// overrides the verdict (a mid-run core kill with no watchdog armed drains
/// the event queue; reopening the card genuinely recovers).
class CheckError : public std::logic_error, public SimError {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
  CheckError(const char* expr, const char* file, int line, const std::string& what)
      : std::logic_error(what), expr_(expr), file_(file), line_(line) {}

  /// The stringified failing expression ("" when not from a check site).
  const std::string& expr() const { return expr_; }
  /// Source file of the failing check ("" when not from a check site).
  const std::string& file() const { return file_; }
  /// Source line of the failing check (0 when not from a check site).
  int line() const { return line_; }

  bool retryable() const noexcept override { return false; }
  const char* what() const noexcept override { return std::logic_error::what(); }

 private:
  std::string expr_;
  std::string file_;
  int line_ = 0;
};

/// Thrown by Engine::throw_deadlock (directly or via Device::drive) when the
/// event queue drains with processes still blocked. A CheckError — every
/// existing deadlock catch site keeps working — but retryable: the dominant
/// cause in practice is a fault-plan core kill parking its peers forever,
/// which a fresh device generation (minus the dead core) survives.
class DeadlockError : public CheckError {
 public:
  using CheckError::CheckError;
  bool retryable() const noexcept override { return true; }
};

/// Error thrown for user-facing API misuse (bad arguments, protocol
/// violations such as popping an empty circular buffer).
class ApiError : public std::invalid_argument {
 public:
  explicit ApiError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "TTSIM_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(expr, file, line, os.str());
}
}  // namespace detail

}  // namespace ttsim

#define TTSIM_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::ttsim::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TTSIM_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream ttsim_os_;                                        \
      ttsim_os_ << msg;                                                    \
      ::ttsim::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    ttsim_os_.str());                      \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define TTSIM_DCHECK(expr) ((void)0)
#else
#define TTSIM_DCHECK(expr) TTSIM_CHECK(expr)
#endif

#define TTSIM_THROW_API(msg)                   \
  do {                                         \
    std::ostringstream ttsim_os_;              \
    ttsim_os_ << msg;                          \
    throw ::ttsim::ApiError(ttsim_os_.str());  \
  } while (0)
