#pragma once
/// \file check.hpp
/// Runtime invariant checking used throughout the library.
///
/// TTSIM_CHECK is always on (it guards simulator invariants whose violation
/// would silently corrupt results); TTSIM_DCHECK compiles out in release
/// builds and is used on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ttsim {

/// Error thrown when a TTSIM_CHECK fails. Carries the failing expression and
/// source location so tests can assert on failure modes structurally instead
/// of string-matching what(). Errors raised outside a check site (e.g. the
/// engine's deadlock report) carry only the message: expr() is empty and
/// line() is 0.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
  CheckError(const char* expr, const char* file, int line, const std::string& what)
      : std::logic_error(what), expr_(expr), file_(file), line_(line) {}

  /// The stringified failing expression ("" when not from a check site).
  const std::string& expr() const { return expr_; }
  /// Source file of the failing check ("" when not from a check site).
  const std::string& file() const { return file_; }
  /// Source line of the failing check (0 when not from a check site).
  int line() const { return line_; }

 private:
  std::string expr_;
  std::string file_;
  int line_ = 0;
};

/// Error thrown for user-facing API misuse (bad arguments, protocol
/// violations such as popping an empty circular buffer).
class ApiError : public std::invalid_argument {
 public:
  explicit ApiError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "TTSIM_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(expr, file, line, os.str());
}
}  // namespace detail

}  // namespace ttsim

#define TTSIM_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::ttsim::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TTSIM_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream ttsim_os_;                                        \
      ttsim_os_ << msg;                                                    \
      ::ttsim::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                    ttsim_os_.str());                      \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define TTSIM_DCHECK(expr) ((void)0)
#else
#define TTSIM_DCHECK(expr) TTSIM_CHECK(expr)
#endif

#define TTSIM_THROW_API(msg)                   \
  do {                                         \
    std::ostringstream ttsim_os_;              \
    ttsim_os_ << msg;                          \
    throw ::ttsim::ApiError(ttsim_os_.str());  \
  } while (0)
