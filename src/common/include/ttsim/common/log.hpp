#pragma once
/// \file log.hpp
/// Minimal leveled logger. The simulator's equivalent of tt-metal's "print
/// server": device kernels may log, and (as the paper found on real
/// hardware) enabling device logging costs simulated time, which Table I/II
/// reproductions must avoid — so it is off by default.

#include <cstdio>
#include <sstream>
#include <string>

namespace ttsim {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log configuration. Not thread-safe to mutate while sim threads run;
/// set once at startup (tests and benches do).
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  /// Parse "trace|debug|info|warn|error|off"; unknown names leave level unchanged.
  static void set_level(const std::string& name);
  static void write(LogLevel lvl, const std::string& msg);
};

namespace detail {
template <typename... Args>
void log_impl(LogLevel lvl, Args&&... args) {
  if (static_cast<int>(lvl) < static_cast<int>(Log::level())) return;
  std::ostringstream os;
  (os << ... << args);
  Log::write(lvl, os.str());
}
}  // namespace detail

}  // namespace ttsim

#define TTSIM_LOG_TRACE(...) ::ttsim::detail::log_impl(::ttsim::LogLevel::kTrace, __VA_ARGS__)
#define TTSIM_LOG_DEBUG(...) ::ttsim::detail::log_impl(::ttsim::LogLevel::kDebug, __VA_ARGS__)
#define TTSIM_LOG_INFO(...) ::ttsim::detail::log_impl(::ttsim::LogLevel::kInfo, __VA_ARGS__)
#define TTSIM_LOG_WARN(...) ::ttsim::detail::log_impl(::ttsim::LogLevel::kWarn, __VA_ARGS__)
#define TTSIM_LOG_ERROR(...) ::ttsim::detail::log_impl(::ttsim::LogLevel::kError, __VA_ARGS__)
