#pragma once
/// \file stats.hpp
/// Streaming statistics accumulator (Welford) used by benches: the paper
/// averages every result over five runs, so our harnesses do the same.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ttsim {

/// Single-pass mean/variance/min/max accumulator.
class Stats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ttsim
