#pragma once
/// \file table.hpp
/// ASCII table rendering for bench output. Bench binaries print rows in the
/// same layout as the paper's tables so results can be compared side by side.

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace ttsim {

/// A simple column-aligned text table.
///
///   Table t{"Version", "Performance (GPt/s)"};
///   t.add_row("Initial", "0.0065");
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  Table(std::initializer_list<std::string> headers) : headers_(headers) {}

  void set_headers(std::vector<std::string> headers) { headers_ = std::move(headers); }

  /// Adds one row; cells beyond the header count widen the table.
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    rows_.push_back({to_cell(std::forward<Cells>(cells))...});
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule; numeric-looking cells are right-aligned.
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Renders as GitHub-flavoured markdown (used by EXPERIMENTS.md generation).
  std::string to_markdown() const;

  static std::string fmt(double v, int precision = 4);

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v) { return fmt(v); }
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(long v) { return std::to_string(v); }
  static std::string to_cell(long long v) { return std::to_string(v); }
  static std::string to_cell(unsigned v) { return std::to_string(v); }
  static std::string to_cell(unsigned long v) { return std::to_string(v); }
  static std::string to_cell(unsigned long long v) { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ttsim
