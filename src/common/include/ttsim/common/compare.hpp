#pragma once
/// \file compare.hpp
/// Paper-vs-measured comparison rows. Every bench binary records what the
/// paper reported for a configuration alongside what this reproduction
/// measured, and summarises how well the *shape* holds (ratios, orderings).

#include <optional>
#include <string>
#include <vector>

#include "ttsim/common/table.hpp"

namespace ttsim {

/// One experimental point: paper value vs measured value (same unit).
struct ComparisonRow {
  std::string label;
  double paper = 0.0;
  double measured = 0.0;
  std::string unit;
};

/// Collects comparison rows for one table/figure and renders a report.
class ComparisonReport {
 public:
  ComparisonReport(std::string experiment_id, std::string description,
                   bool lower_is_better = false)
      : id_(std::move(experiment_id)),
        description_(std::move(description)),
        lower_is_better_(lower_is_better) {}

  void add(const std::string& label, double paper, double measured,
           const std::string& unit) {
    rows_.push_back({label, paper, measured, unit});
  }

  const std::vector<ComparisonRow>& rows() const { return rows_; }
  const std::string& id() const { return id_; }

  /// measured/paper ratio per row; 1.0 means exact.
  double ratio(std::size_t i) const;

  /// Fraction of row *pairs* whose relative ordering (who is faster) matches
  /// the paper. This is the "shape" metric: 1.0 means every win/loss the
  /// paper reports is reproduced.
  double ordering_agreement() const;

  /// Geometric mean of measured/paper ratios (how far absolute values drift).
  double geomean_ratio() const;

  /// Renders the comparison table plus the shape summary.
  std::string to_string() const;

 private:
  std::string id_;
  std::string description_;
  bool lower_is_better_;
  std::vector<ComparisonRow> rows_;
};

}  // namespace ttsim
