#pragma once
/// \file error.hpp
/// SimError: the common mixin base of the simulator's typed failure modes.
///
/// The host-facing layers (resilient drivers, the serving frontend) used to
/// classify faults by catching each concrete type in its own block —
/// CheckError here, DeviceTimeoutError there, TransferError in a third
/// place — and each site re-derived "can I retry this on a fresh device
/// generation?" from the type name. SimError centralises that verdict:
/// every typed simulator failure derives from it and answers retryable()
/// itself, so a caller writes ONE catch block and one policy.
///
/// retryable() == true means the failed operation may well succeed if
/// re-attempted on a fresh device generation (a watchdog timeout from a
/// core kill, a transfer whose retries were exhausted by transient bus
/// corruption, an engine deadlock caused by a mid-run core death).
/// retryable() == false marks logic errors — violated simulator invariants
/// that a retry would only reproduce.
///
/// SimError is a mixin, not an exception type: concrete errors keep their
/// std::logic_error / std::runtime_error lineage (existing catch sites stay
/// valid) and additionally inherit SimError. Catch `const ttsim::SimError&`
/// to handle every typed simulator failure polymorphically; what() is
/// declared here as well so the handler needs no cross-cast to read the
/// message.

namespace ttsim {

class SimError {
 public:
  virtual ~SimError() = default;

  /// May the failed operation succeed if retried on a fresh device
  /// generation? Drives the serve layer's victim-requeue-vs-fail decision.
  virtual bool retryable() const noexcept = 0;

  /// The failure message (same text as the std::exception side of the
  /// concrete type).
  virtual const char* what() const noexcept = 0;
};

}  // namespace ttsim
