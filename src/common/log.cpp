#include "ttsim/common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace ttsim {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mutex;

LogLevel initial_level() {
  if (const char* env = std::getenv("TTSIM_LOG")) {
    std::string name{env};
    if (name == "trace") return LogLevel::kTrace;
    if (name == "debug") return LogLevel::kDebug;
    if (name == "info") return LogLevel::kInfo;
    if (name == "warn") return LogLevel::kWarn;
    if (name == "error") return LogLevel::kError;
    if (name == "off") return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

struct LevelInit {
  LevelInit() { g_level.store(static_cast<int>(initial_level())); }
} g_level_init;
}  // namespace

LogLevel Log::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::set_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl)); }

void Log::set_level(const std::string& name) {
  if (name == "trace") set_level(LogLevel::kTrace);
  else if (name == "debug") set_level(LogLevel::kDebug);
  else if (name == "info") set_level(LogLevel::kInfo);
  else if (name == "warn") set_level(LogLevel::kWarn);
  else if (name == "error") set_level(LogLevel::kError);
  else if (name == "off") set_level(LogLevel::kOff);
}

void Log::write(LogLevel lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[ttsim %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace ttsim
