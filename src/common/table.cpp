#include "ttsim/common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

namespace ttsim {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit = true;
    else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%')
      return false;
  }
  return digit;
}

std::string pad(const std::string& s, std::size_t width, bool right_align) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right_align ? fill + s : s + fill;
}

}  // namespace

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) < 1e-4 || std::fabs(v) >= 1e7)) {
    os.precision(precision);
    os << std::scientific << v;
  } else {
    os.precision(precision);
    os << std::fixed << v;
    std::string s = os.str();
    // Trim trailing zeros but keep at least one decimal digit.
    while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') s.pop_back();
    return s;
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
  std::size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  std::vector<bool> right(cols, true);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = std::max(width[c], headers_[c].size());
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
      if (!looks_numeric(r[c])) right[c] = false;
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& r, bool header) {
    os << "| ";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      os << pad(cell, width[c], !header && right[c]);
      os << (c + 1 < cols ? " | " : " |");
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    emit_row(headers_, true);
    os << "|";
    for (std::size_t c = 0; c < cols; ++c) os << std::string(width[c] + 2, '-') << "|";
    os << '\n';
  }
  for (const auto& r : rows_) emit_row(r, false);
  return os.str();
}

std::string Table::to_markdown() const { return to_string(); }

}  // namespace ttsim
