/// \file ttsim_lint.cpp
/// Kernel protocol verifier CLI: runs the static linter, the happens-before
/// race detector and the deadlock diagnoser over the repo's golden workloads
/// (or a chosen subset) and reports every finding. Exit code 0 means every
/// selected workload came back clean; 1 means at least one finding (lint
/// error, race, clobber, misaligned read, or a diagnosed deadlock); 2 is a
/// usage error.
///
/// This is the CI entry point for the verification gate:
///   ttsim_lint            # all workloads, default shape
///   ttsim_lint rowchunk sram --cores-y 4
///   ttsim_lint --demo-lint  # show the static linter on a broken program
///
/// Everything runs under DeviceConfig::enable_verify, which also arms the
/// pre-launch lint pass — a program with broken declarations fails before a
/// single kernel is spawned, with the full lint report in the exception.

#include <cstring>
#include <exception>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/serve/serve.hpp"
#include "ttsim/stream/stream_bench.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/lint.hpp"
#include "ttsim/verify/race.hpp"

namespace {

struct Options {
  int width = 128;
  int height = 128;
  int iterations = 4;
  int cores_y = 2;
  int read_ahead = 2;
  bool demo_lint = false;
  std::vector<std::string> workloads;
};

void usage(std::ostream& os) {
  os << "usage: ttsim_lint [options] [workload...]\n"
        "\n"
        "workloads (default: all):\n"
        "  tiled write-optimised double-buffered rowchunk sram temporal\n"
        "  stream serve multichip\n"
        "\n"
        "options:\n"
        "  --width N --height N --iters N   Jacobi problem shape (default "
        "128x128x4)\n"
        "  --cores-y N                      worker rows per workload (default 2)\n"
        "  --read-ahead N                   rowchunk pipeline depth (default 2)\n"
        "  --demo-lint                      lint an intentionally broken program\n"
        "                                   and print the report (always exits 1)\n"
        "  -h, --help                       this message\n";
}

int print_findings(const std::string& name,
                   const std::vector<ttsim::verify::Finding>& findings) {
  if (findings.empty()) {
    std::cout << name << ": clean\n";
    return 0;
  }
  std::cout << name << ": " << findings.size() << " finding(s)\n";
  for (const auto& f : findings) {
    std::cout << "  " << ttsim::verify::to_string(f.kind) << " core " << f.core
              << " @0x" << std::hex << f.addr << std::dec << "+" << f.size
              << ": " << f.what << "\n";
  }
  return 1;
}

int run_jacobi(const std::string& name, ttsim::core::DeviceStrategy strategy,
               const Options& opt) {
  ttsim::ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto dev = ttsim::ttmetal::Device::open({}, dc);
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = opt.iterations;
  ttsim::core::DeviceRunConfig cfg;
  cfg.strategy = strategy;
  cfg.cores_y = opt.cores_y;
  cfg.read_ahead = opt.read_ahead;
  ttsim::core::run_jacobi_on_device(*dev, p, cfg);
  return print_findings(name, dev->verifier()->findings());
}

/// Temporal tiling at every chained depth: the semaphore-ring/epoch-barrier
/// protocol must stay race- and deadlock-clean across k = 2..8 (k + 1
/// iterations each, so every run has a full epoch plus a partial one).
int run_temporal(const Options& opt) {
  int rc = 0;
  for (int k = 2; k <= 8; ++k) {
    ttsim::ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttsim::ttmetal::Device::open({}, dc);
    ttsim::core::JacobiProblem p;
    p.width = opt.width;
    p.height = opt.height;
    p.iterations = std::max(opt.iterations, k + 1);
    ttsim::core::DeviceRunConfig cfg;
    cfg.strategy = ttsim::core::DeviceStrategy::kTemporal;
    cfg.cores_y = opt.cores_y;
    cfg.temporal_depth = k;
    ttsim::core::run_jacobi_on_device(*dev, p, cfg);
    rc |= print_findings("temporal k=" + std::to_string(k),
                         dev->verifier()->findings());
  }
  return rc;
}

int run_stream(const Options& opt) {
  ttsim::ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto dev = ttsim::ttmetal::Device::open({}, dc);
  ttsim::stream::StreamParams p;
  p.rows = 32;
  p.num_cores = opt.cores_y;
  p.interleave_page = 16 * ttsim::KiB;
  ttsim::stream::run_streaming_benchmark(*dev, p);
  return print_findings("stream", dev->verifier()->findings());
}

int run_serve(const Options& opt) {
  ttsim::serve::ServiceConfig cfg;
  cfg.cards = 1;
  cfg.device.enable_verify = true;
  cfg.run.strategy = ttsim::core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 8;
  ttsim::serve::StencilService svc(cfg);
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = opt.iterations;
  for (int tenant = 0; tenant < 4; ++tenant) {
    ttsim::serve::Request req;
    req.problem = p;
    req.problem.bc_left = 0.25f * static_cast<float>(tenant + 1);
    req.tenant = tenant;
    if (svc.submit(req).status != ttsim::serve::RequestStatus::kQueued) {
      std::cout << "serve: submit rejected\n";
      return 1;
    }
  }
  svc.drain();
  return print_findings("serve", svc.verify_findings());
}

/// Two cards cabled with chip-to-chip links running the deep-halo sharded
/// solver: the per-card kernel protocol plus the exchange epochs must stay
/// clean on every card in the group.
int run_multichip(const Options& opt) {
  ttsim::ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto cluster = ttsim::core::ShardedCluster::open(2, {}, dc);
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = std::max(opt.iterations, 4);
  ttsim::core::ShardedRunConfig cfg;
  cfg.run.strategy = ttsim::core::DeviceStrategy::kRowChunk;
  cfg.run.cores_y = opt.cores_y;
  cfg.run.read_ahead = opt.read_ahead;
  cfg.exchange_every = 2;  // more than one epoch, deep halo on each cut
  const auto devs = cluster.devices();
  ttsim::core::run_jacobi_sharded(devs, *cluster.fabric, p, cfg);
  int rc = 0;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    rc |= print_findings("multichip card " + std::to_string(i),
                         devs[i]->verifier()->findings());
  }
  return rc;
}

/// --demo-lint: every static check firing at once, so the report format is
/// easy to eyeball (and to paste into docs).
int demo_lint() {
  ttsim::verify::ProgramInfo p;
  p.kernels.push_back({/*kind=*/0, {0}, "reader"});
  p.kernels.push_back({/*kind=*/0, {0}, "shadow-reader"});  // duplicate kind
  p.kernels.push_back({/*kind=*/1, {99}, "off-grid-writer"});
  p.cbs.push_back({/*cb_id=*/0, {0}, /*page_size=*/48, /*num_pages=*/2, 0});
  p.cbs.push_back({/*cb_id=*/1, {3}, 1024, 2, 0});  // core 3 has no kernels
  p.semaphores.push_back({/*sem_id=*/0, {3}, 0});
  p.barriers.push_back({/*barrier_id=*/0, /*participants=*/64});
  ttsim::verify::DeviceInfo d;
  d.num_workers = 4;
  d.sram_bytes = 1024 * 1024;
  const auto errors = ttsim::verify::lint(p, d);
  std::cout << ttsim::verify::format_lint(errors);
  std::cout << "demo program: " << errors.size() << " lint error(s)\n";
  return 1;
}

int parse_int(const char* flag, const char* value, Options& opt, int Options::*field) {
  if (value == nullptr) {
    std::cerr << "ttsim_lint: " << flag << " needs a value\n";
    return 2;
  }
  opt.*field = std::atoi(value);
  if (opt.*field <= 0) {
    std::cerr << "ttsim_lint: " << flag << " must be positive\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (arg == "--demo-lint") {
      opt.demo_lint = true;
    } else if (arg == "--width") {
      if (int rc = parse_int("--width", next(), opt, &Options::width)) return rc;
    } else if (arg == "--height") {
      if (int rc = parse_int("--height", next(), opt, &Options::height)) return rc;
    } else if (arg == "--iters") {
      if (int rc = parse_int("--iters", next(), opt, &Options::iterations)) return rc;
    } else if (arg == "--cores-y") {
      if (int rc = parse_int("--cores-y", next(), opt, &Options::cores_y)) return rc;
    } else if (arg == "--read-ahead") {
      if (int rc = parse_int("--read-ahead", next(), opt, &Options::read_ahead)) return rc;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ttsim_lint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      opt.workloads.push_back(arg);
    }
  }
  if (opt.demo_lint) return demo_lint();
  if (opt.workloads.empty()) {
    opt.workloads = {"tiled",    "write-optimised", "double-buffered",
                     "rowchunk", "sram",            "temporal",
                     "stream",   "serve",           "multichip"};
  }

  const std::vector<std::pair<std::string, std::function<int()>>> runners = {
      {"tiled",
       [&] { return run_jacobi("tiled", ttsim::core::DeviceStrategy::kInitial, opt); }},
      {"write-optimised",
       [&] {
         return run_jacobi("write-optimised",
                           ttsim::core::DeviceStrategy::kWriteOptimised, opt);
       }},
      {"double-buffered",
       [&] {
         return run_jacobi("double-buffered",
                           ttsim::core::DeviceStrategy::kDoubleBuffered, opt);
       }},
      {"rowchunk",
       [&] { return run_jacobi("rowchunk", ttsim::core::DeviceStrategy::kRowChunk, opt); }},
      {"sram",
       [&] {
         return run_jacobi("sram", ttsim::core::DeviceStrategy::kSramResident, opt);
       }},
      {"temporal", [&] { return run_temporal(opt); }},
      {"stream", [&] { return run_stream(opt); }},
      {"serve", [&] { return run_serve(opt); }},
      {"multichip", [&] { return run_multichip(opt); }},
  };

  int exit_code = 0;
  for (const std::string& want : opt.workloads) {
    bool found = false;
    for (const auto& [name, fn] : runners) {
      if (name != want) continue;
      found = true;
      try {
        exit_code |= fn();
      } catch (const ttsim::ttmetal::DeviceTimeoutError& e) {
        // Watchdog fired: the what() already carries the wait-for diagnosis.
        std::cout << name << ": deadlock (watchdog)\n" << e.what() << "\n";
        exit_code = 1;
      } catch (const std::exception& e) {
        // CheckError from engine quiescence carries the wait-cycle report;
        // a pre-launch lint failure carries the formatted lint errors.
        std::cout << name << ": failed\n" << e.what() << "\n";
        exit_code = 1;
      }
      break;
    }
    if (!found) {
      std::cerr << "ttsim_lint: unknown workload '" << want << "'\n";
      usage(std::cerr);
      return 2;
    }
  }
  return exit_code;
}
