/// \file ttsim_lint.cpp
/// Kernel protocol verifier CLI. Two modes:
///
///   * dynamic (default): runs the static linter, the happens-before race
///     detector and the deadlock diagnoser over the repo's golden workloads
///     (or a chosen subset) under DeviceConfig::enable_verify and reports
///     every finding. A program with broken declarations fails the
///     pre-launch lint pass before a single kernel is spawned.
///   * static (--ir-check / --ir-dump): builds the dataflow-IR graph each
///     workload would launch (src/ir) and runs the static protocol
///     type-checker over it — no device is opened, and the proof covers
///     all schedules and all trip counts, not the one a run observes.
///
/// Exit codes (distinct per failure class, for CI gating):
///   0  every selected workload clean / certified
///   1  dynamic findings (race, clobber, misaligned read, deadlock, lint)
///   2  usage error (bad flag, unknown workload, config the API rejects)
///   3  static IR findings (--ir-check rejected a graph)
///   4  infrastructure failure (unexpected exception; neither a finding
///      nor a usage error)
///
///   ttsim_lint                       # all dynamic workloads, default shape
///   ttsim_lint rowchunk sram --cores-y 4
///   ttsim_lint --ir-check            # certify every IR-modeled workload
///   ttsim_lint --ir-dump rowchunk    # print the rowchunk protocol graph
///   ttsim_lint --demo-lint           # the static linter on a broken program

#include <algorithm>
#include <cstring>
#include <exception>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "ttsim/common/check.hpp"
#include "ttsim/core/gallery.hpp"
#include "ttsim/core/ir_frontend.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/ir/check.hpp"
#include "ttsim/ir/lower.hpp"
#include "ttsim/serve/serve.hpp"
#include "ttsim/stream/stream_bench.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/lint.hpp"
#include "ttsim/verify/race.hpp"

namespace {

struct Options {
  int width = 128;
  int height = 128;
  int iterations = 4;
  int cores_y = 2;
  int read_ahead = 2;
  bool demo_lint = false;
  bool ir_check = false;
  bool ir_dump = false;
  std::vector<std::string> workloads;
};

void usage(std::ostream& os) {
  os << "usage: ttsim_lint [options] [workload...]\n"
        "\n"
        "dynamic workloads (default: all):\n"
        "  tiled write-optimised double-buffered rowchunk sram temporal\n"
        "  stream serve multichip\n"
        "static (--ir-check/--ir-dump) workloads (default: all):\n"
        "  rowchunk sram temporal gallery multichip\n"
        "\n"
        "options:\n"
        "  --width N --height N --iters N   Jacobi problem shape (default "
        "128x128x4)\n"
        "  --cores-y N                      worker rows per workload (default 2)\n"
        "  --read-ahead N                   rowchunk pipeline depth (default 2)\n"
        "  --ir-check                       run the static IR protocol checker\n"
        "                                   instead of dynamic runs (exit 3 on\n"
        "                                   findings)\n"
        "  --ir-dump                        print each workload's IR graph\n"
        "                                   (combines with --ir-check)\n"
        "  --demo-lint                      lint an intentionally broken program\n"
        "                                   and print the report (always exits 1)\n"
        "  -h, --help                       this message\n"
        "\n"
        "exit codes: 0 clean, 1 dynamic findings, 2 usage, 3 static IR\n"
        "findings, 4 infrastructure failure\n";
}

int print_findings(const std::string& name,
                   const std::vector<ttsim::verify::Finding>& findings) {
  if (findings.empty()) {
    std::cout << name << ": clean\n";
    return 0;
  }
  std::cout << name << ": " << findings.size() << " finding(s)\n";
  for (const auto& f : findings) {
    std::cout << "  " << ttsim::verify::to_string(f.kind) << " core " << f.core
              << " @0x" << std::hex << f.addr << std::dec << "+" << f.size
              << ": " << f.what << "\n";
  }
  return 1;
}

int run_jacobi(const std::string& name, ttsim::core::DeviceStrategy strategy,
               const Options& opt) {
  ttsim::ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto dev = ttsim::ttmetal::Device::open({}, dc);
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = opt.iterations;
  ttsim::core::DeviceRunConfig cfg;
  cfg.strategy = strategy;
  cfg.cores_y = opt.cores_y;
  cfg.read_ahead = opt.read_ahead;
  ttsim::core::run_jacobi_on_device(*dev, p, cfg);
  return print_findings(name, dev->verifier()->findings());
}

/// Temporal tiling at every chained depth: the semaphore-ring/epoch-barrier
/// protocol must stay race- and deadlock-clean across k = 2..8 (k + 1
/// iterations each, so every run has a full epoch plus a partial one).
int run_temporal(const Options& opt) {
  int rc = 0;
  for (int k = 2; k <= 8; ++k) {
    ttsim::ttmetal::DeviceConfig dc;
    dc.enable_verify = true;
    auto dev = ttsim::ttmetal::Device::open({}, dc);
    ttsim::core::JacobiProblem p;
    p.width = opt.width;
    p.height = opt.height;
    p.iterations = std::max(opt.iterations, k + 1);
    ttsim::core::DeviceRunConfig cfg;
    cfg.strategy = ttsim::core::DeviceStrategy::kTemporal;
    cfg.cores_y = opt.cores_y;
    cfg.temporal_depth = k;
    ttsim::core::run_jacobi_on_device(*dev, p, cfg);
    rc |= print_findings("temporal k=" + std::to_string(k),
                         dev->verifier()->findings());
  }
  return rc;
}

int run_stream(const Options& opt) {
  ttsim::ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto dev = ttsim::ttmetal::Device::open({}, dc);
  ttsim::stream::StreamParams p;
  p.rows = 32;
  p.num_cores = opt.cores_y;
  p.interleave_page = 16 * ttsim::KiB;
  ttsim::stream::run_streaming_benchmark(*dev, p);
  return print_findings("stream", dev->verifier()->findings());
}

int run_serve(const Options& opt) {
  ttsim::serve::ServiceConfig cfg;
  cfg.cards = 1;
  cfg.device.enable_verify = true;
  cfg.run.strategy = ttsim::core::DeviceStrategy::kRowChunk;
  cfg.run.cores_x = 1;
  cfg.run.cores_y = 4;
  cfg.max_batch = 8;
  ttsim::serve::StencilService svc(cfg);
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = opt.iterations;
  for (int tenant = 0; tenant < 4; ++tenant) {
    ttsim::serve::Request req;
    req.problem = p;
    req.problem.bc_left = 0.25f * static_cast<float>(tenant + 1);
    req.tenant = tenant;
    if (svc.submit(req).status != ttsim::serve::RequestStatus::kQueued) {
      std::cout << "serve: submit rejected\n";
      return 1;
    }
  }
  svc.drain();
  return print_findings("serve", svc.verify_findings());
}

/// Two cards cabled with chip-to-chip links running the deep-halo sharded
/// solver: the per-card kernel protocol plus the exchange epochs must stay
/// clean on every card in the group.
int run_multichip(const Options& opt) {
  ttsim::ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  auto cluster = ttsim::core::ShardedCluster::open(2, {}, dc);
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = std::max(opt.iterations, 4);
  ttsim::core::ShardedRunConfig cfg;
  cfg.run.strategy = ttsim::core::DeviceStrategy::kRowChunk;
  cfg.run.cores_y = opt.cores_y;
  cfg.run.read_ahead = opt.read_ahead;
  cfg.exchange_every = 2;  // more than one epoch, deep halo on each cut
  const auto devs = cluster.devices();
  ttsim::core::run_jacobi_sharded(devs, *cluster.fabric, p, cfg);
  int rc = 0;
  for (std::size_t i = 0; i < devs.size(); ++i) {
    rc |= print_findings("multichip card " + std::to_string(i),
                         devs[i]->verifier()->findings());
  }
  return rc;
}

// ---- static IR mode -------------------------------------------------------
//
// Builds the protocol graph each workload's launch would certify and runs the
// static checker over it. No device is opened; the row-chunk proof is swept
// over concrete read-ahead depths 2..8 and temporal tiling over chain depths
// 1..8, mirroring the dynamic sweeps above.

ttsim::core::JacobiProblem jacobi_problem(const Options& opt) {
  ttsim::core::JacobiProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.iterations = opt.iterations;
  return p;
}

/// Dump and/or check one graph. Returns 0 (certified or dump-only) or 3
/// (static findings).
int inspect(const std::string& name, const ttsim::ir::Graph& g,
            const Options& opt) {
  if (opt.ir_dump) std::cout << ttsim::ir::dump(g) << "\n";
  if (!opt.ir_check) return 0;
  const auto findings = ttsim::ir::check(g);
  if (findings.empty()) {
    std::cout << name << ": certified\n";
    return 0;
  }
  std::cout << name << ": " << findings.size() << " static finding(s)\n"
            << ttsim::verify::format_lint(findings);
  return 3;
}

int ir_rowchunk(const Options& opt) {
  int rc = 0;
  for (int depth = 2; depth <= 8; ++depth) {
    ttsim::core::DeviceRunConfig cfg;
    cfg.strategy = ttsim::core::DeviceStrategy::kRowChunk;
    cfg.cores_y = opt.cores_y;
    cfg.read_ahead = depth;
    rc = std::max(rc, inspect("rowchunk depth=" + std::to_string(depth),
                              ttsim::core::jacobi_ir_graph(jacobi_problem(opt), cfg),
                              opt));
  }
  return rc;
}

int ir_sram(const Options& opt) {
  ttsim::core::DeviceRunConfig cfg;
  cfg.strategy = ttsim::core::DeviceStrategy::kSramResident;
  cfg.cores_y = opt.cores_y;
  return inspect("sram", ttsim::core::jacobi_ir_graph(jacobi_problem(opt), cfg),
                 opt);
}

int ir_temporal(const Options& opt) {
  int rc = 0;
  for (int k = 1; k <= 8; ++k) {
    ttsim::core::JacobiProblem p = jacobi_problem(opt);
    p.iterations = std::max(opt.iterations, k + 1);
    ttsim::core::DeviceRunConfig cfg;
    cfg.strategy = ttsim::core::DeviceStrategy::kTemporal;
    cfg.cores_y = opt.cores_y;
    cfg.temporal_depth = k;
    rc = std::max(rc, inspect("temporal k=" + std::to_string(k),
                              ttsim::core::jacobi_ir_graph(p, cfg), opt));
  }
  return rc;
}

int ir_gallery(const Options& opt) {
  int rc = 0;
  for (const auto& entry : ttsim::core::gallery::suite()) {
    for (const ttsim::core::DeviceStrategy s :
         {ttsim::core::DeviceStrategy::kRowChunk,
          ttsim::core::DeviceStrategy::kSramResident,
          ttsim::core::DeviceStrategy::kTemporal}) {
      // Skip configs the device driver itself rejects.
      if (s != ttsim::core::DeviceStrategy::kRowChunk &&
          entry.problem.passes.size() > 1) {
        continue;
      }
      if (s == ttsim::core::DeviceStrategy::kSramResident &&
          entry.problem.fields.size() > 1) {
        continue;
      }
      ttsim::core::DeviceRunConfig cfg;
      cfg.strategy = s;
      std::string name = "gallery ";
      name += entry.name;
      name += " / ";
      name += ttsim::core::to_string(s);
      rc = std::max(
          rc, inspect(name, ttsim::core::general_ir_graph(entry.problem, cfg),
                      opt));
    }
  }
  return rc;
}

int ir_multichip(const Options& opt) {
  // Each card of the two-card sharded solver runs the row-chunk protocol on
  // its strip of the halo-split domain; the cross-card exchange reuses the
  // same ring/semaphore protocol per strip, so certifying each card's strip
  // graph covers the per-card launches.
  int rc = 0;
  for (int card = 0; card < 2; ++card) {
    ttsim::core::JacobiProblem strip = jacobi_problem(opt);
    strip.height = std::max(opt.height / 2, 8 * opt.cores_y);
    ttsim::core::DeviceRunConfig cfg;
    cfg.strategy = ttsim::core::DeviceStrategy::kRowChunk;
    cfg.cores_y = opt.cores_y;
    cfg.read_ahead = opt.read_ahead;
    rc = std::max(rc, inspect("multichip card " + std::to_string(card),
                              ttsim::core::jacobi_ir_graph(strip, cfg), opt));
  }
  return rc;
}

/// --demo-lint: every static check firing at once, so the report format is
/// easy to eyeball (and to paste into docs).
int demo_lint() {
  ttsim::verify::ProgramInfo p;
  p.kernels.push_back({/*kind=*/0, {0}, "reader"});
  p.kernels.push_back({/*kind=*/0, {0}, "shadow-reader"});  // duplicate kind
  p.kernels.push_back({/*kind=*/1, {99}, "off-grid-writer"});
  p.cbs.push_back({/*cb_id=*/0, {0}, /*page_size=*/48, /*num_pages=*/2, 0});
  p.cbs.push_back({/*cb_id=*/1, {3}, 1024, 2, 0});  // core 3 has no kernels
  p.semaphores.push_back({/*sem_id=*/0, {3}, 0});
  p.barriers.push_back({/*barrier_id=*/0, /*participants=*/64});
  ttsim::verify::DeviceInfo d;
  d.num_workers = 4;
  d.sram_bytes = 1024 * 1024;
  const auto errors = ttsim::verify::lint(p, d);
  std::cout << ttsim::verify::format_lint(errors);
  std::cout << "demo program: " << errors.size() << " lint error(s)\n";
  return 1;
}

int parse_int(const char* flag, const char* value, Options& opt, int Options::*field) {
  if (value == nullptr) {
    std::cerr << "ttsim_lint: " << flag << " needs a value\n";
    return 2;
  }
  opt.*field = std::atoi(value);
  if (opt.*field <= 0) {
    std::cerr << "ttsim_lint: " << flag << " must be positive\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (arg == "--demo-lint") {
      opt.demo_lint = true;
    } else if (arg == "--ir-check") {
      opt.ir_check = true;
    } else if (arg == "--ir-dump") {
      opt.ir_dump = true;
    } else if (arg == "--width") {
      if (int rc = parse_int("--width", next(), opt, &Options::width)) return rc;
    } else if (arg == "--height") {
      if (int rc = parse_int("--height", next(), opt, &Options::height)) return rc;
    } else if (arg == "--iters") {
      if (int rc = parse_int("--iters", next(), opt, &Options::iterations)) return rc;
    } else if (arg == "--cores-y") {
      if (int rc = parse_int("--cores-y", next(), opt, &Options::cores_y)) return rc;
    } else if (arg == "--read-ahead") {
      if (int rc = parse_int("--read-ahead", next(), opt, &Options::read_ahead)) return rc;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ttsim_lint: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      opt.workloads.push_back(arg);
    }
  }
  if (opt.demo_lint) return demo_lint();
  const bool ir_mode = opt.ir_check || opt.ir_dump;
  if (opt.workloads.empty()) {
    opt.workloads =
        ir_mode ? std::vector<std::string>{"rowchunk", "sram", "temporal",
                                           "gallery", "multichip"}
                : std::vector<std::string>{"tiled",    "write-optimised",
                                           "double-buffered", "rowchunk",
                                           "sram",     "temporal",
                                           "stream",   "serve",
                                           "multichip"};
  }

  const std::vector<std::pair<std::string, std::function<int()>>> ir_runners = {
      {"rowchunk", [&] { return ir_rowchunk(opt); }},
      {"sram", [&] { return ir_sram(opt); }},
      {"temporal", [&] { return ir_temporal(opt); }},
      {"gallery", [&] { return ir_gallery(opt); }},
      {"multichip", [&] { return ir_multichip(opt); }},
  };
  const std::vector<std::pair<std::string, std::function<int()>>> dyn_runners = {
      {"tiled",
       [&] { return run_jacobi("tiled", ttsim::core::DeviceStrategy::kInitial, opt); }},
      {"write-optimised",
       [&] {
         return run_jacobi("write-optimised",
                           ttsim::core::DeviceStrategy::kWriteOptimised, opt);
       }},
      {"double-buffered",
       [&] {
         return run_jacobi("double-buffered",
                           ttsim::core::DeviceStrategy::kDoubleBuffered, opt);
       }},
      {"rowchunk",
       [&] { return run_jacobi("rowchunk", ttsim::core::DeviceStrategy::kRowChunk, opt); }},
      {"sram",
       [&] {
         return run_jacobi("sram", ttsim::core::DeviceStrategy::kSramResident, opt);
       }},
      {"temporal", [&] { return run_temporal(opt); }},
      {"stream", [&] { return run_stream(opt); }},
      {"serve", [&] { return run_serve(opt); }},
      {"multichip", [&] { return run_multichip(opt); }},
  };
  const auto& runners = ir_mode ? ir_runners : dyn_runners;

  // Severity classes, resolved to a distinct exit code at the end. Findings
  // and usage errors used to collapse onto the same exit code (any exception
  // set 1); now a config the API rejects is a usage error (2), a verifier or
  // deadlock finding is 1, a static IR rejection is 3, and anything else is
  // an infrastructure failure (4).
  bool dynamic_findings = false;
  bool static_findings = false;
  bool infrastructure = false;
  for (const std::string& want : opt.workloads) {
    bool found = false;
    for (const auto& [name, fn] : runners) {
      if (name != want) continue;
      found = true;
      try {
        const int rc = fn();
        if (rc == 1) dynamic_findings = true;
        if (rc == 3) static_findings = true;
      } catch (const ttsim::ttmetal::DeviceTimeoutError& e) {
        // Watchdog fired: the what() already carries the wait-for diagnosis.
        std::cout << name << ": deadlock (watchdog)\n" << e.what() << "\n";
        dynamic_findings = true;
      } catch (const ttsim::ir::CheckError& e) {
        // lower() refused to emit; what() carries the formatted report.
        std::cout << name << ": rejected by the static checker\n"
                  << e.what() << "\n";
        static_findings = true;
      } catch (const ttsim::ApiError& e) {
        // The API rejected the requested configuration before anything ran:
        // that is a usage error, not a finding.
        std::cerr << "ttsim_lint: " << name << ": " << e.what() << "\n";
        return 2;
      } catch (const ttsim::CheckError& e) {
        // Engine quiescence (wait-cycle diagnosis) or the pre-launch lint
        // pass: both are verifier findings, not infrastructure.
        std::cout << name << ": failed\n" << e.what() << "\n";
        dynamic_findings = true;
      } catch (const std::exception& e) {
        std::cout << name << ": infrastructure failure\n" << e.what() << "\n";
        infrastructure = true;
      }
      break;
    }
    if (!found) {
      std::cerr << "ttsim_lint: unknown workload '" << want << "'"
                << (ir_mode ? " (static IR mode)" : "") << "\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (infrastructure) return 4;
  if (static_findings) return 3;
  if (dynamic_findings) return 1;
  return 0;
}
