#include "ttsim/core/jacobi_device.hpp"

#include <gtest/gtest.h>

#include "ttsim/cpu/jacobi_cpu.hpp"

namespace ttsim::core {
namespace {

JacobiProblem small_problem(std::uint32_t w = 64, std::uint32_t h = 64, int iters = 8) {
  JacobiProblem p;
  p.width = w;
  p.height = h;
  p.iterations = iters;
  return p;
}

/// Bit-exact check of a device run against the BF16 CPU reference.
void expect_matches_reference(const JacobiProblem& p, const DeviceRunResult& r) {
  const auto ref = cpu::jacobi_reference_bf16(p);
  ASSERT_EQ(ref.size(), r.solution.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (static_cast<float>(ref[i]) != r.solution[i]) {
      if (++mismatches <= 3) {
        ADD_FAILURE() << "mismatch at " << i << ": device " << r.solution[i]
                      << " vs reference " << static_cast<float>(ref[i]);
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(JacobiDevice, RowChunkMatchesReferenceBitExact) {
  const auto p = small_problem();
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kRowChunk;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
  EXPECT_GT(r.kernel_time, 0);
  EXPECT_GT(r.total_time, r.kernel_time);
}

TEST(JacobiDevice, InitialTiledMatchesReferenceBitExact) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kInitial;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, WriteOptimisedMatchesReferenceBitExact) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kWriteOptimised;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, DoubleBufferedMatchesReferenceBitExact) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kDoubleBuffered;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, OddIterationCountLandsInRightBuffer) {
  const auto p = small_problem(64, 64, 5);
  DeviceRunConfig cfg;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, SingleIteration) {
  const auto p = small_problem(32, 32, 1);
  DeviceRunConfig cfg;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, MultiCoreYMatchesReference) {
  const auto p = small_problem(64, 64, 6);
  DeviceRunConfig cfg;
  cfg.cores_y = 4;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
  EXPECT_EQ(r.cores_used, 4);
}

TEST(JacobiDevice, MultiCoreXYMatchesReference) {
  const auto p = small_problem(64, 96, 6);
  DeviceRunConfig cfg;
  cfg.cores_x = 2;
  cfg.cores_y = 3;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, UnevenRowSplitMatchesReference) {
  // 7 cores over 64 rows: 10/9-row strips (the Table VIII 12-way split of
  // 1024 rows is similarly uneven).
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.cores_y = 7;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, TiledMultiCoreMatchesReference) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kDoubleBuffered;
  cfg.cores_x = 2;
  cfg.cores_y = 2;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, InterleavedBuffersMatchReference) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.buffer_layout = ttmetal::BufferLayout::kInterleaved;
  cfg.interleave_page = 4 * KiB;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, StripedBuffersMatchReference) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig cfg;
  cfg.buffer_layout = ttmetal::BufferLayout::kStriped;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiDevice, RowChunkFasterThanInitial) {
  // Table I/VIII: the Section VI design is two orders of magnitude faster.
  const auto p = small_problem(128, 128, 3);
  DeviceRunConfig slow;
  slow.strategy = DeviceStrategy::kInitial;
  DeviceRunConfig fast;
  fast.strategy = DeviceStrategy::kRowChunk;
  const auto rs = run_jacobi_on_device(p, slow);
  const auto rf = run_jacobi_on_device(p, fast);
  // Two orders of magnitude at the paper's 512x512; at this toy size the
  // per-iteration fixed costs (barrier, prologue reads) dilute the ratio.
  EXPECT_GT(rs.kernel_time, rf.kernel_time * 8);
}

TEST(JacobiDevice, DoubleBufferedFasterThanInitial) {
  const auto p = small_problem(64, 64, 4);
  DeviceRunConfig a;
  a.strategy = DeviceStrategy::kInitial;
  DeviceRunConfig b;
  b.strategy = DeviceStrategy::kDoubleBuffered;
  EXPECT_GT(run_jacobi_on_device(p, a).kernel_time,
            run_jacobi_on_device(p, b).kernel_time);
}

TEST(JacobiDevice, ComponentTogglesReproduceOrdering) {
  // Table II ordering: all-off is fastest; memcpy is the dominant cost.
  const auto p = small_problem(64, 64, 3);
  auto timed = [&](bool rd, bool mc, bool co, bool wr) {
    DeviceRunConfig cfg;
    cfg.strategy = DeviceStrategy::kDoubleBuffered;
    cfg.toggles = ComponentToggles{rd, mc, co, wr};
    return run_jacobi_on_device(p, cfg).kernel_time;
  };
  const auto none = timed(false, false, false, false);
  const auto compute_only = timed(false, false, true, false);
  const auto read_only = timed(true, false, false, false);
  const auto memcpy_only = timed(false, true, false, false);
  EXPECT_LT(none, compute_only);
  EXPECT_LT(compute_only, memcpy_only);
  EXPECT_LT(read_only, memcpy_only);
}

TEST(JacobiDevice, VerifyFlagReportsResult) {
  const auto p = small_problem(32, 32, 3);
  DeviceRunConfig cfg;
  cfg.verify = true;
  const auto r = run_jacobi_on_device(p, cfg);
  EXPECT_TRUE(r.verified_ok);
}

TEST(JacobiDevice, GptsMetric) {
  auto p = small_problem(64, 64, 10);
  DeviceRunConfig cfg;
  const auto r = run_jacobi_on_device(p, cfg);
  EXPECT_GT(r.gpts(p), 0.0);
  EXPECT_GT(r.gpts(p, /*kernel_only=*/true), r.gpts(p));
}

TEST(JacobiDevice, InvalidConfigsRejected) {
  auto p = small_problem();
  DeviceRunConfig cfg;
  cfg.cores_x = 200;  // more than 108 workers
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);

  cfg = DeviceRunConfig{};
  cfg.strategy = DeviceStrategy::kRowChunk;
  cfg.toggles.compute = false;  // toggles only valid for tiled designs
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);

  cfg = DeviceRunConfig{};
  cfg.cores_x = 3;  // 64 does not divide by 3
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);

  p.iterations = 0;
  EXPECT_THROW(run_jacobi_on_device(p, DeviceRunConfig{}), ApiError);
}

// --- the SRAM-resident future-work solver ---

TEST(JacobiSramResident, MatchesReferenceBitExact) {
  const auto p = small_problem(64, 64, 6);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kSramResident;
  cfg.cores_y = 4;
  const auto r = run_jacobi_on_device(p, cfg);
  expect_matches_reference(p, r);
}

TEST(JacobiSramResident, RejectsXDecomposition) {
  const auto p = small_problem();
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kSramResident;
  cfg.cores_x = 2;
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);
}

TEST(JacobiSramResident, RejectsTileUnfriendlyWidths) {
  JacobiProblem p = small_problem(1536, 32, 2);  // > 1024, not a multiple
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kSramResident;
  EXPECT_THROW(run_jacobi_on_device(p, cfg), ApiError);
}

TEST(JacobiSramResident, OversizedSlabReportsSramBudget) {
  // One core cannot hold a 1024x512 domain twice in 1 MB of SRAM.
  JacobiProblem p = small_problem(1024, 512, 2);
  DeviceRunConfig cfg;
  cfg.strategy = DeviceStrategy::kSramResident;
  try {
    run_jacobi_on_device(p, cfg);
    FAIL() << "expected SRAM exhaustion";
  } catch (const ApiError& e) {
    EXPECT_NE(std::string(e.what()).find("SRAM exhausted"), std::string::npos);
  }
}

TEST(JacobiSramResident, SteadyStateBeatsRowChunk) {
  // The paper's hypothesis: iterating from SRAM avoids the per-iteration
  // DRAM traffic entirely. Compare marginal per-iteration cost.
  JacobiProblem p = small_problem(1024, 128, 0);
  auto marginal = [&](DeviceStrategy s) {
    DeviceRunConfig cfg;
    cfg.strategy = s;
    cfg.cores_y = 4;
    p.iterations = 4;
    const auto short_run = run_jacobi_on_device(p, cfg).kernel_time;
    p.iterations = 12;
    const auto long_run = run_jacobi_on_device(p, cfg).kernel_time;
    return (long_run - short_run) / 8;
  };
  const auto sram = marginal(DeviceStrategy::kSramResident);
  const auto dram = marginal(DeviceStrategy::kRowChunk);
  EXPECT_LT(sram, dram);
}

TEST(JacobiMultiCard, MatchesCardSplitReference) {
  auto p = small_problem(64, 64, 6);
  DeviceRunConfig cfg;
  const auto r = run_jacobi_multicard(p, 2, cfg);
  EXPECT_EQ(r.cards, 2);
  EXPECT_GT(r.kernel_time, 0);
  EXPECT_GT(r.gpts(p), 0.0);
}

TEST(JacobiMultiCard, TwoCardsRoughlyHalveRuntime) {
  auto p = small_problem(64, 128, 6);
  DeviceRunConfig cfg;
  cfg.cores_y = 4;
  const auto one = run_jacobi_multicard(p, 1, cfg);
  const auto two = run_jacobi_multicard(p, 2, cfg);
  EXPECT_LT(two.kernel_time, one.kernel_time * 0.75);
}

}  // namespace
}  // namespace ttsim::core
