/// \file test_stencil_conformance.cpp
/// Differential conformance harness for the general stencil frontend: a
/// seeded randomized sweep over (shape x transition x strategy x read-ahead
/// x batch size x fault schedule) asserting, for every sampled config,
///   * device-vs-CPU bit-exactness (every field against
///     cpu::general_reference_bf16),
///   * strategy-vs-strategy agreement (row-chunk vs SRAM-resident vs the
///     batched multi-slot program, where each is eligible),
///   * verifier cleanliness (every run executes under enable_verify; any
///     finding fails the config).
/// Failures shrink to a minimal reproducer (iterations, then height, then
/// width, then read-ahead/cores) and log a one-line reproducer:
///
///   TTSIM_CONFORMANCE_SEED=<seed> ./tests/test_stencil_conformance
///
/// re-runs exactly that config. `--smoke` (the ctest wiring) runs a small
/// subset; the full sweep samples >= 200 configs from a fixed base seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "ttsim/common/rng.hpp"
#include "ttsim/core/gallery.hpp"
#include "ttsim/core/jacobi_batch.hpp"
#include "ttsim/core/jacobi_device.hpp"
#include "ttsim/core/sharded.hpp"
#include "ttsim/sim/trace.hpp"
#include "ttsim/core/stencil.hpp"
#include "ttsim/cpu/stencil_cpu.hpp"
#include "ttsim/sim/fault.hpp"
#include "ttsim/ttmetal/device.hpp"
#include "ttsim/verify/race.hpp"

namespace {
bool g_smoke = false;
}

namespace ttsim {
namespace {

constexpr std::uint64_t kBaseSeed = 0xC04F0CADE5EEDULL;

struct Config {
  std::uint64_t seed = 0;
  core::GeneralStencilProblem problem;
  core::DeviceRunConfig cfg;        // row-chunk leg (cores, chunk, read-ahead)
  bool try_sram = false;            // eligible + sampled
  int try_temporal = 0;             // > 0: also run kTemporal at this depth
  int batch_slots = 0;              // >= 2: also run the batched program
  sim::FaultConfig faults;          // delay-only schedule (or inert)
  int shard_cards = 0;              // >= 2: also run the multi-card leg
  int shard_k = 1;                  // halo-exchange epoch length
  bool shard_temporal = false;      // per-card strategy of the sharded leg
};

std::string describe(const Config& c) {
  std::ostringstream os;
  os << "seed=0x" << std::hex << c.seed << std::dec << " "
     << c.problem.width << "x" << c.problem.height << " it="
     << c.problem.iterations << " fields=" << c.problem.fields.size()
     << " passes=" << c.problem.passes.size() << " hash=0x" << std::hex
     << c.problem.transition_hash() << std::dec << " cores="
     << c.cfg.cores_x << "x" << c.cfg.cores_y << " chunk="
     << c.cfg.chunk_elems << " depth=" << c.cfg.read_ahead
     << (c.try_sram ? " +sram" : "") << " batch=" << c.batch_slots
     << (c.faults.any_probabilistic() ? " +faults" : "");
  if (c.try_temporal > 0) os << " +temporal k=" << c.try_temporal;
  if (c.shard_cards >= 2) {
    os << " +shard=" << c.shard_cards << " k=" << c.shard_k
       << (c.shard_temporal ? " (temporal)" : " (rowchunk)");
  }
  return os.str();
}

/// A random single-field transition: a non-empty subset of the nine taps in
/// canonical order with smallish weights (convex-ish so values stay finite).
core::GeneralStencilProblem random_single(Rng& rng, std::uint32_t w,
                                          std::uint32_t h, int iters) {
  core::GeneralStencilProblem g;
  g.width = w;
  g.height = h;
  g.iterations = iters;
  core::FieldSpec f;
  f.name = "u";
  f.bc_left = static_cast<float>(rng.next_double(0.0, 1.0));
  f.bc_top = static_cast<float>(rng.next_double(0.0, 1.0));
  f.initial = static_cast<float>(rng.next_double(0.0, 1.0));
  g.fields.push_back(std::move(f));
  core::StencilPass pass;
  pass.target = 0;
  const std::uint32_t mask =
      static_cast<std::uint32_t>(rng.next_int(1, (1 << core::kNumTaps) - 1));
  for (int t = 0; t < core::kNumTaps; ++t) {
    if (mask & (1u << t)) {
      const float wgt = static_cast<float>(rng.next_double(-0.3, 0.3));
      pass.terms.push_back(core::TapTerm{
          0, static_cast<core::Tap>(t), wgt == 0.0f ? 0.125f : wgt});
    }
  }
  g.passes.push_back(std::move(pass));
  return g;
}

/// A random two-field program: field 1 relaxes under its own taps plus a
/// coupling tap of field 0 (which stays read-only half the time, or gets
/// its own advection pass — exercising multi-pass buffer parity).
core::GeneralStencilProblem random_coupled(Rng& rng, std::uint32_t w,
                                           std::uint32_t h, int iters) {
  core::GeneralStencilProblem g;
  g.width = w;
  g.height = h;
  g.iterations = iters;
  core::FieldSpec a;
  a.name = "a";
  a.initial = 0.5f;
  a.bc_left = 1.0f;
  g.fields.push_back(std::move(a));
  core::FieldSpec b;
  b.name = "b";
  b.initial = static_cast<float>(rng.next_double(0.0, 0.5));
  g.fields.push_back(std::move(b));

  const bool two_pass = rng.next_bool();
  if (two_pass) {
    core::StencilPass pa;  // field 0: upwind transport
    pa.target = 0;
    pa.terms.push_back(core::TapTerm{0, core::Tap::kC, 0.6f});
    pa.terms.push_back(core::TapTerm{0, core::Tap::kW, 0.4f});
    g.passes.push_back(std::move(pa));
  }
  core::StencilPass pb;  // field 1: diffusion + coupling (sees pa's update
  pb.target = 1;         // when two_pass — the leapfrog visibility rule)
  const float k = static_cast<float>(rng.next_double(0.05, 0.2));
  pb.terms.push_back(core::TapTerm{1, core::Tap::kC, 1.0f - 4.0f * k});
  pb.terms.push_back(core::TapTerm{1, core::Tap::kW, k});
  pb.terms.push_back(core::TapTerm{1, core::Tap::kE, k});
  pb.terms.push_back(core::TapTerm{1, core::Tap::kN, k});
  pb.terms.push_back(core::TapTerm{1, core::Tap::kS, k});
  pb.terms.push_back(core::TapTerm{0, core::Tap::kC, 0.05f});
  g.passes.push_back(std::move(pb));
  if (!two_pass) {
    // Field 0 read-only: still "used", validate() is happy.
  }
  return g;
}

Config sample(std::uint64_t seed) {
  Rng rng(seed);
  Config c;
  c.seed = seed;

  const std::uint32_t w = 16 * static_cast<std::uint32_t>(rng.next_int(2, 8));
  const std::uint32_t h = static_cast<std::uint32_t>(rng.next_int(6, 40));
  const int iters = static_cast<int>(rng.next_int(1, 5));

  switch (rng.next_int(0, 6)) {
    case 0: c.problem = random_single(rng, w, h, iters); break;
    case 1: c.problem = core::gallery::hotspot(w, h, iters); break;
    case 2: c.problem = core::gallery::fdtd2d(w, h, iters); break;
    case 3: c.problem = core::gallery::convection(w, h, iters); break;
    case 4:
      c.problem = core::gallery::life(w, h, iters, rng.next_u64());
      break;
    default: c.problem = random_coupled(rng, w, h, iters); break;
  }

  c.cfg.strategy = core::DeviceStrategy::kRowChunk;
  c.cfg.read_ahead = static_cast<int>(rng.next_int(2, 8));
  c.cfg.chunk_elems = static_cast<std::uint32_t>(
      rng.next_bool() ? 1024 : 16 * rng.next_int(1, 4));
  // cores_x splits the width into 16-aligned strips; cores_y needs a row
  // per core.
  const int cx = rng.next_bool() && w % 32 == 0 ? 2 : 1;
  const int cy = static_cast<int>(rng.next_int(1, 3));
  c.cfg.cores_x = cx;
  c.cfg.cores_y = static_cast<std::uint32_t>(cy) <= h ? cy : 1;
  c.cfg.verify = false;  // the harness compares fields itself

  c.try_sram = c.problem.fields.size() == 1 && c.problem.passes.size() == 1 &&
               rng.next_bool();
  // Temporal eligibility is wider than SRAM's: any single-pass program
  // (read-only fields stream alongside the written one). Widths here are
  // always <= 128, so the slab width rule never excludes a sample.
  c.try_temporal = c.problem.passes.size() == 1 && rng.next_int(0, 2) == 0
                       ? static_cast<int>(rng.next_int(1, 8))
                       : 0;
  c.batch_slots = rng.next_int(0, 3) == 0 ? static_cast<int>(rng.next_int(2, 3)) : 0;

  if (rng.next_int(0, 3) == 0) {
    // Delay-only fault schedule: stretches the schedule, must change no bit
    // and trip no verifier finding.
    c.faults.seed = rng.next_u64();
    c.faults.mover_stall_prob = 0.03;
    c.faults.noc_delay_prob = 0.03;
  }

  // Multi-card sharding axis (drawn last so earlier seeds' configs are
  // unchanged): single-pass programs split across 2-3 cards with halo
  // exchanges every k iterations, per-card row-chunk or temporal. Every
  // card must own at least k rows (and a row per core).
  if (c.problem.passes.size() == 1 && rng.next_int(0, 2) == 0) {
    const int cards = static_cast<int>(rng.next_int(2, 3));
    const int kx = static_cast<int>(rng.next_int(1, 4));
    const int owned = static_cast<int>(h) / cards;
    if (owned >= std::max(kx, 4)) {
      c.shard_cards = cards;
      c.shard_k = kx;
      c.shard_temporal = rng.next_bool();
    }
  }
  return c;
}

std::string render(const std::vector<verify::Finding>& fs) {
  std::ostringstream os;
  for (const auto& f : fs) {
    os << verify::to_string(f.kind) << " core " << f.core << ": " << f.what << "\n";
  }
  return os.str();
}

ttmetal::DeviceConfig device_config(const Config& c) {
  ttmetal::DeviceConfig dc;
  dc.enable_verify = true;
  if (c.faults.any_probabilistic()) {
    dc.fault_plan = std::make_shared<sim::FaultPlan>(c.faults);
  }
  return dc;
}

bool fields_match(const std::vector<std::vector<bfloat16_t>>& ref,
                  const std::vector<std::vector<float>>& got, std::string* why) {
  if (ref.size() != got.size()) {
    *why = "field count mismatch";
    return false;
  }
  for (std::size_t f = 0; f < ref.size(); ++f) {
    if (ref[f].size() != got[f].size()) {
      *why = "field size mismatch";
      return false;
    }
    for (std::size_t i = 0; i < ref[f].size(); ++i) {
      if (static_cast<float>(ref[f][i]) != got[f][i]) {
        std::ostringstream os;
        os << "field " << f << " elem " << i << ": device " << got[f][i]
           << " vs ref " << static_cast<float>(ref[f][i]);
        *why = os.str();
        return false;
      }
    }
  }
  return true;
}

/// The batched leg: `slots` copies of the problem in ONE program on
/// disjoint core groups, every slot's every field checked against the
/// reference.
bool run_batched(const Config& c, const std::vector<std::vector<bfloat16_t>>& ref,
                 std::string* why) {
  auto device = ttmetal::Device::open({}, device_config(c));
  const core::PaddedLayout layout(c.problem.width, c.problem.height);
  const auto bc = core::batch_grid_buffer_config(c.cfg, c.problem.geometry());
  const int nfields = static_cast<int>(c.problem.fields.size());
  const int ncores = c.cfg.cores_x * c.cfg.cores_y;
  if (c.batch_slots * ncores > device->num_workers()) {
    return true;  // cannot place this many groups; not a conformance failure
  }

  using BufPtr = decltype(device->create_buffer(bc));
  std::vector<std::vector<BufPtr>> d1(static_cast<std::size_t>(c.batch_slots));
  std::vector<std::vector<BufPtr>> d2(static_cast<std::size_t>(c.batch_slots));
  std::vector<core::GeneralBatchSlot> slots(static_cast<std::size_t>(c.batch_slots));
  for (int g = 0; g < c.batch_slots; ++g) {
    auto& slot = slots[static_cast<std::size_t>(g)];
    slot.d1.assign(static_cast<std::size_t>(nfields), 0);
    slot.d2.assign(static_cast<std::size_t>(nfields), 0);
    for (int f = 0; f < nfields; ++f) {
      const auto image = core::general_field_image(layout, c.problem, f);
      auto b1 = device->create_buffer(bc);
      device->write_buffer(*b1, std::as_bytes(std::span{image}));
      slot.d1[static_cast<std::size_t>(f)] = b1->address();
      d1[static_cast<std::size_t>(g)].push_back(std::move(b1));
      if (c.problem.written_pass(f) >= 0) {
        auto b2 = device->create_buffer(bc);
        device->write_buffer(*b2, std::as_bytes(std::span{image}));
        slot.d2[static_cast<std::size_t>(f)] = b2->address();
        d2[static_cast<std::size_t>(g)].push_back(std::move(b2));
      } else {
        d2[static_cast<std::size_t>(g)].push_back(nullptr);
      }
    }
    for (int i = 0; i < ncores; ++i) slot.core_ids.push_back(g * ncores + i);
  }

  ttmetal::Program prog;
  core::build_batched_stencil_program(prog, c.problem, c.cfg, slots);
  device->run_program(prog);

  for (int g = 0; g < c.batch_slots; ++g) {
    std::vector<std::vector<float>> got;
    for (int f = 0; f < nfields; ++f) {
      const bool odd = c.problem.iterations % 2 == 1;
      const bool written = c.problem.written_pass(f) >= 0;
      auto& buf = written && odd ? *d2[static_cast<std::size_t>(g)][static_cast<std::size_t>(f)]
                                 : *d1[static_cast<std::size_t>(g)][static_cast<std::size_t>(f)];
      std::vector<bfloat16_t> out(layout.elems());
      device->read_buffer(buf, std::as_writable_bytes(std::span{out}));
      got.push_back(layout.extract_interior(out));
    }
    if (!fields_match(ref, got, why)) {
      *why = "batched slot " + std::to_string(g) + ": " + *why;
      return false;
    }
  }
  const auto fs = device->verifier()->findings();
  if (!fs.empty()) {
    *why = "batched verifier findings:\n" + render(fs);
    return false;
  }
  return true;
}

/// One full differential check of a config. Returns true when every leg
/// agrees; `why` names the first divergence.
bool check(const Config& c, std::string* why) {
  const auto ref = cpu::general_reference_bf16(c.problem);

  // Row-chunk leg.
  auto dev = ttmetal::Device::open({}, device_config(c));
  const auto row = core::run_general_stencil_on_device(*dev, c.problem, c.cfg);
  if (!fields_match(ref, row.fields, why)) {
    *why = "row-chunk: " + *why;
    return false;
  }
  const auto fs = dev->verifier()->findings();
  if (!fs.empty()) {
    *why = "row-chunk verifier findings:\n" + render(fs);
    return false;
  }

  // SRAM leg (strategy-vs-strategy agreement is implied by both matching
  // the reference bit-for-bit, and asserted directly for a clear message).
  if (c.try_sram) {
    core::DeviceRunConfig scfg = c.cfg;
    scfg.strategy = core::DeviceStrategy::kSramResident;
    scfg.cores_x = 1;
    auto sdev = ttmetal::Device::open({}, device_config(c));
    const auto sram = core::run_general_stencil_on_device(*sdev, c.problem, scfg);
    if (!fields_match(ref, sram.fields, why)) {
      *why = "sram: " + *why;
      return false;
    }
    for (std::size_t i = 0; i < row.solution.size(); ++i) {
      if (row.solution[i] != sram.solution[i]) {
        *why = "rowchunk-vs-sram divergence at elem " + std::to_string(i);
        return false;
      }
    }
    const auto sfs = sdev->verifier()->findings();
    if (!sfs.empty()) {
      *why = "sram verifier findings:\n" + render(sfs);
      return false;
    }
  }

  // Temporal leg: the k-deep chain must agree with the reference AND with
  // its own k=1 degenerate form (k chained sub-iterations vs k sequential
  // single-sweep passes — the tentpole's bit-exactness contract), and both
  // runs must be verifier-clean under the same fault schedule.
  if (c.try_temporal > 0) {
    core::DeviceRunConfig tcfg = c.cfg;
    tcfg.strategy = core::DeviceStrategy::kTemporal;
    tcfg.cores_x = 1;
    tcfg.temporal_depth = c.try_temporal;
    auto tdev = ttmetal::Device::open({}, device_config(c));
    const auto chained = core::run_general_stencil_on_device(*tdev, c.problem, tcfg);
    if (!fields_match(ref, chained.fields, why)) {
      *why = "temporal k=" + std::to_string(c.try_temporal) + ": " + *why;
      return false;
    }
    tcfg.temporal_depth = 1;
    auto odev = ttmetal::Device::open({}, device_config(c));
    const auto once = core::run_general_stencil_on_device(*odev, c.problem, tcfg);
    for (std::size_t i = 0; i < chained.solution.size(); ++i) {
      if (chained.solution[i] != once.solution[i]) {
        *why = "temporal k=" + std::to_string(c.try_temporal) +
               " vs k=1 divergence at elem " + std::to_string(i);
        return false;
      }
    }
    for (auto* d : {tdev.get(), odev.get()}) {
      const auto tfs = d->verifier()->findings();
      if (!tfs.empty()) {
        *why = "temporal verifier findings:\n" + render(tfs);
        return false;
      }
    }
  }

  // Multi-card leg: the same problem sharded across shard_cards cards with
  // one halo exchange per k iterations must match the reference (hence also
  // the single-card row-chunk leg above — device-vs-device bit-exactness
  // across card counts) and leave every card's verifier clean.
  if (c.shard_cards >= 2) {
    core::ShardedRunConfig scfg;
    scfg.run = c.cfg;
    scfg.exchange_every = c.shard_k;
    if (c.shard_temporal) {
      scfg.run.strategy = core::DeviceStrategy::kTemporal;
      scfg.run.cores_x = 1;
      scfg.run.temporal_depth = c.shard_k;
    }
    auto cluster = core::ShardedCluster::open(c.shard_cards, {}, device_config(c));
    const auto devs = cluster.devices();
    const auto sh = core::run_general_sharded(devs, *cluster.fabric, c.problem, scfg);
    if (!fields_match(ref, sh.fields, why)) {
      *why = "sharded x" + std::to_string(c.shard_cards) + " k=" +
             std::to_string(c.shard_k) + ": " + *why;
      return false;
    }
    for (std::size_t i = 0; i < row.solution.size(); ++i) {
      if (row.solution[i] != sh.solution[i]) {
        *why = "1-card-vs-" + std::to_string(c.shard_cards) +
               "-card divergence at elem " + std::to_string(i);
        return false;
      }
    }
    for (int card = 0; card < c.shard_cards; ++card) {
      const auto cfs =
          cluster.cards[static_cast<std::size_t>(card)]->verifier()->findings();
      if (!cfs.empty()) {
        *why = "sharded card " + std::to_string(card) +
               " verifier findings:\n" + render(cfs);
        return false;
      }
    }
  }

  if (c.batch_slots >= 2 && !run_batched(c, ref, why)) return false;
  return true;
}

/// Shrink a failing config towards a minimal reproducer. Each round tries
/// every shrink move once (halve iterations, halve height, halve width,
/// drop batching, collapse cores, shallow read-ahead) and keeps the first
/// that still fails; bounded so a flaky failure can't loop forever.
Config shrink(Config c, std::string* why) {
  int budget = 24;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    std::vector<Config> moves;
    if (c.problem.iterations > 1) {
      Config m = c;
      m.problem.iterations = c.problem.iterations / 2;
      moves.push_back(std::move(m));
    }
    if (c.problem.height > 6) {
      Config m = c;
      m.problem.height = std::max<std::uint32_t>(6, c.problem.height / 2);
      for (auto& f : m.problem.fields) f.initial_field.clear();
      moves.push_back(std::move(m));
    }
    if (c.problem.width > 32) {
      Config m = c;
      m.problem.width = 32;
      for (auto& f : m.problem.fields) f.initial_field.clear();
      moves.push_back(std::move(m));
    }
    if (c.batch_slots > 0) {
      Config m = c;
      m.batch_slots = 0;
      moves.push_back(std::move(m));
    }
    if (c.try_temporal > 1) {
      Config m = c;
      m.try_temporal = 1;
      moves.push_back(std::move(m));
    }
    if (c.try_temporal > 0) {
      Config m = c;
      m.try_temporal = 0;
      moves.push_back(std::move(m));
    }
    if (c.shard_cards > 2 || (c.shard_cards == 2 && c.shard_k > 1)) {
      Config m = c;
      m.shard_cards = 2;
      m.shard_k = 1;
      moves.push_back(std::move(m));
    }
    if (c.shard_cards >= 2) {
      Config m = c;
      m.shard_cards = 0;
      moves.push_back(std::move(m));
    }
    if (c.cfg.cores_x * c.cfg.cores_y > 1) {
      Config m = c;
      m.cfg.cores_x = m.cfg.cores_y = 1;
      moves.push_back(std::move(m));
    }
    if (c.cfg.read_ahead > 2) {
      Config m = c;
      m.cfg.read_ahead = 2;
      moves.push_back(std::move(m));
    }
    for (auto& m : moves) {
      if (--budget < 0) break;
      if (m.cfg.cores_x > 1 && m.problem.width % (16u * m.cfg.cores_x) != 0) {
        m.cfg.cores_x = 1;
      }
      if (m.cfg.cores_y > static_cast<int>(m.problem.height)) m.cfg.cores_y = 1;
      if (m.shard_cards >= 2 &&
          static_cast<int>(m.problem.height) / m.shard_cards <
              std::max(m.shard_k, m.cfg.cores_y)) {
        m.shard_cards = 0;
      }
      std::string w;
      if (!check(m, &w)) {
        c = std::move(m);
        *why = w;
        progress = true;
        break;
      }
    }
  }
  return c;
}

TEST(StencilConformance, RandomizedSweep) {
  // A pinned seed reproduces one exact config from a failure log.
  if (const char* pinned = std::getenv("TTSIM_CONFORMANCE_SEED")) {
    const std::uint64_t seed = std::strtoull(pinned, nullptr, 0);
    const Config c = sample(seed);
    std::string why;
    EXPECT_TRUE(check(c, &why)) << describe(c) << "\n" << why;
    return;
  }

  const int n = g_smoke ? 24 : 220;
  int failures = 0;
  for (int i = 0; i < n && failures < 3; ++i) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(i);
    Config c = sample(seed);
    std::string why;
    if (check(c, &why)) continue;
    ++failures;
    const std::string full = describe(c) + "\n" + why;
    Config min = shrink(c, &why);
    ADD_FAILURE() << "conformance failure:\n  " << full
                  << "\nshrunk reproducer:\n  " << describe(min) << "\n  " << why
                  << "\nre-run with: TTSIM_CONFORMANCE_SEED=0x" << std::hex
                  << c.seed << std::dec << " ./tests/test_stencil_conformance";
  }
}

// Pinned regressions: configs that exercise every lowering corner at once —
// deep read-ahead over multi-chunk strips, the leapfrog multi-pass parity,
// and the Life post-op — independent of the sweep's sampling.
TEST(StencilConformance, PinnedCorners) {
  struct Pin {
    core::GeneralStencilProblem p;
    int depth;
    int cx, cy;
  };
  std::vector<Pin> pins;
  pins.push_back({core::gallery::fdtd2d(48, 20, 3), 5, 1, 2});
  pins.push_back({core::gallery::life(64, 24, 4, 7), 8, 2, 1});
  pins.push_back({core::gallery::convection(96, 18, 2), 3, 2, 3});
  for (auto& pin : pins) {
    Config c;
    c.seed = 0;
    c.problem = pin.p;
    c.cfg.read_ahead = pin.depth;
    c.cfg.cores_x = pin.cx;
    c.cfg.cores_y = pin.cy;
    c.cfg.chunk_elems = 16;  // many chunk columns per strip
    std::string why;
    EXPECT_TRUE(check(c, &why)) << describe(c) << "\n" << why;
  }

  // Temporal depth axis: every k in [1, 8] on a single-pass two-field
  // gallery program (the read-only power map streams beside the chained
  // field), each depth bit-exact vs the reference and its own k=1 run, and
  // verifier-clean — the race detector and deadlock diagnoser must report
  // zero findings across the whole axis.
  for (int k = 1; k <= 8; ++k) {
    Config c;
    c.seed = 0;
    c.problem = core::gallery::hotspot(64, 24, 5);
    c.cfg.cores_y = 2;
    c.try_temporal = k;
    std::string why;
    EXPECT_TRUE(check(c, &why))
        << "temporal k=" << k << ": " << describe(c) << "\n" << why;
  }

  // Multi-card corner: 3 cards, per-card temporal chains, deep halo k=4 —
  // the cross-card analogue of the axis above, pinned independent of the
  // sweep's sampling.
  {
    Config c;
    c.seed = 0;
    c.problem = core::gallery::hotspot(64, 30, 7);
    c.cfg.cores_y = 2;
    c.shard_cards = 3;
    c.shard_k = 4;
    c.shard_temporal = true;
    std::string why;
    EXPECT_TRUE(check(c, &why)) << describe(c) << "\n" << why;
  }
}

// The IR-lowering axis: for every strategy, shape sample and read-ahead /
// temporal depth in [2, 8] / [1, 8], the program produced by prove-then-
// lower (LoweringPath::kIr) must be bit-identical to the hand-wired
// builder's — the same solution bits AND the same golden-trace hash, so
// not one simulator event (timing, ordering, DRAM traffic) differs. The
// IR path adds the static certificate, nothing else.
TEST(StencilConformance, IrLoweringMatchesHandWiredBitExact) {
  struct RunOut {
    std::vector<float> solution;
    std::uint64_t trace_hash = 0;
    std::size_t findings = 0;
  };
  auto open_dev = [] {
    ttmetal::DeviceConfig dc;
    dc.enable_trace = true;
    dc.enable_verify = true;
    return ttmetal::Device::open({}, dc);
  };
  auto run_general = [&](const core::GeneralStencilProblem& p,
                         core::DeviceRunConfig cfg, core::LoweringPath path) {
    auto dev = open_dev();
    cfg.lowering = path;
    const auto r = core::run_general_stencil_on_device(*dev, p, cfg);
    return RunOut{r.solution, dev->trace()->hash(),
                  dev->verifier()->findings().size()};
  };
  auto run_jacobi = [&](const core::JacobiProblem& p,
                        core::DeviceRunConfig cfg, core::LoweringPath path) {
    auto dev = open_dev();
    cfg.lowering = path;
    const auto r = core::run_jacobi_on_device(*dev, p, cfg);
    return RunOut{r.solution, dev->trace()->hash(),
                  dev->verifier()->findings().size()};
  };
  auto expect_identical = [](const RunOut& ir, const RunOut& hw,
                             const std::string& what) {
    EXPECT_EQ(ir.trace_hash, hw.trace_hash)
        << what << ": golden-trace hash diverged between kIr and kHandWired";
    ASSERT_EQ(ir.solution.size(), hw.solution.size()) << what;
    for (std::size_t i = 0; i < ir.solution.size(); ++i) {
      ASSERT_EQ(ir.solution[i], hw.solution[i])
          << what << ": solution diverged at elem " << i;
    }
    EXPECT_EQ(ir.findings, 0u) << what << ": kIr run has verifier findings";
    EXPECT_EQ(hw.findings, 0u) << what
                               << ": kHandWired run has verifier findings";
  };

  struct Shape {
    std::uint32_t w, h;
    int cx, cy;
  };
  const Shape shapes[] = {{64, 20, 1, 2}, {96, 12, 2, 1}};

  // General row-chunk: both shapes, every read-ahead depth in [2, 8].
  for (const Shape& s : shapes) {
    const auto p = core::gallery::convection(s.w, s.h, 2);
    for (int depth = 2; depth <= 8; ++depth) {
      core::DeviceRunConfig cfg;
      cfg.read_ahead = depth;
      cfg.cores_x = s.cx;
      cfg.cores_y = s.cy;
      std::ostringstream what;
      what << "convection " << s.w << "x" << s.h << " rowchunk depth " << depth;
      expect_identical(run_general(p, cfg, core::LoweringPath::kIr),
                       run_general(p, cfg, core::LoweringPath::kHandWired),
                       what.str());
    }
  }
  // Multi-pass (FDTD) row-chunk: the accumulator-chain protocol.
  {
    core::DeviceRunConfig cfg;
    cfg.read_ahead = 4;
    cfg.cores_y = 2;
    expect_identical(
        run_general(core::gallery::fdtd2d(64, 20, 2), cfg,
                    core::LoweringPath::kIr),
        run_general(core::gallery::fdtd2d(64, 20, 2), cfg,
                    core::LoweringPath::kHandWired),
        "fdtd2d rowchunk");
  }
  // General SRAM-resident: the halo-exchange semaphore protocol.
  {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kSramResident;
    cfg.cores_y = 2;
    const auto p = core::gallery::convection(64, 20, 3);
    expect_identical(run_general(p, cfg, core::LoweringPath::kIr),
                     run_general(p, cfg, core::LoweringPath::kHandWired),
                     "convection sram");
  }
  // General temporal: every chain depth in [1, 8].
  for (int k = 1; k <= 8; ++k) {
    core::DeviceRunConfig cfg;
    cfg.strategy = core::DeviceStrategy::kTemporal;
    cfg.temporal_depth = k;
    cfg.cores_y = 2;
    const auto p = core::gallery::hotspot(64, 24, 4);
    expect_identical(run_general(p, cfg, core::LoweringPath::kIr),
                     run_general(p, cfg, core::LoweringPath::kHandWired),
                     "hotspot temporal k=" + std::to_string(k));
  }

  // Jacobi: row-chunk across depths, then the SRAM and temporal lowerings.
  core::JacobiProblem jp;
  jp.width = 64;
  jp.height = 32;
  jp.iterations = 3;
  for (int depth = 2; depth <= 8; ++depth) {
    core::DeviceRunConfig cfg;
    cfg.read_ahead = depth;
    cfg.cores_y = 2;
    expect_identical(run_jacobi(jp, cfg, core::LoweringPath::kIr),
                     run_jacobi(jp, cfg, core::LoweringPath::kHandWired),
                     "jacobi rowchunk depth " + std::to_string(depth));
  }
  for (const core::DeviceStrategy s :
       {core::DeviceStrategy::kSramResident, core::DeviceStrategy::kTemporal}) {
    core::DeviceRunConfig cfg;
    cfg.strategy = s;
    cfg.cores_y = 2;
    cfg.temporal_depth = 4;
    expect_identical(run_jacobi(jp, cfg, core::LoweringPath::kIr),
                     run_jacobi(jp, cfg, core::LoweringPath::kHandWired),
                     "jacobi " + core::to_string(s));
  }
}

}  // namespace
}  // namespace ttsim

int main(int argc, char** argv) {
  // Strip --smoke before gtest parses the argv (it rejects unknown flags).
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
