#include "ttsim/core/problem.hpp"

#include <gtest/gtest.h>

namespace ttsim::core {
namespace {

TEST(PaddedLayout, GeometryMatchesFig5) {
  PaddedLayout l(512, 512);
  EXPECT_EQ(l.row_elems(), 512u + 32u);
  EXPECT_EQ(l.row_bytes(), 1088u);
  EXPECT_EQ(l.stored_rows(), 514u);
  EXPECT_EQ(l.bytes(), 1088ull * 514);
  // Row stride is 256-bit aligned, the point of the padding.
  EXPECT_EQ(l.row_bytes() % 32, 0u);
}

TEST(PaddedLayout, InteriorWritesAreAligned) {
  PaddedLayout l(512, 512);
  for (std::int64_t r = 0; r < 512; r += 97) {
    for (std::int64_t c = 0; c < 512; c += 32) {
      EXPECT_EQ(l.byte_offset(r, c) % 32, 0u) << r << "," << c;
    }
  }
}

TEST(PaddedLayout, HaloReadsAreUnalignedWithoutListing4) {
  // The crux of Section IV-B: reading from col-1 is off-alignment.
  PaddedLayout l(512, 512);
  EXPECT_NE(l.byte_offset(0, -1) % 32, 0u);
  EXPECT_EQ(l.byte_offset(0, -1) % 32, 30u);
}

TEST(PaddedLayout, IndexAddressesBoundaries) {
  PaddedLayout l(64, 32);
  EXPECT_EQ(l.index(-1, 0), 0u * l.row_elems() + 16);
  EXPECT_EQ(l.index(0, -1), 1u * l.row_elems() + 15);
  EXPECT_EQ(l.index(0, 64), 1u * l.row_elems() + 16 + 64);
  EXPECT_EQ(l.index(32, 0), 33u * l.row_elems() + 16);
}

TEST(PaddedLayout, RejectsUnalignedWidth) {
  EXPECT_THROW(PaddedLayout(100, 32), CheckError);
  EXPECT_THROW(PaddedLayout(0, 32), CheckError);
}

TEST(PaddedLayout, InitialImageCarriesBoundaries) {
  JacobiProblem p;
  p.width = 64;
  p.height = 32;
  p.bc_left = 2.0f;
  p.bc_right = 3.0f;
  p.bc_top = 4.0f;
  p.bc_bottom = 5.0f;
  p.initial = 1.0f;
  PaddedLayout l(p.width, p.height);
  const auto img = l.initial_image(p);
  EXPECT_EQ(static_cast<float>(img[l.index(0, -1)]), 2.0f);
  EXPECT_EQ(static_cast<float>(img[l.index(5, 64)]), 3.0f);
  EXPECT_EQ(static_cast<float>(img[l.index(-1, 10)]), 4.0f);
  EXPECT_EQ(static_cast<float>(img[l.index(32, 10)]), 5.0f);
  EXPECT_EQ(static_cast<float>(img[l.index(7, 7)]), 1.0f);
  // Dead padding stays zero.
  EXPECT_EQ(static_cast<float>(img[l.index(0, -1) - 5]), 0.0f);
}

TEST(PaddedLayout, ExtractInteriorRoundTrip) {
  JacobiProblem p;
  p.width = 32;
  p.height = 16;
  p.initial = 0.75f;
  PaddedLayout l(p.width, p.height);
  const auto img = l.initial_image(p);
  const auto interior = l.extract_interior(img);
  ASSERT_EQ(interior.size(), 32u * 16);
  for (float v : interior) EXPECT_EQ(v, 0.75f);
}

TEST(JacobiProblem, PointCounts) {
  JacobiProblem p;
  p.width = 512;
  p.height = 512;
  p.iterations = 10000;
  EXPECT_EQ(p.points(), 262144u);
  EXPECT_EQ(p.total_updates(), 2621440000ull);
}

}  // namespace
}  // namespace ttsim::core
